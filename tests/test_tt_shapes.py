"""Tests for TTShape: validation, arithmetic, index codecs."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tt import TTShape


def small_shape(rank=4):
    return TTShape.with_uniform_rank(60, 8, (3, 4, 5), (2, 2, 2), rank)


class TestConstruction:
    def test_valid(self):
        s = small_shape()
        assert s.d == 3
        assert s.padded_rows == 60

    def test_rejects_single_core(self):
        with pytest.raises(ValueError):
            TTShape(4, 2, (4,), (2,), (1, 1))

    def test_rejects_factor_length_mismatch(self):
        with pytest.raises(ValueError):
            TTShape(60, 8, (3, 4, 5), (2, 4), (1, 4, 4, 1))

    def test_rejects_bad_rank_length(self):
        with pytest.raises(ValueError):
            TTShape(60, 8, (3, 4, 5), (2, 2, 2), (1, 4, 1))

    def test_rejects_nonunit_boundary_ranks(self):
        with pytest.raises(ValueError):
            TTShape(60, 8, (3, 4, 5), (2, 2, 2), (2, 4, 4, 1))

    def test_rejects_row_underflow(self):
        with pytest.raises(ValueError):
            TTShape(100, 8, (3, 4, 5), (2, 2, 2), (1, 4, 4, 1))

    def test_rejects_col_product_mismatch(self):
        with pytest.raises(ValueError):
            TTShape(60, 9, (3, 4, 5), (2, 2, 2), (1, 4, 4, 1))

    def test_padding_allowed(self):
        s = TTShape(55, 8, (3, 4, 5), (2, 2, 2), (1, 4, 4, 1))
        assert s.padded_rows == 60
        assert s.num_rows == 55


class TestDerived:
    def test_core_shapes_paper_vs_storage(self):
        s = small_shape(rank=4)
        assert s.paper_core_shape(0) == (1, 3, 2, 4)
        assert s.core_shape(0) == (3, 1, 2, 4)
        assert s.paper_core_shape(2) == (4, 5, 2, 1)
        assert s.core_shape(2) == (5, 4, 2, 1)

    def test_num_params(self):
        s = small_shape(rank=4)
        expected = 3 * 1 * 2 * 4 + 4 * 4 * 2 * 4 + 5 * 4 * 2 * 1
        assert s.num_params() == expected

    def test_compression_ratio_uses_true_rows(self):
        s = TTShape(55, 8, (3, 4, 5), (2, 2, 2), (1, 2, 2, 1))
        assert s.compression_ratio() == pytest.approx(55 * 8 / s.num_params())

    def test_rank_clipping(self):
        # Boundary after first core supports at most 3*2=6 on the left.
        s = TTShape.with_uniform_rank(60, 8, (3, 4, 5), (2, 2, 2), rank=1000)
        assert s.ranks[1] == 6

    def test_suggested_covers_rows(self):
        s = TTShape.suggested(142572, 16, d=3, rank=32)
        assert s.padded_rows >= 142572
        assert math.prod(s.col_factors) == 16

    def test_describe_mentions_params(self):
        assert "params=" in small_shape().describe()


class TestIndexCodec:
    def test_roundtrip_all_indices(self):
        s = small_shape()
        idx = np.arange(60)
        decoded = s.decode_indices(idx)
        assert decoded.shape == (3, 60)
        np.testing.assert_array_equal(s.encode_indices(decoded), idx)

    def test_decode_is_mixed_radix(self):
        s = small_shape()
        # index = i1*(4*5) + i2*5 + i3
        decoded = s.decode_indices(np.array([2 * 20 + 3 * 5 + 4]))
        np.testing.assert_array_equal(decoded[:, 0], [2, 3, 4])

    def test_decode_bounds(self):
        s = small_shape()
        with pytest.raises(IndexError):
            s.decode_indices(np.array([60]))
        with pytest.raises(IndexError):
            s.decode_indices(np.array([-1]))

    def test_per_core_index_ranges(self):
        s = small_shape()
        decoded = s.decode_indices(np.arange(60))
        for k, m in enumerate(s.row_factors):
            assert decoded[k].min() >= 0
            assert decoded[k].max() == m - 1

    @given(st.integers(min_value=2, max_value=9), st.integers(min_value=2, max_value=9),
           st.integers(min_value=2, max_value=9))
    @settings(max_examples=40)
    def test_roundtrip_random_factors(self, m1, m2, m3):
        total = m1 * m2 * m3
        s = TTShape(total, 4, (m1, m2, m3), (2, 2, 1), (1, 2, 2, 1))
        idx = np.arange(total)
        np.testing.assert_array_equal(s.encode_indices(s.decode_indices(idx)), idx)

    def test_encode_rejects_wrong_rows(self):
        s = small_shape()
        with pytest.raises(ValueError):
            s.encode_indices(np.zeros((2, 5), dtype=np.int64))
