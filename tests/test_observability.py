"""Tests for the ISSUE-7 observability plane.

The acceptance spec: sampled requests produce span trees crossing
router -> shard dispatch -> slice ladder -> TT kernels with correct
parentage; two same-seed chaos runs (including ``--kill-shard``) emit
byte-identical ``repro.trace/v1`` files, identical SLO verdicts, and
byte-identical flight-recorder dumps; the SLO engine fires multi-window
burn-rate episodes with exemplar trace ids; and the interpolated
histogram quantile stays within one bucket width of the exact
percentile.
"""

import json

import numpy as np
import pytest

from repro.cli import main
from repro.data import KAGGLE
from repro.inference import Predictor
from repro.models import DLRMConfig, TTConfig, build_ttrec
from repro.serving import (
    InferenceServer,
    ManualClock,
    ServerConfig,
    run_load,
)
from repro.sharding import (
    ShardConfig,
    ShardRouter,
    parse_kill_spec,
    run_sharded_load,
)
from repro.telemetry import (
    REPORT_SCHEMA,
    TRACE_SCHEMA,
    FlightRecorder,
    SLOEngine,
    format_report,
    format_trace_tree,
    get_registry,
    get_request_tracer,
    install_flight_recorder,
    load_policy,
    read_trace,
    slowest_traces,
    trace_duration_ms,
    traced_event,
    traced_span,
    uninstall_flight_recorder,
    validate_trace_record,
)
from repro.telemetry.registry import Histogram

SPEC = KAGGLE.scaled(0.0003)
CFG = DLRMConfig(table_sizes=SPEC.table_sizes, emb_dim=8,
                 bottom_mlp=(16,), top_mlp=(16,))


@pytest.fixture(autouse=True)
def _fresh_telemetry():
    reg = get_registry()
    reg.reset(prefix="serving.")
    reg.reset(prefix="shard.")
    yield
    get_request_tracer().shutdown()
    uninstall_flight_recorder()
    reg.reset(prefix="serving.")
    reg.reset(prefix="shard.")


@pytest.fixture(scope="module")
def predictor():
    tt = TTConfig(rank=4, use_cache=False, plan_policy="fixed")
    model = build_ttrec(CFG, num_tt_tables=5, tt=tt, min_rows=50, rng=0)
    return Predictor(model)


def drill_policy() -> dict:
    """Loose gated availability + tight non-gating fidelity objective."""
    return {
        "schema": "repro.slo/v1",
        "objectives": [
            {"name": "availability", "metric": "availability",
             "target": 0.9,
             "windows": [{"ms": 100, "max_burn": 8.0},
                         {"ms": 1000, "max_burn": 4.0}]},
            {"name": "full-fidelity", "metric": "degraded",
             "target": 0.999, "gate": False,
             "windows": [{"ms": 100, "max_burn": 2.0},
                         {"ms": 400, "max_burn": 2.0}]},
        ],
    }


def run_drill(predictor, tmp_path, tag, *, kill="1@60ms",
              trace_sample=5, requests=150):
    """One sharded chaos run with tracing + SLO + flight recorder armed."""
    clock = ManualClock()
    trace_path = tmp_path / f"trace-{tag}.jsonl"
    flight_dir = tmp_path / f"flight-{tag}"
    rt = get_request_tracer()
    rt.configure(sample_every=trace_sample, path=trace_path,
                 clock=clock.now, seed=0)
    install_flight_recorder(FlightRecorder(flight_dir, clock=clock.now))
    slo = SLOEngine(load_policy(drill_policy()), min_count=10)
    router = ShardRouter(
        predictor,
        config=ServerConfig(default_deadline_ms=100.0, cooldown=10),
        shard_config=ShardConfig(num_shards=3),
        clock=clock,
    )
    report = run_sharded_load(
        router, num_requests=requests, deadline_ms=100.0, seed=0,
        clock=clock, slo=slo,
        kill_specs=[parse_kill_spec(kill)] if kill else None,
    )
    rt.shutdown()
    uninstall_flight_recorder()
    return report, trace_path, flight_dir


# ---------------------------------------------------------------------- #
# Histogram quantile interpolation (satellite 1)
# ---------------------------------------------------------------------- #

class TestHistogramQuantile:
    def _bucket_width(self, hist: Histogram, value: float) -> float:
        lo = hist.min
        for hi in [*hist.bounds, hist.max]:
            if value <= hi:
                return max(min(hi, hist.max) - max(lo, hist.min), 0.0)
            lo = hi
        return hist.max - lo

    def test_interpolation_within_bucket_width_of_exact(self):
        rng = np.random.default_rng(7)
        values = rng.exponential(20.0, size=2000)
        hist = Histogram()
        for v in values:
            hist.observe(float(v))
        for q in (0.10, 0.25, 0.50, 0.90, 0.95, 0.99):
            exact = float(np.percentile(values, q * 100))
            err = abs(hist.quantile(q) - exact)
            assert err <= self._bucket_width(hist, exact) + 1e-9, \
                f"q={q}: err {err} exceeds bucket width"

    def test_edges_are_exact(self):
        hist = Histogram()
        for v in (3.0, 7.0, 11.0, 400.0):
            hist.observe(v)
        assert hist.quantile(0.0) == 3.0
        assert hist.quantile(1.0) == 400.0

    def test_single_value_bucket_is_exact(self):
        hist = Histogram()
        for _ in range(100):
            hist.observe(42.0)
        for q in (0.0, 0.5, 0.99, 1.0):
            assert hist.quantile(q) == 42.0

    def test_empty_and_validation(self):
        hist = Histogram()
        assert hist.quantile(0.5) == 0.0
        with pytest.raises(ValueError):
            hist.quantile(1.5)


# ---------------------------------------------------------------------- #
# Request tracing core
# ---------------------------------------------------------------------- #

class TestRequestTracer:
    def test_sampling_and_deterministic_ids(self, tmp_path):
        rt = get_request_tracer()
        rt.configure(sample_every=3, seed=11)
        assert rt.maybe_start(1) is None
        ctx = rt.maybe_start(3)
        assert ctx is not None and len(ctx.trace_id) == 16
        rt.configure(sample_every=3, seed=11)
        again = rt.maybe_start(3)
        assert again.trace_id == ctx.trace_id
        rt.configure(sample_every=3, seed=12)
        assert rt.maybe_start(3).trace_id != ctx.trace_id
        assert rt.maybe_start(None) is None

    def test_disabled_mode_is_inert(self):
        rt = get_request_tracer()
        assert not rt.enabled
        assert rt.maybe_start(0) is None
        with traced_span("serving.batch", batch_size=4):
            pass  # no scope active: falls back to the aggregate no-op
        traced_event("serving.breaker", breaker="t0", to_state="open")

    def test_combined_span_parentage_and_output(self, tmp_path):
        path = tmp_path / "t.jsonl"
        clock = ManualClock()
        rt = get_request_tracer()
        rt.configure(sample_every=1, path=path, clock=clock.now, seed=0)
        ctx = rt.maybe_start(0, now=clock.now())
        with rt.scope([ctx]):
            clock.advance(1.0)
            with traced_span("serving.batch"):
                with traced_span("shard.dispatch", shard="1"):
                    clock.advance(2.0)
                traced_event("shard.failover", shard=1)
        rt.finish(ctx, "served", now=clock.now(), latency_ms=3.0)
        rt.shutdown()
        traces = read_trace(path)
        assert len(traces) == 1
        spans = next(iter(traces.values()))
        for rec in spans:
            validate_trace_record(rec)
        by_name = {s["name"]: s for s in spans}
        root = by_name["request"]
        assert root["parent_id"] is None
        assert root["attrs"]["status"] == "served"
        assert by_name["serving.batch"]["parent_id"] == root["span_id"]
        assert (by_name["shard.dispatch"]["parent_id"]
                == by_name["serving.batch"]["span_id"])
        assert (by_name["event:shard.failover"]["parent_id"]
                == by_name["serving.batch"]["span_id"])
        assert trace_duration_ms(spans) == pytest.approx(3.0)

    def test_trace_views(self, tmp_path):
        path = tmp_path / "t.jsonl"
        clock = ManualClock()
        rt = get_request_tracer()
        rt.configure(sample_every=1, path=path, clock=clock.now, seed=0)
        for rid, dur in ((0, 5.0), (1, 9.0), (2, 1.0)):
            ctx = rt.maybe_start(rid, now=clock.now())
            clock.advance(dur)
            rt.finish(ctx, "served", now=clock.now())
        rt.shutdown()
        traces = read_trace(path)
        ranked = slowest_traces(traces, 2)
        assert [trace_duration_ms(spans) for _, spans in ranked] == [9.0, 5.0]
        text = format_trace_tree(*ranked[0])
        assert "request" in text and "9.00 ms" in text


# ---------------------------------------------------------------------- #
# End-to-end: the sharded chaos drill
# ---------------------------------------------------------------------- #

class TestShardedDrill:
    def test_spans_cross_every_layer_with_correct_parentage(
            self, predictor, tmp_path):
        report, trace_path, _ = run_drill(predictor, tmp_path, "layers")
        traces = read_trace(trace_path)
        assert traces, "sampled drill produced no traces"
        deep = None
        for spans in traces.values():
            names = {s["name"] for s in spans}
            if {"shard.dispatch", "shard.slice", "serving.pooled"} <= names:
                deep = spans
                break
        assert deep is not None, "no trace crossed into the slice ladder"
        by_id = {s["span_id"]: s for s in deep}

        def chain(rec):
            names = []
            while rec is not None:
                names.append(rec["name"])
                parent = rec["parent_id"]
                rec = by_id[parent] if parent is not None else None
            return names

        pooled = next(s for s in deep if s["name"] == "serving.pooled")
        assert chain(pooled) == ["serving.pooled", "shard.slice",
                                 "shard.dispatch", "serving.batch",
                                 "request"]
        kernel = next((s for s in deep if s["name"].startswith("tt.")),
                      None)
        assert kernel is not None, "kernel spans missing from the trace"
        assert "serving.pooled" in chain(kernel)
        waits = [s for s in deep if s["name"] == "queue.wait"]
        assert waits and all(
            by_id[w["parent_id"]]["name"] == "request" for w in waits
        )

    def test_served_responses_carry_trace_ids(self, predictor, tmp_path):
        report, trace_path, _ = run_drill(predictor, tmp_path, "ids",
                                          kill=None)
        traces = read_trace(trace_path)
        assert report["served"] == 150
        assert len(traces) == 30  # 150 requests, every 5th sampled

    def test_same_seed_runs_are_byte_identical(self, predictor, tmp_path):
        r1, t1, f1 = run_drill(predictor, tmp_path, "a")
        r2, t2, f2 = run_drill(predictor, tmp_path, "b")
        assert t1.read_bytes() == t2.read_bytes()
        assert r1["slo"] == r2["slo"]
        d1 = sorted(p.name for p in f1.iterdir())
        d2 = sorted(p.name for p in f2.iterdir())
        assert d1 == d2 and d1, "flight dumps missing or mismatched"
        for name in d1:
            assert (f1 / name).read_bytes() == (f2 / name).read_bytes()

    def test_kill_produces_slo_violation_with_resolvable_exemplars(
            self, predictor, tmp_path):
        report, trace_path, flight_dir = run_drill(
            predictor, tmp_path, "slo")
        slo = report["slo"]
        assert slo["schema"] == REPORT_SCHEMA
        assert slo["gate_passed"] is True  # gated objectives have slack
        fidelity = next(o for o in slo["objectives"]
                        if o["objective"]["name"] == "full-fidelity")
        assert not fidelity["compliant"] and fidelity["episodes"]
        exemplars = [e for ep in fidelity["episodes"]
                     for e in ep["exemplar_trace_ids"]]
        assert exemplars
        traces = read_trace(trace_path)
        resolvable = [e for e in exemplars if e in traces]
        assert resolvable, f"no exemplar resolves in the trace file: " \
                           f"{exemplars}"

    def test_flight_recorder_dumps_on_shard_down(self, predictor,
                                                 tmp_path):
        report, _, flight_dir = run_drill(predictor, tmp_path, "fr")
        dumps = sorted(p.name for p in flight_dir.iterdir())
        assert "flightrec-shard-down.json" in dumps
        doc = json.loads(
            (flight_dir / "flightrec-shard-down.json").read_text())
        assert doc["schema"] == "repro.flightrec/v1"
        assert any(e["type"] == "shard.marked_down" for e in doc["events"])
        seqs = [e["seq"] for e in doc["events"]]
        assert seqs == sorted(seqs)
        assert doc["counters_delta"], "counter deltas missing"

    def test_reconciliation_survives_observability(self, predictor,
                                                   tmp_path):
        report, _, _ = run_drill(predictor, tmp_path, "recon", kill=None)
        recon = report["reconciliation"]
        lost = recon["checks"]["no_lost_requests"]
        assert lost["passed"], "exact-ledger semantics regressed"


# ---------------------------------------------------------------------- #
# Loadgen latency bookkeeping (satellite 2)
# ---------------------------------------------------------------------- #

class TestLoadgenHistograms:
    def test_run_load_reads_shared_histogram(self):
        tt = TTConfig(rank=4, use_cache=False)
        model = build_ttrec(CFG, num_tt_tables=3, tt=tt, min_rows=50,
                            rng=0)
        clock = ManualClock()
        server = InferenceServer(Predictor(model),
                                 config=ServerConfig(), clock=clock)
        report = run_load(server, num_requests=60, seed=0, clock=clock)
        hist = get_registry().histogram("serving.latency_ms")
        assert hist.count == report["served"]
        assert report["latency_ms"]["p50"] == hist.quantile(0.50)
        assert report["latency_ms"]["p99"] == hist.quantile(0.99)
        assert report["latency_ms"]["max"] == hist.max


# ---------------------------------------------------------------------- #
# SLO engine
# ---------------------------------------------------------------------- #

def availability_policy(**kw):
    return load_policy({
        "schema": "repro.slo/v1",
        "objectives": [dict({
            "name": "avail", "metric": "availability", "target": 0.9,
            "windows": [{"ms": 100, "max_burn": 1.0}],
        }, **kw)],
    })


class TestSLOEngine:
    def test_compliant_stream(self):
        eng = SLOEngine(availability_policy(), min_count=5)
        for i in range(20):
            eng.observe("served", now=float(i), latency_ms=1.0)
        rep = eng.report(20.0)
        assert rep["compliant"] and rep["gate_passed"]
        assert rep["objectives"][0]["good"] == 20

    def test_sustained_burn_opens_and_closes_episode(self):
        eng = SLOEngine(availability_policy(), min_count=5)
        for i in range(10):
            eng.observe("shed", now=float(i), request_id=i)
        for i in range(10, 130):
            eng.observe("served", now=float(i), latency_ms=1.0)
        rep = eng.report(130.0)
        obj = rep["objectives"][0]
        assert not obj["compliant"]
        assert len(obj["episodes"]) == 1
        ep = obj["episodes"][0]
        assert ep["end_ms"] is not None and ep["exemplar_trace_ids"]
        assert not rep["gate_passed"]

    def test_short_blip_does_not_trip_multi_window(self):
        eng = SLOEngine(load_policy({
            "schema": "repro.slo/v1",
            "objectives": [{
                "name": "avail", "metric": "availability", "target": 0.9,
                "windows": [{"ms": 50, "max_burn": 1.0},
                            {"ms": 1000, "max_burn": 1.0}],
            }],
        }), min_count=5)
        for i in range(100):
            eng.observe("served", now=float(i), latency_ms=1.0)
        for i in range(100, 110):  # 10 bad in the fast window only
            eng.observe("shed", now=float(i), request_id=i)
        rep = eng.report(110.0)
        assert rep["objectives"][0]["compliant"], \
            "slow window should have vetoed the blip"

    def test_trace_id_exemplars_replace_request_fallbacks(self):
        eng = SLOEngine(availability_policy(), min_count=2)
        for i in range(8):
            eng.observe("shed", now=float(i), request_id=i)
        eng.observe("shed", now=8.0, trace_id="aaaa000011112222")
        rep = eng.report(9.0)
        exemplars = rep["objectives"][0]["episodes"][0][
            "exemplar_trace_ids"]
        assert "aaaa000011112222" in exemplars
        assert len(exemplars) <= 5

    def test_latency_and_staleness_classification(self):
        eng = SLOEngine(load_policy({
            "schema": "repro.slo/v1",
            "objectives": [
                {"name": "lat", "metric": "latency", "target": 0.5,
                 "threshold_ms": 10.0,
                 "windows": [{"ms": 100, "max_burn": 100.0}]},
                {"name": "fresh", "metric": "staleness", "target": 0.5,
                 "windows": [{"ms": 100, "max_burn": 100.0}]},
            ],
        }), min_count=1)
        eng.observe("served", now=1.0, latency_ms=5.0)
        eng.observe("served", now=2.0, latency_ms=50.0)
        eng.observe("shed", now=3.0)  # latency objective ignores sheds
        eng.observe("replica_check", now=4.0)
        eng.observe("staleness", now=5.0, count=3)
        rep = eng.report(6.0)
        lat = next(o for o in rep["objectives"]
                   if o["objective"]["name"] == "lat")
        fresh = next(o for o in rep["objectives"]
                     if o["objective"]["name"] == "fresh")
        assert (lat["good"], lat["bad"]) == (1, 1)
        assert (fresh["good"], fresh["bad"]) == (1, 3)

    @pytest.mark.parametrize("mutate", [
        lambda d: d.update(schema="nope"),
        lambda d: d.update(objectives=[]),
        lambda d: d["objectives"].append(dict(d["objectives"][0])),
        lambda d: d["objectives"][0].pop("windows"),
        lambda d: d["objectives"][0].update(metric="latency"),
        lambda d: d["objectives"][0].update(target=1.5),
    ])
    def test_load_policy_rejects_bad_documents(self, mutate):
        doc = {
            "schema": "repro.slo/v1",
            "objectives": [{
                "name": "avail", "metric": "availability", "target": 0.9,
                "windows": [{"ms": 100, "max_burn": 1.0}],
            }],
        }
        mutate(doc)
        with pytest.raises(ValueError):
            load_policy(doc)

    def test_format_report_renders_episodes(self):
        eng = SLOEngine(availability_policy(), min_count=2)
        for i in range(6):
            eng.observe("shed", now=float(i), request_id=i)
        text = format_report(eng.report(6.0))
        assert "VIOLATED" in text and "req:" in text
        assert "gate_passed=False" in text


# ---------------------------------------------------------------------- #
# Flight recorder
# ---------------------------------------------------------------------- #

class TestFlightRecorder:
    def test_breaker_open_triggers_single_dump(self, tmp_path):
        clock = ManualClock()
        rec = install_flight_recorder(
            FlightRecorder(tmp_path, clock=clock.now, event_ring=4))
        for i in range(6):
            traced_event("serving.other", i=i)
        traced_event("serving.breaker", breaker="t0", from_state="closed",
                     to_state="open")
        traced_event("serving.breaker", breaker="t1", from_state="closed",
                     to_state="open")
        dump = tmp_path / "flightrec-breaker-open.json"
        assert dump.is_file()
        doc = json.loads(dump.read_text())
        assert len(doc["events"]) <= 4  # bounded ring
        assert doc["trigger"] == "breaker-open"
        summ = rec.summary()
        assert summ["suppressed"] == {"breaker-open": 1}
        uninstall_flight_recorder()

    def test_half_open_transition_does_not_trigger(self, tmp_path):
        install_flight_recorder(FlightRecorder(tmp_path))
        traced_event("serving.breaker", breaker="t0", from_state="open",
                     to_state="half_open")
        assert not list(tmp_path.iterdir())
        uninstall_flight_recorder()


# ---------------------------------------------------------------------- #
# CLI: repro trace / repro slo-report / serve-bench flags
# ---------------------------------------------------------------------- #

class TestObservabilityCLI:
    def _write_trace(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        clock = ManualClock()
        rt = get_request_tracer()
        rt.configure(sample_every=1, path=path, clock=clock.now, seed=0)
        ctx = rt.maybe_start(0, now=clock.now())
        with rt.scope([ctx]):
            with traced_span("serving.batch"):
                clock.advance(4.0)
        rt.finish(ctx, "served", now=clock.now())
        rt.shutdown()
        return path

    def test_trace_tree_and_critical_path(self, tmp_path, capsys):
        path = self._write_trace(tmp_path)
        assert main(["trace", str(path), "--critical-path"]) == 0
        out = capsys.readouterr().out
        assert "serving.batch" in out and "critical path" in out

    def test_trace_missing_id_and_file(self, tmp_path):
        path = self._write_trace(tmp_path)
        assert main(["trace", str(path), "--trace-id", "beef"]) == 2
        assert main(["trace", str(tmp_path / "nope.jsonl")]) == 2

    def test_slo_report_gates_exit_code(self, tmp_path):
        eng = SLOEngine(availability_policy(), min_count=2)
        for i in range(6):
            eng.observe("shed", now=float(i), request_id=i)
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps(eng.report(6.0)))
        assert main(["slo-report", str(bad)]) == 1

        eng = SLOEngine(availability_policy(), min_count=2)
        for i in range(6):
            eng.observe("served", now=float(i), latency_ms=1.0)
        good = tmp_path / "good.json"
        good.write_text(json.dumps(eng.report(6.0)))
        assert main(["slo-report", str(good)]) == 0

        junk = tmp_path / "junk.json"
        junk.write_text("{}")
        assert main(["slo-report", str(junk)]) == 2

    def test_serve_bench_with_observability_flags(self, tmp_path,
                                                  capsys):
        trace_path = tmp_path / "serve.jsonl"
        policy = tmp_path / "policy.json"
        policy.write_text(json.dumps(drill_policy()))
        rc = main([
            "serve-bench", "--requests", "40", "--rank", "4",
            "--trace-sample", "4", "--trace-jsonl", str(trace_path),
            "--slo", str(policy), "--flight-dir", str(tmp_path / "fr"),
        ])
        out = capsys.readouterr().out
        assert rc == 0, out
        assert "SLO report" in out and "traces    :" in out
        traces = read_trace(trace_path)
        assert traces
        for spans in traces.values():
            for rec in spans:
                assert rec["schema"] == TRACE_SCHEMA
