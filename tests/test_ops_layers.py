"""Gradient and behaviour tests for Linear, activations, MLP and loss."""

import numpy as np
import pytest

from repro.ops import MLP, BCEWithLogitsLoss, Linear, ReLU, Sigmoid, bce_with_logits
from tests.helpers import numeric_grad_check


class TestLinear:
    def test_forward_shape_and_value(self):
        layer = Linear(3, 2, rng=0)
        x = np.ones((4, 3))
        out = layer.forward(x)
        assert out.shape == (4, 2)
        expected = x @ layer.weight.data + layer.bias.data
        np.testing.assert_allclose(out, expected)

    def test_rejects_bad_input_shape(self):
        layer = Linear(3, 2, rng=0)
        with pytest.raises(ValueError):
            layer.forward(np.ones((4, 5)))

    def test_backward_before_forward_raises(self):
        with pytest.raises(RuntimeError):
            Linear(2, 2, rng=0).backward(np.ones((1, 2)))

    def test_weight_gradient(self):
        rng = np.random.default_rng(1)
        layer = Linear(4, 3, rng=0)
        x = rng.normal(size=(5, 4))
        r = rng.normal(size=(5, 3))

        def loss():
            return float((layer.forward(x) * r).sum())

        layer.forward(x)
        layer.backward(r)
        numeric_grad_check(layer.weight.data, layer.weight.grad, loss)
        numeric_grad_check(layer.bias.data, layer.bias.grad, loss)

    def test_input_gradient(self):
        rng = np.random.default_rng(2)
        layer = Linear(4, 3, rng=0)
        x = rng.normal(size=(5, 4))
        r = rng.normal(size=(5, 3))
        layer.forward(x)
        grad_in = layer.backward(r)

        def loss():
            return float((layer.forward(x) * r).sum())

        numeric_grad_check(x, grad_in, loss)

    def test_gradient_accumulates(self):
        layer = Linear(2, 2, rng=0)
        x = np.ones((1, 2))
        layer.forward(x)
        layer.backward(np.ones((1, 2)))
        g1 = layer.weight.grad.copy()
        layer.forward(x)
        layer.backward(np.ones((1, 2)))
        np.testing.assert_allclose(layer.weight.grad, 2 * g1)

    def test_rejects_nonpositive_dims(self):
        with pytest.raises(ValueError):
            Linear(0, 2)


class TestActivations:
    def test_relu_forward(self):
        relu = ReLU()
        out = relu.forward(np.array([[-1.0, 0.0, 2.0]]))
        np.testing.assert_array_equal(out, [[0.0, 0.0, 2.0]])

    def test_relu_backward_mask(self):
        relu = ReLU()
        relu.forward(np.array([[-1.0, 3.0]]))
        grad = relu.backward(np.array([[5.0, 5.0]]))
        np.testing.assert_array_equal(grad, [[0.0, 5.0]])

    def test_sigmoid_extreme_stability(self):
        sig = Sigmoid()
        out = sig.forward(np.array([[-1000.0, 0.0, 1000.0]]))
        assert np.all(np.isfinite(out))
        np.testing.assert_allclose(out, [[0.0, 0.5, 1.0]], atol=1e-12)

    def test_sigmoid_gradient(self):
        sig = Sigmoid()
        x = np.linspace(-3, 3, 7).reshape(1, -1)
        r = np.ones_like(x)

        def loss():
            return float((sig.forward(x) * r).sum())

        sig.forward(x)
        grad = sig.backward(r)
        numeric_grad_check(x, grad, loss, samples=7)

    def test_backward_before_forward_raises(self):
        with pytest.raises(RuntimeError):
            ReLU().backward(np.ones((1, 1)))
        with pytest.raises(RuntimeError):
            Sigmoid().backward(np.ones((1, 1)))


class TestMLP:
    def test_stack_shapes(self):
        mlp = MLP([5, 8, 3], rng=0)
        assert mlp.in_features == 5 and mlp.out_features == 3
        out = mlp.forward(np.zeros((2, 5)))
        assert out.shape == (2, 3)

    def test_rejects_short_sizes(self):
        with pytest.raises(ValueError):
            MLP([4])

    def test_rejects_bad_last(self):
        with pytest.raises(ValueError):
            MLP([4, 2], last="tanh")

    def test_end_to_end_gradient(self):
        rng = np.random.default_rng(3)
        mlp = MLP([4, 6, 2], rng=0)
        x = rng.normal(size=(3, 4))
        r = rng.normal(size=(3, 2))

        def loss():
            return float((mlp.forward(x) * r).sum())

        mlp.forward(x)
        grad_in = mlp.backward(r)
        for p in mlp.parameters():
            numeric_grad_check(p.data, p.grad, loss, samples=10)
        numeric_grad_check(x, grad_in, loss, samples=10)

    def test_sigmoid_last_layer(self):
        mlp = MLP([3, 2], last="sigmoid", rng=0)
        out = mlp.forward(np.zeros((2, 3)))
        assert np.all((out > 0) & (out < 1))

    def test_parameter_count(self):
        mlp = MLP([4, 6, 2], rng=0)
        assert mlp.num_parameters() == 4 * 6 + 6 + 6 * 2 + 2


class TestBCEWithLogits:
    def test_known_value(self):
        loss, _ = bce_with_logits(np.zeros(4), np.array([0, 1, 0, 1.0]))
        np.testing.assert_allclose(loss, np.log(2.0))

    def test_gradient_formula(self):
        logits = np.array([0.5, -1.0, 2.0])
        targets = np.array([1.0, 0.0, 1.0])
        _, grad = bce_with_logits(logits, targets)
        probs = 1 / (1 + np.exp(-logits))
        np.testing.assert_allclose(grad, (probs - targets) / 3)

    def test_numeric_gradient(self):
        rng = np.random.default_rng(4)
        logits = rng.normal(size=6)
        targets = (rng.random(6) > 0.5).astype(float)
        _, grad = bce_with_logits(logits, targets)

        def loss():
            return bce_with_logits(logits, targets)[0]

        numeric_grad_check(logits, grad, loss, samples=6)

    def test_extreme_logits_finite(self):
        loss, grad = bce_with_logits(np.array([1000.0, -1000.0]), np.array([1.0, 0.0]))
        assert np.isfinite(loss) and np.all(np.isfinite(grad))
        assert loss < 1e-6

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            bce_with_logits(np.zeros(3), np.zeros(4))

    def test_empty_batch(self):
        with pytest.raises(ValueError):
            bce_with_logits(np.zeros(0), np.zeros(0))

    def test_object_wrapper(self):
        crit = BCEWithLogitsLoss()
        with pytest.raises(RuntimeError):
            crit.backward()
        loss = crit.forward(np.zeros(2), np.ones(2))
        assert loss == pytest.approx(np.log(2.0))
        assert crit.backward().shape == (2,)
