"""Smoke tests for the design-space sweep (Fig. 1 machinery)."""

import numpy as np
import pytest

from repro.analysis.design_space import DesignPoint, frontier, sweep_design_space
from repro.data import KAGGLE


@pytest.fixture(scope="module")
def points():
    spec = KAGGLE.scaled(0.0002)
    # Deliberately tiny: this exercises the sweep plumbing, not accuracy.
    return sweep_design_space(
        spec, ranks=(2,), emb_dims=(4,), table_counts=(0, 3),
        train_iters=6, eval_iters=2, batch_size=16, seed=0, min_rows=60,
    )


class TestSweep:
    def test_grid_size(self, points):
        # one baseline + one (rank=2, tables=3) point per emb dim
        assert len(points) == 2

    def test_baseline_marked(self, points):
        baselines = [p for p in points if p.num_tt_tables == 0]
        assert len(baselines) == 1
        assert baselines[0].rank == 0

    def test_compressed_smaller(self, points):
        base = next(p for p in points if p.num_tt_tables == 0)
        comp = next(p for p in points if p.num_tt_tables == 3)
        assert comp.embedding_params < base.embedding_params

    def test_metrics_populated(self, points):
        for p in points:
            assert 0.0 <= p.accuracy <= 1.0
            assert np.isfinite(p.bce)
            assert p.memory_bytes == p.embedding_params * 4


class TestFrontier:
    def test_frontier_subset_and_monotone(self, points):
        front = frontier(points)
        assert set(id(p) for p in front) <= set(id(p) for p in points)
        accs = [p.accuracy for p in front]
        assert accs == sorted(accs)

    def test_synthetic_dominance(self):
        pts = [
            DesignPoint(rank=1, emb_dim=4, num_tt_tables=3,
                        embedding_params=100, accuracy=0.7, bce=0.5),
            DesignPoint(rank=2, emb_dim=4, num_tt_tables=3,
                        embedding_params=200, accuracy=0.6, bce=0.6),  # dominated
            DesignPoint(rank=4, emb_dim=4, num_tt_tables=3,
                        embedding_params=400, accuracy=0.8, bce=0.4),
        ]
        front = frontier(pts)
        assert [p.rank for p in front] == [1, 4]
