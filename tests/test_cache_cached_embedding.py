"""Tests for CachedTTEmbeddingBag — the hybrid TT + LFU-cache operator."""

import numpy as np
import pytest

from repro.cache import CachedTTEmbeddingBag
from repro.tt import TTShape
from tests.helpers import numeric_grad_check, random_csr


def make(shape=None, **kwargs):
    shape = shape or TTShape.with_uniform_rank(60, 8, (3, 4, 5), (2, 2, 2), 4)
    defaults = dict(cache_size=8, warmup_steps=3, refresh_interval=None, rng=0)
    defaults.update(kwargs)
    return CachedTTEmbeddingBag(60, 8, shape=shape, **defaults)


class TestLifecycle:
    def test_cold_start_serves_tt(self):
        emb = make()
        idx = np.array([1, 2, 3])
        out = emb.forward(idx)
        np.testing.assert_allclose(out, emb.tt.lookup(idx), atol=1e-12)
        assert not emb.is_warm
        assert emb.hits == 0

    def test_populates_after_warmup(self):
        emb = make(warmup_steps=2)
        for _ in range(3):
            emb.forward(np.array([7, 7, 9]))
        assert emb.is_warm
        assert 7 in emb._cached_ids

    def test_cache_values_initialized_from_tt(self):
        emb = make(warmup_steps=1)
        emb.forward(np.array([5, 5, 6]))
        emb.forward(np.array([5]))  # triggers populate on step 2 >= warmup 1
        assert emb.is_warm
        mask, slots = emb._membership(np.array([5]))
        assert mask[0]
        np.testing.assert_allclose(
            emb.cache_rows.data[slots[0]], emb.tt.lookup(np.array([5]))[0], atol=1e-12
        )

    def test_hit_rate_accounting(self):
        emb = make(warmup_steps=1, cache_size=2)
        emb.forward(np.array([3, 3, 3, 4]))
        emb.forward(np.array([3, 4, 9]))  # populate happened at this step
        emb.forward(np.array([3, 4, 9]))
        assert 0 < emb.hit_rate() < 1
        assert emb.lookups == 10

    def test_refresh_keeps_hot_learned_weights(self):
        emb = make(warmup_steps=1, refresh_interval=2, cache_size=2)
        emb.forward(np.array([3, 3, 4, 4]))
        emb.forward(np.array([3, 4]))  # populate
        mask, slots = emb._membership(np.array([3]))
        emb.cache_rows.data[slots[0]] = 99.0  # simulate learned weights
        emb.forward(np.array([3, 4]))  # step 3
        emb.forward(np.array([3, 4]))  # step 4 -> refresh, 3 still hot
        mask, slots = emb._membership(np.array([3]))
        assert mask[0]
        np.testing.assert_allclose(emb.cache_rows.data[slots[0]], 99.0)

    def test_eviction_discards_learned_weights(self):
        emb = make(warmup_steps=1, refresh_interval=2, cache_size=1)
        emb.forward(np.array([3, 3]))
        emb.forward(np.array([3]))  # populate with {3}
        mask, slots = emb._membership(np.array([3]))
        emb.cache_rows.data[slots[0]] = 99.0
        # Make 4 dominate, force refresh -> 3 evicted.
        emb.forward(np.array([4, 4, 4, 4, 4]))
        emb.forward(np.array([4, 4, 4, 4, 4]))  # step 4 -> refresh
        mask, _ = emb._membership(np.array([3]))
        assert not mask[0]
        # Row 3 now serves from TT again: learned 99s are gone.
        np.testing.assert_allclose(
            emb.lookup(np.array([3]))[0], emb.tt.lookup(np.array([3]))[0], atol=1e-12
        )

    def test_populate_stats(self):
        emb = make(warmup_steps=0, cache_size=3)
        emb.tracker.record(np.array([1, 1, 2, 2, 3, 3]))
        stats = emb.populate()
        assert stats == {"inserted": 3, "kept": 0, "evicted": 0}
        emb.tracker.record(np.array([4] * 10))
        stats = emb.populate()
        assert stats["inserted"] == 1
        assert stats["kept"] == 2
        assert stats["evicted"] == 1


class TestForwardBackward:
    def test_forward_consistent_with_pure_tt_before_warmup(self):
        emb = make(warmup_steps=100)
        rng = np.random.default_rng(0)
        idx, off = random_csr(rng, 60, 5)
        out = emb.forward(idx, off)
        np.testing.assert_allclose(out, emb.tt.forward(idx, off), atol=1e-12)

    @pytest.mark.parametrize("mode", ["sum", "mean"])
    def test_gradients_mixed_cache_tt(self, mode):
        rng = np.random.default_rng(21)
        emb = make(warmup_steps=1, cache_size=4, mode=mode)
        # Warm the cache on a few hot rows.
        emb.forward(np.array([1, 1, 2, 2]))
        emb.forward(np.array([1]))
        assert emb.is_warm
        idx = np.array([1, 2, 30, 40, 1, 50])  # mix of hits and misses
        off = np.array([0, 2, 4, 6])
        alpha = rng.normal(size=6) if mode == "sum" else None
        r = rng.normal(size=(3, 8))

        def loss():
            return float((emb.forward(idx, off, alpha) * r).sum())

        emb.zero_grad()
        base_lookups = emb.lookups
        emb.forward(idx, off, alpha)
        emb.backward(r)
        for p in emb.tt.cores:
            numeric_grad_check(p.data, p.grad, loss, samples=10)
        numeric_grad_check(emb.cache_rows.data, emb.cache_rows.grad, loss, samples=10)

    def test_cached_rows_update_densely(self):
        """After SGD on cache_rows, hits serve the *updated* value while the
        TT cores still hold the old one (the two sets learn separately)."""
        emb = make(warmup_steps=1, cache_size=2)
        emb.forward(np.array([5, 5]))
        emb.forward(np.array([5]))
        assert emb.is_warm
        before_tt = emb.tt.lookup(np.array([5]))[0].copy()
        emb.zero_grad()
        emb.forward(np.array([5]))
        emb.backward(np.ones((1, 8)))
        assert not any(p.grad.any() for p in emb.tt.cores)
        emb.cache_rows.data -= 0.1 * emb.cache_rows.grad
        after = emb.lookup(np.array([5]))[0]
        assert not np.allclose(after, before_tt)
        np.testing.assert_allclose(emb.tt.lookup(np.array([5]))[0], before_tt)

    def test_backward_before_forward(self):
        with pytest.raises(RuntimeError):
            make().backward(np.ones((1, 8)))

    def test_double_backward_raises(self):
        """A second backward for one forward would silently double the
        accumulated cache-row and core gradients; it must raise instead."""
        emb = make(warmup_steps=1, cache_size=2)
        emb.forward(np.array([3, 3, 4]))
        emb.forward(np.array([3, 4]))  # warm: backward touches both paths
        idx = np.array([3, 4, 20])
        emb.zero_grad()
        emb.forward(idx)
        emb.backward(np.ones((3, 8)))
        snapshot = [p.grad.copy() for p in emb.tt.cores]
        snapshot.append(emb.cache_rows.grad.copy())
        with pytest.raises(RuntimeError, match="twice"):
            emb.backward(np.ones((3, 8)))
        after = [p.grad for p in emb.tt.cores] + [emb.cache_rows.grad]
        for g, s in zip(after, snapshot):
            assert np.array_equal(g, s)  # nothing accumulated by the raise
        # forward -> backward works again afterwards.
        emb.forward(idx)
        emb.backward(np.ones((3, 8)))

    def test_cache_grad_scatter_matches_add_at(self):
        """Duplicate-heavy hit batch: scatter_add_rows on cache-row grads
        must agree with the np.add.at oracle it replaced."""
        rng = np.random.default_rng(13)
        emb = make(warmup_steps=1, cache_size=4)
        emb.forward(np.array([1, 1, 2, 2, 3, 3]))
        emb.forward(np.array([1, 2, 3]))
        assert emb.is_warm
        # 30 lookups over 3 hot rows plus a few misses: heavy duplication.
        idx = np.concatenate([rng.choice([1, 2, 3], size=30),
                              np.array([40, 41])]).astype(np.int64)
        rng.shuffle(idx)
        grad = rng.normal(size=(idx.size, 8))
        emb.zero_grad()
        emb.forward(idx)
        emb.backward(grad)
        mask, slots = emb._membership(idx)
        expected = np.zeros_like(emb.cache_rows.grad)
        np.add.at(expected, slots, grad[mask])
        np.testing.assert_allclose(emb.cache_rows.grad, expected, atol=1e-12)

    def test_validated_read_serves_repaired_row(self):
        """Validation and serving must use the same gather: a row poisoned
        before forward is repaired AND the repaired value is what lands in
        the output (not a stale pre-scrub copy)."""
        emb = make(warmup_steps=1, cache_size=2)
        emb.forward(np.array([5, 5, 6]))
        emb.forward(np.array([5, 6]))
        assert emb.is_warm
        emb.validate_reads = True
        mask, slots = emb._membership(np.array([5]))
        assert mask[0]
        emb.cache_rows.data[slots[0]] = np.nan
        out = emb.forward(np.array([5]))
        assert np.isfinite(out).all()
        np.testing.assert_allclose(out[0], emb.tt.lookup(np.array([5]))[0],
                                   atol=1e-12)
        assert emb.repaired_rows == 1


class TestConfigValidation:
    def test_cache_fraction_default_paper_value(self):
        emb = CachedTTEmbeddingBag(100_000, 8, rank=2, rng=0)
        assert emb.cache_size == 10  # 0.01% of 100k

    def test_cache_size_clamped_to_rows(self):
        emb = make(cache_size=1000)
        assert emb.cache_size == 60

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            make(cache_size=0)
        with pytest.raises(ValueError):
            make(warmup_steps=-1)
        with pytest.raises(ValueError):
            make(refresh_interval=0)
        with pytest.raises(ValueError):
            CachedTTEmbeddingBag(60, 8, cache_fraction=0.0, rng=0)

    def test_num_parameters_counts_cache(self):
        emb = make(cache_size=8)
        assert emb.num_parameters() == emb.tt.num_parameters() + 8 * 8
        assert emb.compression_ratio() == pytest.approx(
            60 * 8 / emb.num_parameters()
        )


class TestStats:
    def test_stats_structured_dict(self):
        emb = make(warmup_steps=1, cache_size=2)
        emb.forward(np.array([3, 3, 3, 4]))
        emb.forward(np.array([3, 4, 9]))  # populate fires this step
        emb.forward(np.array([3, 4, 9]))
        s = emb.stats()
        assert s["lookups"] == 10
        assert s["hits"] + s["misses"] == s["lookups"]
        assert s["hit_rate"] == pytest.approx(emb.hit_rate())
        assert s["hit_rate"] == pytest.approx(s["hits"] / s["lookups"])
        assert s["insertions"] >= 1 and s["refreshes"] >= 1
        assert s["resident_rows"] <= s["cache_size"] == 2
        assert s["populated"] is True

    def test_stats_cold(self):
        s = make().stats()
        assert s["lookups"] == 0 and s["hits"] == 0
        assert s["hit_rate"] == 0.0
        assert s["populated"] is False

    def test_reset_stats_keeps_cache_contents(self):
        emb = make(warmup_steps=1, cache_size=2)
        emb.forward(np.array([3, 3, 4]))
        emb.forward(np.array([3, 4]))
        resident_before = emb.stats()["resident_rows"]
        emb.reset_stats()
        s = emb.stats()
        assert s["lookups"] == 0 and s["hits"] == 0 and s["refreshes"] == 0
        assert s["resident_rows"] == resident_before  # contents untouched
        assert emb.hit_rate() == 0.0
        # Counting resumes cleanly after the reset.
        emb.forward(np.array([3]))
        assert emb.stats()["lookups"] == 1

    def test_extra_state_round_trips_every_counter(self):
        """Regression: load_extra_state used to drop misses/insertions/
        evictions/refreshes, breaking ``lookups == hits + misses`` (and the
        Fig. 10/12 instrumentation) after a checkpoint resume."""
        emb = make(warmup_steps=1, cache_size=2, refresh_interval=2)
        for _ in range(5):
            emb.forward(np.array([3, 3, 4, 9]))
        s = emb.stats()
        assert s["misses"] > 0 and s["insertions"] > 0 and s["refreshes"] > 0

        fresh = make(warmup_steps=1, cache_size=2, refresh_interval=2)
        fresh.load_extra_state(emb.extra_state())
        rs = fresh.stats()
        for key in ("lookups", "hits", "misses", "repairs",
                    "insertions", "evictions", "refreshes"):
            assert rs[key] == s[key], key
        assert rs["lookups"] == rs["hits"] + rs["misses"] > 0

    def test_load_extra_state_tolerates_old_checkpoints(self):
        """Checkpoints written before all counters were persisted restore
        what they have and zero the rest (no KeyError)."""
        emb = make(warmup_steps=1, cache_size=2)
        emb.forward(np.array([3, 3, 4]))
        state = emb.extra_state()
        for key in ("misses", "insertions", "evictions", "refreshes"):
            state.pop(key)
        fresh = make(warmup_steps=1, cache_size=2)
        fresh.load_extra_state(state)
        s = fresh.stats()
        assert s["lookups"] == 3 and s["misses"] == 0

    def test_legacy_counter_shims(self):
        """The pre-registry attribute API still reads and writes."""
        emb = make(warmup_steps=1, cache_size=2)
        emb.forward(np.array([3, 3, 4]))
        assert emb.lookups == 3
        emb.lookups = 7  # checkpoint restore path assigns directly
        assert emb.stats()["lookups"] == 7
        emb.repaired_rows += 2
        assert emb.stats()["repairs"] == 2
