"""Tests for the sharded serving tier (ISSUE-6).

The acceptance spec: topology tiles every table with bounded imbalance,
failover to the hot-row replica is **bit-identical** for mirrored rows,
chaos at every ``shard.*`` site reconciles against the defensive
ledgers with zero lost accepted requests, the health plane detects a
silent death within one heartbeat window, and a killed shard walks the
supervised restart → re-warm → readmission path.
"""

import numpy as np
import pytest

from repro.data import KAGGLE
from repro.inference import Predictor
from repro.models import DLRMConfig, TTConfig, build_ttrec
from repro.reliability import FaultInjector
from repro.serving import ManualClock, Request, ServerConfig
from repro.sharding import (
    ReplicaStore,
    ShardConfig,
    ShardRouter,
    build_shard_plan,
    parse_kill_spec,
    pool_rows,
    run_sharded_load,
)
from repro.telemetry import get_registry

SPEC = KAGGLE.scaled(0.0003)
CFG = DLRMConfig(table_sizes=SPEC.table_sizes, emb_dim=8,
                 bottom_mlp=(16,), top_mlp=(16,))


@pytest.fixture(autouse=True)
def _fresh_metrics():
    """Serving and shard counters live in the process-wide registry."""
    reg = get_registry()
    reg.reset(prefix="serving.")
    reg.reset(prefix="shard.")
    yield
    reg.reset(prefix="serving.")
    reg.reset(prefix="shard.")


@pytest.fixture(scope="module")
def predictor():
    # plan_policy="fixed" pins the TT contraction schedule: per-row
    # lookup bits must not depend on batch composition, or replica
    # failover could not promise bit-identity.
    tt = TTConfig(rank=4, use_cache=False, plan_policy="fixed")
    model = build_ttrec(CFG, num_tt_tables=5, tt=tt, min_rows=50, rng=0)
    return Predictor(model)


def make_router(predictor, *, num_shards=3, injector=None, clock=None,
                shard_kwargs=None, server_kwargs=None):
    clock = clock if clock is not None else ManualClock()
    return ShardRouter(
        predictor,
        config=ServerConfig(**(server_kwargs or {})),
        shard_config=ShardConfig(num_shards=num_shards,
                                 **(shard_kwargs or {})),
        injector=injector, clock=clock,
    ), clock


def hot_request(rng, rid, *, hot_rows=64, deadline_ms=None):
    """A request whose ids all fall in every slice's mirrored head."""
    sparse = [
        rng.integers(0, min(hot_rows, size), size=2)
        for size in CFG.table_sizes
    ]
    return Request(dense=rng.normal(size=CFG.num_dense), sparse=sparse,
                   deadline_ms=deadline_ms, request_id=rid)


# ---------------------------------------------------------------------- #
# Topology
# ---------------------------------------------------------------------- #

class TestShardPlan:
    def test_slices_tile_every_table(self):
        plan = build_shard_plan(CFG.table_sizes, 4)
        for t, size in enumerate(CFG.table_sizes):
            parts = plan.slices_of_table(t)
            assert parts[0].row_lo == 0 and parts[-1].row_hi == size
            for a, b in zip(parts, parts[1:]):
                assert a.row_hi == b.row_lo

    def test_giant_table_is_row_split(self):
        sizes = (100_000, 10, 10, 10)
        plan = build_shard_plan(sizes, 4)
        parts = plan.slices_of_table(0)
        assert len(parts) > 1
        assert {sl.shard for sl in parts} == set(range(4))
        hi, lo = plan.spread()
        assert hi - lo <= sizes[0]  # and in fact far tighter:
        assert hi <= 1.2 * sum(sizes) / 4

    def test_replica_is_a_sibling(self):
        plan = build_shard_plan(CFG.table_sizes, 4)
        for sl in plan.slices:
            assert sl.replica != sl.shard
            assert 0 <= sl.replica < 4

    def test_single_shard_degenerate(self):
        plan = build_shard_plan(CFG.table_sizes, 1)
        assert all(sl.shard == 0 and sl.replica == 0 for sl in plan.slices)

    def test_deterministic(self):
        a = build_shard_plan(CFG.table_sizes, 4)
        b = build_shard_plan(CFG.table_sizes, 4)
        assert [sl.describe() for sl in a.slices] \
            == [sl.describe() for sl in b.slices]

    @pytest.mark.parametrize("seed", range(5))
    def test_property_spread_bounded(self, seed):
        rng = np.random.default_rng(seed)
        sizes = tuple(int(10 ** rng.uniform(1, 5)) for _ in range(12))
        for shards in (2, 4, 7):
            plan = build_shard_plan(sizes, shards)
            hi, lo = plan.spread()
            # Row-splitting caps every piece at the ideal share, so the
            # LPT bound applies to pieces, not whole tables.
            max_piece = max(sl.num_rows for sl in plan.slices)
            assert hi - lo <= max_piece

    def test_covers_mask(self):
        plan = build_shard_plan((100,), 1)
        sl = plan.slices[0]
        np.testing.assert_array_equal(
            sl.covers(np.array([0, 50, 99, 100, -1])),
            [True, True, True, False, False],
        )


# ---------------------------------------------------------------------- #
# Replication primitives
# ---------------------------------------------------------------------- #

class TestReplicaStore:
    def _slice(self):
        return build_shard_plan((100,), 1).slices[0]

    def test_warm_gather_roundtrip(self):
        sl = self._slice()
        rows = np.arange(800, dtype=np.float64).reshape(100, 8)
        store = ReplicaStore(hot_rows=16)
        n = store.warm(sl, np.arange(30), lambda ids: rows[ids])
        assert n == 16  # capped at hot_rows
        got = store.gather(sl, np.array([3, 1, 3]))
        np.testing.assert_array_equal(got, rows[[3, 1, 3]])

    def test_coverage_mask(self):
        sl = self._slice()
        rows = np.zeros((100, 8))
        store = ReplicaStore(hot_rows=4)
        store.warm(sl, np.array([5, 7, 9, 11]), lambda ids: rows[ids])
        np.testing.assert_array_equal(
            store.coverage(sl, np.array([5, 6, 11])), [True, False, True]
        )

    def test_consistency_check_detects_and_repairs(self):
        sl = self._slice()
        rows = np.random.default_rng(0).normal(size=(100, 8))
        store = ReplicaStore(hot_rows=8)
        store.warm(sl, np.arange(8), lambda ids: rows[ids])
        mirror = store._mirrors[(0, 0)]
        mirror.rows[2, 3] += 1e-9  # a single flipped bit is a violation
        assert store.consistency_check(sl, lambda ids: rows[ids]) == 1
        assert store.consistency_check(sl, lambda ids: rows[ids]) == 0
        assert store.stats()["violations"] == 1

    def test_pool_rows_matches_naive(self):
        rng = np.random.default_rng(1)
        rows = rng.normal(size=(10, 4))
        bag_of = np.array([0, 0, 1, 2, 2, 2, 4, 4, 4, 4])
        pooled = pool_rows(rows, bag_of, 5, 4)
        for b in range(5):
            np.testing.assert_array_equal(pooled[b],
                                          rows[bag_of == b].sum(axis=0))


# ---------------------------------------------------------------------- #
# Failover determinism (the headline property)
# ---------------------------------------------------------------------- #

class TestFailoverDeterminism:
    def _serve(self, router, clock, requests):
        for req in requests:
            clock.advance(1.0)
            status = router.submit(req)
            assert status["status"] == "queued"
        out = {}
        for resp in router.drain():
            out[resp["request_id"]] = resp
        return out

    def test_replica_failover_is_bit_identical(self, predictor):
        rng = np.random.default_rng(7)
        requests = [hot_request(rng, rid) for rid in range(16)]

        router_a, clock_a = make_router(predictor)
        healthy = self._serve(router_a, clock_a, requests)

        get_registry().reset(prefix="serving.")
        get_registry().reset(prefix="shard.")
        router_b, clock_b = make_router(predictor)
        victim = 1
        router_b.kill_shard(victim, clock_b.now())
        failed_over = self._serve(router_b, clock_b, requests)

        assert router_b.stats()["replica_hits"] > 0
        assert router_b.stats()["prior_fills"] == 0
        for rid, resp in healthy.items():
            # Bit-identical, not approximately equal: the replica path
            # materialises the same lookup rows and pools with the same
            # reduction as the primary.
            assert resp["prob"] == failed_over[rid]["prob"], (
                f"request {rid}: primary {resp['prob']!r} != "
                f"replica {failed_over[rid]['prob']!r}"
            )
        assert any(r["degraded"] for r in failed_over.values())
        assert not any(r["degraded"] for r in healthy.values())

    def test_unmirrored_rows_fall_to_prior(self, predictor):
        rng = np.random.default_rng(3)
        router, clock = make_router(predictor,
                                    shard_kwargs={"hot_rows": 4})
        router.kill_shard(0, clock.now())
        # Ids far beyond any 4-row mirror head on at least some tables.
        sparse = [np.array([size - 1], dtype=np.int64)
                  for size in CFG.table_sizes]
        req = Request(dense=rng.normal(size=CFG.num_dense), sparse=sparse,
                      deadline_ms=None, request_id=0)
        assert router.submit(req)["status"] == "queued"
        (resp,) = router.drain()
        assert np.isfinite(resp["prob"])
        assert resp["degraded"]
        assert router.stats()["prior_fills"] > 0


# ---------------------------------------------------------------------- #
# Chaos reconciliation
# ---------------------------------------------------------------------- #

class TestShardChaos:
    @pytest.mark.parametrize("seed", range(3))
    def test_crash_slow_chaos_reconciles(self, predictor, seed):
        inj = FaultInjector(seed=seed)
        inj.register("shard.crash", 0.02)
        inj.register("shard.slow", 0.08)
        router, clock = make_router(predictor, injector=inj)
        report = run_sharded_load(router, num_requests=250, seed=seed,
                                  clock=clock)
        assert report["reconciliation"]["passed"], \
            report["reconciliation"]["checks"]
        assert report["non_finite_outputs"] == 0
        # Every shard the chaos took out was readmitted by the end.
        assert report["ready"]["full_capacity"]
        assert report["served"] + report["outcomes"]["shed"] \
            + report["outcomes"]["rejected"] \
            + report["stats"]["shed"]["deadline"] == report["requests"]

    def test_all_sites_chaos_reconciles(self, predictor):
        inj = FaultInjector(seed=11)
        inj.register("shard.crash", 0.01)
        inj.register("shard.hang", 0.01)
        inj.register("shard.slow", 0.05)
        inj.register("shard.net_drop", 0.05)
        inj.register("serving.backend", 0.03)
        router, clock = make_router(predictor, injector=inj)
        report = run_sharded_load(router, num_requests=300, seed=5,
                                  clock=clock,
                                  kill_specs=[parse_kill_spec("2@40ms")])
        assert report["reconciliation"]["passed"], \
            report["reconciliation"]["checks"]
        assert report["non_finite_outputs"] == 0
        assert report["failovers"] >= 1  # the scheduled kill at least
        assert "fleet_readmitted" in report["reconciliation"]["checks"]
        assert report["ready"]["full_capacity"]

    def test_failover_latency_reported(self, predictor):
        router, clock = make_router(predictor)
        report = run_sharded_load(router, num_requests=150, seed=0,
                                  clock=clock,
                                  kill_specs=[parse_kill_spec("1@30ms")])
        assert report["failover_ms"]["count"] >= 1
        assert report["failover_ms"]["p99"] >= 0.0


# ---------------------------------------------------------------------- #
# Health plane and supervised recovery
# ---------------------------------------------------------------------- #

class TestHealthPlane:
    def test_silent_death_detected_within_window(self, predictor):
        router, clock = make_router(
            predictor,
            shard_kwargs={"heartbeat_interval_ms": 50.0,
                          "miss_threshold": 3,
                          "restart_after_ms": None},
        )
        router.tick(clock.now())  # baseline probe round at t=0
        clock.advance(10.0)
        kill_at = clock.now()
        router.workers[2].kill(kill_at, cause="scheduled")
        window = router.health.detection_window_ms
        while router.health.is_up(2):
            clock.advance(25.0)
            router.tick(clock.now())
            assert clock.now() - kill_at <= window + 50.0 + 25.0, \
                "heartbeat backstop missed its detection window"
        down_at = router.health.marked_down_at[2]
        assert down_at is not None
        assert down_at - kill_at <= window + 50.0
        assert router.healthz()["status"] == "degraded"
        assert router.healthz()["shards"]["up"] == 2
        assert router.readyz() == {"ready": True, "full_capacity": False,
                                   "shards_up": 2}

    def test_restart_rewarm_readmit(self, predictor):
        router, clock = make_router(
            predictor,
            shard_kwargs={"heartbeat_interval_ms": 20.0,
                          "miss_threshold": 2,
                          "restart_after_ms": 100.0,
                          "rewarm_ms": 50.0},
        )
        router.tick(clock.now())
        clock.advance(5.0)
        router.kill_shard(1, clock.now())
        for _ in range(60):
            clock.advance(10.0)
            router.tick(clock.now())
            if router.health.is_up(1) \
                    and router.workers[1].state == "up":
                break
        else:
            pytest.fail("shard 1 never readmitted")
        stats = router.workers[1].stats()
        assert stats["rewarmed_rows"] > 0
        assert router.readyz()["full_capacity"]
        # The readmitted shard's mirrors were refreshed and audited.
        assert sum(r["consistency_checks"]
                   for r in router.stats()["replicas"]) > 0

    def test_dispatch_failure_marks_down_fail_fast(self, predictor):
        rng = np.random.default_rng(0)
        router, clock = make_router(predictor)
        router.kill_shard(0, clock.now())
        assert router.health.is_up(0)  # not yet detected
        clock.advance(1.0)
        assert router.submit(hot_request(rng, 0))["status"] == "queued"
        router.drain()
        assert not router.health.is_up(0)  # fail-fast on the dispatch

    def _serve_one(self, router, clock, rng, rid):
        clock.advance(1.0)
        assert router.submit(hot_request(rng, rid))["status"] == "queued"
        (resp,) = router.drain()
        return resp

    def test_single_timeout_does_not_mark_down(self, predictor):
        """One slow dispatch is a breaker strike, not a dead shard."""
        rng = np.random.default_rng(2)
        router, clock = make_router(predictor)
        worker = router.workers[0]
        worker._pending_penalty_ms = \
            10 * router.shard_config.shard_deadline_ms
        resp = self._serve_one(router, clock, rng, 0)
        assert resp["degraded"]  # this dispatch failed over...
        assert router.health.is_up(0)  # ...but the shard stays up
        assert worker.breaker.state == "closed"
        assert worker.breaker.snapshot()["recent_failures"] == 1
        # The penalty was transient: the next batch is served clean.
        resp = self._serve_one(router, clock, rng, 1)
        assert not resp["degraded"]

    def test_breaker_opening_marks_down_then_readmits(self, predictor):
        """Repeated timeouts open the breaker -> down -> re-warm -> up."""
        rng = np.random.default_rng(4)
        router, clock = make_router(
            predictor,
            shard_kwargs={"restart_after_ms": 60.0, "rewarm_ms": 30.0},
        )
        worker = router.workers[0]
        threshold = router.config.failure_threshold
        for rid in range(threshold):
            assert router.health.is_up(0)
            worker._pending_penalty_ms = \
                10 * router.shard_config.shard_deadline_ms
            self._serve_one(router, clock, rng, rid)
        assert worker.breaker.state == "open"
        assert not router.health.is_up(0)  # down only once it opened
        assert router.health.verdict[0] == "down"
        # The worker itself never died; the supervisor still routes it
        # through forced re-warm before readmission.
        assert worker.state == "up"
        for _ in range(40):
            clock.advance(10.0)
            router.tick(clock.now())
            if router.health.is_up(0):
                break
        else:
            pytest.fail("breaker-marked shard never readmitted")
        assert worker.state == "up"
        assert worker.breaker.state == "closed"  # clean slate on readmit
        assert router.readyz()["full_capacity"]
        resp = self._serve_one(router, clock, rng, 99)
        assert not resp["degraded"]

    def test_hung_shard_self_heals_and_is_readmitted(self, predictor):
        """Heartbeat-detected hang: shard self-heals, re-warms, rejoins."""
        router, clock = make_router(
            predictor,
            shard_kwargs={"heartbeat_interval_ms": 20.0,
                          "miss_threshold": 2, "hang_ms": 60.0,
                          "restart_after_ms": 80.0, "rewarm_ms": 30.0},
        )
        router.tick(clock.now())
        clock.advance(5.0)
        worker = router.workers[1]
        now = clock.now()
        worker.state = "hung"
        worker.hang_until = now + worker.hang_ms
        worker.impaired_since = now
        saw_down = False
        for _ in range(60):
            clock.advance(10.0)
            router.tick(clock.now())
            saw_down = saw_down or not router.health.is_up(1)
            if saw_down and router.health.is_up(1) \
                    and worker.state == "up":
                break
        else:
            pytest.fail("hung shard never marked down + readmitted")
        assert worker.stats()["crashes"] == 0  # healed, never killed
        assert worker.stats()["rewarmed_rows"] > 0
        assert router.readyz()["full_capacity"]

    def test_watchdog_kills_shard_hung_past_restart_deadline(self,
                                                             predictor):
        """A wedged worker is killed and restarted, not waited out."""
        router, clock = make_router(
            predictor,
            shard_kwargs={"heartbeat_interval_ms": 20.0,
                          "miss_threshold": 2, "hang_ms": 100_000.0,
                          "restart_after_ms": 80.0, "rewarm_ms": 30.0},
        )
        router.tick(clock.now())
        clock.advance(5.0)
        worker = router.workers[2]
        now = clock.now()
        worker.state = "hung"
        worker.hang_until = now + worker.hang_ms
        worker.impaired_since = now
        for _ in range(60):
            clock.advance(10.0)
            router.tick(clock.now())
            if router.health.is_up(2) and worker.state == "up":
                break
        else:
            pytest.fail("wedged shard never watchdog-restarted")
        # Killed by the watchdog (scheduled-kill ledger, not a chaos
        # crash: reconciliation against shard.crash stays balanced).
        assert worker.stats()["crashes"] == 0
        assert worker.stats()["rewarmed_rows"] > 0
        assert router.readyz()["full_capacity"]


# ---------------------------------------------------------------------- #
# Kill-spec parsing
# ---------------------------------------------------------------------- #

class TestKillSpec:
    @pytest.mark.parametrize("spec,shard,at_ms", [
        ("1@2s", 1, 2000.0),
        ("0@500ms", 0, 500.0),
        ("3@250", 3, 250.0),
        (" 2@1.5s ", 2, 1500.0),
    ])
    def test_parses(self, spec, shard, at_ms):
        ks = parse_kill_spec(spec)
        assert (ks.shard, ks.at_ms) == (shard, at_ms)

    @pytest.mark.parametrize("bad", ["", "x@2s", "1@", "1@2m", "@2s", "1"])
    def test_rejects_garbage(self, bad):
        with pytest.raises(ValueError):
            parse_kill_spec(bad)

    def test_kill_targets_existing_shard(self, predictor):
        router, clock = make_router(predictor, num_shards=2)
        with pytest.raises(ValueError, match="shard 7"):
            run_sharded_load(router, num_requests=1, clock=clock,
                             kill_specs=[parse_kill_spec("7@1ms")])
