"""Tests for ``repro lint`` (AST rules, runner, CLI) and the runtime
numeric sanitizer.

Fixture files under ``tests/fixtures/lint/`` each plant exactly the
violations their rule should catch; the directory mirrors the hot-path
scoping (``repro/tt``, ``repro/cache``) so path-scoped rules fire without
special-cased test configuration. The dogfood test then runs the linter
over the repo's own ``src/`` tree and requires a clean exit.
"""

import json
import subprocess
from pathlib import Path

import numpy as np
import pytest

from repro.analysis.static import (
    NumericFaultError,
    NumericSanitizer,
    all_rules,
    lint_paths,
)
from repro.analysis.static.contracts import all_passes
from repro.analysis.static.core import FileContext
from repro.analysis.static.diff import parse_unified_diff
from repro.analysis.static.rules import path_matches
from repro.analysis.static.runner import (
    LintConfig,
    format_json,
    load_config,
    validate_report,
    write_baseline,
)
from repro.analysis.static.sarif import format_sarif, validate_sarif
from repro.cli import main
from repro.data import KAGGLE, SyntheticCTRDataset
from repro.models import DLRMConfig, TTConfig, build_ttrec
from repro.ops.loss import bce_with_logits
from repro.reliability import FaultInjector
from repro.utils.dtypes import default_dtype, dtype_policy, result_dtype

REPO = Path(__file__).resolve().parent.parent
FIXTURES = REPO / "tests" / "fixtures" / "lint"
PYPROJECT = REPO / "pyproject.toml"


def lint_fixture(name: str, **config_overrides):
    cfg = load_config(PYPROJECT)
    for key, value in config_overrides.items():
        setattr(cfg, key, value)
    return lint_paths([FIXTURES / name], config=cfg)


def fired(report, rule):
    return [(f.line, f.rule) for f in report.findings if f.rule == rule]


XMOD = FIXTURES / "xmod"


def lint_xmod(sub: str, select: list[str], **config_overrides):
    """Lint one XMOD fixture mini-package self-contained (no graph roots)."""
    cfg = load_config(PYPROJECT)
    cfg.select = select
    cfg.graph_roots = []
    for key, value in config_overrides.items():
        setattr(cfg, key, value)
    return lint_paths([XMOD / sub], config=cfg)


def located(report, rule):
    return [(Path(f.path).name, f.line) for f in report.findings
            if f.rule == rule]


class TestRuleFixtures:
    """Each rule catches its planted violation at the expected line."""

    def test_rng001(self):
        report = lint_fixture("viol_rng001.py")
        assert fired(report, "RNG001") == [(6, "RNG001"), (7, "RNG001")]
        assert len(report.findings) == 2  # nothing else fires

    def test_dt001(self):
        report = lint_fixture("repro/tt/viol_dt001.py")
        assert fired(report, "DT001") == [(6, "DT001")]

    def test_dt002(self):
        report = lint_fixture("repro/tt/viol_dt002.py")
        assert fired(report, "DT002") == [(6, "DT002"), (7, "DT002")]

    def test_dt003(self):
        report = lint_fixture("repro/tt/viol_dt003.py")
        assert fired(report, "DT003") == [(8, "DT003")]

    def test_dtype_rules_scoped_to_hot_path(self):
        # The same float64 literal outside a hot-path directory is legal.
        report = lint_fixture("repro/tt/viol_dt001.py", hot_path=["nowhere"])
        assert fired(report, "DT001") == []

    def test_det001(self):
        report = lint_fixture("viol_det001.py")
        assert fired(report, "DET001") == [(7, "DET001"), (8, "DET001")]

    def test_det001_clock_exempt(self):
        report = lint_fixture("viol_det001.py",
                              clock_exempt=["fixtures/lint"])
        assert fired(report, "DET001") == []

    def test_det002(self):
        report = lint_fixture("viol_det002.py")
        assert fired(report, "DET002") == [(6, "DET002")]

    def test_exc001(self):
        report = lint_fixture("viol_exc001.py")
        assert fired(report, "EXC001") == [(7, "EXC001")]

    def test_exc002(self):
        report = lint_fixture("viol_exc002.py")
        assert fired(report, "EXC002") == [(7, "EXC002")]

    def test_mut001_alias_direct_and_underscore_exemption(self):
        report = lint_fixture("repro/cache/viol_mut001.py")
        # Alias write (line 6) and direct write (line 7) both fire; the
        # trailing-underscore function does not.
        assert fired(report, "MUT001") == [(6, "MUT001"), (7, "MUT001")]

    def test_clean_file_passes_every_rule(self):
        report = lint_fixture("clean.py")
        assert report.findings == []
        assert report.ok

    def test_noqa_suppression(self):
        report = lint_fixture("noqa_case.py")
        # Two suppressed (targeted + blanket); the mismatched rule id on
        # line 8 does not cover RNG001, so that one still fires.
        assert report.suppressed == 2
        assert fired(report, "RNG001") == [(8, "RNG001")]

    def test_det003(self):
        report = lint_fixture("viol_det003.py",
                              process_scope=["fixtures/lint"])
        assert fired(report, "DET003") == [
            (10, "DET003"), (11, "DET003"), (12, "DET003"), (13, "DET003"),
        ]

    def test_det003_scoped_to_process_modules(self):
        # Outside process-scope paths the same entropy calls are allowed
        # (single-process code may legitimately want a fresh UUID).
        report = lint_fixture("viol_det003.py")
        assert fired(report, "DET003") == []

    def test_obs001(self):
        # The fixture lives under repro/serving/, inside the default
        # trace-scope: raw trace(), raw emit_event(), direct Tracer.span.
        report = lint_fixture("repro/serving/viol_obs001.py")
        assert fired(report, "OBS001") == [
            (8, "OBS001"), (9, "OBS001"), (11, "OBS001"),
        ]

    def test_obs001_scoped_to_trace_modules(self):
        # Outside trace-scope the aggregate-only entry points are fine
        # (kernels, training loops, the telemetry module itself).
        report = lint_fixture("repro/serving/viol_obs001.py",
                              trace_scope=["nowhere"])
        assert fired(report, "OBS001") == []

    def test_all_documented_rules_registered(self):
        assert set(all_rules()) == {
            "RNG001", "DT001", "DT002", "DT003",
            "DET001", "DET002", "DET003", "EXC001", "EXC002", "MUT001",
            "OBS001", "NOQA001",
        }
        assert set(all_passes()) == {
            "XMOD001", "XMOD002", "XMOD003", "XMOD004", "XMOD005",
        }

    def test_noqa001_unknown_suppression_id(self):
        report = lint_fixture("viol_noqa001.py")
        # The bogus id neither suppresses RNG001 nor goes unnoticed.
        assert fired(report, "NOQA001") == [(6, "NOQA001")]
        assert fired(report, "RNG001") == [(6, "RNG001")]

    def test_noqa_multi_rule_comma_list(self):
        src = ("import numpy as np\n"
               "x = np.random.rand(3)  # repro: noqa[RNG001, DT001]\n")
        ctx = FileContext("x.py", src)
        assert ctx.suppressed("RNG001", 2)
        assert ctx.suppressed("DT001", 2)
        assert not ctx.suppressed("EXC001", 2)


class TestContractPasses:
    """Each XMOD pass reproduces its planted cross-module drift at the
    expected file and line, and nothing else fires."""

    def test_xmod001_fault_site_drift_both_directions(self):
        report = lint_xmod("sites", ["XMOD001"],
                           fault_registry=["xmod/sites/registry.py"])
        assert located(report, "XMOD001") == [
            ("fire.py", 7),       # typo'd site never registered
            ("registry.py", 6),   # registered site never fired
        ]
        assert all(f.severity == "error" for f in report.findings)
        assert not report.ok

    def test_xmod002_metric_drift(self):
        report = lint_xmod("metrics", ["XMOD002"])
        assert located(report, "XMOD002") == [
            ("reader.py", 6),   # read of a never-written name
            ("writer.py", 7),   # write-only orphan
        ]
        severity = {Path(f.path).name: f.severity for f in report.findings}
        assert severity == {"reader.py": "error", "writer.py": "warning"}
        # Unmatched reads fail the run; write-only orphans alone do not.
        assert not report.ok
        assert len(report.warnings) == 1

    def test_xmod003_schema_tag_drift(self):
        report = lint_xmod("schemas", ["XMOD003"])
        assert located(report, "XMOD003") == [
            ("drift.py", 3),    # minority version against prevailing v1
            ("writer.py", 11),  # written tag with no reader
        ]

    def test_xmod004_state_machine_drift(self):
        report = lint_xmod("states", ["XMOD004"],
                           state_scope=["xmod/states"])
        assert located(report, "XMOD004") == [
            ("dispatch.py", 5),    # comparison against a typo'd state
            ("dispatch.py", 15),   # non-exhaustive chain, no else
            ("machine.py", 12),    # state assigned but never dispatched on
        ]
        warnings = report.warnings
        assert [f.line for f in warnings] == [15]
        assert "limbo, parked" in warnings[0].message

    def test_xmod004_local_flow_production(self):
        # "limbo" reaches the attribute only through a local
        # (`self.state = to` after `if to == "limbo"`): the comparison in
        # dispatch.py must not be reported as dead.
        report = lint_xmod("states", ["XMOD004"], state_scope=["xmod/states"])
        assert not any("'limbo'" in f.message and "never assigned" in f.message
                       for f in report.findings)

    def test_xmod004_single_guard_if_is_not_a_chain(self):
        # dispatch.py has two single-branch guards (lines 5 and 11); only
        # the real if/elif chain at line 15 may warn about missing states.
        report = lint_xmod("states", ["XMOD004"], state_scope=["xmod/states"])
        assert [f.line for f in report.warnings] == [15]

    def test_xmod005_dtype_taint(self):
        report = lint_xmod("dtype", ["XMOD005"],
                           hot_path=["xmod/dtype/hot"])
        # Only the raw leak fires: the dtype'd helper and the
        # `.astype(...)`-at-the-boundary call are exempt.
        assert located(report, "XMOD005") == [("kernel.py", 9)]

    def test_xmod_passes_obey_select(self):
        report = lint_xmod("states", ["XMOD005"], state_scope=["xmod/states"])
        assert report.findings == []

    def test_select_unknown_rule_id_raises(self):
        cfg = load_config(PYPROJECT)
        cfg.select = ["NOPE001"]
        with pytest.raises(ValueError):
            lint_paths([FIXTURES / "clean.py"], config=cfg)


class TestSarif:
    def test_sarif_document_validates(self):
        report = lint_fixture("viol_rng001.py")
        doc = json.loads(format_sarif(report))
        validate_sarif(doc)
        assert doc["version"] == "2.1.0"
        run = doc["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro-lint"
        assert {r["ruleId"] for r in run["results"]} == {"RNG001"}
        rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
        assert {"RNG001", "XMOD004", "NOQA001"} <= rule_ids

    def test_sarif_levels_follow_severity(self):
        report = lint_xmod("metrics", ["XMOD002"])
        doc = json.loads(format_sarif(report))
        validate_sarif(doc)
        levels = sorted(r["level"] for r in doc["runs"][0]["results"])
        assert levels == ["error", "warning"]

    def test_sarif_region_lines(self):
        report = lint_fixture("viol_rng001.py")
        doc = json.loads(format_sarif(report))
        lines = [r["locations"][0]["physicalLocation"]["region"]["startLine"]
                 for r in doc["runs"][0]["results"]]
        assert lines == [6, 7]

    def test_validate_sarif_rejects_malformed(self):
        report = lint_fixture("viol_rng001.py")
        doc = json.loads(format_sarif(report))
        doc["runs"][0]["results"][0]["ruleId"] = "NOT_A_RULE"
        with pytest.raises(ValueError):
            validate_sarif(doc)
        with pytest.raises(ValueError):
            validate_sarif({"version": "2.1.0", "runs": []})

    def test_cli_sarif_output(self, tmp_path, capsys):
        out = tmp_path / "lint.sarif"
        rc = main(["lint", str(FIXTURES / "viol_rng001.py"),
                   "--config", str(PYPROJECT),
                   "--format", "sarif", "--output", str(out)])
        assert rc == 1
        doc = json.loads(out.read_text())
        validate_sarif(doc)
        assert doc["runs"][0]["results"]


class TestDiffAware:
    def test_parse_unified_diff(self):
        text = ("diff --git a/m.py b/m.py\n"
                "--- a/m.py\n"
                "+++ b/m.py\n"
                "@@ -0,0 +3,2 @@\n"
                "+x = 1\n"
                "+y = 2\n")
        assert parse_unified_diff(text) == {"m.py": {3, 4}}

    def test_diff_base_filters_unchanged_findings(self, tmp_path,
                                                  monkeypatch, capsys):
        subprocess.run(["git", "init", "-q"], cwd=tmp_path, check=True)
        mod = tmp_path / "mod.py"
        mod.write_text("import numpy as np\n\n\ndef old(n):\n"
                       "    return np.random.rand(n)\n")
        subprocess.run(["git", "add", "mod.py"], cwd=tmp_path, check=True)
        subprocess.run(
            ["git", "-c", "user.name=t", "-c", "user.email=t@example.com",
             "commit", "-q", "-m", "seed"], cwd=tmp_path, check=True)
        mod.write_text(mod.read_text()
                       + "\n\ndef new(n):\n    return np.random.rand(n)\n")
        monkeypatch.chdir(tmp_path)
        rc = main(["lint", "mod.py", "--config", str(PYPROJECT),
                   "--select", "RNG001", "--diff-base", "HEAD",
                   "--format", "json"])
        payload = json.loads(capsys.readouterr().out)
        # Both defs violate RNG001, but only the line added since HEAD
        # is reported in diff mode.
        assert rc == 1
        assert [(f["rule"], f["line"]) for f in payload["findings"]] == [
            ("RNG001", 9)]

    def test_diff_base_bad_ref_exits_2(self, capsys):
        rc = main(["lint", str(FIXTURES / "clean.py"),
                   "--config", str(PYPROJECT),
                   "--diff-base", "no-such-ref-xyz"])
        assert rc == 2


class TestExplain:
    def test_explain_prints_rule_doc(self, capsys):
        rc = main(["lint", "--explain", "XMOD004"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "XMOD004" in out
        assert "Rationale" in out

    def test_explain_every_registered_rule(self, capsys):
        for rule_id in sorted({**all_rules(), **all_passes()}):
            assert main(["lint", "--explain", rule_id]) == 0
            out = capsys.readouterr().out
            assert rule_id in out

    def test_explain_unknown_rule_exits_2(self, capsys):
        rc = main(["lint", "--explain", "NOPE999"])
        assert rc == 2
        assert "unknown rule id" in capsys.readouterr().err


class TestRunner:
    def test_path_matches_segment_aligned(self):
        assert path_matches("src/repro/tt/kernels.py", ["repro/tt"])
        assert path_matches("site-packages/repro/tt/a.py", ["repro/tt"])
        assert not path_matches("src/repro/ttx/a.py", ["repro/tt"])
        assert path_matches("src/repro/utils/seeding.py",
                            ["repro/utils/seeding.py"])

    def test_config_loaded_from_pyproject(self):
        cfg = load_config(PYPROJECT)
        try:
            import tomllib  # noqa: F401
        except ImportError:
            pytest.skip("tomllib unavailable (py<3.11): defaults used")
        assert "repro/tt" in cfg.hot_path
        assert "repro/utils/seeding.py" in cfg.rng_allowed
        assert "repro/bench" in cfg.clock_exempt

    def test_select_and_ignore(self):
        cfg = load_config(PYPROJECT)
        cfg.select = ["DET001"]
        report = lint_paths([FIXTURES / "viol_det001.py"], config=cfg)
        assert {f.rule for f in report.findings} == {"DET001"}
        cfg = load_config(PYPROJECT)
        cfg.ignore = ["DET001"]
        report = lint_paths([FIXTURES / "viol_det001.py"], config=cfg)
        assert report.findings == []

    def test_json_report_validates(self):
        report = lint_fixture("viol_exc001.py")
        payload = json.loads(format_json(report))
        validate_report(payload)
        assert payload["schema"] == "repro.lint/v1"
        assert payload["findings"][0]["rule"] == "EXC001"
        assert payload["findings"][0]["line"] == 7

    def test_validate_report_rejects_malformed(self):
        with pytest.raises(ValueError):
            validate_report({"schema": "other/v1"})
        with pytest.raises(ValueError):
            validate_report({"schema": "repro.lint/v1", "findings": []})

    def test_baseline_grandfathers_findings(self, tmp_path):
        report = lint_fixture("viol_exc001.py")
        assert report.findings
        baseline = tmp_path / "baseline.json"
        write_baseline(report, baseline)
        cfg = load_config(PYPROJECT)
        again = lint_paths([FIXTURES / "viol_exc001.py"], config=cfg,
                           baseline=baseline)
        assert again.findings == []
        assert again.baselined == len(report.findings)

    def test_missing_path_raises(self):
        with pytest.raises(FileNotFoundError):
            lint_paths([FIXTURES / "does_not_exist_dir"],
                       config=LintConfig())


class TestCLI:
    def test_lint_src_is_clean(self, capsys):
        """The merged tree passes its own linter with zero baseline entries."""
        rc = main(["lint", str(REPO / "src"),
                   "--config", str(PYPROJECT)])
        out = capsys.readouterr().out
        assert rc == 0, out
        assert "0 baselined" in out

    def test_lint_benchmarks_clean(self, capsys):
        rc = main(["lint", str(REPO / "benchmarks"),
                   "--config", str(PYPROJECT)])
        assert rc == 0, capsys.readouterr().out

    def test_lint_fixture_fails_with_json(self, capsys, tmp_path):
        out_path = tmp_path / "report.json"
        rc = main(["lint", str(FIXTURES / "viol_rng001.py"),
                   "--config", str(PYPROJECT),
                   "--format", "json", "--output", str(out_path)])
        assert rc == 1
        payload = json.loads(out_path.read_text())
        validate_report(payload)
        assert {f["rule"] for f in payload["findings"]} == {"RNG001"}

    def test_lint_select_flag(self, capsys):
        rc = main(["lint", str(FIXTURES), "--config", str(PYPROJECT),
                   "--select", "EXC001", "--format", "json"])
        assert rc == 1
        payload = json.loads(capsys.readouterr().out)
        assert {f["rule"] for f in payload["findings"]} == {"EXC001"}

    def test_lint_nonexistent_path_exit_2(self, capsys):
        rc = main(["lint", str(REPO / "no_such_dir"),
                   "--config", str(PYPROJECT)])
        assert rc == 2


class TestImportResolution:
    """The rules see through import aliases, not just literal names."""

    def test_aliased_numpy_random(self):
        ctx = FileContext("x.py", "import numpy.random as nr\nnr.rand(3)\n")
        rule = all_rules()["RNG001"](config={"rng_allowed": []})
        assert [f.line for f in rule.check(ctx)] == [2]

    def test_from_import_datetime(self):
        src = "from datetime import datetime as dt\ndt.now()\n"
        ctx = FileContext("x.py", src)
        rule = all_rules()["DET001"](config={"clock_exempt": []})
        assert [f.line for f in rule.check(ctx)] == [2]

    def test_unrelated_now_method_passes(self):
        src = "clock.now()\n"
        ctx = FileContext("x.py", src)
        rule = all_rules()["DET001"](config={"clock_exempt": []})
        assert rule.check(ctx) == []


SPEC = KAGGLE.scaled(0.0002)
CFG = DLRMConfig(table_sizes=SPEC.table_sizes, emb_dim=8,
                 bottom_mlp=(16,), top_mlp=(16,))


def make_model(seed=0):
    return build_ttrec(CFG, num_tt_tables=3, tt=TTConfig(rank=4), rng=seed)


def make_batch(seed=1, size=16):
    return SyntheticCTRDataset(SPEC, seed=seed).batch(size)


class TestDtypePolicy:
    def test_default_is_float64(self):
        assert default_dtype() == np.float64

    def test_result_dtype_rejects_mixed(self):
        with pytest.raises(TypeError):
            result_dtype(np.zeros(2, dtype=np.float32),
                         np.zeros(2, dtype=np.float64))

    def test_float32_policy_propagates_to_model(self):
        with dtype_policy(np.float32):
            model = make_model()
            batch = make_batch()
            out = model.forward(batch.dense, batch.sparse)
            assert out.dtype == np.float32
            for p in model.parameters():
                assert p.data.dtype == np.float32
        # Policy restored on exit.
        assert default_dtype() == np.float64

    def test_float32_training_step_stays_float32(self):
        with dtype_policy(np.float32):
            model = make_model()
            batch = make_batch()
            out = model.forward(batch.dense, batch.sparse)
            _, grad = bce_with_logits(out, batch.labels)
            model.backward(grad.astype(np.float32))
            for p in model.parameters():
                assert p.grad.dtype == np.float32, p.name


class TestNumericSanitizer:
    def test_clean_pass_and_restore(self):
        model = make_model()
        batch = make_batch()
        with NumericSanitizer(model) as sani:
            out = model.forward(batch.dense, batch.sparse)
            _, grad = bce_with_logits(out, batch.labels)
            model.backward(grad)
            assert "forward" in vars(model.bottom_mlp.layers[0])
        assert np.isfinite(out).all()
        # Wrappers removed: instance dicts hold no shadowing attributes.
        assert "forward" not in vars(model.bottom_mlp.layers[0])
        assert "backward" not in vars(model.top_mlp)

    def test_fault_injected_nan_caught_at_first_layer(self):
        """A NaN planted by the PR-1 injector trips at the first boundary
        it crosses — the bottom tower's first linear — not downstream."""
        model = make_model()
        batch = make_batch()
        injector = FaultInjector(seed=3)
        injector.register("sanitizer.weight", 1.0, kind="nan")
        spec = injector.draw("sanitizer.weight")
        assert spec is not None
        injector.apply(spec, model.bottom_mlp.layers[0].weight.data)
        with pytest.raises(NumericFaultError) as exc_info:
            with NumericSanitizer(model, name="dlrm"):
                model.forward(batch.dense, batch.sparse)
        err = exc_info.value
        assert err.layer == "dlrm.bottom_mlp.layers[0]"
        assert err.stage == "forward"
        assert err.kind == "nan"

    @pytest.mark.filterwarnings("ignore:invalid value encountered")
    def test_backward_grad_corruption_caught(self):
        model = make_model()
        batch = make_batch()
        out = model.forward(batch.dense, batch.sparse)
        _, grad = bce_with_logits(out, batch.labels)
        grad = grad.copy()
        grad[0] = np.inf
        with pytest.raises(NumericFaultError) as exc_info:
            with NumericSanitizer(model, name="dlrm"):
                model.forward(batch.dense, batch.sparse)
                model.backward(grad)
        err = exc_info.value
        assert err.stage == "backward"
        assert err.kind == "inf"

    def test_dtype_drift_caught(self):
        model = make_model()
        batch = make_batch()

        class Downcaster:
            """Stub layer that silently changes dtype on the second call."""

            def __init__(self):
                self.calls = 0

            def forward(self, x):
                self.calls += 1
                return x.astype(np.float32) if self.calls > 1 else x

            def backward(self, g):
                return g

        from repro.ops.module import Module

        class Wrapper(Module):
            def __init__(self, inner):
                self.inner = inner
                self.stub = Downcaster()

            def forward(self, dense, sparse):
                return self.stub.forward(self.inner.forward(dense, sparse))

        wrapped = Wrapper(model)
        with pytest.raises(NumericFaultError) as exc_info:
            with NumericSanitizer(wrapped, name="w"):
                wrapped.forward(batch.dense, batch.sparse)
                wrapped.forward(batch.dense, batch.sparse)
        assert exc_info.value.kind == "dtype_drift"

    def test_sanitizer_counts_checks(self):
        from repro.telemetry import get_registry

        model = make_model()
        batch = make_batch()
        checks = get_registry().counter("sanitizer.checks")
        before = checks.value
        with NumericSanitizer(model):
            model.forward(batch.dense, batch.sparse)
        assert checks.value > before

    def test_rejects_non_module(self):
        with pytest.raises(TypeError):
            NumericSanitizer(np.zeros(3))

    def test_sanitized_output_identical(self):
        model = make_model()
        batch = make_batch()
        plain = model.forward(batch.dense, batch.sparse)
        with NumericSanitizer(model):
            guarded = model.forward(batch.dense, batch.sparse)
        np.testing.assert_array_equal(plain, guarded)
