"""Tests for low-level kernels and the T3nsor-style baseline."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tt import T3nsorEmbeddingBag, TTEmbeddingBag, TTShape
from repro.tt.kernels import scatter_add_rows, tt_lookup_reference
from tests.helpers import numeric_grad_check, random_csr


class TestScatterAddRows:
    def test_basic(self):
        buf = np.zeros((4, 2))
        scatter_add_rows(buf, np.array([1, 3]), np.array([[1.0, 2.0], [3.0, 4.0]]))
        np.testing.assert_allclose(buf[1], [1, 2])
        np.testing.assert_allclose(buf[3], [3, 4])

    def test_duplicates_combine(self):
        buf = np.zeros((3, 2))
        rows = np.array([2, 2, 2, 0])
        vals = np.arange(8.0).reshape(4, 2)
        scatter_add_rows(buf, rows, vals)
        np.testing.assert_allclose(buf[2], vals[:3].sum(axis=0))
        np.testing.assert_allclose(buf[0], vals[3])

    def test_nd_values(self):
        buf = np.zeros((3, 2, 2))
        vals = np.ones((2, 2, 2))
        scatter_add_rows(buf, np.array([1, 1]), vals)
        np.testing.assert_allclose(buf[1], 2 * np.ones((2, 2)))

    def test_empty(self):
        buf = np.zeros((3, 2))
        scatter_add_rows(buf, np.array([], dtype=np.int64), np.zeros((0, 2)))
        assert not buf.any()

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            scatter_add_rows(np.zeros((3, 2)), np.array([0]), np.zeros((2, 2)))

    @given(st.integers(min_value=0, max_value=2 ** 31),
           st.integers(min_value=1, max_value=50))
    @settings(max_examples=50)
    def test_matches_add_at(self, seed, n):
        rng = np.random.default_rng(seed)
        rows = rng.integers(0, 6, size=n)
        vals = rng.normal(size=(n, 3))
        a = np.zeros((6, 3))
        b = np.zeros((6, 3))
        scatter_add_rows(a, rows, vals)
        np.add.at(b, rows, vals)
        np.testing.assert_allclose(a, b, atol=1e-12)


class TestReferenceKernel:
    def test_reference_matches_materialize(self):
        shape = TTShape.with_uniform_rank(60, 8, (3, 4, 5), (2, 2, 2), 4)
        emb = TTEmbeddingBag(60, 8, shape=shape, rng=0)
        cores = [p.data for p in emb.cores]
        idx = np.arange(60)
        np.testing.assert_allclose(
            tt_lookup_reference(cores, shape, idx), emb.materialize(), atol=1e-12
        )


class TestT3nsorBaseline:
    @pytest.fixture
    def shape(self):
        return TTShape.with_uniform_rank(60, 8, (3, 4, 5), (2, 2, 2), rank=4)

    def test_forward_matches_ttrec_kernel(self, shape):
        """Same cores -> same lookups: only the strategy differs."""
        t3 = T3nsorEmbeddingBag(60, 8, shape=shape, rng=0)
        tt = TTEmbeddingBag(60, 8, shape=shape, rng=1)
        tt.load_cores([p.data.copy() for p in t3.cores])
        idx = np.array([0, 5, 59, 5])
        off = np.array([0, 2, 4])
        np.testing.assert_allclose(
            t3.forward(idx, off), tt.forward(idx, off), atol=1e-12
        )

    def test_peak_activation_is_full_table(self, shape):
        t3 = T3nsorEmbeddingBag(60, 8, shape=shape, rng=0)
        assert t3.peak_activation_elements == shape.padded_rows * 8

    def test_backward_gradients(self, shape):
        rng = np.random.default_rng(13)
        t3 = T3nsorEmbeddingBag(60, 8, shape=shape, rng=0)
        idx, off = random_csr(rng, 60, 5)
        r = rng.normal(size=(5, 8))

        def loss():
            return float((t3.forward(idx, off) * r).sum())

        t3.forward(idx, off)
        t3.backward(r)
        for p in t3.cores:
            numeric_grad_check(p.data, p.grad, loss, samples=10)

    def test_backward_matches_ttrec_backward(self, shape):
        """The two implementations compute identical core gradients."""
        rng = np.random.default_rng(14)
        t3 = T3nsorEmbeddingBag(60, 8, shape=shape, rng=0)
        tt = TTEmbeddingBag(60, 8, shape=shape, rng=1)
        tt.load_cores([p.data.copy() for p in t3.cores])
        idx, off = random_csr(rng, 60, 6, allow_empty=False)
        r = rng.normal(size=(6, 8))
        t3.forward(idx, off)
        t3.backward(r)
        tt.forward(idx, off)
        tt.backward(r)
        for a, b in zip(t3.cores, tt.cores):
            np.testing.assert_allclose(a.grad, b.grad, atol=1e-10)

    def test_mean_mode(self, shape):
        t3 = T3nsorEmbeddingBag(60, 8, shape=shape, mode="mean", rng=0)
        idx = np.array([3, 4])
        out = t3.forward(idx, np.array([0, 2]))
        full = t3.materialize()
        np.testing.assert_allclose(out[0], full[[3, 4]].mean(axis=0), atol=1e-12)

    def test_backward_before_forward(self, shape):
        with pytest.raises(RuntimeError):
            T3nsorEmbeddingBag(60, 8, shape=shape, rng=0).backward(np.ones((1, 8)))

    def test_rejects_bad_mode(self):
        with pytest.raises(ValueError):
            T3nsorEmbeddingBag(60, 8, mode="max")
