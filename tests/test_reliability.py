"""Chaos suite: fault injection, checkpoint/resume, guard, degraded collectives.

The convergence-equivalence tests enforce the reliability acceptance
criterion: a run with injected gradient/collective/cache faults under the
default guard policy must finish within 1% of the fault-free final
smoothed loss. The kill/resume tests enforce bit-exactness: a run killed
at an arbitrary iteration and resumed from its newest checkpoint must
reproduce the uninterrupted run's parameters bit-for-bit.
"""

import json
import os

import numpy as np
import pytest

from repro.data import DatasetSpec, SyntheticCTRDataset
from repro.distributed import CollectiveError, Communicator, DataParallelTrainer
from repro.models import DLRMConfig, TTConfig, build_dlrm, build_ttrec
from repro.models.serialization import named_modules, state_dict
from repro.ops.optim import SGD, Adagrad, RowWiseAdagrad, SparseSGD
from repro.reliability import (
    CheckpointManager,
    DivergenceGuard,
    FaultInjector,
    FaultSpec,
    GuardPolicy,
)
from repro.reliability.checkpoint import CheckpointError
from repro.reliability.guard import scrub_non_finite
from repro.training import Trainer

SIZES = (400, 60, 300, 200)
CFG = DLRMConfig(table_sizes=SIZES, num_dense=5, emb_dim=8,
                 bottom_mlp=(8,), top_mlp=(16,))
TT = TTConfig(rank=4, use_cache=True, warmup_steps=5, refresh_interval=25,
              cache_fraction=0.1)


def tiny_model(rng=0, cache=True):
    tt = TT if cache else TTConfig(rank=4)
    return build_ttrec(CFG, num_tt_tables=2, tt=tt, min_rows=150, rng=rng)


def tiny_stream(seed=0):
    spec = DatasetSpec(name="tiny", table_sizes=SIZES, num_dense=5, emb_dim=8)
    return SyntheticCTRDataset(spec, seed=seed, noise=0.6)


# --------------------------------------------------------------------- #
# FaultInjector
# --------------------------------------------------------------------- #

class TestFaultInjector:
    def test_same_seed_same_schedule(self):
        def schedule(seed):
            inj = FaultInjector(seed=seed).register("trainer.grad", 0.3)
            return [inj.fires("trainer.grad") for _ in range(200)]

        assert schedule(42) == schedule(42)
        assert schedule(42) != schedule(43)

    def test_unregistered_site_consumes_no_rng(self):
        inj = FaultInjector(seed=0).register("trainer.grad", 0.5)
        ref = FaultInjector(seed=0).register("trainer.grad", 0.5)
        draws = []
        for i in range(100):
            if i % 3 == 0:
                assert not inj.fires("collective.drop")  # unregistered
            draws.append(inj.fires("trainer.grad"))
        assert draws == [ref.fires("trainer.grad") for _ in range(100)]

    def test_counters(self):
        inj = FaultInjector(seed=1).register("cache.row", 1.0)
        arr = np.ones(8)
        assert inj.corrupt("cache.row", arr)
        assert inj.attempts["cache.row"] == 1
        assert inj.fired["cache.row"] == 1
        assert inj.total_fired == 1
        assert inj.counters() == {"cache.row": {"attempts": 1, "fired": 1}}

    @pytest.mark.parametrize("kind,check", [
        ("nan", lambda a: np.isnan(a).sum() == 2),
        ("inf", lambda a: np.isinf(a).sum() == 2),
        ("zero", lambda a: (a == 0).sum() == 2),
        ("scale", lambda a: (np.abs(a) > 1e29).sum() == 2),
    ])
    def test_corruption_kinds(self, kind, check):
        inj = FaultInjector(seed=2)
        spec = FaultSpec("x", 1.0, kind=kind, max_elements=2)
        arr = np.ones(16)
        inj.apply(spec, arr)
        assert check(arr)

    def test_bitflip_changes_bits_not_shape(self):
        inj = FaultInjector(seed=3)
        arr = np.full(32, 1.5)
        inj.apply(FaultSpec("x", 1.0, kind="bitflip", max_elements=4), arr)
        assert (arr != 1.5).sum() == 4

    def test_validation(self):
        with pytest.raises(ValueError, match="probability"):
            FaultSpec("x", 1.5)
        with pytest.raises(ValueError, match="kind"):
            FaultSpec("x", 0.5, kind="gremlin")
        with pytest.raises(ValueError, match="probability is required"):
            FaultInjector().register("x")


# --------------------------------------------------------------------- #
# CheckpointManager
# --------------------------------------------------------------------- #

class TestCheckpointManager:
    def test_save_verify_load(self, tmp_path):
        model = tiny_model()
        mgr = CheckpointManager(tmp_path)
        mgr.save(10, model, losses=[0.7, 0.6])
        assert mgr.verify(10)
        ck = mgr.load()
        assert ck.step == 10
        assert ck.losses == [0.7, 0.6]
        for key, value in state_dict(model).items():
            np.testing.assert_array_equal(ck.arrays[f"model/{key}"], value)

    def test_retention(self, tmp_path):
        model = tiny_model()
        mgr = CheckpointManager(tmp_path, keep=2)
        for step in (5, 10, 15, 20):
            mgr.save(step, model)
        assert mgr.steps() == [15, 20]

    def test_torn_payload_skipped(self, tmp_path):
        """A truncated payload fails checksum; resume falls back."""
        model = tiny_model()
        mgr = CheckpointManager(tmp_path, keep=3)
        mgr.save(10, model)
        mgr.save(20, model)
        with open(mgr.payload_path(20), "r+b") as fh:
            fh.truncate(100)  # simulated mid-write crash / torn file
        assert not mgr.verify(20)
        assert mgr.latest_step() == 10
        assert mgr.load().step == 10

    def test_payload_without_manifest_is_absent(self, tmp_path):
        """Crash between the two renames: payload exists, manifest doesn't."""
        model = tiny_model()
        mgr = CheckpointManager(tmp_path)
        mgr.save(10, model)
        mgr.save(20, model)
        os.remove(mgr.manifest_path(20))
        assert mgr.steps() == [10]
        assert mgr.latest_step() == 10

    def test_stray_tmp_ignored(self, tmp_path):
        model = tiny_model()
        mgr = CheckpointManager(tmp_path)
        mgr.save(10, model)
        with open(mgr.payload_path(20) + ".tmp", "wb") as fh:
            fh.write(b"half-written garbage")
        assert mgr.latest_step() == 10

    def test_no_checkpoint_raises(self, tmp_path):
        with pytest.raises(CheckpointError, match="no valid checkpoint"):
            CheckpointManager(tmp_path).load()

    def test_optimizer_type_mismatch(self, tmp_path):
        model = tiny_model(cache=False)
        mgr = CheckpointManager(tmp_path)
        mgr.save(1, model, optimizer=Adagrad(model.parameters(), lr=0.1))
        with pytest.raises(CheckpointError, match="Adagrad"):
            mgr.restore(model, optimizer=SparseSGD(model.parameters(), lr=0.1))

    def test_rng_roundtrip(self, tmp_path):
        model = tiny_model(cache=False)
        rng = np.random.default_rng(7)
        rng.random(13)  # advance
        mgr = CheckpointManager(tmp_path)
        mgr.save(1, model, rng=rng)
        expected = rng.random(5)
        rng2 = np.random.default_rng(0)
        mgr.restore(tiny_model(cache=False), rng=rng2)
        np.testing.assert_array_equal(rng2.random(5), expected)


class TestOptimizerState:
    def _grads(self, model, seed=0):
        rng = np.random.default_rng(seed)
        for p in model.parameters():
            p.grad[...] = rng.normal(size=p.data.shape)

    @pytest.mark.parametrize("make", [
        lambda ps: SGD(ps, lr=0.05, momentum=0.9),
        lambda ps: SparseSGD(ps, lr=0.05),
        lambda ps: Adagrad(ps, lr=0.05),
        lambda ps: RowWiseAdagrad(ps, lr=0.05),
    ])
    def test_roundtrip_continues_identically(self, make):
        """opt state saved after N steps -> restored copy takes the same
        N+1th step as the original."""
        a, b = tiny_model(rng=0, cache=False), tiny_model(rng=0, cache=False)
        opt_a, opt_b = make(a.parameters()), make(b.parameters())
        for step in range(3):
            self._grads(a, seed=step)
            opt_a.step()
        opt_b.load_state_dict(opt_a.state_dict())
        for p_a, p_b in zip(a.parameters(), b.parameters()):
            p_b.data[...] = p_a.data
        self._grads(a, seed=99)
        self._grads(b, seed=99)
        opt_a.step()
        opt_b.step()
        for p_a, p_b in zip(a.parameters(), b.parameters()):
            np.testing.assert_array_equal(p_a.data, p_b.data)


# --------------------------------------------------------------------- #
# Bit-exact kill/resume
# --------------------------------------------------------------------- #

class TestKillResume:
    def _params(self, model):
        return [p.data.copy() for p in model.parameters()]

    def test_resume_is_bit_identical(self, tmp_path):
        """Uninterrupted 60-iter run == run killed at 47 and resumed from
        the step-30 checkpoint, including cache and optimizer state."""
        def fresh():
            model = tiny_model(rng=3)
            return model, Trainer(model,
                                  optimizer=Adagrad(model.parameters(), lr=0.05))

        # Uninterrupted reference.
        model_a, tr_a = fresh()
        res_a = tr_a.train(tiny_stream(seed=11).batches(32, 60))

        # Killed run: checkpoints every 30, dies after iteration 47.
        model_b, tr_b = fresh()
        tr_b.train(tiny_stream(seed=11).batches(32, 47),
                   checkpoint_every=30, checkpoint_dir=tmp_path)

        # Resume in a brand-new process-equivalent: fresh model, fresh
        # stream, restore from the newest checkpoint.
        model_c, tr_c = fresh()
        res_c = tr_c.train(tiny_stream(seed=11).batches(32, 60),
                           checkpoint_every=30, checkpoint_dir=tmp_path,
                           resume_from=tmp_path)
        assert res_c.start_iteration == 30
        assert res_c.iterations == res_a.iterations == 60
        assert res_c.losses == res_a.losses
        for p_a, p_c in zip(self._params(model_a), self._params(model_c)):
            np.testing.assert_array_equal(p_a, p_c)
        # Cache bookkeeping restored too, not just parameters.
        for (_, m_a), (_, m_c) in zip(named_modules(model_a),
                                      named_modules(model_c)):
            if hasattr(m_a, "extra_state"):
                ea, ec = m_a.extra_state(), m_c.extra_state()
                assert ea.keys() == ec.keys()
                for key in ea:
                    np.testing.assert_array_equal(np.asarray(ea[key]),
                                                  np.asarray(ec[key]))

    def test_resume_preserves_cache_stats_invariant(self, tmp_path):
        """Regression: resume used to drop the misses/insertions/evictions/
        refreshes counters, so a resumed run violated the accounting
        invariant ``lookups == hits + misses`` that the Fig. 10/12
        instrumentation reads."""
        from repro.cache import CachedTTEmbeddingBag

        def fresh():
            model = tiny_model(rng=3)
            return model, Trainer(model,
                                  optimizer=Adagrad(model.parameters(), lr=0.05))

        model_a, tr_a = fresh()
        tr_a.train(tiny_stream(seed=11).batches(32, 60))

        model_b, tr_b = fresh()
        tr_b.train(tiny_stream(seed=11).batches(32, 47),
                   checkpoint_every=30, checkpoint_dir=tmp_path)
        model_c, tr_c = fresh()
        tr_c.train(tiny_stream(seed=11).batches(32, 60),
                   checkpoint_every=30, checkpoint_dir=tmp_path,
                   resume_from=tmp_path)

        cached = [(name, m) for name, m in named_modules(model_c)
                  if isinstance(m, CachedTTEmbeddingBag)]
        assert cached  # the model under test must actually exercise this
        by_name = dict(named_modules(model_a))
        for name, mod in cached:
            s = mod.stats()
            assert s["lookups"] == s["hits"] + s["misses"] > 0, name
            ref = by_name[name].stats()
            for key in ("lookups", "hits", "misses", "repairs",
                        "insertions", "evictions", "refreshes"):
                assert s[key] == ref[key], (name, key)

    def test_checkpoint_every_requires_dir(self):
        model = tiny_model(cache=False)
        with pytest.raises(ValueError, match="checkpoint_dir"):
            Trainer(model).train(tiny_stream().batches(16, 4),
                                 checkpoint_every=2)


# --------------------------------------------------------------------- #
# DivergenceGuard
# --------------------------------------------------------------------- #

class TestDivergenceGuard:
    def test_skip_on_nonfinite(self):
        guard = DivergenceGuard()
        ok = np.zeros(4)
        assert guard.admit(0.5, ok)
        assert not guard.admit(float("nan"), ok)
        assert not guard.admit(0.5, np.array([1.0, np.inf]))
        assert guard.events["skipped_batches"] == 2

    def test_raise_mode(self):
        guard = DivergenceGuard(GuardPolicy(on_nonfinite="raise"))
        with pytest.raises(FloatingPointError, match="diverged"):
            guard.admit(float("inf"), np.zeros(2))

    def test_max_skips_bounds_the_ladder(self):
        guard = DivergenceGuard(GuardPolicy(max_skips=3))
        for _ in range(3):
            guard.admit(float("nan"), np.zeros(1))
        with pytest.raises(FloatingPointError, match="diverged"):
            guard.admit(float("nan"), np.zeros(1))

    def test_isolated_faults_never_back_off_lr(self):
        """backoff_after=2: a lone bad batch between healthy ones leaves
        the learning rate untouched."""
        guard = DivergenceGuard(GuardPolicy(backoff_after=2))
        opt = SGD([], lr=0.1)
        for _ in range(10):
            guard.admit(0.5, np.zeros(1), optimizer=opt)
            guard.admit(float("nan"), np.zeros(1), optimizer=opt)
        assert opt.lr == 0.1
        assert guard.events["lr_backoffs"] == 0

    def test_consecutive_failures_back_off_and_recover(self):
        pol = GuardPolicy(backoff_after=2, lr_backoff=0.5, max_backoffs=3,
                          recovery_steps=4, max_skips=100)
        guard = DivergenceGuard(pol)
        opt = SGD([], lr=0.1)
        guard.admit(float("nan"), np.zeros(1), optimizer=opt)
        assert opt.lr == 0.1  # first failure: streak 1 < backoff_after
        guard.admit(float("nan"), np.zeros(1), optimizer=opt)
        assert opt.lr == pytest.approx(0.05)  # second consecutive: backoff
        for _ in range(4):
            guard.admit(0.4, np.zeros(1), optimizer=opt)
        assert opt.lr == pytest.approx(0.1)  # restored after recovery_steps
        assert guard.events["lr_restores"] == 1

    def test_scrub_repairs_params(self):
        model = tiny_model(cache=False)
        p = model.parameters()[0]
        p.data.reshape(-1)[:3] = np.nan
        fixed = scrub_non_finite(model)
        assert fixed == 3
        assert all(np.isfinite(q.data).all() for q in model.parameters())

    def test_rollback_on_sustained_spike(self):
        pol = GuardPolicy(spike_window=5, spike_factor=2.0, spike_patience=3)
        guard = DivergenceGuard(pol)
        losses = [0.1] * 10
        assert not guard.wants_rollback(losses)
        hits = 0
        for _ in range(5):
            losses.append(5.0)
            if guard.wants_rollback(losses):
                hits += 1
        assert hits == 1
        assert guard.events["rollbacks"] == 1

    def test_policy_validation(self):
        with pytest.raises(ValueError, match="on_nonfinite"):
            GuardPolicy(on_nonfinite="explode")
        with pytest.raises(ValueError, match="lr_backoff"):
            GuardPolicy(lr_backoff=1.5)
        with pytest.raises(ValueError, match="spike_factor"):
            GuardPolicy(spike_factor=0.9)

    def test_unguarded_trainer_still_fails_fast(self):
        """Legacy contract: no guard -> FloatingPointError on the spot."""
        model = tiny_model(cache=False)
        inj = FaultInjector(seed=0).register("trainer.grad", 1.0)
        trainer = Trainer(model, injector=inj)
        ds = tiny_stream(seed=1)
        # The injected NaN lands in the loss gradient; without a guard the
        # unprotected step corrupts parameters and the next loss is NaN.
        with pytest.raises(FloatingPointError):
            for _ in range(3):
                trainer.train_step(ds.batch(16))


# --------------------------------------------------------------------- #
# Degraded-mode collectives
# --------------------------------------------------------------------- #

class TestDegradedCollectives:
    def test_corruption_detected_and_retried(self):
        inj = FaultInjector(seed=0).register("collective.payload", 1.0,
                                             kind="bitflip")
        comm = Communicator(2, injector=inj, max_retries=2)
        with pytest.raises(CollectiveError, match="failed the collective"):
            comm.allreduce_mean([np.ones(8), np.ones(8)])
        assert comm.events["corruptions_detected"] > 0
        assert comm.events["retries"] > 0

    def test_dropped_worker_renormalises_mean(self):
        class DropRank0:
            def __init__(self):
                self.calls = 0

            def fires(self, site):
                if site != "collective.drop":
                    return False
                self.calls += 1
                return self.calls == 1  # only rank 0, first probe

            def corrupt(self, site, arr):
                return False

        comm = Communicator(3, injector=DropRank0())
        out = comm.allreduce_mean(
            [np.full(4, 9.0), np.full(4, 1.0), np.full(4, 3.0)])
        np.testing.assert_allclose(out, 2.0)  # mean of survivors {1, 3}
        assert comm.last_dropped == [0]
        assert comm.events["workers_dropped"] == 1
        assert comm.events["degraded_collectives"] == 1

    def test_dropped_worker_rescales_sum(self):
        class DropRank2:
            def __init__(self):
                self.calls = 0

            def fires(self, site):
                if site != "collective.drop":
                    return False
                self.calls += 1
                return self.calls == 3

            def corrupt(self, site, arr):
                return False

        comm = Communicator(3, injector=DropRank2())
        out = comm.allreduce_sum(
            [np.full(2, 1.0), np.full(2, 2.0), np.full(2, 100.0)])
        # survivors sum 3, rescaled by K/survivors = 3/2.
        np.testing.assert_allclose(out, 4.5)

    def test_allgather_returns_survivors(self):
        inj = FaultInjector(seed=5).register("collective.drop", 0.5)
        comm = Communicator(4, injector=inj)
        bufs = [np.full(2, float(r)) for r in range(4)]
        out = comm.allgather(bufs)
        assert 1 <= len(out) <= 4
        assert len(out) + len(comm.last_dropped) == 4

    def test_all_fail_then_restart_succeeds(self):
        class FailFirstRound:
            def __init__(self):
                self.round = 0

            def fires(self, site):
                if site != "collective.drop":
                    return False
                self.round += 1
                return self.round <= 2  # both ranks drop in round one

            def corrupt(self, site, arr):
                return False

        comm = Communicator(2, injector=FailFirstRound())
        out = comm.allreduce_mean([np.ones(3), np.ones(3)])
        np.testing.assert_allclose(out, 1.0)
        assert comm.events["collective_restarts"] == 1

    def test_dtype_preserved(self):
        """Satellite: float32 gradients stay float32 through allreduce."""
        comm = Communicator(2)
        bufs = [np.ones(4, dtype=np.float32), np.full(4, 2.0, dtype=np.float32)]
        assert comm.allreduce_mean(bufs).dtype == np.float32
        assert comm.allreduce_sum(bufs).dtype == np.float32

    def test_fault_free_path_is_exact(self):
        comm = Communicator(2, injector=FaultInjector(seed=0))
        out = comm.allreduce_mean([np.full(4, 1.0), np.full(4, 3.0)])
        np.testing.assert_array_equal(out, np.full(4, 2.0))
        assert comm.events["degraded_collectives"] == 0


# --------------------------------------------------------------------- #
# Convergence equivalence (the 1% acceptance criterion)
# --------------------------------------------------------------------- #

class TestChaosConvergence:
    ITERS = 300

    def _run(self, injector):
        model = tiny_model(rng=5)
        if injector is not None:
            for _, mod in named_modules(model):
                if hasattr(mod, "validate_reads"):
                    mod.injector = injector
                    mod.validate_reads = True
        trainer = Trainer(model, optimizer=Adagrad(model.parameters(), lr=0.05),
                          guard=DivergenceGuard(), injector=injector)
        res = trainer.train(tiny_stream(seed=21).batches(48, self.ITERS))
        return res.smoothed_loss(50)

    @pytest.fixture(scope="class")
    def clean_loss(self):
        return self._run(None)

    def test_grad_and_cache_faults_within_tolerance(self, clean_loss):
        inj = (FaultInjector(seed=123)
               .register("trainer.grad", 0.02, kind="nan", max_elements=4)
               .register("cache.row", 0.02, kind="nan", max_elements=2))
        faulted = self._run(inj)
        assert inj.total_fired > 0, "chaos run injected nothing"
        rel = abs(faulted - clean_loss) / clean_loss
        assert rel <= 0.01, f"faulted run {rel:.2%} off fault-free"

    def test_collective_faults_within_tolerance(self):
        def run(injector):
            replicas = [tiny_model(rng=5, cache=False) for _ in range(2)]
            dp = DataParallelTrainer(replicas, lr=0.1, injector=injector)
            losses = []
            for batch in tiny_stream(seed=31).batches(48, self.ITERS):
                losses.append(dp.train_step(batch))
            return float(np.mean(losses[-50:])), dp

        clean, _ = run(None)
        inj = (FaultInjector(seed=77)
               .register("collective.payload", 0.01, kind="bitflip")
               .register("collective.drop", 0.005)
               .register("collective.straggler", 0.01))
        faulted, dp = run(inj)
        rel = abs(faulted - clean) / clean
        assert rel <= 0.01, f"degraded DP run {rel:.2%} off fault-free"
        assert dp.fault_events["corruptions_detected"] > 0
        assert dp.parameters_in_sync()


# --------------------------------------------------------------------- #
# Cache read validation
# --------------------------------------------------------------------- #

class TestCacheRowRepair:
    def test_poisoned_rows_are_repaired_on_read(self):
        """NaN rows served from the cache would pass through ReLU silently
        (NaN -> masked to 0); read validation repairs them from TT cores."""
        model = tiny_model(rng=9)
        inj = FaultInjector(seed=13).register("cache.row", 0.2, kind="nan",
                                              max_elements=2)
        cached = [mod for _, mod in named_modules(model)
                  if hasattr(mod, "validate_reads")]
        assert cached, "fixture model has no cached embedding"
        for mod in cached:
            mod.injector = inj
            mod.validate_reads = True
        trainer = Trainer(model, optimizer=Adagrad(model.parameters(), lr=0.05),
                          guard=DivergenceGuard())
        trainer.train(tiny_stream(seed=41).batches(32, 80))
        assert inj.fired["cache.row"] > 0
        assert sum(m.repaired_rows for m in cached) > 0
        # Repair is on-read: a row poisoned after its last read waits for
        # the next read (or an explicit scrub) to be re-materialised.
        for mod in cached:
            mod.scrub()
            assert np.isfinite(mod.cache_rows.data).all()
        assert all(np.isfinite(p.data).all() for p in model.parameters())


# --------------------------------------------------------------------- #
# Shard-delta checkpoints (elastic training)
# --------------------------------------------------------------------- #

class TestShardDeltaCheckpoints:
    WORLD = 3

    def _trained(self, steps=4):
        from repro.ops.loss import bce_with_logits

        model = tiny_model(cache=False)
        opt = RowWiseAdagrad(model.parameters(), lr=0.05)
        ds = tiny_stream()
        for _ in range(steps):
            opt.zero_grad()
            batch = ds.batch(16)
            logits = model.forward(batch.dense, batch.sparse)
            _, grad = bce_with_logits(logits, batch.labels)
            model.backward(grad)
            opt.step()
        return model, opt

    def _ownership(self, model):
        from repro.distributed import partition_parameters

        owner = partition_parameters(model, self.WORLD)
        return {w: [i for i, o in enumerate(owner) if o == w]
                for w in range(self.WORLD)}

    def test_lost_shard_roundtrip_bit_exact(self, tmp_path):
        """Scramble one worker's owned slice (params + optimizer rows),
        restore only that shard, and get every bit back — without the
        restore touching any other shard's state."""
        model, opt = self._trained()
        owned = self._ownership(model)
        mgr = CheckpointManager(tmp_path)
        for w in range(self.WORLD):
            mgr.save_shard(7, w, model, owned[w], optimizer=opt)
        assert mgr.latest_common_shard_step(self.WORLD) == 7

        params = model.parameters()
        ref_params = [p.data.copy() for p in params]
        ref_state = opt.state_dict()

        lost = 1
        state = opt.state_dict()
        for i in owned[lost]:
            params[i].data[...] = -123.0
            key = f"accum.{i}"
            state[key] = np.full_like(state[key], -1.0)
        opt.load_state_dict(state)

        mgr.restore_shard(model, lost, 7, optimizer=opt)

        for p, ref in zip(model.parameters(), ref_params):
            np.testing.assert_array_equal(p.data, ref)
        restored = opt.state_dict()
        assert set(restored) == set(ref_state)
        for key, value in ref_state.items():
            if isinstance(value, np.ndarray):
                np.testing.assert_array_equal(restored[key], value)
            else:
                assert restored[key] == value

    def test_restore_leaves_survivors_untouched(self, tmp_path):
        """restore_shard writes only the named shard's slice: survivor
        state mutated *after* the save must survive the restore."""
        model, opt = self._trained()
        owned = self._ownership(model)
        mgr = CheckpointManager(tmp_path)
        for w in range(self.WORLD):
            mgr.save_shard(3, w, model, owned[w], optimizer=opt)
        sentinel_param = owned[0][0]
        model.parameters()[sentinel_param].data[...] = 777.0
        mgr.restore_shard(model, 1, 3, optimizer=opt)
        assert np.all(model.parameters()[sentinel_param].data == 777.0)

    def test_latest_common_needs_every_shard(self, tmp_path):
        model, opt = self._trained(steps=1)
        owned = self._ownership(model)
        mgr = CheckpointManager(tmp_path)
        for step in (5, 10):
            for w in range(self.WORLD):
                mgr.save_shard(step, w, model, owned[w])
        mgr.save_shard(15, 0, model, owned[0])   # torn round: shard 0 only
        assert mgr.shard_steps(0) == [5, 10, 15]
        assert mgr.shard_steps(1) == [5, 10]
        assert mgr.latest_common_shard_step(self.WORLD) == 10

    def test_verify_shard_detects_tamper(self, tmp_path):
        model, opt = self._trained(steps=1)
        owned = self._ownership(model)
        mgr = CheckpointManager(tmp_path)
        mgr.save_shard(2, 0, model, owned[0], optimizer=opt)
        assert mgr.verify_shard(0, 2)
        with open(mgr.shard_payload_path(0, 2), "ab") as fh:
            fh.write(b"tamper")
        assert not mgr.verify_shard(0, 2)
        with pytest.raises(CheckpointError):
            mgr.load_shard(0, 2)

    def test_shard_series_does_not_collide_with_dense(self, tmp_path):
        """`ckpt-s0_...` files must not appear in the dense `steps()`
        series (and vice versa)."""
        model, opt = self._trained(steps=1)
        owned = self._ownership(model)
        mgr = CheckpointManager(tmp_path)
        mgr.save(4, model)
        mgr.save_shard(9, 0, model, owned[0])
        assert mgr.steps() == [4]
        assert mgr.shard_steps(0) == [9]
