"""Tests for RNG plumbing and validation helpers."""

import numpy as np
import pytest

from repro.utils.seeding import as_rng, spawn_rngs
from repro.utils.validation import (
    check_1d_int_array,
    check_csr,
    check_positive,
    check_probability,
)


class TestSeeding:
    def test_int_seed_deterministic(self):
        assert as_rng(7).random() == as_rng(7).random()

    def test_generator_passthrough(self):
        g = np.random.default_rng(0)
        assert as_rng(g) is g

    def test_none_gives_generator(self):
        assert isinstance(as_rng(None), np.random.Generator)

    def test_spawn_count_and_independence(self):
        children = spawn_rngs(5, 3)
        assert len(children) == 3
        draws = [c.random() for c in children]
        assert len(set(draws)) == 3

    def test_spawn_deterministic(self):
        a = [g.random() for g in spawn_rngs(9, 4)]
        b = [g.random() for g in spawn_rngs(9, 4)]
        assert a == b

    def test_spawn_rejects_negative(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)


class TestCheckPositive:
    def test_strict(self):
        check_positive("x", 1.0)
        with pytest.raises(ValueError, match="x"):
            check_positive("x", 0.0)

    def test_non_strict(self):
        check_positive("x", 0.0, strict=False)
        with pytest.raises(ValueError):
            check_positive("x", -1.0, strict=False)


class TestCheckProbability:
    @pytest.mark.parametrize("v", [0.0, 0.5, 1.0])
    def test_accepts(self, v):
        check_probability("p", v)

    @pytest.mark.parametrize("v", [-0.01, 1.01, 2.0])
    def test_rejects(self, v):
        with pytest.raises(ValueError):
            check_probability("p", v)


class TestCheck1DIntArray:
    def test_returns_int64(self):
        out = check_1d_int_array("a", np.array([1, 2], dtype=np.int32))
        assert out.dtype == np.int64

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            check_1d_int_array("a", np.zeros((2, 2), dtype=np.int64))

    def test_rejects_float(self):
        with pytest.raises(TypeError):
            check_1d_int_array("a", np.array([1.0, 2.0]))

    def test_bounds(self):
        check_1d_int_array("a", np.array([0, 5]), min_value=0, max_value=5)
        with pytest.raises(ValueError):
            check_1d_int_array("a", np.array([-1]), min_value=0)
        with pytest.raises(ValueError):
            check_1d_int_array("a", np.array([6]), max_value=5)

    def test_empty_ok(self):
        out = check_1d_int_array("a", np.array([], dtype=np.int64), min_value=0)
        assert out.size == 0

    def test_range_violation_is_index_and_value_error(self):
        """Range errors raise IndexOutOfRangeError, which is an IndexError
        for new callers and still a ValueError for existing ones."""
        from repro.utils.validation import IndexOutOfRangeError

        assert issubclass(IndexOutOfRangeError, IndexError)
        assert issubclass(IndexOutOfRangeError, ValueError)
        with pytest.raises(IndexError):
            check_1d_int_array("a", np.array([-1]), min_value=0)
        with pytest.raises(IndexError):
            check_1d_int_array("a", np.array([6]), max_value=5)
        # Non-range failures stay plain ValueError/TypeError.
        with pytest.raises(ValueError) as excinfo:
            check_1d_int_array("a", np.zeros((2, 2), dtype=np.int64))
        assert not isinstance(excinfo.value, IndexError)


class TestCheckCSR:
    def test_valid(self):
        idx = np.array([0, 1, 2], dtype=np.int64)
        off = np.array([0, 2, 3], dtype=np.int64)
        i2, o2 = check_csr(idx, off, num_rows=3)
        assert (i2 == idx).all() and (o2 == off).all()

    def test_empty_bags_allowed(self):
        check_csr(np.array([], dtype=np.int64), np.array([0, 0, 0]), num_rows=5)

    def test_rejects_bad_first_offset(self):
        with pytest.raises(ValueError, match="offsets\\[0\\]"):
            check_csr(np.array([0]), np.array([1, 1]), num_rows=2)

    def test_rejects_bad_last_offset(self):
        with pytest.raises(ValueError, match="offsets\\[-1\\]"):
            check_csr(np.array([0, 1]), np.array([0, 1]), num_rows=2)

    def test_rejects_decreasing(self):
        with pytest.raises(ValueError, match="non-decreasing"):
            check_csr(np.array([0, 1, 0]), np.array([0, 2, 1, 3]), num_rows=2)

    def test_rejects_out_of_range_index(self):
        with pytest.raises(ValueError):
            check_csr(np.array([5]), np.array([0, 1]), num_rows=5)
