"""Tests for the finite epoch-style dataset (materialize / FixedDataset)."""

import numpy as np
import pytest

from repro.data import KAGGLE, SyntheticCTRDataset
from repro.data.datasets import FixedDataset, materialize
from repro.models import DLRMConfig, build_dlrm
from repro.training import Trainer

SPEC = KAGGLE.scaled(0.0002)


@pytest.fixture(scope="module")
def corpus():
    ds = SyntheticCTRDataset(SPEC, seed=0, noise=0.5, pooling_factor=2.0)
    return materialize(ds.batches(32, 100), num_samples=200)


class TestMaterialize:
    def test_size(self, corpus):
        assert len(corpus) == 200
        assert corpus.num_tables == 26

    def test_truncates_final_batch(self):
        ds = SyntheticCTRDataset(SPEC, seed=0)
        corpus = materialize(ds.batches(32, 10), num_samples=50)
        assert len(corpus) == 50

    def test_exhausted_stream_raises(self):
        ds = SyntheticCTRDataset(SPEC, seed=0)
        with pytest.raises(ValueError, match="exhausted"):
            materialize(ds.batches(8, 2), num_samples=100)

    def test_bad_num_samples(self):
        with pytest.raises(ValueError):
            materialize([], num_samples=0)

    def test_preserves_sample_content(self):
        ds = SyntheticCTRDataset(SPEC, seed=3)
        batches = list(ds.batches(16, 2))
        corpus = materialize(iter(batches), num_samples=32)
        np.testing.assert_allclose(corpus.dense[:16], batches[0].dense)
        np.testing.assert_array_equal(corpus.labels[16:], batches[1].labels)
        idx0, off0 = batches[0].sparse[5]
        np.testing.assert_array_equal(
            corpus.table_indices[5][:idx0.size], idx0
        )


class TestFixedDataset:
    def test_subset_reorders(self, corpus):
        sub = corpus.subset(np.array([5, 2, 5]))
        assert len(sub) == 3
        np.testing.assert_allclose(sub.dense[0], corpus.dense[5])
        np.testing.assert_allclose(sub.dense[1], corpus.dense[2])
        np.testing.assert_allclose(sub.dense[2], corpus.dense[5])

    def test_subset_preserves_bags(self, corpus):
        rows = np.array([7, 3])
        sub = corpus.subset(rows)
        for t in range(corpus.num_tables):
            idx, off = corpus.table_indices[t], corpus.table_offsets[t]
            want = np.concatenate([idx[off[r]:off[r + 1]] for r in rows])
            np.testing.assert_array_equal(sub.table_indices[t], want)

    def test_split_disjoint_and_complete(self, corpus):
        train, test = corpus.split(0.25, rng=0)
        assert len(train) + len(test) == len(corpus)
        assert len(test) == 50
        # disjoint: total dense rows recover the corpus as a multiset
        combined = np.vstack([train.dense, test.dense])
        assert sorted(map(tuple, np.round(combined, 9))) == \
            sorted(map(tuple, np.round(corpus.dense, 9)))

    def test_split_validation(self, corpus):
        with pytest.raises(ValueError):
            corpus.split(0.0)
        with pytest.raises(ValueError):
            corpus.split(1.0)

    def test_epoch_covers_every_sample(self, corpus):
        seen = 0
        label_sum = 0.0
        for batch in corpus.batches(32, shuffle=True, rng=1):
            seen += batch.size
            label_sum += batch.labels.sum()
        assert seen == len(corpus)
        assert label_sum == pytest.approx(corpus.labels.sum())

    def test_drop_last(self, corpus):
        sizes = [b.size for b in corpus.batches(64, drop_last=True)]
        assert sizes == [64, 64, 64]

    def test_shuffle_deterministic(self, corpus):
        a = [b.labels for b in corpus.batches(32, rng=7)]
        b = [b.labels for b in corpus.batches(32, rng=7)]
        for x, y in zip(a, b):
            np.testing.assert_array_equal(x, y)

    def test_epochs_reshuffle(self, corpus):
        batches = list(corpus.epochs(50, num_epochs=2, rng=0))
        assert len(batches) == 8
        # first batch of each epoch differs (reshuffled)
        assert not np.array_equal(batches[0].labels, batches[4].labels)

    def test_batches_are_valid(self, corpus):
        for batch in corpus.batches(32):
            assert batch.dense.shape[0] == batch.labels.shape[0]
            for idx, off in batch.sparse:
                assert off[-1] == idx.size


@pytest.mark.slow
class TestMemorization:
    def test_dense_model_memorizes_small_corpus(self):
        """Classic sanity check: repeated epochs over a tiny fixed corpus
        drive training accuracy far above the noise ceiling."""
        ds = SyntheticCTRDataset(SPEC, seed=0, noise=1.5)  # noisy labels
        corpus = materialize(ds.batches(32, 10), num_samples=128)
        cfg = DLRMConfig(table_sizes=SPEC.table_sizes, emb_dim=8,
                         bottom_mlp=(32,), top_mlp=(32,))
        trainer = Trainer(build_dlrm(cfg, rng=0), lr=0.2)
        trainer.train(corpus.epochs(32, num_epochs=60, rng=0))
        ev = trainer.evaluate(corpus.batches(64, shuffle=False))
        assert ev.accuracy > 0.9  # memorised the noise
