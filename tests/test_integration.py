"""End-to-end integration tests: the paper's qualitative claims in miniature.

These are slower than unit tests (each trains a small DLRM) but pin the
behaviours the evaluation section depends on: TT-Rec trains to near-baseline
accuracy, the cache recovers accuracy and serves hits, larger ranks help,
and compressed models really are smaller.
"""

import numpy as np
import pytest

from repro.cache import CachedTTEmbeddingBag
from repro.data import KAGGLE, SyntheticCTRDataset
from repro.models import DLRMConfig, TTConfig, build_dlrm, build_ttrec
from repro.training import Trainer


@pytest.fixture(scope="module")
def setting():
    spec = KAGGLE.scaled(0.0005)
    cfg = DLRMConfig(table_sizes=spec.table_sizes, emb_dim=8,
                     bottom_mlp=(32, 16), top_mlp=(32,))
    return spec, cfg


def run(model, spec, iters=250, seed=0):
    ds = SyntheticCTRDataset(spec, seed=seed, noise=0.7)
    trainer = Trainer(model, lr=0.1)
    res = trainer.train(ds.batches(96, iters))
    ev = trainer.evaluate(ds.batches(512, 6))
    return res, ev


@pytest.mark.slow
class TestPaperClaims:
    def test_ttrec_accuracy_near_baseline(self, setting):
        """§6.2: TT-Rec accuracy loss is small vs the uncompressed baseline."""
        spec, cfg = setting
        _, base = run(build_dlrm(cfg, rng=0), spec)
        _, tt = run(
            build_ttrec(cfg, num_tt_tables=3, tt=TTConfig(rank=16),
                        min_rows=300, rng=0),
            spec,
        )
        assert base.auc > 0.65  # the task is learnable
        assert tt.auc > base.auc - 0.03  # small degradation at most

    def test_compression_is_real(self, setting):
        spec, cfg = setting
        base = build_dlrm(cfg, rng=0)
        tt = build_ttrec(cfg, num_tt_tables=3, tt=TTConfig(rank=8),
                         min_rows=300, rng=0)
        assert tt.embedding_parameters() < base.embedding_parameters() / 2

    def test_cache_serves_hits_and_matches_tt_accuracy(self, setting):
        """§6.5: the LFU cache reaches a high hit rate under Zipf traffic
        and does not hurt accuracy."""
        spec, cfg = setting
        tt_cfg = TTConfig(rank=16, use_cache=True, cache_fraction=0.02,
                          warmup_steps=30, refresh_interval=100)
        model = build_ttrec(cfg, num_tt_tables=3, tt=tt_cfg, min_rows=300, rng=0)
        _, ev = run(model, spec)
        cached = [e for e in model.embeddings if isinstance(e, CachedTTEmbeddingBag)]
        assert cached, "expected at least one cached embedding"
        for emb in cached:
            assert emb.is_warm
            assert emb.hit_rate() > 0.1
        assert ev.auc > 0.64

    def test_rank_sweep_quality_ordering(self, setting):
        """§6.2: larger TT-ranks produce at-least-comparable models; rank 1
        is clearly worse than rank 16 on a fresh (hard) table layout."""
        spec, cfg = setting
        evs = {}
        for rank in (1, 16):
            _, ev = run(
                build_ttrec(cfg, num_tt_tables=3, tt=TTConfig(rank=rank),
                            min_rows=300, rng=0),
                spec, iters=250,
            )
            evs[rank] = ev.auc
        assert evs[16] > evs[1] + 0.005

    def test_deterministic_runs(self, setting):
        spec, cfg = setting
        _, a = run(build_dlrm(cfg, rng=0), spec, iters=40)
        _, b = run(build_dlrm(cfg, rng=0), spec, iters=40)
        assert a.accuracy == b.accuracy
        assert a.bce == pytest.approx(b.bce)


@pytest.mark.slow
class TestTrainingWithPooling:
    def test_pooling_factor_training(self, setting):
        """§6.6 regime: bags with P>1 lookups still train correctly."""
        spec, cfg = setting
        ds = SyntheticCTRDataset(spec, seed=0, noise=0.7, pooling_factor=4.0)
        model = build_ttrec(cfg, num_tt_tables=3, tt=TTConfig(rank=8),
                            min_rows=300, rng=0)
        trainer = Trainer(model, lr=0.05)
        res = trainer.train(ds.batches(64, 120))
        assert np.mean(res.losses[-20:]) < np.mean(res.losses[:20])
