"""Kernel-bench regression gate: schema validation, pass/fail, CLI exit."""

from __future__ import annotations

import json

import pytest

from repro.bench import BENCH_SCHEMA, compare, load_bench, normalized_arms
from repro.bench.regression import (
    BASELINE_SCHEMA,
    load_baseline,
    main,
    write_baseline,
)


def bench_doc(arms: dict[str, float]) -> dict:
    return {
        "schema": BENCH_SCHEMA,
        "name": "kernels",
        "data": {
            "reference_arm": "ref",
            "arms": {name: {"ms_per_iter": ms, "norm_ms": ms / arms["ref"]}
                     for name, ms in arms.items()},
        },
    }


def baseline_doc(arms: dict[str, float]) -> dict:
    return {"schema": BASELINE_SCHEMA, "reference_arm": "ref", "arms": arms}


def test_normalized_arms():
    doc = bench_doc({"ref": 2.0, "fast": 1.0, "slow": 8.0})
    assert normalized_arms(doc) == {"ref": 1.0, "fast": 0.5, "slow": 4.0}


def test_compare_passes_within_tolerance():
    cur = bench_doc({"ref": 2.0, "a": 2.2})
    base = baseline_doc({"ref": 1.0, "a": 1.0})
    assert compare(cur, base, tolerance=0.20) == []  # 1.1 <= 1.0 * 1.2


def test_compare_fails_on_regression():
    cur = bench_doc({"ref": 2.0, "a": 2.6})  # norm 1.3 vs baseline 1.0
    base = baseline_doc({"ref": 1.0, "a": 1.0})
    failures = compare(cur, base, tolerance=0.20)
    assert len(failures) == 1 and failures[0].startswith("a:")


def test_compare_fails_on_missing_arm():
    cur = bench_doc({"ref": 2.0})
    base = baseline_doc({"ref": 1.0, "gone": 1.0})
    failures = compare(cur, base)
    assert any("gone" in f and "missing" in f for f in failures)


def test_ungated_extra_arm_passes():
    # New arms not yet in the baseline must not fail the gate.
    cur = bench_doc({"ref": 2.0, "new_arm": 99.0})
    base = baseline_doc({"ref": 1.0})
    assert compare(cur, base) == []


def test_load_rejects_bad_schema(tmp_path):
    p = tmp_path / "bad.json"
    p.write_text(json.dumps({"schema": "nope", "data": {}}))
    with pytest.raises(ValueError, match="expected schema"):
        load_bench(str(p))
    with pytest.raises(ValueError, match="expected schema"):
        load_baseline(str(p))
    p.write_text(json.dumps({"schema": BENCH_SCHEMA, "data": {}}))
    with pytest.raises(ValueError, match="no planner arms"):
        load_bench(str(p))
    p.write_text(json.dumps({
        "schema": BENCH_SCHEMA,
        "data": {"reference_arm": "missing",
                 "arms": {"a": {"ms_per_iter": 1.0}}},
    }))
    with pytest.raises(ValueError, match="reference arm"):
        load_bench(str(p))


def test_main_exit_codes_and_write_baseline(tmp_path, capsys):
    cur_path = tmp_path / "current.json"
    cur_path.write_text(json.dumps(bench_doc({"ref": 2.0, "a": 3.0})))

    base_path = tmp_path / "baseline.json"
    assert main([str(cur_path), "--write-baseline", str(base_path)]) == 0
    written = load_baseline(str(base_path))
    assert written["arms"] == {"ref": 1.0, "a": 1.5}

    # Round trip passes against its own baseline...
    assert main([str(cur_path), str(base_path)]) == 0
    assert "gate passed" in capsys.readouterr().out

    # ...and a slowed-down run fails with exit 1.
    slow_path = tmp_path / "slow.json"
    slow_path.write_text(json.dumps(bench_doc({"ref": 2.0, "a": 4.0})))
    assert main([str(slow_path), str(base_path), "--tolerance", "0.20"]) == 1
    assert "REGRESSION" in capsys.readouterr().err


def test_write_baseline_rounds(tmp_path):
    path = tmp_path / "b.json"
    write_baseline(bench_doc({"ref": 3.0, "a": 1.0}), str(path))
    doc = json.loads(path.read_text())
    assert doc["schema"] == BASELINE_SCHEMA
    assert doc["arms"]["a"] == round(1.0 / 3.0, 4)


def test_committed_baseline_is_valid():
    # The file the CI gate actually loads must always parse.
    doc = load_baseline("benchmarks/baseline_kernels.json")
    assert doc["reference_arm"] in doc["arms"]
    assert doc["arms"][doc["reference_arm"]] == 1.0
