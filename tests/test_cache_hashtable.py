"""Tests for the open-addressing hash table (paper §4.2 frequency tracker)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache import OpenAddressingHashTable
from repro.cache.hashtable import splitmix64


class TestSplitmix64:
    def test_deterministic(self):
        keys = np.arange(100, dtype=np.int64)
        np.testing.assert_array_equal(splitmix64(keys), splitmix64(keys))

    def test_no_collisions_on_small_range(self):
        hashes = splitmix64(np.arange(100_000, dtype=np.int64))
        assert np.unique(hashes).size == 100_000

    def test_spreads_low_bits(self):
        """Sequential keys land in different low-bit buckets."""
        hashes = splitmix64(np.arange(4096, dtype=np.int64)) & np.uint64(255)
        counts = np.bincount(hashes.astype(np.int64), minlength=256)
        assert counts.max() < 3 * (4096 // 256)


class TestHashTable:
    def test_add_and_get(self):
        t = OpenAddressingHashTable(16)
        t.add(np.array([3, 5, 3]))
        np.testing.assert_allclose(t.get(np.array([3, 5, 7])), [2.0, 1.0, 0.0])

    def test_amount_vector(self):
        t = OpenAddressingHashTable(16)
        t.add(np.array([1, 1, 2]), np.array([0.5, 0.25, 3.0]))
        np.testing.assert_allclose(t.get(np.array([1, 2])), [0.75, 3.0])

    def test_scalar_amount(self):
        t = OpenAddressingHashTable(16)
        t.add(np.array([4, 4]), 2.0)
        np.testing.assert_allclose(t.get(np.array([4])), [4.0])

    def test_rejects_negative_keys(self):
        t = OpenAddressingHashTable(16)
        with pytest.raises(ValueError):
            t.add(np.array([-1]))

    def test_rejects_amount_length_mismatch(self):
        t = OpenAddressingHashTable(16)
        with pytest.raises(ValueError):
            t.add(np.array([1, 2]), np.array([1.0]))

    def test_growth_preserves_contents(self):
        t = OpenAddressingHashTable(8)
        keys = np.arange(1000, dtype=np.int64)
        t.add(keys)
        assert len(t) == 1000
        assert t.capacity >= 1000
        np.testing.assert_allclose(t.get(keys), 1.0)

    def test_items_roundtrip(self):
        t = OpenAddressingHashTable(64)
        t.add(np.array([10, 20, 30]), np.array([1.0, 2.0, 3.0]))
        keys, values = t.items()
        order = np.argsort(keys)
        np.testing.assert_array_equal(keys[order], [10, 20, 30])
        np.testing.assert_allclose(values[order], [1, 2, 3])

    def test_top_k(self):
        t = OpenAddressingHashTable(64)
        t.add(np.repeat(np.array([7, 8, 9]), [5, 2, 9]))
        keys, values = t.top_k(2)
        np.testing.assert_array_equal(keys, [9, 7])
        np.testing.assert_allclose(values, [9.0, 5.0])

    def test_top_k_tie_break_deterministic(self):
        t = OpenAddressingHashTable(64)
        t.add(np.array([5, 3, 9]))  # all count 1
        keys, _ = t.top_k(2)
        np.testing.assert_array_equal(keys, [3, 5])

    def test_top_k_edge_cases(self):
        t = OpenAddressingHashTable(16)
        assert t.top_k(3)[0].size == 0
        t.add(np.array([1]))
        keys, _ = t.top_k(100)
        np.testing.assert_array_equal(keys, [1])
        assert t.top_k(0)[0].size == 0

    def test_clear(self):
        t = OpenAddressingHashTable(16)
        t.add(np.array([1, 2]))
        t.clear()
        assert len(t) == 0
        np.testing.assert_allclose(t.get(np.array([1, 2])), 0.0)

    def test_get_empty_input(self):
        t = OpenAddressingHashTable(16)
        assert t.get(np.array([], dtype=np.int64)).size == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            OpenAddressingHashTable(0)
        with pytest.raises(ValueError):
            OpenAddressingHashTable(16, load_factor=0.99)

    @given(st.lists(st.integers(min_value=0, max_value=10_000), min_size=0, max_size=500),
           st.integers(min_value=8, max_value=64))
    @settings(max_examples=60, deadline=None)
    def test_matches_bincount_oracle(self, keys, cap):
        """Property: the table agrees with a plain counting dict."""
        t = OpenAddressingHashTable(cap)
        arr = np.asarray(keys, dtype=np.int64)
        # split into a few batches to exercise incremental adds
        for chunk in np.array_split(arr, 3):
            if chunk.size:
                t.add(chunk)
        expected: dict[int, int] = {}
        for k in keys:
            expected[k] = expected.get(k, 0) + 1
        probe = np.asarray(sorted(set(keys)) + [10_001], dtype=np.int64)
        got = t.get(probe)
        for k, v in zip(probe, got):
            assert v == expected.get(int(k), 0)
        assert len(t) == len(expected)

    def test_adversarial_same_slot_keys(self):
        """Many keys, tiny table: forces heavy probing and growth."""
        t = OpenAddressingHashTable(8, load_factor=0.5)
        keys = np.arange(0, 4096, 1, dtype=np.int64)
        t.add(keys)
        t.add(keys)
        np.testing.assert_allclose(t.get(keys), 2.0)
