"""Regression tests: every embedding operator must handle all-empty bags.

Production traffic contains samples whose categorical feature is missing;
a batch can be entirely empty for a given table. Forward must return
zeros, backward must be a no-op (or NotImplementedError for the
inference-only quantized operator).
"""

import numpy as np
import pytest

from repro.baselines import (
    HashedEmbeddingBag,
    LowRankEmbeddingBag,
    QuantizedEmbeddingBag,
    TREmbeddingBag,
)
from repro.cache import CachedTTEmbeddingBag
from repro.ops import EmbeddingBag
from repro.tt import T3nsorEmbeddingBag, TTEmbeddingBag

EMPTY = np.empty(0, dtype=np.int64)
OFFSETS = np.zeros(4, dtype=np.int64)  # 3 empty bags


def all_operators():
    return [
        EmbeddingBag(60, 8, rng=0),
        TTEmbeddingBag(60, 8, rank=2, rng=0),
        TTEmbeddingBag(60, 8, rank=2, dedup=True, rng=0),
        T3nsorEmbeddingBag(60, 8, rank=2, rng=0),
        TREmbeddingBag(60, 8, rank=2, rng=0),
        LowRankEmbeddingBag(60, 8, rank=2, rng=0),
        HashedEmbeddingBag(60, 8, num_buckets=10, rng=0),
        CachedTTEmbeddingBag(60, 8, rank=2, cache_size=4, warmup_steps=0, rng=0),
        QuantizedEmbeddingBag.from_dense(np.zeros((60, 8)), bits=4),
    ]


@pytest.mark.parametrize("emb", all_operators(),
                         ids=lambda e: type(e).__name__ + (
                             "-dedup" if getattr(e, "dedup", False) else ""))
class TestEmptyBatch:
    def test_forward_zero_output(self, emb):
        out = emb.forward(EMPTY, OFFSETS)
        assert out.shape == (3, 8)
        assert not out.any()

    def test_backward_noop_or_unsupported(self, emb):
        emb.forward(EMPTY, OFFSETS)
        try:
            emb.backward(np.ones((3, 8)))
        except NotImplementedError:
            return  # inference-only operator
        for p in getattr(emb, "parameters", lambda: [])():
            assert not p.grad.any()

    def test_mixed_empty_and_nonempty_bags(self, emb):
        idx = np.array([5, 7], dtype=np.int64)
        off = np.array([0, 0, 2, 2], dtype=np.int64)  # bag 1 has both rows
        out = emb.forward(idx, off)
        assert out.shape == (3, 8)
        assert not out[0].any() and not out[2].any()
        rows = emb.lookup(idx)
        np.testing.assert_allclose(out[1], rows.sum(axis=0), atol=1e-10)
