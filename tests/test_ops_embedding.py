"""Tests for the dense EmbeddingBag baseline and segment_sum."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ops import EmbeddingBag
from repro.ops.embedding import segment_sum
from tests.helpers import numeric_grad_check, random_csr


class TestSegmentSum:
    def test_basic(self):
        rows = np.arange(6.0).reshape(3, 2)
        out = segment_sum(rows, np.array([0, 2, 3]))
        np.testing.assert_allclose(out, [[0 + 2, 1 + 3], [4, 5]])

    def test_empty_segment_is_zero(self):
        rows = np.ones((2, 3))
        out = segment_sum(rows, np.array([0, 0, 2, 2]))
        np.testing.assert_allclose(out, [[0, 0, 0], [2, 2, 2], [0, 0, 0]])

    def test_no_rows(self):
        out = segment_sum(np.zeros((0, 4)), np.array([0, 0]))
        np.testing.assert_allclose(out, np.zeros((1, 4)))

    @given(st.integers(min_value=0, max_value=30), st.integers(min_value=1, max_value=8),
           st.integers(min_value=0, max_value=2 ** 31))
    @settings(max_examples=60)
    def test_matches_loop(self, n, m, seed):
        rng = np.random.default_rng(seed)
        rows = rng.normal(size=(n, 3))
        cuts = np.sort(rng.integers(0, n + 1, size=m - 1)) if m > 1 else np.array([], dtype=int)
        offsets = np.concatenate([[0], cuts, [n]]).astype(np.int64)
        out = segment_sum(rows, offsets)
        for i in range(m):
            np.testing.assert_allclose(
                out[i], rows[offsets[i]:offsets[i + 1]].sum(axis=0), atol=1e-9
            )


class TestEmbeddingBag:
    def test_default_init_bounds(self):
        emb = EmbeddingBag(100, 8, rng=0)
        bound = 1.0 / np.sqrt(100)
        assert np.all(np.abs(emb.weight.data) <= bound)

    def test_sum_pooling(self):
        emb = EmbeddingBag(10, 4, rng=0)
        idx = np.array([1, 2, 3])
        out = emb.forward(idx, np.array([0, 2, 3]))
        np.testing.assert_allclose(out[0], emb.weight.data[1] + emb.weight.data[2])
        np.testing.assert_allclose(out[1], emb.weight.data[3])

    def test_mean_pooling(self):
        emb = EmbeddingBag(10, 4, mode="mean", rng=0)
        idx = np.array([1, 2])
        out = emb.forward(idx, np.array([0, 2]))
        np.testing.assert_allclose(out[0], emb.weight.data[[1, 2]].mean(axis=0))

    def test_per_sample_weights(self):
        emb = EmbeddingBag(10, 4, rng=0)
        idx = np.array([1, 2])
        out = emb.forward(idx, np.array([0, 2]), np.array([2.0, -1.0]))
        np.testing.assert_allclose(out[0], 2 * emb.weight.data[1] - emb.weight.data[2])

    def test_empty_bag_zero_output(self):
        emb = EmbeddingBag(10, 4, rng=0)
        out = emb.forward(np.array([5]), np.array([0, 0, 1]))
        np.testing.assert_allclose(out[0], 0.0)

    def test_rejects_bad_mode(self):
        with pytest.raises(ValueError):
            EmbeddingBag(10, 4, mode="max")

    def test_rejects_out_of_range(self):
        emb = EmbeddingBag(10, 4, rng=0)
        with pytest.raises(ValueError):
            emb.forward(np.array([10]), np.array([0, 1]))

    def test_out_of_range_is_index_error(self):
        """An out-of-range id raises IndexError (it is also a ValueError
        for backward compatibility) instead of NumPy silently wrapping
        negative indices to the end of the table."""
        emb = EmbeddingBag(10, 4, rng=0)
        with pytest.raises(IndexError):
            emb.forward(np.array([10]), np.array([0, 1]))
        with pytest.raises(IndexError):
            emb.forward(np.array([-1]), np.array([0, 1]))

    def test_negative_index_does_not_wrap(self):
        emb = EmbeddingBag(10, 4, rng=0)
        # Before validation, -1 would silently pool row 9.
        with pytest.raises(IndexError):
            emb.forward(np.array([1, -1]), np.array([0, 2]))

    def test_lookup_validates_range(self):
        emb = EmbeddingBag(10, 4, rng=0)
        with pytest.raises(IndexError):
            emb.lookup(np.array([10]))
        with pytest.raises(IndexError):
            emb.lookup(np.array([-3]))

    def test_lookup_rejects_float_ids(self):
        emb = EmbeddingBag(10, 4, rng=0)
        with pytest.raises(TypeError):
            emb.lookup(np.array([1.5, 2.0]))

    def test_weight_mismatch_rejected(self):
        emb = EmbeddingBag(10, 4, rng=0)
        with pytest.raises(ValueError):
            emb.forward(np.array([1, 2]), np.array([0, 2]), np.array([1.0]))

    @pytest.mark.parametrize("mode", ["sum", "mean"])
    def test_gradient(self, mode):
        rng = np.random.default_rng(5)
        emb = EmbeddingBag(12, 3, mode=mode, rng=0)
        idx, off = random_csr(rng, 12, 6)
        alpha = rng.normal(size=idx.size) if mode == "sum" else None
        r = rng.normal(size=(6, 3))

        def loss():
            return float((emb.forward(idx, off, alpha) * r).sum())

        emb.forward(idx, off, alpha)
        emb.backward(r)
        numeric_grad_check(emb.weight.data, emb.weight.grad, loss, samples=25)

    def test_duplicate_indices_accumulate(self):
        emb = EmbeddingBag(5, 2, rng=0)
        idx = np.array([3, 3, 3])
        emb.forward(idx, np.array([0, 3]))
        emb.backward(np.ones((1, 2)))
        np.testing.assert_allclose(emb.weight.grad[3], [3.0, 3.0])
        assert emb.weight.grad[[0, 1, 2, 4]].sum() == 0

    def test_touched_rows_recorded(self):
        emb = EmbeddingBag(10, 2, rng=0)
        emb.forward(np.array([7, 2, 7]), np.array([0, 3]))
        emb.backward(np.ones((1, 2)))
        np.testing.assert_array_equal(emb.weight.touched_rows, [2, 7])

    def test_lookup(self):
        emb = EmbeddingBag(10, 4, rng=0)
        np.testing.assert_allclose(emb.lookup(np.array([3, 3])), emb.weight.data[[3, 3]])
