"""Tests for the analysis modules: memory (exact Table 2), distributions,
locality, Pareto frontier."""

import numpy as np
import pytest

from repro.analysis.distributions import (
    materialized_entry_samples,
    pdf_histogram,
    product_of_iid_samples,
    table1_kl_rows,
)
from repro.analysis.locality import top_set_stability
from repro.analysis.memory import model_size_summary, table2_rows, tt_shape_for_table
from repro.analysis.pareto import pareto_frontier
from repro.data import KAGGLE, TERABYTE
from repro.data.zipf import ZipfSampler
from repro.tt import TTShape

# Paper Table 2, transcribed: (rows) -> {rank: (params, reduction)}
PAPER_TABLE2 = {
    10131227: {16: (135040, 1200), 32: (495360, 327), 64: (1891840, 86)},
    8351593: {16: (122176, 1094), 32: (449152, 297), 64: (1717504, 78)},
    7046547: {16: (121600, 927), 32: (448000, 252), 64: (1715200, 66)},
    5461306: {16: (106944, 817), 32: (393088, 222), 64: (1502976, 58)},
    2202608: {16: (79264, 445), 32: (291648, 121), 64: (1115776, 32)},
    286181: {16: (43360, 106), 32: (160448, 28), 64: (615808, 7)},
    142572: {16: (31744, 72), 32: (116736, 19), 64: (446464, 5)},
}


class TestTable2Exact:
    def test_every_parameter_count_matches_paper(self):
        rows = table2_rows(KAGGLE)
        assert len(rows) == 21
        for r in rows:
            params, reduction = PAPER_TABLE2[r.num_rows][r.rank]
            assert r.tt_params == params, (r.num_rows, r.rank)
            # The paper's printed ratios mix floor and round (86 from 85.68,
            # 297 from 297.51), so allow one unit either way.
            assert abs(r.memory_reduction - reduction) <= 1.0, (r.num_rows, r.rank)

    def test_core_shapes_match_paper(self):
        shape = tt_shape_for_table(10131227, 16, 32)
        assert shape.paper_core_shape(0) == (1, 200, 2, 32)
        assert shape.paper_core_shape(1) == (32, 220, 2, 32)
        assert shape.paper_core_shape(2) == (32, 250, 4, 1)

    def test_unknown_table_falls_back_to_suggested(self):
        shape = tt_shape_for_table(999_983, 16, 8)  # prime row count
        assert shape.padded_rows >= 999_983
        assert shape.dim == 16


class TestModelSizeSummary:
    def test_kaggle_headline_117x(self):
        """Paper §6: 'TT-Rec reduces the overall model size requirement by
        117x from 2.16 GB to 18.36 MB' (7 tables, rank 32)."""
        s = model_size_summary(KAGGLE, num_tt_tables=7, rank=32)
        assert s.reduction == pytest.approx(117, abs=1)
        assert s.baseline_bytes / 1e9 == pytest.approx(2.16, abs=0.01)
        assert s.compressed_bytes / 1e6 == pytest.approx(18.4, abs=0.4)

    def test_kaggle_fig5_series(self):
        """Fig. 5 / §6.1: reductions of 4x, 48x, (117x) for 3, 5, 7 tables."""
        r3 = model_size_summary(KAGGLE, num_tt_tables=3, rank=32).reduction
        r5 = model_size_summary(KAGGLE, num_tt_tables=5, rank=32).reduction
        assert r3 == pytest.approx(4, abs=0.5)
        assert r5 == pytest.approx(48, abs=1)

    def test_terabyte_monotone_in_tables(self):
        rs = [model_size_summary(TERABYTE, num_tt_tables=n, rank=32).reduction
              for n in (3, 5, 7)]
        assert rs[0] < rs[1] < rs[2]
        assert rs[0] == pytest.approx(2.6, abs=0.3)  # paper: 2.6x

    def test_reduction_decreases_with_rank(self):
        rs = [model_size_summary(KAGGLE, num_tt_tables=7, rank=r).reduction
              for r in (16, 32, 64)]
        assert rs[0] > rs[1] > rs[2]

    def test_mlp_params_fold_in(self):
        a = model_size_summary(KAGGLE, num_tt_tables=7, rank=32)
        b = model_size_summary(KAGGLE, num_tt_tables=7, rank=32, mlp_params=10 ** 6)
        assert b.reduction < a.reduction


class TestDistributions:
    def test_product_uniform01_concentrates_at_zero(self):
        s1 = product_of_iid_samples("uniform01", 1, 100_000, rng=0)
        s3 = product_of_iid_samples("uniform01", 3, 100_000, rng=0)
        assert np.mean(s3 < 0.1) > np.mean(s1 < 0.1) + 0.2

    def test_product_gaussian_peaked(self):
        s3 = product_of_iid_samples("gaussian", 3, 100_000, rng=0)
        assert np.mean(np.abs(s3) < 0.1) > 0.3

    def test_unknown_dist(self):
        with pytest.raises(ValueError):
            product_of_iid_samples("cauchy", 2, 10)

    def test_pdf_histogram_normalised(self):
        x = np.random.default_rng(0).normal(size=10_000)
        centers, density = pdf_histogram(x, bins=50)
        width = centers[1] - centers[0]
        assert density.sum() * width == pytest.approx(1.0, abs=0.01)

    def test_pdf_histogram_empty(self):
        with pytest.raises(ValueError):
            pdf_histogram(np.array([]))

    def test_materialized_sampled_gaussian_variance(self):
        shape = TTShape.with_uniform_rank(512, 8, (8, 8, 8), (2, 2, 2), 4)
        entries = materialized_entry_samples(shape, "sampled_gaussian", rng=0)
        assert entries.var() == pytest.approx(1 / (3 * 512), rel=0.4)

    def test_table1_rows_structure(self):
        rows = table1_kl_rows(n=10_000)
        assert len(rows) == 6
        assert rows[0].kind == "uniform" and rows[0].kl == 0.0
        gaussians = rows[1:]
        # KL ordering: N(0,1) > N(0,1/2) > N(0,1/8) > N(0,1/3n)
        assert gaussians[0].kl > gaussians[1].kl > gaussians[2].kl > gaussians[3].kl
        # the optimal Gaussian attains the scale-free minimum
        # KL(U || N*) = (1 + ln(pi/6)) / 2 ~= 0.1765 (the paper's Table 1
        # reports it as -0.17 under the opposite sign convention)
        assert gaussians[3].kl == pytest.approx(0.5 * (1 + np.log(np.pi / 6)), abs=1e-9)


class TestLocality:
    def test_stable_stream_stabilises(self):
        """A stationary Zipf stream's top-k set changes less over time."""
        z = ZipfSampler(2000, 1.1, rng=0)
        stream = z.sample(60_000)
        trace = top_set_stability(stream, k=100, checkpoint_fraction=0.05)
        assert trace.change_fraction[0] > trace.change_fraction[-1]
        assert trace.change_fraction[-1] < 0.05

    def test_drifting_stream_does_not_stabilise(self):
        rng = np.random.default_rng(0)
        # hot set shifts halfway through
        a = rng.integers(0, 100, size=10_000)
        b = rng.integers(900, 1000, size=10_000)
        stream = np.concatenate([a, b])
        trace = top_set_stability(stream, k=100, checkpoint_fraction=0.1)
        mid = len(trace.change_fraction) // 2
        assert trace.change_fraction[mid - 1:].max() > 0.3

    def test_stabilization_point(self):
        z = ZipfSampler(500, 1.3, rng=1)
        trace = top_set_stability(z.sample(100_000), k=50, checkpoint_fraction=0.03)
        p = trace.stabilization_point(threshold=0.05)
        assert 0.0 < p <= 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            top_set_stability(np.array([], dtype=np.int64))
        with pytest.raises(ValueError):
            top_set_stability(np.array([1, 2]), checkpoint_fraction=0.0)

    def test_checkpoints_cover_stream(self):
        trace = top_set_stability(np.arange(1000) % 7, k=3, checkpoint_fraction=0.25)
        assert trace.checkpoints[-1] == pytest.approx(1.0)


class TestPareto:
    def test_frontier_filters_dominated(self):
        pts = [(1.0, 0.5), (2.0, 0.6), (3.0, 0.55), (4.0, 0.7)]
        front = pareto_frontier(pts, cost=lambda p: p[0], value=lambda p: p[1])
        assert front == [(1.0, 0.5), (2.0, 0.6), (4.0, 0.7)]

    def test_frontier_sorted_by_cost(self):
        pts = [(4.0, 0.7), (1.0, 0.5)]
        front = pareto_frontier(pts, cost=lambda p: p[0], value=lambda p: p[1])
        assert front == [(1.0, 0.5), (4.0, 0.7)]

    def test_equal_cost_keeps_best_value(self):
        pts = [(1.0, 0.5), (1.0, 0.9)]
        front = pareto_frontier(pts, cost=lambda p: p[0], value=lambda p: p[1])
        assert front == [(1.0, 0.9)]

    def test_empty(self):
        assert pareto_frontier([], cost=lambda p: 0, value=lambda p: 0) == []
