"""Tests for weight initialization (paper §3.2, Algorithm 3, Table 1 math)."""

import numpy as np
import pytest

from repro.tt import TTShape
from repro.tt.initialization import (
    CORE_INIT_STRATEGIES,
    dlrm_default_initializer,
    gaussian_cores,
    gaussian_initializer,
    kl_uniform_gaussian,
    optimal_gaussian_for_uniform,
    sampled_gaussian_cores,
    tt_core_initializer,
    uniform_cores,
    uniform_initializer,
)


@pytest.fixture
def shape():
    return TTShape.with_uniform_rank(60, 8, (3, 4, 5), (2, 2, 2), rank=4)


class TestKLAnalytics:
    def test_optimal_gaussian_moment_match(self):
        mu, sigma2 = optimal_gaussian_for_uniform(-2.0, 4.0)
        assert mu == pytest.approx(1.0)
        assert sigma2 == pytest.approx(36.0 / 12.0)

    def test_paper_special_case(self):
        """For Uniform(±1/sqrt(n)), the optimum is N(0, 1/3n)."""
        n = 1000
        mu, sigma2 = optimal_gaussian_for_uniform(-1 / np.sqrt(n), 1 / np.sqrt(n))
        assert mu == 0.0
        assert sigma2 == pytest.approx(1.0 / (3 * n))

    def test_optimum_minimises_kl(self):
        a, b = -0.5, 0.5
        _, s2 = optimal_gaussian_for_uniform(a, b)
        best = kl_uniform_gaussian(a, b, 0.0, s2)
        for factor in (0.3, 0.7, 1.5, 4.0):
            assert kl_uniform_gaussian(a, b, 0.0, s2 * factor) > best
        for mu in (-0.2, 0.1, 0.4):
            assert kl_uniform_gaussian(a, b, mu, s2) > best

    def test_kl_matches_monte_carlo(self):
        a, b, mu, s2 = -1.0, 1.0, 0.2, 0.8
        rng = np.random.default_rng(0)
        x = rng.uniform(a, b, size=400_000)
        log_p = -np.log(b - a)
        log_q = -0.5 * np.log(2 * np.pi * s2) - (x - mu) ** 2 / (2 * s2)
        mc = float(np.mean(log_p - log_q))
        assert kl_uniform_gaussian(a, b, mu, s2) == pytest.approx(mc, abs=5e-3)

    def test_table1_kl_ordering(self):
        """KL ordering matches the paper's accuracy ordering: N(0,1) worst,
        N(0,1/3n) best among Gaussians."""
        n = 10131227  # paper's largest Kaggle table
        a, b = -1 / np.sqrt(n), 1 / np.sqrt(n)
        kls = [kl_uniform_gaussian(a, b, 0.0, s2)
               for s2 in (1.0, 0.5, 0.125, 1 / (3 * n))]
        assert kls[0] > kls[1] > kls[2] > kls[3]

    def test_validation(self):
        with pytest.raises(ValueError):
            kl_uniform_gaussian(1.0, 1.0, 0.0, 1.0)
        with pytest.raises(ValueError):
            kl_uniform_gaussian(0.0, 1.0, 0.0, 0.0)


class TestDenseInitializers:
    def test_uniform_bounds(self):
        init = uniform_initializer(0.25)
        x = init(np.random.default_rng(0), (1000,))
        assert np.all(np.abs(x) <= 0.25)

    def test_gaussian_std(self):
        init = gaussian_initializer(0.1)
        x = init(np.random.default_rng(0), (100_000,))
        assert x.std() == pytest.approx(0.1, rel=0.02)

    def test_dlrm_default(self):
        init = dlrm_default_initializer(400)
        x = init(np.random.default_rng(0), (1000,))
        assert np.all(np.abs(x) <= 1 / 20)


class TestSampledGaussian:
    def test_core_shapes(self, shape):
        cores = sampled_gaussian_cores(shape, rng=0)
        for k, core in enumerate(cores):
            assert core.shape == shape.core_shape(k)

    def test_no_near_zero_entries(self, shape):
        """Algorithm 3's rejection: pre-scaling entries satisfy |x| >= cutoff,
        so post-scaling no entry is below cutoff * scale."""
        cores = sampled_gaussian_cores(shape, cutoff=2.0, rng=0)
        for core in cores:
            nonzero_floor = np.abs(core).min()
            assert nonzero_floor > 0
        # Compare against plain Gaussian cores: sampled has a hole at zero.
        plain = gaussian_cores(shape, rng=0)
        sampled_min = min(np.abs(c).min() for c in cores)
        plain_min = min(np.abs(c).min() for c in plain)
        assert sampled_min > plain_min * 10

    def test_product_variance_matches_target(self):
        """Materialised table entries ~ N(0, 1/3n) (Fig. 3 right)."""
        from repro.tt.decomposition import tt_reconstruct

        shape = TTShape.with_uniform_rank(512, 8, (8, 8, 8), (2, 2, 2), rank=4)
        target = 1.0 / (3.0 * shape.num_rows)
        for strategy in ("sampled_gaussian", "gaussian", "uniform"):
            cores = CORE_INIT_STRATEGIES[strategy](shape, rng=0)
            table = tt_reconstruct(cores, shape)
            assert table.var() == pytest.approx(target, rel=0.35), strategy

    def test_sampled_product_less_peaked_at_zero(self):
        """The whole point of Algorithm 3: fewer near-zero table entries
        than plain Gaussian cores (Fig. 3)."""
        from repro.tt.decomposition import tt_reconstruct

        shape = TTShape.with_uniform_rank(512, 8, (8, 8, 8), (2, 2, 2), rank=1)
        sampled = tt_reconstruct(sampled_gaussian_cores(shape, rng=0), shape).ravel()
        plain = tt_reconstruct(gaussian_cores(shape, rng=0), shape).ravel()
        sigma = np.sqrt(1.0 / (3 * shape.num_rows))
        frac_small = lambda x: np.mean(np.abs(x) < 0.3 * sigma)
        assert frac_small(sampled) < frac_small(plain) / 2

    def test_zero_cutoff_is_plain_gaussian_scale(self, shape):
        cores = sampled_gaussian_cores(shape, cutoff=0.0, rng=0)
        assert all(np.isfinite(c).all() for c in cores)

    def test_negative_cutoff_rejected(self, shape):
        with pytest.raises(ValueError):
            sampled_gaussian_cores(shape, cutoff=-1.0, rng=0)

    def test_custom_target_variance(self, shape):
        from repro.tt.decomposition import tt_reconstruct

        cores = sampled_gaussian_cores(shape, target_variance=0.25, rng=0)
        table = tt_reconstruct(cores, shape)
        assert table.var() == pytest.approx(0.25, rel=0.5)

    def test_deterministic_given_seed(self, shape):
        a = sampled_gaussian_cores(shape, rng=42)
        b = sampled_gaussian_cores(shape, rng=42)
        for x, y in zip(a, b):
            np.testing.assert_array_equal(x, y)


class TestStrategyRegistry:
    def test_all_strategies_produce_valid_cores(self, shape):
        for name in CORE_INIT_STRATEGIES:
            init = tt_core_initializer(name)
            cores = init(shape, rng=0)
            for k, c in enumerate(cores):
                assert c.shape == shape.core_shape(k)

    def test_unknown_strategy(self):
        with pytest.raises(ValueError, match="unknown init strategy"):
            tt_core_initializer("xavier_magic")

    def test_uniform_cores_bounded(self, shape):
        cores = uniform_cores(shape, rng=0)
        for c in cores:
            assert np.abs(c).max() <= np.abs(c).max()  # finite
            assert np.isfinite(c).all()
