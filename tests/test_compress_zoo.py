"""Property suite for the compression zoo and the byte-budget planner."""

import json

import numpy as np
import pytest

from repro.analysis.static.sanitizer import NumericSanitizer
from repro.baselines.lowrank import LowRankEmbeddingBag
from repro.compress import (
    ALPTEmbeddingBag,
    BudgetPlan,
    BudgetPlanner,
    DPQEmbeddingBag,
    EmbeddingSpec,
    TableStats,
    load_budget_plan,
    make_embedding,
    predict_memory_bytes,
    registered_kinds,
)
from repro.models.ttrec import build_from_plan
from repro.utils.dtypes import dtype_policy

ROWS, DIM = 300, 8

# One representative spec per registered kind, small enough to be fast.
SPECS = {
    "dense": {},
    "tt": {"rank": 4},
    "cached_tt": {"rank": 4, "cache_size": 8},
    "tr": {"rank": 2},
    "hash": {"num_buckets": 32},
    "lowrank": {"rank": 2},
    "quant": {"bits": 4},
    "dpq": {"num_subspaces": 4, "codebook_size": 16},
    "alpt": {"bits": 8},
}


def spec_for(kind, mode="sum", seed=0):
    return EmbeddingSpec(kind=kind, num_rows=ROWS, dim=DIM, mode=mode,
                         seed=seed, params=dict(SPECS[kind]))


def batch(rng, n=40, bags=5):
    indices = rng.integers(0, ROWS, size=n).astype(np.int64)
    cuts = np.sort(rng.integers(0, n, size=bags - 1))
    offsets = np.concatenate([[0], cuts, [n]]).astype(np.int64)
    return indices, offsets


def test_every_kind_registered():
    assert set(SPECS) == set(registered_kinds())
    assert len(registered_kinds()) >= 7


@pytest.mark.parametrize("kind", sorted(SPECS))
@pytest.mark.parametrize("mode", ["sum", "mean"])
def test_forward_matches_lookup(kind, mode):
    emb = make_embedding(spec_for(kind, mode=mode))
    rng = np.random.default_rng(1)
    indices, offsets = batch(rng)
    out = emb.forward(indices, offsets)
    rows = emb.lookup(indices)
    expected = np.zeros((len(offsets) - 1, DIM), dtype=rows.dtype)
    for b in range(len(offsets) - 1):
        seg = rows[offsets[b]:offsets[b + 1]]
        if seg.shape[0]:
            expected[b] = seg.sum(axis=0)
            if mode == "mean":
                expected[b] /= seg.shape[0]
    np.testing.assert_allclose(out, expected, rtol=1e-12, atol=1e-12)


@pytest.mark.parametrize("kind", sorted(SPECS))
def test_weighted_forward_matches_lookup(kind):
    emb = make_embedding(spec_for(kind))
    rng = np.random.default_rng(2)
    indices, offsets = batch(rng)
    w = rng.uniform(0.5, 2.0, size=indices.size)
    out = emb.forward(indices, offsets, per_sample_weights=w)
    rows = emb.lookup(indices) * w[:, None]
    expected = np.add.reduceat(rows, offsets[:-1], axis=0)
    # reduceat misbehaves on empty segments; fix them up explicitly.
    for b in range(len(offsets) - 1):
        if offsets[b] == offsets[b + 1]:
            expected[b] = 0.0
    np.testing.assert_allclose(out, expected, rtol=1e-12, atol=1e-12)


@pytest.mark.parametrize("kind", sorted(SPECS))
def test_memory_bytes_matches_actual_nbytes(kind):
    spec = spec_for(kind)
    emb = make_embedding(spec)
    actual = sum(p.data.nbytes for p in emb.parameters())
    actual += sum(a.nbytes for a in emb._extra_arrays())
    assert emb.memory_bytes() == actual
    assert predict_memory_bytes(spec) == emb.memory_bytes()
    assert emb.compression_ratio() == pytest.approx(
        emb.dense_bytes() / emb.memory_bytes())


@pytest.mark.parametrize("kind", sorted(SPECS))
def test_sanitizer_wrapping_passes(kind):
    emb = make_embedding(spec_for(kind))
    rng = np.random.default_rng(3)
    indices, offsets = batch(rng)
    with NumericSanitizer(emb, name=kind):
        out = emb.forward(indices, offsets)
        assert np.isfinite(out).all()
        if emb.supports_gradient:
            emb.backward(np.ones_like(out))


@pytest.mark.parametrize("kind", sorted(SPECS))
def test_state_dict_roundtrip_bit_exact(kind):
    emb = make_embedding(spec_for(kind, seed=0))
    state = emb.state_dict()
    other = make_embedding(spec_for(kind, seed=7))  # different init
    other.load_state_dict(state)
    for key, val in other.state_dict().items():
        assert np.array_equal(val, state[key]), key
    rng = np.random.default_rng(4)
    indices, offsets = batch(rng)
    np.testing.assert_array_equal(other.forward(indices, offsets),
                                  emb.forward(indices, offsets))


def test_load_state_dict_rejects_bad_keys():
    emb = make_embedding(spec_for("lowrank"))
    state = emb.state_dict()
    key = next(iter(state))
    with pytest.raises(KeyError, match="missing"):
        emb.load_state_dict({k: v for k, v in state.items() if k != key})
    with pytest.raises(KeyError, match="unexpected"):
        emb.load_state_dict({**state, "9999:bogus": state[key]})
    with pytest.raises(ValueError, match="shape"):
        emb.load_state_dict({**state, key: state[key][:-1]})


@pytest.mark.parametrize("kind", sorted(SPECS))
def test_double_backward_contract(kind):
    emb = make_embedding(spec_for(kind))
    rng = np.random.default_rng(5)
    indices, offsets = batch(rng)
    grad = np.ones((len(offsets) - 1, DIM))
    if not emb.supports_gradient:
        emb.forward(indices, offsets)
        with pytest.raises(NotImplementedError):
            emb.backward(grad)
        return
    with pytest.raises(RuntimeError, match="before forward"):
        emb.backward(grad)
    emb.forward(indices, offsets)
    emb.backward(grad)
    with pytest.raises(RuntimeError, match="twice"):
        emb.backward(grad)
    # a fresh forward re-arms backward
    emb.forward(indices, offsets)
    emb.backward(grad)


@pytest.mark.parametrize("kind", sorted(SPECS))
def test_float32_policy_end_to_end(kind):
    with dtype_policy(np.float32):
        emb = make_embedding(spec_for(kind))
        rng = np.random.default_rng(6)
        indices, offsets = batch(rng)
        out = emb.forward(indices, offsets)
        assert out.dtype == np.float32
        assert emb.lookup(indices).dtype == np.float32
        if emb.supports_gradient:
            emb.backward(np.ones_like(out))
            for p in emb.parameters():
                assert p.grad.dtype == np.float32, p.name


def test_factory_rejects_unknown_kind_and_params():
    with pytest.raises(ValueError, match="unknown compressor kind"):
        make_embedding(EmbeddingSpec(kind="nope", num_rows=10, dim=4))
    with pytest.raises(ValueError, match="unknown params"):
        make_embedding(EmbeddingSpec(kind="tt", num_rows=10, dim=4,
                                     params={"rnak": 4}))


# ---------------------------------------------------------------------- #
# New zoo members
# ---------------------------------------------------------------------- #


def test_dpq_from_dense_beats_random_codes():
    rng = np.random.default_rng(0)
    table = rng.normal(size=(ROWS, DIM))
    random = make_embedding(spec_for("dpq"))
    mse_random = float(((random.lookup(np.arange(ROWS)) - table) ** 2).mean())
    fitted = DPQEmbeddingBag.from_dense(table, num_subspaces=4,
                                        codebook_size=16, iters=5)
    mse_fit = float(((fitted.lookup(np.arange(ROWS)) - table) ** 2).mean())
    assert mse_fit < mse_random


def test_dpq_gradient_reaches_selected_entries():
    emb = make_embedding(spec_for("dpq"))
    indices = np.array([3, 3, 7], dtype=np.int64)
    out = emb.forward(indices, np.array([0, 3], dtype=np.int64))
    emb.backward(np.ones_like(out))
    touched = emb._global_codes(indices).ravel()
    grads = emb.codebooks.grad
    assert np.abs(grads[np.unique(touched)]).sum() > 0
    untouched = np.setdiff1d(np.arange(grads.shape[0]), touched)
    assert np.abs(grads[untouched]).sum() == 0


def test_alpt_trains_scales_and_codes():
    emb = make_embedding(spec_for("alpt"))
    before = emb.codes.copy()
    indices = np.arange(0, 50, dtype=np.int64)
    out = emb.forward(indices, np.arange(51, dtype=np.int64))
    emb.backward(np.full_like(out, 5.0))
    assert np.abs(emb.scales.grad[:50]).sum() > 0
    assert np.abs(emb.scales.grad[50:]).sum() == 0
    assert (emb.codes[:50] != before[:50]).any()       # codes moved
    np.testing.assert_array_equal(emb.codes[50:], before[50:])
    assert np.abs(emb.codes.astype(np.int64)).max() <= emb.qmax


def test_alpt_frozen_codes_when_lr_zero():
    spec = EmbeddingSpec(kind="alpt", num_rows=ROWS, dim=DIM,
                         params={"bits": 8, "weight_lr": 0.0})
    emb = make_embedding(spec)
    before = emb.codes.copy()
    out = emb.forward(np.arange(20, dtype=np.int64))
    emb.backward(np.ones_like(out))
    np.testing.assert_array_equal(emb.codes, before)


# ---------------------------------------------------------------------- #
# Low-rank scatter regression (PR-5 kernel vs np.add.at)
# ---------------------------------------------------------------------- #


def _lowrank_grad_pair(grad_out, *, integer_factors=False):
    """factor_a grads from the new scatter path and the old np.add.at path."""
    rng = np.random.default_rng(11)
    emb = LowRankEmbeddingBag(ROWS, DIM, rank=3, rng=0)
    if integer_factors:
        emb.factor_b.data[...] = np.random.default_rng(14).integers(
            -3, 4, size=emb.factor_b.data.shape)
    indices = rng.integers(0, ROWS, size=60).astype(np.int64)
    # duplicate-heavy stream to stress the combining path
    indices[::3] = indices[0]
    offsets = np.array([0, 20, 20, 45, 60], dtype=np.int64)
    emb.forward(indices, offsets)
    emb.backward(grad_out)

    # Reference: the pre-PR np.add.at accumulation of the same math.
    grad_pooled = grad_out @ emb.factor_b.data.T
    counts = np.diff(offsets)
    bag_ids = np.repeat(np.arange(len(counts)), counts)
    expected = np.zeros_like(emb.factor_a.data)
    np.add.at(expected, indices, grad_pooled[bag_ids])
    return emb.factor_a.grad, expected


def test_lowrank_backward_bitexact_vs_add_at():
    # Integer-valued gradients and factors make every summand exactly
    # representable, so float addition is exact in any order — any semantic
    # drift in index/weight handling between scatter_add_rows and np.add.at
    # shows up bit-for-bit.
    rng = np.random.default_rng(12)
    grad_out = rng.integers(-8, 9, size=(4, DIM)).astype(np.float64)
    actual, expected = _lowrank_grad_pair(grad_out, integer_factors=True)
    np.testing.assert_array_equal(actual, expected)


def test_lowrank_backward_matches_add_at_random_floats():
    # With arbitrary floats the two paths may differ by summation order
    # only — bound it at a few ULPs.
    rng = np.random.default_rng(13)
    actual, expected = _lowrank_grad_pair(rng.normal(size=(4, DIM)))
    np.testing.assert_allclose(actual, expected, rtol=1e-14, atol=1e-14)


# ---------------------------------------------------------------------- #
# Budget planner
# ---------------------------------------------------------------------- #


def random_tables(seed, n=6):
    rng = np.random.default_rng(seed)
    return [
        TableStats(num_rows=int(rng.integers(100, 50_000)),
                   dim=int(rng.choice([8, 16])),
                   zipf_s=float(rng.uniform(0.6, 1.3)),
                   traffic=float(rng.uniform(0.1, 4.0)),
                   name=f"t{i}")
        for i in range(n)
    ]


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_planner_never_exceeds_budget(seed):
    tables = random_tables(seed)
    planner = BudgetPlanner(tables, seed=seed)
    dense_total = sum(t.dense_bytes() for t in tables)
    floor = sum(min(c.bytes for c in planner._candidates(i, t))
                for i, t in enumerate(tables))
    for frac in (0.05, 0.2, 0.6, 1.0):
        budget = max(int(dense_total * frac), floor)
        plan = planner.plan(budget)
        assert plan.total_bytes() <= budget
        assert len(plan.tables) == len(tables)
        assert [t.index for t in plan.tables] == list(range(len(tables)))


def test_planner_picks_dense_when_budget_allows():
    tables = random_tables(3)
    planner = BudgetPlanner(tables, seed=3)
    dense_total = sum(t.dense_bytes() for t in tables)
    plan = planner.plan(dense_total)
    assert plan.kinds() == ["dense"] * len(tables)
    assert plan.total_bytes() == dense_total


def test_planner_infeasible_budget_raises():
    planner = BudgetPlanner([TableStats(num_rows=10_000, dim=16)])
    with pytest.raises(ValueError, match="below the cheapest"):
        planner.plan(16)


def test_planner_respects_min_compress_rows():
    tables = [TableStats(num_rows=500, dim=8), TableStats(num_rows=50_000, dim=8)]
    planner = BudgetPlanner(tables, min_compress_rows=1_000)
    dense_total = sum(t.dense_bytes() for t in tables)
    plan = planner.plan(int(dense_total * 0.2))
    assert plan.tables[0].spec.kind == "dense"
    assert plan.tables[1].spec.kind != "dense"


def test_planner_measured_tiebreak_prefers_better_rank():
    class Point:  # duck-typed DesignPoint
        def __init__(self, rank, accuracy):
            self.rank, self.accuracy = rank, accuracy

    tables = [TableStats(num_rows=30_000, dim=16)]
    measured = [Point(2, 0.20), Point(32, 0.79)]
    planner = BudgetPlanner(tables, measured=measured)
    ladder = planner._candidates(0, tables[0])
    by_rank = {c.spec.get("rank"): c.quality
               for c in ladder if c.spec.kind == "tt"}
    # rank 2 quality is crushed by its measured accuracy; rank 32 is not.
    assert by_rank[2] < by_rank[32]


def test_plan_json_roundtrip_and_schema(tmp_path):
    tables = random_tables(4)
    plan = BudgetPlanner(tables, seed=4).plan(
        int(sum(t.dense_bytes() for t in tables) * 0.3))
    path = tmp_path / "plan.json"
    plan.to_json(path)
    doc = json.loads(path.read_text())
    assert doc["schema"] == "repro.budget_plan/v1"
    loaded = load_budget_plan(path)
    assert loaded.to_doc() == plan.to_doc()

    doc["schema"] = "repro.bench/v1"
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps(doc))
    with pytest.raises(ValueError, match="expected schema"):
        load_budget_plan(bad)

    doc = plan.to_doc()
    doc["budget_bytes"] = 1
    with pytest.raises(ValueError, match="over budget"):
        BudgetPlan.from_doc(doc)


def test_build_from_plan_serves_forward():
    tables = [TableStats(num_rows=n, dim=16) for n in (5_000, 800, 60)]
    plan = BudgetPlanner(tables, seed=0).plan(
        int(sum(t.dense_bytes() for t in tables) * 0.3))
    model = build_from_plan(plan, rng=0)
    rng = np.random.default_rng(0)
    dense = rng.normal(size=(4, model.config.num_dense))
    sparse = []
    for t in tables:
        idx = rng.integers(0, t.num_rows, size=8).astype(np.int64)
        sparse.append((idx, np.array([0, 2, 4, 6, 8], dtype=np.int64)))
    logits = model.forward(dense, sparse)
    assert logits.shape == (4,)
    assert np.isfinite(logits).all()


def test_build_from_plan_rejects_mixed_dims():
    tables = [TableStats(num_rows=1_000, dim=8),
              TableStats(num_rows=1_000, dim=16)]
    plan = BudgetPlanner(tables).plan(10**9)
    with pytest.raises(ValueError, match="mixes embedding dims"):
        build_from_plan(plan)
