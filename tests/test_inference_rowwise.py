"""Tests for the inference Predictor, candidate ranking and RowWiseAdagrad."""

import numpy as np
import pytest

from repro.baselines import QuantizedEmbeddingBag
from repro.data import KAGGLE, SyntheticCTRDataset
from repro.inference import Predictor, rank_candidates
from repro.models import DLRMConfig, TTConfig, build_dlrm, build_ttrec
from repro.ops.module import Parameter
from repro.ops.optim import Adagrad, RowWiseAdagrad
from repro.training import Trainer

SPEC = KAGGLE.scaled(0.0002)
CFG = DLRMConfig(table_sizes=SPEC.table_sizes, emb_dim=8,
                 bottom_mlp=(16,), top_mlp=(16,))


@pytest.fixture(scope="module")
def trained():
    model = build_ttrec(CFG, num_tt_tables=3, tt=TTConfig(rank=4),
                        min_rows=60, rng=0)
    ds = SyntheticCTRDataset(SPEC, seed=0, noise=0.7)
    Trainer(model, lr=0.1).train(ds.batches(64, 40))
    return model, ds


class TestPredictor:
    def test_matches_model_forward(self, trained):
        model, ds = trained
        pred = Predictor(model)
        batch = ds.batch(16)
        np.testing.assert_allclose(
            pred.predict_batch(batch),
            model.predict_proba(batch.dense, batch.sparse),
            atol=1e-12,
        )

    def test_probabilities_in_range(self, trained):
        model, ds = trained
        probs = Predictor(model).predict_batch(ds.batch(64))
        assert np.all((probs > 0) & (probs < 1))

    def test_quantized_serving_smaller_and_close(self, trained):
        model, ds = trained
        fp = Predictor(model)
        q = Predictor(model, quantize_dense_bits=8)
        assert q.serving_parameters() < fp.serving_parameters()
        batch = ds.batch(128)
        drift = np.abs(fp.predict_batch(batch) - q.predict_batch(batch)).max()
        assert drift < 0.05  # int8 dequantization error is tiny

    def test_quantization_leaves_original_model_intact(self, trained):
        model, _ = trained
        Predictor(model, quantize_dense_bits=4)
        assert not any(isinstance(e, QuantizedEmbeddingBag)
                       for e in model.embeddings)

    def test_tt_tables_not_quantized(self, trained):
        model, _ = trained
        q = Predictor(model, quantize_dense_bits=4)
        from repro.tt import TTEmbeddingBag

        kinds = [type(e) for e in q._embeddings]
        assert TTEmbeddingBag in kinds
        assert QuantizedEmbeddingBag in kinds


class TestRankCandidates:
    def test_topk_sorted_and_within_candidates(self, trained):
        model, _ = trained
        pred = Predictor(model)
        rng = np.random.default_rng(0)
        user_sparse = [int(rng.integers(0, s)) for s in CFG.table_sizes]
        table = SPEC.largest(1)[0]
        cands = rng.choice(CFG.table_sizes[table], size=50, replace=False)
        ids, probs = rank_candidates(
            pred, user_dense=rng.normal(size=13), user_sparse=user_sparse,
            candidate_table=table, candidate_ids=cands, top_k=5,
        )
        assert ids.shape == (5,)
        assert set(ids) <= set(cands)
        assert list(probs) == sorted(probs, reverse=True)

    def test_topk_matches_full_scoring(self, trained):
        model, _ = trained
        pred = Predictor(model)
        rng = np.random.default_rng(1)
        user_sparse = [int(rng.integers(0, s)) for s in CFG.table_sizes]
        table = SPEC.largest(1)[0]
        cands = np.arange(30)
        ids, probs = rank_candidates(
            pred, user_dense=np.zeros(13), user_sparse=user_sparse,
            candidate_table=table, candidate_ids=cands, top_k=30,
        )
        assert ids.shape == (30,)
        assert probs[0] == probs.max()

    def test_none_means_empty_bag(self, trained):
        model, _ = trained
        pred = Predictor(model)
        user_sparse = [None] * CFG.num_tables
        ids, probs = rank_candidates(
            pred, user_dense=np.zeros(13), user_sparse=user_sparse,
            candidate_table=0, candidate_ids=np.arange(3), top_k=2,
        )
        assert ids.shape == (2,)

    def test_validation(self, trained):
        model, _ = trained
        pred = Predictor(model)
        with pytest.raises(ValueError):
            rank_candidates(pred, user_dense=np.zeros(13),
                            user_sparse=[0] * CFG.num_tables,
                            candidate_table=0,
                            candidate_ids=np.array([], dtype=np.int64))
        with pytest.raises(ValueError):
            rank_candidates(pred, user_dense=np.zeros(13),
                            user_sparse=[0] * 3, candidate_table=0,
                            candidate_ids=np.arange(3))
        with pytest.raises(ValueError):
            rank_candidates(pred, user_dense=np.zeros(13),
                            user_sparse=[0] * CFG.num_tables,
                            candidate_table=99, candidate_ids=np.arange(3))

    def test_out_of_range_candidate_ids_raise(self, trained):
        model, _ = trained
        pred = Predictor(model)
        with pytest.raises(IndexError):
            rank_candidates(pred, user_dense=np.zeros(13),
                            user_sparse=[0] * CFG.num_tables,
                            candidate_table=0,
                            candidate_ids=np.array([0, CFG.table_sizes[0]]))
        with pytest.raises(IndexError):
            rank_candidates(pred, user_dense=np.zeros(13),
                            user_sparse=[0] * CFG.num_tables,
                            candidate_table=0,
                            candidate_ids=np.array([-1]))

    def test_float_candidate_ids_rejected_not_truncated(self, trained):
        """Float ids used to be silently truncated to int; now they error."""
        model, _ = trained
        pred = Predictor(model)
        with pytest.raises(TypeError):
            rank_candidates(pred, user_dense=np.zeros(13),
                            user_sparse=[0] * CFG.num_tables,
                            candidate_table=0,
                            candidate_ids=np.array([0.5, 1.7]))

    def test_out_of_range_user_sparse_raises(self, trained):
        model, _ = trained
        pred = Predictor(model)
        user_sparse = [0] * CFG.num_tables
        t = 1 if 1 != SPEC.largest(1)[0] else 2
        user_sparse[t] = CFG.table_sizes[t]  # one past the end
        with pytest.raises(IndexError):
            rank_candidates(pred, user_dense=np.zeros(13),
                            user_sparse=user_sparse,
                            candidate_table=SPEC.largest(1)[0],
                            candidate_ids=np.arange(3))

    def test_wrong_dense_width_raises(self, trained):
        model, _ = trained
        pred = Predictor(model)
        with pytest.raises(ValueError):
            rank_candidates(pred, user_dense=np.zeros(5),
                            user_sparse=[0] * CFG.num_tables,
                            candidate_table=0, candidate_ids=np.arange(3))


class TestQuantizationReport:
    def test_every_table_reported(self, trained):
        model, _ = trained
        pred = Predictor(model, quantize_dense_bits=8)
        assert len(pred.quantization_report) == CFG.num_tables
        actions = {a for _, _, a in pred.quantization_report}
        assert "quantized@8b" in actions
        assert "tt-kept" in actions

    def test_hashed_table_warns_and_is_kept(self, trained):
        from repro.baselines import HashedEmbeddingBag

        model, _ = trained
        t = SPEC.largest(1)[0]
        original = model.embeddings[t]
        model.embeddings[t] = HashedEmbeddingBag(
            CFG.table_sizes[t], CFG.emb_dim, max(2, CFG.table_sizes[t] // 4),
            rng=0,
        )
        try:
            with pytest.warns(RuntimeWarning, match="bucket table"):
                pred = Predictor(model, quantize_dense_bits=8)
        finally:
            model.embeddings[t] = original
        report = dict((tab, action)
                      for tab, _, action in pred.quantization_report)
        assert report[t] == "skipped"
        assert isinstance(pred.embeddings[t], HashedEmbeddingBag)

    def test_unknown_operator_warns_and_is_kept(self, trained):
        from repro.baselines import LowRankEmbeddingBag

        model, _ = trained
        t = SPEC.largest(1)[0]
        original = model.embeddings[t]
        model.embeddings[t] = LowRankEmbeddingBag(
            CFG.table_sizes[t], CFG.emb_dim, rank=2, rng=0
        )
        try:
            with pytest.warns(RuntimeWarning, match="no quantization rule"):
                pred = Predictor(model, quantize_dense_bits=8)
        finally:
            model.embeddings[t] = original
        report = dict((tab, action)
                      for tab, _, action in pred.quantization_report)
        assert report[t] == "skipped"

    def test_double_quantization_reported(self, trained):
        model, _ = trained
        pred8 = Predictor(model, quantize_dense_bits=8)

        class _Frozen:  # minimal DLRM-shaped shell around quantized tables
            config = model.config
            embeddings = pred8.embeddings
            bottom_mlp = model.bottom_mlp
            top_mlp = model.top_mlp
            interaction = model.interaction

        pred = Predictor(_Frozen(), quantize_dense_bits=4)
        actions = {a for _, _, a in pred.quantization_report}
        assert "already-quantized" in actions
        assert "quantized@4b" not in actions


class TestRowWiseAdagrad:
    def test_one_accumulator_per_row(self):
        p = Parameter(np.zeros((10, 4)), sparse=True)
        opt = RowWiseAdagrad([p], lr=0.1)
        assert opt._accum[id(p)].shape == (10,)

    def test_touched_rows_only(self):
        p = Parameter(np.ones((5, 2)), sparse=True)
        p.grad[:] = 1.0
        p.record_touched(np.array([1, 3]))
        RowWiseAdagrad([p], lr=0.1).step()
        np.testing.assert_allclose(p.data[0], 1.0)
        assert (p.data[1] != 1.0).all()
        assert (p.data[3] != 1.0).all()

    def test_first_step_magnitude(self):
        """With uniform row gradient g, first update is -lr * g/|g| = -lr."""
        p = Parameter(np.zeros((2, 3)), sparse=True)
        p.grad[:] = 2.0
        p.record_touched(np.array([0, 1]))
        RowWiseAdagrad([p], lr=0.1).step()
        np.testing.assert_allclose(p.data, -0.1, atol=1e-8)

    def test_row_mean_normalisation_differs_from_elementwise(self):
        """A row with one large and one small grad element: row-wise uses a
        shared denominator, element-wise normalises each element."""
        p1 = Parameter(np.zeros((1, 2)), sparse=True)
        p2 = Parameter(np.zeros((1, 2)), sparse=True)
        for p in (p1, p2):
            p.grad[:] = [[3.0, 1.0]]
            p.record_touched(np.array([0]))
        RowWiseAdagrad([p1], lr=0.1).step()
        Adagrad([p2], lr=0.1).step()
        # element-wise: both elements move ~ -0.1; row-wise keeps the 3:1 ratio
        ratio_rowwise = p1.data[0, 0] / p1.data[0, 1]
        assert ratio_rowwise == pytest.approx(3.0)
        assert p2.data[0, 0] == pytest.approx(p2.data[0, 1], rel=1e-6)

    def test_dense_fallback(self):
        p = Parameter(np.zeros(4), sparse=False)
        p.grad[:] = 1.0
        RowWiseAdagrad([p], lr=0.1).step()
        np.testing.assert_allclose(p.data, -0.1, atol=1e-8)

    def test_trains_dlrm(self):
        model = build_dlrm(CFG, rng=0)
        opt = RowWiseAdagrad(model.parameters(), lr=0.05)
        trainer = Trainer(model, optimizer=opt)
        ds = SyntheticCTRDataset(SPEC, seed=0, noise=0.7)
        res = trainer.train(ds.batches(64, 60))
        assert np.mean(res.losses[-10:]) < np.mean(res.losses[:10])

    def test_validation(self):
        with pytest.raises(ValueError):
            RowWiseAdagrad([Parameter(np.zeros(2))], lr=0.0)
