"""Tests for dataset specs and the Zipf sampler."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import KAGGLE, PAPER_KAGGLE_TT_SHAPES, TERABYTE, DatasetSpec, ZipfSampler


class TestSpecs:
    def test_kaggle_layout(self):
        assert KAGGLE.num_tables == 26
        assert KAGGLE.num_dense == 13
        assert KAGGLE.emb_dim == 16

    def test_kaggle_seven_largest_match_paper_table2(self):
        sizes = [KAGGLE.table_sizes[i] for i in KAGGLE.largest(7)]
        assert sorted(sizes, reverse=True) == [
            10131227, 8351593, 7046547, 5461306, 2202608, 286181, 142572
        ]

    def test_kaggle_total_size_matches_paper(self):
        """Paper: Kaggle embedding tables total 2.16 GB (decimal GB)."""
        gb = KAGGLE.embedding_bytes() / 1e9
        assert gb == pytest.approx(2.16, abs=0.01)

    def test_seven_largest_are_99_percent(self):
        """Paper §6.1: the 7 largest tables constitute 99% of the model."""
        top = sum(KAGGLE.table_sizes[i] for i in KAGGLE.largest(7))
        assert top / KAGGLE.total_rows() > 0.99

    def test_terabyte_layout(self):
        assert TERABYTE.num_tables == 26
        assert TERABYTE.total_rows() > 180_000_000

    def test_paper_shapes_cover_seven_tables(self):
        assert len(PAPER_KAGGLE_TT_SHAPES) == 7
        for rows, (m, n) in PAPER_KAGGLE_TT_SHAPES.items():
            assert np.prod(m) >= rows
            assert np.prod(n) == 16

    def test_scaled_preserves_ordering(self):
        small = KAGGLE.scaled(0.001)
        assert small.largest(7) == KAGGLE.largest(7)
        assert min(small.table_sizes) >= 4

    def test_scaled_validation(self):
        with pytest.raises(ValueError):
            KAGGLE.scaled(0.0)

    def test_spec_rejects_bad_sizes(self):
        with pytest.raises(ValueError):
            DatasetSpec(name="x", table_sizes=(0, 5))


class TestZipfSampler:
    def test_bounds(self):
        z = ZipfSampler(100, 1.1, rng=0)
        s = z.sample(10_000)
        assert s.min() >= 0 and s.max() < 100

    def test_zero_exponent_is_uniform(self):
        z = ZipfSampler(50, 0.0, rng=0)
        s = z.sample(100_000)
        counts = np.bincount(s, minlength=50)
        assert counts.max() / counts.min() < 1.3

    def test_skew_increases_with_exponent(self):
        top_mass = []
        for s_exp in (0.5, 1.0, 1.5):
            z = ZipfSampler(1000, s_exp, rng=0)
            top_mass.append(z.top_k_mass(10))
        assert top_mass[0] < top_mass[1] < top_mass[2]

    def test_empirical_matches_pmf(self):
        z = ZipfSampler(20, 1.0, rng=0)
        s = z.sample(200_000)
        emp = np.bincount(s, minlength=20) / s.size
        np.testing.assert_allclose(emp, z.pmf(), atol=0.01)

    def test_hottest_have_highest_pmf(self):
        z = ZipfSampler(100, 1.2, rng=3)
        pmf = z.pmf()
        hot = z.hottest(5)
        assert set(hot) == set(np.argsort(-pmf)[:5])

    def test_top_k_mass_monotone_and_complete(self):
        z = ZipfSampler(100, 1.05, rng=0)
        masses = [z.top_k_mass(k) for k in (0, 1, 10, 100)]
        assert masses[0] == 0.0
        assert masses[-1] == pytest.approx(1.0)
        assert all(a < b for a, b in zip(masses, masses[1:]))

    def test_rank_for_mass_inverse(self):
        z = ZipfSampler(1000, 1.1, rng=0)
        k = z.rank_for_mass(0.5)
        assert z.top_k_mass(k) >= 0.5
        assert z.top_k_mass(k - 1) < 0.5

    def test_permute_false_orders_by_id(self):
        z = ZipfSampler(10, 1.0, permute=False, rng=0)
        np.testing.assert_array_equal(z.hottest(3), [0, 1, 2])

    def test_sample_zero(self):
        assert ZipfSampler(10, rng=0).sample(0).size == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            ZipfSampler(0)
        with pytest.raises(ValueError):
            ZipfSampler(10, -1.0)
        z = ZipfSampler(10, rng=0)
        with pytest.raises(ValueError):
            z.sample(-1)
        with pytest.raises(ValueError):
            z.rank_for_mass(1.5)

    @given(st.integers(min_value=1, max_value=500),
           st.floats(min_value=0.0, max_value=2.0, allow_nan=False))
    @settings(max_examples=40, deadline=None)
    def test_property_pmf_normalised(self, n, s):
        z = ZipfSampler(n, s, rng=0)
        assert z.pmf().sum() == pytest.approx(1.0)
        assert z.pmf().min() >= 0
