"""Property-based tests for the cached embedding and CSR machinery.

The central invariant: *whatever* the cache state, CachedTTEmbeddingBag's
output equals manually combining cache rows (for hits) and TT rows (for
misses) — the cache may change performance, never semantics, except for
the deliberate divergence after dense updates to cached rows.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache import CachedTTEmbeddingBag
from repro.data.batching import make_offsets
from repro.ops.embedding import segment_sum
from repro.tt import TTShape

SHAPE = TTShape.with_uniform_rank(60, 8, (3, 4, 5), (2, 2, 2), rank=3)
seeds = st.integers(min_value=0, max_value=2 ** 31)


def warmed_embedding(seed: int, cache_size: int) -> CachedTTEmbeddingBag:
    emb = CachedTTEmbeddingBag(
        60, 8, shape=SHAPE, cache_size=cache_size, warmup_steps=0,
        refresh_interval=None, rng=seed,
    )
    rng = np.random.default_rng(seed)
    emb.tracker.record(rng.integers(0, 60, size=200))
    emb.populate()
    return emb


class TestCacheTransparency:
    @given(seeds, st.integers(min_value=1, max_value=30))
    @settings(max_examples=30, deadline=None)
    def test_forward_equals_manual_combination(self, seed, cache_size):
        emb = warmed_embedding(seed, cache_size)
        rng = np.random.default_rng(seed + 1)
        n = int(rng.integers(1, 40))
        indices = rng.integers(0, 60, size=n)
        counts = rng.integers(0, 4, size=5)
        counts[0] += n - counts.sum() if counts.sum() <= n else 0
        # normalise counts to sum exactly n
        while counts.sum() > n:
            counts[np.argmax(counts)] -= 1
        counts[-1] += n - counts.sum()
        offsets = make_offsets(counts)

        out = emb.forward(indices, offsets)

        # manual: lookup each index through cache-or-TT, then pool
        rows = emb.lookup(indices)
        expected = segment_sum(rows, offsets)
        np.testing.assert_allclose(out, expected, atol=1e-10)

    @given(seeds)
    @settings(max_examples=20, deadline=None)
    def test_fresh_cache_matches_pure_tt(self, seed):
        """Right after population (no dense updates yet) the cache serves
        exactly what the TT cores would produce."""
        emb = warmed_embedding(seed, cache_size=10)
        idx = np.arange(60)
        np.testing.assert_allclose(emb.lookup(idx), emb.tt.lookup(idx),
                                   atol=1e-10)

    @given(seeds)
    @settings(max_examples=20, deadline=None)
    def test_membership_partition_is_exact(self, seed):
        emb = warmed_embedding(seed, cache_size=12)
        idx = np.random.default_rng(seed).integers(0, 60, size=50)
        mask, slots = emb._membership(idx)
        cached_ids = set(emb._cached_ids.tolist())
        for i, row in enumerate(idx):
            assert mask[i] == (int(row) in cached_ids)
        # slots map back to the right rows
        hit_rows = idx[mask]
        np.testing.assert_array_equal(emb._cached_ids[
            np.searchsorted(emb._cached_ids, hit_rows)], hit_rows)

    @given(seeds, st.floats(min_value=0.1, max_value=2.0))
    @settings(max_examples=15, deadline=None)
    def test_gradient_split_is_exhaustive(self, seed, scale):
        """Every lookup's gradient lands in exactly one place: the cache
        rows for hits, the TT cores for misses — and their total matches
        the number of lookups (for unit upstream gradients)."""
        emb = warmed_embedding(seed, cache_size=8)
        rng = np.random.default_rng(seed)
        idx = rng.integers(0, 60, size=20)
        emb.zero_grad()
        out = emb.forward(idx)
        emb.backward(np.full_like(out, scale))
        mask, _ = emb._membership(idx)
        # cache grad rows touched == unique hit slots; TT grads nonzero iff misses
        if mask.any():
            assert emb.cache_rows.grad.any()
        if (~mask).any():
            assert any(p.grad.any() for p in emb.tt.cores)
        else:
            assert not any(p.grad.any() for p in emb.tt.cores)
