"""Chaos and property tests for the hardened serving runtime.

Covers the ISSUE-3 acceptance spec: faults injected at every ``serving.*``
site never produce a non-finite probability, the circuit breaker walks
its closed/open/half-open FSM per spec, shed requests are counted, and
random malformed offsets/indices never escape the admission layer.
"""

import numpy as np
import pytest

from repro.data import KAGGLE, SyntheticCTRDataset
from repro.inference import Predictor
from repro.models import DLRMConfig, TTConfig, build_ttrec
from repro.reliability import FaultInjector
from repro.serving import (
    CircuitBreaker,
    InferenceServer,
    ManualClock,
    MicroBatchQueue,
    Rejection,
    Request,
    RequestSanitizer,
    SanitizedRequest,
    ServerConfig,
    repair_offsets,
    run_load,
)
from repro.utils.validation import check_csr

SPEC = KAGGLE.scaled(0.0003)
CFG = DLRMConfig(table_sizes=SPEC.table_sizes, emb_dim=8,
                 bottom_mlp=(16,), top_mlp=(16,))


@pytest.fixture(autouse=True)
def _fresh_serving_metrics():
    """Serving counters live in the process-wide registry; zero them so
    each test reads only its own server's activity."""
    from repro.telemetry import get_registry

    get_registry().reset(prefix="serving.")
    yield
    get_registry().reset(prefix="serving.")


@pytest.fixture(scope="module")
def predictor():
    tt = TTConfig(rank=4, use_cache=True, warmup_steps=0,
                  refresh_interval=None, cache_fraction=0.05)
    model = build_ttrec(CFG, num_tt_tables=5, tt=tt, min_rows=50, rng=0)
    ds = SyntheticCTRDataset(SPEC, seed=0, noise=0.7)
    from repro.training import Trainer

    Trainer(model, lr=0.1).train(ds.batches(64, 10))
    return Predictor(model)


def make_request(rng, rid=0, deadline_ms=None):
    return Request(
        dense=rng.normal(size=CFG.num_dense),
        sparse=[rng.integers(0, s, size=2) for s in CFG.table_sizes],
        deadline_ms=deadline_ms, request_id=rid,
    )


# ---------------------------------------------------------------------- #
# Admission layer
# ---------------------------------------------------------------------- #

class TestRepairOffsets:
    def test_valid_pair_unchanged(self):
        idx = np.array([3, 1, 4, 1, 5], dtype=np.int64)
        off = np.array([0, 2, 2, 5], dtype=np.int64)
        i2, o2, repaired = repair_offsets(idx, off, num_bags=3)
        assert not repaired
        np.testing.assert_array_equal(o2, off)
        np.testing.assert_array_equal(i2, idx)

    @pytest.mark.parametrize("seed", range(20))
    def test_random_garbage_always_repairs_to_valid_csr(self, seed):
        """Property: whatever the client sends, the repaired pair passes
        the operator contract (check_csr) exactly."""
        rng = np.random.default_rng(seed)
        n = int(rng.integers(0, 12))
        num_bags = int(rng.integers(1, 6))
        indices = rng.integers(-3, 10, size=n)
        kind = rng.integers(0, 4)
        if kind == 0:   # wrong length
            offsets = rng.integers(-5, n + 5, size=int(rng.integers(1, 9)))
        elif kind == 1:  # non-monotone / out-of-range values
            offsets = rng.integers(-5, n + 5, size=num_bags + 1)
        elif kind == 2:  # float offsets with NaN/Inf
            offsets = rng.normal(scale=n + 1, size=num_bags + 1)
            offsets[int(rng.integers(0, num_bags + 1))] = np.nan
        else:            # plausible but endpoints broken
            offsets = np.linspace(1, n + 2, num_bags + 1)
        fixed_idx, fixed_off, _ = repair_offsets(indices, offsets, num_bags)
        assert fixed_off.shape == (num_bags + 1,)
        # Range errors in *indices* are the sanitizer's job, not the
        # offset repairer's: lift them out before the contract check.
        check_csr(np.zeros_like(fixed_idx), fixed_off, num_rows=1)

    def test_total_membership_preserved(self):
        idx = np.arange(7)
        _, off, _ = repair_offsets(idx, np.array([2, 9, -1]), num_bags=2)
        assert off[0] == 0 and off[-1] == 7


class TestRequestSanitizer:
    def test_clean_request_admitted_unchanged(self):
        san = RequestSanitizer(CFG, oov_policy="clamp")
        rng = np.random.default_rng(0)
        req = make_request(rng, rid=7)
        out = san.sanitize(req)
        assert isinstance(out, SanitizedRequest)
        assert out.request_id == 7 and out.repairs == ()
        for t, ids in enumerate(out.values):
            np.testing.assert_array_equal(ids, req.sparse[t])

    def test_nan_dense_rejected_and_counted(self):
        san = RequestSanitizer(CFG)
        before = san.stats()["rejected"]["dense_non_finite"]
        req = make_request(np.random.default_rng(1))
        req.dense[3] = np.inf
        out = san.sanitize(req)
        assert isinstance(out, Rejection) and out.reason == "dense_non_finite"
        assert san.stats()["rejected"]["dense_non_finite"] == before + 1

    def test_wrong_dense_shape_rejected(self):
        san = RequestSanitizer(CFG)
        req = make_request(np.random.default_rng(2))
        req.dense = np.zeros(CFG.num_dense + 2)
        assert san.sanitize(req).reason == "dense_shape"

    def test_wrong_table_count_rejected(self):
        san = RequestSanitizer(CFG)
        req = make_request(np.random.default_rng(3))
        req.sparse = req.sparse[:-1]
        assert san.sanitize(req).reason == "table_count"

    def test_oov_clamped(self):
        san = RequestSanitizer(CFG, oov_policy="clamp")
        req = make_request(np.random.default_rng(4))
        req.sparse[0] = np.array([-4, CFG.table_sizes[0] + 100])
        out = san.sanitize(req)
        assert "oov_clamped" in out.repairs
        np.testing.assert_array_equal(
            out.values[0], [0, CFG.table_sizes[0] - 1]
        )

    def test_oov_hashed_lands_in_range_deterministically(self):
        san = RequestSanitizer(CFG, oov_policy="hash")
        req = make_request(np.random.default_rng(5))
        bad = np.array([-4, CFG.table_sizes[0] + 100])
        req.sparse[0] = bad
        out1 = san.sanitize(req)
        out2 = san.sanitize(req)
        assert "oov_hashed" in out1.repairs
        assert (0 <= out1.values[0]).all()
        assert (out1.values[0] < CFG.table_sizes[0]).all()
        np.testing.assert_array_equal(out1.values[0], out2.values[0])

    def test_oov_reject_policy(self):
        san = RequestSanitizer(CFG, oov_policy="reject")
        req = make_request(np.random.default_rng(6))
        req.sparse[2] = np.array([CFG.table_sizes[2]])
        assert san.sanitize(req).reason == "oov"

    def test_fractional_ids_rejected(self):
        san = RequestSanitizer(CFG)
        req = make_request(np.random.default_rng(7))
        req.sparse[1] = np.array([0.5, 1.25])
        assert san.sanitize(req).reason == "ids_dtype"

    def test_none_and_scalar_entries(self):
        san = RequestSanitizer(CFG)
        req = make_request(np.random.default_rng(8))
        req.sparse[0] = None
        req.sparse[1] = 3
        out = san.sanitize(req)
        assert out.values[0].size == 0
        np.testing.assert_array_equal(out.values[1], [3])

    @pytest.mark.parametrize("seed", range(15))
    @pytest.mark.parametrize("policy", ["clamp", "hash"])
    def test_property_malformed_never_escapes(self, seed, policy):
        """Random garbage requests either get rejected or come out
        satisfying every model input invariant."""
        san = RequestSanitizer(CFG, oov_policy=policy)
        rng = np.random.default_rng(seed)
        req = make_request(rng)
        t = int(rng.integers(0, CFG.num_tables))
        kind = rng.integers(0, 4)
        if kind == 0:
            req.sparse[t] = rng.integers(-10**6, 10**6, size=5)
        elif kind == 1:
            req.dense[int(rng.integers(0, CFG.num_dense))] = np.nan
        elif kind == 2:
            req.sparse[t] = rng.normal(size=4) * 100
        else:
            req.sparse[t] = None
        out = san.sanitize(req)
        if isinstance(out, Rejection):
            assert out.reason in ("dense_non_finite", "ids_dtype")
            return
        assert np.isfinite(out.dense).all()
        for tt, ids in enumerate(out.values):
            assert ids.dtype == np.int64
            if ids.size:
                assert 0 <= ids.min() and ids.max() < CFG.table_sizes[tt]

    def test_sanitize_table_csr_repairs_offsets(self):
        san = RequestSanitizer(CFG, oov_policy="clamp")
        before = san.stats()["sanitized"]["offsets_repaired"]
        ids, off = san.sanitize_table_csr(
            0, np.array([1, 2, 3]), np.array([1, 5, -2]), num_bags=2
        )
        check_csr(ids, off, CFG.table_sizes[0])
        assert san.stats()["sanitized"]["offsets_repaired"] == before + 1


# ---------------------------------------------------------------------- #
# Queue
# ---------------------------------------------------------------------- #

def queued(rid, deadline_ms=None):
    return SanitizedRequest(dense=np.zeros(2), values=[], request_id=rid,
                            deadline_ms=deadline_ms)


class TestMicroBatchQueue:
    def test_depth_bound_sheds(self):
        clock = ManualClock()
        q = MicroBatchQueue(max_depth=3, max_batch=8, clock=clock)
        results = [q.submit(queued(i)) for i in range(5)]
        assert results == ["queued"] * 3 + ["shed_queue_full"] * 2
        assert q.shed_counts()["queue_full"] == 2
        assert q.depth == 3

    def test_batch_is_edf_ordered_and_bounded(self):
        clock = ManualClock()
        q = MicroBatchQueue(max_depth=16, max_batch=2, clock=clock)
        for rid, dl in ((0, 30.0), (1, 10.0), (2, 20.0)):
            q.submit(queued(rid, deadline_ms=dl))
        batch = q.next_batch()
        assert [r.request_id for r in batch] == [1, 2]
        assert q.depth == 1

    def test_expired_requests_shed_at_forming(self):
        clock = ManualClock()
        q = MicroBatchQueue(max_depth=16, max_batch=8,
                            default_deadline_ms=5.0, clock=clock)
        q.submit(queued(0))
        clock.advance(10.0)
        q.submit(queued(1))
        batch = q.next_batch()
        assert [r.request_id for r in batch] == [1]
        assert q.shed_counts()["deadline"] == 1

    def test_service_ewma_widens_infeasibility_horizon(self):
        clock = ManualClock()
        q = MicroBatchQueue(max_depth=16, max_batch=8,
                            default_deadline_ms=5.0, clock=clock)
        q.observe_service(100.0)  # service now takes far longer than 5 ms
        q.submit(queued(0))
        assert q.next_batch() == []
        assert q.shed_counts()["deadline"] == 1

    def test_backpressure_watermark(self):
        q = MicroBatchQueue(max_depth=10, high_watermark=0.5,
                            clock=ManualClock())
        for i in range(4):
            q.submit(queued(i))
        assert not q.should_backpressure()
        q.submit(queued(4))
        assert q.should_backpressure()

    def test_queue_fault_sheds(self):
        inj = FaultInjector(seed=0).register("serving.queue", 1.0)
        q = MicroBatchQueue(max_depth=4, clock=ManualClock(), injector=inj)
        assert q.submit(queued(0)) == "shed_fault"
        assert q.depth == 0
        assert q.shed_counts()["fault"] == 1 == inj.fired["serving.queue"]


# ---------------------------------------------------------------------- #
# Circuit breaker FSM
# ---------------------------------------------------------------------- #

class TestCircuitBreaker:
    def brk(self, **kw):
        defaults = dict(failure_threshold=3, window=10, cooldown=4,
                        half_open_successes=2)
        defaults.update(kw)
        return CircuitBreaker("test", **defaults)

    def test_closed_until_threshold(self):
        b = self.brk()
        for _ in range(2):
            b.record_failure()
        assert b.state == "closed" and b.allow()
        b.record_failure()
        assert b.state == "open" and not b.allow()
        assert b.transitions == [("closed", "open")]

    def test_successes_age_out_of_window(self):
        b = self.brk(failure_threshold=3, window=4)
        for _ in range(2):
            b.record_failure()
        for _ in range(4):  # push the failures out of the window
            b.record_success()
        b.record_failure()
        assert b.state == "closed"

    def test_open_to_half_open_after_cooldown(self):
        b = self.brk(cooldown=3)
        for _ in range(3):
            b.record_failure()
        assert not b.allow() and not b.allow()
        assert b.allow()  # third probe ends the cooldown
        assert b.state == "half_open"

    def test_half_open_success_closes(self):
        b = self.brk(cooldown=1, half_open_successes=2)
        for _ in range(3):
            b.record_failure()
        assert b.allow()
        b.record_success()
        assert b.state == "half_open"
        b.record_success()
        assert b.state == "closed"
        assert b.transitions[-1] == ("half_open", "closed")

    def test_half_open_failure_reopens(self):
        b = self.brk(cooldown=1)
        for _ in range(3):
            b.record_failure()
        assert b.allow()
        b.record_failure()
        assert b.state == "open"
        assert b.transitions == [("closed", "open"), ("open", "half_open"),
                                 ("half_open", "open")]

    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker("x", failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker("x", failure_threshold=5, window=3)
        with pytest.raises(ValueError):
            CircuitBreaker("x", cooldown=0)


# ---------------------------------------------------------------------- #
# Server + degradation ladder under chaos
# ---------------------------------------------------------------------- #

def build_server(predictor, injector=None, **cfg_kw):
    clock = ManualClock()
    defaults = dict(failure_threshold=2, breaker_window=10, cooldown=3,
                    default_deadline_ms=1000.0)
    defaults.update(cfg_kw)
    return InferenceServer(predictor, config=ServerConfig(**defaults),
                           injector=injector, clock=clock), clock


class TestInferenceServer:
    def test_matches_predictor_on_clean_traffic(self, predictor):
        server, _ = build_server(predictor)
        rng = np.random.default_rng(0)
        req = make_request(rng, rid=1)
        assert server.submit(req)["status"] == "queued"
        (resp,) = server.step()
        assert resp["request_id"] == 1 and not resp["degraded"]
        from repro.data.batching import make_offsets

        sparse = [(np.asarray(v), make_offsets(np.array([len(v)])))
                  for v in req.sparse]
        expected = predictor.predict_proba(req.dense.reshape(1, -1), sparse)
        assert resp["prob"] == pytest.approx(float(expected[0]), abs=1e-12)

    def test_health_and_ready_probes(self, predictor):
        server, _ = build_server(predictor)
        assert server.readyz() == {"ready": True}
        h = server.healthz()
        assert h["status"] == "ok" and h["queue_depth"] == 0

    def test_poisoned_cache_served_by_lower_rung(self, predictor):
        server, _ = build_server(predictor)
        # Poison every cached table's resident rows directly, then request
        # exactly those resident ids so the primary rung must read them.
        embeddings = predictor.embeddings
        cached = [e for e in embeddings
                  if hasattr(e, "cache_rows") and e._cached_ids.size]
        assert cached, "fixture must include populated cached TT tables"
        try:
            for emb in cached:
                emb.cache_rows.data[:] = np.nan
            sparse = [
                np.array([emb._cached_ids[0]], dtype=np.int64)
                if (hasattr(emb, "cache_rows") and emb._cached_ids.size)
                else np.array([0], dtype=np.int64)
                for emb in embeddings
            ]
            req = Request(dense=np.zeros(CFG.num_dense), sparse=sparse)
            assert server.submit(req)["status"] == "queued"
            responses = server.drain()
        finally:
            for emb in cached:  # repair regardless: predictor is shared
                emb.scrub()
        assert responses and all(np.isfinite(r["prob"]) for r in responses)
        # The failing primary rung tripped its breaker, triggered the PR-1
        # scrub hook, and a lower rung served the batch.
        stats = server.stats()
        assert stats["backend_failures"] >= len(cached)
        assert stats["scrubbed_rows"] >= len(cached)
        # Per-table attribution (the shard roll-up hook): the lump sums
        # decompose by the table whose ladder actually degraded, and
        # every failing table also shows a fallback rung serving it.
        assert sum(stats["backend_failures_by_table"].values()) \
            == stats["backend_failures"]
        assert sum(stats["scrubs_by_table"].values()) \
            == stats["scrubbed_rows"]
        for t in stats["backend_failures_by_table"]:
            assert any(stats["fallbacks"][t].values()), \
                f"table {t} failed its primary rung but shows no fallback"
        assert all(r["degraded"] for r in responses)
        for emb in cached:
            assert np.isfinite(
                emb.cache_rows.data[emb._cache_slot]
            ).all()

    @pytest.mark.parametrize("site", ["serving.request", "serving.queue",
                                      "serving.backend"])
    def test_single_site_chaos(self, predictor, site):
        """Faults at each site alone: never a non-finite output, and the
        site's firings reconcile with the matching defensive counter."""
        inj = FaultInjector(seed=11).register(site, 0.3, kind="nan",
                                              max_elements=4)
        server, clock = build_server(predictor, injector=inj)
        rng = np.random.default_rng(2)
        served = []
        for rid in range(40):
            clock.advance(1.0)
            server.submit(make_request(rng, rid=rid))
            served.extend(server.step())
        served.extend(server.drain())
        assert all(np.isfinite(r["prob"]) for r in served)
        stats = server.stats()
        assert stats["final_guard"] == 0
        fired = inj.fired[site]
        assert fired > 0
        if site == "serving.request":
            assert stats["admission"]["rejected"]["dense_non_finite"] == fired
        elif site == "serving.queue":
            assert stats["shed"]["fault"] == fired
        else:
            assert stats["backend_failures"] == fired

    def test_all_sites_chaos_run_load(self, predictor):
        """The acceptance drill at test scale: every serving.* site at
        5-ish%, ledgers reconcile, breaker transitions recorded."""
        inj = FaultInjector(seed=123)
        for site in ("serving.request", "serving.queue", "serving.backend"):
            inj.register(site, 0.08, kind="nan", max_elements=4)
        server, clock = build_server(predictor, injector=inj)
        report = run_load(server, num_requests=300, mean_interarrival_ms=0.5,
                          deadline_ms=500.0, seed=3, clock=clock)
        assert report["non_finite_outputs"] == 0
        assert report["reconciliation"]["passed"], report["reconciliation"]
        assert sum(report["outcomes"].values()) == 300
        assert report["served"] <= report["outcomes"]["queued"]
        assert len(report["breaker_transitions"]) >= 1
        # Latency accounting covered every served request.
        assert report["stats"]["latency_ms"]["count"] == report["served"]

    def test_breaker_recovery_closes_after_faults_stop(self, predictor):
        inj = FaultInjector(seed=5).register("serving.backend", 1.0,
                                             kind="nan")
        server, clock = build_server(predictor, injector=inj,
                                     failure_threshold=2, cooldown=2)
        rng = np.random.default_rng(4)
        for rid in range(6):
            clock.advance(1.0)
            server.submit(make_request(rng, rid=rid))
            server.step()
        assert any(b["state"] != "closed" for b in server.breaker_snapshots())
        # Faults stop; the half-open probes must eventually re-close.
        inj.register("serving.backend", 0.0, kind="nan")
        for rid in range(30):
            clock.advance(1.0)
            server.submit(make_request(rng, rid=100 + rid))
            server.step()
        server.drain()
        # Primary rungs recover fully. Lower rungs (tt_direct) may stay
        # open/half-open: once the primary answers, the ladder returns
        # before ever probing them again — they heal on next use.
        assert all(b["state"] == "closed" for b in server.breaker_snapshots()
                   if b["name"].endswith(".primary"))
        # And the recovered primaries really are serving again, unfaulted.
        before = server.stats()["backend_failures"]
        server.submit(make_request(rng, rid=999))
        (resp,) = server.drain()
        assert not resp["degraded"]
        assert server.stats()["backend_failures"] == before

    def test_overload_sheds_instead_of_queueing_unboundedly(self, predictor):
        server, clock = build_server(predictor, max_depth=8, max_batch=4)
        rng = np.random.default_rng(6)
        statuses = [server.submit(make_request(rng, rid=i))["status"]
                    for i in range(20)]
        assert statuses.count("shed") == 12
        assert server.queue.depth == 8
        assert server.stats()["shed"]["queue_full"] == 12

    def test_malformed_traffic_mixed_with_faults(self, predictor):
        """The kitchen sink: malformed requests AND faults everywhere —
        still no non-finite output ever reaches a client."""
        inj = FaultInjector(seed=9)
        for site in ("serving.request", "serving.queue", "serving.backend"):
            inj.register(site, 0.1, kind="nan", max_elements=2)
        server, clock = build_server(predictor, injector=inj)
        report = run_load(server, num_requests=200, malformed=0.3,
                          deadline_ms=500.0, seed=10, clock=clock)
        assert report["non_finite_outputs"] == 0
        assert report["outcomes"]["rejected"] > 0
