"""Fixture: EXC001 — bare except."""


def guarded(fn):
    try:
        return fn()
    except:                   # line 7: EXC001
        return None
