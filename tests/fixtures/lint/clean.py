"""Fixture: a file every rule passes."""
import time

import numpy as np


def sample(n, rng):
    t0 = time.perf_counter()
    values = rng.standard_normal(n).astype(np.float32)
    for v in sorted({1, 2, 3}):
        values = values + v
    try:
        result = values.sum()
    except FloatingPointError:
        raise
    return result, time.perf_counter() - t0
