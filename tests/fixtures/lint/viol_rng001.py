"""Fixture: RNG001 — global-state numpy RNG call."""
import numpy as np


def sample(n):
    np.random.seed(42)            # line 6: RNG001
    return np.random.rand(n)      # line 7: RNG001
