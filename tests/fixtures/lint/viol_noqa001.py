"""Fixture: targeted suppression naming a rule id that does not exist."""
import numpy as np


def sample(n):
    return np.random.rand(n)  # repro: noqa[RNG999]
