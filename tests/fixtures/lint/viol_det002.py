"""Fixture: DET002 — iteration over a set feeding accumulation."""


def total(values):
    acc = 0.0
    for v in set(values):     # line 6: DET002
        acc += v
    return acc
