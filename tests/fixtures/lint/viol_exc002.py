"""Fixture: EXC002 — except Exception with no trace and no re-raise."""


def guarded(fn):
    try:
        return fn()
    except Exception:         # line 7: EXC002
        pass
    return 0
