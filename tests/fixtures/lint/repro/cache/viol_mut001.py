"""Fixture: MUT001 — in-place write to a function argument (via an alias)."""


def scatter(buf, rows, vals):
    flat = buf.reshape(buf.shape[0], -1)
    flat[rows] += vals        # line 6: MUT001 (alias of buf)
    buf[0] = 0.0              # line 7: MUT001 (direct)
    return None


def scatter_(buf, rows, vals):
    buf[rows] += vals         # exempt: trailing-underscore convention
