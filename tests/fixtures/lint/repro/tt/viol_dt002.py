"""Fixture: DT002 — dtype-less allocation in a hot-path module."""
import numpy as np


def alloc(shape):
    buf = np.zeros(shape)     # line 6: DT002
    tmp = np.empty(3)         # line 7: DT002
    return buf, tmp
