"""Fixture: DT001 — hard-coded np.float64 in a hot-path module."""
import numpy as np


def gather(n):
    return np.empty(n, dtype=np.float64)  # line 6: DT001
