"""Fixture: DT003 — astype copy inside a loop in a hot-path module."""
import numpy as np


def convert(chunks):
    out = []
    for chunk in chunks:
        out.append(chunk.astype(np.float32))  # line 8: DT003
    return out
