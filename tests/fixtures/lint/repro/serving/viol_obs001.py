"""OBS001 fixture: raw telemetry calls inside the serving tier."""

from repro.telemetry import emit_event, trace
from repro.telemetry.tracer import get_tracer


def handle(batch):
    with trace("serving.batch", size=len(batch)):
        emit_event("serving.final_guard", count=0)
    tracer = get_tracer()
    with tracer.span("serving.towers"):
        return batch
