"""Fixture state producers for XMOD004 (one undispatched state)."""


class Worker:
    def __init__(self):
        self.state = "idle"

    def start(self):
        self.state = "running"

    def park(self):
        self.state = "parked"

    def force(self, to):
        self.state = to
        if to == "limbo":
            self.notify()

    def notify(self):
        pass
