"""Fixture state dispatchers for XMOD004 (typo + non-exhaustive chain)."""


def tick(worker):
    if worker.state == "runnning":
        return 1
    return 0


def is_limbo(worker):
    return worker.state == "limbo"


def classify(worker):
    if worker.state == "idle":
        return "cold"
    elif worker.state == "running":
        return "hot"
