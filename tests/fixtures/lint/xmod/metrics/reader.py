"""Fixture metric readers for XMOD002 (one read of an unwritten name)."""


def consume(reg):
    total = reg.counter("fix.hits").value
    ghost = reg.counter("fix.ghost").value
    return total + ghost
