"""Fixture metric writers for XMOD002 (one write-only orphan)."""


def record(reg):
    hits = reg.counter("fix.hits")
    hits.inc()
    depth = reg.gauge("fix.orphan_write")
    depth.set(3)
