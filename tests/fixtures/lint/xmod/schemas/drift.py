"""Fixture stray schema-tag occurrence for XMOD003 (version drift)."""

EXPECTED = "repro.fix/v2"
