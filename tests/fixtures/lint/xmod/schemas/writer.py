"""Fixture JSONL schema writers for XMOD003 (one unvalidated tag)."""

TAG = "repro.fix/v1"


def dump(payload):
    return {"schema": TAG, "payload": payload}


def dump_orphan(payload):
    return {"schema": "repro.fixorphan/v1", "payload": payload}
