"""Fixture JSONL schema reader for XMOD003."""


def load(record):
    if record.get("schema") != "repro.fix/v1":
        raise ValueError("bad schema")
    return record["payload"]
