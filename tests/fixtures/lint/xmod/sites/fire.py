"""Fixture fire sites for XMOD001 (one typo'd site name)."""


def drill(injector):
    injector.fires("shard.crash")
    injector.draw("shard.slow")
    injector.fires("shard.crashh")
