"""Fixture fault-site registry for XMOD001 (one dead entry)."""

KNOWN_SITES = (
    "shard.crash",
    "shard.slow",
    "registry.orphan",
)
