"""Fixture hot-path callers for XMOD005 (one untyped leak)."""

import numpy as np

from helpers import narrow_block, padding_block


def pad(n):
    return padding_block(n)


def pad_ok(n):
    return narrow_block(n)


def pad_cast(n):
    return padding_block(n).astype(np.float32)
