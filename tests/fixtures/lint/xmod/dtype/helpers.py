"""Fixture cold-module allocators for XMOD005."""

import numpy as np


def padding_block(n):
    return np.zeros((n, 8))


def narrow_block(n):
    return np.zeros((n, 8), dtype=np.float32)
