"""Fixture: DET001 — wall-clock read in a compute path."""
import time
from datetime import datetime


def stamp():
    t0 = time.time()          # line 7: DET001
    day = datetime.now()      # line 8: DET001
    return t0, day
