"""Fixture: DET003 — ambient entropy / unseeded RNG in process scope."""
import os
import random
import uuid

from numpy.random import default_rng


def spawn_worker_state():
    token = os.urandom(8)          # line 10: DET003 (OS entropy)
    wid = uuid.uuid4()             # line 11: DET003 (OS entropy)
    jitter = random.random()       # line 12: DET003 (global stdlib stream)
    rng = default_rng()            # line 13: DET003 (unseeded)
    seeded = default_rng(1234)     # ok: explicit seed
    local = random.Random(7)       # ok: seeded instance
    return token, wid, jitter, rng, seeded, local
