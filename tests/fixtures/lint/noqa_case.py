"""Fixture: suppression — same RNG001 violation, noqa'd two ways."""
import numpy as np


def sample(n):
    np.random.seed(7)   # repro: noqa[RNG001]
    bad = np.random.rand(n)  # repro: noqa
    also_bad = np.random.rand(n)  # repro: noqa[DT001]  (wrong rule: still fires)
    return bad + also_bad
