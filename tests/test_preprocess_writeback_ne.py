"""Tests for the Criteo preprocessing pipeline, TT row write-back, and NE."""

import numpy as np
import pytest

from repro.data.preprocess import Preprocessor, build_vocabularies, downsample_negatives
from repro.training.metrics import normalized_entropy
from repro.tt import TTEmbeddingBag, TTShape
from repro.tt.writeback import absorb_rows, reconstruction_error


def make_tsv(tmp_path, rows, name="day.tsv"):
    lines = []
    for label, cats in rows:
        ints = ["1"] * 13
        lines.append("\t".join([str(label)] + ints + cats))
    p = tmp_path / name
    p.write_text("\n".join(lines) + "\n")
    return p


class TestBuildVocabularies:
    def test_dense_reindexing_reserves_oov(self, tmp_path):
        rows = [
            (1, ["0000000a"] + ["000000ff"] * 25),
            (0, ["0000000b"] + ["000000ff"] * 25),
        ]
        path = make_tsv(tmp_path, rows)
        vocabs = build_vocabularies([path])
        assert len(vocabs) == 26
        assert set(vocabs[0].values()) == {1, 2}  # index 0 reserved
        assert vocabs[1] == {0xFF: 1}

    def test_min_frequency_thresholds(self, tmp_path):
        rows = [(0, ["0000000a"] + ["000000ff"] * 25)] * 3 + \
               [(0, ["0000000b"] + ["000000ff"] * 25)]
        path = make_tsv(tmp_path, rows)
        vocabs = build_vocabularies([path], min_frequency=2)
        assert 0xA in vocabs[0]
        assert 0xB not in vocabs[0]  # seen once -> OOV

    def test_multiple_files_accumulate(self, tmp_path):
        p1 = make_tsv(tmp_path, [(0, ["0000000a"] * 26)], "d1.tsv")
        p2 = make_tsv(tmp_path, [(0, ["0000000b"] * 26)], "d2.tsv")
        vocabs = build_vocabularies([p1, p2])
        assert len(vocabs[0]) == 2

    def test_validation(self, tmp_path):
        with pytest.raises(ValueError):
            build_vocabularies([], min_frequency=0)
        bad = tmp_path / "bad.tsv"
        bad.write_text("1\t2\n")
        with pytest.raises(ValueError, match="fields"):
            build_vocabularies([bad])


class TestPreprocessor:
    def test_spec_includes_oov_row(self, tmp_path):
        path = make_tsv(tmp_path, [(0, ["0000000a"] * 26)])
        pre = Preprocessor(build_vocabularies([path]))
        assert pre.spec().table_sizes == tuple([2] * 26)

    def test_batches_encode_known_and_oov(self, tmp_path):
        train = make_tsv(tmp_path, [(1, ["0000000a"] * 26)], "train.tsv")
        test = make_tsv(tmp_path, [(0, ["0000000a"] * 26),
                                   (1, ["deadbeef"] * 26)], "test.tsv")
        pre = Preprocessor(build_vocabularies([train]))
        batches = list(pre.batches(test, batch_size=10))
        assert len(batches) == 1
        idx0 = batches[0].sparse[0][0]
        assert idx0[0] == 1   # known value
        assert idx0[1] == 0   # OOV
        # indices always fit the derived spec
        spec = pre.spec()
        for t, (idx, _) in enumerate(batches[0].sparse):
            assert idx.max() < spec.table_sizes[t]

    def test_negative_downsampling_in_stream(self, tmp_path):
        rows = [(0, ["0000000a"] * 26)] * 200 + [(1, ["0000000a"] * 26)] * 10
        path = make_tsv(tmp_path, rows)
        pre = Preprocessor(build_vocabularies([path]))
        kept = sum(b.size for b in pre.batches(path, 64,
                                               negative_keep_rate=0.1, rng=0))
        # ~20 negatives + all 10 positives
        assert 10 <= kept <= 60
        labels = np.concatenate([
            b.labels for b in pre.batches(path, 64,
                                          negative_keep_rate=0.1, rng=0)
        ])
        assert labels.sum() == 10  # every positive survived

    def test_batches_validation(self, tmp_path):
        path = make_tsv(tmp_path, [(0, ["0000000a"] * 26)])
        pre = Preprocessor(build_vocabularies([path]))
        with pytest.raises(ValueError):
            list(pre.batches(path, 0))


class TestDownsampleNegatives:
    def test_positives_always_kept(self):
        labels = np.array([1.0, 0, 0, 1, 0, 0, 0, 1])
        keep = downsample_negatives(labels, 0.5, rng=0)
        assert keep[labels > 0.5].all()

    def test_keep_rate_statistics(self):
        rng = np.random.default_rng(0)
        labels = (rng.random(20_000) < 0.2).astype(float)
        keep = downsample_negatives(labels, 0.125, rng=1)
        neg_kept = keep[labels < 0.5].mean()
        assert neg_kept == pytest.approx(0.125, abs=0.01)

    def test_keep_rate_one_keeps_all(self):
        labels = np.zeros(100)
        assert downsample_negatives(labels, 1.0, rng=0).all()

    def test_validation(self):
        with pytest.raises(ValueError):
            downsample_negatives(np.zeros(4), 0.0)


class TestWriteBack:
    @pytest.fixture
    def emb(self):
        shape = TTShape.with_uniform_rank(60, 8, (3, 4, 5), (2, 2, 2), rank=6)
        return TTEmbeddingBag(60, 8, shape=shape, rng=0)

    def test_absorbs_learnable_targets(self, emb):
        """Targets near the TT manifold are absorbed to low residual."""
        rng = np.random.default_rng(1)
        rows = np.array([3, 17, 42])
        targets = emb.lookup(rows) + 0.01 * rng.normal(size=(3, 8))
        stats = absorb_rows(emb, rows, targets, steps=100, lr=1.0)
        assert stats["after"] < stats["before"]
        assert stats["after"] < 0.01

    def test_other_rows_barely_move(self, emb):
        rng = np.random.default_rng(2)
        rows = np.array([5])
        others = np.array([50, 55, 59])
        before_others = emb.lookup(others).copy()
        targets = emb.lookup(rows) + 0.05 * rng.normal(size=(1, 8))
        absorb_rows(emb, rows, targets, steps=50, lr=0.5, ridge=1e-2)
        drift = np.abs(emb.lookup(others) - before_others).max()
        assert drift < 0.05  # bounded collateral movement

    def test_unreachable_targets_plateau(self):
        """Rank-1 cores cannot represent arbitrary rows: the paper's point
        about why streaming decomposition is hard."""
        shape = TTShape.with_uniform_rank(60, 8, (3, 4, 5), (2, 2, 2), rank=1)
        emb = TTEmbeddingBag(60, 8, shape=shape, rng=0)
        rng = np.random.default_rng(3)
        rows = np.arange(20)
        targets = rng.normal(size=(20, 8))  # far off the rank-1 manifold
        stats = absorb_rows(emb, rows, targets, steps=60, lr=0.3)
        assert stats["after"] > 0.1  # cannot be driven to zero

    def test_empty_rows_noop(self, emb):
        stats = absorb_rows(emb, np.empty(0, dtype=np.int64),
                            np.zeros((0, 8)))
        assert stats == {"before": 0.0, "after": 0.0, "steps": 0}

    def test_tol_early_stop(self, emb):
        rows = np.array([1])
        targets = emb.lookup(rows)  # already exact
        stats = absorb_rows(emb, rows, targets, steps=50, tol=1e-12)
        assert stats["steps"] == 0

    def test_validation(self, emb):
        with pytest.raises(ValueError):
            absorb_rows(emb, np.array([1]), np.zeros((2, 8)))
        with pytest.raises(ValueError):
            absorb_rows(emb, np.array([1]), np.zeros((1, 8)), steps=0)

    def test_reconstruction_error_zero_for_exact(self, emb):
        rows = np.array([2, 4])
        assert reconstruction_error(emb, rows, emb.lookup(rows)) == 0.0


class TestNormalizedEntropy:
    def test_base_rate_predictor_is_one(self):
        rng = np.random.default_rng(0)
        labels = (rng.random(50_000) < 0.3).astype(float)
        p = labels.mean()
        logits = np.full_like(labels, np.log(p / (1 - p)))
        assert normalized_entropy(logits, labels) == pytest.approx(1.0, abs=1e-3)

    def test_better_model_below_one(self):
        labels = np.array([1.0, 0, 1, 0] * 100)
        logits = np.where(labels > 0.5, 2.0, -2.0)
        assert normalized_entropy(logits, labels) < 0.5

    def test_single_class_is_inf(self):
        assert normalized_entropy(np.zeros(4), np.ones(4)) == float("inf")
