"""Tests for Parameter/Module bookkeeping and the optimizers."""

import numpy as np
import pytest

from repro.ops import SGD, Adagrad, Linear, SparseSGD
from repro.ops.module import Module, Parameter


class TestParameter:
    def test_grad_starts_zero(self):
        p = Parameter(np.ones((2, 3)))
        assert p.grad.shape == (2, 3)
        assert not p.grad.any()

    def test_zero_grad_resets_touched(self):
        p = Parameter(np.ones((4, 2)), sparse=True)
        p.record_touched(np.array([1, 3]))
        p.zero_grad()
        assert p.touched_rows is None

    def test_record_touched_unions(self):
        p = Parameter(np.ones((5, 1)), sparse=True)
        p.record_touched(np.array([3, 1, 3]))
        p.record_touched(np.array([0]))
        np.testing.assert_array_equal(p.touched_rows, [0, 1, 3])

    def test_data_is_float64_contiguous(self):
        p = Parameter(np.ones((2, 2), dtype=np.float32).T)
        assert p.data.dtype == np.float64
        assert p.data.flags.c_contiguous


class TestModule:
    def test_collects_nested_and_lists(self):
        class Inner(Module):
            def __init__(self):
                self.w = Parameter(np.zeros(2), name="inner.w")

        class Outer(Module):
            def __init__(self):
                self.a = Parameter(np.zeros(3), name="a")
                self.inner = Inner()
                self.items = [Inner(), Parameter(np.zeros(1), name="loose")]

        params = Outer().parameters()
        assert {p.name for p in params} == {"a", "inner.w", "loose"}
        # one inner.w from the attr, one from the list
        assert len(params) == 4

    def test_shared_parameter_collected_once(self):
        shared = Parameter(np.zeros(2), name="shared")

        class M(Module):
            def __init__(self):
                self.a = shared
                self.b = shared

        assert len(M().parameters()) == 1

    def test_num_parameters_and_bytes(self):
        layer = Linear(3, 4, rng=0)
        assert layer.num_parameters() == 3 * 4 + 4
        assert layer.bytes() == 4 * (3 * 4 + 4)

    def test_zero_grad_all(self):
        layer = Linear(2, 2, rng=0)
        layer.weight.grad += 1.0
        layer.zero_grad()
        assert not layer.weight.grad.any()


class TestSGD:
    def test_plain_step(self):
        p = Parameter(np.array([1.0, 2.0]))
        p.grad[:] = [0.5, -0.5]
        SGD([p], lr=0.1).step()
        np.testing.assert_allclose(p.data, [0.95, 2.05])

    def test_weight_decay(self):
        p = Parameter(np.array([1.0]))
        SGD([p], lr=0.1, weight_decay=0.5).step()
        np.testing.assert_allclose(p.data, [1.0 - 0.1 * 0.5])

    def test_momentum_accumulates(self):
        p = Parameter(np.array([0.0]))
        opt = SGD([p], lr=1.0, momentum=0.9)
        p.grad[:] = 1.0
        opt.step()
        np.testing.assert_allclose(p.data, [-1.0])
        opt.step()  # velocity = 0.9*1 + 1 = 1.9
        np.testing.assert_allclose(p.data, [-2.9])

    def test_rejects_bad_hparams(self):
        p = Parameter(np.zeros(1))
        with pytest.raises(ValueError):
            SGD([p], lr=0.0)
        with pytest.raises(ValueError):
            SGD([p], lr=0.1, momentum=1.0)

    def test_zero_grad(self):
        p = Parameter(np.zeros(2))
        p.grad += 3.0
        opt = SGD([p], lr=0.1)
        opt.zero_grad()
        assert not p.grad.any()


class TestSparseSGD:
    def test_touches_only_recorded_rows(self):
        p = Parameter(np.ones((4, 2)), sparse=True)
        p.grad[:] = 1.0  # grads exist everywhere, but only rows 1,2 touched
        p.record_touched(np.array([1, 2]))
        SparseSGD([p], lr=0.5).step()
        np.testing.assert_allclose(p.data[0], [1.0, 1.0])
        np.testing.assert_allclose(p.data[1], [0.5, 0.5])
        np.testing.assert_allclose(p.data[3], [1.0, 1.0])

    def test_dense_fallback(self):
        p = Parameter(np.ones(3), sparse=False)
        p.grad[:] = 1.0
        SparseSGD([p], lr=0.5).step()
        np.testing.assert_allclose(p.data, 0.5)

    def test_sparse_without_touch_updates_all(self):
        p = Parameter(np.ones(3), sparse=True)
        p.grad[:] = 1.0
        SparseSGD([p], lr=1.0).step()
        np.testing.assert_allclose(p.data, 0.0)


class TestAdagrad:
    def test_first_step_is_lr_sign(self):
        p = Parameter(np.array([0.0]))
        p.grad[:] = 2.0
        Adagrad([p], lr=0.1).step()
        np.testing.assert_allclose(p.data, [-0.1], atol=1e-8)

    def test_accumulator_shrinks_steps(self):
        p = Parameter(np.array([0.0]))
        opt = Adagrad([p], lr=0.1)
        p.grad[:] = 1.0
        opt.step()
        first = abs(p.data[0])
        before = p.data[0]
        opt.step()
        second = abs(p.data[0] - before)
        assert second < first

    def test_sparse_rows_only(self):
        p = Parameter(np.zeros((3, 1)), sparse=True)
        p.grad[:] = 1.0
        p.record_touched(np.array([2]))
        Adagrad([p], lr=0.1).step()
        assert p.data[0, 0] == 0.0
        assert p.data[2, 0] != 0.0
