"""Tests for the real-Criteo TSV parser (on synthetic fixture files)."""

import numpy as np
import pytest

from repro.data import KAGGLE, CriteoTSVReader, DatasetSpec
from repro.data.criteo import parse_criteo_line


def make_line(label=1, ints=None, cats=None):
    ints = ints if ints is not None else ["1"] * 13
    cats = cats if cats is not None else ["05db9164"] * 26
    return "\t".join([str(label)] + ints + cats)


class TestParseLine:
    def test_basic(self):
        label, dense, cats = parse_criteo_line(make_line(), KAGGLE.table_sizes)
        assert label == 1.0
        np.testing.assert_allclose(dense, np.log1p(1.0))
        assert cats.shape == (26,)
        assert all(0 <= cats[i] < KAGGLE.table_sizes[i] for i in range(26))

    def test_missing_fields_default_to_zero(self):
        line = make_line(0, ints=[""] * 13, cats=[""] * 26)
        label, dense, cats = parse_criteo_line(line, KAGGLE.table_sizes)
        assert label == 0.0
        assert not dense.any()
        assert not cats.any()

    def test_negative_ints_clamped(self):
        ints = ["-5"] + ["2"] * 12
        _, dense, _ = parse_criteo_line(make_line(ints=ints), KAGGLE.table_sizes)
        assert dense[0] == 0.0
        np.testing.assert_allclose(dense[1], np.log1p(2.0))

    def test_hex_modulo_mapping(self):
        cats = ["ffffffff"] + ["0000000a"] * 25
        _, _, out = parse_criteo_line(make_line(cats=cats), KAGGLE.table_sizes)
        assert out[0] == 0xFFFFFFFF % KAGGLE.table_sizes[0]
        assert out[1] == 10 % KAGGLE.table_sizes[1]

    def test_rejects_wrong_field_count(self):
        with pytest.raises(ValueError):
            parse_criteo_line("1\t2\t3", KAGGLE.table_sizes)


class TestReader:
    def write_fixture(self, tmp_path, n=10):
        rng = np.random.default_rng(0)
        lines = []
        for i in range(n):
            ints = [str(int(v)) if v >= 0 else "" for v in rng.integers(-2, 100, 13)]
            cats = [f"{int(v):08x}" for v in rng.integers(0, 2 ** 32, 26)]
            lines.append(make_line(i % 2, ints, cats))
        p = tmp_path / "criteo.tsv"
        p.write_text("\n".join(lines) + "\n")
        return p

    def test_batches(self, tmp_path):
        path = self.write_fixture(tmp_path, n=10)
        reader = CriteoTSVReader(path, KAGGLE)
        batches = list(reader.batches(4))
        assert [b.size for b in batches] == [4, 4, 2]
        for b in batches:
            assert b.dense.shape[1] == 13
            assert len(b.sparse) == 26
            for idx, off in b.sparse:
                np.testing.assert_array_equal(np.diff(off), 1)

    def test_max_samples(self, tmp_path):
        path = self.write_fixture(tmp_path, n=10)
        reader = CriteoTSVReader(path, KAGGLE)
        batches = list(reader.batches(4, max_samples=5))
        assert sum(b.size for b in batches) == 5

    def test_labels_preserved(self, tmp_path):
        path = self.write_fixture(tmp_path, n=6)
        reader = CriteoTSVReader(path, KAGGLE)
        labels = np.concatenate([b.labels for b in reader.batches(3)])
        np.testing.assert_array_equal(labels, [0, 1, 0, 1, 0, 1])

    def test_blank_lines_skipped(self, tmp_path):
        p = tmp_path / "x.tsv"
        p.write_text(make_line() + "\n\n" + make_line(0) + "\n")
        batches = list(CriteoTSVReader(p, KAGGLE).batches(10))
        assert sum(b.size for b in batches) == 2

    def test_rejects_wrong_spec_layout(self, tmp_path):
        bad = DatasetSpec(name="bad", table_sizes=(10, 20), num_dense=13)
        with pytest.raises(ValueError):
            CriteoTSVReader(tmp_path / "x.tsv", bad)

    def test_rejects_bad_batch_size(self, tmp_path):
        path = self.write_fixture(tmp_path, n=2)
        with pytest.raises(ValueError):
            list(CriteoTSVReader(path, KAGGLE).batches(0))
