"""Tests for TT-SVD and reconstruction — the index-convention oracle."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tt import TTShape, tt_reconstruct, tt_svd
from repro.tt.decomposition import tt_full_tensor


def full_rank_shape(m=(3, 4, 5), n=(2, 2, 2), rows=None):
    rows = rows if rows is not None else int(np.prod(m))
    return TTShape.with_uniform_rank(rows, int(np.prod(n)), m, n, rank=10_000)


class TestRoundTrip:
    def test_full_rank_exact(self):
        rng = np.random.default_rng(0)
        shape = full_rank_shape()
        w = rng.normal(size=(60, 8))
        rec = tt_reconstruct(tt_svd(w, shape), shape)
        np.testing.assert_allclose(rec, w, atol=1e-12)

    def test_padded_rows_roundtrip(self):
        rng = np.random.default_rng(1)
        shape = full_rank_shape(rows=55)
        w = rng.normal(size=(55, 8))
        rec = tt_reconstruct(tt_svd(w, shape), shape)
        assert rec.shape == (55, 8)
        np.testing.assert_allclose(rec, w, atol=1e-12)

    def test_two_core_case(self):
        rng = np.random.default_rng(2)
        shape = TTShape.with_uniform_rank(12, 4, (3, 4), (2, 2), rank=100)
        w = rng.normal(size=(12, 4))
        np.testing.assert_allclose(tt_reconstruct(tt_svd(w, shape), shape), w, atol=1e-12)

    def test_four_core_case(self):
        rng = np.random.default_rng(3)
        shape = TTShape.with_uniform_rank(
            2 * 3 * 2 * 3, 16, (2, 3, 2, 3), (2, 2, 2, 2), rank=100
        )
        w = rng.normal(size=(36, 16))
        np.testing.assert_allclose(tt_reconstruct(tt_svd(w, shape), shape), w, atol=1e-11)

    @given(st.integers(min_value=0, max_value=2 ** 31))
    @settings(max_examples=25, deadline=None)
    def test_property_roundtrip(self, seed):
        rng = np.random.default_rng(seed)
        shape = full_rank_shape()
        w = rng.normal(size=(shape.num_rows, shape.dim))
        np.testing.assert_allclose(tt_reconstruct(tt_svd(w, shape), shape), w, atol=1e-11)


class TestLowRank:
    def test_rank_one_matrix_needs_rank_one(self):
        rng = np.random.default_rng(4)
        shape = TTShape.with_uniform_rank(60, 8, (3, 4, 5), (2, 2, 2), rank=1)
        # Constant matrix is exactly TT-rank 1 in this pairing.
        w = np.full((60, 8), 3.14)
        rec = tt_reconstruct(tt_svd(w, shape), shape)
        np.testing.assert_allclose(rec, w, atol=1e-12)

    def test_truncation_reduces_error_monotonically(self):
        rng = np.random.default_rng(5)
        w = rng.normal(size=(60, 8))
        errs = []
        for rank in (1, 2, 4, 8, 16):
            shape = TTShape.with_uniform_rank(60, 8, (3, 4, 5), (2, 2, 2), rank)
            rec = tt_reconstruct(tt_svd(w, shape), shape)
            errs.append(np.linalg.norm(rec - w))
        assert all(a >= b - 1e-12 for a, b in zip(errs, errs[1:]))

    def test_rtol_truncates(self):
        rng = np.random.default_rng(6)
        shape = full_rank_shape()
        # A constant matrix is exactly TT-rank 1 in the paired layout;
        # tiny noise is cut off by an aggressive rtol.
        w = np.full((60, 8), 2.0) + 1e-10 * rng.normal(size=(60, 8))
        cores = tt_svd(w, shape, rtol=1e-6)
        assert cores[0].shape[-1] == 1
        assert cores[1].shape[-1] == 1


class TestValidation:
    def test_shape_mismatch_rejected(self):
        shape = full_rank_shape()
        with pytest.raises(ValueError):
            tt_svd(np.zeros((10, 8)), shape)

    def test_full_tensor_rank_mismatch(self):
        shape = full_rank_shape()
        cores = tt_svd(np.random.default_rng(0).normal(size=(60, 8)), shape)
        bad = [cores[0], cores[1][:, :2], cores[2]]
        with pytest.raises(ValueError):
            tt_full_tensor(bad)

    def test_full_tensor_requires_boundary_ranks(self):
        rng = np.random.default_rng(7)
        bad_first = [rng.normal(size=(3, 2, 2, 4)), rng.normal(size=(4, 4, 2, 2, 1))]
        with pytest.raises(ValueError):
            tt_full_tensor([rng.normal(size=(3, 2, 2, 4))] * 2)

    def test_reconstruct_checks_output_shape(self):
        shape = full_rank_shape()
        rng = np.random.default_rng(8)
        wrong = [
            rng.normal(size=(3, 1, 2, 2)),
            rng.normal(size=(4, 2, 2, 2)),
            rng.normal(size=(4, 2, 2, 1)),  # m=4 instead of 5
        ]
        with pytest.raises(ValueError):
            tt_reconstruct(wrong, shape)


class TestConventionAgreement:
    def test_svd_cores_are_storage_layout(self):
        """tt_svd output loads directly into TTEmbeddingBag (mode-first)."""
        from repro.tt import TTEmbeddingBag

        rng = np.random.default_rng(9)
        shape = full_rank_shape()
        w = rng.normal(size=(60, 8))
        cores = tt_svd(w, shape)
        emb = TTEmbeddingBag(60, 8, shape=shape, rng=0)
        emb.load_cores(cores)
        idx = rng.integers(0, 60, size=30)
        np.testing.assert_allclose(emb.lookup(idx), w[idx], atol=1e-11)
