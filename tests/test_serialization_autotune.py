"""Tests for model checkpointing and the rank auto-tuner."""

import numpy as np
import pytest

from repro.analysis.autotune import plan_compression
from repro.data import KAGGLE
from repro.models import DLRMConfig, TTConfig, build_dlrm, build_ttrec
from repro.models.serialization import (
    load_model,
    load_state_dict,
    save_model,
    state_dict,
)
from repro.ops.module import Module, Parameter

SIZES = (500, 40, 300, 8, 200)
CFG = DLRMConfig(table_sizes=SIZES, num_dense=5, emb_dim=4,
                 bottom_mlp=(8,), top_mlp=(8,))


class TestStateDict:
    def test_roundtrip_in_memory(self):
        model = build_ttrec(CFG, num_tt_tables=2, tt=TTConfig(rank=2),
                            min_rows=100, rng=0)
        state = state_dict(model)
        fresh = build_ttrec(CFG, num_tt_tables=2, tt=TTConfig(rank=2),
                            min_rows=100, rng=99)
        load_state_dict(fresh, state)
        for a, b in zip(model.parameters(), fresh.parameters()):
            np.testing.assert_array_equal(a.data, b.data)

    def test_values_are_copies(self):
        model = build_dlrm(CFG, rng=0)
        state = state_dict(model)
        first_key = next(iter(state))
        state[first_key][...] = 42.0
        assert not (model.parameters()[0].data == 42.0).all()

    def test_duplicate_names_get_distinct_keys(self):
        class Twins(Module):
            def __init__(self):
                self.a = Parameter(np.zeros(1), name="same")
                self.b = Parameter(np.ones(2), name="same")

        model = Twins()
        state = state_dict(model)
        assert len(state) == 2  # positional prefix disambiguates
        fresh = Twins()
        fresh.b.data[...] = 5.0
        load_state_dict(fresh, state)
        np.testing.assert_array_equal(fresh.b.data, np.ones(2))

    def test_strict_mismatch_raises(self):
        model = build_dlrm(CFG, rng=0)
        state = state_dict(model)
        state.pop(next(iter(state)))
        with pytest.raises(KeyError):
            load_state_dict(build_dlrm(CFG, rng=1), state)

    def test_non_strict_reports_missing(self):
        model = build_dlrm(CFG, rng=0)
        state = state_dict(model)
        removed = next(iter(state))
        state.pop(removed)
        missing = load_state_dict(build_dlrm(CFG, rng=1), state, strict=False)
        assert missing == [removed]

    def test_shape_mismatch_raises(self):
        model = build_dlrm(CFG, rng=0)
        state = state_dict(model)
        name = next(iter(state))
        state[name] = np.zeros((1, 1))
        with pytest.raises(ValueError, match="shape mismatch"):
            load_state_dict(build_dlrm(CFG, rng=1), state, strict=False)


class TestNpzRoundtrip:
    def test_save_load_file(self, tmp_path):
        model = build_ttrec(CFG, num_tt_tables=1, tt=TTConfig(rank=2),
                            min_rows=100, rng=0)
        path = tmp_path / "ckpt.npz"
        save_model(model, path)
        fresh = build_ttrec(CFG, num_tt_tables=1, tt=TTConfig(rank=2),
                            min_rows=100, rng=7)
        load_model(fresh, path)
        rng = np.random.default_rng(0)
        dense = rng.normal(size=(3, 5))
        sparse = [(rng.integers(0, s, size=3), np.arange(4)) for s in SIZES]
        np.testing.assert_allclose(
            model.forward(dense, sparse), fresh.forward(dense, sparse)
        )

    def test_suffix_symmetry(self, tmp_path):
        """save_model('ckpt') and load_model('ckpt') hit the same file.

        np.savez appends ``.npz`` when the name lacks it; loading with the
        bare name used to fail with FileNotFoundError.
        """
        model = build_dlrm(CFG, rng=0)
        bare = tmp_path / "ckpt"  # no .npz suffix
        save_model(model, bare)
        assert (tmp_path / "ckpt.npz").exists()
        fresh = build_dlrm(CFG, rng=3)
        load_model(fresh, bare)  # must resolve to ckpt.npz
        for a, b in zip(model.parameters(), fresh.parameters()):
            np.testing.assert_array_equal(a.data, b.data)

    def test_exact_name_wins_on_load(self, tmp_path):
        """A file saved *with* an explicit odd name still loads verbatim."""
        model = build_dlrm(CFG, rng=0)
        path = tmp_path / "weights.npz"
        save_model(model, path)
        fresh = build_dlrm(CFG, rng=1)
        load_model(fresh, path)
        np.testing.assert_array_equal(model.parameters()[0].data,
                                      fresh.parameters()[0].data)


class TestPlanCompression:
    def test_fits_budget(self):
        plan = plan_compression(KAGGLE.table_sizes, 16,
                                budget_params=10_000_000)
        assert plan.total_params() <= 10_000_000
        assert plan.compression_ratio() > 1

    def test_tighter_budget_lower_rank_or_more_tables(self):
        loose = plan_compression(KAGGLE.table_sizes, 16, budget_params=20_000_000)
        tight = plan_compression(KAGGLE.table_sizes, 16, budget_params=2_000_000)
        assert tight.total_params() <= 2_000_000
        assert tight.compression_ratio() > loose.compression_ratio()

    def test_compresses_largest_first(self):
        plan = plan_compression(KAGGLE.table_sizes, 16, budget_params=300_000_000)
        compressed = plan.compressed_indices()
        if compressed:
            largest = max(range(26), key=lambda i: KAGGLE.table_sizes[i])
            assert largest in compressed

    def test_small_tables_stay_dense(self):
        plan = plan_compression(KAGGLE.table_sizes, 16, budget_params=5_000_000,
                                min_rows=100_000)
        for t in plan.tables:
            if t.num_rows < 100_000:
                assert not t.compress

    def test_impossible_budget_raises(self):
        with pytest.raises(ValueError, match="unreachable"):
            plan_compression(KAGGLE.table_sizes, 16, budget_params=1_000)

    def test_headline_budget_matches_paper_rank(self):
        """~4.6M params (18.4 MB) should pick rank 32 over 7 tables —
        the paper's headline configuration."""
        plan = plan_compression(KAGGLE.table_sizes, 16, budget_params=4_600_000)
        assert len(plan.compressed_indices()) >= 7
        ranks = {t.rank for t in plan.tables if t.compress}
        assert 16 <= max(ranks) <= 64

    def test_rank_query(self):
        plan = plan_compression(KAGGLE.table_sizes, 16, budget_params=10_000_000)
        idx = plan.compressed_indices()[0]
        assert plan.rank_for(idx) is not None
        with pytest.raises(KeyError):
            plan.rank_for(999)

    def test_validation(self):
        with pytest.raises(ValueError):
            plan_compression((100,), 16, budget_params=0)
        with pytest.raises(ValueError):
            plan_compression((100,), 16, budget_params=100,
                             candidate_ranks=(8, 4))
