"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestCommands:
    def test_table2(self, capsys):
        assert main(["table2", "--ranks", "16"]) == 0
        out = capsys.readouterr().out
        assert "10131227" in out
        assert "135040" in out  # exact paper value

    def test_sizes(self, capsys):
        assert main(["sizes", "--tables", "7"]) == 0
        out = capsys.readouterr().out
        assert "kaggle" in out and "terabyte" in out
        assert "117" in out  # the headline reduction

    def test_plan(self, capsys):
        assert main(["plan", "--budget-mb", "20", "--top", "8"]) == 0
        out = capsys.readouterr().out
        assert "compression" in out
        assert "TT" in out

    def test_plan_impossible_budget_raises(self):
        with pytest.raises(ValueError):
            main(["plan", "--budget-mb", "0.001"])

    def test_plan_kernel(self, capsys):
        assert main(["plan", "--kernel", "--rows", "5000", "--batch", "512",
                     "--zipf", "1.2", "--iters", "3", "--d", "4",
                     "--rank", "4"]) == 0
        out = capsys.readouterr().out
        assert "schedule" in out
        assert "chosen" in out
        assert "predicted" in out and "measured" in out
        assert "dedup removed" in out

    def test_plan_kernel_fixed_policy_no_dedup(self, capsys):
        assert main(["plan", "--kernel", "--rows", "2000", "--batch", "64",
                     "--iters", "2", "--policy", "l2r", "--no-dedup"]) == 0
        out = capsys.readouterr().out
        assert "l2r" in out

    def test_locality(self, capsys):
        assert main(["locality", "--rows", "2000", "--accesses", "20000",
                     "--k", "50"]) == 0
        out = capsys.readouterr().out
        assert "stabilises" in out

    def test_report_writes_markdown(self, tmp_path, capsys):
        out = tmp_path / "REPORT.md"
        assert main(["report", "--out", str(out)]) == 0
        body = out.read_text()
        assert body.startswith("# TT-Rec analysis report")
        assert "Paper Table 2" in body
        assert "135040" in body  # the exact Table 2 value
        assert body.count("## ") == 4

    def test_train_smoke(self, capsys):
        assert main(["train", "--iters", "15", "--scale", "0.0002"]) == 0
        out = capsys.readouterr().out
        assert "baseline" in out and "tt-rec" in out
        assert "ms/iter" in out

    def test_train_checkpoint_resume(self, tmp_path, capsys):
        args = ["train", "--iters", "20", "--scale", "0.0002",
                "--checkpoint-dir", str(tmp_path), "--checkpoint-every", "10"]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert (tmp_path / "baseline").is_dir()
        assert main(args + ["--resume"]) == 0
        resumed = capsys.readouterr().out
        assert "(resumed at 20)" in resumed
        # Bit-exact resume: identical eval metrics, modulo timing fields.
        strip = lambda s: [part for line in s.splitlines()
                           for part in line.split() if "=" in part]
        assert strip(first) == strip(resumed)

    def test_chaos_smoke(self, capsys):
        assert main(["chaos", "--iters", "40", "--scale", "0.0002",
                     "--tolerance", "1.0"]) == 0
        out = capsys.readouterr().out
        assert "fault-free" in out and "injector" in out and "PASS" in out

    def test_profile_smoke(self, capsys):
        assert main(["profile", "--iters", "12", "--scale", "0.0002"]) == 0
        out = capsys.readouterr().out
        # Span tree with per-core GEMM timings plus the two tables.
        assert "tt.forward.gemm[core=1]" in out
        assert "trainer.forward" in out
        assert "collective.allreduce" in out
        assert "cache.hits" in out
        assert "hit rate" in out

    def test_profile_emit_json(self, tmp_path, capsys):
        import json

        from repro.telemetry import read_events, validate_snapshot

        snap = tmp_path / "profile.json"
        events = tmp_path / "events.jsonl"
        assert main(["profile", "--iters", "12", "--scale", "0.0002",
                     "--emit-json", str(snap),
                     "--events-jsonl", str(events)]) == 0
        doc = json.loads(snap.read_text())
        validate_snapshot(doc)
        assert doc["command"] == "profile"
        counters = doc["metrics"]["counters"]
        assert any(k.startswith("cache.lookups") for k in counters)
        assert any(k.startswith("collective.bytes") for k in counters)
        assert "profile.train" in doc["spans"]
        assert read_events(events, event_type="cache.populate")

    def test_train_emit_json(self, tmp_path, capsys):
        import json

        from repro.telemetry import validate_snapshot

        snap = tmp_path / "train.json"
        assert main(["train", "--iters", "15", "--scale", "0.0002",
                     "--emit-json", str(snap)]) == 0
        doc = json.loads(snap.read_text())
        validate_snapshot(doc)
        assert doc["command"] == "train"
        models = doc["result"]["models"]
        assert set(models) == {"baseline", "tt-rec r16"}
        for m in models.values():
            assert m["iterations"] == 15
            assert m["ms_per_iter"] > 0
            assert m["ms_per_iter_steady"] > 0
            assert set(m["stage_ms_per_iter"]) >= {"data", "forward",
                                                   "backward", "optimizer"}

    def test_chaos_emit_json(self, tmp_path, capsys):
        import json

        from repro.telemetry import validate_snapshot

        snap = tmp_path / "chaos.json"
        assert main(["chaos", "--iters", "40", "--scale", "0.0002",
                     "--tolerance", "1.0", "--emit-json", str(snap)]) == 0
        doc = json.loads(snap.read_text())
        validate_snapshot(doc)
        assert doc["command"] == "chaos"
        assert doc["result"]["passed"] is True
        assert "injector" in doc["result"]

    def test_serve_bench_smoke(self, capsys):
        assert main(["serve-bench", "--requests", "120",
                     "--scale", "0.0003"]) == 0
        out = capsys.readouterr().out
        assert "latency" in out and "p99" in out
        assert "PASS" in out

    def test_serve_bench_chaos_emit_json(self, tmp_path, capsys):
        import json

        from repro.telemetry import read_events, validate_snapshot

        snap = tmp_path / "serve.json"
        events = tmp_path / "serve_events.jsonl"
        assert main(["serve-bench", "--requests", "250",
                     "--scale", "0.0003", "--fault-rate", "0.05",
                     "--emit-json", str(snap),
                     "--events-jsonl", str(events)]) == 0
        doc = json.loads(snap.read_text())
        validate_snapshot(doc)
        assert doc["command"] == "serve-bench"
        assert doc["result"]["passed"] is True
        report = doc["result"]["report"]
        assert report["non_finite_outputs"] == 0
        assert report["reconciliation"]["passed"] is True
        assert report["injector"]  # all three serving.* sites registered
        assert read_events(events, event_type="fault.fired")

    def test_serve_bench_rejects_malformed_without_crashing(self, capsys):
        assert main(["serve-bench", "--requests", "120",
                     "--scale", "0.0003", "--malformed", "0.3"]) == 0
        out = capsys.readouterr().out
        assert "rejected" in out
