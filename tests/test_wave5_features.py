"""Tests for wave-5 features: d=2/4 TT, NaN guard, clone_stream, Criteo scan."""

import numpy as np
import pytest

from repro.data import KAGGLE, SyntheticCTRDataset
from repro.data.criteo import scan_criteo_tsv
from repro.models import DLRMConfig, build_dlrm
from repro.ops.optim import SparseSGD
from repro.training import Trainer
from repro.tt import TTEmbeddingBag, TTShape
from tests.helpers import numeric_grad_check, random_csr


class TestTTGeneralDepth:
    """The kernels must work for any number of cores, not just d=3."""

    @pytest.mark.parametrize("d,row_factors,col_factors", [
        (2, (6, 10), (2, 4)),
        (4, (2, 3, 2, 5), (2, 2, 2, 1)),
        (5, (2, 2, 3, 2, 3), (2, 1, 2, 1, 2)),
    ])
    def test_forward_backward_any_depth(self, d, row_factors, col_factors):
        rows = int(np.prod(row_factors))
        dim = int(np.prod(col_factors))
        shape = TTShape.with_uniform_rank(rows, dim, row_factors, col_factors, 3)
        assert shape.d == d
        rng = np.random.default_rng(d)
        emb = TTEmbeddingBag(rows, dim, shape=shape, rng=0)
        # forward agrees with materialisation
        idx = rng.integers(0, rows, size=15)
        np.testing.assert_allclose(
            emb.lookup(idx), emb.materialize()[idx], atol=1e-11
        )
        # gradients correct
        idx, off = random_csr(rng, rows, 4)
        r = rng.normal(size=(4, dim))

        def loss():
            return float((emb.forward(idx, off) * r).sum())

        emb.forward(idx, off)
        emb.backward(r)
        for p in emb.cores:
            numeric_grad_check(p.data, p.grad, loss, samples=8)

    def test_nonuniform_ranks(self):
        shape = TTShape(60, 8, (3, 4, 5), (2, 2, 2), (1, 2, 7, 1))
        emb = TTEmbeddingBag(60, 8, shape=shape, rng=0)
        rng = np.random.default_rng(0)
        idx, off = random_csr(rng, 60, 4)
        r = rng.normal(size=(4, 8))

        def loss():
            return float((emb.forward(idx, off) * r).sum())

        emb.forward(idx, off)
        emb.backward(r)
        for p in emb.cores:
            numeric_grad_check(p.data, p.grad, loss, samples=8)


class TestNaNGuard:
    def test_divergence_raises_immediately(self):
        spec = KAGGLE.scaled(0.0002)
        cfg = DLRMConfig(table_sizes=spec.table_sizes, emb_dim=8,
                         bottom_mlp=(16,), top_mlp=(16,))
        model = build_dlrm(cfg, rng=0)
        # Poison the output layer's bias so logits are NaN. (Poisoning an
        # earlier layer would be masked: ReLU clips NaN to 0 since
        # ``nan > 0`` is False.)
        model.top_mlp.layers[-1].bias.data[:] = np.nan
        trainer = Trainer(model, lr=0.1)
        ds = SyntheticCTRDataset(spec, seed=0)
        with pytest.raises(FloatingPointError, match="diverged"):
            trainer.train_step(ds.batch(8))

    def test_healthy_training_unaffected(self):
        spec = KAGGLE.scaled(0.0002)
        cfg = DLRMConfig(table_sizes=spec.table_sizes, emb_dim=8,
                         bottom_mlp=(16,), top_mlp=(16,))
        trainer = Trainer(build_dlrm(cfg, rng=0), lr=0.1)
        ds = SyntheticCTRDataset(spec, seed=0)
        loss = trainer.train_step(ds.batch(8))
        assert np.isfinite(loss)


class TestCloneStream:
    @pytest.fixture(scope="class")
    def ds(self):
        return SyntheticCTRDataset(KAGGLE.scaled(0.0002), seed=0, noise=0.5)

    def test_same_planted_model(self, ds):
        clone = ds.clone_stream(seed=123)
        batch = ds.batch(64)
        np.testing.assert_allclose(
            ds.logits(batch.dense, batch.sparse),
            clone.logits(batch.dense, batch.sparse),
        )

    def test_independent_draws(self, ds):
        clone = ds.clone_stream(seed=123)
        a = ds.batch(16)
        b = clone.batch(16)
        assert not np.allclose(a.dense, b.dense)

    def test_clone_does_not_advance_parent(self, ds):
        clone = ds.clone_stream(seed=7)
        parent_before = SyntheticCTRDataset(
            KAGGLE.scaled(0.0002), seed=0, noise=0.5)
        # Consume from the clone only; the parent's next batch must match a
        # fresh dataset that consumed the same number of parent batches.
        for _ in range(3):
            clone.batch(8)
        a = ds.batch(8)
        # ds was used in earlier tests of this class; just check determinism
        # of the clone itself instead:
        c1 = ds.clone_stream(seed=7)
        c2 = ds.clone_stream(seed=7)
        np.testing.assert_allclose(c1.batch(8).dense, c2.batch(8).dense)

    def test_clone_deterministic_eval_set(self, ds):
        """The point of clone_stream: a fixed eval set for any model."""
        eval_a = [b.labels for b in ds.clone_stream(seed=9).batches(32, 3)]
        eval_b = [b.labels for b in ds.clone_stream(seed=9).batches(32, 3)]
        for x, y in zip(eval_a, eval_b):
            np.testing.assert_array_equal(x, y)


class TestCriteoScan:
    def make_file(self, tmp_path, rows):
        lines = []
        for label, cats in rows:
            ints = ["1"] * 13
            lines.append("\t".join([str(label)] + ints + cats))
        p = tmp_path / "raw.tsv"
        p.write_text("\n".join(lines) + "\n")
        return p

    def test_cardinalities_and_frequencies(self, tmp_path):
        rows = [
            (1, ["0000000a"] + ["0000000b"] * 25),
            (0, ["0000000a"] + ["0000000c"] * 25),
            (0, ["0000000d"] + ["0000000b"] * 25),
        ]
        path = self.make_file(tmp_path, rows)
        scan = scan_criteo_tsv(path)
        assert scan.num_samples == 3
        assert scan.positives == 1
        assert scan.click_rate == pytest.approx(1 / 3)
        cards = scan.cardinalities()
        assert cards[0] == 2  # values a, d
        assert cards[1] == 2  # values b, c
        top_vals, top_counts = scan.top_values(0, 1)
        assert top_vals[0] == 0xA
        assert top_counts[0] == 2

    def test_missing_values_not_counted(self, tmp_path):
        rows = [(0, [""] * 26)]
        scan = scan_criteo_tsv(self.make_file(tmp_path, rows))
        assert scan.cardinalities() == tuple([0] * 26)

    def test_max_samples(self, tmp_path):
        rows = [(0, ["00000001"] * 26)] * 5
        scan = scan_criteo_tsv(self.make_file(tmp_path, rows), max_samples=2)
        assert scan.num_samples == 2

    def test_malformed_line_raises(self, tmp_path):
        p = tmp_path / "bad.tsv"
        p.write_text("1\t2\t3\n")
        with pytest.raises(ValueError, match="expected"):
            scan_criteo_tsv(p)
