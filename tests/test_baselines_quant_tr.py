"""Tests for quantization and Tensor-Ring baselines."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import QuantizedEmbeddingBag, TREmbeddingBag, TRShape, quantize_rows
from repro.baselines.quantization import dequantize_rows
from repro.tt import TTEmbeddingBag, TTShape
from tests.helpers import numeric_grad_check, random_csr


class TestQuantizeRows:
    def test_roundtrip_error_bounded_by_half_step(self):
        rng = np.random.default_rng(0)
        table = rng.normal(size=(20, 8))
        for bits in (2, 4, 8):
            codes, scales, zp = quantize_rows(table, bits)
            approx = dequantize_rows(codes, scales, zp)
            step = scales.max()
            assert np.abs(approx - table).max() <= step / 2 + 1e-12

    def test_more_bits_less_error(self):
        rng = np.random.default_rng(1)
        table = rng.normal(size=(10, 16))
        errs = []
        for bits in (2, 4, 8):
            q = QuantizedEmbeddingBag.from_dense(table, bits=bits)
            errs.append(q.reconstruction_error(table))
        assert errs[0] > errs[1] > errs[2]

    def test_constant_rows_exact(self):
        table = np.full((3, 4), 2.5)
        codes, scales, zp = quantize_rows(table, 4)
        np.testing.assert_allclose(dequantize_rows(codes, scales, zp), table)

    def test_dtype_by_bits(self):
        table = np.random.default_rng(0).normal(size=(4, 4))
        assert quantize_rows(table, 8)[0].dtype == np.uint8
        assert quantize_rows(table, 12)[0].dtype == np.uint16

    def test_codes_within_levels(self):
        table = np.random.default_rng(0).normal(size=(10, 10))
        codes, _, _ = quantize_rows(table, 3)
        assert codes.max() <= 7

    def test_validation(self):
        with pytest.raises(ValueError):
            quantize_rows(np.zeros((2, 2)), bits=0)
        with pytest.raises(ValueError):
            quantize_rows(np.zeros(4), bits=4)


class TestQuantizedEmbeddingBag:
    def test_forward_pools_dequantized_rows(self):
        rng = np.random.default_rng(2)
        table = rng.normal(size=(30, 4))
        q = QuantizedEmbeddingBag.from_dense(table, bits=8)
        idx = np.array([3, 7])
        out = q.forward(idx, np.array([0, 2]))
        np.testing.assert_allclose(out[0], q.lookup(idx).sum(axis=0), atol=1e-12)

    def test_mean_mode(self):
        table = np.random.default_rng(3).normal(size=(30, 4))
        q = QuantizedEmbeddingBag.from_dense(table, bits=8, mode="mean")
        idx = np.array([1, 2])
        out = q.forward(idx, np.array([0, 2]))
        np.testing.assert_allclose(out[0], q.lookup(idx).mean(axis=0), atol=1e-12)

    def test_backward_raises(self):
        q = QuantizedEmbeddingBag.from_dense(np.zeros((4, 4)), bits=4)
        with pytest.raises(NotImplementedError):
            q.backward(np.ones((1, 4)))

    def test_4bit_compression_arithmetic(self):
        """dim=16 at 4 bits: 16*32 bits dense vs 16*4 + 2*32 bits -> 4x;
        the per-row scale/zero-point overhead caps it below the ideal 8x."""
        q = QuantizedEmbeddingBag.from_dense(
            np.random.default_rng(0).normal(size=(10_000, 16)), bits=4
        )
        assert q.compression_ratio() == pytest.approx(4.0)
        # wider rows amortise the overhead toward the ideal bits ratio
        q64 = QuantizedEmbeddingBag.from_dense(
            np.random.default_rng(0).normal(size=(1_000, 64)), bits=4
        )
        assert 6 < q64.compression_ratio() < 8.0

    def test_per_sample_weights(self):
        table = np.random.default_rng(4).normal(size=(10, 4))
        q = QuantizedEmbeddingBag.from_dense(table, bits=8)
        idx = np.array([1, 2])
        out = q.forward(idx, np.array([0, 2]), np.array([2.0, -1.0]))
        rows = q.lookup(idx)
        np.testing.assert_allclose(out[0], 2 * rows[0] - rows[1], atol=1e-12)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            QuantizedEmbeddingBag(np.zeros((4, 4), dtype=np.uint8),
                                  np.zeros(3), np.zeros(4), 4)


class TestTRShape:
    def test_validation(self):
        with pytest.raises(ValueError):
            TRShape(60, 8, (3, 4, 5), (2, 2, 2), (2, 4, 4, 3))  # ring mismatch
        with pytest.raises(ValueError):
            TRShape(100, 8, (3, 4, 5), (2, 2, 2), (2, 4, 4, 2))  # rows underflow
        with pytest.raises(ValueError):
            TRShape(60, 9, (3, 4, 5), (2, 2, 2), (2, 4, 4, 2))  # dim mismatch

    def test_suggested_params(self):
        s = TRShape.suggested(10_000, 16, d=3, rank=4)
        assert s.ring_rank == 4
        assert s.padded_rows >= 10_000
        assert s.num_params() == sum(
            np.prod(s.core_shape(k)) for k in range(3)
        )

    def test_decode_roundtrip_range(self):
        s = TRShape(60, 8, (3, 4, 5), (2, 2, 2), (2, 3, 3, 2))
        dec = s.decode_indices(np.arange(60))
        for k, m in enumerate(s.row_factors):
            assert dec[k].max() == m - 1
        with pytest.raises(IndexError):
            s.decode_indices(np.array([60]))


class TestTREmbeddingBag:
    @pytest.fixture
    def shape(self):
        return TRShape(60, 8, (3, 4, 5), (2, 2, 2), (3, 4, 4, 3))

    def test_forward_matches_trace_reference(self, shape):
        emb = TREmbeddingBag(60, 8, shape=shape, rng=1)
        idx = np.random.default_rng(0).integers(0, 60, size=10)
        dec = shape.decode_indices(idx)
        for b in range(idx.size):
            for j, (j1, j2, j3) in enumerate(np.ndindex(2, 2, 2)):
                chain = (emb.cores[0].data[dec[0, b], :, j1, :]
                         @ emb.cores[1].data[dec[1, b], :, j2, :]
                         @ emb.cores[2].data[dec[2, b], :, j3, :])
                assert emb.lookup(idx)[b, j] == pytest.approx(np.trace(chain))

    def test_ring_rank_one_equals_tt(self, shape):
        tr = TREmbeddingBag(60, 8, shape=TRShape(60, 8, (3, 4, 5), (2, 2, 2),
                                                 (1, 4, 4, 1)), rng=2)
        tt = TTEmbeddingBag(60, 8, shape=TTShape(60, 8, (3, 4, 5), (2, 2, 2),
                                                 (1, 4, 4, 1)), rng=3)
        tt.load_cores([p.data.copy() for p in tr.cores])
        idx = np.arange(60)
        np.testing.assert_allclose(tr.lookup(idx), tt.lookup(idx), atol=1e-12)

    @pytest.mark.parametrize("mode", ["sum", "mean"])
    def test_gradients(self, shape, mode):
        rng = np.random.default_rng(5)
        emb = TREmbeddingBag(60, 8, shape=shape, mode=mode, rng=1)
        idx, off = random_csr(rng, 60, 5)
        alpha = rng.normal(size=idx.size) if mode == "sum" else None
        r = rng.normal(size=(5, 8))

        def loss():
            return float((emb.forward(idx, off, alpha) * r).sum())

        emb.zero_grad()
        emb.forward(idx, off, alpha)
        emb.backward(r)
        for p in emb.cores:
            numeric_grad_check(p.data, p.grad, loss, samples=10)

    def test_init_variance_target(self):
        emb = TREmbeddingBag(512, 8, shape=TRShape(512, 8, (8, 8, 8), (2, 2, 2),
                                                   (3, 3, 3, 3)), rng=0)
        table = emb.materialize()
        assert table.var() == pytest.approx(1 / (3 * 512), rel=0.5)

    def test_compression_vs_tt_at_same_rank(self):
        """TR pays for the ring rank on both boundaries: lower compression
        than TT at matched internal rank — the paper's Related Work claim."""
        tr = TRShape.suggested(100_000, 16, d=3, rank=8)
        tt = TTShape.suggested(100_000, 16, d=3, rank=8)
        assert tr.compression_ratio() < tt.compression_ratio()

    def test_backward_before_forward(self, shape):
        with pytest.raises(RuntimeError):
            TREmbeddingBag(60, 8, shape=shape, rng=0).backward(np.ones((1, 8)))

    def test_validation(self, shape):
        with pytest.raises(ValueError):
            TREmbeddingBag(61, 8, shape=shape)
        with pytest.raises(ValueError):
            TREmbeddingBag(60, 8, shape=shape, mode="max")

    @given(st.integers(min_value=0, max_value=2 ** 31))
    @settings(max_examples=15, deadline=None)
    def test_property_pooling_linearity(self, seed):
        rng = np.random.default_rng(seed)
        emb = TREmbeddingBag(60, 8,
                             shape=TRShape(60, 8, (3, 4, 5), (2, 2, 2),
                                           (2, 3, 3, 2)),
                             rng=int(rng.integers(1 << 30)))
        idx = rng.integers(0, 60, size=5).astype(np.int64)
        bag = emb.forward(idx, np.array([0, 5]))
        singles = emb.lookup(idx)
        np.testing.assert_allclose(bag[0], singles.sum(axis=0), atol=1e-10)
