"""Tests for metrics and the Trainer loop."""

import numpy as np
import pytest

from repro.data import KAGGLE, SyntheticCTRDataset
from repro.models import DLRMConfig, build_dlrm
from repro.training import Trainer
from repro.training.metrics import accuracy, bce_loss, roc_auc


class TestAccuracy:
    def test_perfect(self):
        logits = np.array([5.0, -5.0, 5.0])
        labels = np.array([1.0, 0.0, 1.0])
        assert accuracy(logits, labels) == 1.0

    def test_half(self):
        assert accuracy(np.array([5.0, 5.0]), np.array([1.0, 0.0])) == 0.5

    def test_custom_threshold(self):
        logits = np.array([0.1])  # p ~ 0.525
        assert accuracy(logits, np.array([1.0]), threshold=0.5) == 1.0
        assert accuracy(logits, np.array([1.0]), threshold=0.6) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            accuracy(np.zeros(2), np.zeros(3))
        with pytest.raises(ValueError):
            accuracy(np.zeros(0), np.zeros(0))


class TestAUC:
    def test_perfect_separation(self):
        assert roc_auc(np.array([1.0, 2.0, -1.0]), np.array([1, 1, 0.0])) == 1.0

    def test_inverted(self):
        assert roc_auc(np.array([-1.0, 1.0]), np.array([1, 0.0])) == 0.0

    def test_random_is_half(self):
        rng = np.random.default_rng(0)
        scores = rng.normal(size=20_000)
        labels = (rng.random(20_000) > 0.5).astype(float)
        assert roc_auc(scores, labels) == pytest.approx(0.5, abs=0.02)

    def test_ties_average(self):
        # all scores equal -> AUC exactly 0.5 regardless of labels
        assert roc_auc(np.zeros(10), np.array([1, 0] * 5, dtype=float)) == 0.5

    def test_single_class(self):
        assert roc_auc(np.array([1.0, 2.0]), np.array([1.0, 1.0])) == 0.5

    def test_matches_pairwise_oracle(self):
        rng = np.random.default_rng(1)
        scores = rng.normal(size=50)
        labels = (rng.random(50) > 0.5).astype(float)
        pos = scores[labels == 1]
        neg = scores[labels == 0]
        wins = (pos[:, None] > neg[None, :]).sum() + 0.5 * (pos[:, None] == neg[None, :]).sum()
        oracle = wins / (pos.size * neg.size)
        assert roc_auc(scores, labels) == pytest.approx(oracle)


class TestBCELoss:
    def test_matches_training_loss(self):
        logits = np.array([0.3, -0.7])
        labels = np.array([1.0, 0.0])
        # direct formula: softplus(z) - y*z
        sp = np.log1p(np.exp(-np.abs(logits))) + np.maximum(logits, 0)
        expected = float(np.mean(sp - labels * logits))
        assert bce_loss(logits, labels) == pytest.approx(expected)


class TestTrainer:
    @pytest.fixture(scope="class")
    def setup(self):
        spec = KAGGLE.scaled(0.0003)
        ds = SyntheticCTRDataset(spec, seed=0, noise=0.6)
        cfg = DLRMConfig(table_sizes=spec.table_sizes, emb_dim=8,
                         bottom_mlp=(16,), top_mlp=(16,))
        return spec, ds, cfg

    def test_loss_decreases(self, setup):
        _, ds, cfg = setup
        trainer = Trainer(build_dlrm(cfg, rng=0), lr=0.1)
        res = trainer.train(ds.batches(64, 120))
        assert res.iterations == 120
        early = float(np.mean(res.losses[:20]))
        late = res.smoothed_loss(20)
        assert late < early - 0.02

    def test_max_iters_truncates(self, setup):
        _, ds, cfg = setup
        trainer = Trainer(build_dlrm(cfg, rng=0), lr=0.1)
        res = trainer.train(ds.batches(32, 50), max_iters=5)
        assert res.iterations == 5

    def test_timing_recorded(self, setup):
        _, ds, cfg = setup
        trainer = Trainer(build_dlrm(cfg, rng=0), lr=0.1)
        res = trainer.train(ds.batches(32, 5))
        assert res.total_time_s > 0
        assert res.ms_per_iter > 0

    def test_evaluate_better_than_chance_after_training(self, setup):
        _, ds, cfg = setup
        trainer = Trainer(build_dlrm(cfg, rng=0), lr=0.1)
        trainer.train(ds.batches(64, 150))
        ev = trainer.evaluate(ds.batches(256, 8))
        assert ev.num_samples == 2048
        assert ev.auc > 0.62
        assert ev.accuracy > 0.55

    def test_evaluate_empty_raises(self, setup):
        _, ds, cfg = setup
        trainer = Trainer(build_dlrm(cfg, rng=0), lr=0.1)
        with pytest.raises(ValueError):
            trainer.evaluate([])

    def test_evaluate_applies_per_sample_weights(self, setup):
        """evaluate must forward with the batch's pooling weights (it used
        to drop them, silently evaluating a different model)."""
        _, ds, cfg = setup
        model = build_dlrm(cfg, rng=0)
        trainer = Trainer(model, lr=0.1)
        batch = next(iter(ds.batches(64, 1)))
        rng = np.random.default_rng(5)
        weighted = batch.__class__(
            dense=batch.dense,
            sparse=batch.sparse,
            labels=batch.labels,
            per_sample_weights=[rng.uniform(0.5, 2.0, size=idx.shape)
                                for idx, _ in batch.sparse],
        )
        ev = trainer.evaluate([weighted])
        logits = model.forward(weighted.dense, weighted.sparse,
                               weighted.per_sample_weights)
        unweighted = model.forward(weighted.dense, weighted.sparse)
        assert not np.allclose(logits, unweighted)
        from repro.training.metrics import bce_loss
        assert ev.bce == pytest.approx(bce_loss(logits, weighted.labels))

    def test_log_callback(self, setup):
        _, ds, cfg = setup
        trainer = Trainer(build_dlrm(cfg, rng=0), lr=0.1)
        logged = []
        trainer.train(ds.batches(16, 4), log_every=2, log_fn=logged.append)
        assert len(logged) == 2

    def test_empty_result_properties(self):
        from repro.training import TrainResult

        res = TrainResult()
        assert res.ms_per_iter == 0.0
        assert np.isnan(res.final_loss)
        assert np.isnan(res.smoothed_loss())


class TestTimingBreakdown:
    @pytest.fixture(scope="class")
    def setup(self):
        spec = KAGGLE.scaled(0.0003)
        ds = SyntheticCTRDataset(spec, seed=0, noise=0.6)
        cfg = DLRMConfig(table_sizes=spec.table_sizes, emb_dim=8,
                         bottom_mlp=(16,), top_mlp=(16,))
        return ds, cfg

    def test_per_iter_and_stage_times(self, setup):
        ds, cfg = setup
        trainer = Trainer(build_dlrm(cfg, rng=0), lr=0.1)
        res = trainer.train(ds.batches(32, 10))
        assert len(res.per_iter_ms) == 10
        assert all(ms > 0 for ms in res.per_iter_ms)
        for stage in ("data", "forward", "backward", "optimizer"):
            assert res.stage_time_s[stage] > 0
        # Stage accounting cannot exceed the measured wall-clock.
        assert sum(res.stage_time_s.values()) <= res.total_time_s * 1.01

    def test_steady_state_excludes_warmup(self, setup):
        ds, cfg = setup
        trainer = Trainer(build_dlrm(cfg, rng=0), lr=0.1)
        res = trainer.train(ds.batches(32, 10))
        expected = float(np.mean(res.per_iter_ms[1:]))
        assert res.ms_per_iter_steady == pytest.approx(expected)
        # Overall mean still covers every executed iteration.
        assert res.ms_per_iter == pytest.approx(
            1000.0 * res.total_time_s / 10)

    def test_timing_breakdown_covers_wallclock(self, setup):
        ds, cfg = setup
        trainer = Trainer(build_dlrm(cfg, rng=0), lr=0.1)
        res = trainer.train(ds.batches(32, 8))
        bd = res.timing_breakdown()
        assert set(bd) == {"data", "forward", "backward", "optimizer",
                           "checkpoint", "other"}
        assert bd["checkpoint"] == 0.0  # no checkpointing configured
        assert sum(bd.values()) == pytest.approx(res.ms_per_iter, rel=0.05)

    def test_empty_result_timing(self):
        from repro.training import TrainResult

        res = TrainResult()
        assert res.ms_per_iter_steady == 0.0
        assert res.timing_breakdown() == {}
        assert res.per_iter_ms == [] and res.stage_time_s == {}
