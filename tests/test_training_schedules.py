"""Tests for LR schedules and the scheduler wrapper."""

import numpy as np
import pytest

from repro.ops import SGD
from repro.ops.module import Parameter
from repro.training.schedules import (
    LRScheduler,
    constant_schedule,
    step_decay_schedule,
    warmup_poly_decay_schedule,
)


class TestConstant:
    def test_always_one(self):
        s = constant_schedule()
        assert s(0) == s(10) == s(10_000) == 1.0


class TestWarmupPolyDecay:
    def test_linear_warmup(self):
        s = warmup_poly_decay_schedule(warmup_steps=4, decay_start_step=10,
                                       decay_steps=10)
        assert s(0) == pytest.approx(0.25)
        assert s(1) == pytest.approx(0.5)
        assert s(3) == pytest.approx(1.0)

    def test_plateau(self):
        s = warmup_poly_decay_schedule(warmup_steps=2, decay_start_step=10,
                                       decay_steps=10)
        assert s(5) == 1.0
        assert s(9) == 1.0

    def test_quadratic_decay(self):
        s = warmup_poly_decay_schedule(warmup_steps=0, decay_start_step=0,
                                       decay_steps=10, power=2.0)
        assert s(5) == pytest.approx(0.25)
        assert s(10) == 0.0
        assert s(100) == 0.0

    def test_end_multiplier_floor(self):
        s = warmup_poly_decay_schedule(warmup_steps=0, decay_start_step=0,
                                       decay_steps=4, end_multiplier=0.1)
        assert s(4) == pytest.approx(0.1)
        assert s(2) > 0.1

    def test_zero_decay_steps_never_decays(self):
        s = warmup_poly_decay_schedule(warmup_steps=2, decay_start_step=5,
                                       decay_steps=0)
        assert s(1_000_000) == 1.0

    def test_monotone_structure(self):
        s = warmup_poly_decay_schedule(warmup_steps=10, decay_start_step=20,
                                       decay_steps=30)
        vals = [s(i) for i in range(60)]
        assert vals[:10] == sorted(vals[:10])  # warmup ascending
        assert vals[20:] == sorted(vals[20:], reverse=True)  # decay descending

    def test_validation(self):
        with pytest.raises(ValueError):
            warmup_poly_decay_schedule(warmup_steps=-1, decay_start_step=0,
                                       decay_steps=0)
        with pytest.raises(ValueError):
            warmup_poly_decay_schedule(warmup_steps=10, decay_start_step=5,
                                       decay_steps=0)
        with pytest.raises(ValueError):
            warmup_poly_decay_schedule(warmup_steps=0, decay_start_step=0,
                                       decay_steps=1, end_multiplier=2.0)


class TestStepDecay:
    def test_staircase(self):
        s = step_decay_schedule(decay_every=10, factor=0.5)
        assert s(0) == 1.0
        assert s(9) == 1.0
        assert s(10) == 0.5
        assert s(25) == 0.25

    def test_floor(self):
        s = step_decay_schedule(decay_every=1, factor=0.1, min_multiplier=1e-3)
        assert s(100) == 1e-3

    def test_validation(self):
        with pytest.raises(ValueError):
            step_decay_schedule(decay_every=0)
        with pytest.raises(ValueError):
            step_decay_schedule(decay_every=5, factor=1.0)


class TestLRScheduler:
    def test_sets_optimizer_lr(self):
        p = Parameter(np.zeros(2))
        opt = SGD([p], lr=0.2)
        sched = LRScheduler(opt, warmup_poly_decay_schedule(
            warmup_steps=2, decay_start_step=4, decay_steps=0))
        assert sched.step() == pytest.approx(0.1)
        assert opt.lr == pytest.approx(0.1)
        assert sched.step() == pytest.approx(0.2)
        sched.step()
        assert sched.current_lr == pytest.approx(0.2)

    def test_scheduled_training_actually_scales_updates(self):
        p = Parameter(np.array([0.0]))
        opt = SGD([p], lr=1.0)
        sched = LRScheduler(opt, step_decay_schedule(decay_every=1, factor=0.5))
        for _ in range(3):
            p.grad[:] = 1.0
            sched.step()
            opt.step()
            opt.zero_grad()
        # updates: 1.0, 0.5, 0.25
        assert p.data[0] == pytest.approx(-1.75)

    def test_rejects_bad_optimizer(self):
        with pytest.raises(TypeError):
            LRScheduler(object(), constant_schedule())
