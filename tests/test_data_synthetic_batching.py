"""Tests for synthetic CTR data generation and batching."""

import numpy as np
import pytest

from repro.data import KAGGLE, Batch, SyntheticCTRDataset, make_offsets
from repro.data.synthetic import hash_gaussian


@pytest.fixture(scope="module")
def spec():
    return KAGGLE.scaled(0.0005)


class TestMakeOffsets:
    def test_basic(self):
        np.testing.assert_array_equal(make_offsets(np.array([2, 0, 3])), [0, 2, 2, 5])

    def test_empty(self):
        np.testing.assert_array_equal(make_offsets(np.array([], dtype=np.int64)), [0])

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            make_offsets(np.array([1, -1]))

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            make_offsets(np.zeros((2, 2), dtype=np.int64))


class TestBatch:
    def test_validates_bag_counts(self):
        with pytest.raises(ValueError):
            Batch(
                dense=np.zeros((2, 3)),
                sparse=[(np.array([0]), np.array([0, 1]))],  # 1 bag, batch 2
                labels=np.zeros(2),
            )

    def test_validates_labels(self):
        with pytest.raises(ValueError):
            Batch(dense=np.zeros((2, 3)), sparse=[], labels=np.zeros(3))

    def test_num_lookups(self):
        b = Batch(
            dense=np.zeros((2, 3)),
            sparse=[
                (np.array([0, 1]), np.array([0, 1, 2])),
                (np.array([0, 1, 2]), np.array([0, 2, 3])),
            ],
            labels=np.zeros(2),
        )
        assert b.num_lookups() == 5
        assert b.size == 2


class TestHashGaussian:
    def test_deterministic(self):
        keys = np.arange(100)
        np.testing.assert_array_equal(
            hash_gaussian(keys, salt=3, dim=4), hash_gaussian(keys, salt=3, dim=4)
        )

    def test_salt_changes_values(self):
        keys = np.arange(100)
        a = hash_gaussian(keys, salt=1, dim=4)
        b = hash_gaussian(keys, salt=2, dim=4)
        assert not np.allclose(a, b)

    def test_approximately_standard_normal(self):
        x = hash_gaussian(np.arange(50_000), salt=0, dim=2).ravel()
        assert abs(x.mean()) < 0.02
        assert x.std() == pytest.approx(1.0, abs=0.02)
        # rough shape: ~68% within one sigma
        assert np.mean(np.abs(x) < 1) == pytest.approx(0.6827, abs=0.02)

    def test_odd_dim(self):
        assert hash_gaussian(np.arange(10), salt=0, dim=3).shape == (10, 3)


class TestSyntheticCTRDataset:
    def test_batch_layout(self, spec):
        ds = SyntheticCTRDataset(spec, seed=0)
        b = ds.batch(32)
        assert b.dense.shape == (32, 13)
        assert len(b.sparse) == 26
        assert set(np.unique(b.labels)) <= {0.0, 1.0}
        for t, (idx, off) in enumerate(b.sparse):
            assert off.shape == (33,)
            assert idx.max() < spec.table_sizes[t]

    def test_pooling_factor_one_is_single_lookup(self, spec):
        ds = SyntheticCTRDataset(spec, seed=0, pooling_factor=1.0)
        b = ds.batch(16)
        for idx, off in b.sparse:
            np.testing.assert_array_equal(np.diff(off), 1)

    def test_pooling_factor_mean(self, spec):
        ds = SyntheticCTRDataset(spec, seed=0, pooling_factor=10.0)
        b = ds.batch(256)
        counts = np.diff(b.sparse[0][1])
        assert counts.min() >= 1
        assert counts.mean() == pytest.approx(10.0, rel=0.15)

    def test_labels_correlate_with_planted_logits(self, spec):
        ds = SyntheticCTRDataset(spec, seed=1, noise=0.5)
        b = ds.batch(4096)
        z = ds.logits(b.dense, b.sparse)
        # positive-label mean logit exceeds negative-label mean logit
        assert z[b.labels == 1].mean() > z[b.labels == 0].mean() + 0.1

    def test_same_seed_same_stream(self, spec):
        a = SyntheticCTRDataset(spec, seed=7).batch(8)
        b = SyntheticCTRDataset(spec, seed=7).batch(8)
        np.testing.assert_array_equal(a.labels, b.labels)
        np.testing.assert_allclose(a.dense, b.dense)
        for (ia, _), (ib, _) in zip(a.sparse, b.sparse):
            np.testing.assert_array_equal(ia, ib)

    def test_batches_iterator(self, spec):
        ds = SyntheticCTRDataset(spec, seed=0)
        batches = list(ds.batches(4, 3))
        assert len(batches) == 3
        assert all(b.size == 4 for b in batches)

    def test_access_stream_skewed(self, spec):
        ds = SyntheticCTRDataset(spec, seed=0, zipf_s=1.2)
        table = spec.largest(1)[0]
        stream = ds.access_stream(table, 20_000)
        counts = np.bincount(stream)
        top10 = np.sort(counts)[-10:].sum()
        assert top10 / stream.size > 0.1  # heavy concentration

    def test_validation(self, spec):
        with pytest.raises(ValueError):
            SyntheticCTRDataset(spec, pooling_factor=0.5)
        with pytest.raises(ValueError):
            SyntheticCTRDataset(spec, latent_dim=0)
        with pytest.raises(ValueError):
            SyntheticCTRDataset(spec, noise=-1.0)
        ds = SyntheticCTRDataset(spec, seed=0)
        with pytest.raises(ValueError):
            ds.batch(0)
        with pytest.raises(ValueError):
            ds.access_stream(99, 10)
