"""Tests for the feature-hashing and low-rank embedding baselines."""

import numpy as np
import pytest

from repro.baselines import HashedEmbeddingBag, LowRankEmbeddingBag
from tests.helpers import numeric_grad_check, random_csr


class TestHashedEmbeddingBag:
    def test_compression_ratio(self):
        emb = HashedEmbeddingBag(10_000, 8, num_buckets=100, rng=0)
        assert emb.compression_ratio() == 100.0
        assert emb.num_parameters() == 100 * 8

    def test_deterministic_mapping(self):
        emb = HashedEmbeddingBag(1000, 4, num_buckets=50, rng=0)
        idx = np.arange(100)
        np.testing.assert_allclose(emb.lookup(idx), emb.lookup(idx))

    def test_collisions_share_rows(self):
        emb = HashedEmbeddingBag(1000, 4, num_buckets=2, rng=0)
        rows = emb.lookup(np.arange(100))
        # With 2 buckets there are at most 2 distinct unsigned rows.
        assert np.unique(np.round(rows, 12), axis=0).shape[0] <= 2

    def test_signed_hash_flips_some_rows(self):
        emb = HashedEmbeddingBag(1000, 4, num_buckets=2, signed=True, rng=0)
        rows = emb.lookup(np.arange(200))
        # signed variant can produce up to 4 distinct rows (2 buckets x ±1)
        distinct = np.unique(np.round(rows, 12), axis=0).shape[0]
        assert 2 < distinct <= 4

    def test_forward_matches_underlying_table(self):
        emb = HashedEmbeddingBag(500, 4, num_buckets=32, rng=0)
        idx = np.array([7, 13])
        out = emb.forward(idx, np.array([0, 2]))
        np.testing.assert_allclose(out[0], emb.lookup(idx).sum(axis=0), atol=1e-12)

    def test_gradient_flows_to_buckets(self):
        rng = np.random.default_rng(0)
        emb = HashedEmbeddingBag(200, 4, num_buckets=16, signed=True, rng=0)
        idx, off = random_csr(rng, 200, 5)
        r = rng.normal(size=(5, 4))

        def loss():
            return float((emb.forward(idx, off) * r).sum())

        emb.zero_grad()
        emb.forward(idx, off)
        emb.backward(r)
        numeric_grad_check(emb.table.weight.data, emb.table.weight.grad, loss,
                           samples=20)

    def test_collision_rate_increases_with_compression(self):
        low = HashedEmbeddingBag(10_000, 4, num_buckets=5_000, rng=0)
        high = HashedEmbeddingBag(10_000, 4, num_buckets=100, rng=0)
        assert high.collision_rate(rng=0) > low.collision_rate(rng=0)

    def test_validation(self):
        with pytest.raises(ValueError):
            HashedEmbeddingBag(100, 4, num_buckets=0)
        with pytest.raises(ValueError):
            HashedEmbeddingBag(100, 4, num_buckets=200)

    def test_salt_changes_mapping(self):
        a = HashedEmbeddingBag(1000, 4, num_buckets=64, salt=0, rng=0)
        b = HashedEmbeddingBag(1000, 4, num_buckets=64, salt=1, rng=0)
        ha, _ = a._hash(np.arange(100))
        hb, _ = b._hash(np.arange(100))
        assert not np.array_equal(ha, hb)


class TestLowRankEmbeddingBag:
    def test_lookup_is_factor_product(self):
        emb = LowRankEmbeddingBag(100, 8, rank=3, rng=0)
        idx = np.array([5, 10])
        expected = emb.factor_a.data[idx] @ emb.factor_b.data
        np.testing.assert_allclose(emb.lookup(idx), expected)

    def test_materialize_shape_and_rank(self):
        emb = LowRankEmbeddingBag(50, 8, rank=2, rng=0)
        table = emb.materialize()
        assert table.shape == (50, 8)
        assert np.linalg.matrix_rank(table) <= 2

    def test_compression_ratio(self):
        emb = LowRankEmbeddingBag(1000, 16, rank=4, rng=0)
        expected = 1000 * 16 / (1000 * 4 + 4 * 16)
        assert emb.compression_ratio() == pytest.approx(expected)

    def test_init_variance_matches_dlrm_default(self):
        emb = LowRankEmbeddingBag(400, 64, rank=16, rng=0)
        table = emb.materialize()
        assert table.var() == pytest.approx(1 / (3 * 400), rel=0.4)

    @pytest.mark.parametrize("mode", ["sum", "mean"])
    def test_gradients(self, mode):
        rng = np.random.default_rng(1)
        emb = LowRankEmbeddingBag(60, 6, rank=3, mode=mode, rng=0)
        idx, off = random_csr(rng, 60, 5)
        alpha = rng.normal(size=idx.size) if mode == "sum" else None
        r = rng.normal(size=(5, 6))

        def loss():
            return float((emb.forward(idx, off, alpha) * r).sum())

        emb.zero_grad()
        emb.forward(idx, off, alpha)
        emb.backward(r)
        numeric_grad_check(emb.factor_a.data, emb.factor_a.grad, loss, samples=15)
        numeric_grad_check(emb.factor_b.data, emb.factor_b.grad, loss, samples=15)

    def test_pooling_matches_row_sum(self):
        emb = LowRankEmbeddingBag(60, 6, rank=3, rng=0)
        idx = np.array([1, 2, 3])
        out = emb.forward(idx, np.array([0, 3]))
        np.testing.assert_allclose(out[0], emb.lookup(idx).sum(axis=0), atol=1e-12)

    def test_empty_bag(self):
        emb = LowRankEmbeddingBag(60, 6, rank=3, rng=0)
        out = emb.forward(np.array([1]), np.array([0, 0, 1]))
        np.testing.assert_allclose(out[0], 0.0)

    def test_touched_rows_recorded(self):
        emb = LowRankEmbeddingBag(60, 6, rank=3, rng=0)
        emb.forward(np.array([9, 4, 9]), np.array([0, 3]))
        emb.backward(np.ones((1, 6)))
        np.testing.assert_array_equal(emb.factor_a.touched_rows, [4, 9])

    def test_validation(self):
        with pytest.raises(ValueError):
            LowRankEmbeddingBag(100, 8, rank=0)
        with pytest.raises(ValueError):
            LowRankEmbeddingBag(100, 8, rank=9)
        with pytest.raises(ValueError):
            LowRankEmbeddingBag(100, 8, rank=4, mode="max")
        emb = LowRankEmbeddingBag(100, 8, rank=4, rng=0)
        with pytest.raises(RuntimeError):
            emb.backward(np.ones((1, 8)))
