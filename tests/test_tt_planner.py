"""Batch execution planner: schedule equivalence, cost model, buffers.

The load-bearing property (ISSUE 5): every contraction schedule, with and
without dedup, produces the same rows as the naive per-row reference, and
the planned path's core gradients are *bit-identical* to the unplanned
fixed-l2r path (backward always consumes l2r left partials).
"""

from __future__ import annotations

import numpy as np
import pytest

from tests.helpers import random_csr
from repro.telemetry import get_registry
from repro.tt import TTEmbeddingBag, TTShape, candidate_schedules, schedule_cost
from repro.tt.kernels import tt_lookup_reference
from repro.tt.planner import BufferPool, ExecutionPlanner, _bucket
from repro.utils.seeding import as_rng

# d=3 (the common case) and d=4 (where interior splits are distinct
# schedules and auto genuinely picks a non-l2r order).
SHAPE_D3 = TTShape(num_rows=120, dim=16, row_factors=(4, 5, 6),
                   col_factors=(2, 2, 4), ranks=(1, 3, 3, 1))
SHAPE_D4 = TTShape(num_rows=360, dim=16, row_factors=(3, 4, 5, 6),
                   col_factors=(2, 2, 2, 2), ranks=(1, 5, 5, 5, 1))

POLICIES_D3 = ["fixed", "l2r", "r2l", "split:1", "split:2", "auto"]
POLICIES_D4 = ["fixed", "r2l", "split:1", "split:2", "split:3", "auto"]


def make_emb(shape: TTShape, policy: str, *, dedup: bool,
             mode: str = "sum", store_intermediates: bool = True,
             rng: int = 0) -> TTEmbeddingBag:
    return TTEmbeddingBag(shape.num_rows, shape.dim, shape=shape,
                          plan_policy=policy, dedup=dedup, mode=mode,
                          store_intermediates=store_intermediates, rng=rng)


# --------------------------------------------------------------------- #
# Cost model
# --------------------------------------------------------------------- #

def test_l2r_flops_match_hand_count():
    # l2r on SHAPE_D3: (1, n1*R1) then two GEMMs:
    #   k=1: (P=2, R1=3) @ (3, 2*3)  -> 2*2*3*6  = 72 flops
    #   k=2: (P=4, R2=3) @ (3, 4*1)  -> 2*4*3*4  = 96 flops
    s = schedule_cost(SHAPE_D3, "l2r")
    assert s.flops_per_row == 72 + 96
    assert s.gemms == 2

    r = schedule_cost(SHAPE_D3, "r2l")
    #   k=1: (R1*n2=6, R2=3) @ (3, Q=4) -> 2*6*3*4 = 144
    #   k=0: (1*2, R1=3) @ (3, Q=8)     -> 2*2*3*8 = 96
    assert r.flops_per_row == 144 + 96
    assert r.gemms == 2


def test_boundary_splits_equal_sweeps():
    # ranks[0] == ranks[d] == 1 make split@1 cost-identical to r2l and
    # split@(d-1) cost-identical to l2r (same GEMMs, one relabelled).
    for shape in (SHAPE_D3, SHAPE_D4):
        l2r = schedule_cost(shape, "l2r")
        r2l = schedule_cost(shape, "r2l")
        first = schedule_cost(shape, "split", 1)
        last = schedule_cost(shape, "split", shape.d - 1)
        assert first.flops_per_row == r2l.flops_per_row
        assert last.flops_per_row == l2r.flops_per_row


def test_auto_picks_interior_split_on_d4():
    # On SHAPE_D4 the split@2 order does 560 FLOPs/row vs 760 for l2r,
    # so auto must not pick l2r for lookup-only batches...
    flops = {s.label: s.flops_per_row for s in candidate_schedules(SHAPE_D4)}
    assert flops["split@2"] < flops["l2r"]
    planner = ExecutionPlanner(SHAPE_D4, "auto")
    assert planner.schedule_for(256).label == "split@2"
    # ...but any batch that must produce Algorithm-2 left partials is
    # pinned to l2r regardless of policy.
    assert planner.schedule_for(256, need_lefts=True).label == "l2r"


def test_auto_breaks_ties_toward_l2r():
    # Fully symmetric shape: every candidate costs the same, so auto must
    # fall back to l2r (list order) and stay bit-compatible with the
    # pre-planner behaviour on the common path.
    shape = TTShape.suggested(1000, 8, d=3, rank=4)
    assert len(set(s.flops_per_row for s in candidate_schedules(shape))) <= 2
    planner = ExecutionPlanner(shape, "auto")
    chosen = planner.schedule_for(64)
    if chosen.flops_per_row == planner.candidates[0].flops_per_row:
        assert chosen.label == "l2r"


# --------------------------------------------------------------------- #
# Schedule equivalence (the property test)
# --------------------------------------------------------------------- #

@pytest.mark.parametrize("shape,policy", [(SHAPE_D3, p) for p in POLICIES_D3]
                         + [(SHAPE_D4, p) for p in POLICIES_D4])
@pytest.mark.parametrize("dedup", [False, True], ids=["nodedup", "dedup"])
def test_lookup_matches_reference(shape, policy, dedup):
    emb = make_emb(shape, policy, dedup=dedup)
    rng = as_rng(7)
    # Duplicate-heavy batch so dedup actually collapses something.
    idx = rng.integers(0, shape.num_rows, size=300)
    idx[:100] = idx[0]
    expected = tt_lookup_reference([p.data for p in emb.cores], shape, idx)
    np.testing.assert_allclose(emb.lookup(idx), expected, atol=1e-12)


@pytest.mark.parametrize("shape,policy", [(SHAPE_D3, p) for p in POLICIES_D3]
                         + [(SHAPE_D4, p) for p in POLICIES_D4])
@pytest.mark.parametrize("dedup", [False, True], ids=["nodedup", "dedup"])
@pytest.mark.parametrize("bags", ["mean_empty", "weighted"])
def test_forward_matches_unplanned(shape, policy, dedup, bags):
    """Every schedule x dedup x pooling arm equals the fixed-l2r path."""
    rng = as_rng(11)
    indices, offsets = random_csr(rng, shape.num_rows, 17, max_bag=6,
                                  allow_empty=True)
    indices[: indices.size // 3] = indices[0]  # force duplicates
    if bags == "weighted":
        mode, weights = "sum", rng.normal(size=indices.size)
    else:
        mode, weights = "mean", None
        offsets = np.concatenate([offsets, [offsets[-1]]])  # trailing empty bag

    ref = make_emb(shape, "l2r", dedup=False, mode=mode)
    emb = make_emb(shape, policy, dedup=dedup, mode=mode)
    out_ref = ref.forward(indices, offsets, weights)
    out = emb.forward(indices, offsets, weights)
    np.testing.assert_allclose(out, out_ref, atol=1e-12)

    grad = rng.normal(size=out.shape)
    ref.zero_grad()
    emb.zero_grad()
    ref.backward(grad)
    emb.backward(grad)
    for pr, pe in zip(ref.cores, emb.cores):
        np.testing.assert_allclose(pe.grad, pr.grad, atol=1e-12)


def test_planned_grads_bit_identical_to_unplanned():
    """auto (non-l2r lookup schedule) still yields bit-exact l2r grads."""
    rng = as_rng(3)
    indices, offsets = random_csr(rng, SHAPE_D4.num_rows, 9, max_bag=5,
                                  allow_empty=True)
    grad = rng.normal(size=(offsets.size - 1, SHAPE_D4.dim))
    outs, grads, scheds = [], [], []
    for policy in ("l2r", "auto"):
        for store in (True, False):
            emb = make_emb(SHAPE_D4, policy, dedup=False,
                           store_intermediates=store)
            out = emb.forward(indices, offsets)
            emb.zero_grad()
            emb.backward(grad)
            outs.append(out)
            grads.append([p.grad.copy() for p in emb.cores])
            scheds.append(emb.planner.schedule_for(
                indices.size, need_lefts=store).label)
    # auto + recompute-intermediates is the one arm whose *forward* runs a
    # non-l2r schedule; its output differs only in float association.
    assert scheds == ["l2r", "l2r", "l2r", "split@2"]
    for out, sched in zip(outs[1:], scheds[1:]):
        if sched == "l2r":
            assert np.array_equal(out, outs[0])
        else:
            np.testing.assert_allclose(out, outs[0], atol=1e-12)
    # Gradients always flow through l2r left partials: bit-exact everywhere.
    for gset in grads[1:]:
        for g, g0 in zip(gset, grads[0]):
            assert np.array_equal(g, g0)


def test_empty_batch_every_policy():
    for policy in POLICIES_D3:
        emb = make_emb(SHAPE_D3, policy, dedup=True)
        out = emb.forward(np.array([], dtype=np.int64),
                          np.zeros(4, dtype=np.int64))
        assert out.shape == (3, SHAPE_D3.dim)
        assert not out.any()
        emb.zero_grad()
        emb.backward(np.zeros_like(out))
        assert emb.lookup(np.array([], dtype=np.int64)).shape == (0, SHAPE_D3.dim)


# --------------------------------------------------------------------- #
# Counters, memoization, buffers
# --------------------------------------------------------------------- #

def test_flops_executed_counter_is_exact():
    counter = get_registry().counter("tt.plan.flops_executed")
    for policy in ("l2r", "r2l", "split:2", "auto"):
        emb = make_emb(SHAPE_D4, policy, dedup=False)
        idx = np.arange(50, dtype=np.int64)
        sched = emb.planner.schedule_for(50, need_lefts=False)
        before = counter.value
        emb.lookup(idx)
        assert counter.value - before == 50 * sched.flops_per_row


def test_plan_batch_dedup_bookkeeping():
    planner = ExecutionPlanner(SHAPE_D3, "auto")
    saved = get_registry().counter("tt.plan.flops_saved")
    removed = get_registry().counter("tt.plan.dedup_removed")
    s0, r0 = saved.value, removed.value
    idx = np.array([5, 5, 5, 9], dtype=np.int64)
    plan = planner.plan_batch(idx, dedup=True, need_lefts=False)
    assert plan.n == 4 and plan.n_unique == 2
    assert plan.inverse is not None and plan.inverse.shape == (4,)
    assert removed.value - r0 == 2
    assert plan.flops_planned == 2 * plan.schedule.flops_per_row
    assert saved.value - s0 == plan.flops_baseline - plan.flops_planned
    # A duplicate-free batch drops the inverse (no expansion copy).
    plan = planner.plan_batch(np.array([1, 2, 3]), dedup=True, need_lefts=False)
    assert plan.inverse is None and plan.n_unique == 3


def test_schedule_memo_buckets():
    planner = ExecutionPlanner(SHAPE_D3, "auto")
    hits = get_registry().counter("tt.plan.memo_hits")
    misses = get_registry().counter("tt.plan.memo_misses")
    h0, m0 = hits.value, misses.value
    planner.schedule_for(100)   # bucket 128: miss
    planner.schedule_for(120)   # same bucket: hit
    planner.schedule_for(200)   # bucket 256: miss
    planner.schedule_for(100, need_lefts=True)  # distinct key: miss
    assert misses.value - m0 == 3
    assert hits.value - h0 == 1


def test_buffer_pool_reuse_and_growth():
    pool = BufferPool()
    a = pool.take(("x",), (4, 8), np.float64)
    assert a.shape == (4, 8) and a.flags["C_CONTIGUOUS"]
    b = pool.take(("x",), (2, 8), np.float64)  # smaller: same buffer
    assert np.shares_memory(a, b)
    big = pool.take(("x",), (100, 8), np.float64)  # growth reallocates
    assert not np.shares_memory(a, big)
    assert pool.nbytes() == _bucket(800) * 8  # capacity is bucket-rounded
    again = pool.take(("x",), (100, 8), np.float64)
    assert np.shares_memory(big, again)
    # dtype change must not serve a stale buffer.
    f32 = pool.take(("x",), (4, 8), np.float32)
    assert f32.dtype == np.float32
    pool.clear()
    assert pool.nbytes() == 0


def test_bucket_rounding():
    assert [_bucket(n) for n in (0, 1, 2, 3, 4, 5, 1023, 1024, 1025)] == \
        [1, 1, 2, 4, 4, 8, 1024, 1024, 2048]


def test_policy_validation():
    with pytest.raises(ValueError, match="unknown plan policy"):
        ExecutionPlanner(SHAPE_D3, "bogus")
    with pytest.raises(ValueError, match="split must be in"):
        ExecutionPlanner(SHAPE_D3, "split:0")
    with pytest.raises(ValueError, match="split must be in"):
        ExecutionPlanner(SHAPE_D3, "split:9")
    with pytest.raises(ValueError, match="unknown schedule kind"):
        schedule_cost(SHAPE_D3, "zigzag")


def test_keep_lefts_requires_l2r():
    planner = ExecutionPlanner(SHAPE_D3, "r2l")
    sched = planner.schedule_for(4)
    assert sched.label == "r2l"
    decoded = SHAPE_D3.decode_indices(np.arange(4))
    cores = [np.ones(SHAPE_D3.core_shape(k)) for k in range(SHAPE_D3.d)]
    with pytest.raises(ValueError, match="left partials"):
        planner.execute(sched, decoded, cores, keep_lefts=True)


def test_pooled_lookup_does_not_corrupt_pending_backward():
    """lookup() between forward and backward (cache population does this)
    must not clobber the pooled left partials backward still needs."""
    rng = as_rng(5)
    indices, offsets = random_csr(rng, SHAPE_D3.num_rows, 8, max_bag=4,
                                  allow_empty=False)
    grad = rng.normal(size=(offsets.size - 1, SHAPE_D3.dim))

    ref = make_emb(SHAPE_D3, "auto", dedup=True)
    ref.forward(indices, offsets)
    ref.zero_grad()
    ref.backward(grad)
    expected = [p.grad.copy() for p in ref.cores]

    emb = make_emb(SHAPE_D3, "auto", dedup=True)
    emb.forward(indices, offsets)
    emb.lookup(rng.integers(0, SHAPE_D3.num_rows, size=500))  # interloper
    emb.zero_grad()
    emb.backward(grad)
    for g, e in zip([p.grad for p in emb.cores], expected):
        assert np.array_equal(g, e)
