"""Tests for the elastic fault-tolerant training runtime.

The load-bearing assertions are the elastic contract: a killed worker is
detected within the heartbeat window, recovered live from shard-delta
checkpoints plus hot-row replay, readmitted bit-identical to the
survivors (the recovery audit), and the run loses no batches — while a
same-seed fault-free run lands at the same loss (degraded steps re-shard
the whole batch over survivors, so the gradient stream is preserved).
"""

import numpy as np
import pytest

from repro.data import KAGGLE, SyntheticCTRDataset
from repro.distributed import (
    ElasticConfig,
    ElasticTrainer,
    TrainerWorker,
    WorkerKillSpec,
    parse_worker_kill_spec,
)
from repro.distributed.elastic import WorkerDown, WorkerTimeout
from repro.models import DLRMConfig, TTConfig, build_ttrec
from repro.reliability import CheckpointManager, FaultInjector

SPEC = KAGGLE.scaled(0.0002)
CFG = DLRMConfig(table_sizes=SPEC.table_sizes, emb_dim=8,
                 bottom_mlp=(16,), top_mlp=(16,))
WORLD = 4


def replicas(world=WORLD, rng=0):
    return [build_ttrec(CFG, num_tt_tables=3, tt=TTConfig(rank=4),
                        min_rows=60, rng=rng) for _ in range(world)]


def batches(n, size=32, seed=0):
    ds = SyntheticCTRDataset(SPEC, seed=seed, noise=0.7)
    return [ds.batch(size) for _ in range(n)]


def chaos_trainer(tmp_path, seed, *, kill="1@8", slow=0.02):
    injector = FaultInjector(seed=seed).register("dist.slow", slow)
    manager = CheckpointManager(tmp_path / f"ckpt-{seed}")
    return ElasticTrainer(
        replicas(), lr=0.1, optimizer="adagrad", injector=injector,
        checkpoint=manager, checkpoint_every=4,
        kill_specs=[parse_worker_kill_spec(kill)],
    )


# --------------------------------------------------------------------- #
# Kill specs and config
# --------------------------------------------------------------------- #

class TestKillSpec:
    def test_parse(self):
        spec = parse_worker_kill_spec(" 2@60 ")
        assert (spec.worker, spec.at_step, spec.done) == (2, 60, False)

    @pytest.mark.parametrize("bad", ["2", "2@", "@60", "2@60ms", "w2@60",
                                     "2@0"])
    def test_rejects_malformed(self, bad):
        with pytest.raises(ValueError):
            parse_worker_kill_spec(bad)

    def test_kill_target_must_exist(self):
        with pytest.raises(ValueError, match="4 workers"):
            ElasticTrainer(replicas(), kill_specs=[WorkerKillSpec(9, 5)])


class TestConfigValidation:
    @pytest.mark.parametrize("kwargs", [
        {"step_ms": 0}, {"deadline_ms": -1}, {"backoff": 0.5},
        {"step_attempts": 0}, {"straggler_factor": 0.5}, {"ewma_alpha": 0},
    ])
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            ElasticConfig(**kwargs)

    def test_trainer_validation(self):
        with pytest.raises(ValueError, match="at least 2"):
            ElasticTrainer(replicas(1))
        with pytest.raises(ValueError, match="optimizer"):
            ElasticTrainer(replicas(2), optimizer="adam")


# --------------------------------------------------------------------- #
# Worker state machine
# --------------------------------------------------------------------- #

class TestTrainerWorker:
    def _worker(self, injector=None):
        from repro.ops.optim import SparseSGD

        model = replicas(1)[0]
        return TrainerWorker(
            0, model, make_optimizer=lambda m: SparseSGD(m.parameters(),
                                                         lr=0.1),
            config=ElasticConfig(), injector=injector)

    def test_kill_then_supervised_restart(self):
        w = self._worker()
        batch = batches(1)[0]
        w.kill(100.0)
        assert w.state == "down"
        assert w.heartbeat(110.0) is None
        with pytest.raises(WorkerDown):
            w.compute_grads(batch, 1.0, 120.0, 50.0)
        w.restart(200.0)
        assert w.state == "rewarming"
        assert w.rewarm_until == 200.0 + w.config.rewarm_ms
        # Rewarming answers heartbeats (reporting state) but refuses work.
        assert w.heartbeat(210.0)["state"] == "rewarming"
        with pytest.raises(WorkerDown):
            w.compute_grads(batch, 1.0, 220.0, 50.0)

    def test_restart_scorches_replica_memory(self):
        """A restarted process has lost its memory: parameters are
        poisoned so only a full restore can pass the recovery audit."""
        w = self._worker()
        w.kill(0.0)
        w.restart(10.0)
        for p in w.replica.parameters():
            assert np.isnan(p.data).all()

    def test_hang_self_heals_after_hang_ms(self):
        w = self._worker()
        batch = batches(1)[0]
        w.state, w.hang_until, w.impaired_since = "hung", 120.0, 0.0
        assert w.heartbeat(50.0) is None
        with pytest.raises(WorkerTimeout):
            w.compute_grads(batch, 1.0, 60.0, 50.0)
        assert w.heartbeat(130.0) is not None
        assert w.state == "up"

    def test_watchdog_kills_hung_worker_on_rewarm(self):
        w = self._worker()
        w.state, w.hang_until = "hung", 1e9
        w.begin_rewarm(100.0)
        assert w.state == "rewarming"   # killed, restarted, rewarming

    def test_slow_penalty_can_breach_deadline(self):
        injector = FaultInjector(seed=0).register("dist.slow", 1.0)
        w = self._worker(injector)
        batch = batches(1)[0]
        cfg = w.config
        with pytest.raises(WorkerTimeout):
            w.compute_grads(batch, 1.0, 0.0,
                            cfg.step_ms + cfg.slow_penalty_ms - 1.0)
        # The penalty was consumed; an ample deadline now succeeds (the
        # next probe fires again under rate 1.0, re-adding one penalty).
        loss, sim_ms = w.compute_grads(
            batch, 1.0, 10.0, cfg.step_ms + cfg.slow_penalty_ms + 1.0)
        assert sim_ms == cfg.step_ms + cfg.slow_penalty_ms


# --------------------------------------------------------------------- #
# Detection, eviction, recovery
# --------------------------------------------------------------------- #

class TestDetectionAndRecovery:
    def test_silent_death_detected_within_heartbeat_window(self):
        trainer = ElasticTrainer(replicas(), lr=0.1)
        trainer.workers[2].kill(trainer.clock.now(), cause="scheduled")
        window = trainer.health.detection_window_ms
        start = trainer.clock.now()
        while trainer.health.is_up(2):
            trainer.clock.advance(trainer.config.heartbeat_interval_ms)
            trainer._control_plane(probe_faults=False)
            assert trainer.clock.now() - start <= window + \
                trainer.config.heartbeat_interval_ms
        assert trainer.health.verdict[2] == "down"

    def test_kill_readmit_parameters_in_sync(self, tmp_path):
        """Regression: after kill -> recovery -> readmission the fleet is
        bit-identical (`parameters_in_sync` barrier), with no checkpoint
        manager (full-copy recovery) and with one (delta + replay)."""
        for manager in (None, CheckpointManager(tmp_path / "ck")):
            trainer = ElasticTrainer(
                replicas(), lr=0.1, optimizer="adagrad",
                checkpoint=manager, checkpoint_every=4,
                kill_specs=[parse_worker_kill_spec("1@6")])
            report = trainer.train(batches(30))
            assert report["health"]["up"] == WORLD
            assert report["recovery"]["readmissions"] == 1
            assert report["in_sync"]
            assert trainer.parameters_in_sync()

    def test_recovery_uses_delta_restore_and_replay(self, tmp_path):
        """With checkpoints, recovery restores every shard at the last
        common step, replays only post-checkpoint hot rows from a donor,
        and the checksum audit (the bit-exact comparison against the
        survivor-computed reference) passes without a full-copy fallback."""
        trainer = chaos_trainer(tmp_path, seed=3)
        report = trainer.train(batches(30))
        rec = report["recovery"]
        assert rec["restores"] == WORLD          # all K shards restored
        assert rec["replayed_rows"] > 0          # hot rows, not full copies
        assert rec["audits"] == 1 and rec["audit_failures"] == 0
        assert rec["max_ms"] > 0
        assert report["resyncs"] == 0            # no full-copy fallback
        assert report["in_sync"]

    def test_breaker_gates_eviction(self):
        """Transient dispatch failures strike the breaker; the worker is
        evicted only when it opens — a single timeout never shrinks the
        fleet."""
        trainer = ElasticTrainer(replicas(), lr=0.1)
        w = trainer.workers[1]
        shard = batches(1, size=8)[0]
        w.state, w.hang_until = "hung", 1e12
        strikes = 0
        while trainer.health.is_up(1):
            assert trainer._dispatch(1, shard, 1.0) is None
            strikes += 1
            assert strikes <= trainer.config.breaker_threshold
        assert trainer.breakers[1].state == "open"
        assert strikes == trainer.config.breaker_threshold

    def test_net_drop_chaos_reconciles(self):
        injector = FaultInjector(seed=9).register("dist.net_drop", 0.03)
        trainer = ElasticTrainer(replicas(), lr=0.1, injector=injector)
        report = trainer.train(batches(20))
        recon = report["reconciliation"]
        assert recon["checked"] and recon["passed"], recon["checks"]
        assert report["workers"][0]["net_drops"] + report["workers"][1][
            "net_drops"] + report["workers"][2]["net_drops"] + \
            report["workers"][3]["net_drops"] == injector.fired.get(
                "dist.net_drop", 0)


# --------------------------------------------------------------------- #
# Straggler mitigation
# --------------------------------------------------------------------- #

class TestStragglerShares:
    def test_equal_when_no_straggler(self):
        trainer = ElasticTrainer(replicas(), lr=0.1)
        assert trainer._shares(32, [0, 1, 2, 3]) == [8, 8, 8, 8]

    def test_straggler_gets_fewer_samples(self):
        trainer = ElasticTrainer(
            replicas(), lr=0.1,
            config=ElasticConfig(straggler_factor=2.0))
        for w, ewma in zip(trainer.workers, (10.0, 10.0, 10.0, 50.0)):
            w.ewma_ms = ewma
        counts = trainer._shares(32, [0, 1, 2, 3])
        assert sum(counts) == 32
        assert counts[3] == min(counts) and counts[3] >= 1
        assert counts[3] < counts[0]
        # Deterministic: same EWMAs, same apportionment.
        assert counts == trainer._shares(32, [0, 1, 2, 3])

    def test_batch_must_cover_live_set(self):
        from repro.distributed import ElasticError

        trainer = ElasticTrainer(replicas(), lr=0.1)
        with pytest.raises(ElasticError):
            trainer._shares(3, [0, 1, 2, 3])


# --------------------------------------------------------------------- #
# The chaos drill (acceptance)
# --------------------------------------------------------------------- #

class TestChaosDrill:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_kill_one_of_four(self, tmp_path, seed):
        """Kill 1 of 4 workers mid-run, three seeds: zero lost batches,
        fleet readmitted bit-in-sync, and the final loss within 2% of a
        same-seed fault-free run."""
        trainer = chaos_trainer(tmp_path, seed)
        report = trainer.train(batches(30, seed=seed))

        recon = report["reconciliation"]
        assert recon["passed"], recon["checks"]
        assert recon["checks"]["no_lost_batches"]["counted"] == 30
        assert report["health"]["up"] == WORLD
        assert report["recovery"]["readmissions"] == 1
        assert report["recovery"]["audit_failures"] == 0
        assert report["in_sync"]

        clean = ElasticTrainer(replicas(), lr=0.1, optimizer="adagrad")
        clean_report = clean.train(batches(30, seed=seed))
        assert abs(report["final_loss"] - clean_report["final_loss"]) \
            <= 0.02 * abs(clean_report["final_loss"])

    def test_same_seed_runs_are_byte_reproducible(self, tmp_path):
        """Same seed, same kills: the ledger (records, counts, losses) and
        the flight dump must be byte-identical across runs.

        The dump's counter keys carry the per-process ``comm#N`` instance
        label, which differs between two trainers in one process (fresh
        processes, as in CI's double CLI run, get identical labels), so
        that label is normalised before the byte comparison.
        """
        import json
        import os
        import re

        from repro.telemetry import (FlightRecorder, install_flight_recorder,
                                     uninstall_flight_recorder)

        def run(tag):
            flight_dir = tmp_path / f"flight-{tag}"
            injector = FaultInjector(seed=5).register("dist.slow", 0.02)
            manager = CheckpointManager(tmp_path / f"ck-{tag}")
            trainer = ElasticTrainer(
                replicas(), lr=0.1, optimizer="adagrad", injector=injector,
                checkpoint=manager, checkpoint_every=4,
                kill_specs=[parse_worker_kill_spec("2@7")])
            install_flight_recorder(
                FlightRecorder(flight_dir, clock=trainer.clock.now))
            try:
                report = trainer.train(batches(24, seed=5))
            finally:
                uninstall_flight_recorder()
            dump = flight_dir / "flightrec-worker-down.json"
            raw = dump.read_bytes() if os.path.exists(dump) else b""
            return (json.dumps(report["ledger"], sort_keys=True),
                    json.dumps(report["losses"]),
                    re.sub(rb"comm#\d+", b"comm#N", raw))

        first, second = run("a"), run("b")
        assert first[0] == second[0]
        assert first[1] == second[1]
        assert first[2] and first[2] == second[2]

    def test_elastic_cli_drill(self, tmp_path, capsys):
        from repro.cli import main

        code = main([
            "train", "--elastic", "--iters", "20", "--scale", "0.0002",
            "--workers", "4", "--batch-size", "32", "--kill-worker", "1@6",
            "--checkpoint-dir", str(tmp_path / "ck"),
            "--checkpoint-every", "4",
            "--recovery-ms-max", "600",
            "--flight-dir", str(tmp_path / "flight"),
            "--emit-json", str(tmp_path / "snap.json"),
        ])
        out = capsys.readouterr().out
        assert code == 0, out
        assert "PASS" in out
        assert (tmp_path / "snap.json").exists()
        assert (tmp_path / "flight" / "flightrec-worker-down.json").exists()

    def test_kill_worker_requires_elastic(self, capsys):
        from repro.cli import main

        assert main(["train", "--iters", "1", "--kill-worker", "1@5"]) == 2
