"""Tests for benchmark workload generators and reporting."""

import numpy as np
import pytest

from repro.bench import (
    controlled_hitrate_workload,
    format_series,
    format_table,
    pooling_workload,
    uniform_workload,
)


class TestPoolingWorkload:
    def test_shapes(self):
        idx, off = pooling_workload(1000, batch_size=32, pooling_factor=10, rng=0)
        assert idx.size == 320
        assert off.size == 33
        np.testing.assert_array_equal(np.diff(off), 10)

    def test_indices_in_range(self):
        idx, _ = pooling_workload(50, 16, 4, rng=0)
        assert idx.min() >= 0 and idx.max() < 50

    def test_zipf_skew(self):
        idx, _ = pooling_workload(10_000, 1000, 10, zipf_s=1.3, rng=0)
        counts = np.bincount(idx)
        assert np.sort(counts)[-10:].sum() / idx.size > 0.2

    def test_validation(self):
        with pytest.raises(ValueError):
            pooling_workload(100, 8, 0)


class TestUniformWorkload:
    def test_uniformity(self):
        idx, off = uniform_workload(100, 50_000, rng=0)
        counts = np.bincount(idx, minlength=100)
        assert counts.max() / counts.min() < 1.5
        np.testing.assert_array_equal(np.diff(off), 1)


class TestControlledHitrate:
    def test_exact_hit_count(self):
        cached = np.arange(100)
        for rate in (0.0, 0.25, 0.5, 0.9, 1.0):
            idx, _ = controlled_hitrate_workload(
                10_000, 512, cached_ids=cached, hit_rate=rate, rng=0
            )
            hits = np.isin(idx, cached).sum()
            assert hits == round(rate * 512)

    def test_misses_avoid_cache(self):
        cached = np.arange(0, 1000, 2)
        idx, _ = controlled_hitrate_workload(
            1000, 256, cached_ids=cached, hit_rate=0.5, rng=0
        )
        miss = idx[~np.isin(idx, cached)]
        assert miss.size == 128
        assert not np.isin(miss, cached).any()

    def test_pooling_factor(self):
        idx, off = controlled_hitrate_workload(
            1000, 8, cached_ids=np.arange(10), hit_rate=0.5, pooling_factor=4, rng=0
        )
        assert idx.size == 32
        np.testing.assert_array_equal(np.diff(off), 4)

    def test_validation(self):
        with pytest.raises(ValueError):
            controlled_hitrate_workload(100, 8, cached_ids=np.arange(5), hit_rate=1.5)
        with pytest.raises(ValueError):
            controlled_hitrate_workload(
                100, 8, cached_ids=np.array([], dtype=np.int64), hit_rate=0.5
            )
        with pytest.raises(ValueError):
            controlled_hitrate_workload(
                10, 8, cached_ids=np.arange(10), hit_rate=0.5
            )


class TestReporting:
    def test_format_table_aligns(self):
        out = format_table(["name", "value"], [["a", 1.0], ["bb", 22.5]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "value" in lines[1]
        assert len(lines) == 5

    def test_format_table_rejects_ragged(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only-one"]])

    def test_format_series(self):
        out = format_series("s", [1, 2], [0.5, 0.25], x_label="k", y_label="v")
        assert "series: s" in out
        assert "0.25" in out

    def test_format_series_rejects_mismatch(self):
        with pytest.raises(ValueError):
            format_series("s", [1], [1, 2])
