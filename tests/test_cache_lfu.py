"""Tests for the LFU tracker and its policy variants."""

import numpy as np
import pytest

from repro.cache import LFUTracker


class TestLFUPolicy:
    def test_top_k_orders_by_frequency(self):
        t = LFUTracker()
        t.record(np.repeat(np.array([1, 2, 3]), [5, 10, 1]))
        np.testing.assert_array_equal(t.top_k(2), [2, 1])

    def test_accumulates_across_batches(self):
        t = LFUTracker()
        t.record(np.array([4, 4]))
        t.record(np.array([5, 5, 5]))
        np.testing.assert_array_equal(t.top_k(1), [5])
        np.testing.assert_allclose(t.count(np.array([4, 5])), [2, 3])

    def test_empty_record_is_noop(self):
        t = LFUTracker()
        t.record(np.array([], dtype=np.int64))
        assert len(t) == 0
        assert t.total_accesses == 0

    def test_total_accesses(self):
        t = LFUTracker()
        t.record(np.array([1, 2, 3]))
        t.record(np.array([1]))
        assert t.total_accesses == 4


class TestLRUPolicy:
    def test_recency_wins_over_frequency(self):
        t = LFUTracker(policy="lru")
        t.record(np.array([1, 1, 1, 1]))  # old but frequent
        t.record(np.array([2]))
        t.record(np.array([3]))
        # Most recent first: 3, then 2; the frequent-but-old 1 is last.
        np.testing.assert_array_equal(t.top_k(2), [3, 2])

    def test_re_access_refreshes(self):
        t = LFUTracker(policy="lru")
        t.record(np.array([1]))
        t.record(np.array([2]))
        t.record(np.array([1]))
        np.testing.assert_array_equal(t.top_k(1), [1])


class TestStaticPolicy:
    def test_freeze_stops_updates(self):
        t = LFUTracker(policy="static")
        t.record(np.array([1, 1]))
        t.freeze()
        t.record(np.array([2, 2, 2, 2]))
        np.testing.assert_array_equal(t.top_k(1), [1])
        # clock/accesses still advance for bookkeeping
        assert t.total_accesses == 6


class TestDecay:
    def test_decay_halves_scores(self):
        t = LFUTracker(decay=0.5)
        t.record(np.array([1, 1, 1, 1]))
        t.apply_decay()
        np.testing.assert_allclose(t.count(np.array([1])), [2.0])

    def test_no_decay_by_default(self):
        t = LFUTracker()
        t.record(np.array([1, 1]))
        t.apply_decay()
        np.testing.assert_allclose(t.count(np.array([1])), [2.0])

    def test_decay_changes_ranking(self):
        t = LFUTracker(decay=0.25)
        t.record(np.repeat(np.array([1]), 10))
        t.apply_decay()  # 1 -> 2.5
        t.record(np.repeat(np.array([2]), 4))  # 2 -> 4
        np.testing.assert_array_equal(t.top_k(1), [2])


class TestValidation:
    def test_bad_policy(self):
        with pytest.raises(ValueError):
            LFUTracker(policy="fifo")

    def test_bad_decay(self):
        with pytest.raises(ValueError):
            LFUTracker(decay=0.0)
        with pytest.raises(ValueError):
            LFUTracker(decay=1.5)
