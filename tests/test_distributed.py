"""Tests for the distributed-training simulator (collectives, DP, MP).

The load-bearing assertions are the *equivalence theorems*: K-worker
data-parallel training is bit-equivalent to single-worker large-batch
training, and the hybrid model-parallel layout computes bit-identical
logits and updates to the unsharded DLRM.
"""

import numpy as np
import pytest

from repro.data import KAGGLE, SyntheticCTRDataset
from repro.distributed import Communicator, DataParallelTrainer, ShardedEmbeddingDLRM
from repro.distributed.data_parallel import shard_batch
from repro.distributed.model_parallel import assign_tables
from repro.models import DLRMConfig, TTConfig, build_dlrm, build_ttrec
from repro.ops.loss import bce_with_logits
from repro.ops.optim import SparseSGD

SPEC = KAGGLE.scaled(0.0002)
CFG = DLRMConfig(table_sizes=SPEC.table_sizes, emb_dim=8,
                 bottom_mlp=(16,), top_mlp=(16,))


def make_batch(size=32, seed=0):
    return SyntheticCTRDataset(SPEC, seed=seed, noise=0.7).batch(size)


class TestCommunicator:
    def test_allreduce_mean(self):
        c = Communicator(3)
        out = c.allreduce_mean([np.ones(4), 2 * np.ones(4), 3 * np.ones(4)])
        np.testing.assert_allclose(out, 2.0)

    def test_allreduce_sum(self):
        c = Communicator(2)
        out = c.allreduce_sum([np.ones(3), 2 * np.ones(3)])
        np.testing.assert_allclose(out, 3.0)

    def test_single_worker_free(self):
        c = Communicator(1)
        c.allreduce_mean([np.ones(10)])
        assert c.total_bytes == 0

    def test_ring_byte_accounting(self):
        c = Communicator(4)
        buf = np.ones(1000)  # 8000 bytes
        c.allreduce_mean([buf.copy() for _ in range(4)])
        # per worker 2*S*(3/4), times 4 workers
        assert c.bytes_allreduce == int(2 * 8000 * 3 / 4) * 4

    def test_all_to_all_transpose(self):
        c = Communicator(2)
        grid = [[np.array([0.0]), np.array([1.0])],
                [np.array([2.0]), np.array([3.0])]]
        out = c.all_to_all(grid)
        assert out[0][1][0] == 2.0  # worker 1's chunk for worker 0
        assert out[1][0][0] == 1.0

    def test_all_to_all_bills_off_diagonal_only(self):
        c = Communicator(2)
        grid = [[np.ones(10), np.ones(20)], [np.ones(30), np.ones(40)]]
        c.all_to_all(grid)
        assert c.bytes_all_to_all == (20 + 30) * 8

    def test_allgather(self):
        c = Communicator(2)
        out = c.allgather([np.zeros(2), np.ones(2)])
        np.testing.assert_array_equal(out[1], np.ones(2))
        assert c.bytes_allgather == 2 * 16

    def test_validation(self):
        with pytest.raises(ValueError):
            Communicator(0)
        c = Communicator(2)
        with pytest.raises(ValueError):
            c.allreduce_mean([np.ones(2)])
        with pytest.raises(ValueError):
            c.allreduce_mean([np.ones(2), np.ones(3)])
        with pytest.raises(ValueError):
            c.all_to_all([[np.ones(1)]])


class TestShardBatch:
    def test_even_split(self):
        batch = make_batch(32)
        shards = shard_batch(batch, 4)
        assert [s.size for s in shards] == [8, 8, 8, 8]
        np.testing.assert_array_equal(
            np.concatenate([s.labels for s in shards]), batch.labels
        )

    def test_sparse_offsets_rebased(self):
        batch = make_batch(8)
        shards = shard_batch(batch, 2)
        for shard in shards:
            for idx, off in shard.sparse:
                assert off[0] == 0
                assert off[-1] == idx.size

    def test_lookup_content_preserved(self):
        batch = make_batch(8)
        shards = shard_batch(batch, 2)
        for t in range(len(batch.sparse)):
            rebuilt = np.concatenate([s.sparse[t][0] for s in shards])
            np.testing.assert_array_equal(rebuilt, batch.sparse[t][0])

    def test_uneven_rejected(self):
        with pytest.raises(ValueError):
            shard_batch(make_batch(10), 4)


class TestDataParallelEquivalence:
    def test_two_workers_equal_single_worker(self):
        """The equivalence theorem, bit-for-bit over several steps."""
        single = build_ttrec(CFG, num_tt_tables=3, tt=TTConfig(rank=4),
                             min_rows=60, rng=0)
        opt = SparseSGD(single.parameters(), lr=0.1)
        replicas = [
            build_ttrec(CFG, num_tt_tables=3, tt=TTConfig(rank=4),
                        min_rows=60, rng=0)
            for _ in range(2)
        ]
        dp = DataParallelTrainer(replicas, lr=0.1)

        for step in range(3):
            batch = make_batch(16, seed=step)
            # single worker
            opt.zero_grad()
            logits = single.forward(batch.dense, batch.sparse)
            _, grad = bce_with_logits(logits, batch.labels)
            single.backward(grad)
            opt.step()
            # data parallel
            dp.train_step(batch)

        assert dp.parameters_in_sync()
        for a, b in zip(single.parameters(), dp.replicas[0].parameters()):
            np.testing.assert_allclose(a.data, b.data, atol=1e-12)

    def test_replicas_start_synchronized(self):
        replicas = [build_dlrm(CFG, rng=i) for i in range(3)]  # different seeds!
        dp = DataParallelTrainer(replicas, lr=0.1)
        assert dp.parameters_in_sync()

    def test_replicas_stay_synchronized(self):
        replicas = [build_dlrm(CFG, rng=0) for _ in range(2)]
        dp = DataParallelTrainer(replicas, lr=0.1)
        for step in range(2):
            dp.train_step(make_batch(8, seed=step))
        assert dp.parameters_in_sync()

    def test_loss_decreases(self):
        replicas = [build_dlrm(CFG, rng=0) for _ in range(2)]
        dp = DataParallelTrainer(replicas, lr=0.1)
        ds = SyntheticCTRDataset(SPEC, seed=0, noise=0.7)
        losses = [dp.train_step(ds.batch(64)) for _ in range(60)]
        assert np.mean(losses[-10:]) < np.mean(losses[:10])

    def test_comm_bytes_counted(self):
        replicas = [build_dlrm(CFG, rng=0) for _ in range(2)]
        dp = DataParallelTrainer(replicas, lr=0.1)
        dp.train_step(make_batch(8))
        assert dp.comm.bytes_allreduce > 0
        assert dp.comm.bytes_all_to_all == 0  # pure data parallelism

    def test_validation(self):
        with pytest.raises(ValueError):
            DataParallelTrainer([])
        with pytest.raises(ValueError):
            DataParallelTrainer([build_dlrm(CFG, rng=0)], comm=Communicator(2))


class TestAssignTables:
    def test_balanced(self):
        owner = assign_tables((100, 100, 100, 100), 2)
        assert sorted(owner) == [0, 0, 1, 1]

    def test_largest_spread(self):
        owner = assign_tables((1000, 10, 10, 10), 2)
        big_worker = owner[0]
        # the three small tables all avoid the big table's worker
        assert all(owner[i] != big_worker for i in (1, 2, 3))

    def test_validation(self):
        with pytest.raises(ValueError):
            assign_tables((10,), 0)

    def test_deterministic(self):
        sizes = (400, 3, 400, 17, 95, 95, 3)
        assert assign_tables(sizes, 3) == assign_tables(sizes, 3)

    @pytest.mark.parametrize("seed", range(25))
    def test_property_skewed_sizes_spread_bounded(self, seed):
        """Property (LPT + refinement): on skewed size distributions the
        byte spread stays within one largest-table and the max/min
        shard-bytes ratio within the implied bound."""
        rng = np.random.default_rng(seed)
        world = int(rng.integers(2, 6))
        n = int(rng.integers(2 * world, 6 * world))
        # Log-uniform sizes spanning four decades: the DLRM regime of a
        # few giant tables over a long tail of tiny ones.
        sizes = tuple(int(10 ** rng.uniform(1, 5)) for _ in range(n))
        owner = assign_tables(sizes, world)
        assert len(owner) == n and set(owner) <= set(range(world))
        load = [0] * world
        for t, w in enumerate(owner):
            load[w] += sizes[t]
        # LPT invariant: the heaviest worker got its last table while it
        # was the lightest, so the spread never exceeds one table.
        assert max(load) - min(load) <= max(sizes)
        if min(load) > 0:
            assert max(load) / min(load) <= 1.0 + max(sizes) / min(load)

    def test_refinement_tightens_tail_imbalance(self):
        """One giant + many mediums: plain LPT strands the giant's worker
        with nothing else to trade; refinement rebalances the tail."""
        sizes = (900, 300, 300, 300, 300, 300, 300)
        owner = assign_tables(sizes, 3)
        load = [0, 0, 0]
        for t, w in enumerate(owner):
            load[w] += sizes[t]
        assert max(load) - min(load) <= 300
        raw = assign_tables(sizes, 3, refine=False)
        raw_load = [0, 0, 0]
        for t, w in enumerate(raw):
            raw_load[w] += sizes[t]
        assert max(load) - min(load) <= max(raw_load) - min(raw_load)


class TestModelParallelEquivalence:
    @pytest.mark.parametrize("world_size", [2, 4])
    def test_logits_match_unsharded(self, world_size):
        reference = build_dlrm(CFG, rng=0)
        sharded = ShardedEmbeddingDLRM.from_dlrm(reference, world_size)
        batch = make_batch(16)
        ref_logits = reference.forward(batch.dense, batch.sparse)
        np.testing.assert_allclose(sharded.forward(batch), ref_logits, atol=1e-12)

    def test_train_step_matches_unsharded(self):
        """Hybrid-parallel update == single-worker update, bit-for-bit."""
        reference = build_dlrm(CFG, rng=0)
        twin = build_dlrm(CFG, rng=0)  # kept unsharded
        opt = SparseSGD(twin.parameters(), lr=0.1)
        sharded = ShardedEmbeddingDLRM.from_dlrm(reference, 2, lr=0.1)

        for step in range(2):
            batch = make_batch(8, seed=step)
            sharded.zero_grad()
            sharded.train_step(batch)

            opt.zero_grad()
            logits = twin.forward(batch.dense, batch.sparse)
            _, grad = bce_with_logits(logits, batch.labels)
            twin.backward(grad)
            opt.step()

        # Embeddings (moved into the sharded layout) match the twin's.
        for a, b in zip(reference.embeddings, twin.embeddings):
            for pa, pb in zip(a.parameters(), b.parameters()):
                np.testing.assert_allclose(pa.data, pb.data, atol=1e-12)
        # Tower replicas match the twin's MLPs.
        for tower in sharded.towers:
            for pa, pb in zip(tower.bottom.parameters(),
                              twin.bottom_mlp.parameters()):
                np.testing.assert_allclose(pa.data, pb.data, atol=1e-12)
            for pa, pb in zip(tower.top.parameters(),
                              twin.top_mlp.parameters()):
                np.testing.assert_allclose(pa.data, pb.data, atol=1e-12)

    def test_all_to_all_traffic_scales_with_batch(self):
        reference = build_dlrm(CFG, rng=0)
        small_comm = Communicator(2)
        sharded = ShardedEmbeddingDLRM.from_dlrm(reference, 2, comm=small_comm)
        sharded.forward(make_batch(8))
        small = small_comm.bytes_all_to_all
        small_comm.reset_counters()
        sharded.forward(make_batch(32))
        assert small_comm.bytes_all_to_all == 4 * small

    def test_per_worker_memory_balanced(self):
        reference = build_dlrm(CFG, rng=0)
        sharded = ShardedEmbeddingDLRM.from_dlrm(reference, 4)
        loads = sharded.per_worker_embedding_bytes()
        assert max(loads) < sum(loads)  # genuinely split
        assert min(loads) > 0

    def test_backward_before_forward(self):
        sharded = ShardedEmbeddingDLRM.from_dlrm(build_dlrm(CFG, rng=0), 2)
        with pytest.raises(RuntimeError):
            sharded.backward(np.ones(8))


# --------------------------------------------------------------------- #
# Explicit shard counts (elastic re-sharding)
# --------------------------------------------------------------------- #

class TestShardBatchCounts:
    def test_uneven_split_preserves_content(self):
        from repro.distributed import shard_batch_counts

        batch = make_batch(16)
        shards = shard_batch_counts(batch, [7, 5, 4])
        assert [s.size for s in shards] == [7, 5, 4]
        np.testing.assert_array_equal(
            np.concatenate([s.labels for s in shards]), batch.labels)
        for t in range(len(batch.sparse)):
            rebuilt = np.concatenate([s.sparse[t][0] for s in shards])
            np.testing.assert_array_equal(rebuilt, batch.sparse[t][0])
        for shard in shards:
            for idx, off in shard.sparse:
                assert off[0] == 0 and off[-1] == idx.size

    def test_equal_counts_match_shard_batch(self):
        from repro.distributed import shard_batch_counts

        batch = make_batch(16)
        even = shard_batch(batch, 4)
        explicit = shard_batch_counts(batch, [4, 4, 4, 4])
        for a, b in zip(even, explicit):
            np.testing.assert_array_equal(a.dense, b.dense)
            np.testing.assert_array_equal(a.labels, b.labels)

    def test_validation(self):
        from repro.distributed import shard_batch_counts

        batch = make_batch(8)
        with pytest.raises(ValueError):
            shard_batch_counts(batch, [4, 3])      # doesn't sum to 8
        with pytest.raises(ValueError):
            shard_batch_counts(batch, [8, 0])      # empty shard


# --------------------------------------------------------------------- #
# Degraded-collective properties (survivor rescaling)
# --------------------------------------------------------------------- #

class TestDegradedAllreduceProperties:
    """Property tests of the K/survivors degraded-mode semantics."""

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_allreduce_sum_rescaling_is_unbiased(self, seed):
        """E[(K/S) * survivor sum] = full sum, for *distinct* per-worker
        contributions: under i.i.d. drops the survivor set is uniform
        given its size, so the rescaled estimate is conditionally
        unbiased — the property the degraded gradient step relies on."""
        from repro.reliability import FaultInjector

        k = 4
        values = np.arange(1.0, k + 1)           # worker r contributes r+1
        true_sum = float(values.sum())
        injector = FaultInjector(seed=seed).register("collective.drop", 0.12)
        comm = Communicator(k, injector=injector)
        trials = 1500
        total = 0.0
        for _ in range(trials):
            out = comm.allreduce_sum([np.full(1, v) for v in values])
            total += float(out[0])
        assert comm.events["workers_dropped"] > 0
        assert abs(total / trials - true_sum) / true_sum < 0.03

    @pytest.mark.parametrize("seed", [11, 12, 13])
    def test_allreduce_mean_matches_survivor_reference(self, seed):
        """Renormalised mean == bit-exact float64 survivors-only mean,
        recomputed independently from ``last_dropped``."""
        from repro.reliability import FaultInjector

        injector = FaultInjector(seed=seed).register("collective.drop", 0.2)
        comm = Communicator(4, injector=injector)
        rng = np.random.default_rng(seed)
        saw_degraded = False
        for _ in range(40):
            bufs = [rng.standard_normal(16).astype(np.float32)
                    for _ in range(4)]
            out = comm.allreduce_mean(bufs)
            dropped = set(comm.last_dropped)
            saw_degraded |= bool(dropped)
            survivors = [b for r, b in enumerate(bufs) if r not in dropped]
            ref = survivors[0].astype(np.float64, copy=True)
            for b in survivors[1:]:
                ref += b
            ref /= len(survivors)
            np.testing.assert_array_equal(out, ref.astype(np.float32))
        assert saw_degraded


# --------------------------------------------------------------------- #
# Post-step resync barrier (degraded-mode drift fix)
# --------------------------------------------------------------------- #

class TestDegradedResyncBarrier:
    def test_dropped_worker_resynced_after_step(self):
        """A rank the collective drops takes a divergent local update and
        must be rewritten by the barrier before the next step — the fleet
        ends every step bit-identical (regression for the old behaviour
        of silently handing dropped ranks the reduced gradient)."""
        from repro.reliability import FaultInjector

        injector = FaultInjector(seed=5).register("collective.drop", 0.02)
        replicas = [
            build_ttrec(CFG, num_tt_tables=3, tt=TTConfig(rank=4),
                        min_rows=60, rng=0)
            for _ in range(4)
        ]
        dp = DataParallelTrainer(replicas, lr=0.1, injector=injector)
        start = dp.resyncs
        for step in range(10):
            dp.train_step(make_batch(16, seed=step))
            assert dp.parameters_in_sync()
        assert dp.fault_events["workers_dropped"] > 0
        assert dp.resyncs > start
