"""Tests for TTEmbeddingBag — forward (Alg. 1), backward (Alg. 2), pooling."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tt import TTEmbeddingBag, TTShape
from repro.tt.kernels import tt_lookup_reference
from tests.helpers import numeric_grad_check, random_csr


@pytest.fixture
def shape():
    return TTShape.with_uniform_rank(60, 8, (3, 4, 5), (2, 2, 2), rank=5)


@pytest.fixture
def emb(shape):
    return TTEmbeddingBag(60, 8, shape=shape, rng=0)


class TestForward:
    def test_lookup_matches_reference(self, emb, shape):
        rng = np.random.default_rng(0)
        idx = rng.integers(0, 60, size=40)
        ref = tt_lookup_reference([p.data for p in emb.cores], shape, idx)
        np.testing.assert_allclose(emb.lookup(idx), ref, atol=1e-12)

    def test_lookup_matches_materialize(self, emb):
        idx = np.arange(60)
        np.testing.assert_allclose(emb.lookup(idx), emb.materialize(), atol=1e-12)

    def test_empty_lookup(self, emb):
        assert emb.lookup(np.array([], dtype=np.int64)).shape == (0, 8)

    def test_default_offsets_one_per_bag(self, emb):
        idx = np.array([1, 2, 3])
        out = emb.forward(idx)
        np.testing.assert_allclose(out, emb.lookup(idx))

    def test_sum_pooling(self, emb):
        idx = np.array([4, 7, 9])
        out = emb.forward(idx, np.array([0, 2, 3]))
        rows = emb.lookup(idx)
        np.testing.assert_allclose(out[0], rows[0] + rows[1], atol=1e-12)
        np.testing.assert_allclose(out[1], rows[2], atol=1e-12)

    def test_mean_pooling(self, shape):
        emb = TTEmbeddingBag(60, 8, shape=shape, mode="mean", rng=0)
        idx = np.array([4, 7])
        out = emb.forward(idx, np.array([0, 2]))
        rows = emb.lookup(idx)
        np.testing.assert_allclose(out[0], rows.mean(axis=0), atol=1e-12)

    def test_per_sample_weights(self, emb):
        idx = np.array([4, 7])
        out = emb.forward(idx, np.array([0, 2]), np.array([2.0, -1.0]))
        rows = emb.lookup(idx)
        np.testing.assert_allclose(out[0], 2 * rows[0] - rows[1], atol=1e-12)

    def test_empty_bag(self, emb):
        out = emb.forward(np.array([1]), np.array([0, 0, 1]))
        np.testing.assert_allclose(out[0], 0.0)

    def test_dedup_same_result(self, shape):
        plain = TTEmbeddingBag(60, 8, shape=shape, rng=3, dedup=False)
        dedup = TTEmbeddingBag(60, 8, shape=shape, rng=3, dedup=True)
        idx = np.array([5, 5, 5, 9, 9, 1])
        off = np.array([0, 3, 6])
        np.testing.assert_allclose(
            plain.forward(idx, off), dedup.forward(idx, off), atol=1e-12
        )

    def test_rejects_out_of_range(self, emb):
        with pytest.raises(ValueError):
            emb.forward(np.array([60]), np.array([0, 1]))

    def test_rejects_weight_length_mismatch(self, emb):
        with pytest.raises(ValueError):
            emb.forward(np.array([1, 2]), np.array([0, 2]), np.array([1.0]))

    def test_rejects_bad_mode(self):
        with pytest.raises(ValueError):
            TTEmbeddingBag(60, 8, mode="max")

    def test_shape_table_mismatch_rejected(self, shape):
        with pytest.raises(ValueError):
            TTEmbeddingBag(61, 8, shape=shape)


class TestBackward:
    @pytest.mark.parametrize("store", [True, False])
    @pytest.mark.parametrize("dedup", [True, False])
    def test_gradients_all_variants(self, shape, store, dedup):
        rng = np.random.default_rng(10)
        emb = TTEmbeddingBag(60, 8, shape=shape, rng=1,
                             store_intermediates=store, dedup=dedup)
        idx, off = random_csr(rng, 60, 7)
        alpha = rng.normal(size=idx.size)
        r = rng.normal(size=(7, 8))

        def loss():
            return float((emb.forward(idx, off, alpha) * r).sum())

        emb.zero_grad()
        emb.forward(idx, off, alpha)
        emb.backward(r)
        for p in emb.cores:
            numeric_grad_check(p.data, p.grad, loss, samples=12)

    def test_mean_mode_gradient(self, shape):
        rng = np.random.default_rng(11)
        emb = TTEmbeddingBag(60, 8, shape=shape, mode="mean", rng=1)
        idx, off = random_csr(rng, 60, 5)
        r = rng.normal(size=(5, 8))

        def loss():
            return float((emb.forward(idx, off) * r).sum())

        emb.forward(idx, off)
        emb.backward(r)
        for p in emb.cores:
            numeric_grad_check(p.data, p.grad, loss, samples=10)

    def test_backward_before_forward(self, emb):
        with pytest.raises(RuntimeError):
            emb.backward(np.ones((1, 8)))

    def test_double_backward_raises(self, emb):
        """A second backward for one forward would silently double-count
        core gradients; it must raise and leave grads untouched."""
        emb.forward(np.array([1, 2]), np.array([0, 2]))
        emb.backward(np.ones((1, 8)))
        snapshot = [p.grad.copy() for p in emb.cores]
        with pytest.raises(RuntimeError, match="twice"):
            emb.backward(np.ones((1, 8)))
        for p, s in zip(emb.cores, snapshot):
            assert np.array_equal(p.grad, s)
        # A new forward re-arms backward.
        emb.forward(np.array([1]), np.array([0, 1]))
        emb.backward(np.ones((1, 8)))

    def test_duplicate_index_gradient_accumulates(self, emb):
        idx = np.array([5, 5])
        emb.forward(idx, np.array([0, 2]))
        emb.backward(np.ones((1, 8)))
        g2 = [p.grad.copy() for p in emb.cores]
        emb.zero_grad()
        emb.forward(np.array([5]), np.array([0, 1]))
        emb.backward(np.ones((1, 8)))
        for got, single in zip(g2, (p.grad for p in emb.cores)):
            np.testing.assert_allclose(got, 2 * single, atol=1e-12)

    def test_touched_rows_recorded(self, emb, shape):
        idx = np.array([0, 59])
        emb.forward(idx, np.array([0, 2]))
        emb.backward(np.ones((1, 8)))
        decoded = shape.decode_indices(idx)
        for k, p in enumerate(emb.cores):
            np.testing.assert_array_equal(p.touched_rows, np.unique(decoded[k]))

    def test_gradient_matches_dense_reconstruction_path(self, shape):
        """Core grads agree with autodiff through the materialised table."""
        rng = np.random.default_rng(12)
        emb = TTEmbeddingBag(60, 8, shape=shape, rng=2)
        idx = rng.integers(0, 60, size=20)
        off = np.arange(21, dtype=np.int64)
        r = rng.normal(size=(20, 8))
        emb.forward(idx, off)
        emb.backward(r)

        # Finite-difference the loss L = sum(table[idx] * r) through
        # materialize() on one entry per core as an independent oracle.
        eps = 1e-6
        for p in emb.cores:
            flat = p.data.reshape(-1)
            j = rng.integers(0, flat.size)
            orig = flat[j]
            flat[j] = orig + eps
            lp = float((emb.materialize()[idx] * r).sum())
            flat[j] = orig - eps
            lm = float((emb.materialize()[idx] * r).sum())
            flat[j] = orig
            numeric = (lp - lm) / (2 * eps)
            assert numeric == pytest.approx(p.grad.reshape(-1)[j], rel=1e-4, abs=1e-7)


class TestInterop:
    def test_load_cores_validates(self, emb, shape):
        with pytest.raises(ValueError):
            emb.load_cores([p.data for p in emb.cores][:2])
        bad = [p.data.copy() for p in emb.cores]
        bad[1] = bad[1][:, :, :, :2]
        with pytest.raises(ValueError):
            emb.load_cores(bad)

    def test_compression_ratio(self, emb, shape):
        assert emb.compression_ratio() == pytest.approx(shape.compression_ratio())
        assert emb.num_parameters() == shape.num_params()

    def test_auto_shape_constructor(self):
        emb = TTEmbeddingBag(1000, 16, rank=8, d=3, rng=0)
        assert emb.shape.padded_rows >= 1000
        out = emb.lookup(np.array([0, 999]))
        assert out.shape == (2, 16)

    @given(st.integers(min_value=0, max_value=2 ** 31))
    @settings(max_examples=20, deadline=None)
    def test_property_pooling_linearity(self, seed):
        """forward(bag) == sum of single-index forwards (pooling is linear)."""
        rng = np.random.default_rng(seed)
        emb = TTEmbeddingBag(60, 8,
                             shape=TTShape.with_uniform_rank(60, 8, (3, 4, 5),
                                                             (2, 2, 2), 4),
                             rng=int(rng.integers(1 << 30)))
        idx = rng.integers(0, 60, size=6).astype(np.int64)
        bag = emb.forward(idx, np.array([0, 6]))
        singles = emb.forward(idx)
        np.testing.assert_allclose(bag[0], singles.sum(axis=0), atol=1e-10)
