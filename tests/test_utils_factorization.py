"""Tests for integer factorization used in TT shape selection."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.factorization import factorize_into, prime_factors, suggested_tt_shapes


class TestPrimeFactors:
    def test_small_numbers(self):
        assert prime_factors(1) == []
        assert prime_factors(2) == [2]
        assert prime_factors(12) == [2, 2, 3]
        assert prime_factors(97) == [97]
        assert prime_factors(1024) == [2] * 10

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            prime_factors(0)
        with pytest.raises(ValueError):
            prime_factors(-5)

    @given(st.integers(min_value=2, max_value=100_000))
    def test_product_reconstructs(self, n):
        factors = prime_factors(n)
        assert math.prod(factors) == n
        assert factors == sorted(factors)

    @given(st.integers(min_value=2, max_value=100_000))
    def test_all_prime(self, n):
        for p in prime_factors(n):
            assert p >= 2
            assert all(p % q for q in range(2, int(p ** 0.5) + 1))


class TestFactorizeInto:
    def test_exact_product(self):
        assert math.prod(factorize_into(1_000_000, 3)) == 1_000_000

    def test_prime_gets_ones(self):
        assert factorize_into(7, 3) == [1, 1, 7]

    def test_single_bucket(self):
        assert factorize_into(42, 1) == [42]

    def test_rejects_bad_d(self):
        with pytest.raises(ValueError):
            factorize_into(10, 0)

    @given(st.integers(min_value=1, max_value=1_000_000),
           st.integers(min_value=1, max_value=5))
    @settings(max_examples=200)
    def test_product_invariant(self, n, d):
        factors = factorize_into(n, d)
        assert len(factors) == d
        assert math.prod(factors) == n
        assert factors == sorted(factors)

    def test_balanced_for_smooth_numbers(self):
        factors = factorize_into(2 ** 12, 3)
        assert max(factors) / min(factors) <= 2


class TestSuggestedTTShapes:
    def test_product_covers_n(self):
        for n in (142572, 286181, 5461306, 10131227):
            factors = suggested_tt_shapes(n, 3)
            assert math.prod(factors) >= n

    def test_reasonably_balanced(self):
        factors = suggested_tt_shapes(10131227, 3)
        assert max(factors) / min(factors) <= 2.0

    def test_exact_mode(self):
        factors = suggested_tt_shapes(5040, 3, allow_round_up=False)
        assert math.prod(factors) == 5040

    @given(st.integers(min_value=1, max_value=2_000_000),
           st.integers(min_value=2, max_value=4))
    @settings(max_examples=100)
    def test_round_up_bounded(self, n, d):
        factors = suggested_tt_shapes(n, d)
        prod = math.prod(factors)
        assert prod >= n
        # Padding stays modest relative to a balanced-factor window.
        assert prod <= n + max(64, int(np.ceil(n ** (1 / d))) * 4)
