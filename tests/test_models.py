"""Tests for DLRMConfig, the DLRM model (with full gradient check) and factories."""

import numpy as np
import pytest

from repro.cache import CachedTTEmbeddingBag
from repro.models import DLRM, DLRMConfig, TTConfig, build_dlrm, build_ttrec, largest_tables
from repro.ops import EmbeddingBag
from repro.tt import TTEmbeddingBag
from tests.helpers import numeric_grad_check, random_csr

SIZES = (500, 40, 300, 8, 200)


@pytest.fixture
def config():
    return DLRMConfig(table_sizes=SIZES, num_dense=5, emb_dim=4,
                      bottom_mlp=(8,), top_mlp=(8,))


def make_batch(rng, config, batch=6):
    dense = rng.normal(size=(batch, config.num_dense))
    sparse = [random_csr(rng, s, batch, allow_empty=False) for s in config.table_sizes]
    labels = (rng.random(batch) > 0.5).astype(float)
    return dense, sparse, labels


class TestConfig:
    def test_dims(self, config):
        assert config.bottom_sizes() == [5, 8, 4]
        f = 6
        assert config.interaction_dim() == 4 + f * (f - 1) // 2
        assert config.top_sizes() == [config.interaction_dim(), 8, 1]

    def test_cat_interaction_dim(self, config):
        cat = config.with_(interaction="cat")
        assert cat.interaction_dim() == 4 * 6

    def test_validation(self):
        with pytest.raises(ValueError):
            DLRMConfig(table_sizes=())
        with pytest.raises(ValueError):
            DLRMConfig(table_sizes=(0,))
        with pytest.raises(ValueError):
            DLRMConfig(table_sizes=(5,), emb_dim=0)
        with pytest.raises(ValueError):
            DLRMConfig(table_sizes=(5,), interaction="sum")
        with pytest.raises(ValueError):
            DLRMConfig(table_sizes=(5,), tt_tables={3: TTConfig()})

    def test_ttconfig_validation(self):
        with pytest.raises(ValueError):
            TTConfig(rank=0)
        with pytest.raises(ValueError):
            TTConfig(d=1)

    def test_with_replaces(self, config):
        c2 = config.with_(emb_dim=8)
        assert c2.emb_dim == 8 and config.emb_dim == 4


class TestLargestTables:
    def test_selects_by_size(self):
        assert largest_tables(SIZES, 2) == [0, 2]

    def test_tie_break_by_index(self):
        assert largest_tables((5, 5, 5), 2) == [0, 1]

    def test_validation(self):
        with pytest.raises(ValueError):
            largest_tables(SIZES, -1)


class TestFactories:
    def test_baseline_all_dense(self, config):
        model = build_dlrm(config, rng=0)
        assert all(isinstance(e, EmbeddingBag) for e in model.embeddings)

    def test_ttrec_compresses_largest(self, config):
        model = build_ttrec(config, num_tt_tables=2, tt=TTConfig(rank=2),
                            min_rows=100, rng=0)
        kinds = [type(e) for e in model.embeddings]
        assert kinds[0] is TTEmbeddingBag
        assert kinds[2] is TTEmbeddingBag
        assert kinds[1] is EmbeddingBag

    def test_min_rows_skips_small(self, config):
        model = build_ttrec(config, num_tt_tables=5, tt=TTConfig(rank=2),
                            min_rows=250, rng=0)
        tt_count = sum(isinstance(e, TTEmbeddingBag) for e in model.embeddings)
        assert tt_count == 2  # only 500 and 300 pass

    def test_cache_variant(self, config):
        tt = TTConfig(rank=2, use_cache=True, cache_size=4, warmup_steps=1)
        model = build_ttrec(config, num_tt_tables=1, tt=tt, min_rows=100, rng=0)
        assert isinstance(model.embeddings[0], CachedTTEmbeddingBag)

    def test_ttrec_smaller_than_baseline(self, config):
        base = build_dlrm(config, rng=0)
        tt = build_ttrec(config, num_tt_tables=2, tt=TTConfig(rank=2),
                         min_rows=100, rng=0)
        assert tt.embedding_parameters() < base.embedding_parameters()


class TestDLRMForwardBackward:
    def test_forward_shape(self, config):
        rng = np.random.default_rng(0)
        model = build_dlrm(config, rng=0)
        dense, sparse, _ = make_batch(rng, config)
        logits = model.forward(dense, sparse)
        assert logits.shape == (6,)

    def test_wrong_sparse_count_rejected(self, config):
        rng = np.random.default_rng(0)
        model = build_dlrm(config, rng=0)
        dense, sparse, _ = make_batch(rng, config)
        with pytest.raises(ValueError):
            model.forward(dense, sparse[:-1])

    def test_wrong_bag_count_rejected(self, config):
        rng = np.random.default_rng(0)
        model = build_dlrm(config, rng=0)
        dense, sparse, _ = make_batch(rng, config)
        bad = list(sparse)
        idx, off = bad[0]
        bad[0] = (idx[:off[-2]], off[:-1])  # one bag short
        with pytest.raises(ValueError):
            model.forward(dense, bad)

    def test_wrong_embedding_count_rejected(self, config):
        with pytest.raises(ValueError):
            DLRM(config, embeddings=[EmbeddingBag(10, 4, rng=0)], rng=0)

    @pytest.mark.parametrize("interaction", ["dot", "cat"])
    def test_full_model_gradients(self, config, interaction):
        """End-to-end gradient check: every parameter of every component."""
        cfg = config.with_(interaction=interaction,
                           tt_tables={0: TTConfig(rank=2)})
        rng = np.random.default_rng(30)
        model = build_dlrm(cfg, rng=0)
        dense, sparse, _ = make_batch(rng, cfg, batch=4)
        r = rng.normal(size=4)

        def loss():
            return float((model.forward(dense, sparse) * r).sum())

        model.zero_grad()
        model.forward(dense, sparse)
        model.backward(r)
        for p in model.parameters():
            numeric_grad_check(p.data, p.grad, loss, samples=6, rtol=5e-4)

    def test_predict_proba_range(self, config):
        rng = np.random.default_rng(1)
        model = build_dlrm(config, rng=0)
        dense, sparse, _ = make_batch(rng, config)
        p = model.predict_proba(dense, sparse)
        assert np.all((p > 0) & (p < 1))

    def test_parameter_accounting(self, config):
        model = build_dlrm(config, rng=0)
        assert model.embedding_parameters() == sum(SIZES) * 4
        total = sum(p.size for p in model.parameters())
        assert total == model.embedding_parameters() + model.mlp_parameters()
