"""Tests for the telemetry layer: registry, tracer, events, overhead."""

import json
import time

import numpy as np
import pytest

from repro.data import KAGGLE, SyntheticCTRDataset
from repro.models import DLRMConfig, build_dlrm
from repro.telemetry import (
    EVENT_SCHEMA,
    SNAPSHOT_SCHEMA,
    Histogram,
    JsonlSink,
    MetricsRegistry,
    disable_tracing,
    emit_event,
    enable_tracing,
    get_registry,
    get_tracer,
    install_sink,
    metric_key,
    read_events,
    snapshot,
    trace,
    tracing_enabled,
    uninstall_sink,
    validate_event,
    validate_snapshot,
    write_snapshot,
)
from repro.training import Trainer


@pytest.fixture(autouse=True)
def _clean_tracer():
    """Keep the process-wide tracer/sink state from leaking across tests."""
    tracer = get_tracer()
    was_enabled = tracer.enabled
    tracer.reset()
    yield
    uninstall_sink()
    tracer.reset()
    tracer.enabled = was_enabled


def tiny_training_run(iters=12, seed=0):
    spec = KAGGLE.scaled(0.0002)
    ds = SyntheticCTRDataset(spec, seed=seed)
    cfg = DLRMConfig(table_sizes=spec.table_sizes, emb_dim=8,
                     bottom_mlp=(16, 8), top_mlp=(16,))
    model = build_dlrm(cfg, rng=seed)
    trainer = Trainer(model, lr=0.05)
    return trainer.train(ds.batches(64, iters))


# ---------------------------------------------------------------------- #
# MetricsRegistry
# ---------------------------------------------------------------------- #

class TestMetricsRegistry:
    def test_metric_key_labels_sorted(self):
        assert metric_key("cache.hits") == "cache.hits"
        assert (metric_key("cache.hits", {"b": "2", "a": "1"})
                == "cache.hits{a=1,b=2}")

    def test_counter_get_or_create_identity(self):
        reg = MetricsRegistry()
        c1 = reg.counter("x.count", module="m0")
        c2 = reg.counter("x.count", module="m0")
        assert c1 is c2
        assert reg.counter("x.count", module="m1") is not c1

    def test_counter_semantics(self):
        reg = MetricsRegistry()
        c = reg.counter("n")
        c.inc()
        c.inc(4)
        assert c.value == 5
        c.set(11)
        assert c.value == 11
        c.reset()
        assert c.value == 0

    def test_gauge_last_value_wins(self):
        reg = MetricsRegistry()
        g = reg.gauge("load")
        g.set(1.5)
        g.set(0.25)
        assert g.value == 0.25

    def test_histogram_buckets_and_mean(self):
        h = Histogram(bounds=(10, 100))
        for v in (5, 50, 500, 7):
            h.observe(v)
        assert h.count == 4
        assert h.min == 5 and h.max == 500
        assert h.mean == pytest.approx(562 / 4)
        s = h.summary()
        assert s["buckets"] == {"10": 2, "100": 1, "+inf": 1}
        h.reset()
        assert h.count == 0 and h.summary()["min"] is None

    def test_histogram_rejects_unsorted_bounds(self):
        with pytest.raises(ValueError):
            Histogram(bounds=(100, 10))

    def test_snapshot_and_reset_prefix(self):
        reg = MetricsRegistry()
        reg.counter("cache.hits", module="e0").inc(3)
        reg.counter("collective.count").inc(2)
        reg.gauge("mem").set(9.0)
        snap = reg.snapshot()
        assert snap["counters"]["cache.hits{module=e0}"] == 3
        assert snap["counters"]["collective.count"] == 2
        assert snap["gauges"]["mem"] == 9.0
        reg.reset(prefix="cache.")
        assert reg.counter("cache.hits", module="e0").value == 0
        assert reg.counter("collective.count").value == 2
        reg.reset()
        assert reg.counter("collective.count").value == 0
        assert len(reg) == 3

    def test_global_registry_is_shared(self):
        assert get_registry() is get_registry()


# ---------------------------------------------------------------------- #
# Tracer
# ---------------------------------------------------------------------- #

class TestTracer:
    def test_disabled_returns_shared_noop(self):
        disable_tracing()
        assert not tracing_enabled()
        s1 = trace("a")
        s2 = trace("b", core=1)
        assert s1 is s2  # one shared no-op object, no allocation
        with s1:
            pass
        assert get_tracer().total_spans() == 0

    def test_nested_aggregation(self):
        enable_tracing()
        for _ in range(3):
            with trace("outer"):
                with trace("inner", core=0):
                    pass
                with trace("inner", core=1):
                    pass
        tree = get_tracer().tree_dict()
        assert tree["outer"]["count"] == 3
        children = tree["outer"]["children"]
        assert children["inner[core=0]"]["count"] == 3
        assert children["inner[core=1]"]["count"] == 3
        assert get_tracer().total_spans() == 9

    def test_timing_monotonicity(self):
        """Parent total covers its children; min <= mean <= max."""
        enable_tracing()
        with trace("outer"):
            with trace("inner"):
                time.sleep(0.002)
        tree = get_tracer().tree_dict()
        outer, inner = tree["outer"], tree["outer"]["children"]["inner"]
        assert outer["total_ns"] >= inner["total_ns"] > 0
        assert inner["min_ns"] <= inner["total_ns"] / inner["count"] <= inner["max_ns"]
        assert inner["total_ns"] >= 2_000_000  # the 2 ms sleep is covered

    def test_depth_and_reset(self):
        enable_tracing()
        tracer = get_tracer()
        assert tracer.depth == 0
        with trace("a"):
            assert tracer.depth == 1
            with trace("b"):
                assert tracer.depth == 2
        assert tracer.depth == 0
        tracer.reset()
        assert tracer.tree_dict() == {}
        assert tracer.enabled  # reset keeps the flag

    def test_format_tree_lists_spans(self):
        enable_tracing()
        with trace("tt.forward.gemm", core=1):
            pass
        text = get_tracer().format_tree()
        assert "tt.forward.gemm[core=1]" in text
        get_tracer().reset()
        assert "no spans recorded" in get_tracer().format_tree()

    def test_span_records_on_exception(self):
        enable_tracing()
        with pytest.raises(RuntimeError):
            with trace("boom"):
                raise RuntimeError("x")
        assert get_tracer().tree_dict()["boom"]["count"] == 1
        assert get_tracer().depth == 0


# ---------------------------------------------------------------------- #
# JSONL events & snapshots
# ---------------------------------------------------------------------- #

class TestEvents:
    def test_jsonl_round_trip(self, tmp_path):
        path = tmp_path / "events.jsonl"
        install_sink(path)
        emit_event("guard.skip", loss=float("nan"), failure_streak=1)
        emit_event("cache.repair", rows=3)
        uninstall_sink()
        events = read_events(path)
        assert [e["type"] for e in events] == ["guard.skip", "cache.repair"]
        assert [e["seq"] for e in events] == [0, 1]
        assert events[0]["schema"] == EVENT_SCHEMA
        # NaN ships as a string so the line stays strict JSON.
        assert events[0]["data"]["loss"] == "nan"
        assert events[1]["data"]["rows"] == 3
        only = read_events(path, event_type="cache.repair")
        assert len(only) == 1

    def test_emit_without_sink_is_noop(self):
        uninstall_sink()
        emit_event("anything", x=1)  # must not raise

    def test_numpy_payloads_coerced(self, tmp_path):
        path = tmp_path / "np.jsonl"
        with JsonlSink(path) as sink:
            rec = sink.emit("t", a=np.int64(7), b=np.array([1.0, 2.0]))
        assert rec["data"] == {"a": 7, "b": [1.0, 2.0]}
        json.dumps(rec)  # strictly serializable

    def test_validate_event_rejects_malformed(self):
        with pytest.raises(ValueError):
            validate_event({"schema": "bogus/v9"})
        with pytest.raises(ValueError):
            validate_event({"schema": EVENT_SCHEMA, "seq": "0",
                            "ts_ns": 1, "type": "t", "data": {}})

    def test_snapshot_schema_round_trip(self, tmp_path):
        get_registry().counter("test.snapshot.counter").inc(2)
        enable_tracing()
        with trace("test.span"):
            pass
        path = tmp_path / "snap.json"
        doc = write_snapshot(path, command="unit-test",
                             result={"ok": True, "loss": float("inf")})
        loaded = json.loads(path.read_text())
        assert loaded == doc
        validate_snapshot(loaded)
        assert loaded["schema"] == SNAPSHOT_SCHEMA
        assert loaded["command"] == "unit-test"
        assert loaded["metrics"]["counters"]["test.snapshot.counter"] >= 2
        assert loaded["spans"]["test.span"]["count"] == 1
        assert loaded["result"] == {"ok": True, "loss": "inf"}

    def test_validate_snapshot_rejects_malformed(self):
        good = snapshot(command="x")
        validate_snapshot(good)
        with pytest.raises(ValueError):
            validate_snapshot({**good, "schema": "nope"})
        with pytest.raises(ValueError):
            validate_snapshot({**good, "metrics": []})
        bad = json.loads(json.dumps(good))
        bad["metrics"]["counters"]["evil"] = "NaN"
        with pytest.raises(ValueError):
            validate_snapshot(bad)


# ---------------------------------------------------------------------- #
# Integration: shared registry sees every subsystem
# ---------------------------------------------------------------------- #

class TestSharedRegistry:
    def test_cache_and_collectives_share_one_registry(self):
        from repro.cache import CachedTTEmbeddingBag
        from repro.distributed.collectives import Communicator

        emb = CachedTTEmbeddingBag(600, 8, rank=4, cache_fraction=0.1,
                                   warmup_steps=0, rng=0)
        emb.forward(np.arange(12), np.array([0, 4, 8, 12]))
        comm = Communicator(4)
        comm.allreduce_mean([np.ones(8) for _ in range(4)])

        snap = get_registry().snapshot()
        cache_keys = [k for k in snap["counters"]
                      if k.startswith("cache.lookups")
                      and emb.metrics_label in k]
        coll_keys = [k for k in snap["counters"]
                     if k.startswith("collective.bytes")
                     and comm.metrics_label in k]
        assert cache_keys and snap["counters"][cache_keys[0]] == emb.lookups
        assert coll_keys and any(snap["counters"][k] > 0 for k in coll_keys)

    def test_trace_covers_tt_forward_and_trainer(self):
        enable_tracing()
        tiny_training_run(iters=4)
        tree = get_tracer().tree_dict()
        for stage in ("trainer.forward", "trainer.backward",
                      "trainer.optimizer"):
            assert tree[stage]["count"] == 4
        # The stream is exhausted by one extra fetch (the StopIteration).
        assert tree["trainer.data"]["count"] >= 4


# ---------------------------------------------------------------------- #
# Overhead guard: the disabled path must stay (near-)free and inert
# ---------------------------------------------------------------------- #

class TestOverheadGuard:
    def test_disabled_tracing_is_bit_identical(self):
        disable_tracing()
        res_off = tiny_training_run(iters=8, seed=3)
        enable_tracing()
        res_on = tiny_training_run(iters=8, seed=3)
        assert res_on.losses == res_off.losses  # telemetry never perturbs math

    def test_disabled_overhead_under_5_percent(self):
        """Bound: (#spans a traced run would open) x (disabled per-call
        cost) must stay below 5% of the run's wall-clock. This isolates
        the instrumentation cost from machine noise, which dwarfs a
        direct wall-clock A/B at this scale."""
        iters = 8
        # Count the spans this workload opens.
        enable_tracing()
        tracer = get_tracer()
        tracer.reset()
        t0 = time.perf_counter()
        tiny_training_run(iters=iters, seed=1)
        run_s = time.perf_counter() - t0
        span_count = tracer.total_spans()
        assert span_count > 0

        # Micro-time the disabled fast path.
        disable_tracing()
        n = 20_000
        t0 = time.perf_counter()
        for _ in range(n):
            with trace("overhead.probe", core=0):
                pass
        per_call_s = (time.perf_counter() - t0) / n

        overhead_s = span_count * per_call_s
        assert overhead_s < 0.05 * run_s, (
            f"{span_count} spans x {per_call_s * 1e9:.0f} ns "
            f"= {overhead_s * 1e3:.2f} ms vs run {run_s * 1e3:.1f} ms"
        )
