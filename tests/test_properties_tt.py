"""Deeper property-based tests for TT algebra invariants.

These pin mathematical identities the kernels must satisfy for *any*
cores and inputs — multilinearity in each core, scale equivariance,
gradient additivity across batches, and agreement between the three
independent evaluation paths (batched kernel, per-row reference, dense
reconstruction).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tt import TTEmbeddingBag, TTShape, tt_reconstruct, tt_svd
from repro.tt.kernels import tt_lookup_reference

SHAPE = TTShape.with_uniform_rank(60, 8, (3, 4, 5), (2, 2, 2), rank=4)


def fresh_emb(seed: int) -> TTEmbeddingBag:
    return TTEmbeddingBag(60, 8, shape=SHAPE, rng=seed)


seeds = st.integers(min_value=0, max_value=2 ** 31)


class TestMultilinearity:
    """The TT map is linear in each core separately."""

    @given(seeds, st.integers(min_value=0, max_value=2))
    @settings(max_examples=30, deadline=None)
    def test_scaling_one_core_scales_output(self, seed, core_idx):
        rng = np.random.default_rng(seed)
        emb = fresh_emb(seed)
        idx = rng.integers(0, 60, size=10)
        base = emb.lookup(idx)
        emb.cores[core_idx].data *= 2.5
        np.testing.assert_allclose(emb.lookup(idx), 2.5 * base, rtol=1e-10)

    @given(seeds, st.integers(min_value=0, max_value=2))
    @settings(max_examples=30, deadline=None)
    def test_additivity_in_one_core(self, seed, core_idx):
        rng = np.random.default_rng(seed)
        emb = fresh_emb(seed)
        idx = rng.integers(0, 60, size=8)
        delta = rng.normal(size=emb.cores[core_idx].data.shape)

        original = emb.cores[core_idx].data.copy()
        base = emb.lookup(idx)
        emb.cores[core_idx].data[...] = delta
        only_delta = emb.lookup(idx)
        emb.cores[core_idx].data[...] = original + delta
        combined = emb.lookup(idx)
        np.testing.assert_allclose(combined, base + only_delta, atol=1e-9)

    @given(seeds)
    @settings(max_examples=20, deadline=None)
    def test_global_scaling_is_product_of_core_scalings(self, seed):
        rng = np.random.default_rng(seed)
        emb = fresh_emb(seed)
        idx = rng.integers(0, 60, size=5)
        base = emb.lookup(idx)
        for p in emb.cores:
            p.data *= -1.0
        # (-1)^3 = -1 for d=3
        np.testing.assert_allclose(emb.lookup(idx), -base, rtol=1e-10)


class TestEvaluationPathAgreement:
    @given(seeds)
    @settings(max_examples=25, deadline=None)
    def test_three_paths_agree(self, seed):
        rng = np.random.default_rng(seed)
        emb = fresh_emb(seed)
        idx = rng.integers(0, 60, size=12)
        fast = emb.lookup(idx)
        slow = tt_lookup_reference([p.data for p in emb.cores], SHAPE, idx)
        dense = emb.materialize()[idx]
        np.testing.assert_allclose(fast, slow, atol=1e-11)
        np.testing.assert_allclose(fast, dense, atol=1e-11)

    @given(seeds)
    @settings(max_examples=15, deadline=None)
    def test_svd_of_materialization_roundtrips(self, seed):
        """materialize -> tt_svd at the same ranks -> same table."""
        emb = fresh_emb(seed)
        table = emb.materialize()
        # The table has TT-rank <= SHAPE.ranks by construction, so a
        # same-rank TT-SVD reproduces it exactly.
        cores = tt_svd(table, SHAPE)
        np.testing.assert_allclose(tt_reconstruct(cores, SHAPE), table, atol=1e-9)


class TestGradientStructure:
    @given(seeds)
    @settings(max_examples=15, deadline=None)
    def test_grad_additivity_across_batches(self, seed):
        """backward(b1) + backward(b2) == backward over the union batch."""
        rng = np.random.default_rng(seed)
        emb = fresh_emb(seed)
        idx1 = rng.integers(0, 60, size=6)
        idx2 = rng.integers(0, 60, size=4)
        g1 = rng.normal(size=(6, 8))
        g2 = rng.normal(size=(4, 8))

        emb.zero_grad()
        emb.forward(idx1)
        emb.backward(g1)
        emb.forward(idx2)
        emb.backward(g2)
        accumulated = [p.grad.copy() for p in emb.cores]

        emb.zero_grad()
        emb.forward(np.concatenate([idx1, idx2]))
        emb.backward(np.vstack([g1, g2]))
        for acc, union in zip(accumulated, (p.grad for p in emb.cores)):
            np.testing.assert_allclose(acc, union, atol=1e-10)

    @given(seeds)
    @settings(max_examples=15, deadline=None)
    def test_grad_linear_in_upstream(self, seed):
        rng = np.random.default_rng(seed)
        emb = fresh_emb(seed)
        idx = rng.integers(0, 60, size=5)
        g = rng.normal(size=(5, 8))

        emb.zero_grad()
        emb.forward(idx)
        emb.backward(g)
        base = [p.grad.copy() for p in emb.cores]

        emb.zero_grad()
        emb.forward(idx)
        emb.backward(3.0 * g)
        for b, s in zip(base, (p.grad for p in emb.cores)):
            np.testing.assert_allclose(s, 3.0 * b, atol=1e-10)

    @given(seeds)
    @settings(max_examples=10, deadline=None)
    def test_untouched_core_slices_have_zero_grad(self, seed):
        rng = np.random.default_rng(seed)
        emb = fresh_emb(seed)
        idx = np.array([0])  # decodes to slice 0 of every core
        emb.zero_grad()
        emb.forward(idx)
        emb.backward(np.ones((1, 8)))
        for p in emb.cores:
            assert not p.grad[1:].any()  # only slice 0 touched
            assert p.grad[0].any()


class TestCompressionMonotonicity:
    @given(st.integers(min_value=1, max_value=12))
    @settings(max_examples=12, deadline=None)
    def test_truncated_svd_error_matches_discarded_singular_mass(self, rank):
        """TT-SVD truncation error is governed by the discarded spectrum:
        the Frobenius error is bounded by sqrt(sum of discarded sigma^2)
        summed over unfoldings (Oseledets 2011, Thm 2.2)."""
        rng = np.random.default_rng(7)
        w = rng.normal(size=(60, 8))
        shape = TTShape.with_uniform_rank(60, 8, (3, 4, 5), (2, 2, 2), rank)
        rec = tt_reconstruct(tt_svd(w, shape), shape)
        err = np.linalg.norm(rec - w)

        # Oracle bound from the two unfoldings of the exact tensor.
        from repro.tt.decomposition import _matrix_to_tensor

        t = _matrix_to_tensor(w, shape)
        bound_sq = 0.0
        for split in (1, 2):
            rows = int(np.prod(t.shape[:split]))
            s = np.linalg.svd(t.reshape(rows, -1), compute_uv=False)
            r = shape.ranks[split]
            bound_sq += float((s[r:] ** 2).sum())
        assert err <= np.sqrt(bound_sq) + 1e-9
