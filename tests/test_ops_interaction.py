"""Tests for the DLRM feature-interaction operators."""

import numpy as np
import pytest

from repro.ops import CatInteraction, DotInteraction
from tests.helpers import numeric_grad_check


class TestDotInteraction:
    def test_output_dim(self):
        assert DotInteraction.output_dim(dense_dim=16, num_sparse=26) == 16 + 27 * 26 // 2

    def test_forward_matches_manual_pairs(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(2, 3))
        a = rng.normal(size=(2, 3))
        b = rng.normal(size=(2, 3))
        out = DotInteraction().forward(x, [a, b])
        assert out.shape == (2, 3 + 3)
        for s in range(2):
            np.testing.assert_allclose(out[s, :3], x[s])
            # strictly-lower-triangle order over features [x, a, b]:
            # pairs (a,x), (b,x), (b,a)
            np.testing.assert_allclose(out[s, 3], a[s] @ x[s])
            np.testing.assert_allclose(out[s, 4], b[s] @ x[s])
            np.testing.assert_allclose(out[s, 5], b[s] @ a[s])

    def test_no_self_interaction_terms(self):
        x = np.ones((1, 4))
        out = DotInteraction().forward(x, [])
        # With no sparse features there are no pairs at all.
        assert out.shape == (1, 4)

    def test_shape_mismatch_rejected(self):
        inter = DotInteraction()
        with pytest.raises(ValueError):
            inter.forward(np.ones((2, 3)), [np.ones((2, 4))])

    def test_backward_before_forward(self):
        with pytest.raises(RuntimeError):
            DotInteraction().backward(np.ones((1, 3)))

    def test_gradients(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(3, 4))
        sparse = [rng.normal(size=(3, 4)) for _ in range(3)]
        inter = DotInteraction()
        r = rng.normal(size=(3, DotInteraction.output_dim(4, 3)))

        def loss():
            return float((inter.forward(x, sparse) * r).sum())

        inter.forward(x, sparse)
        grad_x, grad_sparse = inter.backward(r)
        numeric_grad_check(x, grad_x, loss, samples=12)
        for v, g in zip(sparse, grad_sparse):
            numeric_grad_check(v, g, loss, samples=8)


class TestCatInteraction:
    def test_forward_concatenates(self):
        x = np.ones((2, 2))
        a = 2 * np.ones((2, 2))
        out = CatInteraction().forward(x, [a])
        np.testing.assert_array_equal(out, [[1, 1, 2, 2], [1, 1, 2, 2]])

    def test_output_dim(self):
        assert CatInteraction.output_dim(16, 26) == 16 * 27

    def test_backward_splits(self):
        inter = CatInteraction()
        x = np.zeros((2, 2))
        a = np.zeros((2, 3))
        inter.forward(x, [a])
        g = np.arange(10.0).reshape(2, 5)
        gx, gs = inter.backward(g)
        np.testing.assert_array_equal(gx, g[:, :2])
        np.testing.assert_array_equal(gs[0], g[:, 2:])

    def test_backward_before_forward(self):
        with pytest.raises(RuntimeError):
            CatInteraction().backward(np.ones((1, 2)))
