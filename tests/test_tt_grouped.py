"""Tests for the fused multi-table TT kernel (bit-equivalence is the bar)."""

import numpy as np
import pytest

from repro.tt import TTEmbeddingBag, TTShape
from repro.tt.grouped import GroupedTTEmbeddingBag
from tests.helpers import random_csr

SHAPE = TTShape.with_uniform_rank(60, 8, (3, 4, 5), (2, 2, 2), rank=4)


def make_group(n_tables=4, mode="sum"):
    tables = [TTEmbeddingBag(60, 8, shape=SHAPE, mode=mode, rng=i)
              for i in range(n_tables)]
    return GroupedTTEmbeddingBag(tables), tables


def make_inputs(rng, n_tables, bags=5, weighted=False):
    sparse, weights = [], []
    for _ in range(n_tables):
        idx, off = random_csr(rng, 60, bags)
        sparse.append((idx, off))
        weights.append(rng.normal(size=idx.size) if weighted else None)
    return sparse, weights


class TestForwardEquivalence:
    @pytest.mark.parametrize("mode", ["sum", "mean"])
    @pytest.mark.parametrize("weighted", [False, True])
    def test_matches_per_table_forward(self, mode, weighted):
        rng = np.random.default_rng(0)
        group, tables = make_group(mode=mode)
        sparse, weights = make_inputs(rng, 4, weighted=weighted)
        fused = group.forward_all(sparse, weights if weighted else None)
        for t, (emb, (idx, off)) in enumerate(zip(tables, sparse)):
            solo = emb.forward(idx, off, weights[t])
            np.testing.assert_allclose(fused[t], solo, atol=1e-12)

    def test_empty_table_in_group(self):
        group, tables = make_group(2)
        sparse = [
            (np.array([3, 4], dtype=np.int64), np.array([0, 1, 2])),
            (np.empty(0, dtype=np.int64), np.array([0, 0, 0])),
        ]
        out = group.forward_all(sparse)
        assert out[0].shape == (2, 8)
        np.testing.assert_allclose(out[1], 0.0)

    def test_all_empty(self):
        group, _ = make_group(2)
        sparse = [(np.empty(0, dtype=np.int64), np.array([0, 0]))] * 2
        out = group.forward_all(sparse)
        for o in out:
            assert not o.any()

    def test_wrong_table_count(self):
        group, _ = make_group(3)
        with pytest.raises(ValueError):
            group.forward_all([(np.array([0]), np.array([0, 1]))])


class TestBackwardEquivalence:
    @pytest.mark.parametrize("mode", ["sum", "mean"])
    def test_matches_per_table_backward(self, mode):
        rng = np.random.default_rng(1)
        group, tables = make_group(mode=mode)
        solo_tables = [TTEmbeddingBag(60, 8, shape=SHAPE, mode=mode, rng=i)
                       for i in range(4)]
        for a, b in zip(solo_tables, tables):
            a.load_cores([p.data.copy() for p in b.cores])
        sparse, weights = make_inputs(rng, 4, weighted=True)
        grads = [rng.normal(size=(5, 8)) for _ in range(4)]

        group.forward_all(sparse, weights)
        group.backward_all(grads)
        for t, emb in enumerate(solo_tables):
            emb.zero_grad()
            emb.forward(*sparse[t], weights[t])
            emb.backward(grads[t])
            for pf, ps in zip(tables[t].cores, emb.cores):
                np.testing.assert_allclose(pf.grad, ps.grad, atol=1e-11)

    def test_touched_rows_recorded_per_table(self):
        rng = np.random.default_rng(2)
        group, tables = make_group(2)
        sparse, _ = make_inputs(rng, 2)
        group.forward_all(sparse)
        group.backward_all([np.ones((5, 8))] * 2)
        for t, emb in enumerate(tables):
            decoded = SHAPE.decode_indices(sparse[t][0])
            for k, p in enumerate(emb.cores):
                np.testing.assert_array_equal(
                    p.touched_rows, np.unique(decoded[k])
                )

    def test_backward_before_forward(self):
        group, _ = make_group(2)
        with pytest.raises(RuntimeError):
            group.backward_all([np.ones((1, 8))] * 2)

    def test_wrong_grad_count(self):
        rng = np.random.default_rng(3)
        group, _ = make_group(2)
        sparse, _ = make_inputs(rng, 2)
        group.forward_all(sparse)
        with pytest.raises(ValueError):
            group.backward_all([np.ones((5, 8))])


class TestValidation:
    def test_requires_same_shape(self):
        a = TTEmbeddingBag(60, 8, shape=SHAPE, rng=0)
        other = TTShape.with_uniform_rank(60, 8, (3, 4, 5), (2, 2, 2), rank=3)
        b = TTEmbeddingBag(60, 8, shape=other, rng=1)
        with pytest.raises(ValueError, match="identical shapes"):
            GroupedTTEmbeddingBag([a, b])

    def test_requires_same_mode(self):
        a = TTEmbeddingBag(60, 8, shape=SHAPE, mode="sum", rng=0)
        b = TTEmbeddingBag(60, 8, shape=SHAPE, mode="mean", rng=1)
        with pytest.raises(ValueError, match="pooling mode"):
            GroupedTTEmbeddingBag([a, b])

    def test_requires_nonempty(self):
        with pytest.raises(ValueError):
            GroupedTTEmbeddingBag([])

    def test_parameters_are_member_tables(self):
        group, tables = make_group(2)
        names = {p.name for p in group.parameters()}
        for t in tables:
            for p in t.parameters():
                assert p.name in names
