"""Shared test utilities: numerical gradient checking and tiny fixtures."""

from __future__ import annotations

import numpy as np

from repro.utils.seeding import as_rng


def numeric_grad_check(param_array: np.ndarray, analytic_grad: np.ndarray,
                       loss_fn, *, samples: int = 20, eps: float = 1e-6,
                       rtol: float = 1e-4, atol: float = 1e-7,
                       rng=0) -> float:
    """Central-difference check of ``analytic_grad`` against ``loss_fn``.

    ``loss_fn`` is a zero-argument callable returning the scalar loss; it
    must read ``param_array`` live (the checker perturbs entries in place).
    A random subset of entries is probed. Returns the max relative error
    and asserts it is within tolerance.
    """
    rng = as_rng(rng)
    flat = param_array.reshape(-1)
    gflat = np.asarray(analytic_grad).reshape(-1)
    assert flat.shape == gflat.shape
    n = min(samples, flat.size)
    picks = rng.choice(flat.size, size=n, replace=False)
    worst = 0.0
    for j in picks:
        orig = flat[j]
        flat[j] = orig + eps
        lp = float(loss_fn())
        flat[j] = orig - eps
        lm = float(loss_fn())
        flat[j] = orig
        numeric = (lp - lm) / (2.0 * eps)
        denom = max(abs(numeric), abs(gflat[j]), atol / rtol)
        err = abs(numeric - gflat[j]) / denom
        worst = max(worst, err)
        assert err <= rtol, (
            f"grad mismatch at flat index {j}: numeric={numeric:.8g} "
            f"analytic={gflat[j]:.8g} rel_err={err:.2e}"
        )
    return worst


def random_csr(rng, num_rows: int, num_bags: int, *, max_bag: int = 5,
               allow_empty: bool = True) -> tuple[np.ndarray, np.ndarray]:
    """Random (indices, offsets) CSR bags for embedding tests."""
    rng = as_rng(rng)
    lo = 0 if allow_empty else 1
    counts = rng.integers(lo, max_bag + 1, size=num_bags)
    indices = rng.integers(0, num_rows, size=int(counts.sum()))
    offsets = np.concatenate([[0], np.cumsum(counts)]).astype(np.int64)
    return indices.astype(np.int64), offsets
