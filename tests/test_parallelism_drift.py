"""Tests for the §5 parallelism cost model and traffic drift."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.parallelism import (
    ClusterSpec,
    compare_parallelism,
    data_parallel_cost,
    model_parallel_cost,
)
from repro.data import KAGGLE, TERABYTE, ZipfSampler


class TestClusterSpec:
    def test_transfer_time_alpha_beta(self):
        c = ClusterSpec(num_devices=2, link_bandwidth_gbps=100, link_latency_us=5)
        # 1 MB at 100 Gbps = 8e6 bits / 1e5 bits-per-us = 80 us + 5 us
        assert c.transfer_us(1e6) == pytest.approx(85.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            ClusterSpec(num_devices=0)
        with pytest.raises(ValueError):
            ClusterSpec(num_devices=2, link_bandwidth_gbps=0)


class TestParallelismModel:
    def test_dense_terabyte_does_not_fit_one_gpu(self):
        """The paper's §5 premise: large-dim DLRMs exceed device memory."""
        cluster = ClusterSpec(num_devices=1, device_memory_gb=8.0)
        dense = model_parallel_cost(TERABYTE, cluster, batch_size=2048)
        assert not dense.fits_per_device

    def test_ttrec_fits_where_dense_does_not(self):
        cluster = ClusterSpec(num_devices=1, device_memory_gb=8.0)
        tt = data_parallel_cost(TERABYTE, cluster, num_tt_tables=7, rank=32)
        assert tt.fits_per_device

    def test_single_device_no_comm(self):
        cluster = ClusterSpec(num_devices=1)
        dense = model_parallel_cost(KAGGLE, cluster, batch_size=2048)
        tt = data_parallel_cost(KAGGLE, cluster, num_tt_tables=7, rank=32)
        assert dense.comm_bytes == 0 and tt.comm_bytes == 0

    def test_ttrec_moves_fewer_bytes_than_dense_allreduce_would(self):
        """Data-parallel dense would allreduce GBs of tables; TT-Rec's
        allreduce is MB-scale — two orders of magnitude less."""
        cluster = ClusterSpec(num_devices=8)
        tt = data_parallel_cost(KAGGLE, cluster, num_tt_tables=7, rank=32)
        dense_tables_bytes = KAGGLE.embedding_bytes()
        assert tt.comm_bytes < dense_tables_bytes / 50

    def test_sharding_reduces_per_device_footprint(self):
        one = model_parallel_cost(TERABYTE, ClusterSpec(num_devices=1),
                                  batch_size=2048)
        eight = model_parallel_cost(TERABYTE, ClusterSpec(num_devices=8),
                                    batch_size=2048)
        assert eight.per_device_model_bytes < one.per_device_model_bytes

    def test_a2a_volume_scales_with_batch(self):
        cluster = ClusterSpec(num_devices=4)
        small = model_parallel_cost(KAGGLE, cluster, batch_size=512)
        large = model_parallel_cost(KAGGLE, cluster, batch_size=4096)
        assert large.comm_bytes > small.comm_bytes

    def test_compare_returns_both(self):
        dense, tt = compare_parallelism(KAGGLE, ClusterSpec(num_devices=8))
        assert "model-parallel" in dense.strategy
        assert "data-parallel" in tt.strategy
        assert "GB/device" in dense.summary()

    @given(st.integers(min_value=2, max_value=64))
    @settings(max_examples=20, deadline=None)
    def test_property_comm_time_positive_multi_device(self, n):
        cluster = ClusterSpec(num_devices=n)
        dense, tt = compare_parallelism(KAGGLE, cluster)
        assert dense.comm_time_us > 0
        assert tt.comm_time_us > 0
        assert dense.comm_bytes > 0 and tt.comm_bytes > 0


class TestZipfDrift:
    def test_drift_preserves_permutation(self):
        z = ZipfSampler(500, 1.1, rng=0)
        for _ in range(10):
            z.drift(0.2)
            ids = np.sort(z._rank_to_id)
            np.testing.assert_array_equal(ids, np.arange(500))

    def test_drift_changes_hot_set(self):
        z = ZipfSampler(1000, 1.2, rng=0)
        before = set(z.hottest(50))
        z.drift(0.5)
        after = set(z.hottest(50))
        assert before != after

    def test_zero_drift_is_noop(self):
        z = ZipfSampler(100, 1.0, rng=0)
        before = z._rank_to_id.copy()
        z.drift(0.0)
        np.testing.assert_array_equal(z._rank_to_id, before)

    def test_pmf_unchanged_by_drift(self):
        z = ZipfSampler(100, 1.0, rng=0)
        total_before = z.pmf().sum()
        z.drift(0.3)
        assert z.pmf().sum() == pytest.approx(total_before)
        assert z.top_k_mass(10) == pytest.approx(z.top_k_mass(10))

    def test_validation(self):
        z = ZipfSampler(100, 1.0, rng=0)
        with pytest.raises(ValueError):
            z.drift(1.5)

    def test_drifting_stream_defeats_static_cache(self):
        """Under drift, a frozen hot set loses hit rate while a refreshed
        LFU tracker keeps up — the reason the cache is semi-dynamic."""
        rng_hits = {"static": 0, "refresh": 0}
        for policy in ("static", "refresh"):
            z = ZipfSampler(2000, 1.3, rng=42)
            frozen = np.sort(z.hottest(100))
            hits = 0
            total = 0
            current = frozen.copy()
            for step in range(40):
                batch = z.sample(500)
                lookup_set = frozen if policy == "static" else current
                hits += np.isin(batch, lookup_set).sum()
                total += batch.size
                z.drift(0.02)
                if policy == "refresh":
                    current = np.sort(z.hottest(100))
            rng_hits[policy] = hits / total
        assert rng_hits["refresh"] > rng_hits["static"] + 0.05
