"""Fig. 4: the multi-stage training process with caching, traced live.

The figure's flow: train on TT tables only (warm-up) -> populate the
cache from the LFU tracker (hot rows materialised from the cores) ->
hybrid training (hits update densely, misses through Algorithm 2) ->
periodic semi-dynamic refresh. This bench runs the schedule on Zipf
traffic and prints the hit-rate timeline with the stage boundaries,
asserting the transitions happen exactly when configured.
"""

import numpy as np
from conftest import banner

from repro.bench import format_series
from repro.cache import CachedTTEmbeddingBag
from repro.data import ZipfSampler

ROWS = 10_000
CACHE = 100
BATCH = 256
WARMUP = 20
REFRESH = 40
STEPS = 120


def test_fig4_multistage_schedule(benchmark):
    def run():
        z = ZipfSampler(ROWS, 1.2, rng=5)
        emb = CachedTTEmbeddingBag(
            ROWS, 8, rank=4, cache_size=CACHE, warmup_steps=WARMUP,
            refresh_interval=REFRESH, rng=5,
        )
        timeline = []
        first_warm = None
        for step in range(1, STEPS + 1):
            h0, l0 = emb.hits, emb.lookups
            was_warm = emb.is_warm
            emb.forward(z.sample(BATCH))
            if emb.is_warm and not was_warm:
                first_warm = step
            step_hit = (emb.hits - h0) / (emb.lookups - l0)
            timeline.append((step, emb.is_warm, step_hit))
        return timeline, first_warm, emb

    timeline, first_warm, emb = benchmark.pedantic(run, rounds=1, iterations=1)
    banner("Fig. 4: multi-stage training schedule (warm-up -> populate -> hybrid)")
    marks = [s for s, _, _ in timeline if s % 10 == 0]
    hits = {s: h for s, _, h in timeline}
    print(format_series(
        f"per-step hit rate (warm-up={WARMUP} steps, refresh every {REFRESH})",
        marks, [f"{hits[s]:.3f}" for s in marks],
        x_label="step", y_label="hit rate",
    ))
    print(f"\ncache populated at step {first_warm}; "
          f"ideal hit rate for {CACHE} hottest rows: "
          f"{ZipfSampler(ROWS, 1.2, rng=5).top_k_mass(CACHE):.3f}")

    # Stage 1: every step strictly before the warm-up boundary misses
    # entirely (population happens *during* step WARMUP, before serving).
    pre = [h for s, warm, h in timeline if s < WARMUP]
    assert all(h == 0.0 for h in pre)
    # Transition exactly at the configured warm-up boundary.
    assert first_warm == WARMUP
    # Stage 3: hybrid steady state approaches the analytic ideal.
    steady = np.mean([h for s, _, h in timeline if s > STEPS - 30])
    ideal = ZipfSampler(ROWS, 1.2, rng=5).top_k_mass(CACHE)
    assert steady > 0.75 * ideal
