"""Fig. 10: TT-Rec cache — warm-up length and cache-size sweeps.

(a) Warm-up iterations (fraction of training spent warming the cache
    before population) vs total training time and final accuracy.
(b) Cache size, from 0.1% to 10% of the table, vs training time and
    accuracy. The paper finds tiny caches (0.01%) already suffice.
"""

from conftest import banner, scaled_iters

from repro.bench import format_table
from repro.cache import CachedTTEmbeddingBag
from repro.models import TTConfig
from trainlib import train_and_eval


def _cached_embeddings(model):
    return [e for e in model.embeddings if isinstance(e, CachedTTEmbeddingBag)]


def test_fig10a_warmup(benchmark, kaggle_small):
    iters = scaled_iters(200)

    def run():
        rows = []
        for frac in (0.1, 0.3, 0.5):
            tt = TTConfig(rank=16, use_cache=True, cache_fraction=0.02,
                          warmup_steps=int(frac * iters), refresh_interval=None)
            res, ev, model = train_and_eval(
                kaggle_small, num_tt=3, tt=tt, iters=iters, seed=6,
            )
            hit = max(e.hit_rate() for e in _cached_embeddings(model))
            rows.append([f"{frac:.0%}", f"{res.ms_per_iter:.2f}",
                         f"{ev.accuracy * 100:.2f}", f"{hit:.2f}"])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    banner("Fig. 10(a): warm-up length vs training time and accuracy")
    print(format_table(["warm-up", "ms/iter", "accuracy %", "best hit rate"], rows))
    print("\npaper: accuracy is insensitive to warm-up length; time varies "
          "with how long lookups stay uncached")
    accs = [float(r[2]) for r in rows]
    assert max(accs) - min(accs) < 2.0  # accuracy roughly flat


def test_fig10b_cache_size(benchmark, kaggle_small):
    iters = scaled_iters(200)

    def run():
        rows = []
        for frac in (0.001, 0.01, 0.1):
            tt = TTConfig(rank=16, use_cache=True, cache_fraction=frac,
                          warmup_steps=int(0.1 * iters), refresh_interval=None)
            res, ev, model = train_and_eval(
                kaggle_small, num_tt=3, tt=tt, iters=iters, seed=6,
            )
            hit = max(e.hit_rate() for e in _cached_embeddings(model))
            rows.append([f"{frac:.1%}", f"{res.ms_per_iter:.2f}",
                         f"{ev.accuracy * 100:.2f}", f"{hit:.2f}"])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    banner("Fig. 10(b): cache size vs training time and accuracy")
    print(format_table(["cache size", "ms/iter", "accuracy %", "best hit rate"], rows))
    print("\npaper: a cache of 0.01% of the table already suffices; larger "
          "caches raise hit rate with little accuracy change")
    hits = [float(r[3]) for r in rows]
    assert hits[-1] >= hits[0]  # larger cache -> at least the hit rate
    accs = [float(r[2]) for r in rows]
    assert max(accs) - min(accs) < 2.0
