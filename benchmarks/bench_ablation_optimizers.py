"""Ablation: embedding optimizer choice (SGD vs Adagrad vs row-wise Adagrad).

The MLPerf-DLRM reference (and the paper) trains with plain SGD; industry
DLRM training typically uses (row-wise) Adagrad for the embedding tables.
This bench trains the same TT-Rec model under each optimizer and compares
convergence and optimizer-state overhead.
"""

import numpy as np
from conftest import banner, scaled_iters

from repro.bench import format_table
from repro.data import SyntheticCTRDataset
from repro.models import DLRMConfig, TTConfig, build_ttrec
from repro.ops.optim import Adagrad, RowWiseAdagrad, SparseSGD
from repro.training import Trainer
from trainlib import MIN_ROWS, small_config


def _state_floats(opt, params) -> int:
    """Optimizer-state floats beyond the parameters themselves."""
    if isinstance(opt, SparseSGD):
        return 0
    return sum(a.size for a in opt._accum.values())


def test_embedding_optimizers(benchmark, kaggle_small):
    iters = scaled_iters(200)
    cfg = small_config(kaggle_small)

    def run():
        rows = []
        for name, make_opt, lr in (
            ("SGD (paper/MLPerf)", SparseSGD, 0.1),
            ("Adagrad", Adagrad, 0.05),
            ("RowWiseAdagrad", RowWiseAdagrad, 0.05),
        ):
            ds = SyntheticCTRDataset(kaggle_small, seed=9, noise=0.7)
            model = build_ttrec(cfg, num_tt_tables=5, tt=TTConfig(rank=8),
                                min_rows=MIN_ROWS, rng=0)
            params = model.parameters()
            opt = make_opt(params, lr=lr)
            trainer = Trainer(model, optimizer=opt)
            res = trainer.train(ds.batches(96, iters))
            ev = trainer.evaluate(ds.batches(512, 6))
            rows.append([
                name, f"{res.smoothed_loss():.4f}",
                f"{ev.accuracy * 100:.2f}", f"{ev.auc:.4f}",
                f"{_state_floats(opt, params):,}",
            ])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    banner("Ablation: embedding optimizer (TT-Emb 5, R=8)")
    print(format_table(
        ["optimizer", "final loss", "accuracy %", "auc", "extra state floats"],
        rows,
    ))
    print("\nRow-wise Adagrad keeps one accumulator per row: same adaptive "
          "benefit as Adagrad at a fraction of the state (why industry "
          "DLRM training uses it)")
    state = [int(r[4].replace(",", "")) for r in rows]
    assert state[0] == 0  # SGD stateless
    assert state[2] < state[1]  # row-wise smaller than element-wise
    # All three must actually learn.
    for r in rows:
        assert float(r[3]) > 0.6
