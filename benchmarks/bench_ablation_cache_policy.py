"""Ablation: LFU vs LRU vs static cache policy under Zipf traffic.

The paper chooses LFU with semi-dynamic refresh. This bench replays the
same Zipf access stream through each policy and compares steady-state hit
rates — under a *stationary* hot set (the Fig. 9 finding), LFU should
match or beat recency-based and frozen policies.
"""

import numpy as np
from conftest import banner

from repro.bench import format_table
from repro.cache import CachedTTEmbeddingBag
from repro.data.zipf import ZipfSampler

ROWS = 20_000
DIM = 8
CACHE = 200
BATCH = 256
STEPS = 120


def _run_policy(policy: str, seed: int = 0) -> tuple[float, float]:
    sampler = ZipfSampler(ROWS, 1.1, rng=seed)
    emb = CachedTTEmbeddingBag(
        ROWS, DIM, rank=4, cache_size=CACHE, warmup_steps=20,
        refresh_interval=40, policy=policy, rng=seed,
    )
    # measure hit rate only after the cache is warm
    warm_hits = warm_lookups = 0
    for step in range(STEPS):
        idx = sampler.sample(BATCH)
        before_h, before_l = emb.hits, emb.lookups
        emb.forward(idx)
        if emb.is_warm and step > 30:
            warm_hits += emb.hits - before_h
            warm_lookups += emb.lookups - before_l
    ideal = sampler.top_k_mass(CACHE)
    return warm_hits / warm_lookups, ideal


def test_cache_policy_hit_rates(benchmark):
    def compute():
        out = {}
        for policy in ("lfu", "lru", "static"):
            hit, ideal = _run_policy(policy)
            out[policy] = (hit, ideal)
        return out

    results = benchmark.pedantic(compute, rounds=1, iterations=1)
    ideal = next(iter(results.values()))[1]
    banner("Ablation: cache policy vs steady-state hit rate (Zipf s=1.1)")
    rows = [[p, f"{hit:.3f}", f"{hit / ideal:.2f}"] for p, (hit, _) in results.items()]
    rows.append(["ideal (top-k mass)", f"{ideal:.3f}", "1.00"])
    print(format_table(["policy", "hit rate", "fraction of ideal"], rows))
    print("\nexpected: with a stationary hot set, LFU ~= static >= LRU, and "
          "LFU approaches the analytic ideal")
    lfu = results["lfu"][0]
    assert lfu > 0.8 * ideal
    assert lfu >= results["lru"][0] - 0.02
