"""Distributed simulation: measured wire traffic vs the analytic model.

Runs real (simulated) hybrid-parallel and data-parallel training steps on
the scaled DLRM, reads the Communicator's byte counters, and checks them
against the closed-form all-to-all/allreduce volumes from
:mod:`repro.analysis.parallelism`. Also times one step of each layout.
"""

import numpy as np
from conftest import banner, scaled_iters

from repro.bench import format_table, write_bench_json
from repro.data import SyntheticCTRDataset
from repro.distributed import Communicator, DataParallelTrainer, ShardedEmbeddingDLRM
from repro.models import DLRMConfig, TTConfig, build_dlrm, build_ttrec

WORLD = 4
BATCH = 64


def _setup(kaggle_small):
    cfg = DLRMConfig(table_sizes=kaggle_small.table_sizes, emb_dim=8,
                     bottom_mlp=(16,), top_mlp=(16,))
    ds = SyntheticCTRDataset(kaggle_small, seed=0, noise=0.7)
    return cfg, ds


def test_model_parallel_step(benchmark, kaggle_small):
    cfg, ds = _setup(kaggle_small)
    comm = Communicator(WORLD)
    sharded = ShardedEmbeddingDLRM.from_dlrm(build_dlrm(cfg, rng=0), WORLD,
                                             comm=comm)
    batch = ds.batch(BATCH)
    benchmark.group = "distributed step"
    benchmark(lambda: (sharded.zero_grad(), sharded.train_step(batch)))


def test_data_parallel_step(benchmark, kaggle_small):
    cfg, ds = _setup(kaggle_small)
    replicas = [build_ttrec(cfg, num_tt_tables=5, tt=TTConfig(rank=8),
                            min_rows=60, rng=0) for _ in range(WORLD)]
    dp = DataParallelTrainer(replicas, lr=0.1)
    batch = ds.batch(BATCH)
    benchmark.group = "distributed step"
    benchmark(dp.train_step, batch)


def test_traffic_matches_analytic_model(benchmark, kaggle_small):
    cfg, ds = _setup(kaggle_small)

    def compute():
        # --- hybrid model parallel (dense) --- #
        mp_comm = Communicator(WORLD)
        sharded = ShardedEmbeddingDLRM.from_dlrm(build_dlrm(cfg, rng=0),
                                                 WORLD, comm=mp_comm)
        batch = ds.batch(BATCH)
        sharded.zero_grad()
        sharded.train_step(batch)

        # --- data parallel (TT-Rec) --- #
        dp_comm = Communicator(WORLD)
        replicas = [build_ttrec(cfg, num_tt_tables=5, tt=TTConfig(rank=8),
                                min_rows=60, rng=0) for _ in range(WORLD)]
        dp = DataParallelTrainer(replicas, lr=0.1, comm=dp_comm)
        dp.train_step(batch)
        return mp_comm, dp_comm, replicas[0]

    mp_comm, dp_comm, tt_model = benchmark.pedantic(compute, rounds=1, iterations=1)

    # Analytic expectations.
    # All-to-all (fwd + bwd): pooled vectors not already local.
    # With balanced table assignment off-diagonal fraction ~ (W-1)/W.
    pooled_bytes = BATCH * cfg.num_tables * cfg.emb_dim * 8
    a2a_expected = 2 * pooled_bytes * (WORLD - 1) / WORLD
    # DP allreduce: 2 * model_bytes * (W-1)/W per worker, summed over workers.
    model_bytes = sum(p.data.nbytes for p in tt_model.parameters())
    dp_expected = 2 * model_bytes * (WORLD - 1) / WORLD * WORLD

    banner("Distributed simulation: measured vs analytic traffic (one step)")
    rows = [
        ["model-parallel all-to-all", f"{mp_comm.bytes_all_to_all / 1e3:.1f} KB",
         f"{a2a_expected / 1e3:.1f} KB"],
        ["model-parallel tower allreduce", f"{mp_comm.bytes_allreduce / 1e3:.1f} KB", "-"],
        ["data-parallel allreduce", f"{dp_comm.bytes_allreduce / 1e3:.1f} KB",
         f"{dp_expected / 1e3:.1f} KB"],
    ]
    print(format_table(["traffic", "measured", "analytic"], rows))
    print("\nThe simulator's byte counters realise the alpha-beta model that "
          "bench_parallelism.py evaluates at datacenter scale.")
    assert mp_comm.bytes_all_to_all == int(a2a_expected)
    assert abs(dp_comm.bytes_allreduce - dp_expected) / dp_expected < 0.01
    assert dp_comm.bytes_all_to_all == 0


def test_degraded_mode_events(benchmark, kaggle_small):
    """Data-parallel steps under collective faults: per-event counters."""
    from repro.reliability import FaultInjector

    cfg, ds = _setup(kaggle_small)
    injector = (FaultInjector(seed=7)
                .register("collective.payload", 0.01, kind="bitflip")
                .register("collective.drop", 0.005)
                .register("collective.straggler", 0.01))
    replicas = [build_ttrec(cfg, num_tt_tables=5, tt=TTConfig(rank=8),
                            min_rows=60, rng=0) for _ in range(WORLD)]
    dp = DataParallelTrainer(replicas, lr=0.1, injector=injector)

    def steps():
        for _ in range(10):
            dp.train_step(ds.batch(BATCH))
        return dp.fault_events

    events = benchmark.pedantic(steps, rounds=1, iterations=1)

    banner(f"Degraded-mode collectives: {WORLD} workers, 10 faulty steps")
    rows = [[name.replace("_", " "), count] for name, count in events.items()]
    print(format_table(["event", "count"], rows))
    print("\nEvery corruption was checksum-detected and retried; dropped "
          "workers were renormalised away. Replicas stay in sync:",
          dp.parameters_in_sync())
    assert events["corruptions_detected"] > 0
    assert dp.parameters_in_sync()


def test_elastic_chaos_drill(benchmark, kaggle_small, tmp_path):
    """Elastic runtime: steady-state cost vs a kill/recovery chaos arm.

    Runs the same seeded workload twice — fault-free, then with worker 1
    killed a third of the way in (shard-delta checkpoints every 5 steps)
    — and writes ``BENCH_distributed.json`` with the wall-clock ms/iter
    of both arms, the degraded/retried step counts, and the simulated
    recovery time. The chaos arm must reconcile (no lost batches), end
    bit-in-sync, and land within 2% of the fault-free final loss.
    """
    import time

    from repro.distributed import ElasticTrainer, parse_worker_kill_spec
    from repro.reliability import CheckpointManager, FaultInjector

    cfg, _ = _setup(kaggle_small)
    iters = scaled_iters(30)
    kill_at = max(2, iters // 3)

    def replicas():
        return [build_ttrec(cfg, num_tt_tables=5, tt=TTConfig(rank=8),
                            min_rows=60, rng=0) for _ in range(WORLD)]

    def batches():
        ds = SyntheticCTRDataset(kaggle_small, seed=0, noise=0.7)
        return [ds.batch(BATCH) for _ in range(iters)]

    def run():
        t0 = time.perf_counter()
        steady = ElasticTrainer(replicas(), lr=0.1, optimizer="adagrad")
        steady_report = steady.train(batches())
        steady_ms = (time.perf_counter() - t0) / iters * 1e3

        injector = FaultInjector(seed=11).register("dist.slow", 0.02)
        manager = CheckpointManager(tmp_path / "elastic")
        chaos = ElasticTrainer(
            replicas(), lr=0.1, optimizer="adagrad", injector=injector,
            checkpoint=manager, checkpoint_every=5,
            kill_specs=[parse_worker_kill_spec(f"1@{kill_at}")],
        )
        t0 = time.perf_counter()
        chaos_report = chaos.train(batches())
        chaos_ms = (time.perf_counter() - t0) / iters * 1e3
        return steady_ms, steady_report, chaos_ms, chaos_report

    steady_ms, srep, chaos_ms, crep = benchmark.pedantic(
        run, rounds=1, iterations=1)

    rec = crep["recovery"]
    banner(f"Elastic training: {WORLD} workers, {iters} steps, "
           f"kill w1@{kill_at}")
    rows = [
        ["steady state", f"{steady_ms:.2f}", 0, 0, "-"],
        ["chaos (kill + recover)", f"{chaos_ms:.2f}",
         crep["degraded_steps"], crep["retried_steps"],
         f"{rec['max_ms']:g}"],
    ]
    print(format_table(
        ["arm", "wall ms/iter", "degraded", "retried", "recovery sim-ms"],
        rows))
    print(f"\nrecovery: {rec['restores']} shard restores, "
          f"{rec['replayed_rows']} hot rows replayed, audit failures "
          f"{rec['audit_failures']}; final loss {crep['final_loss']:.4f} "
          f"vs fault-free {srep['final_loss']:.4f}")
    path = write_bench_json("distributed", {
        "world_size": WORLD,
        "iters": iters,
        "kill_at_step": kill_at,
        "steady_ms_per_iter": steady_ms,
        "chaos_ms_per_iter": chaos_ms,
        "degraded_steps": crep["degraded_steps"],
        "retried_steps": crep["retried_steps"],
        "dispatch_retries": crep["dispatch_retries"],
        "recovery": rec,
        "steady_final_loss": srep["final_loss"],
        "chaos_final_loss": crep["final_loss"],
        "reconciliation": crep["reconciliation"],
    })
    print(f"wrote {path}")

    assert crep["reconciliation"]["passed"], crep["reconciliation"]
    assert crep["in_sync"]
    assert rec["readmissions"] == 1 and rec["audit_failures"] == 0
    # Degraded steps re-shard the whole batch over survivors, so the
    # update stream matches the fault-free run up to float noise.
    assert abs(crep["final_loss"] - srep["final_loss"]) \
        <= 0.02 * abs(srep["final_loss"])
