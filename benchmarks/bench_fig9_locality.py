"""Fig. 9: stability of the most-frequently-accessed rows over training.

For the three largest tables, count cumulative access frequencies every 3%
of the training stream and report the fraction of the top-10k (scaled:
top-k) set that changed between consecutive checkpoints. The paper finds
the hot set stabilises early — the property the semi-dynamic cache relies
on.
"""

from conftest import banner

from repro.analysis.locality import top_set_stability
from repro.bench import format_series
from repro.data import SyntheticCTRDataset


def test_fig9_locality(benchmark, kaggle_small):
    ds = SyntheticCTRDataset(kaggle_small, seed=0, zipf_s=1.05)
    tables = kaggle_small.largest(3)
    k = 200  # scaled stand-in for the paper's 10k rows
    stream_len = 120_000

    def compute():
        return {
            f"EMB{i + 1}": top_set_stability(
                ds.access_stream(t, stream_len), k=k, checkpoint_fraction=0.03
            )
            for i, t in enumerate(tables)
        }

    traces = benchmark.pedantic(compute, rounds=1, iterations=1)
    banner(f"Fig. 9: change in the top-{k} accessed rows every 3% of training")
    for name, trace in traces.items():
        print(format_series(
            name,
            [f"{c:.0%}" for c in trace.checkpoints[1:]],
            [f"{f:.4f}" for f in trace.change_fraction],
            x_label="progress", y_label="set change fraction",
        ))
        print(f"  stabilises (<=2% change) at {trace.stabilization_point(0.02):.0%} "
              "of training\n")
    print("paper: the hot set stabilises well before training ends "
          "(~5% for Terabyte, ~50% for Kaggle)")
    for trace in traces.values():
        assert trace.change_fraction[0] > trace.change_fraction[-1]
        assert trace.change_fraction[-1] < 0.05
        assert trace.stabilization_point(0.05) < 1.0
