"""Ablation: TT-SVD warm-starting from a partially-trained dense model.

The paper's §4.2 notes that *online* TT re-decomposition of learned rows
is an open problem; the *offline* direction, however, is fully supported
by this library: train a dense model, TT-SVD its tables into cores, and
continue training compressed. This bench compares:

- cold start: TT cores from the sampled-Gaussian init (the paper's path);
- warm start: TT cores from TT-SVD of a briefly-trained dense model.

Warm-starting is how one would migrate a production dense model to TT-Rec
without retraining from scratch.
"""

import numpy as np
from conftest import banner, scaled_iters

from repro.bench import format_table
from repro.data import SyntheticCTRDataset
from repro.models import TTConfig, build_dlrm, build_ttrec
from repro.ops import EmbeddingBag
from repro.training import Trainer
from repro.tt import TTEmbeddingBag, tt_svd
from trainlib import MIN_ROWS, small_config

RANK = 16


def test_warmstart_from_dense(benchmark, kaggle_small):
    pre_iters = scaled_iters(120)
    post_iters = scaled_iters(80)
    cfg = small_config(kaggle_small)

    def run():
        # Phase 0: partially train a dense model.
        ds = SyntheticCTRDataset(kaggle_small, seed=11, noise=0.7)
        dense = build_dlrm(cfg, rng=0)
        Trainer(dense, lr=0.1).train(ds.batches(96, pre_iters))

        results = []
        for label, warm in (("cold start (sampled Gaussian)", False),
                            ("warm start (TT-SVD of dense)", True)):
            stream = SyntheticCTRDataset(kaggle_small, seed=11, noise=0.7)
            model = build_ttrec(cfg, num_tt_tables=5, tt=TTConfig(rank=RANK),
                                min_rows=MIN_ROWS, rng=1)
            if warm:
                # Copy the trained dense tables: TT tables via TT-SVD,
                # uncompressed tables verbatim, MLP towers verbatim.
                for tt_emb, dense_emb in zip(model.embeddings, dense.embeddings):
                    if isinstance(tt_emb, TTEmbeddingBag):
                        cores = tt_svd(dense_emb.weight.data, tt_emb.shape)
                        tt_emb.load_cores(cores)
                    elif isinstance(tt_emb, EmbeddingBag):
                        tt_emb.weight.data[...] = dense_emb.weight.data
                for a, b in zip(model.bottom_mlp.parameters(),
                                dense.bottom_mlp.parameters()):
                    a.data[...] = b.data
                for a, b in zip(model.top_mlp.parameters(),
                                dense.top_mlp.parameters()):
                    a.data[...] = b.data
            trainer = Trainer(model, lr=0.1)
            # Accuracy before any compressed training: the handoff quality.
            ev0 = trainer.evaluate(stream.batches(512, 4))
            res = trainer.train(stream.batches(96, post_iters))
            ev1 = trainer.evaluate(stream.batches(512, 6))
            results.append([label, f"{ev0.auc:.4f}", f"{res.smoothed_loss():.4f}",
                            f"{ev1.auc:.4f}"])
        # Reference: the dense model itself.
        dense_ev = Trainer(dense).evaluate(
            SyntheticCTRDataset(kaggle_small, seed=11, noise=0.7).batches(512, 6))
        results.append(["dense reference", "-", "-", f"{dense_ev.auc:.4f}"])
        return results

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    banner(f"Ablation: TT-SVD warm start vs cold start (TT-Emb 5, R={RANK})")
    print(format_table(
        ["initialization", "auc at handoff", "final loss", "auc after training"],
        rows,
    ))
    print("\nexpected: the warm start inherits most of the dense model's "
          "quality at handoff; both converge after continued training")
    cold_handoff = float(rows[0][1])
    warm_handoff = float(rows[1][1])
    assert warm_handoff > cold_handoff + 0.05  # inheriting beats random init
    assert float(rows[1][3]) >= warm_handoff - 0.05  # training keeps quality
