"""Fig. 5: model size vs number of compressed embedding tables (rank 32).

The paper's bars: baseline vs TT-Rec total embedding size for the 3, 5 and
7 largest tables, for Kaggle and Terabyte. Exact arithmetic over real
cardinalities.
"""

from conftest import banner

from repro.analysis.memory import model_size_summary
from repro.bench import format_series
from repro.data import KAGGLE, TERABYTE


def test_fig5_model_size(benchmark):
    def compute():
        out = {}
        for spec in (KAGGLE, TERABYTE):
            out[spec.name] = [
                model_size_summary(spec, num_tt_tables=n, rank=32)
                for n in (3, 5, 7)
            ]
        return out

    results = benchmark(compute)
    banner("Fig. 5: model size by number of TT-compressed tables (R=32)")
    for name, summaries in results.items():
        print(format_series(
            f"{name} (baseline {summaries[0].baseline_gb:.2f} GB)",
            [s.num_tt_tables for s in summaries],
            [f"{s.compressed_mb:.1f} MB ({s.reduction:.1f}x)" for s in summaries],
            x_label="TT-Emb.", y_label="compressed size",
        ))
        print()
    print("paper: Kaggle 4x/48x/117x; Terabyte 2.6x/21.8x/95.5x (trend: more tables, smaller model)")
    kaggle = results["kaggle"]
    assert kaggle[0].reduction < kaggle[1].reduction < kaggle[2].reduction
    tb = results["terabyte"]
    assert tb[0].reduction < tb[1].reduction < tb[2].reduction
