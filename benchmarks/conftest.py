"""Shared fixtures/helpers for the paper-reproduction benchmark suite.

Every file regenerates one table or figure of the paper. Each experiment
runs inside the pytest-benchmark fixture (so ``--benchmark-only`` runs the
whole suite) and *prints* the regenerated rows/series in the paper's
layout. Run with ``-s`` to see the output inline, e.g.::

    pytest benchmarks/ --benchmark-only -s

Scale: by default every training-based experiment uses a heavily scaled
Criteo spec and few iterations so the suite completes in minutes on a
CPU. Set ``REPRO_BENCH_SCALE`` (default 1.0) above 1 to train
longer/larger for higher-fidelity numbers, e.g.
``REPRO_BENCH_SCALE=4 pytest benchmarks/bench_fig6_accuracy.py -s``.

Telemetry: span tracing is enabled for the whole benchmark session (set
``REPRO_BENCH_TRACE=0`` to opt out), so experiments that persist a
``BENCH_<name>.json`` via :func:`repro.bench.write_bench_json` capture the
per-stage span tree alongside their headline numbers.
"""

from __future__ import annotations

import os

import pytest

from repro.data import KAGGLE, TERABYTE
from repro.telemetry import enable_tracing

if os.environ.get("REPRO_BENCH_TRACE", "1") != "0":
    enable_tracing()


def bench_scale() -> float:
    """User-controlled fidelity multiplier (iterations, table sizes)."""
    return float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


def scaled_iters(base: int) -> int:
    return max(10, int(round(base * bench_scale())))


@pytest.fixture(scope="session")
def kaggle_small():
    """Kaggle layout shrunk for CPU training (largest table ~5k rows)."""
    return KAGGLE.scaled(0.0005)


@pytest.fixture(scope="session")
def terabyte_small():
    """Terabyte layout shrunk for CPU training."""
    return TERABYTE.scaled(0.0001)


def banner(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)
