"""Shared training helpers for the training-based benchmark experiments.

All timing here is routed through the telemetry tracer: model
construction, the training loop and evaluation each run inside a span
(``bench.build`` / ``bench.train`` / ``bench.eval``), and the trainer
itself records per-stage spans. Benchmarks that call
:func:`repro.bench.write_bench_json` therefore get the full span tree in
their ``BENCH_<name>.json`` for free (tracing is enabled session-wide by
``conftest.py``).
"""

from __future__ import annotations

from repro.data import SyntheticCTRDataset
from repro.data.specs import DatasetSpec
from repro.models import DLRMConfig, TTConfig, build_dlrm, build_ttrec
from repro.telemetry import trace
from repro.training import Trainer

# All training benches compress tables above this row count in the scaled
# specs. The scaled (0.0005) Kaggle top-7 tables have 5066..71 rows, so a
# threshold of 60 keeps "TT-Emb of 3/5/7" selecting genuinely different
# table sets, mirroring the paper's settings.
MIN_ROWS = 60


def small_config(spec: DatasetSpec, emb_dim: int = 8) -> DLRMConfig:
    return DLRMConfig(
        table_sizes=spec.table_sizes, emb_dim=emb_dim,
        bottom_mlp=(32, 16), top_mlp=(32,),
    )


def train_and_eval(spec: DatasetSpec, *, num_tt: int = 0, tt: TTConfig | None = None,
                   iters: int = 200, batch_size: int = 96, seed: int = 0,
                   emb_dim: int = 8, noise: float = 0.7, lr: float = 0.1,
                   init_override=None):
    """Train one model; returns ``(TrainResult, EvalResult, model)``.

    ``init_override`` replaces the dense-table initializer of the
    *uncompressed* baseline (Table 1 experiment).
    """
    ds = SyntheticCTRDataset(spec, seed=seed, noise=noise)
    cfg = small_config(spec, emb_dim)
    with trace("bench.build", num_tt=num_tt):
        if num_tt == 0:
            if init_override is not None:
                from repro.models.dlrm import DLRM
                from repro.ops import EmbeddingBag

                embeddings = [
                    EmbeddingBag(s, cfg.emb_dim, initializer=init_override(s),
                                 rng=seed + i)
                    for i, s in enumerate(cfg.table_sizes)
                ]
                model = DLRM(cfg, embeddings, rng=seed)
            else:
                model = build_dlrm(cfg, rng=seed)
        else:
            model = build_ttrec(cfg, num_tt_tables=num_tt, tt=tt or TTConfig(),
                                min_rows=MIN_ROWS, rng=seed)
    trainer = Trainer(model, lr=lr)
    with trace("bench.train", num_tt=num_tt):
        res = trainer.train(ds.batches(batch_size, iters))
    with trace("bench.eval", num_tt=num_tt):
        ev = trainer.evaluate(ds.batches(512, 6))
    return res, ev, model
