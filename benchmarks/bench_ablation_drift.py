"""Ablation: semi-dynamic cache refresh under non-stationary traffic.

Fig. 4's caption hedges: "depending on the phase behavior, one might
consider updating the cache and repeat the warm up process periodically."
The paper's Criteo streams are stationary (Fig. 9) so refresh barely
matters there; this bench injects hot-set drift and measures how the
refresh interval trades hit rate against refresh overhead — the scenario
the semi-dynamic design exists for.
"""

import numpy as np
from conftest import banner

from repro.bench import format_table
from repro.cache import CachedTTEmbeddingBag
from repro.data import ZipfSampler

ROWS = 20_000
CACHE = 250
BATCH = 256
STEPS = 160
DRIFT_PER_STEP = 0.005  # 0.5% of ranks reshuffled per step


def _run(refresh_interval):
    z = ZipfSampler(ROWS, 1.2, rng=3)
    emb = CachedTTEmbeddingBag(
        ROWS, 8, rank=4, cache_size=CACHE, warmup_steps=20,
        refresh_interval=refresh_interval, rng=3,
    )
    hits = lookups = 0
    for step in range(STEPS):
        idx = z.sample(BATCH)
        h0, l0 = emb.hits, emb.lookups
        emb.forward(idx)
        if emb.is_warm and step > 30:
            hits += emb.hits - h0
            lookups += emb.lookups - l0
        z.drift(DRIFT_PER_STEP)
    return hits / max(lookups, 1)


def test_refresh_under_drift(benchmark):
    def compute():
        out = []
        for interval, label in ((None, "never (static after warmup)"),
                                (80, "every 80 steps"),
                                (20, "every 20 steps"),
                                (5, "every 5 steps")):
            out.append([label, f"{_run(interval):.3f}"])
        return out

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    banner("Ablation: cache refresh interval under drifting traffic")
    print(format_table(["refresh", "steady-state hit rate"], rows))
    print("\nexpected: refreshing recovers hit rate lost to drift; the "
          "paper's stationary Criteo streams need little refresh (Fig. 9), "
          "drifting streams need it")
    never = float(rows[0][1])
    frequent = float(rows[-1][1])
    assert frequent > never + 0.02
