"""Fig. 6: TT-Rec validation accuracy across ranks, table counts and inits.

(a)/(b): accuracy when compressing the 3/5/7 largest tables at TT-ranks
8/16/32/64, vs the uncompressed baseline (Kaggle-shaped and
Terabyte-shaped synthetic data).
(c): accuracy under the three TT-core initialization strategies.

Expected shapes (not absolute values): accuracy degrades gracefully with
more compressed tables, improves with rank (saturating), and the sampled
Gaussian init is never worse than plain Gaussian/uniform cores.
"""

from conftest import banner, scaled_iters

from repro.bench import format_table
from repro.models import TTConfig
from trainlib import train_and_eval

RANKS = (8, 16, 32)
TABLE_COUNTS = (3, 5, 7)


def _sweep(spec, iters):
    results = {}
    _, base, _ = train_and_eval(spec, num_tt=0, iters=iters, seed=2)
    results["baseline"] = base
    for n in TABLE_COUNTS:
        for rank in RANKS:
            _, ev, _ = train_and_eval(
                spec, num_tt=n, tt=TTConfig(rank=rank), iters=iters, seed=2,
            )
            results[(n, rank)] = ev
    return results


def _report(name, results):
    banner(f"Fig. 6: validation accuracy, {name}")
    rows = [["baseline", "-", f"{results['baseline'].accuracy * 100:.2f}",
             f"{results['baseline'].auc:.4f}"]]
    for (n, rank), ev in ((k, v) for k, v in results.items() if k != "baseline"):
        rows.append([f"TT-Emb {n}", rank, f"{ev.accuracy * 100:.2f}", f"{ev.auc:.4f}"])
    print(format_table(["setting", "rank", "accuracy %", "auc"], rows))


def test_fig6a_kaggle(benchmark, kaggle_small):
    iters = scaled_iters(150)
    results = benchmark.pedantic(lambda: _sweep(kaggle_small, iters),
                                 rounds=1, iterations=1)
    _report("Kaggle-shaped", results)
    base = results["baseline"].auc
    print(f"\npaper: TT-Rec within ~0.03% of baseline at the optimal rank")
    best = max(ev.auc for k, ev in results.items() if k != "baseline")
    assert best > base - 0.02
    # more tables compressed at the lowest rank should not *help*
    assert results[(7, 8)].auc <= best + 1e-9


def test_fig6b_terabyte(benchmark, terabyte_small):
    iters = scaled_iters(120)
    results = benchmark.pedantic(lambda: _sweep(terabyte_small, iters),
                                 rounds=1, iterations=1)
    _report("Terabyte-shaped", results)
    best = max(ev.auc for k, ev in results.items() if k != "baseline")
    assert best > results["baseline"].auc - 0.02


def test_fig6c_initialization(benchmark, kaggle_small):
    """Init-strategy comparison, averaged over seeds.

    Note on fidelity: all three arms here are *variance-matched* to the
    optimal N(0, 1/3n) target (our initializers apply the paper's §3.2
    analysis to every strategy), so the gap the paper reports against
    naively-scaled Gaussian/uniform cores collapses to the shape of the
    product distribution alone. At this training scale run-to-run noise
    exceeds that residual effect, so the assertion only requires sampled
    Gaussian to stay within noise of the best arm. The distributional
    mechanism itself (near-zero mass removal) is verified deterministically
    in bench_fig3_product_distributions.py.
    """
    iters = scaled_iters(150)
    seeds = (3, 11, 23)

    def run():
        out = {}
        for strategy in ("sampled_gaussian", "gaussian", "uniform"):
            aucs, accs = [], []
            for seed in seeds:
                _, ev, _ = train_and_eval(
                    kaggle_small, num_tt=5,
                    tt=TTConfig(rank=16, initializer=strategy),
                    iters=iters, seed=seed,
                )
                aucs.append(ev.auc)
                accs.append(ev.accuracy)
            out[strategy] = (sum(accs) / len(accs), sum(aucs) / len(aucs))
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    banner("Fig. 6(c): TT-core initialization strategies (TT-Emb 5, R=16, "
           f"mean of {len(seeds)} seeds)")
    print(format_table(
        ["init strategy", "accuracy %", "auc"],
        [[k, f"{acc * 100:.2f}", f"{auc:.4f}"] for k, (acc, auc) in results.items()],
    ))
    print("\npaper: sampled Gaussian achieves the highest accuracy (vs "
          "naively-scaled core inits; see docstring)")
    sg = results["sampled_gaussian"][1]
    best = max(auc for _, auc in results.values())
    assert sg >= best - 0.05
