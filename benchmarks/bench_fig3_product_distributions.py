"""Fig. 3: PDFs of products of i.i.d. variables vs the sampled Gaussian.

Left panel: the product of 3 i.i.d. Uniform(0,1) or N(0,1) variables is
sharply peaked at zero. Right panel: the table materialised from
sampled-Gaussian cores (Algorithm 3) tracks N(0, 1/3n) instead.

Also includes the cutoff ablation: how the Algorithm 3 rejection threshold
shapes the near-zero mass of the materialised table.
"""

import numpy as np
from conftest import banner

from repro.analysis.distributions import (
    materialized_entry_samples,
    pdf_histogram,
    product_of_iid_samples,
)
from repro.bench import format_table
from repro.tt import TTShape
from repro.tt.decomposition import tt_reconstruct
from repro.tt.initialization import sampled_gaussian_cores

N_SAMPLES = 200_000
SHAPE = TTShape.with_uniform_rank(4096, 16, (16, 16, 16), (2, 2, 4), rank=8)


def test_fig3_left_products(benchmark):
    def compute():
        out = {}
        for dist in ("uniform01", "gaussian"):
            prod = product_of_iid_samples(dist, 3, N_SAMPLES, rng=0)
            scaled = prod / prod.std()
            out[dist] = float(np.mean(np.abs(scaled) < 0.1))
        base = np.random.default_rng(0).normal(size=N_SAMPLES)
        out["N(0,1) reference"] = float(np.mean(np.abs(base) < 0.1))
        return out

    frac_near_zero = benchmark(compute)
    banner("Fig. 3 (left): mass within 0.1 std of zero, product of 3 i.i.d. RVs")
    print(format_table(
        ["distribution of factors", "P(|x| < 0.1*std)"],
        [[k, f"{v:.3f}"] for k, v in frac_near_zero.items()],
    ))
    print("\npaper: products pile up at zero vs a plain Gaussian")
    assert frac_near_zero["uniform01"] > 2 * frac_near_zero["N(0,1) reference"]
    assert frac_near_zero["gaussian"] > 2 * frac_near_zero["N(0,1) reference"]


def test_fig3_right_sampled_gaussian(benchmark):
    target_sigma = float(np.sqrt(1.0 / (3 * SHAPE.num_rows)))

    def compute():
        out = {}
        for strategy in ("sampled_gaussian", "gaussian", "uniform"):
            entries = materialized_entry_samples(SHAPE, strategy, rng=0)
            out[strategy] = (
                float(entries.std()),
                float(np.mean(np.abs(entries) < 0.3 * target_sigma)),
            )
        return out

    stats = benchmark(compute)
    banner("Fig. 3 (right): materialised table entries vs N(0, 1/3n)")
    gauss_ref = float(np.mean(np.abs(
        np.random.default_rng(1).normal(0, target_sigma, 100_000)) < 0.3 * target_sigma))
    rows = [[k, f"{std:.5f}", f"{frac:.3f}"] for k, (std, frac) in stats.items()]
    rows.append(["N(0, 1/3n) target", f"{target_sigma:.5f}", f"{gauss_ref:.3f}"])
    print(format_table(["core init", "entry std", "P(|x| < 0.3 sigma*)"], rows))
    print("\npaper: sampled Gaussian removes the near-zero peak that plain "
          "Gaussian/uniform cores produce")
    assert stats["sampled_gaussian"][1] < stats["gaussian"][1]
    # std approximates the target for all variance-matched inits
    for k, (std, _) in stats.items():
        assert abs(std - target_sigma) / target_sigma < 0.5, k


def test_ablation_cutoff(benchmark):
    """Algorithm 3 cutoff sweep: higher cutoff -> less near-zero mass."""
    target_sigma = float(np.sqrt(1.0 / (3 * SHAPE.num_rows)))

    def compute():
        out = []
        for cutoff in (0.0, 0.5, 1.0, 2.0, 3.0):
            cores = sampled_gaussian_cores(SHAPE, cutoff=cutoff, rng=0)
            entries = tt_reconstruct(cores, SHAPE).ravel()
            out.append((cutoff, float(np.mean(np.abs(entries) < 0.3 * target_sigma))))
        return out

    sweep = benchmark(compute)
    banner("Ablation: Algorithm 3 rejection cutoff vs near-zero table mass")
    print(format_table(["cutoff", "P(|x| < 0.3 sigma*)"],
                       [[c, f"{f:.3f}"] for c, f in sweep]))
    fracs = [f for _, f in sweep]
    assert fracs[-1] < fracs[0]
