"""Ablation (§4.2 ¶1): store vs recompute backward intermediates.

Algorithm 2 can either keep the forward partial products (``tr_i``) for the
backward pass (more transient memory) or recompute them (more FLOPs). The
paper chooses storing by default; this bench quantifies the trade-off.
"""

import numpy as np
import pytest
from conftest import banner

from repro.bench import format_table, uniform_workload
from repro.tt import TTEmbeddingBag

ROWS = 100_000
DIM = 16
BATCH = 512
RANK = 32


def _step(emb, idx, off):
    out = emb.forward(idx, off)
    emb.zero_grad()
    emb.backward(np.ones_like(out))


@pytest.mark.parametrize("store", [True, False], ids=["store", "recompute"])
def test_recompute_vs_store(benchmark, store):
    emb = TTEmbeddingBag(ROWS, DIM, rank=RANK, store_intermediates=store, rng=0)
    idx, off = uniform_workload(ROWS, BATCH, rng=0)
    benchmark.group = "recompute-vs-store"
    benchmark(_step, emb, idx, off)


def test_recompute_memory_report(benchmark):
    def compute():
        emb = TTEmbeddingBag(ROWS, DIM, rank=RANK, rng=0)
        idx, off = uniform_workload(ROWS, BATCH, rng=0)
        emb.forward(idx, off)
        lefts = emb._cache["lefts"]
        stored = sum(a.size for a in lefts) * 8
        return stored

    stored_bytes = benchmark(compute)
    banner("Ablation: intermediate (tr_i) storage cost per batch")
    print(format_table(
        ["batch", "rank", "stored intermediates"],
        [[BATCH, RANK, f"{stored_bytes / 1e6:.2f} MB"]],
    ))
    print("\nstore: pays this memory once per in-flight batch; "
          "recompute: pays one extra forward chain in backward instead")
    assert stored_bytes > 0
