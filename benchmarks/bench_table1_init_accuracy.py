"""Table 1: uncompressed DLRM accuracy under different weight initializations.

The paper's observation: accuracy tracks KL(uniform || init). We train the
scaled DLRM with the six distributions of Table 1 and report KL (analytic,
exact) next to measured accuracy. The headline check: the DLRM-default
uniform and its KL-optimal Gaussian N(0, 1/3n) land close together, while
N(0,1) — maximal KL — lands at the bottom.
"""

import numpy as np
from conftest import banner, scaled_iters

from repro.analysis.distributions import table1_kl_rows
from repro.bench import format_table
from repro.tt.initialization import gaussian_initializer, uniform_initializer
from trainlib import train_and_eval


def _initializer_for(row):
    """Map a Table 1 row to a per-table initializer factory (n = row count)."""
    if row.kind == "uniform":
        return lambda n: uniform_initializer(1.0 / np.sqrt(n))
    label = row.label
    if "1/3n" in label:
        return lambda n: gaussian_initializer(np.sqrt(1.0 / (3 * n)))
    if "1/9n^2" in label:
        return lambda n: gaussian_initializer(np.sqrt(1.0 / (9.0 * n * n)))
    sigma2 = row.sigma2
    return lambda n: gaussian_initializer(np.sqrt(sigma2))


def test_table1(benchmark, kaggle_small):
    iters = scaled_iters(200)
    kl_rows = table1_kl_rows(n=max(kaggle_small.table_sizes))

    def run_all():
        out = []
        for row in kl_rows:
            _, ev, _ = train_and_eval(
                kaggle_small, num_tt=0, iters=iters, seed=1,
                init_override=_initializer_for(row),
            )
            out.append((row, ev))
        return out

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    banner("Table 1: DLRM accuracy by embedding init distribution")
    print(format_table(
        ["distribution", "KL(U || Q)", "accuracy %", "auc"],
        [[row.label, f"{row.kl:.3g}", f"{ev.accuracy * 100:.2f}", f"{ev.auc:.4f}"]
         for row, ev in results],
    ))
    print("\npaper: uniform 79.26% ~= N(0,1/3n) 79.26% > N(0,1/8) > N(0,1/2) > N(0,1)")
    by_label = {row.label: ev for row, ev in results}
    uniform = by_label["uniform(-1/sqrt(n), 1/sqrt(n))"]
    optimal = by_label["N(0, 1/3n)"]
    worst = by_label["N(0, 1)"]
    # Shape checks: the optimal Gaussian matches uniform closely; the
    # maximal-KL init is the worst of the Gaussian sweep.
    assert abs(optimal.auc - uniform.auc) < 0.02
    assert worst.auc <= max(ev.auc for _, ev in results) + 1e-9
    assert worst.auc < uniform.auc + 0.005
