"""§5 claim: TT-Rec unlocks data-parallel accelerator training.

The paper: "as the dimension of the embedding increases from 64 to 512,
the total memory requirement is over 96 GB, exceeding the latest GPU
memory capacity. ... The uncompressed baseline has to run on CPUs or
multiple GPUs via model parallelism (which requires extra all-to-all
communication overheads) while TT-Rec enables recommendation training on
GPUs with data parallelism."

This bench evaluates the alpha-beta communication model on the real
Criteo specs across embedding dimensions and cluster sizes, comparing:

- dense model-parallel (sharded tables + all-to-all, the only feasible
  dense strategy at large dims),
- dense data-parallel (hypothetical: what replicating the dense model
  would cost — both memory and allreduce volume are prohibitive),
- TT-Rec data-parallel (the paper's strategy).
"""

import dataclasses

from conftest import banner

from repro.analysis.parallelism import (
    ClusterSpec,
    data_parallel_cost,
    model_parallel_cost,
)
from repro.bench import format_table
from repro.data import TERABYTE

DEVICE_GB = 16.0


def test_parallelism_model(benchmark):
    cluster = ClusterSpec(num_devices=8, device_memory_gb=DEVICE_GB)

    def compute():
        rows = []
        for dim in (16, 64, 128):
            spec = dataclasses.replace(TERABYTE, emb_dim=dim)
            dense_mp = model_parallel_cost(spec, cluster, batch_size=2048)
            tt_dp = data_parallel_cost(spec, cluster, num_tt_tables=7, rank=32)
            # hypothetical dense data-parallel: full replication
            dense_bytes = spec.total_rows() * dim * 4
            dense_dp_comm = 2 * dense_bytes * 7 / 8
            rows.append([
                dim,
                f"{dense_bytes / 1e9:.1f} GB"
                + ("" if dense_bytes <= DEVICE_GB * 1e9 else " (!)"),
                f"{dense_dp_comm / 1e9:.1f} GB",
                f"{dense_mp.per_device_model_bytes / 1e9:.2f} GB"
                + ("" if dense_mp.fits_per_device else " (!)"),
                f"{dense_mp.comm_bytes / 1e6:.1f} MB",
                f"{tt_dp.per_device_model_bytes / 1e9:.3f} GB",
                f"{tt_dp.comm_bytes / 1e6:.1f} MB",
            ])
        return rows

    rows = benchmark(compute)
    banner(f"Parallelism (§5): Terabyte DLRM on 8 x {DEVICE_GB:.0f} GB devices")
    print(format_table(
        ["emb dim", "dense model", "dense DP allreduce/iter",
         "dense MP GB/dev", "dense MP a2a/iter",
         "TT-Rec GB/dev", "TT-Rec allreduce/iter"],
        rows,
    ))
    print("\n(!) = exceeds one device. paper: beyond dim ~64 the dense model "
          "exceeds GPU memory; model parallelism adds a per-iteration "
          "all-to-all on the critical path; dense data parallelism would "
          "allreduce the full tables (GBs). TT-Rec fits on one device at "
          "every dim and allreduces only MBs.")
    # dim >= 64: dense no longer fits one 16 GB device, TT-Rec always does.
    dim64 = rows[1]
    assert "(!)" in dim64[1]
    assert float(dim64[5].split()[0]) < DEVICE_GB
    # TT-Rec's allreduce is orders of magnitude below dense data-parallel.
    assert float(dim64[6].split()[0]) < 1000 * float(dim64[2].split()[0])


def test_parallelism_scaling_in_devices(benchmark):
    def compute():
        rows = []
        spec = dataclasses.replace(TERABYTE, emb_dim=64)
        for n in (2, 4, 8, 16, 32):
            cluster = ClusterSpec(num_devices=n, device_memory_gb=DEVICE_GB)
            dense_mp = model_parallel_cost(spec, cluster, batch_size=2048)
            tt_dp = data_parallel_cost(spec, cluster, num_tt_tables=7, rank=32)
            rows.append([
                n,
                "yes" if dense_mp.fits_per_device else "no",
                f"{dense_mp.comm_time_us / 1e3:.2f} ms",
                f"{tt_dp.comm_time_us / 1e3:.2f} ms",
            ])
        return rows

    rows = benchmark(compute)
    banner("Parallelism: minimum cluster for dense vs TT-Rec comm time (dim 64)")
    print(format_table(
        ["devices", "dense MP fits", "dense MP comm", "TT-Rec comm"], rows
    ))
    # Dense needs several devices before the shards fit; TT-Rec comm time
    # stays in the same order of magnitude throughout.
    fits = [r[1] for r in rows]
    assert fits[0] == "no"
    assert fits[-1] == "yes"
