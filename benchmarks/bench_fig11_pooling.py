"""Fig. 11: kernel time per sample vs pooling factor P (embedding-dominated DLRMs).

The §6.6 microbenchmark: forward+backward time of the non-cached TT kernel
and the dense EmbeddingBag at P in {1, 10, 100} across TT-ranks. Expected
shapes: per-sample cost falls as P rises (fixed overheads amortise), and
the TT : EmbeddingBag gap *widens* with P because repeated rows are free
for the dense gather but cost a full TT chain each (no dedup).
"""

import numpy as np
import pytest
from conftest import banner

from repro.bench import format_table, pooling_workload
from repro.ops import EmbeddingBag
from repro.tt import TTEmbeddingBag

ROWS = 100_000
DIM = 16
BATCH = 64
POOLING = (1, 10, 100)
RANKS = (8, 32)


def _step(emb, idx, off):
    out = emb.forward(idx, off)
    emb.zero_grad()
    emb.backward(np.ones_like(out))


@pytest.mark.parametrize("pooling", POOLING)
def test_fig11_embedding_bag(benchmark, pooling):
    emb = EmbeddingBag(ROWS, DIM, rng=0)
    idx, off = pooling_workload(ROWS, BATCH, pooling, rng=0)
    benchmark.group = f"fig11 P={pooling}"
    benchmark(_step, emb, idx, off)


@pytest.mark.parametrize("rank", RANKS)
@pytest.mark.parametrize("pooling", POOLING)
def test_fig11_tt_rec(benchmark, pooling, rank):
    emb = TTEmbeddingBag(ROWS, DIM, rank=rank, rng=0)
    idx, off = pooling_workload(ROWS, BATCH, pooling, rng=0)
    benchmark.group = f"fig11 P={pooling}"
    benchmark(_step, emb, idx, off)


def test_fig11_report(benchmark):
    """Per-sample timing summary across P, measured directly."""
    import time

    def measure(emb, idx, off, reps=5):
        _step(emb, idx, off)  # warm up
        t0 = time.perf_counter()
        for _ in range(reps):
            _step(emb, idx, off)
        return (time.perf_counter() - t0) / reps / BATCH * 1e6  # us/sample

    def compute():
        rows = []
        for p in POOLING:
            idx, off = pooling_workload(ROWS, BATCH, p, rng=0)
            eb = measure(EmbeddingBag(ROWS, DIM, rng=0), idx, off)
            tt = measure(TTEmbeddingBag(ROWS, DIM, rank=32, rng=0), idx, off)
            rows.append([p, f"{eb:.1f}", f"{tt:.1f}", f"{tt / eb:.1f}x"])
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    banner("Fig. 11: per-sample kernel time vs pooling factor (rank 32)")
    print(format_table(
        ["P", "EmbeddingBag us/sample", "TT-Rec us/sample", "TT/EB ratio"], rows
    ))
    print("\npaper: gap widens with P (EmbeddingBag exploits row reuse; "
          "the non-cached, non-dedup TT kernel cannot)")
    ratios = [float(r[-1].rstrip("x")) for r in rows]
    assert ratios[-1] >= ratios[0]
