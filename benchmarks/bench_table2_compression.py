"""Paper Table 2 + §6 headline compression numbers (exact arithmetic).

Regenerates, from the real Criteo cardinalities:

- Table 2: TT-core shapes, parameter counts and per-table memory
  reductions of Kaggle's 7 largest tables at ranks 16/32/64 — these match
  the paper bit-exactly (verified in tests/test_analysis.py);
- the §6 headline: whole-model compression for Kaggle (117x) and
  Terabyte at rank 32 with 7 tables compressed.
"""

from conftest import banner

from repro.analysis.memory import model_size_summary, table2_rows
from repro.bench import format_table
from repro.data import KAGGLE, TERABYTE


def _table2_report() -> list:
    rows = []
    for r in sorted(table2_rows(KAGGLE), key=lambda r: (-r.num_rows, r.rank)):
        rows.append([
            r.num_rows, r.emb_dim,
            " x ".join(str(s) for s in r.core_shapes),
            r.rank, r.tt_params, round(r.memory_reduction),
        ])
    return rows


def test_table2(benchmark):
    rows = benchmark(_table2_report)
    banner("Table 2: TT decomposition of Kaggle's 7 largest embedding tables")
    print(format_table(
        ["# Rows", "Emb. Dim", "TT-Core Shapes", "R", "# TT Params", "Mem. Reduction"],
        rows,
    ))
    assert len(rows) == 21
    # Spot-check the first paper row: 10131227 @ R=16 -> 135040 params, 1200x.
    top16 = next(r for r in rows if r[0] == 10131227 and r[3] == 16)
    assert top16[4] == 135040 and top16[5] == 1200


def test_headline_compression(benchmark):
    def compute():
        return {
            spec.name: {
                n: model_size_summary(spec, num_tt_tables=n, rank=32)
                for n in (3, 5, 7)
            }
            for spec in (KAGGLE, TERABYTE)
        }

    summaries = benchmark(compute)
    banner("Headline model-size reduction (rank 32)")
    rows = []
    for name, by_n in summaries.items():
        for n, s in by_n.items():
            rows.append([
                name, n, f"{s.baseline_gb:.2f} GB",
                f"{s.compressed_mb:.2f} MB", f"{s.reduction:.1f}x",
            ])
    print(format_table(["dataset", "TT-Emb.", "baseline", "compressed", "reduction"], rows))
    print("\npaper: Kaggle 2.16 GB -> ~18 MB (117x); 4x / 48x / 117x for 3/5/7 tables")
    kaggle7 = summaries["kaggle"][7]
    assert 115 < kaggle7.reduction < 120
