"""Ablation: discard vs absorb evicted cache rows (the §4.2 open problem).

The paper discards evicted rows' dense updates, arguing that folding them
back into the TT cores is "equivalent to dynamically tracking TT
decomposition for a streaming matrix, which is a challenging algebraic
problem itself" — and that discarding "does not affect training accuracy
as the evicted cache lines are not accessed frequently."

We test both halves of that claim. Under *drifting* traffic (where
eviction actually happens), compare ``eviction="discard"`` against
``eviction="absorb"`` (a few damped least-squares steps per eviction,
:mod:`repro.tt.writeback`): measure lookup fidelity of evicted rows and
end-model quality.
"""

import numpy as np
from conftest import banner, scaled_iters

from repro.bench import format_table
from repro.cache import CachedTTEmbeddingBag
from repro.data import SyntheticCTRDataset, ZipfSampler
from repro.models import DLRMConfig, TTConfig, build_ttrec
from repro.training import Trainer
from trainlib import MIN_ROWS, small_config

ROWS = 5_000
CACHE = 64


def test_eviction_row_fidelity(benchmark):
    """Micro view: after learning on cached rows then evicting, how close
    does the TT table stay to the learned values?"""

    def run():
        out = []
        for eviction in ("discard", "absorb"):
            z = ZipfSampler(ROWS, 1.2, rng=7)
            emb = CachedTTEmbeddingBag(
                ROWS, 8, rank=8, cache_size=CACHE, warmup_steps=5,
                refresh_interval=30, eviction=eviction, rng=7,
            )
            rng = np.random.default_rng(7)
            learned: dict[int, np.ndarray] = {}
            # Planted per-row targets: cached rows are pulled toward values
            # the TT init does not know, so evicting them loses real signal.
            planted = rng.normal(0.0, 0.2, size=(ROWS, 8))
            for step in range(90):
                idx = z.sample(256)
                emb.zero_grad()
                out_rows = emb.forward(idx)
                emb.backward(np.zeros_like(out_rows))  # bookkeeping only
                # Pull cached rows toward their planted targets (dense SGD).
                if emb.is_warm:
                    ids, slots = emb._cached_ids, emb._cache_slot
                    emb.cache_rows.data[slots] += 0.3 * (
                        planted[ids] - emb.cache_rows.data[slots]
                    )
                    for rid, slot in zip(ids, slots):
                        learned[int(rid)] = emb.cache_rows.data[slot].copy()
                z.drift(0.01)
            # rows that were cached at some point but are no longer
            current = set(emb._cached_ids.tolist())
            evicted = [r for r in learned if r not in current]
            if not evicted:
                out.append([eviction, "n/a", 0])
                continue
            ids = np.array(evicted[:200], dtype=np.int64)
            targets = np.stack([learned[int(r)] for r in ids])
            err = float(np.sqrt(np.mean((emb.tt.lookup(ids) - targets) ** 2)))
            out.append([eviction, f"{err:.4f}", len(evicted)])
        return out

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    banner("Ablation: evicted-row fidelity (RMS vs last learned value)")
    print(format_table(["eviction", "RMS error of evicted rows", "# evicted"], rows))
    print("\nFinding: absorb recovers at best marginally more than discard. "
          "Learned rows sit off the low-rank TT manifold, so a local "
          "least-squares write-back cannot retain them without raising the "
          "rank — empirical support for the paper's decision to discard "
          "(§4.2: streaming TT decomposition is 'a challenging algebraic "
          "problem itself').")
    by = {r[0]: r for r in rows}
    if by["discard"][1] != "n/a" and by["absorb"][1] != "n/a":
        # absorb must never be *worse*, and the gap is expected to be small
        assert float(by["absorb"][1]) <= float(by["discard"][1]) + 1e-6


def test_eviction_end_to_end_accuracy(benchmark, kaggle_small):
    """Macro view: does write-back change final model quality? The paper
    predicts 'no' for stationary traffic — evicted rows are cold."""
    iters = scaled_iters(200)
    cfg = small_config(kaggle_small)

    def run():
        out = []
        for eviction in ("discard", "absorb"):
            ds = SyntheticCTRDataset(kaggle_small, seed=13, noise=0.7)
            tt = TTConfig(rank=8, use_cache=True, cache_fraction=0.02,
                          warmup_steps=20, refresh_interval=50,
                          eviction=eviction)
            model = build_ttrec(cfg, num_tt_tables=3, tt=tt,
                                min_rows=MIN_ROWS, rng=0)
            trainer = Trainer(model, lr=0.1)
            trainer.train(ds.batches(96, iters))
            ev = trainer.evaluate(ds.batches(512, 6))
            out.append([eviction, f"{ev.accuracy * 100:.2f}", f"{ev.auc:.4f}"])
        return out

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    banner("Ablation: eviction policy vs end accuracy (stationary traffic)")
    print(format_table(["eviction", "accuracy %", "auc"], rows))
    print("\npaper's claim: discarding does not hurt accuracy when the hot "
          "set is stable — the two arms should be close")
    aucs = [float(r[2]) for r in rows]
    assert abs(aucs[0] - aucs[1]) < 0.05
