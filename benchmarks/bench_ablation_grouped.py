"""Ablation: fused multi-table TT execution vs per-table chains.

DLRM dispatches 26 embedding lookups per iteration; fusing same-shape
tables into one chain (GroupedTTEmbeddingBag) amortises GEMM dispatch the
way FBGEMM's batched kernels do on GPU. Measures the fwd+bwd speedup as
the table count grows at a fixed (small) per-table batch.
"""

import numpy as np
import pytest
from conftest import banner

from repro.bench import format_table, uniform_workload
from repro.tt import TTEmbeddingBag, TTShape
from repro.tt.grouped import GroupedTTEmbeddingBag

SHAPE = TTShape.suggested(100_000, 16, d=3, rank=16)
BATCH = 64  # small per-table batch: the regime where fusion matters


def setup(num_tables):
    tables = [TTEmbeddingBag(100_000, 16, shape=SHAPE, rng=i)
              for i in range(num_tables)]
    group = GroupedTTEmbeddingBag(tables)
    rng = np.random.default_rng(0)
    sparse = []
    for _ in range(num_tables):
        idx, off = uniform_workload(100_000, BATCH, rng=rng)
        sparse.append((idx, off))
    grads = [np.ones((BATCH, 16)) for _ in range(num_tables)]
    return tables, group, sparse, grads


@pytest.mark.parametrize("num_tables", [8, 26])
def test_per_table_chains(benchmark, num_tables):
    tables, _, sparse, grads = setup(num_tables)

    def step():
        for t, emb in enumerate(tables):
            emb.zero_grad()
            emb.forward(*sparse[t])
            emb.backward(grads[t])

    benchmark.group = f"grouped T={num_tables}"
    benchmark(step)


@pytest.mark.parametrize("num_tables", [8, 26])
def test_fused_group(benchmark, num_tables):
    tables, group, sparse, grads = setup(num_tables)

    def step():
        for emb in tables:
            emb.zero_grad()
        group.forward_all(sparse)
        group.backward_all(grads)

    benchmark.group = f"grouped T={num_tables}"
    benchmark(step)


def test_fusion_report(benchmark):
    import time

    def measure(fn, reps=5):
        fn()
        t0 = time.perf_counter()
        for _ in range(reps):
            fn()
        return (time.perf_counter() - t0) / reps * 1e3

    def compute():
        rows = []
        for num_tables in (4, 12, 26):
            tables, group, sparse, grads = setup(num_tables)

            def per_table():
                for t, emb in enumerate(tables):
                    emb.zero_grad()
                    emb.forward(*sparse[t])
                    emb.backward(grads[t])

            def fused():
                for emb in tables:
                    emb.zero_grad()
                group.forward_all(sparse)
                group.backward_all(grads)

            a = measure(per_table)
            b = measure(fused)
            rows.append([num_tables, f"{a:.2f}", f"{b:.2f}", f"{a / b:.2f}x"])
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    banner(f"Ablation: fused multi-table chain (batch {BATCH}/table, rank 16)")
    print(format_table(
        ["tables", "per-table ms", "fused ms", "speedup"], rows
    ))
    print("\nNegative result on CPU: NumPy's GEMM dispatch overhead is tiny, "
          "so fusing chains only saves a little at small table counts and "
          "the gather/concatenate copies dominate at 26 tables. The "
          "optimization exists for GPU backends (FBGEMM batched kernels), "
          "where per-launch overhead is 10-100x larger; the fused kernel "
          "here is the bit-equivalent reference for such a backend "
          "(tests/test_tt_grouped.py).")
    speedups = [float(r[3].rstrip("x")) for r in rows]
    # Sanity: fusion is within 2x either way (it must never be catastrophic),
    # and the small-table-count case does not lose.
    assert all(0.5 < s < 2.0 for s in speedups)
    assert speedups[0] > 0.9
