"""Fig. 8: TT-EmbeddingBag vs T3nsor vs PyTorch-style EmbeddingBag.

The paper compares compute time and activation-memory footprint of its
TT-EmbeddingBag kernel against T3nsor (which decompresses the full table
every forward pass) and the dense EmbeddingBag, sweeping the number of
table rows. Expected shapes:

- T3nsor's time and memory grow with the row count; TT-Rec's do not
  (they depend on the batch, not the table).
- TT-Rec's transient memory is ~ #rows/batch times smaller than both
  T3nsor's and the dense table.
"""

import numpy as np
import pytest
from conftest import banner

from repro.bench import format_table, uniform_workload
from repro.ops import EmbeddingBag
from repro.tt import T3nsorEmbeddingBag, TTEmbeddingBag

BATCH = 256
DIM = 16
ROW_COUNTS = (10_000, 40_000, 160_000)
RANK = 16


def _step(emb, idx, off):
    out = emb.forward(idx, off)
    emb.zero_grad()
    emb.backward(np.ones_like(out))
    return out


@pytest.mark.parametrize("rows", ROW_COUNTS)
@pytest.mark.parametrize("kind", ["embedding_bag", "tt_rec", "t3nsor"])
def test_fig8_kernel_time(benchmark, kind, rows):
    idx, off = uniform_workload(rows, BATCH, rng=0)
    if kind == "embedding_bag":
        emb = EmbeddingBag(rows, DIM, rng=0)
    elif kind == "tt_rec":
        emb = TTEmbeddingBag(rows, DIM, rank=RANK, rng=0)
    else:
        emb = T3nsorEmbeddingBag(rows, DIM, rank=RANK, rng=0)
    benchmark.group = f"fig8 rows={rows}"
    benchmark.extra_info["rows"] = rows
    benchmark(_step, emb, idx, off)


def test_fig8_memory_report(benchmark):
    def compute():
        rows_out = []
        for rows in ROW_COUNTS:
            tt = TTEmbeddingBag(rows, DIM, rank=RANK, rng=0)
            t3 = T3nsorEmbeddingBag(rows, DIM, rank=RANK, rng=0)
            dense_elems = rows * DIM
            tt_transient = BATCH * DIM  # only the touched rows materialise
            rows_out.append([
                rows,
                f"{dense_elems * 4 / 1e6:.2f} MB",
                f"{t3.peak_activation_elements * 4 / 1e6:.2f} MB",
                f"{tt_transient * 4 / 1e6:.4f} MB",
                f"{tt.num_parameters() * 4 / 1e3:.1f} KB",
                f"{dense_elems / tt_transient:.0f}x",
            ])
        return rows_out

    rows_out = benchmark(compute)
    banner("Fig. 8: memory footprint (batch 256, rank 16)")
    print(format_table(
        ["# rows", "EmbeddingBag", "T3nsor transient", "TT-Rec transient",
         "TT-Rec params", "TT-Rec footprint advantage"],
        rows_out,
    ))
    print("\npaper: TT-Rec's footprint advantage is ~#rows/batch "
          "(about 10,000x at production scale)")
    # advantage grows linearly with rows
    advantages = [float(r[-1].rstrip("x")) for r in rows_out]
    assert advantages[-1] > advantages[0] * 10
