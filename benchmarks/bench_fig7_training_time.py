"""Fig. 7: TT-Rec training time across TT-ranks and TT-Emb settings.

Normalized ms/iteration of TT-Rec relative to the uncompressed baseline,
sweeping rank in {8, 16, 32, 64} and compressed-table count in {3, 5, 7}.
The paper reports ~10-15% overhead at the optimal ranks, growing with rank
and with the number of compressed tables.
"""

from conftest import banner, scaled_iters

from repro.bench import format_table, write_bench_json
from repro.models import TTConfig
from trainlib import train_and_eval

RANKS = (8, 16, 32, 64)
TABLE_COUNTS = (3, 5, 7)


def test_fig7_training_time(benchmark, kaggle_small):
    iters = scaled_iters(60)

    def run():
        base_res, _, _ = train_and_eval(kaggle_small, num_tt=0, iters=iters, seed=4)
        rows = {}
        for n in TABLE_COUNTS:
            for rank in RANKS:
                res, _, _ = train_and_eval(
                    kaggle_small, num_tt=n, tt=TTConfig(rank=rank),
                    iters=iters, seed=4,
                )
                rows[(n, rank)] = (res.ms_per_iter, res.ms_per_iter_steady)
        return (base_res.ms_per_iter, base_res.ms_per_iter_steady), rows

    (base_ms, base_steady), rows = benchmark.pedantic(run, rounds=1, iterations=1)
    banner("Fig. 7: normalized training time (baseline = 1.0)")
    print(f"baseline: {base_ms:.2f} ms/iter, {base_steady:.2f} steady "
          f"(paper: 12.14 ms/iter on a V100)")
    table = [
        [f"TT-Emb {n}", rank, f"{ms:.2f}", f"{steady:.2f}",
         f"{steady / base_steady:.2f}x"]
        for (n, rank), (ms, steady) in rows.items()
    ]
    print(format_table(
        ["setting", "rank", "ms/iter", "steady", "normalized"], table))
    print("\npaper: overhead grows with rank; ~1.1-1.5x across the sweep")
    path = write_bench_json("training", {
        "iters": iters,
        "baseline_ms_per_iter": base_ms,
        "baseline_ms_per_iter_steady": base_steady,
        "settings": [
            {"tables": n, "rank": rank, "ms_per_iter": ms,
             "ms_per_iter_steady": steady,
             "normalized": steady / base_steady}
            for (n, rank), (ms, steady) in rows.items()
        ],
    })
    print(f"wrote {path}")
    # Shape checks: within each table count, the highest rank is slower
    # than the lowest (more FLOPs per lookup). Steady-state timing
    # excludes first-iteration warm-up, so the comparison is less noisy.
    for n in TABLE_COUNTS:
        assert rows[(n, RANKS[-1])][1] > rows[(n, RANKS[0])][1] * 0.9
    # Compressing more tables at the largest rank costs more time.
    assert rows[(7, 64)][1] > rows[(3, 8)][1] * 0.9
