"""Fig. 7: TT-Rec training time across TT-ranks and TT-Emb settings.

Normalized ms/iteration of TT-Rec relative to the uncompressed baseline,
sweeping rank in {8, 16, 32, 64} and compressed-table count in {3, 5, 7}.
The paper reports ~10-15% overhead at the optimal ranks, growing with rank
and with the number of compressed tables.
"""

from conftest import banner, scaled_iters

from repro.bench import format_table
from repro.models import TTConfig
from trainlib import train_and_eval

RANKS = (8, 16, 32, 64)
TABLE_COUNTS = (3, 5, 7)


def test_fig7_training_time(benchmark, kaggle_small):
    iters = scaled_iters(60)

    def run():
        base_res, _, _ = train_and_eval(kaggle_small, num_tt=0, iters=iters, seed=4)
        rows = {}
        for n in TABLE_COUNTS:
            for rank in RANKS:
                res, _, _ = train_and_eval(
                    kaggle_small, num_tt=n, tt=TTConfig(rank=rank),
                    iters=iters, seed=4,
                )
                rows[(n, rank)] = res.ms_per_iter
        return base_res.ms_per_iter, rows

    base_ms, rows = benchmark.pedantic(run, rounds=1, iterations=1)
    banner("Fig. 7: normalized training time (baseline = 1.0)")
    print(f"baseline: {base_ms:.2f} ms/iter (paper: 12.14 ms/iter on a V100)")
    table = [
        [f"TT-Emb {n}", rank, f"{ms:.2f}", f"{ms / base_ms:.2f}x"]
        for (n, rank), ms in rows.items()
    ]
    print(format_table(["setting", "rank", "ms/iter", "normalized"], table))
    print("\npaper: overhead grows with rank; ~1.1-1.5x across the sweep")
    # Shape checks: within each table count, the highest rank is slower
    # than the lowest (more FLOPs per lookup).
    for n in TABLE_COUNTS:
        assert rows[(n, RANKS[-1])] > rows[(n, RANKS[0])] * 0.9
    # Compressing more tables at the largest rank costs more time.
    assert rows[(7, 64)] > rows[(3, 8)] * 0.9
