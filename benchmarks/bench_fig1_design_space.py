"""Fig. 1: the accuracy-vs-memory design space and its Pareto frontier.

Sweeps TT-rank x embedding-dim x compressed-table-count on the scaled
Kaggle spec, prints every design point and marks the Pareto-optimal ones
(the paper's black curve).
"""

from conftest import banner, scaled_iters

from repro.analysis.design_space import frontier, sweep_design_space
from repro.bench import format_table


def test_fig1_design_space(benchmark, kaggle_small):
    iters = scaled_iters(100)

    def run():
        points = sweep_design_space(
            kaggle_small,
            ranks=(4, 16), emb_dims=(4, 8), table_counts=(0, 3, 7),
            train_iters=iters, eval_iters=6, seed=5, min_rows=300,
        )
        return points, frontier(points)

    points, front = benchmark.pedantic(run, rounds=1, iterations=1)
    front_set = {id(p) for p in front}
    banner("Fig. 1: design space (accuracy vs embedding memory)")
    rows = []
    for p in sorted(points, key=lambda p: p.memory_bytes):
        rows.append([
            "*" if id(p) in front_set else "",
            p.num_tt_tables or "-", p.rank or "-", p.emb_dim,
            f"{p.memory_bytes / 1024:.1f} KiB", f"{p.accuracy * 100:.2f}",
        ])
    print(format_table(
        ["pareto", "TT-Emb", "rank", "emb dim", "emb memory", "accuracy %"], rows
    ))
    print("\npaper: compressed points dominate the baseline in memory at "
          "near-baseline accuracy; the frontier is traced by TT settings")
    assert len(front) >= 2
    # Frontier must be monotone: increasing memory -> increasing accuracy.
    accs = [p.accuracy for p in front]
    assert all(a < b for a, b in zip(accs, accs[1:]))
    # At least one compressed point must dominate some baseline point in
    # memory while staying within 2% accuracy.
    baselines = [p for p in points if p.num_tt_tables == 0]
    compressed = [p for p in points if p.num_tt_tables > 0]
    assert any(
        c.memory_bytes < b.memory_bytes / 2 and c.accuracy > b.accuracy - 0.02
        for c in compressed for b in baselines
    )
