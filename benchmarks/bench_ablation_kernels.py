"""Ablation: batched-GEMM kernel vs naive per-row chain, and index dedup.

Kernel-level design choices measured here:

1. Algorithm 1's batched GEMM formulation vs evaluating Eq. 3 row by row
   (the paper's 3x-over-T3nsor claim rests on batching).
2. Deduplicating repeated indices before the TT chain (an optimization the
   paper's GPU kernel omits; relevant at high pooling factors).
3. The batch execution planner (repro.tt.planner, docs/KERNELS.md):
   ``auto`` policy vs the fixed left-to-right chain, across uniform and
   Zipf traffic. These arms feed ``BENCH_kernels.json`` and the CI
   ``kernel-bench`` regression gate (repro.bench.regression).
"""

import os
import time

import numpy as np
import pytest
from conftest import banner

from repro.bench import (
    format_table,
    pooling_workload,
    uniform_workload,
    write_bench_json,
)
from repro.tt import TTEmbeddingBag
from repro.tt.kernels import tt_lookup_reference

ROWS = 50_000
DIM = 16
RANK = 16
BATCH = 256

# The kernel-bench gate compares each arm's ms/iter normalised by this
# arm, so the committed baseline survives machine-speed differences.
REFERENCE_ARM = "uniform_b256_fixed"


def _time_min(fn, *, iters: int, repeats: int) -> float:
    """Steady-state ms/iter: best mean over ``repeats`` rounds."""
    fn()  # warm buffers, plan memo, BLAS threads
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        for _ in range(iters):
            fn()
        best = min(best, (time.perf_counter() - t0) / iters)
    return best * 1e3


def _planner_arms() -> dict[str, float]:
    """Planner benchmark arms: fixed-l2r vs auto policy, ms/iter each.

    Pairs (fixed baseline, planner arm):

    - ``uniform_b256``: uniform batch-256 lookup — auto must match fixed
      (same schedule, planner overhead only);
    - ``zipf_b4096``: Zipf(1.2) batch-4096 lookup — dedup collapses the
      hot rows, the paper's Fig. 11 reuse gap;
    - ``zipf_p100_step``: Zipf(1.2) pooling-100 forward+backward training
      step — dedup shared between forward and Algorithm 2.
    """
    scale = float(os.environ.get("REPRO_BENCH_SCALE", "1") or 1)
    iters = max(3, int(round(10 * scale)))
    repeats = max(3, int(round(5 * scale)))

    def make(policy, dedup):
        return TTEmbeddingBag(ROWS, DIM, rank=RANK, plan_policy=policy,
                              dedup=dedup, rng=0)

    arms: dict[str, float] = {}
    idx_u, _ = uniform_workload(ROWS, BATCH, rng=0)
    fixed, auto = make("fixed", False), make("auto", False)
    arms["uniform_b256_fixed"] = _time_min(lambda: fixed.lookup(idx_u),
                                           iters=iters, repeats=repeats)
    arms["uniform_b256_auto"] = _time_min(lambda: auto.lookup(idx_u),
                                          iters=iters, repeats=repeats)

    idx_z, _ = pooling_workload(ROWS, 4096, 1, zipf_s=1.2, rng=0)
    fixed, auto = make("fixed", False), make("auto", True)
    arms["zipf_b4096_fixed"] = _time_min(lambda: fixed.lookup(idx_z),
                                         iters=iters, repeats=repeats)
    arms["zipf_b4096_auto"] = _time_min(lambda: auto.lookup(idx_z),
                                        iters=iters, repeats=repeats)

    idx_p, off_p = pooling_workload(ROWS, 32, 100, zipf_s=1.2, rng=0)
    grad = np.ones((32, DIM))

    def step(emb):
        emb.zero_grad()
        out = emb.forward(idx_p, off_p)
        emb.backward(grad[: out.shape[0]])

    fixed, auto = make("fixed", False), make("auto", True)
    arms["zipf_p100_step_fixed"] = _time_min(lambda: step(fixed),
                                             iters=iters, repeats=repeats)
    arms["zipf_p100_step_auto"] = _time_min(lambda: step(auto),
                                            iters=iters, repeats=repeats)
    return arms


def test_batched_gemm_forward(benchmark):
    emb = TTEmbeddingBag(ROWS, DIM, rank=RANK, rng=0)
    idx, _ = uniform_workload(ROWS, BATCH, rng=0)
    benchmark.group = "batched-vs-naive"
    benchmark(emb.lookup, idx)


def test_naive_per_row_forward(benchmark):
    emb = TTEmbeddingBag(ROWS, DIM, rank=RANK, rng=0)
    cores = [p.data for p in emb.cores]
    idx, _ = uniform_workload(ROWS, BATCH, rng=0)
    benchmark.group = "batched-vs-naive"
    benchmark(tt_lookup_reference, cores, emb.shape, idx)


def test_batching_speedup_report(benchmark):
    import time

    def compute():
        emb = TTEmbeddingBag(ROWS, DIM, rank=RANK, rng=0)
        cores = [p.data for p in emb.cores]
        idx, _ = uniform_workload(ROWS, BATCH, rng=0)
        emb.lookup(idx)
        t0 = time.perf_counter()
        for _ in range(5):
            emb.lookup(idx)
        batched = (time.perf_counter() - t0) / 5
        t0 = time.perf_counter()
        tt_lookup_reference(cores, emb.shape, idx)
        naive = time.perf_counter() - t0
        return batched, naive

    batched, naive = benchmark.pedantic(compute, rounds=1, iterations=1)
    banner("Ablation: batched GEMM vs naive per-row TT chain (forward only)")
    print(format_table(
        ["kernel", "ms/batch", "speedup"],
        [["naive per-row (Eq. 3 loop)", f"{naive * 1e3:.2f}", "1.0x"],
         ["batched GEMM (Algorithm 1)", f"{batched * 1e3:.2f}",
          f"{naive / batched:.0f}x"]],
    ))
    print("\npaper: TT-EmbeddingBag is ~3x faster than the SOTA TT "
          "implementation; batching is the dominant reason")

    arms = _planner_arms()
    ref = arms[REFERENCE_ARM]
    banner("Batch execution planner: auto policy vs fixed l2r")
    pairs = ["uniform_b256", "zipf_b4096", "zipf_p100_step"]
    rows = []
    speedups = {}
    for pair in pairs:
        f, a = arms[f"{pair}_fixed"], arms[f"{pair}_auto"]
        speedups[pair] = f / a
        rows.append([pair, f"{f:.3f}", f"{a:.3f}", f"{f / a:.2f}x"])
    print(format_table(["arm", "fixed ms/iter", "auto ms/iter", "speedup"],
                       rows))
    path = write_bench_json("kernels", {
        "rows": ROWS, "dim": DIM, "rank": RANK, "batch": BATCH,
        "naive_ms_per_batch": naive * 1e3,
        "batched_ms_per_batch": batched * 1e3,
        "speedup": naive / batched,
        "reference_arm": REFERENCE_ARM,
        "arms": {name: {"ms_per_iter": ms, "norm_ms": ms / ref}
                 for name, ms in arms.items()},
        "planner_speedups": speedups,
    })
    print(f"wrote {path}")
    assert batched < naive / 3
    # Acceptance gates: auto never slower than fixed l2r by >5% on any
    # arm; >=1.3x on the Zipf dedup arm at batch 4096.
    for pair in pairs:
        assert arms[f"{pair}_auto"] <= arms[f"{pair}_fixed"] * 1.05, pair
    assert speedups["zipf_b4096"] >= 1.3


@pytest.mark.parametrize("dedup", [False, True], ids=["no-dedup", "dedup"])
def test_dedup_at_high_pooling(benchmark, dedup):
    """Zipf traffic at P=100 repeats hot rows heavily; dedup collapses them."""
    emb = TTEmbeddingBag(ROWS, DIM, rank=RANK, dedup=dedup, rng=0)
    idx, off = pooling_workload(ROWS, 32, 100, zipf_s=1.2, rng=0)

    def step():
        out = emb.forward(idx, off)
        emb.zero_grad()
        emb.backward(np.ones_like(out))

    benchmark.group = "dedup P=100"
    benchmark(step)
