"""Ablation: batched-GEMM kernel vs naive per-row chain, and index dedup.

Two of TT-Rec's kernel-level design choices:

1. Algorithm 1's batched GEMM formulation vs evaluating Eq. 3 row by row
   (the paper's 3x-over-T3nsor claim rests on batching).
2. Deduplicating repeated indices before the TT chain (an optimization the
   paper's GPU kernel omits; relevant at high pooling factors).
"""

import numpy as np
import pytest
from conftest import banner

from repro.bench import (
    format_table,
    pooling_workload,
    uniform_workload,
    write_bench_json,
)
from repro.tt import TTEmbeddingBag
from repro.tt.kernels import tt_lookup_reference

ROWS = 50_000
DIM = 16
RANK = 16
BATCH = 256


def test_batched_gemm_forward(benchmark):
    emb = TTEmbeddingBag(ROWS, DIM, rank=RANK, rng=0)
    idx, _ = uniform_workload(ROWS, BATCH, rng=0)
    benchmark.group = "batched-vs-naive"
    benchmark(emb.lookup, idx)


def test_naive_per_row_forward(benchmark):
    emb = TTEmbeddingBag(ROWS, DIM, rank=RANK, rng=0)
    cores = [p.data for p in emb.cores]
    idx, _ = uniform_workload(ROWS, BATCH, rng=0)
    benchmark.group = "batched-vs-naive"
    benchmark(tt_lookup_reference, cores, emb.shape, idx)


def test_batching_speedup_report(benchmark):
    import time

    def compute():
        emb = TTEmbeddingBag(ROWS, DIM, rank=RANK, rng=0)
        cores = [p.data for p in emb.cores]
        idx, _ = uniform_workload(ROWS, BATCH, rng=0)
        emb.lookup(idx)
        t0 = time.perf_counter()
        for _ in range(5):
            emb.lookup(idx)
        batched = (time.perf_counter() - t0) / 5
        t0 = time.perf_counter()
        tt_lookup_reference(cores, emb.shape, idx)
        naive = time.perf_counter() - t0
        return batched, naive

    batched, naive = benchmark.pedantic(compute, rounds=1, iterations=1)
    banner("Ablation: batched GEMM vs naive per-row TT chain (forward only)")
    print(format_table(
        ["kernel", "ms/batch", "speedup"],
        [["naive per-row (Eq. 3 loop)", f"{naive * 1e3:.2f}", "1.0x"],
         ["batched GEMM (Algorithm 1)", f"{batched * 1e3:.2f}",
          f"{naive / batched:.0f}x"]],
    ))
    print("\npaper: TT-EmbeddingBag is ~3x faster than the SOTA TT "
          "implementation; batching is the dominant reason")
    path = write_bench_json("kernels", {
        "rows": ROWS, "dim": DIM, "rank": RANK, "batch": BATCH,
        "naive_ms_per_batch": naive * 1e3,
        "batched_ms_per_batch": batched * 1e3,
        "speedup": naive / batched,
    })
    print(f"wrote {path}")
    assert batched < naive / 3


@pytest.mark.parametrize("dedup", [False, True], ids=["no-dedup", "dedup"])
def test_dedup_at_high_pooling(benchmark, dedup):
    """Zipf traffic at P=100 repeats hot rows heavily; dedup collapses them."""
    emb = TTEmbeddingBag(ROWS, DIM, rank=RANK, dedup=dedup, rng=0)
    idx, off = pooling_workload(ROWS, 32, 100, zipf_s=1.2, rng=0)

    def step():
        out = emb.forward(idx, off)
        emb.zero_grad()
        emb.backward(np.ones_like(out))

    benchmark.group = "dedup P=100"
    benchmark(step)
