"""Related-work comparison (§7): TT vs the rest of the compression zoo.

The paper argues qualitatively against each alternative; this bench makes
the comparison quantitative on one workload, matching parameter budgets:

- accuracy at equal memory: hashing (collisions), low-rank (rank ceiling)
  and TR (ring overhead) against TT, plus the two trainable-quantization
  arms — DPQ (product-quantization codebooks, straight-through gradient)
  and ALPT (integer codes with learned per-row scales);
- post-training quantization: accuracy of a trained dense model after
  4/8-bit table quantization (inference-time compression only).

Every trainable arm is built through the compression-zoo factory
(``repro.compress.make_embedding``), so per-arm ``memory_bytes`` come
from one accounting contract; the results land in
``BENCH_compression.json``.
"""

import numpy as np
from conftest import banner, scaled_iters

from repro.baselines import QuantizedEmbeddingBag
from repro.bench import format_table, write_bench_json
from repro.compress import EmbeddingSpec, make_embedding, predict_memory_bytes
from repro.data import SyntheticCTRDataset
from repro.models.dlrm import DLRM
from repro.training import Trainer
from repro.utils.dtypes import default_dtype
from trainlib import MIN_ROWS, small_config

#: kind -> zoo spec params for one compressed table (dim is emb_dim)
ARMS = ("dense", "tt", "tr", "lowrank", "hashing", "dpq", "alpt")


def _arm_spec(kind, size, dim):
    if kind == "dense":
        return "dense", {}
    if kind == "tt":
        return "tt", {"rank": 8}
    if kind == "tr":
        return "tr", {"rank": 4}
    if kind == "lowrank":
        return "lowrank", {"rank": 2}
    if kind == "hashing":
        # bucket count chosen to land near the TT parameter budget
        tt_bytes = predict_memory_bytes(
            EmbeddingSpec(kind="tt", num_rows=size, dim=dim,
                          params={"rank": 8}))
        buckets = max(4, tt_bytes // default_dtype().itemsize // dim)
        return "hash", {"num_buckets": int(buckets)}
    if kind == "dpq":
        return "dpq", {"num_subspaces": 4, "codebook_size": 64}
    if kind == "alpt":
        return "alpt", {"bits": 8}
    raise ValueError(kind)


def _build(spec, cfg, kind, rng_seed=0):
    """DLRM with the largest tables replaced by the given compressor."""
    rng = np.random.default_rng(rng_seed)
    big = {i for i in spec.largest(5) if spec.table_sizes[i] >= MIN_ROWS}
    embeddings = []
    for i, size in enumerate(cfg.table_sizes):
        arm = kind if i in big else "dense"
        zoo_kind, params = _arm_spec(arm, size, cfg.emb_dim)
        embeddings.append(make_embedding(EmbeddingSpec(
            kind=zoo_kind, num_rows=size, dim=cfg.emb_dim,
            seed=rng_seed + i, params=params)))
    return DLRM(cfg, embeddings, rng=rng)


def _embedding_bytes(model) -> int:
    return sum(e.memory_bytes() for e in model.embeddings)


def test_training_compressors(benchmark, kaggle_small):
    iters = scaled_iters(200)
    cfg = small_config(kaggle_small)

    def run():
        out = []
        for kind in ARMS:
            ds = SyntheticCTRDataset(kaggle_small, seed=7, noise=0.7)
            model = _build(kaggle_small, cfg, kind)
            trainer = Trainer(model, lr=0.1)
            trainer.train(ds.batches(96, iters))
            ev = trainer.evaluate(ds.batches(512, 6))
            out.append([kind, model.embedding_parameters(),
                        _embedding_bytes(model),
                        f"{ev.accuracy * 100:.2f}", f"{ev.auc:.4f}"])
        return out

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    banner("Related-work comparison: accuracy at matched embedding budgets")
    print(format_table(
        ["method", "emb params", "emb bytes", "accuracy %", "auc"], rows))
    print("\npaper (§7): hashing collisions cost accuracy at scale; low-rank "
          "cannot reach TT's compression; TR pays ring overhead for similar "
          "quality; DPQ/ALPT trade accuracy headroom for table-size-"
          "independent ratios")
    by_kind = {r[0]: r for r in rows}
    path = write_bench_json("compression", {
        "iters": iters,
        "arms": [{"kind": r[0], "emb_params": int(r[1]),
                  "emb_bytes": int(r[2]), "accuracy": float(r[3]),
                  "auc": float(r[4])} for r in rows],
    })
    print(f"\nwrote {path}")
    # Compressors all trained; TT should land within noise of dense.
    assert float(by_kind["tt"][4]) > float(by_kind["dense"][4]) - 0.05
    # Low-rank's compression ceiling: at these settings it stores more than
    # TT by construction.
    assert int(by_kind["lowrank"][1]) > int(by_kind["tt"][1])
    # Every compressed arm stores fewer embedding bytes than dense.
    for kind in ARMS[1:]:
        assert int(by_kind[kind][2]) < int(by_kind["dense"][2]), kind


def test_posttraining_quantization(benchmark, kaggle_small):
    iters = scaled_iters(200)
    cfg = small_config(kaggle_small)

    def run():
        ds = SyntheticCTRDataset(kaggle_small, seed=7, noise=0.7)
        model = _build(kaggle_small, cfg, "dense")
        trainer = Trainer(model, lr=0.1)
        trainer.train(ds.batches(96, iters))
        fp = trainer.evaluate(ds.batches(512, 6))
        out = [["fp32 (trained)", f"{fp.accuracy * 100:.2f}", f"{fp.auc:.4f}", "1x"]]
        for bits in (8, 4, 2):
            quantized = [
                QuantizedEmbeddingBag.from_dense(e.weight.data, bits=bits)
                for e in model.embeddings
            ]
            qmodel = DLRM.__new__(DLRM)
            qmodel.__dict__.update(model.__dict__)
            qmodel.embeddings = quantized
            qt = Trainer(qmodel, lr=0.1)
            ev = qt.evaluate(ds.batches(512, 6))
            ratio = quantized[0].compression_ratio()
            out.append([f"int{bits}", f"{ev.accuracy * 100:.2f}",
                        f"{ev.auc:.4f}", f"{ratio:.1f}x"])
        return out

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    banner("Post-training quantization of the trained dense model (Guan et al.)")
    print(format_table(["precision", "accuracy %", "auc", "table compression"], rows))
    print("\npaper (§7): 4-bit post-training quantization is feasible for "
          "inference; compare its ~4-7x to TT's 100x+. (At this bench's "
          "scale the under-trained dense tables mean aggressive quantization "
          "can act as a regularizer; only int8~fp32 is asserted.)")
    aucs = [float(r[2]) for r in rows]
    assert aucs[1] > aucs[0] - 0.02  # int8 ~ lossless
    # compression ratios ascend as bits fall
    ratios = [float(r[3].rstrip("x")) for r in rows]
    assert ratios == sorted(ratios)
