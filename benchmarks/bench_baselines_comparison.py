"""Related-work comparison (§7): TT vs hashing vs low-rank vs TR vs quantization.

The paper argues qualitatively against each alternative; this bench makes
the comparison quantitative on one workload, matching parameter budgets:

- accuracy at equal memory: hashing (collisions), low-rank (rank ceiling)
  and TR (ring overhead) against TT;
- post-training quantization: accuracy of a trained dense model after
  4/8-bit table quantization (inference-time compression only).
"""

import numpy as np
from conftest import banner, scaled_iters

from repro.baselines import (
    HashedEmbeddingBag,
    LowRankEmbeddingBag,
    QuantizedEmbeddingBag,
    TREmbeddingBag,
)
from repro.bench import format_table
from repro.data import SyntheticCTRDataset
from repro.models import DLRMConfig
from repro.models.dlrm import DLRM
from repro.ops import EmbeddingBag
from repro.training import Trainer
from repro.tt import TTEmbeddingBag
from trainlib import MIN_ROWS, small_config


def _build(spec, cfg, kind, rng_seed=0):
    """DLRM with the largest tables replaced by the given compressor."""
    rng = np.random.default_rng(rng_seed)
    big = {i for i in spec.largest(5) if spec.table_sizes[i] >= MIN_ROWS}
    embeddings = []
    for i, size in enumerate(cfg.table_sizes):
        if i not in big or kind == "dense":
            embeddings.append(EmbeddingBag(size, cfg.emb_dim, rng=rng))
        elif kind == "tt":
            embeddings.append(TTEmbeddingBag(size, cfg.emb_dim, rank=8, rng=rng))
        elif kind == "tr":
            embeddings.append(TREmbeddingBag(size, cfg.emb_dim, rank=4, rng=rng))
        elif kind == "lowrank":
            embeddings.append(LowRankEmbeddingBag(size, cfg.emb_dim, rank=2, rng=rng))
        elif kind == "hashing":
            # bucket count chosen to land near the TT parameter budget
            tt_params = TTEmbeddingBag(size, cfg.emb_dim, rank=8, rng=0).num_parameters()
            buckets = max(4, tt_params // cfg.emb_dim)
            embeddings.append(HashedEmbeddingBag(size, cfg.emb_dim,
                                                 num_buckets=buckets, rng=rng))
        else:
            raise ValueError(kind)
    return DLRM(cfg, embeddings, rng=rng)


def test_training_compressors(benchmark, kaggle_small):
    iters = scaled_iters(200)
    cfg = small_config(kaggle_small)

    def run():
        out = []
        for kind in ("dense", "tt", "tr", "lowrank", "hashing"):
            ds = SyntheticCTRDataset(kaggle_small, seed=7, noise=0.7)
            model = _build(kaggle_small, cfg, kind)
            trainer = Trainer(model, lr=0.1)
            trainer.train(ds.batches(96, iters))
            ev = trainer.evaluate(ds.batches(512, 6))
            out.append([kind, model.embedding_parameters(),
                        f"{ev.accuracy * 100:.2f}", f"{ev.auc:.4f}"])
        return out

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    banner("Related-work comparison: accuracy at matched embedding budgets")
    print(format_table(["method", "emb params", "accuracy %", "auc"], rows))
    print("\npaper (§7): hashing collisions cost accuracy at scale; low-rank "
          "cannot reach TT's compression; TR pays ring overhead for similar "
          "quality")
    by_kind = {r[0]: r for r in rows}
    # Compressors all trained; TT should land within noise of dense.
    assert float(by_kind["tt"][3]) > float(by_kind["dense"][3]) - 0.05
    # Low-rank's compression ceiling: at these settings it stores more than
    # TT by construction.
    assert int(by_kind["lowrank"][1]) > int(by_kind["tt"][1])


def test_posttraining_quantization(benchmark, kaggle_small):
    iters = scaled_iters(200)
    cfg = small_config(kaggle_small)

    def run():
        ds = SyntheticCTRDataset(kaggle_small, seed=7, noise=0.7)
        model = _build(kaggle_small, cfg, "dense")
        trainer = Trainer(model, lr=0.1)
        trainer.train(ds.batches(96, iters))
        fp = trainer.evaluate(ds.batches(512, 6))
        out = [["fp32 (trained)", f"{fp.accuracy * 100:.2f}", f"{fp.auc:.4f}", "1x"]]
        for bits in (8, 4, 2):
            quantized = [
                QuantizedEmbeddingBag.from_dense(e.weight.data, bits=bits)
                for e in model.embeddings
            ]
            qmodel = DLRM.__new__(DLRM)
            qmodel.__dict__.update(model.__dict__)
            qmodel.embeddings = quantized
            qt = Trainer(qmodel, lr=0.1)
            ev = qt.evaluate(ds.batches(512, 6))
            ratio = quantized[0].compression_ratio()
            out.append([f"int{bits}", f"{ev.accuracy * 100:.2f}",
                        f"{ev.auc:.4f}", f"{ratio:.1f}x"])
        return out

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    banner("Post-training quantization of the trained dense model (Guan et al.)")
    print(format_table(["precision", "accuracy %", "auc", "table compression"], rows))
    print("\npaper (§7): 4-bit post-training quantization is feasible for "
          "inference; compare its ~4-7x to TT's 100x+. (At this bench's "
          "scale the under-trained dense tables mean aggressive quantization "
          "can act as a regularizer; only int8~fp32 is asserted.)")
    aucs = [float(r[2]) for r in rows]
    assert aucs[1] > aucs[0] - 0.02  # int8 ~ lossless
    # compression ratios ascend as bits fall
    ratios = [float(r[3].rstrip("x")) for r in rows]
    assert ratios == sorted(ratios)
