"""Fig. 12: cached TT-Rec kernel vs EmbeddingBag across cache hit rates.

Controlled-hit-rate streams drive the CachedTTEmbeddingBag; as the hit
rate rises, more lookups are served from the uncompressed cache and the
kernel approaches (then beats, at ~90% in the paper) the dense
EmbeddingBag. We report the measured per-batch time and the crossover.
"""

import time

import numpy as np
import pytest
from conftest import banner

from repro.bench import controlled_hitrate_workload, format_series
from repro.cache import CachedTTEmbeddingBag
from repro.ops import EmbeddingBag

ROWS = 200_000
DIM = 16
BATCH = 512
RANK = 32
HIT_RATES = (0.0, 0.25, 0.5, 0.75, 0.9, 0.99)
CACHE_SIZE = 2048


def make_cached():
    emb = CachedTTEmbeddingBag(
        ROWS, DIM, rank=RANK, cache_size=CACHE_SIZE, warmup_steps=0,
        refresh_interval=None, rng=0,
    )
    # Deterministically warm the cache with a known hot set.
    hot = np.arange(CACHE_SIZE, dtype=np.int64)
    emb.tracker.record(np.repeat(hot, 2))
    emb.populate()
    assert emb.is_warm
    return emb, hot


def _step(emb, idx, off):
    out = emb.forward(idx, off)
    emb.zero_grad()
    emb.backward(np.ones_like(out))


@pytest.mark.parametrize("hit_rate", HIT_RATES)
def test_fig12_cached_tt(benchmark, hit_rate):
    emb, hot = make_cached()
    idx, off = controlled_hitrate_workload(
        ROWS, BATCH, cached_ids=hot, hit_rate=hit_rate, rng=0
    )
    benchmark.group = "fig12"
    benchmark.extra_info["hit_rate"] = hit_rate
    benchmark(_step, emb, idx, off)


def test_fig12_embedding_bag_reference(benchmark):
    emb = EmbeddingBag(ROWS, DIM, rng=0)
    idx, off = controlled_hitrate_workload(
        ROWS, BATCH, cached_ids=np.arange(CACHE_SIZE), hit_rate=0.5, rng=0
    )
    benchmark.group = "fig12"
    benchmark(_step, emb, idx, off)


def test_fig12_report(benchmark):
    def measure(emb, idx, off, reps=5):
        _step(emb, idx, off)
        t0 = time.perf_counter()
        for _ in range(reps):
            _step(emb, idx, off)
        return (time.perf_counter() - t0) / reps * 1e3  # ms/batch

    def compute():
        dense = EmbeddingBag(ROWS, DIM, rng=0)
        times = []
        for hr in HIT_RATES:
            emb, hot = make_cached()
            idx, off = controlled_hitrate_workload(
                ROWS, BATCH, cached_ids=hot, hit_rate=hr, rng=0
            )
            tt_ms = measure(emb, idx, off)
            eb_ms = measure(dense, idx, off)
            times.append((hr, tt_ms, eb_ms))
        return times

    times = benchmark.pedantic(compute, rounds=1, iterations=1)
    banner("Fig. 12: cached TT-Rec kernel time vs cache hit rate")
    print(format_series(
        "cached TT-Rec vs EmbeddingBag",
        [f"{hr:.0%}" for hr, _, _ in times],
        [f"tt={tt:.2f}ms  eb={eb:.2f}ms  ratio={tt / eb:.2f}" for _, tt, eb in times],
        x_label="hit rate", y_label="ms/batch",
    ))
    print("\npaper: TT-Rec improves with hit rate and crosses EmbeddingBag ~90%")
    ratios = [tt / eb for _, tt, eb in times]
    assert ratios[-1] < ratios[0]  # monotone improvement overall
    assert times[-1][1] < times[0][1]  # absolute time falls with hit rate
