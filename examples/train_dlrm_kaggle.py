"""Train baseline DLRM vs TT-Rec on Kaggle-shaped synthetic CTR data.

Reproduces the paper's headline experiment in miniature: the MLPerf-DLRM
architecture with the 26 Criteo-Kaggle categorical features (scaled for
CPU), trained with plain SGD, comparing:

- the uncompressed baseline,
- TT-Rec with the 7 largest tables compressed (rank 32),
- TT-Rec + LFU cache (the full system).

Prints per-model size, training time and validation metrics. Pass
``--iters`` / ``--scale`` to trade fidelity for runtime; with a real
Criteo TSV file, pass ``--criteo path/to/train.txt`` to train on real data
via repro.data.CriteoTSVReader instead of the synthetic stream.

Run:  python examples/train_dlrm_kaggle.py [--iters 400] [--scale 0.001]
"""

import argparse

from repro import DLRMConfig, TTConfig, Trainer, build_dlrm, build_ttrec
from repro.data import KAGGLE, CriteoTSVReader, SyntheticCTRDataset


def batches_for(args, spec, seed):
    if args.criteo:
        reader = CriteoTSVReader(args.criteo, spec)
        return reader.batches(args.batch_size, max_samples=args.iters * args.batch_size)
    ds = SyntheticCTRDataset(spec, seed=seed, noise=0.7)
    return ds.batches(args.batch_size, args.iters + args.eval_iters)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--iters", type=int, default=400)
    parser.add_argument("--eval-iters", type=int, default=8)
    parser.add_argument("--batch-size", type=int, default=128)
    parser.add_argument("--scale", type=float, default=0.001,
                        help="table-size scale factor vs the real Kaggle spec")
    parser.add_argument("--rank", type=int, default=32)
    parser.add_argument("--criteo", type=str, default=None,
                        help="path to a real Criteo-format TSV (uses full spec)")
    args = parser.parse_args()

    spec = KAGGLE if args.criteo else KAGGLE.scaled(args.scale)
    cfg = DLRMConfig(table_sizes=spec.table_sizes, emb_dim=16,
                     bottom_mlp=(128, 64, 32), top_mlp=(128, 64))
    min_rows = 60 if not args.criteo else 10_000

    candidates = {
        "baseline DLRM": lambda: build_dlrm(cfg, rng=0),
        f"TT-Rec (7 tables, R={args.rank})": lambda: build_ttrec(
            cfg, num_tt_tables=7, tt=TTConfig(rank=args.rank),
            min_rows=min_rows, rng=0),
        f"TT-Rec + LFU cache": lambda: build_ttrec(
            cfg, num_tt_tables=7,
            tt=TTConfig(rank=args.rank, use_cache=True, cache_fraction=0.01,
                        warmup_steps=args.iters // 10, refresh_interval=200),
            min_rows=min_rows, rng=0),
    }

    print(f"spec: {spec.name}, largest table {max(spec.table_sizes):,} rows\n")
    for name, build in candidates.items():
        model = build()
        trainer = Trainer(model, lr=0.1)
        # Train and evaluate on one stream: the evaluation batches are
        # held-out samples from the same (planted or real) distribution.
        stream = batches_for(args, spec, seed=1)
        res = trainer.train(stream, max_iters=args.iters)
        ev = trainer.evaluate(stream, max_iters=args.eval_iters)
        emb_mb = model.embedding_parameters() * 4 / 1e6
        print(f"{name}")
        print(f"  embedding params: {model.embedding_parameters():>12,} "
              f"({emb_mb:.2f} MB)")
        print(f"  training:         {res.ms_per_iter:>8.2f} ms/iter "
              f"(final loss {res.smoothed_loss():.4f})")
        print(f"  validation:       {ev}")
        print()


if __name__ == "__main__":
    main()
