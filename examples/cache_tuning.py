"""Tune the TT-Rec LFU cache against a Zipf access distribution.

Shows the analytics-and-measurement loop from the paper's §6.5: for a
given traffic skew, what cache size do you need for a target hit rate, and
what does the cache actually achieve once warmed? Compares measured
steady-state hit rates of the LFU cache against the analytic ideal
(top-k traffic mass) across cache sizes and policies.

Run:  python examples/cache_tuning.py [--rows 200000] [--zipf 1.05]
"""

import argparse

import numpy as np

from repro import CachedTTEmbeddingBag
from repro.bench import format_table
from repro.data import ZipfSampler


def measure_hit_rate(rows, cache_size, zipf_s, policy, *, steps=150,
                     batch=256, seed=0):
    sampler = ZipfSampler(rows, zipf_s, rng=seed)
    emb = CachedTTEmbeddingBag(
        rows, 8, rank=4, cache_size=cache_size, warmup_steps=20,
        refresh_interval=50, policy=policy, rng=seed,
    )
    warm_hits = warm_lookups = 0
    for step in range(steps):
        before_h, before_l = emb.hits, emb.lookups
        emb.forward(sampler.sample(batch))
        if emb.is_warm and step > 40:
            warm_hits += emb.hits - before_h
            warm_lookups += emb.lookups - before_l
    return warm_hits / max(warm_lookups, 1), sampler


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rows", type=int, default=200_000)
    parser.add_argument("--zipf", type=float, default=1.05)
    args = parser.parse_args()

    sampler = ZipfSampler(args.rows, args.zipf, rng=0)
    print(f"traffic: Zipf(s={args.zipf}) over {args.rows:,} rows\n")

    print("Analytic sizing (ideal hit rate = traffic mass of the k hottest rows):")
    targets = [0.25, 0.5, 0.75, 0.9]
    rows = [[f"{t:.0%}", f"{sampler.rank_for_mass(t):,}",
             f"{sampler.rank_for_mass(t) / args.rows:.3%}"] for t in targets]
    print(format_table(["target hit rate", "cache rows needed", "fraction of table"], rows))

    print("\nMeasured steady-state hit rate (LFU, semi-dynamic refresh):")
    measured = []
    for frac in (0.0001, 0.001, 0.01):
        k = max(1, int(args.rows * frac))
        hit, _ = measure_hit_rate(args.rows, k, args.zipf, "lfu")
        ideal = sampler.top_k_mass(k)
        measured.append([f"{frac:.2%}", f"{k:,}", f"{hit:.3f}", f"{ideal:.3f}",
                         f"{hit / max(ideal, 1e-9):.2f}"])
    print(format_table(
        ["cache size", "rows", "measured hit", "ideal hit", "efficiency"], measured
    ))

    print("\nPolicy comparison at 0.5% cache:")
    k = max(1, args.rows // 200)
    rows = []
    for policy in ("lfu", "lru", "static"):
        hit, _ = measure_hit_rate(args.rows, k, args.zipf, policy)
        rows.append([policy, f"{hit:.3f}"])
    print(format_table(["policy", "measured hit rate"], rows))
    print("\npaper: 0.01% of the table is already sufficient from both the "
          "accuracy and training-time perspectives (§6.5)")


if __name__ == "__main__":
    main()
