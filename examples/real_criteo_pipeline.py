"""End-to-end pipeline on raw Criteo-format logs (no preprocessed data needed).

Runs the full MLPerf-style path the paper presupposes, on raw TSV files:

1. scan the training days -> vocabulary per categorical feature
   (frequency-thresholded, OOV row reserved) -> derived DatasetSpec;
2. auto-pick TT ranks for a memory budget;
3. train TT-Rec streaming from the raw file with negative downsampling
   (the paper's Terabyte setting);
4. evaluate on the held-out day.

Point ``--train`` / ``--test`` at real Criteo files to run on real data.
Without arguments the script fabricates a small raw-format corpus (with a
planted signal in one categorical feature) so the whole pipeline is
demonstrable offline — which also serves as an integration check that the
preprocessing produces learnable inputs.

Run:  python examples/real_criteo_pipeline.py [--train day_0.tsv --test day_1.tsv]
"""

import argparse
import os
import tempfile

import numpy as np

from repro import DLRMConfig, TTConfig, Trainer, build_ttrec
from repro.analysis.autotune import plan_compression
from repro.data.preprocess import Preprocessor, build_vocabularies


def fabricate_raw_days(directory: str, *, samples_per_day=10_000, days=2, seed=0):
    """Write Criteo-format TSVs with a planted signal: categorical feature 0
    has 200 values; even values lean positive, odd lean negative."""
    rng = np.random.default_rng(seed)
    paths = []
    for day in range(days):
        lines = []
        for _ in range(samples_per_day):
            v0 = int(rng.zipf(1.3)) % 200
            p_click = 0.75 if v0 % 2 == 0 else 0.25
            label = int(rng.random() < p_click)
            ints = [str(int(x)) for x in rng.integers(0, 50, 13)]
            cats = [f"{v0:08x}"] + [f"{int(v):08x}"
                                    for v in rng.integers(0, 500, 25)]
            lines.append("\t".join([str(label)] + ints + cats))
        path = os.path.join(directory, f"day_{day}.tsv")
        with open(path, "w") as fh:
            fh.write("\n".join(lines) + "\n")
        paths.append(path)
    return paths


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--train", type=str, default=None)
    parser.add_argument("--test", type=str, default=None)
    parser.add_argument("--min-frequency", type=int, default=2)
    parser.add_argument("--budget-mb", type=float, default=0.05)
    parser.add_argument("--negative-keep", type=float, default=1.0,
                        help="keep rate for negatives (Terabyte paper: 0.125)")
    parser.add_argument("--batch-size", type=int, default=128)
    parser.add_argument("--epochs", type=int, default=3)
    args = parser.parse_args()

    tmpdir = None
    if args.train is None:
        tmpdir = tempfile.mkdtemp(prefix="criteo_demo_")
        train_path, test_path = fabricate_raw_days(tmpdir)
        print(f"fabricated demo corpus under {tmpdir}")
    else:
        train_path, test_path = args.train, args.test or args.train

    # 1. Vocabulary pass --------------------------------------------------- #
    vocabs = build_vocabularies([train_path], min_frequency=args.min_frequency)
    pre = Preprocessor(vocabs)
    spec = pre.spec()
    print(f"vocabularies: {sum(spec.table_sizes):,} total rows across 26 "
          f"tables (largest {max(spec.table_sizes):,})")

    # 2. Compression plan --------------------------------------------------- #
    plan = plan_compression(spec.table_sizes, 8,
                            budget_params=int(args.budget_mb * 1e6 / 4),
                            min_rows=50, candidate_ranks=(2, 4, 8, 16))
    compressed = plan.compressed_indices()
    rank = plan.rank_for(compressed[0]) if compressed else None
    print(f"plan: compress {len(compressed)} tables at rank {rank}, "
          f"{plan.compression_ratio():.1f}x vs dense")

    # 3. Train from the raw file ------------------------------------------- #
    cfg = DLRMConfig(table_sizes=spec.table_sizes, emb_dim=8,
                     bottom_mlp=(32, 16), top_mlp=(32,))
    model = build_ttrec(cfg, num_tt_tables=len(compressed) or 1,
                        tt=TTConfig(rank=rank or 8), min_rows=50, rng=0)
    trainer = Trainer(model, lr=0.15)
    keep = None if args.negative_keep >= 1.0 else args.negative_keep
    total_batches = 0
    for epoch in range(args.epochs):
        res = trainer.train(pre.batches(train_path, args.batch_size,
                                        negative_keep_rate=keep, rng=epoch))
        total_batches += res.iterations
        print(f"epoch {epoch + 1}: {res.iterations} batches, "
              f"loss {res.smoothed_loss():.4f}")

    # 4. Held-out evaluation ------------------------------------------------ #
    ev = trainer.evaluate(pre.batches(test_path, 512))
    print(f"held-out day: {ev}")
    if tmpdir:
        assert ev.auc > 0.6, "planted signal should be learnable"
        print("planted-signal check passed (auc > 0.6)")


if __name__ == "__main__":
    main()
