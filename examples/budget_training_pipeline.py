"""End-to-end production-style pipeline: plan -> train -> checkpoint -> serve.

Chains the library's ops the way a deployment would:

1. **Plan**: pick TT ranks for a memory budget with the auto-tuner
   (`repro.analysis.autotune`) — no hand sweeping.
2. **Train**: build the planned model, train with the MLPerf-style
   warmup + polynomial-decay LR schedule.
3. **Checkpoint**: save to .npz, reload into a fresh process-like model,
   verify bit-identical predictions.
4. **Serve**: quantize the small dense tables for inference and report
   the final serving footprint.

Run:  python examples/budget_training_pipeline.py [--budget-mb 0.25]
"""

import argparse

import numpy as np

from repro import DLRMConfig, Trainer
from repro.analysis.autotune import plan_compression
from repro.baselines import QuantizedEmbeddingBag
from repro.data import KAGGLE, SyntheticCTRDataset
from repro.models import TTConfig, load_model, save_model
from repro.models.dlrm import DLRM
from repro.ops import EmbeddingBag, SparseSGD
from repro.training import LRScheduler, warmup_poly_decay_schedule
from repro.tt import TTEmbeddingBag


def build_from_plan(plan, cfg, rng_seed=0):
    rng = np.random.default_rng(rng_seed)
    embeddings = []
    for t in plan.tables:
        if t.compress:
            embeddings.append(TTEmbeddingBag(t.num_rows, cfg.emb_dim,
                                             rank=t.rank, rng=rng))
        else:
            embeddings.append(EmbeddingBag(t.num_rows, cfg.emb_dim, rng=rng))
    return DLRM(cfg, embeddings, rng=rng)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--budget-mb", type=float, default=0.25,
                        help="embedding budget for the scaled model")
    parser.add_argument("--scale", type=float, default=0.0005)
    parser.add_argument("--iters", type=int, default=300)
    parser.add_argument("--checkpoint", default="/tmp/ttrec_demo.npz")
    args = parser.parse_args()

    # 1. Plan ------------------------------------------------------------ #
    spec = KAGGLE.scaled(args.scale)
    cfg = DLRMConfig(table_sizes=spec.table_sizes, emb_dim=8,
                     bottom_mlp=(32, 16), top_mlp=(32,))
    budget_params = int(args.budget_mb * 1e6 / 4)
    plan = plan_compression(spec.table_sizes, cfg.emb_dim,
                            budget_params=budget_params, min_rows=60,
                            candidate_ranks=(2, 4, 8, 16, 32))
    print(f"plan: {len(plan.compressed_indices())} tables compressed, "
          f"{plan.total_params():,} params "
          f"({plan.total_params() * 4 / 1e6:.2f} MB), "
          f"{plan.compression_ratio():.1f}x vs dense")

    # 2. Train with the MLPerf-style LR schedule ------------------------- #
    model = build_from_plan(plan, cfg)
    ds = SyntheticCTRDataset(spec, seed=0, noise=0.7)
    opt = SparseSGD(model.parameters(), lr=0.15)
    sched = LRScheduler(opt, warmup_poly_decay_schedule(
        warmup_steps=args.iters // 10,
        decay_start_step=args.iters // 2,
        decay_steps=args.iters // 2,
    ))
    trainer = Trainer(model, optimizer=opt)

    losses = []
    for i, batch in enumerate(ds.batches(96, args.iters)):
        sched.step()
        losses.append(trainer.train_step(batch))
        if (i + 1) % max(1, args.iters // 5) == 0:
            print(f"  iter {i + 1:4d}: loss={np.mean(losses[-50:]):.4f} "
                  f"lr={sched.current_lr:.4f}")
    ev = trainer.evaluate(ds.batches(512, 6))
    print(f"trained: {ev}")

    # 3. Checkpoint round-trip ------------------------------------------- #
    save_model(model, args.checkpoint)
    fresh = build_from_plan(plan, cfg, rng_seed=123)
    load_model(fresh, args.checkpoint)
    probe = ds.batch(64)
    drift = np.abs(model.forward(probe.dense, probe.sparse)
                   - fresh.forward(probe.dense, probe.sparse)).max()
    print(f"checkpoint round-trip: max logit drift {drift:.2e} "
          f"({args.checkpoint})")

    # 4. Quantize the remaining dense tables for serving ------------------ #
    served_params = 0
    for i, emb in enumerate(fresh.embeddings):
        if isinstance(emb, EmbeddingBag):
            q = QuantizedEmbeddingBag.from_dense(emb.weight.data, bits=8)
            fresh.embeddings[i] = q
            served_params += q.num_parameters()
        else:
            served_params += emb.num_parameters()
    qev = Trainer(fresh).evaluate(ds.batches(512, 6))
    print(f"serving model: {served_params:,} fp32-equivalent params "
          f"({served_params * 4 / 1e6:.2f} MB), {qev}")


if __name__ == "__main__":
    main()
