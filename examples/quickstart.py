"""Quickstart: TT-compress an embedding table and use it like EmbeddingBag.

Demonstrates the core public API in under a minute:

1. Build a ``TTEmbeddingBag`` for a million-row table and inspect its
   compression ratio.
2. Look up rows, pool bags, run a backward pass and an SGD step.
3. Round-trip a small pre-trained dense table through TT-SVD.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import SparseSGD, TTEmbeddingBag, TTShape, tt_svd

rng = np.random.default_rng(0)

# ----------------------------------------------------------------------- #
# 1. A compressed million-row embedding table
# ----------------------------------------------------------------------- #
NUM_ROWS, DIM = 1_000_000, 16
emb = TTEmbeddingBag(NUM_ROWS, DIM, rank=32, d=3, rng=0)
print(f"table: {NUM_ROWS:,} x {DIM}")
print(f"TT shape: {emb.shape.describe()}")
print(f"dense parameters:     {NUM_ROWS * DIM:,}")
print(f"TT parameters:        {emb.num_parameters():,}")
print(f"compression ratio:    {emb.compression_ratio():.0f}x")

# ----------------------------------------------------------------------- #
# 2. Lookups, bags, gradients
# ----------------------------------------------------------------------- #
rows = emb.lookup(np.array([3, 141_592, 999_999]))
print(f"\nlookup -> shape {rows.shape}, first row head: {np.round(rows[0, :4], 4)}")

# Two bags: {10, 11, 12} summed, {999} alone — the EmbeddingBag interface.
indices = np.array([10, 11, 12, 999])
offsets = np.array([0, 3, 4])
pooled = emb.forward(indices, offsets)
print(f"pooled bags -> shape {pooled.shape}")

# Backward + sparse SGD step: only the touched core slices update.
emb.zero_grad()
emb.forward(indices, offsets)
emb.backward(np.ones_like(pooled))
opt = SparseSGD(emb.parameters(), lr=0.1)
opt.step()
print("ran backward + SparseSGD step over", sum(p.size for p in emb.parameters()),
      "core parameters")

# ----------------------------------------------------------------------- #
# 3. Compress an existing (pre-trained) dense table with TT-SVD
# ----------------------------------------------------------------------- #
shape = TTShape.with_uniform_rank(60, 8, (3, 4, 5), (2, 2, 2), rank=100)
dense = rng.normal(size=(60, 8))
small = TTEmbeddingBag(60, 8, shape=shape, rng=0)
small.load_cores(tt_svd(dense, shape))
err = np.abs(small.materialize() - dense).max()
print(f"\nTT-SVD round-trip of a full-rank 60x8 table: max error {err:.2e}")
