"""Simulated multi-worker training: the §5 parallelism story, executed.

Trains the same scaled DLRM three ways and compares learning curves,
per-device memory and wire traffic:

1. single worker (reference);
2. 4-worker **data parallelism** with TT-Rec (the paper's strategy —
   bit-identical to the reference by the synchronous-SGD equivalence);
3. 4-worker **hybrid model parallelism** with the dense baseline (sharded
   tables + per-iteration all-to-all — what the dense model is forced
   into once it outgrows a device).

Run:  python examples/distributed_simulation.py [--iters 120]
"""

import argparse

import numpy as np

from repro import DLRMConfig, TTConfig, build_dlrm, build_ttrec
from repro.data import KAGGLE, SyntheticCTRDataset
from repro.distributed import Communicator, DataParallelTrainer, ShardedEmbeddingDLRM
from repro.ops.loss import bce_with_logits
from repro.ops.optim import SparseSGD

WORLD = 4


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--iters", type=int, default=120)
    parser.add_argument("--batch", type=int, default=64)
    parser.add_argument("--scale", type=float, default=0.0005)
    args = parser.parse_args()

    spec = KAGGLE.scaled(args.scale)
    cfg = DLRMConfig(table_sizes=spec.table_sizes, emb_dim=8,
                     bottom_mlp=(32, 16), top_mlp=(32,))

    # --- 1. single-worker reference (TT-Rec) ---------------------------- #
    ds = SyntheticCTRDataset(spec, seed=0, noise=0.7)
    single = build_ttrec(cfg, num_tt_tables=5, tt=TTConfig(rank=8),
                         min_rows=60, rng=0)
    opt = SparseSGD(single.parameters(), lr=0.1)
    single_losses = []
    for batch in ds.batches(args.batch, args.iters):
        opt.zero_grad()
        logits = single.forward(batch.dense, batch.sparse)
        loss, grad = bce_with_logits(logits, batch.labels)
        single.backward(grad)
        opt.step()
        single_losses.append(loss)
    print(f"single worker (TT-Rec):      final loss "
          f"{np.mean(single_losses[-20:]):.4f}")

    # --- 2. data-parallel TT-Rec ----------------------------------------- #
    ds = SyntheticCTRDataset(spec, seed=0, noise=0.7)  # same stream
    replicas = [build_ttrec(cfg, num_tt_tables=5, tt=TTConfig(rank=8),
                            min_rows=60, rng=0) for _ in range(WORLD)]
    dp = DataParallelTrainer(replicas, lr=0.1)
    dp_losses = [dp.train_step(b) for b in ds.batches(args.batch, args.iters)]
    drift = abs(np.mean(dp_losses[-20:]) - np.mean(single_losses[-20:]))
    print(f"{WORLD}-worker data parallel:     final loss "
          f"{np.mean(dp_losses[-20:]):.4f} "
          f"(matches single worker to {drift:.2e} — synchronous SGD "
          f"equivalence)")
    print(f"  allreduce traffic: "
          f"{dp.comm.bytes_allreduce / args.iters / 1e6:.2f} MB/iter, "
          f"all-to-all: {dp.comm.bytes_all_to_all} B")

    # --- 3. hybrid model-parallel dense ---------------------------------- #
    ds = SyntheticCTRDataset(spec, seed=0, noise=0.7)
    comm = Communicator(WORLD)
    sharded = ShardedEmbeddingDLRM.from_dlrm(build_dlrm(cfg, rng=0), WORLD,
                                             comm=comm, lr=0.1)
    mp_losses = []
    for batch in ds.batches(args.batch, args.iters):
        sharded.zero_grad()
        mp_losses.append(sharded.train_step(batch))
    loads = sharded.per_worker_embedding_bytes()
    print(f"{WORLD}-worker model parallel:    final loss "
          f"{np.mean(mp_losses[-20:]):.4f} (dense baseline)")
    print(f"  per-worker embedding shards: "
          f"{[f'{b / 1e3:.0f} KB' for b in loads]}")
    print(f"  all-to-all traffic: "
          f"{comm.bytes_all_to_all / args.iters / 1e6:.2f} MB/iter "
          f"(the overhead TT-Rec's data parallelism avoids)")


if __name__ == "__main__":
    main()
