"""Explore the TT compression design space for your own table sizes.

Given a table geometry (rows x dim), prints the TT-core shapes, parameter
counts, compression ratios and reconstruction-capacity proxies across
ranks and core counts — the same arithmetic behind the paper's Table 2 —
plus the whole-model view for the real Criteo Kaggle/Terabyte specs.

Run:  python examples/compression_explorer.py [--rows 10131227] [--dim 16]
"""

import argparse

from repro import TTShape
from repro.analysis.memory import model_size_summary, table2_rows
from repro.bench import format_table
from repro.data import KAGGLE, TERABYTE


def explore_table(rows: int, dim: int):
    print(f"TT design space for a {rows:,} x {dim} table\n")
    grid = []
    for d in (2, 3, 4):
        for rank in (8, 16, 32, 64):
            shape = TTShape.suggested(rows, dim, d=d, rank=rank)
            grid.append([
                d, rank,
                " x ".join(str(shape.paper_core_shape(k)) for k in range(shape.d)),
                shape.num_params(),
                f"{shape.compression_ratio():.0f}x",
            ])
    print(format_table(["d", "rank", "cores (R,m,n,R)", "params", "compression"], grid))
    print("\nRules of thumb: d=3 balances compression and kernel depth; "
          "rank trades accuracy for memory; padding rows is free.")


def criteo_summary():
    print("\nPaper Table 2 (Kaggle's 7 largest tables):\n")
    rows = [[r.num_rows, r.rank, r.tt_params, f"{r.memory_reduction:.0f}x"]
            for r in table2_rows(KAGGLE)]
    print(format_table(["# rows", "rank", "TT params", "reduction"], rows))
    print("\nWhole-model compression (rank 32):\n")
    out = []
    for spec in (KAGGLE, TERABYTE):
        for n in (3, 5, 7):
            s = model_size_summary(spec, num_tt_tables=n, rank=32)
            out.append([spec.name, n, f"{s.baseline_gb:.2f} GB",
                        f"{s.compressed_mb:.1f} MB", f"{s.reduction:.1f}x"])
    print(format_table(["dataset", "tables", "baseline", "compressed", "reduction"], out))


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rows", type=int, default=10_131_227)
    parser.add_argument("--dim", type=int, default=16)
    parser.add_argument("--skip-criteo", action="store_true")
    args = parser.parse_args()
    explore_table(args.rows, args.dim)
    if not args.skip_criteo:
        criteo_summary()


if __name__ == "__main__":
    main()
