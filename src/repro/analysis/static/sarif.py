"""SARIF 2.1.0 output for ``repro lint`` (``--format sarif``).

SARIF (Static Analysis Results Interchange Format) is the industry
exchange format code-scanning UIs ingest — emitting it lets CI upload
lint findings to the code-scanning pane instead of burying them in job
logs. Only the small stable core of the spec is produced: one run, the
tool's rule metadata, one result per finding with a physical location,
and parse errors as tool-execution notifications.

There is no third-party schema validator in the environment, so
:func:`validate_sarif` hand-checks the structural subset this module
emits (and that the upload endpoints actually require); the test suite
runs every emitted document through it.
"""

from __future__ import annotations

import json

from repro.analysis.static.contracts import all_passes
from repro.analysis.static.core import all_rules

__all__ = ["SARIF_VERSION", "format_sarif", "validate_sarif"]

SARIF_VERSION = "2.1.0"
_SCHEMA_URI = "https://json.schemastore.org/sarif-2.1.0.json"
_LEVELS = ("none", "note", "warning", "error")


def _rule_metadata() -> list[dict]:
    entries: dict[str, type] = {}
    entries.update(all_rules())
    entries.update(all_passes())
    out = []
    for rid, cls in sorted(entries.items()):
        doc = (cls.__doc__ or "").strip()
        full = doc.split("\n\n")[0].replace("\n", " ").strip() or cls.summary
        out.append({
            "id": rid,
            "name": rid,
            "shortDescription": {"text": cls.summary or rid},
            "fullDescription": {"text": full},
            "defaultConfiguration": {"level": "error"},
        })
    return out


def format_sarif(report, *, tool_version: str = "1.0") -> str:
    """Render a :class:`~repro.analysis.static.runner.LintReport`."""
    results = []
    for f in report.findings:
        results.append({
            "ruleId": f.rule,
            "level": "error" if f.severity == "error" else "warning",
            "message": {"text": f.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {"uri": f.path},
                    "region": {
                        "startLine": max(f.line, 1),
                        "startColumn": f.col + 1,
                    },
                },
            }],
        })
    notifications = [
        {
            "level": "error",
            "message": {"text": f"parse error: {err}"},
            "locations": [{
                "physicalLocation": {"artifactLocation": {"uri": path}},
            }],
        }
        for path, err in report.parse_errors
    ]
    doc = {
        "$schema": _SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": "repro-lint",
                    "version": tool_version,
                    "rules": _rule_metadata(),
                },
            },
            "invocations": [{
                "executionSuccessful": report.ok,
                "toolExecutionNotifications": notifications,
            }],
            "results": results,
        }],
    }
    return json.dumps(doc, indent=2)


def validate_sarif(doc: dict) -> None:
    """Raise ``ValueError`` unless ``doc`` is structurally valid SARIF.

    Checks the invariants the 2.1.0 spec makes mandatory for the subset
    we emit: version, runs, driver name, rule metadata ids, and for each
    result a known ``ruleId``, a ``message.text`` and a physical
    location with a 1-based ``startLine``.
    """
    if doc.get("version") != SARIF_VERSION:
        raise ValueError(
            f"expected SARIF version {SARIF_VERSION}, "
            f"got {doc.get('version')!r}")
    runs = doc.get("runs")
    if not isinstance(runs, list) or not runs:
        raise ValueError("runs must be a non-empty list")
    for run in runs:
        driver = run.get("tool", {}).get("driver", {})
        if not isinstance(driver.get("name"), str) or not driver["name"]:
            raise ValueError("tool.driver.name must be a non-empty string")
        rule_ids = set()
        for rule in driver.get("rules", []):
            rid = rule.get("id")
            if not isinstance(rid, str) or not rid:
                raise ValueError(f"rule without a string id: {rule}")
            if rid in rule_ids:
                raise ValueError(f"duplicate rule id {rid}")
            rule_ids.add(rid)
            if "text" not in rule.get("shortDescription", {}):
                raise ValueError(f"rule {rid} missing shortDescription.text")
        results = run.get("results")
        if not isinstance(results, list):
            raise ValueError("run.results must be a list")
        for result in results:
            rid = result.get("ruleId")
            if rid not in rule_ids:
                raise ValueError(f"result references unknown rule {rid!r}")
            if result.get("level") not in _LEVELS:
                raise ValueError(f"result has invalid level: {result}")
            if not isinstance(
                    result.get("message", {}).get("text"), str):
                raise ValueError(f"result missing message.text: {rid}")
            locations = result.get("locations")
            if not isinstance(locations, list) or not locations:
                raise ValueError(f"result missing locations: {rid}")
            for loc in locations:
                phys = loc.get("physicalLocation", {})
                uri = phys.get("artifactLocation", {}).get("uri")
                if not isinstance(uri, str) or not uri:
                    raise ValueError(f"location missing artifact uri: {rid}")
                start = phys.get("region", {}).get("startLine")
                if not isinstance(start, int) or start < 1:
                    raise ValueError(
                        f"location has invalid startLine: {rid}")
