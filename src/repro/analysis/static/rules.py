"""The project-specific lint rules (docs/STATIC_ANALYSIS.md).

Each rule is a small :class:`~repro.analysis.static.core.Rule` subclass;
scoping (which files a rule applies to) comes from the ``[tool.repro.lint]``
config passed in as ``self.config``:

- ``hot_path``      — dtype rules (DT001-DT003) apply here only
- ``rng_allowed``   — files where global-state ``np.random`` is permitted
- ``clock_exempt``  — files where wall-clock reads are permitted
- ``mutation_scope``— files where argument-mutation (MUT001) is checked

Path patterns match as whole ``/``-separated segments anywhere in the
file's POSIX path, so ``repro/tt`` matches both ``src/repro/tt/kernels.py``
and an installed ``site-packages/repro/tt/kernels.py``.
"""

from __future__ import annotations

import ast

from repro.analysis.static.core import FileContext, Finding, Rule, register

__all__ = ["path_matches"]


def path_matches(path: str, patterns: list[str]) -> bool:
    """True if any pattern occurs as a segment-aligned substring of path."""
    haystack = "/" + path.replace("\\", "/").strip("/") + "/"
    for pattern in patterns:
        needle = "/" + pattern.replace("\\", "/").strip("/") + "/"
        if needle in haystack:
            return True
    return False


# --------------------------------------------------------------------- #
# RNG discipline
# --------------------------------------------------------------------- #

# Constructors that *build* Generator plumbing rather than touching numpy's
# hidden global stream — these are what the seeding helpers are made of.
_RNG_CONSTRUCTORS = {
    "default_rng", "Generator", "SeedSequence", "BitGenerator",
    "PCG64", "PCG64DXSM", "Philox", "MT19937", "SFC64",
}


@register
class GlobalRandomRule(Rule):
    """RNG001: no global-state ``np.random.<fn>()`` outside the seeding module.

    Rationale: calls through ``numpy.random``'s hidden module-level
    stream make results depend on every other draw that happened before
    them, so reordering any code path silently changes data, init and
    fault schedules. All randomness must flow from an explicit seeded
    ``Generator`` threaded through ``repro.utils.seeding``.

    Bad::

        noise = np.random.standard_normal(shape)

    Good::

        rng = as_rng(seed)
        noise = rng.standard_normal(shape)
    """

    id = "RNG001"
    summary = "global-state np.random call; thread a Generator via repro.utils.seeding"

    def check(self, ctx: FileContext) -> list[Finding]:
        if path_matches(ctx.path, self.config.get("rng_allowed", [])):
            return []
        out = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = ctx.resolve(node.func)
            if not name or not name.startswith("numpy.random."):
                continue
            leaf = name.rsplit(".", 1)[1]
            if leaf in _RNG_CONSTRUCTORS:
                continue
            out.append(self.finding(
                ctx, node,
                f"call to numpy.random.{leaf} uses numpy's hidden global RNG "
                "state; accept a seed and use repro.utils.seeding.as_rng",
            ))
        return out


# --------------------------------------------------------------------- #
# Dtype discipline (hot-path modules only)
# --------------------------------------------------------------------- #


@register
class Float64LiteralRule(Rule):
    """DT001: no hard-coded ``np.float64`` in hot-path modules.

    Rationale: TT-Rec's entire point is memory compression; a literal
    ``np.float64`` in the TT/ops/cache hot path doubles a buffer and
    upcasts everything it touches, independent of the model's configured
    dtype. Derive dtypes from operands or ``repro.utils.dtypes``.

    Bad::

        acc = np.zeros(n, dtype=np.float64)

    Good::

        acc = np.zeros(n, dtype=result_dtype(core_a, core_b))
    """

    id = "DT001"
    summary = "hard-coded np.float64 in a hot-path module; use repro.utils.dtypes"

    def check(self, ctx: FileContext) -> list[Finding]:
        if not path_matches(ctx.path, self.config.get("hot_path", [])):
            return []
        out = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Attribute) and ctx.resolve(node) == "numpy.float64":
                out.append(self.finding(
                    ctx, node,
                    "hard-coded np.float64 pins this buffer's dtype regardless "
                    "of the model's; derive it from an operand or use "
                    "repro.utils.dtypes (default_dtype/COUNT_DTYPE/result_dtype)",
                ))
        return out


_ALLOC_FNS = {"numpy.empty", "numpy.zeros", "numpy.ones"}


@register
class UntypedAllocRule(Rule):
    """DT002: ``np.empty/zeros/ones`` without an explicit dtype in hot paths.

    Rationale: dtype-less numpy allocators default to float64, so one
    forgotten ``dtype=`` in the hot path allocates a double-width buffer
    and upcasts every float32 operand combined with it — the exact
    memory blow-up the compression exists to avoid, and it shows up only
    as a quiet perf/memory regression.

    Bad::

        out = np.empty((batch, dim))

    Good::

        out = np.empty((batch, dim), dtype=cores[0].dtype)
    """

    id = "DT002"
    summary = "dtype-less np.empty/zeros/ones allocation in a hot-path module"

    def check(self, ctx: FileContext) -> list[Finding]:
        if not path_matches(ctx.path, self.config.get("hot_path", [])):
            return []
        out = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = ctx.resolve(node.func)
            if name not in _ALLOC_FNS:
                continue
            has_dtype = len(node.args) >= 2 or any(
                kw.arg == "dtype" for kw in node.keywords
            )
            if not has_dtype:
                leaf = name.rsplit(".", 1)[1]
                out.append(self.finding(
                    ctx, node,
                    f"np.{leaf} without dtype= defaults to float64 and will "
                    "silently upcast float32 operands; pass an explicit dtype",
                ))
        return out


_LOOPS = (ast.For, ast.While, ast.ListComp, ast.SetComp, ast.DictComp,
          ast.GeneratorExp)


@register
class AstypeInLoopRule(Rule):
    """DT003: ``.astype`` copies inside loops in hot paths.

    Rationale: ``.astype`` always allocates a fresh array; inside a loop
    that is one full-buffer copy per iteration, turning an O(1)
    conversion into O(iterations) allocations on the code the benchmarks
    gate. Convert once before the loop.

    Bad::

        for core in cores:
            acc = acc @ core.astype(np.float32)

    Good::

        cores32 = [np.asarray(c, dtype=np.float32) for c in cores]
        for core in cores32:
            acc = acc @ core
    """

    id = "DT003"
    summary = "astype copy inside a loop in a hot-path module"

    def check(self, ctx: FileContext) -> list[Finding]:
        if not path_matches(ctx.path, self.config.get("hot_path", [])):
            return []
        out = []
        for loop in ast.walk(ctx.tree):
            if not isinstance(loop, _LOOPS):
                continue
            for node in ast.walk(loop):
                if node is loop:
                    continue
                if isinstance(node, _LOOPS):
                    continue  # the inner loop is walked in its own right
                if (isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Attribute)
                        and node.func.attr == "astype"):
                    out.append(self.finding(
                        ctx, node,
                        ".astype inside a loop allocates a fresh copy every "
                        "iteration; convert once before the loop "
                        "(np.asarray(x, dtype=...))",
                    ))
        # Nested loops would double-report: ast.walk(outer) sees the inner
        # loop's body too. Dedupe on location.
        seen: set[tuple[int, int]] = set()
        unique = []
        for f in out:
            if (f.line, f.col) not in seen:
                seen.add((f.line, f.col))
                unique.append(f)
        return unique


# --------------------------------------------------------------------- #
# Determinism
# --------------------------------------------------------------------- #

_WALL_CLOCK = {
    "time.time": "time.time",
    "time.time_ns": "time.time_ns",
    "datetime.datetime.now": "datetime.now",
    "datetime.datetime.utcnow": "datetime.utcnow",
    "datetime.datetime.today": "datetime.today",
    "datetime.date.today": "date.today",
}


@register
class WallClockRule(Rule):
    """DET001: no wall-clock reads in compute paths (use injectable clocks).

    Rationale: any decision taken off ``time.time()`` or
    ``datetime.now()`` differs between two runs of the same seed, so
    replays and chaos drills stop being byte-identical. Durations come
    from ``perf_counter``; schedule decisions come from an injected
    (Manual) clock.

    Bad::

        deadline = time.time() * 1000 + budget_ms

    Good::

        deadline = clock.now_ms() + budget_ms
    """

    id = "DET001"
    summary = "wall-clock read in a compute path; inject a clock instead"

    def check(self, ctx: FileContext) -> list[Finding]:
        if path_matches(ctx.path, self.config.get("clock_exempt", [])):
            return []
        out = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = ctx.resolve(node.func)
            if name in _WALL_CLOCK:
                out.append(self.finding(
                    ctx, node,
                    f"{_WALL_CLOCK[name]}() makes replays diverge; use "
                    "time.perf_counter for durations or an injectable clock "
                    "(serving.ManualClock) for schedule decisions",
                ))
        return out


_ENTROPY_CALLS = {
    "os.urandom": "os.urandom",
    "uuid.uuid1": "uuid.uuid1",
    "uuid.uuid4": "uuid.uuid4",
    "secrets.token_bytes": "secrets.token_bytes",
    "secrets.token_hex": "secrets.token_hex",
    "secrets.token_urlsafe": "secrets.token_urlsafe",
    "secrets.randbits": "secrets.randbits",
    "secrets.randbelow": "secrets.randbelow",
    "secrets.choice": "secrets.choice",
}


@register
class ProcessEntropyRule(Rule):
    """DET003: no ambient entropy / unsynchronized RNG in process scope.

    The sharded tier simulates multiple processes against one seeded
    fault stream; any draw from OS entropy (``os.urandom``, ``uuid4``,
    ``secrets``), the process-global stdlib ``random`` stream, or an
    unseeded ``default_rng()`` gives each "process" state the replay
    cannot reconstruct, so chaos schedules stop being reproducible.

    Bad::

        request_id = uuid.uuid4().hex

    Good::

        request_id = f"req-{rng.integers(2**63)}"   # rng from shared seed
    """

    id = "DET003"
    summary = "ambient entropy / unseeded RNG in process-replicated scope"

    def check(self, ctx: FileContext) -> list[Finding]:
        if not path_matches(ctx.path, self.config.get("process_scope", [])):
            return []
        out = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = ctx.resolve(node.func)
            if not name:
                continue
            if name in _ENTROPY_CALLS:
                out.append(self.finding(
                    ctx, node,
                    f"{_ENTROPY_CALLS[name]}() draws ambient OS entropy; a "
                    "simulated process must derive randomness from the "
                    "shared seeded stream (repro.utils.seeding.as_rng or "
                    "the run's FaultInjector) or replays diverge",
                ))
            elif name == "numpy.random.default_rng" \
                    and not node.args and not node.keywords:
                out.append(self.finding(
                    ctx, node,
                    "default_rng() without a seed gives every process its "
                    "own OS-entropy stream; pass a seed or a spawned "
                    "SeedSequence so cross-process draws are synchronized",
                ))
            elif name in ("random.Random", "random.SystemRandom"):
                if name == "random.SystemRandom" or not node.args:
                    out.append(self.finding(
                        ctx, node,
                        f"{name}() is OS-entropy-backed or unseeded; build "
                        "process RNG state from a shared seed instead",
                    ))
            elif name.startswith("random.") and name.count(".") == 1:
                leaf = name.rsplit(".", 1)[1]
                out.append(self.finding(
                    ctx, node,
                    f"random.{leaf}() uses the process-global stdlib RNG, "
                    "unsynchronized across simulated processes; thread a "
                    "seeded numpy Generator instead",
                ))
        return out


@register
class SetIterationRule(Rule):
    """DET002: no iteration over sets (nondeterministic order).

    Rationale: set iteration order depends on hash seeding and insertion
    history, so any float reduction, schedule or output built by walking
    a set can differ between identical runs. Sort the set (or keep a
    list) wherever the order can reach computation or artifacts.

    Bad::

        for shard in {w.shard for w in workers}:
            rebalance(shard)

    Good::

        for shard in sorted({w.shard for w in workers}):
            rebalance(shard)
    """

    id = "DET002"
    summary = "iteration over a set; order is nondeterministic across runs"

    def _is_set_expr(self, node: ast.AST, ctx: FileContext) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            return ctx.resolve(node.func) in ("set", "frozenset")
        return False

    def check(self, ctx: FileContext) -> list[Finding]:
        out = []
        for node in ast.walk(ctx.tree):
            iters: list[ast.AST] = []
            if isinstance(node, ast.For):
                iters.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                iters.extend(gen.iter for gen in node.generators)
            for it in iters:
                if self._is_set_expr(it, ctx):
                    out.append(self.finding(
                        ctx, it,
                        "iterating a set feeds hash-order into downstream "
                        "computation; sort it (sorted(...)) or keep a list",
                    ))
        return out


# --------------------------------------------------------------------- #
# Exception hygiene
# --------------------------------------------------------------------- #


@register
class BareExceptRule(Rule):
    """EXC001: no bare ``except:``.

    Rationale: a bare ``except:`` catches ``KeyboardInterrupt`` and
    ``SystemExit`` too, so a hung chaos run cannot even be Ctrl-C'd out
    of, and the handler hides what it actually intended to catch.

    Bad::

        try:
            step()
        except:
            pass

    Good::

        try:
            step()
        except ShardTimeout:
            retry()
    """

    id = "EXC001"
    summary = "bare except swallows KeyboardInterrupt/SystemExit"

    def check(self, ctx: FileContext) -> list[Finding]:
        out = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                out.append(self.finding(
                    ctx, node,
                    "bare except catches KeyboardInterrupt and SystemExit; "
                    "name the exception type",
                ))
        return out


# A handler that neither re-raises nor leaves an observable trace hides
# faults from the PR-1/PR-2 reliability telemetry. "Observable" is a
# heuristic over called names: counters (.inc), events (emit_*), loggers,
# recorders.
_TELEMETRY_HINTS = ("inc", "emit", "record", "observe", "count", "log",
                    "fail", "exception", "warn", "trip", "add_event")


def _handler_observes(handler: ast.ExceptHandler) -> bool:
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            return True
        if isinstance(node, ast.Call):
            func = node.func
            leaf = None
            if isinstance(func, ast.Attribute):
                leaf = func.attr
            elif isinstance(func, ast.Name):
                leaf = func.id
            if leaf and any(h in leaf.lower() for h in _TELEMETRY_HINTS):
                return True
        if isinstance(node, ast.Return) and node.value is not None:
            # Returning a sentinel/fallback is a deliberate, visible choice.
            return True
    return False


@register
class SilentExceptionRule(Rule):
    """EXC002: ``except Exception`` must re-raise or leave a telemetry trace.

    Rationale: the reliability tier reconciles every injected fault
    against a defensive counter; an ``except Exception`` that swallows
    the fault without incrementing a counter, emitting an event or
    re-raising makes the ledger lie — faults happen and nothing shows.

    Bad::

        except Exception:
            result = None

    Good::

        except Exception:
            self._failures.inc()
            result = None
    """

    id = "EXC002"
    summary = "except Exception that neither re-raises nor records the fault"

    def check(self, ctx: FileContext) -> list[Finding]:
        out = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler) or node.type is None:
                continue
            types = (node.type.elts if isinstance(node.type, ast.Tuple)
                     else [node.type])
            names = {ctx.resolve(t) for t in types}
            if not ({"Exception", "BaseException"} & names):
                continue
            if not _handler_observes(node):
                out.append(self.finding(
                    ctx, node,
                    "except Exception that neither re-raises nor increments a "
                    "counter / emits an event hides the fault from the "
                    "reliability telemetry; record it or let it propagate",
                ))
        return out


# --------------------------------------------------------------------- #
# Mutation safety
# --------------------------------------------------------------------- #

_VIEW_METHODS = {"reshape", "view", "ravel", "transpose", "swapaxes"}
_VIEW_FUNCS = {"numpy.asarray", "numpy.ascontiguousarray", "numpy.atleast_1d",
               "numpy.atleast_2d"}


@register
class ArgumentMutationRule(Rule):
    """MUT001: no in-place writes to function-argument arrays in kernel scope.

    Rationale: kernels receiving caller-owned arrays must not write into
    them — the caller may be holding a view of model state, and an
    aliased in-place update corrupts it invisibly. Tracks simple aliases
    (``flat = buf.reshape(...)``) so a view does not launder the
    mutation. Functions whose name ends in ``_`` follow the torch
    convention of documented in-place semantics and are exempt, as are
    ``self``/``cls``.

    Bad::

        def normalize(rows):
            rows /= np.linalg.norm(rows, axis=1, keepdims=True)

    Good::

        def normalize(rows):
            return rows / np.linalg.norm(rows, axis=1, keepdims=True)
    """

    id = "MUT001"
    summary = "in-place write to a function-argument array in kernel scope"

    def check(self, ctx: FileContext) -> list[Finding]:
        if not path_matches(ctx.path, self.config.get("mutation_scope", [])):
            return []
        out = []
        for fn in ast.walk(ctx.tree):
            if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if fn.name.endswith("_"):
                continue
            out.extend(self._check_function(ctx, fn))
        return out

    def _check_function(self, ctx: FileContext,
                        fn: ast.FunctionDef) -> list[Finding]:
        args = fn.args
        tracked = {
            a.arg
            for a in (args.posonlyargs + args.args + args.kwonlyargs)
            if a.arg not in ("self", "cls")
        }
        if args.vararg:
            tracked.add(args.vararg.arg)
        if not tracked:
            return []
        out = []
        for node in ast.walk(fn):
            if isinstance(node, ast.Assign):
                self._maybe_alias(ctx, node, tracked)
            targets: list[ast.AST] = []
            if isinstance(node, ast.AugAssign):
                targets.append(node.target)
            elif isinstance(node, ast.Assign):
                targets.extend(t for t in node.targets
                               if isinstance(t, ast.Subscript))
            for target in targets:
                base = target.value if isinstance(target, ast.Subscript) else target
                if isinstance(base, ast.Name) and base.id in tracked:
                    op = "augmented assignment" if isinstance(node, ast.AugAssign) \
                        else "subscript assignment"
                    out.append(self.finding(
                        ctx, node,
                        f"{op} writes into argument '{base.id}' in place; "
                        "return a new array, rename the function with a "
                        "trailing underscore, or suppress with "
                        "# repro: noqa[MUT001] if in-place is the contract",
                    ))
        return out

    def _maybe_alias(self, ctx: FileContext, node: ast.Assign,
                     tracked: set[str]) -> None:
        if len(node.targets) != 1 or not isinstance(node.targets[0], ast.Name):
            return
        target = node.targets[0].id
        value = node.value
        root: ast.AST | None = None
        if isinstance(value, ast.Name):
            root = value
        elif (isinstance(value, ast.Call) and isinstance(value.func, ast.Attribute)
              and value.func.attr in _VIEW_METHODS):
            root = value.func.value
        elif (isinstance(value, ast.Call) and value.args
              and ctx.resolve(value.func) in _VIEW_FUNCS):
            root = value.args[0]
        if isinstance(root, ast.Name) and root.id in tracked:
            tracked.add(target)
        elif target in tracked:
            # Rebound to something unrelated — no longer an alias.
            tracked.discard(target)


# --------------------------------------------------------------------- #
# Observability propagation
# --------------------------------------------------------------------- #

# Raw telemetry entry points that bypass request-trace propagation.
_TRACE_BYPASS = {
    "repro.telemetry.trace",
    "repro.telemetry.tracer.trace",
    "repro.telemetry.emit_event",
    "repro.telemetry.events.emit_event",
}


@register
class TraceContextRule(Rule):
    """OBS001: spans/events in the serving tier must carry trace context.

    The request tracer propagates per-request contexts through the
    single-threaded serving path via the ``traced_span`` /
    ``traced_event`` helpers; a raw ``trace()`` / ``emit_event()`` (or a
    direct ``Tracer.span``) inside ``trace_scope`` records into the
    aggregate tree only, so sampled request traces silently lose that
    hop and events cannot be joined to the requests in flight.

    Bad::

        with trace("backend.lookup"):
            rows = backend.lookup(indices)

    Good::

        with traced_span("backend.lookup"):
            rows = backend.lookup(indices)
    """

    id = "OBS001"
    summary = "raw trace()/emit_event() bypasses request-trace propagation"

    def check(self, ctx: FileContext) -> list[Finding]:
        if not path_matches(ctx.path, self.config.get("trace_scope", [])):
            return []
        out = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = ctx.resolve(node.func)
            if name in _TRACE_BYPASS:
                leaf = name.rsplit(".", 1)[1]
                helper = ("traced_span" if leaf == "trace"
                          else "traced_event")
                out.append(self.finding(
                    ctx, node,
                    f"{leaf}() here records into the aggregate tree only; "
                    f"use repro.telemetry.{helper}() so the hop also "
                    "lands in every sampled request trace",
                ))
            elif (isinstance(node.func, ast.Attribute)
                  and node.func.attr == "span"
                  and name is not None and "tracer" in name.lower()):
                out.append(self.finding(
                    ctx, node,
                    "direct Tracer.span() bypasses request-trace "
                    "propagation; use repro.telemetry.traced_span()",
                ))
        return out


# --------------------------------------------------------------------- #
# Suppression hygiene
# --------------------------------------------------------------------- #


@register
class UnknownSuppressionRule(Rule):
    """NOQA001: targeted ``noqa[...]`` comments must name real rule ids.

    Rationale: a suppression naming a rule that does not exist (typo,
    renamed rule, copy-paste from another linter) is dead weight at best
    — and at worst it convinces a reader the line is exempt from a check
    it is not. Unknown ids are an error instead of being silently
    ignored. Comma lists are fine: every id in the list is validated.

    The leading ``#`` is omitted from the examples below so that this
    docstring is not itself scanned as a suppression comment.

    Bad::

        x = np.zeros(n)  ... repro: noqa[DT0002]   (typo'd id: dead)

    Good::

        x = np.zeros(n)  ... repro: noqa[DT002]

    The findings themselves are emitted by the runner, which is the only
    layer that knows the full registry (per-file rules plus XMOD
    contract passes).
    """

    id = "NOQA001"
    summary = "unknown rule id named in a targeted noqa suppression"

    def check(self, ctx: FileContext) -> list[Finding]:
        return []
