"""Framework for whole-program contract passes (the XMOD rules).

Per-file rules (:mod:`repro.analysis.static.rules`) check one AST at a
time; contract passes consume the :class:`~repro.analysis.static.graph.
ProjectGraph` and reconcile the stringly-typed contracts that span
modules: fault-site registries vs. fire sites, metric writers vs.
readers, JSONL schema writers vs. validators, state-machine producers
vs. dispatchers, and dtype provenance across the call graph.

A pass is a :class:`ContractPass` subclass registered with
:func:`register_pass`; it shares the per-file rules' configuration dict
and the runner applies ``# repro: noqa[...]`` suppression to its
findings exactly like per-file findings (the suppressing comment lives
on the line the finding anchors to).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.static.core import Finding
from repro.analysis.static.graph import ProjectGraph

__all__ = [
    "ContractPass",
    "register_pass",
    "all_passes",
]


@dataclass
class ContractPass:
    """Base class for cross-module passes.

    Subclasses set :attr:`id`/:attr:`summary` and implement
    :meth:`check_project`, returning findings anchored to the file and
    line where the drifted contract element lives. Suppression and
    lint-path scoping are applied centrally by the runner.
    """

    id = "XMOD000"
    summary = ""

    config: dict = field(default_factory=dict)

    def check_project(self, graph: ProjectGraph) -> list[Finding]:  # pragma: no cover
        raise NotImplementedError

    def finding(self, path: str, node, message: str,
                severity: str = "error") -> Finding:
        return Finding(
            rule=self.id,
            path=path,
            line=getattr(node, "lineno", 0) or 0,
            col=getattr(node, "col_offset", 0) or 0,
            message=message,
            severity=severity,
        )


_PASS_REGISTRY: dict[str, type[ContractPass]] = {}


def register_pass(cls: type[ContractPass]) -> type[ContractPass]:
    """Class decorator adding a contract pass to the global registry."""
    if cls.id in _PASS_REGISTRY:
        raise ValueError(f"duplicate pass id {cls.id}")
    _PASS_REGISTRY[cls.id] = cls
    return cls


def all_passes() -> dict[str, type[ContractPass]]:
    """Registered passes by id (import side effect of the passes pkg)."""
    from repro.analysis.static import passes as _passes  # noqa: F401

    return dict(_PASS_REGISTRY)
