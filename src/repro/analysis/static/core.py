"""Shared framework for the ``repro lint`` AST rules.

Every rule is a :class:`Rule` subclass registered with :func:`register`;
the runner parses each file once into a :class:`FileContext` (source, AST,
import bindings, ``noqa`` map) and hands it to every selected rule. Rules
emit :class:`Finding` records; suppression — a ``repro: noqa`` comment,
optionally targeted as ``repro: noqa[RULE1,RULE2]`` (hash mark omitted
here so this docstring is not itself scanned as one) — is applied
centrally so individual rules never need to think about it.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field

__all__ = [
    "Finding",
    "FileContext",
    "Rule",
    "register",
    "all_rules",
    "dotted_name",
]

_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?:\s*\[(?P<rules>[A-Za-z0-9_,\s]+)\])?", re.IGNORECASE
)


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location.

    ``severity`` is ``"error"`` (fails the run) or ``"warning"``
    (reported, but does not affect the exit code) — the cross-module
    passes use warnings for one-sided contract drift such as a metric
    that is written but never read.
    """

    rule: str
    path: str
    line: int
    col: int
    message: str
    severity: str = "error"

    def key(self) -> str:
        """Stable identity used for baselines and deduplication."""
        return f"{self.path}:{self.line}:{self.rule}"

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "severity": self.severity,
        }


class FileContext:
    """Parsed view of one source file shared by every rule.

    Attributes
    ----------
    path : str
        POSIX-style path as reported in findings.
    source : str
        Raw file text.
    tree : ast.Module
        Parsed AST (``None`` never — a syntax error aborts construction).
    bindings : dict[str, str]
        Local name -> dotted origin for module-level and function-level
        imports: ``import numpy as np`` yields ``{"np": "numpy"}``;
        ``from datetime import datetime as dt`` yields
        ``{"dt": "datetime.datetime"}``.
    noqa : dict[int, set[str] | None]
        Line -> suppressed rule ids; ``None`` means "all rules".
    noqa_ids : dict[int, list[str]]
        Line -> the rule ids exactly as written in targeted ``noqa[...]``
        comments (upper-cased), so the runner can reject unknown ids
        instead of silently ignoring a typo'd suppression.
    """

    def __init__(self, path: str, source: str):
        self.path = path
        self.source = source
        self.tree = ast.parse(source, filename=path)
        self.bindings = _collect_bindings(self.tree)
        self.noqa = _collect_noqa(source)
        self.noqa_ids = {
            line: sorted(ids) for line, ids in self.noqa.items()
            if ids is not None
        }

    def resolve(self, node: ast.AST) -> str | None:
        """Full dotted name of a Name/Attribute chain, imports resolved.

        ``np.random.standard_normal`` resolves to
        ``numpy.random.standard_normal`` when ``np`` is bound to ``numpy``;
        chains rooted in anything other than a plain name (calls,
        subscripts) resolve to ``None``.
        """
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        root = self.bindings.get(node.id, node.id)
        parts.append(root)
        return ".".join(reversed(parts))

    def suppressed(self, rule: str, line: int) -> bool:
        if line not in self.noqa:
            return False
        rules = self.noqa[line]
        return rules is None or rule.upper() in rules


def dotted_name(node: ast.AST) -> str | None:
    """Literal dotted name of a Name/Attribute chain (no import resolution)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def _collect_bindings(tree: ast.Module) -> dict[str, str]:
    bindings: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                bindings[alias.asname or alias.name.split(".")[0]] = (
                    alias.name if alias.asname else alias.name.split(".")[0]
                )
                if alias.asname:
                    bindings[alias.asname] = alias.name
        elif isinstance(node, ast.ImportFrom):
            if node.level or node.module is None:
                continue  # relative imports never hit the banned namespaces
            for alias in node.names:
                if alias.name == "*":
                    continue
                bindings[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return bindings


def _collect_noqa(source: str) -> dict[int, set[str] | None]:
    noqa: dict[int, set[str] | None] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        m = _NOQA_RE.search(line)
        if not m:
            continue
        rules = m.group("rules")
        if rules is None:
            noqa[lineno] = None
        else:
            ids = {r.strip().upper() for r in rules.split(",") if r.strip()}
            noqa[lineno] = ids or None
    return noqa


@dataclass
class Rule:
    """Base class for lint rules.

    Subclasses set :attr:`id`/:attr:`summary` as class attributes and
    implement :meth:`check`, returning findings for one file. The runner
    filters suppressed lines afterwards, so ``check`` reports everything
    it sees.
    """

    id = "RULE000"
    summary = ""

    config: dict = field(default_factory=dict)

    def check(self, ctx: FileContext) -> list[Finding]:  # pragma: no cover
        raise NotImplementedError

    def finding(self, ctx: FileContext, node: ast.AST, message: str) -> Finding:
        return Finding(
            rule=self.id,
            path=ctx.path,
            line=getattr(node, "lineno", 0),
            col=getattr(node, "col_offset", 0),
            message=message,
        )


_REGISTRY: dict[str, type[Rule]] = {}


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if cls.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {cls.id}")
    _REGISTRY[cls.id] = cls
    return cls


def all_rules() -> dict[str, type[Rule]]:
    """Registered rules by id (import side effect of the rules module)."""
    from repro.analysis.static import rules as _rules  # noqa: F401

    return dict(_REGISTRY)
