"""The cross-module contract passes (XMOD001-XMOD005).

Importing this package registers every pass with
:func:`repro.analysis.static.contracts.all_passes`.
"""

from repro.analysis.static.passes import (  # noqa: F401
    dtype_flow,
    metrics,
    schemas,
    sites,
    states,
)
