"""XMOD002: metric-name drift between instrument writers and readers."""

from __future__ import annotations

import ast

from repro.analysis.static.contracts import ContractPass, register_pass
from repro.analysis.static.core import Finding
from repro.analysis.static.graph import (
    ModuleInfo,
    ProjectGraph,
    expand_comprehension_fstring,
    fstring_pattern,
    pattern_to_regex,
)

_INSTRUMENT_METHODS = {"counter", "gauge", "histogram"}
_WRITE_ATTRS = {"inc", "set", "observe"}
_READ_ATTRS = {"value", "count", "total", "mean", "min", "max",
               "quantile", "summary", "bucket_counts", "bounds"}


def _is_registry_receiver(node: ast.AST, ctx) -> bool:
    """Does this expression denote the shared metrics registry?"""
    if isinstance(node, ast.Call):
        dotted = ctx.resolve(node.func)
        return bool(dotted) and dotted.rsplit(".", 1)[-1] == "get_registry"
    dotted = ctx.resolve(node)
    if not dotted:
        return False
    if dotted.startswith("numpy"):
        return False
    leaf = dotted.rsplit(".", 1)[-1].lower()
    return leaf == "reg" or "registry" in leaf


class _Registration:
    """One ``reg.counter/gauge/histogram(name)`` site with usage roles."""

    def __init__(self, path: str, node: ast.AST, names: list[str],
                 pattern: str | None, kind: str):
        self.path = path
        self.node = node
        self.names = names          # exact names (possibly expanded)
        self.pattern = pattern      # wildcard pattern, or None
        self.kind = kind
        self.written = False
        self.read = False

    def match_keys(self) -> list[str]:
        return self.names or ([self.pattern] if self.pattern else [])


@register_pass
class MetricDriftPass(ContractPass):
    """XMOD002: counter/gauge/histogram names written vs. read must agree.

    Rationale: the registry is get-or-create, so a reader that asks for
    a typo'd name receives a fresh zero-valued instrument — benchmarks,
    SLO reconciliation and the ``profile`` CLI all silently report zero
    instead of failing. The pass classifies every registration site by
    how its instrument is used (``.inc``/``.set``/``.observe`` writes;
    ``.value``/``.quantile``/``.summary``/… reads, tracked through
    local/``self`` bindings and dict-comprehension registries, with
    f-string names expanded over literal iterables or reduced to
    wildcard patterns). A name that is read but matches no write is an
    **error**; a name that is written but neither read nor referenced
    anywhere else (docstring, reconciler table, snapshot lookup) is a
    **warning**; a ``registry.reset(prefix)`` whose prefix matches no
    written name is an **error**.

    Bad::

        reg.counter("tt.plan.flops_saved").inc(n)   # writer
        saved = reg.counter("tt.plan.flop_saved")   # reader: typo ->
        print(saved.value)                          # always 0

    Good::

        reg.counter("tt.plan.flops_saved").inc(n)
        saved = reg.counter("tt.plan.flops_saved")
        print(saved.value)
    """

    id = "XMOD002"
    summary = "metric-name drift between registry writers and readers"

    def check_project(self, graph: ProjectGraph) -> list[Finding]:
        regs: list[_Registration] = []
        resets: list[tuple[str, str, ast.AST]] = []
        for info in graph.iter_modules():
            regs.extend(self._module_registrations(info))
            resets.extend(self._module_resets(info))
        if not regs:
            return []
        reg_sites = {(r.path, r.node.lineno) for r in regs}
        for r in regs:
            if r.node.args:
                reg_sites.add((r.path, r.node.args[0].lineno))

        writes = [r for r in regs if r.written or not r.read]
        reads = [r for r in regs if r.read]

        out: list[Finding] = []
        for r in reads:
            for key in r.match_keys():
                if not self._matched(key, "*" in key, writes):
                    out.append(self.finding(
                        r.path, r.node,
                        f"metric '{key}' is read here but never written "
                        "anywhere in the analyzed tree: the registry will "
                        "hand back a fresh zero-valued instrument",
                    ))
        warned: set[str] = set()
        for r in sorted(writes, key=lambda r: (r.path, r.node.lineno)):
            if r.read:
                continue
            for key in r.match_keys():
                if key in warned:
                    continue
                if self._matched(key, "*" in key, reads):
                    continue
                if self._referenced_elsewhere(key, graph, reg_sites):
                    continue
                warned.add(key)
                out.append(self.finding(
                    r.path, r.node,
                    f"metric '{key}' is written but never read or "
                    "referenced anywhere else (no .value/.quantile "
                    "consumer, no read-role registration, no snapshot "
                    "lookup or docstring mention): dead telemetry or a "
                    "misspelled reader",
                    severity="warning",
                ))
        for path, prefix, node in resets:
            hit = any(
                key.startswith(prefix) or prefix.startswith(key.split("*")[0])
                for r in regs for key in r.match_keys()
            )
            if not hit:
                out.append(self.finding(
                    path, node,
                    f"registry.reset prefix '{prefix}' matches no registered "
                    "metric name: the reset is a no-op (typo'd prefix?)",
                ))
        return out

    @staticmethod
    def _referenced_elsewhere(key: str, graph: ProjectGraph,
                              reg_sites: set[tuple[str, int]]) -> bool:
        """Any string literal mentioning the name outside registrations.

        Docstrings documenting exported metrics, reconciler tables and
        snapshot-key lookups all count as evidence that the name is a
        deliberate contract rather than a typo.
        """
        fragments = sorted(
            (f.strip(".") for f in key.split("*")), key=len)
        needle = fragments[-1] if fragments else key
        for info in graph.iter_modules():
            for lit in info.strings:
                if (lit.path, lit.line) in reg_sites:
                    continue
                if needle and needle in lit.value:
                    return True
        return False

    @staticmethod
    def _matched(key: str, is_pattern: bool,
                 others: list[_Registration]) -> bool:
        if is_pattern:
            rx = pattern_to_regex(key)
            lit = key.split("*")[0]
            for o in others:
                for ok in o.match_keys():
                    if "*" in ok:
                        olit = ok.split("*")[0]
                        if olit.startswith(lit) or lit.startswith(olit):
                            return True
                    elif rx.match(ok):
                        return True
            return False
        for o in others:
            for ok in o.match_keys():
                if "*" in ok:
                    if pattern_to_regex(ok).match(key):
                        return True
                elif ok == key:
                    return True
        return False

    # ------------------------------------------------------------------ #
    # Per-module extraction
    # ------------------------------------------------------------------ #

    def _module_registrations(self, info: ModuleInfo) -> list[_Registration]:
        ctx = info.ctx
        parents: dict[int, ast.AST] = {}
        for parent in ast.walk(ctx.tree):
            for child in ast.iter_child_nodes(parent):
                parents[id(child)] = parent
        usage = self._binding_usage(ctx.tree)

        regs: list[_Registration] = []
        for node in ast.walk(ctx.tree):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in _INSTRUMENT_METHODS):
                continue
            if not node.args:
                continue
            if not _is_registry_receiver(node.func.value, ctx):
                continue
            names, pattern = self._metric_names(node, parents)
            if not names and pattern is None:
                continue
            reg = _Registration(info.path, node, names, pattern,
                                node.func.attr)
            self._classify_roles(reg, node, parents, usage)
            regs.append(reg)
        return regs

    def _module_resets(self, info: ModuleInfo):
        ctx = info.ctx
        for node in ast.walk(ctx.tree):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "reset"):
                continue
            if not _is_registry_receiver(node.func.value, ctx):
                continue
            arg = node.args[0] if node.args else next(
                (kw.value for kw in node.keywords if kw.arg == "prefix"), None)
            if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
                yield info.path, arg.value, node

    @staticmethod
    def _metric_names(node: ast.Call, parents: dict[int, ast.AST]):
        arg = node.args[0]
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            return [arg.value], None
        if isinstance(arg, ast.JoinedStr):
            comp = None
            cursor: ast.AST | None = node
            while cursor is not None:
                cursor = parents.get(id(cursor))
                if isinstance(cursor, ast.DictComp):
                    comp = cursor
                    break
                if isinstance(cursor, ast.stmt):
                    break
            expanded = expand_comprehension_fstring(node, comp)
            if expanded:
                return expanded, None
            return [], fstring_pattern(arg)
        return [], None

    def _classify_roles(self, reg: _Registration, node: ast.Call,
                        parents: dict[int, ast.AST],
                        usage: dict[str, set[str]]) -> None:
        # Direct chain: reg.counter("x").inc(...)
        parent = parents.get(id(node))
        if isinstance(parent, ast.Attribute):
            if parent.attr in _WRITE_ATTRS:
                reg.written = True
            elif parent.attr in _READ_ATTRS:
                reg.read = True
            return
        # Assigned binding: walk up to the enclosing statement.
        cursor: ast.AST | None = node
        stmt = None
        while cursor is not None:
            cursor = parents.get(id(cursor))
            if isinstance(cursor, ast.stmt):
                stmt = cursor
                break
        binding = None
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            binding = self._binding_repr(stmt.targets[0])
        elif isinstance(stmt, (ast.AnnAssign,)) and stmt.target is not None:
            binding = self._binding_repr(stmt.target)
        if binding is None:
            return
        attrs = usage.get(binding, set())
        reg.written = bool(attrs & _WRITE_ATTRS)
        reg.read = bool(attrs & _READ_ATTRS)

    @staticmethod
    def _binding_repr(node: ast.AST) -> str | None:
        if isinstance(node, ast.Name):
            return node.id
        if (isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == "self"):
            return f"self.{node.attr}"
        return None

    @staticmethod
    def _binding_usage(tree: ast.Module) -> dict[str, set[str]]:
        """Map binding repr -> set of attributes accessed beyond it."""
        usage: dict[str, set[str]] = {}
        for node in ast.walk(tree):
            if not isinstance(node, ast.Attribute):
                continue
            base = node.value
            while isinstance(base, ast.Subscript):
                base = base.value
            if isinstance(base, ast.Name):
                key = base.id
            elif (isinstance(base, ast.Attribute)
                  and isinstance(base.value, ast.Name)
                  and base.value.id == "self"):
                key = f"self.{base.attr}"
            else:
                continue
            usage.setdefault(key, set()).add(node.attr)
        return usage
