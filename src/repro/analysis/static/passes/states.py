"""XMOD004: state-machine literal exhaustiveness across modules."""

from __future__ import annotations

import ast

from repro.analysis.static.contracts import ContractPass, register_pass
from repro.analysis.static.core import Finding
from repro.analysis.static.graph import ModuleInfo, ProjectGraph
from repro.analysis.static.rules import path_matches

_DEFAULT_SCOPE = ["repro/sharding", "repro/distributed"]
_DEFAULT_ATTRS = ["state", "verdict"]


def _literal_values(node: ast.AST) -> set[str]:
    """String literals a production RHS can evaluate to (best effort)."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return {node.value}
    if isinstance(node, ast.IfExp):
        return _literal_values(node.body) | _literal_values(node.orelse)
    if isinstance(node, (ast.List, ast.Tuple, ast.Set)):
        out: set[str] = set()
        for elt in node.elts:
            out |= _literal_values(elt)
        return out
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Mult):
        return _literal_values(node.left) | _literal_values(node.right)
    if isinstance(node, ast.Dict):
        out = set()
        for value in node.values:
            out |= _literal_values(value)
        return out
    return set()


@register_pass
class StateMachineDriftPass(ContractPass):
    """XMOD004: state literals assigned vs. dispatched-on must reconcile.

    Rationale: worker lifecycle states (``up``/``hung``/``down``/
    ``rewarming``) are plain strings assigned in one module and
    dispatched on in others; a typo'd comparison is dead code that
    Python never flags, and a newly added state silently falls through
    every existing dispatcher. The pass pools, **graph-wide**, every
    string a tracked attribute (``state-attrs`` config, default
    ``state``/``verdict``) is assigned, keyed by attribute family —
    then, only inside ``state-scope`` modules (default ``sharding/`` and
    ``distributed/``), it reports: a comparison against a value never
    assigned anywhere is an **error**; an assigned value no comparison
    ever dispatches on is an **error**; and a pure ``if/elif`` equality
    chain over a tracked attribute with no ``else`` that misses some
    assigned values is a **warning** naming the unhandled states.

    Bad::

        self.state = "rewarming"
        ...
        if worker.state == "rewarmin":   # typo: branch never taken
            skip(worker)

    Good::

        self.state = "rewarming"
        ...
        if worker.state == "rewarming":
            skip(worker)
    """

    id = "XMOD004"
    summary = "state-machine literal drift between producers and dispatchers"

    def check_project(self, graph: ProjectGraph) -> list[Finding]:
        scope = self.config.get("state_scope", _DEFAULT_SCOPE)
        attrs = set(self.config.get("state_attrs", _DEFAULT_ATTRS))

        produced: dict[str, set[str]] = {}
        productions: list[tuple[str, str, str, ast.AST]] = []
        consumed: dict[str, set[str]] = {}
        consumptions: list[tuple[str, str, str, ast.AST]] = []
        in_scope: list[ModuleInfo] = []
        for info in graph.iter_modules():
            scoped = path_matches(info.path, scope)
            if scoped:
                in_scope.append(info)
            for family, value, node in self._productions(info, attrs):
                produced.setdefault(family, set()).add(value)
                if scoped:
                    productions.append((info.path, family, value, node))
            for family, value, node in self._consumptions(info, attrs):
                consumed.setdefault(family, set()).add(value)
                if scoped:
                    consumptions.append((info.path, family, value, node))
        if not produced:
            return []

        out: list[Finding] = []
        for path, family, value, node in consumptions:
            pool = produced.get(family, set())
            if pool and value not in pool:
                known = ", ".join(sorted(pool))
                out.append(self.finding(
                    path, node,
                    f"comparison against {family} '{value}' which is never "
                    f"assigned anywhere (known {family} values: {known}): "
                    "the branch is dead",
                ))
        reported: set[tuple[str, str]] = set()
        for path, family, value, node in productions:
            if value in consumed.get(family, set()):
                continue
            if (family, value) in reported:
                continue
            reported.add((family, value))
            out.append(self.finding(
                path, node,
                f"{family} '{value}' is assigned here but no dispatcher "
                "anywhere compares against it: the state is unhandled",
            ))
        for info in in_scope:
            out.extend(self._chain_findings(info, attrs, produced))
        return out

    # ------------------------------------------------------------------ #
    # Extraction
    # ------------------------------------------------------------------ #

    @staticmethod
    def _family(node: ast.AST, attrs: set[str]) -> str | None:
        while isinstance(node, ast.Subscript):
            node = node.value
        if isinstance(node, ast.Attribute) and node.attr in attrs:
            return node.attr
        if isinstance(node, ast.Name) and node.id in attrs:
            return node.id
        return None

    def _productions(self, info: ModuleInfo, attrs: set[str]):
        for node in ast.walk(info.ctx.tree):
            targets: list[ast.AST] = []
            value = None
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = [node.target], node.value
            if value is None:
                continue
            for target in targets:
                family = self._family(target, attrs)
                if family is None:
                    continue
                for literal in sorted(_literal_values(value)):
                    yield family, literal, value
        yield from self._local_flow_productions(info, attrs)

    def _local_flow_productions(self, info: ModuleInfo, attrs: set[str]):
        """Literals flowing into a state attr through a local.

        The transition idiom assigns the attribute from a parameter
        (``self.state = to``) and branches on the literal elsewhere in
        the same function (``if to == "open": ...``): every literal the
        local is compared with or assigned counts as produced.
        """
        for fn in ast.walk(info.ctx.tree):
            if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            feeders: dict[str, str] = {}  # local name -> attr family
            for node in ast.walk(fn):
                if not isinstance(node, ast.Assign):
                    continue
                if not isinstance(node.value, ast.Name):
                    continue
                for target in node.targets:
                    family = self._family(target, attrs)
                    if family is not None:
                        feeders[node.value.id] = family
            if not feeders:
                continue
            for node in ast.walk(fn):
                if isinstance(node, ast.Compare):
                    sides = [node.left, *node.comparators]
                    locals_hit = [s.id for s in sides
                                  if isinstance(s, ast.Name)
                                  and s.id in feeders]
                    if not locals_hit:
                        continue
                    for side in sides:
                        for literal in sorted(_literal_values(side)):
                            for name in locals_hit:
                                yield feeders[name], literal, node
                elif isinstance(node, ast.Assign):
                    for target in node.targets:
                        if (isinstance(target, ast.Name)
                                and target.id in feeders):
                            for literal in sorted(
                                    _literal_values(node.value)):
                                yield feeders[target.id], literal, node

    def _consumptions(self, info: ModuleInfo, attrs: set[str]):
        for node in ast.walk(info.ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            sides = [node.left, *node.comparators]
            families = [self._family(s, attrs) for s in sides]
            if not any(families):
                continue
            for side, family in zip(sides, families):
                if family is not None:
                    continue
                for other_family in families:
                    if other_family is None:
                        continue
                    for literal in sorted(_literal_values(side)):
                        yield other_family, literal, node

    def _chain_findings(self, info: ModuleInfo, attrs: set[str],
                        produced: dict[str, set[str]]) -> list[Finding]:
        elif_children: set[int] = set()
        for node in ast.walk(info.ctx.tree):
            if (isinstance(node, ast.If) and len(node.orelse) == 1
                    and isinstance(node.orelse[0], ast.If)):
                elif_children.add(id(node.orelse[0]))

        out: list[Finding] = []
        for node in ast.walk(info.ctx.tree):
            if not isinstance(node, ast.If) or id(node) in elif_children:
                continue
            family, covered, closed = self._walk_chain(node, attrs)
            if family is None or closed:
                continue
            if len(covered) < 2:
                # A lone `if x.state == "..."` is a guard, not a
                # dispatcher; only real if/elif chains claim exhaustiveness.
                continue
            pool = produced.get(family, set())
            missing = pool - covered
            if not pool or not missing:
                continue
            names = ", ".join(sorted(missing))
            out.append(self.finding(
                info.path, node,
                f"if/elif chain over '{family}' has no else and does not "
                f"handle: {names} (those states fall through silently)",
                severity="warning",
            ))
        return out

    def _walk_chain(self, node: ast.If, attrs: set[str]):
        """Follow a pure ``== literal`` elif chain; (family, covered, closed).

        ``closed`` is True when the chain ends in an ``else`` (exhaustive
        by construction) — and family is None when any condition is not a
        simple equality over a single tracked attribute.
        """
        family: str | None = None
        covered: set[str] = set()
        cursor: ast.stmt | None = node
        while isinstance(cursor, ast.If):
            test = cursor.test
            if not (isinstance(test, ast.Compare) and len(test.ops) == 1
                    and isinstance(test.ops[0], ast.Eq)):
                return None, covered, False
            left_fam = self._family(test.left, attrs)
            right = test.comparators[0]
            if left_fam is None or not (
                    isinstance(right, ast.Constant)
                    and isinstance(right.value, str)):
                return None, covered, False
            if family is None:
                family = left_fam
            elif family != left_fam:
                return None, covered, False
            covered.add(right.value)
            if not cursor.orelse:
                return family, covered, False
            if len(cursor.orelse) == 1 and isinstance(cursor.orelse[0],
                                                      ast.If):
                cursor = cursor.orelse[0]
                continue
            return family, covered, True
        return family, covered, False
