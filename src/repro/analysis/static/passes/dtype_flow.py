"""XMOD005: cross-module dtype taint flowing into hot-path modules."""

from __future__ import annotations

import ast

from repro.analysis.static.contracts import ContractPass, register_pass
from repro.analysis.static.core import Finding
from repro.analysis.static.graph import ModuleInfo, ProjectGraph
from repro.analysis.static.rules import path_matches

# Allocators that default to float64 when no dtype is given. dtype-
# preserving constructors (asarray, *_like, copy) are deliberately out.
_ALLOC_FUNCS = {
    "zeros", "ones", "empty", "full", "arange", "linspace",
    "eye", "identity", "array",
}
_WIDE_DTYPES = {"float64", "double"}
_DEFAULT_HOT = ["repro/tt", "repro/ops", "repro/cache"]


def _is_tainted_alloc(call: ast.Call, ctx) -> bool:
    """Fresh numpy allocation that is dtype-less or explicitly float64."""
    dotted = ctx.resolve(call.func)
    if not dotted or not dotted.startswith("numpy"):
        return False
    if dotted.rsplit(".", 1)[-1] not in _ALLOC_FUNCS:
        return False
    for kw in call.keywords:
        if kw.arg != "dtype":
            continue
        value = kw.value
        if isinstance(value, ast.Constant):
            return value.value in _WIDE_DTYPES
        resolved = ctx.resolve(value)
        return bool(resolved) and (
            resolved.rsplit(".", 1)[-1] in _WIDE_DTYPES)
    return True


@register_pass
class DtypeTaintPass(ContractPass):
    """XMOD005: fresh float64 arrays must not leak into hot-path modules.

    Rationale: the per-file dtype rules police allocations *inside* the
    hot path, but a helper in a cold module that returns a dtype-less
    ``np.zeros(...)`` (float64 by default) re-introduces the exact
    memory blow-up TT compression exists to avoid the moment a hot-path
    module calls it — and no single-file rule can see that flow. The
    pass marks project functions whose return value is a freshly
    allocated dtype-less or explicitly-float64 numpy array (directly,
    through a local binding, or transitively by returning another
    tainted function's result), then reports every call-graph edge from
    a ``hot-path`` module into such a function outside the hot path.
    Call sites that immediately re-dtype the result (``.astype(...)``,
    or wrapping in a dtype-carrying ``np.asarray``/``np.array``) are
    exempt.

    Bad::

        # cold helper module
        def padding_block(n):
            return np.zeros((n, 64))          # float64 by default

        # hot-path module
        rows = padding_block(batch)           # 2x memory on the hot path

    Good::

        def padding_block(n, dtype=np.float32):
            return np.zeros((n, 64), dtype=dtype)
    """

    id = "XMOD005"
    summary = "fresh float64/dtype-less arrays flowing into hot-path modules"

    def check_project(self, graph: ProjectGraph) -> list[Finding]:
        hot_patterns = self.config.get("hot_path", _DEFAULT_HOT)

        tainted: set[str] = set()
        ret_calls: dict[str, list[str]] = {}
        for fn in graph.functions.values():
            info = graph.modules[fn.path]
            direct, returned = self._direct_taint(fn, info)
            if direct:
                tainted.add(fn.qualname)
            callmap = {id(node): callee for callee, node in fn.calls}
            ret_calls[fn.qualname] = [
                callmap[id(node)] for node in returned
                if id(node) in callmap
            ]
        changed = True
        while changed:
            changed = False
            for qual, callees in ret_calls.items():
                if qual in tainted:
                    continue
                if any(c in tainted for c in callees):
                    tainted.add(qual)
                    changed = True
        if not tainted:
            return []

        out: list[Finding] = []
        for info in graph.iter_modules():
            if not path_matches(info.path, hot_patterns):
                continue
            parents = self._parent_map(info)
            for fn in info.functions.values():
                for callee, node in fn.calls:
                    if callee not in tainted:
                        continue
                    callee_fn = graph.functions.get(callee)
                    if callee_fn is None or path_matches(
                            callee_fn.path, hot_patterns):
                        continue  # intra-hot flows are per-file territory
                    if self._recast_at_site(node, parents, info):
                        continue
                    out.append(self.finding(
                        info.path, node,
                        f"call to '{callee}' returns a fresh float64/"
                        "dtype-less array that flows into this hot-path "
                        "module: pass an explicit narrow dtype or cast at "
                        "the boundary",
                    ))
        return out

    # ------------------------------------------------------------------ #
    # Taint extraction
    # ------------------------------------------------------------------ #

    @staticmethod
    def _direct_taint(fn, info: ModuleInfo):
        """(returns fresh wide array directly?, return-position calls)."""
        ctx = info.ctx
        tainted_locals: set[str] = set()
        for node in ast.walk(fn.node):
            if (isinstance(node, ast.Assign)
                    and isinstance(node.value, ast.Call)
                    and _is_tainted_alloc(node.value, ctx)):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        tainted_locals.add(target.id)
        direct = False
        returned_calls: list[ast.Call] = []
        for node in ast.walk(fn.node):
            if not isinstance(node, ast.Return) or node.value is None:
                continue
            value = node.value
            if isinstance(value, ast.Call):
                if _is_tainted_alloc(value, ctx):
                    direct = True
                else:
                    returned_calls.append(value)
            elif (isinstance(value, ast.Name)
                  and value.id in tainted_locals):
                direct = True
        return direct, returned_calls

    @staticmethod
    def _parent_map(info: ModuleInfo) -> dict[int, ast.AST]:
        parents: dict[int, ast.AST] = {}
        for parent in ast.walk(info.ctx.tree):
            for child in ast.iter_child_nodes(parent):
                parents[id(child)] = parent
        return parents

    @staticmethod
    def _recast_at_site(node: ast.Call, parents: dict[int, ast.AST],
                        info: ModuleInfo) -> bool:
        """True when the call result is immediately re-dtyped."""
        parent = parents.get(id(node))
        if isinstance(parent, ast.Attribute) and parent.attr == "astype":
            return True
        if (isinstance(parent, ast.Call) and parent.args
                and parent.args[0] is node):
            dotted = info.ctx.resolve(parent.func)
            if (dotted and dotted.startswith("numpy")
                    and dotted.rsplit(".", 1)[-1] in ("asarray", "array")
                    and any(kw.arg == "dtype" for kw in parent.keywords)):
                return True
        return False
