"""XMOD001: fault-site registry vs. fire-site reconciliation."""

from __future__ import annotations

import ast

from repro.analysis.static.contracts import ContractPass, register_pass
from repro.analysis.static.core import Finding, dotted_name
from repro.analysis.static.graph import ModuleInfo, ProjectGraph
from repro.analysis.static.rules import path_matches

# Injector methods whose first positional argument is a site name.
_FIRE_METHODS = {"fires", "draw", "corrupt", "register"}


def _receiver_is_injector(node: ast.AST) -> bool:
    """Heuristic: does this expression denote a fault injector?

    Matches dotted chains whose final segment mentions ``inj``
    (``self.injector``, ``inj``, ``router.injector``), direct
    ``FaultInjector(...)`` constructions, and chained
    ``.register(...).register(...)`` builders.
    """
    dotted = dotted_name(node)
    if dotted is not None:
        return "inj" in dotted.rsplit(".", 1)[-1].lower()
    if isinstance(node, ast.Call):
        callee = dotted_name(node.func)
        if callee is not None and callee.rsplit(".", 1)[-1] == "FaultInjector":
            return True
        if (isinstance(node.func, ast.Attribute)
                and node.func.attr == "register"):
            return _receiver_is_injector(node.func.value)
    if isinstance(node, ast.Attribute):
        return _receiver_is_injector(node.value)
    return False


@register_pass
class FaultSiteDriftPass(ContractPass):
    """XMOD001: every fired fault site is registered, and vice versa.

    Rationale: the injector's ``draw``/``fires``/``corrupt`` probe
    unconditionally and unregistered sites silently never fire, so a
    typo'd site string turns a chaos drill into a clean run that still
    reports success — and a ``KNOWN_SITES`` entry nobody fires is dead
    documentation that reconcilers trust for coverage. The pass
    reconciles the registry tuple (``fault-registry`` config, default
    ``repro/reliability/fault_injection.py``) against every literal
    site string passed to an injector's fire-capable methods
    (``fires``/``draw``/``corrupt``/``register``) anywhere in the
    project graph.

    Bad::

        KNOWN_SITES = ("shard.crash",)
        injector.fires("shard.crashh")     # typo: never fires, no error

    Good::

        KNOWN_SITES = ("shard.crash",)
        injector.fires("shard.crash")
    """

    id = "XMOD001"
    summary = "fault-site drift between KNOWN_SITES and injector call sites"

    def check_project(self, graph: ProjectGraph) -> list[Finding]:
        registry_patterns = self.config.get(
            "fault_registry", ["repro/reliability/fault_injection.py"])
        registry_name = self.config.get("fault_registry_name", "KNOWN_SITES")
        registry: dict[str, tuple[str, ast.AST]] = {}
        registry_modules = []
        for info in graph.iter_modules():
            if not path_matches(info.path, registry_patterns):
                continue
            registry_modules.append(info)
            for site, node in self._registry_entries(info, registry_name):
                registry.setdefault(site, (info.path, node))
        if not registry_modules:
            # The registry is out of the analyzed scope (e.g. linting a
            # single unrelated file): nothing can be reconciled.
            return []

        out: list[Finding] = []
        used: set[str] = set()
        for info in graph.iter_modules():
            for site, node in self._fire_sites(info):
                used.add(site)
                if site not in registry:
                    out.append(self.finding(
                        info.path, node,
                        f"fault site '{site}' is not in {registry_name}: the "
                        "probe silently never fires; register the site or "
                        "fix the name",
                    ))
        for site in sorted(registry):
            if site in used:
                continue
            path, node = registry[site]
            out.append(self.finding(
                path, node,
                f"registered fault site '{site}' is never passed to an "
                "injector fire/register call in the analyzed tree: dead "
                "registry entry (remove it or wire up the component)",
            ))
        return out

    @staticmethod
    def _registry_entries(info: ModuleInfo, registry_name: str):
        for node in ast.walk(info.ctx.tree):
            if not isinstance(node, ast.Assign):
                continue
            if not any(isinstance(t, ast.Name) and t.id == registry_name
                       for t in node.targets):
                continue
            if isinstance(node.value, (ast.Tuple, ast.List, ast.Set)):
                for elt in node.value.elts:
                    if (isinstance(elt, ast.Constant)
                            and isinstance(elt.value, str)):
                        yield elt.value, elt

    @staticmethod
    def _fire_sites(info: ModuleInfo):
        for node in ast.walk(info.ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (isinstance(func, ast.Attribute)
                    and func.attr in _FIRE_METHODS):
                continue
            if not node.args:
                continue
            arg = node.args[0]
            if not (isinstance(arg, ast.Constant)
                    and isinstance(arg.value, str)):
                continue
            if not _receiver_is_injector(func.value):
                continue
            yield arg.value, arg
