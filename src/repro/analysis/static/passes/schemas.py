"""XMOD003: JSONL schema-tag consistency between writers and readers."""

from __future__ import annotations

import ast
import re

from repro.analysis.static.contracts import ContractPass, register_pass
from repro.analysis.static.core import Finding
from repro.analysis.static.graph import ModuleInfo, ProjectGraph

# A versioned artifact tag: "repro.<name>/v<N>".
_TAG_RE = re.compile(r"repro\.[a-z0-9_.-]+/v\d+")


def _split_tag(tag: str) -> tuple[str, str]:
    base, _, version = tag.rpartition("/")
    return base, version


@register_pass
class SchemaTagDriftPass(ContractPass):
    """XMOD003: every versioned artifact writer has a reader; versions agree.

    Rationale: JSONL artifacts are stamped with a ``.../vN`` schema tag
    precisely so that readers can refuse records from a different
    contract generation. A writer whose tag no reader ever compares
    against is an unvalidated artifact — a schema bump would go
    unnoticed until a downstream consumer mis-parses it. And the same
    tag base appearing with two different versions means a writer and a
    reader were bumped out of lockstep. The pass collects tag constants
    and inline tag literals across the project graph, classifies each
    use as a **writer** (dict literal or subscript-assign under a
    ``schema`` key) or a **reader** (comparison against the tag), and
    reports: a written tag with no reader anywhere is an **error**; a
    tag base whose occurrences disagree on version is an **error** at
    each minority occurrence. Readers without in-repo writers are fine
    (the artifact may be produced out of process).

    Bad::

        SCHEMA = "example.artifact/v2"          # writer bumped...
        json.dump({"schema": SCHEMA, ...}, fh)
        # reader elsewhere still checks "example.artifact/v1"

    Good::

        SCHEMA = "example.artifact/v2"
        json.dump({"schema": SCHEMA, ...}, fh)
        # reader: if rec.get("schema") != SCHEMA: raise ValueError(...)
    """

    id = "XMOD003"
    summary = "JSONL schema-tag drift between artifact writers and readers"

    def check_project(self, graph: ProjectGraph) -> list[Finding]:
        global_consts: dict[str, str] = {}
        for info in graph.iter_modules():
            for name, tag in self._tag_constants(info):
                global_consts[f"{info.name}.{name}"] = tag

        writers: dict[str, list[tuple[str, ast.AST]]] = {}
        readers: dict[str, list[tuple[str, ast.AST]]] = {}
        occurrences: dict[str, list[tuple[str, str, ast.AST]]] = {}
        for info in graph.iter_modules():
            local = {k.rsplit(".", 1)[-1]: v
                     for k, v in global_consts.items()
                     if k.startswith(info.name + ".")}
            for tag, node in self._writer_sites(info, local, global_consts):
                writers.setdefault(tag, []).append((info.path, node))
            for tag, node in self._reader_sites(info, local, global_consts):
                readers.setdefault(tag, []).append((info.path, node))
            for tag, node in self._tag_occurrences(info):
                base, version = _split_tag(tag)
                occurrences.setdefault(base, []).append(
                    (version, info.path, node))

        out: list[Finding] = []
        for tag in sorted(writers):
            if tag in readers:
                continue
            path, node = min(writers[tag],
                             key=lambda s: (s[0], s[1].lineno))
            out.append(self.finding(
                path, node,
                f"schema tag '{tag}' is written here but no reader ever "
                "compares a record against it: the artifact is unvalidated "
                "and a version bump would go unnoticed",
            ))

        for base in sorted(occurrences):
            sites = occurrences[base]
            versions = sorted({v for v, _, _ in sites})
            if len(versions) < 2:
                continue
            counts = {v: sum(1 for sv, _, _ in sites if sv == v)
                      for v in versions}
            canonical = max(versions, key=lambda v: (counts[v], v))
            for version, path, node in sites:
                if version == canonical:
                    continue
                out.append(self.finding(
                    path, node,
                    f"schema tag '{base}/{version}' disagrees with the "
                    f"prevailing '{base}/{canonical}' used elsewhere: "
                    "writer and reader were bumped out of lockstep",
                ))
        return out

    # ------------------------------------------------------------------ #
    # Extraction
    # ------------------------------------------------------------------ #

    @staticmethod
    def _tag_constants(info: ModuleInfo):
        """Module-level ``NAME = "repro.x/vN"`` constant definitions."""
        for node in ast.walk(info.ctx.tree):
            if not isinstance(node, ast.Assign):
                continue
            if not (isinstance(node.value, ast.Constant)
                    and isinstance(node.value.value, str)
                    and _TAG_RE.fullmatch(node.value.value)):
                continue
            for target in node.targets:
                if isinstance(target, ast.Name):
                    yield target.id, node.value.value

    @staticmethod
    def _docstring_nodes(tree: ast.Module) -> set[int]:
        doc_ids: set[int] = set()
        for node in ast.walk(tree):
            if not isinstance(node, (ast.Module, ast.ClassDef,
                                     ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            body = getattr(node, "body", [])
            if (body and isinstance(body[0], ast.Expr)
                    and isinstance(body[0].value, ast.Constant)
                    and isinstance(body[0].value.value, str)):
                doc_ids.add(id(body[0].value))
        return doc_ids

    def _tag_occurrences(self, info: ModuleInfo):
        """Every tag literal in string constants, docstrings excluded."""
        doc_ids = self._docstring_nodes(info.ctx.tree)
        for node in ast.walk(info.ctx.tree):
            if not (isinstance(node, ast.Constant)
                    and isinstance(node.value, str)):
                continue
            if id(node) in doc_ids:
                continue
            for match in _TAG_RE.finditer(node.value):
                yield match.group(0), node

    def _tag_of(self, node: ast.AST, info: ModuleInfo,
                local: dict[str, str],
                global_consts: dict[str, str]) -> str | None:
        """Resolve an expression to a schema tag, if it denotes one."""
        if isinstance(node, ast.Constant):
            if (isinstance(node.value, str)
                    and _TAG_RE.fullmatch(node.value)):
                return node.value
            return None
        if not isinstance(node, (ast.Name, ast.Attribute)):
            return None
        dotted = info.ctx.resolve(node)
        if not dotted:
            return None
        if dotted in local:
            return local[dotted]
        if dotted in global_consts:
            return global_consts[dotted]
        suffix_hits = sorted(
            v for k, v in global_consts.items()
            if k.endswith("." + dotted)
        )
        if len(set(suffix_hits)) == 1:
            return suffix_hits[0]
        return None

    def _writer_sites(self, info: ModuleInfo, local: dict[str, str],
                      global_consts: dict[str, str]):
        """Dict literals and subscript assigns stamping a schema key."""
        for node in ast.walk(info.ctx.tree):
            if isinstance(node, ast.Dict):
                for key, value in zip(node.keys, node.values):
                    if not (isinstance(key, ast.Constant)
                            and key.value in ("schema", "$schema")):
                        continue
                    tag = self._tag_of(value, info, local, global_consts)
                    if tag:
                        yield tag, value
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if not (isinstance(target, ast.Subscript)
                            and isinstance(target.slice, ast.Constant)
                            and target.slice.value in ("schema", "$schema")):
                        continue
                    tag = self._tag_of(node.value, info, local,
                                       global_consts)
                    if tag:
                        yield tag, node.value

    def _reader_sites(self, info: ModuleInfo, local: dict[str, str],
                      global_consts: dict[str, str]):
        """Comparisons whose operands resolve to a schema tag."""
        for node in ast.walk(info.ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands: list[ast.AST] = [node.left]
            for comp in node.comparators:
                if isinstance(comp, (ast.Tuple, ast.List, ast.Set)):
                    operands.extend(comp.elts)
                else:
                    operands.append(comp)
            for operand in operands:
                tag = self._tag_of(operand, info, local, global_consts)
                if tag:
                    yield tag, operand
