"""Driver for ``repro lint``: config, file walking, baselines, formatting.

Configuration lives under ``[tool.repro.lint]`` in ``pyproject.toml``
(parsed with :mod:`tomllib` when available — Python 3.11+ — and falling
back to built-in defaults otherwise, so the linter works on 3.10 CI
runners too). A baseline file (``--baseline``) holds ``path:line:RULE``
keys for grandfathered findings; the repo itself ships none — ``repro
lint src/`` must exit 0 with an empty baseline.

Two layers run per invocation:

- the **per-file rules** (:mod:`repro.analysis.static.rules`), one AST
  at a time;
- the **cross-module contract passes** (XMOD*, under
  :mod:`repro.analysis.static.passes`), which consume a
  :class:`~repro.analysis.static.graph.ProjectGraph` built over the
  linted files *plus* the configured ``graph-roots`` (default ``src``),
  so linting a subtree still sees the registries and readers that live
  elsewhere. Pass findings are only reported for files actually being
  linted.

Findings carry a severity: errors fail the run, warnings are reported
but leave the exit code at 0. ``--diff-base REF`` further restricts the
report to findings on lines changed since ``REF``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.static.contracts import all_passes
from repro.analysis.static.core import FileContext, Finding, all_rules
from repro.analysis.static.graph import build_graph

__all__ = [
    "LintConfig",
    "LintReport",
    "lint_paths",
    "load_config",
    "format_text",
    "format_json",
    "load_baseline",
    "write_baseline",
]

SCHEMA = "repro.lint/v1"
BASELINE_SCHEMA = "repro.lint.baseline/v1"

_DEFAULT_CONFIG = {
    "hot_path": ["repro/tt", "repro/ops", "repro/cache", "repro/baselines",
                 "repro/compress"],
    "rng_allowed": ["repro/utils/seeding.py"],
    "clock_exempt": ["repro/bench"],
    "mutation_scope": ["repro/tt/kernels.py", "repro/cache"],
    "process_scope": ["repro/sharding"],
    "trace_scope": ["repro/serving", "repro/sharding"],
    "exclude": ["__pycache__", ".git", "build", "dist", ".eggs"],
    "fault_registry": ["repro/reliability/fault_injection.py"],
    "state_scope": ["repro/sharding", "repro/distributed"],
    "state_attrs": ["state", "verdict"],
    "graph_roots": ["src"],
}


def _default(key: str):
    return field(default_factory=lambda: list(_DEFAULT_CONFIG[key]))


@dataclass
class LintConfig:
    """Resolved lint configuration (defaults overlaid with pyproject)."""

    hot_path: list[str] = _default("hot_path")
    rng_allowed: list[str] = _default("rng_allowed")
    clock_exempt: list[str] = _default("clock_exempt")
    mutation_scope: list[str] = _default("mutation_scope")
    process_scope: list[str] = _default("process_scope")
    trace_scope: list[str] = _default("trace_scope")
    exclude: list[str] = _default("exclude")
    fault_registry: list[str] = _default("fault_registry")
    state_scope: list[str] = _default("state_scope")
    state_attrs: list[str] = _default("state_attrs")
    graph_roots: list[str] = _default("graph_roots")
    select: list[str] = field(default_factory=list)
    ignore: list[str] = field(default_factory=list)
    config_dir: str | None = None  # where pyproject.toml was found

    def as_rule_config(self) -> dict:
        return {
            "hot_path": self.hot_path,
            "rng_allowed": self.rng_allowed,
            "clock_exempt": self.clock_exempt,
            "mutation_scope": self.mutation_scope,
            "process_scope": self.process_scope,
            "trace_scope": self.trace_scope,
            "fault_registry": self.fault_registry,
            "state_scope": self.state_scope,
            "state_attrs": self.state_attrs,
        }


def load_config(pyproject: str | Path | None = None) -> LintConfig:
    """Read ``[tool.repro.lint]``; missing file/section/parser -> defaults.

    TOML keys use dashes (``hot-path``); they map onto the underscored
    dataclass fields.
    """
    cfg = LintConfig()
    if pyproject is None:
        pyproject = _find_pyproject()
    if pyproject is None:
        return cfg
    try:
        import tomllib
    except ImportError:  # Python < 3.11
        return cfg
    path = Path(pyproject)
    if not path.is_file():
        return cfg
    cfg.config_dir = path.parent.as_posix()
    try:
        data = tomllib.loads(path.read_text(encoding="utf-8"))
    except tomllib.TOMLDecodeError:
        return cfg
    section = data.get("tool", {}).get("repro", {}).get("lint", {})
    for key, value in section.items():
        attr = key.replace("-", "_")
        if hasattr(cfg, attr) and isinstance(value, list):
            setattr(cfg, attr, [str(v) for v in value])
    return cfg


def _find_pyproject() -> Path | None:
    for parent in [Path.cwd(), *Path.cwd().parents]:
        candidate = parent / "pyproject.toml"
        if candidate.is_file():
            return candidate
    return None


@dataclass
class LintReport:
    """Findings plus the bookkeeping the CLI needs for exit codes."""

    findings: list[Finding]
    files_checked: int
    suppressed: int
    baselined: int
    parse_errors: list[tuple[str, str]] = field(default_factory=list)

    @property
    def errors(self) -> list[Finding]:
        return [f for f in self.findings if f.severity == "error"]

    @property
    def warnings(self) -> list[Finding]:
        return [f for f in self.findings if f.severity != "error"]

    @property
    def ok(self) -> bool:
        """No error-severity findings and no parse errors (warnings pass)."""
        return not self.errors and not self.parse_errors


def _iter_python_files(paths: list[str | Path],
                       exclude: list[str]) -> list[Path]:
    files: list[Path] = []
    for entry in paths:
        p = Path(entry)
        if p.is_file():
            if p.suffix == ".py":
                files.append(p)
            continue
        if not p.is_dir():
            raise FileNotFoundError(f"lint path does not exist: {p}")
        for sub in sorted(p.rglob("*.py")):
            parts = set(sub.parts)
            if any(e in parts for e in exclude):
                continue
            if any(part.startswith(".") and part not in (".", "..")
                   for part in sub.parts):
                continue
            files.append(sub)
    # Deterministic order and no duplicates even with overlapping roots.
    unique: dict[str, Path] = {}
    for f in files:
        unique.setdefault(f.as_posix(), f)
    return list(unique.values())


def load_baseline(path: str | Path) -> set[str]:
    """Read a baseline file, validating its schema tag.

    A baseline whose tag is missing or from a different generation is a
    hard error — silently treating it as empty would un-grandfather
    every finding (or worse, keep stale keys alive).
    """
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    schema = data.get("schema")
    if schema != BASELINE_SCHEMA:
        raise ValueError(
            f"{Path(path).as_posix()}: expected schema {BASELINE_SCHEMA}, "
            f"got {schema!r}")
    keys = data.get("keys")
    if not isinstance(keys, list):
        raise ValueError(f"{Path(path).as_posix()}: 'keys' must be a list")
    return {str(k) for k in keys}


def _known_ids() -> set[str]:
    return set(all_rules()) | set(all_passes())


def _noqa_findings(ctx: FileContext, known: set[str]) -> list[Finding]:
    """NOQA001: targeted suppressions naming ids that do not exist."""
    out = []
    for line in sorted(ctx.noqa_ids):
        for rid in ctx.noqa_ids[line]:
            if rid in known:
                continue
            out.append(Finding(
                rule="NOQA001", path=ctx.path, line=line, col=0,
                message=(
                    f"noqa comment names unknown rule id '{rid}': the "
                    "suppression is dead — fix the id or drop it"
                ),
            ))
    return out


def lint_paths(paths: list[str | Path], *, config: LintConfig | None = None,
               baseline: str | Path | None = None,
               changed: dict[str, set[int]] | None = None) -> LintReport:
    """Run every selected rule and contract pass over ``paths``.

    ``changed`` (path -> changed line numbers, from
    :func:`repro.analysis.static.diff.changed_lines`) restricts reported
    findings to changed lines; suppression and baselining are applied
    first so the counts stay meaningful.
    """
    config = config or load_config()
    rule_classes = all_rules()
    pass_classes = all_passes()
    known = set(rule_classes) | set(pass_classes)
    selected = set(config.select or known) - set(config.ignore)
    unknown_selected = selected - known
    if unknown_selected:
        raise ValueError(
            "unknown rule id(s) in select/ignore: "
            + ", ".join(sorted(unknown_selected)))
    rules = [cls(config=config.as_rule_config())
             for rid, cls in sorted(rule_classes.items()) if rid in selected]

    baseline_keys: set[str] = set()
    if baseline is not None and Path(baseline).is_file():
        baseline_keys = load_baseline(baseline)

    findings: list[Finding] = []
    suppressed = 0
    baselined = 0
    parse_errors: list[tuple[str, str]] = []
    files = _iter_python_files(paths, config.exclude)
    lint_set = {f.as_posix() for f in files}

    def admit(finding: Finding, ctx: FileContext | None) -> None:
        nonlocal suppressed, baselined
        if ctx is not None and ctx.suppressed(finding.rule, finding.line):
            suppressed += 1
        elif finding.key() in baseline_keys:
            baselined += 1
        else:
            findings.append(finding)

    contexts: dict[str, FileContext] = {}
    for path in files:
        try:
            ctx = FileContext(path.as_posix(),
                              path.read_text(encoding="utf-8"))
        except (SyntaxError, UnicodeDecodeError) as exc:
            parse_errors.append((path.as_posix(), str(exc)))
            continue
        contexts[ctx.path] = ctx
        for rule in rules:
            for finding in rule.check(ctx):
                admit(finding, ctx)
        if "NOQA001" in selected:
            for finding in _noqa_findings(ctx, known):
                admit(finding, ctx)

    selected_passes = [cls(config=config.as_rule_config())
                       for pid, cls in sorted(pass_classes.items())
                       if pid in selected]
    if selected_passes:
        graph = build_graph(_graph_files(files, config))
        for contract_pass in selected_passes:
            for finding in contract_pass.check_project(graph):
                if finding.path not in lint_set:
                    continue  # drift anchored outside the linted tree
                admit(finding, contexts.get(finding.path))

    if changed is not None:
        findings = [f for f in findings
                    if f.line in changed.get(f.path, set())]
        parse_errors = [(p, e) for p, e in parse_errors if p in changed]

    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return LintReport(findings=findings, files_checked=len(files),
                      suppressed=suppressed, baselined=baselined,
                      parse_errors=parse_errors)


def _graph_files(files: list[Path], config: LintConfig) -> list[Path]:
    """Linted files plus every ``graph-roots`` tree, for whole-program
    context even when only a subtree is being linted."""
    out = list(files)
    base = Path(config.config_dir) if config.config_dir else Path(".")
    for root in config.graph_roots:
        candidate = base / root
        try:
            # Keep paths relative when possible so graph-root files and
            # linted files dedupe to one module per file.
            candidate = candidate.relative_to(Path.cwd())
        except ValueError:
            pass
        if candidate.is_dir():
            out.extend(_iter_python_files([candidate], config.exclude))
    return out


def write_baseline(report: LintReport, path: str | Path) -> None:
    """Persist the current findings as grandfathered baseline keys."""
    payload = {
        "schema": BASELINE_SCHEMA,
        "keys": sorted(f.key() for f in report.findings),
    }
    Path(path).write_text(json.dumps(payload, indent=2) + "\n",
                          encoding="utf-8")


def format_text(report: LintReport) -> str:
    lines = []
    for f in report.findings:
        tag = f"{f.rule} warning:" if f.severity != "error" else f.rule
        lines.append(f"{f.path}:{f.line}:{f.col}: {tag} {f.message}")
    for path, err in report.parse_errors:
        lines.append(f"{path}: PARSE-ERROR {err}")
    lines.append(
        f"{len(report.findings)} finding(s)"
        f" [{len(report.errors)} error(s), {len(report.warnings)}"
        f" warning(s)] in {report.files_checked} file(s)"
        f" ({report.suppressed} suppressed, {report.baselined} baselined)"
    )
    return "\n".join(lines)


def format_json(report: LintReport) -> str:
    rule_classes = all_rules()
    pass_classes = all_passes()
    payload = {
        "schema": SCHEMA,
        "files_checked": report.files_checked,
        "suppressed": report.suppressed,
        "baselined": report.baselined,
        "errors": len(report.errors),
        "warnings": len(report.warnings),
        "rules": {rid: cls.summary for rid, cls in
                  sorted({**rule_classes, **pass_classes}.items())},
        "findings": [f.to_dict() for f in report.findings],
        "parse_errors": [{"path": p, "error": e} for p, e in report.parse_errors],
    }
    return json.dumps(payload, indent=2)


def validate_report(payload: dict) -> None:
    """Raise ``ValueError`` unless ``payload`` is a valid lint report."""
    if payload.get("schema") != SCHEMA:
        raise ValueError(f"expected schema {SCHEMA}, got {payload.get('schema')!r}")
    for key in ("files_checked", "suppressed", "baselined", "findings"):
        if key not in payload:
            raise ValueError(f"missing key {key!r}")
    for f in payload["findings"]:
        for key in ("rule", "path", "line", "col", "message"):
            if key not in f:
                raise ValueError(f"finding missing key {key!r}: {f}")
        if not isinstance(f["line"], int) or f["line"] < 1:
            raise ValueError(f"finding has invalid line: {f}")
        if f.get("severity", "error") not in ("error", "warning"):
            raise ValueError(f"finding has invalid severity: {f}")
