"""Driver for ``repro lint``: config, file walking, baselines, formatting.

Configuration lives under ``[tool.repro.lint]`` in ``pyproject.toml``
(parsed with :mod:`tomllib` when available — Python 3.11+ — and falling
back to built-in defaults otherwise, so the linter works on 3.10 CI
runners too). A baseline file (``--baseline``) holds ``path:line:RULE``
keys for grandfathered findings; the repo itself ships none — ``repro
lint src/`` must exit 0 with an empty baseline.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.static.core import FileContext, Finding, all_rules

__all__ = [
    "LintConfig",
    "LintReport",
    "lint_paths",
    "load_config",
    "format_text",
    "format_json",
]

SCHEMA = "repro.lint/v1"

_DEFAULT_CONFIG = {
    "hot_path": ["repro/tt", "repro/ops", "repro/cache"],
    "rng_allowed": ["repro/utils/seeding.py"],
    "clock_exempt": ["repro/bench"],
    "mutation_scope": ["repro/tt/kernels.py", "repro/cache"],
    "process_scope": ["repro/sharding"],
    "trace_scope": ["repro/serving", "repro/sharding"],
    "exclude": ["__pycache__", ".git", "build", "dist", ".eggs"],
}


@dataclass
class LintConfig:
    """Resolved lint configuration (defaults overlaid with pyproject)."""

    hot_path: list[str] = field(default_factory=lambda: list(_DEFAULT_CONFIG["hot_path"]))
    rng_allowed: list[str] = field(default_factory=lambda: list(_DEFAULT_CONFIG["rng_allowed"]))
    clock_exempt: list[str] = field(default_factory=lambda: list(_DEFAULT_CONFIG["clock_exempt"]))
    mutation_scope: list[str] = field(default_factory=lambda: list(_DEFAULT_CONFIG["mutation_scope"]))
    process_scope: list[str] = field(default_factory=lambda: list(_DEFAULT_CONFIG["process_scope"]))
    trace_scope: list[str] = field(default_factory=lambda: list(_DEFAULT_CONFIG["trace_scope"]))
    exclude: list[str] = field(default_factory=lambda: list(_DEFAULT_CONFIG["exclude"]))
    select: list[str] = field(default_factory=list)
    ignore: list[str] = field(default_factory=list)

    def as_rule_config(self) -> dict:
        return {
            "hot_path": self.hot_path,
            "rng_allowed": self.rng_allowed,
            "clock_exempt": self.clock_exempt,
            "mutation_scope": self.mutation_scope,
            "process_scope": self.process_scope,
            "trace_scope": self.trace_scope,
        }


def load_config(pyproject: str | Path | None = None) -> LintConfig:
    """Read ``[tool.repro.lint]``; missing file/section/parser -> defaults.

    TOML keys use dashes (``hot-path``); they map onto the underscored
    dataclass fields.
    """
    cfg = LintConfig()
    if pyproject is None:
        pyproject = _find_pyproject()
    if pyproject is None:
        return cfg
    try:
        import tomllib
    except ImportError:  # Python < 3.11
        return cfg
    path = Path(pyproject)
    if not path.is_file():
        return cfg
    try:
        data = tomllib.loads(path.read_text(encoding="utf-8"))
    except tomllib.TOMLDecodeError:
        return cfg
    section = data.get("tool", {}).get("repro", {}).get("lint", {})
    for key, value in section.items():
        attr = key.replace("-", "_")
        if hasattr(cfg, attr) and isinstance(value, list):
            setattr(cfg, attr, [str(v) for v in value])
    return cfg


def _find_pyproject() -> Path | None:
    for parent in [Path.cwd(), *Path.cwd().parents]:
        candidate = parent / "pyproject.toml"
        if candidate.is_file():
            return candidate
    return None


@dataclass
class LintReport:
    """Findings plus the bookkeeping the CLI needs for exit codes."""

    findings: list[Finding]
    files_checked: int
    suppressed: int
    baselined: int
    parse_errors: list[tuple[str, str]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings and not self.parse_errors


def _iter_python_files(paths: list[str | Path],
                       exclude: list[str]) -> list[Path]:
    files: list[Path] = []
    for entry in paths:
        p = Path(entry)
        if p.is_file():
            if p.suffix == ".py":
                files.append(p)
            continue
        if not p.is_dir():
            raise FileNotFoundError(f"lint path does not exist: {p}")
        for sub in sorted(p.rglob("*.py")):
            parts = set(sub.parts)
            if any(e in parts for e in exclude):
                continue
            if any(part.startswith(".") and part not in (".", "..")
                   for part in sub.parts):
                continue
            files.append(sub)
    # Deterministic order and no duplicates even with overlapping roots.
    unique: dict[str, Path] = {}
    for f in files:
        unique.setdefault(f.as_posix(), f)
    return list(unique.values())


def lint_paths(paths: list[str | Path], *, config: LintConfig | None = None,
               baseline: str | Path | None = None) -> LintReport:
    """Run every selected rule over every ``*.py`` under ``paths``."""
    config = config or load_config()
    rule_classes = all_rules()
    selected = set(config.select or rule_classes) - set(config.ignore)
    rules = [cls(config=config.as_rule_config())
             for rid, cls in sorted(rule_classes.items()) if rid in selected]

    baseline_keys: set[str] = set()
    if baseline is not None and Path(baseline).is_file():
        data = json.loads(Path(baseline).read_text(encoding="utf-8"))
        baseline_keys = set(data.get("keys", []))

    findings: list[Finding] = []
    suppressed = 0
    baselined = 0
    parse_errors: list[tuple[str, str]] = []
    files = _iter_python_files(paths, config.exclude)
    for path in files:
        try:
            ctx = FileContext(path.as_posix(),
                              path.read_text(encoding="utf-8"))
        except (SyntaxError, UnicodeDecodeError) as exc:
            parse_errors.append((path.as_posix(), str(exc)))
            continue
        for rule in rules:
            for finding in rule.check(ctx):
                if ctx.suppressed(finding.rule, finding.line):
                    suppressed += 1
                elif finding.key() in baseline_keys:
                    baselined += 1
                else:
                    findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return LintReport(findings=findings, files_checked=len(files),
                      suppressed=suppressed, baselined=baselined,
                      parse_errors=parse_errors)


def write_baseline(report: LintReport, path: str | Path) -> None:
    """Persist the current findings as grandfathered baseline keys."""
    payload = {
        "schema": "repro.lint.baseline/v1",
        "keys": sorted(f.key() for f in report.findings),
    }
    Path(path).write_text(json.dumps(payload, indent=2) + "\n",
                          encoding="utf-8")


def format_text(report: LintReport) -> str:
    lines = []
    for f in report.findings:
        lines.append(f"{f.path}:{f.line}:{f.col}: {f.rule} {f.message}")
    for path, err in report.parse_errors:
        lines.append(f"{path}: PARSE-ERROR {err}")
    lines.append(
        f"{len(report.findings)} finding(s) in {report.files_checked} file(s)"
        f" ({report.suppressed} suppressed, {report.baselined} baselined)"
    )
    return "\n".join(lines)


def format_json(report: LintReport) -> str:
    rule_classes = all_rules()
    payload = {
        "schema": SCHEMA,
        "files_checked": report.files_checked,
        "suppressed": report.suppressed,
        "baselined": report.baselined,
        "rules": {rid: cls.summary for rid, cls in sorted(rule_classes.items())},
        "findings": [f.to_dict() for f in report.findings],
        "parse_errors": [{"path": p, "error": e} for p, e in report.parse_errors],
    }
    return json.dumps(payload, indent=2)


def validate_report(payload: dict) -> None:
    """Raise ``ValueError`` unless ``payload`` is a valid lint report."""
    if payload.get("schema") != SCHEMA:
        raise ValueError(f"expected schema {SCHEMA}, got {payload.get('schema')!r}")
    for key in ("files_checked", "suppressed", "baselined", "findings"):
        if key not in payload:
            raise ValueError(f"missing key {key!r}")
    for f in payload["findings"]:
        for key in ("rule", "path", "line", "col", "message"):
            if key not in f:
                raise ValueError(f"finding missing key {key!r}: {f}")
        if not isinstance(f["line"], int) or f["line"] < 1:
            raise ValueError(f"finding has invalid line: {f}")
