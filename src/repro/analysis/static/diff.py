"""Diff-aware lint: restrict findings to lines changed since a git ref.

``repro lint --diff-base origin/main`` gives pull requests a fast,
focused gate: the full-tree invariants still run in the scheduled job,
but the PR loop only fails on findings *introduced by the diff* — a
finding on an unchanged line is pre-existing and stays out of the way.

The changed-line sets come from ``git diff --unified=0`` (zero context
lines, so every hunk maps exactly onto added/modified line ranges in
the new file). Deleted-only hunks contribute nothing — there is no new
line to anchor a finding to.
"""

from __future__ import annotations

import re
import subprocess

__all__ = ["changed_lines", "parse_unified_diff"]

_HUNK_RE = re.compile(r"^@@ -\d+(?:,\d+)? \+(?P<start>\d+)(?:,(?P<count>\d+))? @@")


def parse_unified_diff(diff_text: str) -> dict[str, set[int]]:
    """New-file path -> set of added/modified line numbers."""
    changed: dict[str, set[int]] = {}
    current: str | None = None
    for line in diff_text.splitlines():
        if line.startswith("+++ "):
            target = line[4:].split("\t")[0].strip()
            if target == "/dev/null":
                current = None
            else:
                current = target[2:] if target.startswith("b/") else target
            continue
        m = _HUNK_RE.match(line)
        if m and current is not None:
            start = int(m.group("start"))
            count = int(m.group("count") or "1")
            if count:
                changed.setdefault(current, set()).update(
                    range(start, start + count))
    return changed


def changed_lines(base: str, *, cwd: str | None = None) -> dict[str, set[int]]:
    """Changed ``*.py`` lines relative to ``base`` (committed + worktree).

    Paths are repository-root-relative POSIX strings, matching the
    finding paths produced when ``repro lint`` runs from the repo root.
    Raises ``ValueError`` when git cannot produce the diff (not a
    repository, unknown ref).
    """
    cmd = ["git", "diff", "--unified=0", "--no-color", base, "--", "*.py"]
    proc = subprocess.run(cmd, cwd=cwd, capture_output=True, text=True)
    if proc.returncode != 0:
        raise ValueError(
            f"git diff against {base!r} failed: "
            f"{proc.stderr.strip() or proc.returncode}")
    return parse_unified_diff(proc.stdout)
