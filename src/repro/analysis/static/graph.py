"""Whole-program project graph for the cross-module contract passes.

``repro lint``'s per-file rules see one AST at a time, which is exactly
why stringly-typed contracts (fault-site names, metric names, schema
tags, state literals) can drift: the writer and the reader live in
different files. The :class:`ProjectGraph` parses every analyzed file
once and adds the three whole-program views the XMOD passes consume:

- **module naming** — each file gets a dotted module name with any
  leading ``src``/``site-packages`` layout stripped, and dotted imports
  resolve back to project modules by exact or suffix match (so fixture
  mini-packages under ``tests/fixtures/...`` resolve their own absolute
  imports);
- **a call graph** — module-level functions and methods become
  :class:`FunctionInfo` nodes; call sites are resolved through the
  per-file import bindings, same-module names and ``self.`` receivers
  (dynamic dispatch is out of scope — unresolvable calls are simply
  absent, and the passes that ride on the call graph are documented as
  under-approximate);
- **a string index** — every string literal with its AST location, plus
  f-strings reduced to match patterns (literal fragments kept,
  interpolations wildcarded), so name-contract passes never re-walk
  the forest.

The graph is built once per ``repro lint`` invocation and memoized on
``(path, mtime)`` so repeated in-process runs (the test suite, editor
integrations) skip re-parsing unchanged trees.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.static.core import FileContext

__all__ = [
    "FunctionInfo",
    "ModuleInfo",
    "ProjectGraph",
    "build_graph",
    "StringLit",
    "fstring_pattern",
    "pattern_to_regex",
]

_STRIP_ROOTS = ("src", "site-packages")


def module_name_for(path: str) -> str:
    """Dotted module name for a file path, project layout stripped.

    ``src/repro/tt/planner.py`` -> ``repro.tt.planner``;
    ``pkg/__init__.py`` -> ``pkg``. Paths without a recognized layout
    root keep every component, and imports resolve by suffix match.
    """
    parts = list(Path(path).with_suffix("").parts)
    for root in _STRIP_ROOTS:
        if root in parts:
            parts = parts[len(parts) - parts[::-1].index(root):]
    parts = [p for p in parts if p not in ("/", "")]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(p for p in parts if p)


@dataclass
class StringLit:
    """One string literal (or f-string pattern) with its location."""

    value: str
    path: str
    line: int
    col: int
    is_pattern: bool = False  # True when wildcards came from an f-string


def fstring_pattern(node: ast.JoinedStr) -> str | None:
    """Reduce an f-string to a match pattern (``*`` per interpolation).

    ``f"cache.{key}"`` -> ``cache.*``; returns ``None`` when the
    f-string has no literal fragment at all (nothing to match on).
    """
    parts: list[str] = []
    has_literal = False
    for piece in node.values:
        if isinstance(piece, ast.Constant) and isinstance(piece.value, str):
            parts.append(piece.value)
            has_literal = has_literal or bool(piece.value)
        else:
            parts.append("*")
    return "".join(parts) if has_literal else None


def pattern_to_regex(pattern: str) -> re.Pattern:
    """Compile a ``*``-wildcard pattern to a full-match regex."""
    return re.compile(
        "".join(".*" if c == "*" else re.escape(c) for c in pattern) + r"\Z"
    )


def expand_comprehension_fstring(call: ast.Call,
                                 comp: ast.DictComp | None) -> list[str]:
    """Expand ``{k: reg.counter(f"x.{k}") for k in ("a", "b")}`` names.

    Returns the concrete metric names when the f-string's only
    interpolation is the comprehension target iterated over a literal
    tuple/list of strings; empty list when not statically expandable.
    """
    if comp is None or len(comp.generators) != 1 or not call.args:
        return []
    gen = comp.generators[0]
    if not isinstance(gen.target, ast.Name):
        return []
    if not isinstance(gen.iter, (ast.Tuple, ast.List)):
        return []
    values = []
    for elt in gen.iter.elts:
        if not (isinstance(elt, ast.Constant) and isinstance(elt.value, str)):
            return []
        values.append(elt.value)
    fstr = call.args[0]
    if not isinstance(fstr, ast.JoinedStr):
        return []
    out = []
    for v in values:
        parts = []
        for piece in fstr.values:
            if isinstance(piece, ast.Constant):
                parts.append(str(piece.value))
            elif (isinstance(piece, ast.FormattedValue)
                  and isinstance(piece.value, ast.Name)
                  and piece.value.id == gen.target.id):
                parts.append(v)
            else:
                return []
        out.append("".join(parts))
    return out


@dataclass
class FunctionInfo:
    """One function or method in the call graph."""

    qualname: str                     # module.Class.method / module.func
    module: str
    path: str
    node: ast.FunctionDef | ast.AsyncFunctionDef
    calls: list[tuple[str, ast.Call]] = field(default_factory=list)


class ModuleInfo:
    """One parsed file: context plus its slice of the call graph."""

    def __init__(self, path: str, ctx: FileContext):
        self.path = path
        self.ctx = ctx
        self.name = module_name_for(path)
        self.functions: dict[str, FunctionInfo] = {}
        self.strings: list[StringLit] = []


class ProjectGraph:
    """Parsed modules + import/call graph + string index, built once."""

    def __init__(self):
        self.modules: dict[str, ModuleInfo] = {}       # by path
        self.by_name: dict[str, ModuleInfo] = {}       # by dotted name
        self.functions: dict[str, FunctionInfo] = {}   # by qualname
        self.imports: dict[str, set[str]] = {}         # module -> modules
        self.parse_errors: list[tuple[str, str]] = []

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    def add_file(self, path: Path) -> None:
        posix = path.as_posix()
        if posix in self.modules:
            return
        try:
            ctx = FileContext(posix, path.read_text(encoding="utf-8"))
        except (SyntaxError, UnicodeDecodeError) as exc:
            self.parse_errors.append((posix, str(exc)))
            return
        info = ModuleInfo(posix, ctx)
        self.modules[posix] = info
        self.by_name[info.name] = info

    def finalize(self) -> None:
        """Resolve imports, functions and calls once every file is in."""
        for info in self.modules.values():
            self._index_functions(info)
            self._index_strings(info)
        for info in self.modules.values():
            self._resolve_imports(info)
            for fn in info.functions.values():
                self._resolve_calls(info, fn)
                self.functions[fn.qualname] = fn

    def _index_functions(self, info: ModuleInfo) -> None:
        def visit(node: ast.AST, prefix: str) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    qual = f"{prefix}.{child.name}"
                    info.functions[qual] = FunctionInfo(
                        qualname=qual, module=info.name, path=info.path,
                        node=child)
                    # Nested defs are indexed but their callees resolve
                    # through the same module-level namespace.
                    visit(child, qual)
                elif isinstance(child, ast.ClassDef):
                    visit(child, f"{prefix}.{child.name}")
        visit(info.ctx.tree, info.name)

    def _index_strings(self, info: ModuleInfo) -> None:
        for node in ast.walk(info.ctx.tree):
            if isinstance(node, ast.Constant) and isinstance(node.value, str):
                info.strings.append(StringLit(
                    node.value, info.path, node.lineno, node.col_offset))
            elif isinstance(node, ast.JoinedStr):
                pattern = fstring_pattern(node)
                if pattern is not None:
                    info.strings.append(StringLit(
                        pattern, info.path, node.lineno, node.col_offset,
                        is_pattern=True))

    def _resolve_imports(self, info: ModuleInfo) -> None:
        targets: set[str] = set()
        for node in ast.walk(info.ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    resolved = self.resolve_module(alias.name)
                    if resolved:
                        targets.add(resolved)
            elif isinstance(node, ast.ImportFrom):
                base = self._import_base(info, node)
                if base is None:
                    continue
                resolved = self.resolve_module(base)
                if resolved:
                    targets.add(resolved)
                for alias in node.names:
                    sub = self.resolve_module(f"{base}.{alias.name}")
                    if sub:
                        targets.add(sub)
        self.imports[info.name] = targets

    @staticmethod
    def _import_base(info: ModuleInfo, node: ast.ImportFrom) -> str | None:
        if not node.level:
            return node.module
        # Relative import: climb from the importing module's package.
        parts = info.name.split(".")
        if len(parts) < node.level:
            return node.module
        base_parts = parts[:len(parts) - node.level]
        if node.module:
            base_parts.append(node.module)
        return ".".join(base_parts) if base_parts else None

    def _resolve_calls(self, info: ModuleInfo, fn: FunctionInfo) -> None:
        cls_prefix = fn.qualname.rsplit(".", 1)[0]
        for node in ast.walk(fn.node):
            if not isinstance(node, ast.Call):
                continue
            callee = self._resolve_callee(info, cls_prefix, node)
            if callee is not None:
                fn.calls.append((callee, node))

    def _resolve_callee(self, info: ModuleInfo, cls_prefix: str,
                        call: ast.Call) -> str | None:
        func = call.func
        if isinstance(func, ast.Name):
            local = f"{info.name}.{func.id}"
            if local in info.functions:
                return local
            bound = info.ctx.bindings.get(func.id)
            if bound:
                return self.resolve_function_name(bound)
            return None
        if isinstance(func, ast.Attribute):
            # self.method() -> a sibling method of the enclosing class.
            if (isinstance(func.value, ast.Name) and func.value.id == "self"
                    and cls_prefix != info.name):
                candidate = f"{cls_prefix}.{func.attr}"
                if candidate in info.functions:
                    return candidate
                return None
            dotted = info.ctx.resolve(func)
            if dotted:
                return self.resolve_function_name(dotted)
        return None

    # ------------------------------------------------------------------ #
    # Lookup
    # ------------------------------------------------------------------ #

    def resolve_module(self, dotted: str | None) -> str | None:
        """Project module name for a dotted import path (suffix-aware)."""
        if not dotted:
            return None
        if dotted in self.by_name:
            return dotted
        suffix = "." + dotted
        matches = [name for name in self.by_name if name.endswith(suffix)]
        if len(matches) == 1:
            return matches[0]
        return None

    def resolve_function_name(self, dotted: str) -> str | None:
        """Qualname of a project function referred to by ``dotted``.

        ``repro.tt.planner.BatchPlanner`` style class references resolve
        to ``None`` (constructors are not in the function graph); plain
        ``module.func`` and ``module.Class.method`` chains resolve when
        the module part maps to a project module.
        """
        head, _, leaf = dotted.rpartition(".")
        if not head:
            return None
        module = self.resolve_module(head)
        if module is not None:
            candidate = f"{module}.{leaf}"
            info = self.by_name[module]
            if candidate in info.functions:
                return candidate
            return None
        # Maybe head itself is module.Class.
        mod_part, _, cls = head.rpartition(".")
        module = self.resolve_module(mod_part)
        if module is not None:
            candidate = f"{module}.{cls}.{leaf}"
            if candidate in self.by_name[module].functions:
                return candidate
        return None

    def context_for(self, path: str) -> FileContext | None:
        info = self.modules.get(path)
        return info.ctx if info else None

    def iter_modules(self) -> list[ModuleInfo]:
        return [self.modules[p] for p in sorted(self.modules)]


_GRAPH_CACHE: dict[tuple, ProjectGraph] = {}


def build_graph(files: list[Path]) -> ProjectGraph:
    """Build (or reuse) the project graph over ``files``.

    Memoized on the sorted ``(path, mtime_ns)`` signature, so repeated
    lint runs in one process — the common case in the test suite —
    parse each tree exactly once.
    """
    sig = []
    for f in sorted({Path(p).as_posix() for p in files}):
        p = Path(f)
        try:
            sig.append((f, p.stat().st_mtime_ns))
        except OSError:
            sig.append((f, -1))
    key = tuple(sig)
    cached = _GRAPH_CACHE.get(key)
    if cached is not None:
        return cached
    graph = ProjectGraph()
    for f, _ in sig:
        graph.add_file(Path(f))
    graph.finalize()
    # Bound the cache: lint runs cycle through few distinct file sets.
    if len(_GRAPH_CACHE) > 8:
        _GRAPH_CACHE.clear()
    _GRAPH_CACHE[key] = graph
    return graph
