"""Runtime numeric sanitizer: layer-boundary finite/dtype assertions.

The static rules keep corruption *sources* out of the tree; this module
catches corruption *in flight*. ReLU masks NaN to zero, mean-pooling
dilutes an Inf into a large-but-finite value — by the time the loss looks
wrong the faulty layer is long gone. :class:`NumericSanitizer` wraps the
``forward``/``backward`` of every module in a tree (instance-attribute
shadowing, so the class stays untouched and the wrap is fully reversible)
and raises :class:`NumericFaultError` naming the first layer boundary a
non-finite value or a dtype change crosses.

Used in tests under PR-1 fault injection (a planted NaN must be caught at
the first layer it crosses) and available around any training or serving
step::

    with NumericSanitizer(model) as sani:
        out = model.forward(dense, sparse)
        model.backward(grad)

Overhead is one ``np.isfinite(...).all()`` per layer per call — fine for
debugging runs and chaos tests, not free; it is a context manager, not an
always-on hook, for exactly that reason. Every boundary check increments
``sanitizer.checks`` and every caught fault ``sanitizer.trips`` in the
shared metrics registry, so chaos runs can reconcile planted versus
caught corruption.
"""

from __future__ import annotations

import numpy as np

from repro.ops.module import Module, Parameter
from repro.telemetry import emit_event, get_registry

__all__ = ["NumericFaultError", "NumericSanitizer"]


class NumericFaultError(FloatingPointError):
    """A non-finite value or dtype change crossed a layer boundary."""

    def __init__(self, layer: str, stage: str, kind: str, detail: str = ""):
        self.layer = layer
        self.stage = stage
        self.kind = kind
        msg = f"numeric fault at layer boundary {layer}.{stage}: {kind}"
        if detail:
            msg += f" ({detail})"
        super().__init__(msg)


def _walk_modules(module: Module, prefix: str) -> list[tuple[str, Module]]:
    """(path, module) pairs, depth-first, mirroring Module._collect order."""
    found: list[tuple[str, Module]] = [(prefix, module)]
    for attr, value in vars(module).items():
        if isinstance(value, Module):
            found.extend(_walk_modules(value, f"{prefix}.{attr}"))
        elif isinstance(value, (list, tuple)):
            for i, item in enumerate(value):
                if isinstance(item, Module):
                    found.extend(_walk_modules(item, f"{prefix}.{attr}[{i}]"))
    return found


class NumericSanitizer:
    """Context manager asserting finite, dtype-stable layer boundaries.

    Parameters
    ----------
    module : Module
        Root of the tree to guard; every sub-module with a ``forward`` or
        ``backward`` is wrapped.
    name : str
        Label for the root in error messages and telemetry.
    check_dtype : bool
        Also flag a layer whose output dtype changes between calls
        (``kind="dtype_drift"``) — the runtime twin of lint rule DT001.
    check_grads : bool
        After a ``backward`` that returns ``None`` (root modules
        accumulate into parameters instead of returning a grad), verify
        the module's own parameter gradients are finite.
    """

    def __init__(self, module: Module, *, name: str = "model",
                 check_dtype: bool = True, check_grads: bool = True):
        if not isinstance(module, Module):
            raise TypeError(f"NumericSanitizer guards Module trees, got {type(module)!r}")
        self.module = module
        self.name = name
        self.check_dtype = check_dtype
        self.check_grads = check_grads
        self._wrapped: list[tuple[Module, str]] = []
        self._dtypes: dict[tuple[str, str], np.dtype] = {}
        reg = get_registry()
        self._checks = reg.counter("sanitizer.checks")
        self._trips = reg.counter("sanitizer.trips")

    # ------------------------------------------------------------------ #

    def __enter__(self) -> NumericSanitizer:
        for path, mod in _walk_modules(self.module, self.name):
            for stage in ("forward", "backward"):
                fn = getattr(mod, stage, None)
                if fn is None or stage in vars(mod):
                    # Missing, or already an instance attribute (another
                    # sanitizer or a test stub) — don't stack wrappers.
                    continue
                setattr(mod, stage, self._wrap(path, stage, mod, fn))
                self._wrapped.append((mod, stage))
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        for mod, stage in self._wrapped:
            # The wrapper lives in the instance __dict__; deleting it
            # re-exposes the class method untouched.
            if stage in vars(mod):
                delattr(mod, stage)
        self._wrapped.clear()
        return False

    # ------------------------------------------------------------------ #

    def _wrap(self, path: str, stage: str, mod: Module, fn):
        def wrapped(*args, **kwargs):
            out = fn(*args, **kwargs)
            self._check_output(path, stage, mod, out)
            return out

        wrapped.__name__ = f"sanitized_{stage}"
        return wrapped

    def _check_output(self, path: str, stage: str, mod: Module, out) -> None:
        arrays: list[tuple[str, np.ndarray]] = []
        if isinstance(out, np.ndarray):
            arrays.append(("output", out))
        elif isinstance(out, tuple):
            arrays.extend(self._flatten(out))
        elif out is None and stage == "backward" and self.check_grads:
            # Root-style backward: gradient went into this module's own
            # parameters, so inspect those instead.
            for p in self._own_parameters(mod):
                arrays.append((f"grad:{p.name}", p.grad))
        for label, arr in arrays:
            self._checks.inc()
            if arr.dtype.kind not in "fc":
                continue
            if not np.isfinite(arr).all():
                kind = "nan" if np.isnan(arr).any() else "inf"
                self._trip(path, stage, kind, label)
            if self.check_dtype:
                key = (path, stage if label == "output" else f"{stage}:{label}")
                expected = self._dtypes.setdefault(key, arr.dtype)
                if arr.dtype != expected:
                    self._trip(path, stage, "dtype_drift",
                               f"{label}: {expected} -> {arr.dtype}")

    @staticmethod
    def _flatten(out: tuple) -> list[tuple[str, np.ndarray]]:
        arrays = []
        for i, item in enumerate(out):
            if isinstance(item, np.ndarray):
                arrays.append((f"output[{i}]", item))
            elif isinstance(item, (list, tuple)):
                for j, sub in enumerate(item):
                    if isinstance(sub, np.ndarray):
                        arrays.append((f"output[{i}][{j}]", sub))
        return arrays

    @staticmethod
    def _own_parameters(mod: Module) -> list[Parameter]:
        own = []
        for value in vars(mod).values():
            if isinstance(value, Parameter):
                own.append(value)
            elif isinstance(value, (list, tuple)):
                own.extend(v for v in value if isinstance(v, Parameter))
        return own

    def _trip(self, layer: str, stage: str, kind: str, detail: str) -> None:
        self._trips.inc()
        emit_event("sanitizer.trip", layer=layer, stage=stage, kind=kind,
                   detail=detail)
        raise NumericFaultError(layer, stage, kind, detail)
