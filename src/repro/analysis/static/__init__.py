"""Project-specific static analysis (``repro lint``) and runtime sanitizer.

The TT kernels and the LFU cache only reproduce the paper faithfully if
the codebase stays deterministic, dtype-consistent and free of silent
numeric corruption. This package enforces those invariants twice:

- at commit time, with an AST linter (:mod:`~repro.analysis.static.rules`,
  driven by :mod:`~repro.analysis.static.runner`) whose rules encode the
  project's RNG, dtype, determinism, exception-hygiene and mutation-safety
  contracts (docs/STATIC_ANALYSIS.md);
- at run time, with :class:`~repro.analysis.static.sanitizer.NumericSanitizer`,
  a context manager that asserts finite outputs and stable dtypes at every
  ``Module`` layer boundary.
"""

from repro.analysis.static.core import FileContext, Finding, Rule, all_rules
from repro.analysis.static.runner import LintConfig, LintReport, lint_paths
from repro.analysis.static.sanitizer import NumericFaultError, NumericSanitizer

__all__ = [
    "Finding",
    "FileContext",
    "Rule",
    "all_rules",
    "LintConfig",
    "LintReport",
    "lint_paths",
    "NumericSanitizer",
    "NumericFaultError",
]
