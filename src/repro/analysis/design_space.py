"""Design-space sweep: accuracy vs memory across TT settings (Fig. 1).

Each design point trains a (scaled) DLRM with one combination of
(TT-rank, embedding dimension, number of compressed tables) and records
validation accuracy against embedding memory. The Pareto frontier over
these points is Fig. 1's black curve.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.pareto import pareto_frontier
from repro.data.specs import DatasetSpec
from repro.data.synthetic import SyntheticCTRDataset
from repro.models.config import DLRMConfig, TTConfig
from repro.models.ttrec import build_dlrm, build_ttrec
from repro.training.trainer import Trainer

__all__ = ["DesignPoint", "sweep_design_space", "frontier"]


@dataclass(frozen=True)
class DesignPoint:
    """One trained configuration in the (memory, accuracy) plane."""

    rank: int
    emb_dim: int
    num_tt_tables: int
    embedding_params: int
    accuracy: float
    bce: float

    @property
    def memory_bytes(self) -> int:
        return self.embedding_params * 4


def _train_point(spec: DatasetSpec, emb_dim: int, rank: int, num_tt: int, *,
                 train_iters: int, eval_iters: int, batch_size: int,
                 seed: int, min_rows: int) -> DesignPoint:
    ds = SyntheticCTRDataset(spec, seed=seed, noise=0.8)
    cfg = DLRMConfig(
        table_sizes=spec.table_sizes, emb_dim=emb_dim,
        bottom_mlp=(64, 32), top_mlp=(64, 32),
    )
    if num_tt == 0:
        model = build_dlrm(cfg, rng=seed)
    else:
        model = build_ttrec(cfg, num_tt_tables=num_tt, tt=TTConfig(rank=rank),
                            min_rows=min_rows, rng=seed)
    trainer = Trainer(model, lr=0.1)
    trainer.train(ds.batches(batch_size, train_iters))
    ev = trainer.evaluate(ds.batches(batch_size * 4, eval_iters))
    return DesignPoint(
        rank=rank, emb_dim=emb_dim, num_tt_tables=num_tt,
        embedding_params=model.embedding_parameters(),
        accuracy=ev.accuracy, bce=ev.bce,
    )


def sweep_design_space(spec: DatasetSpec, *, ranks=(4, 8, 16, 32),
                       emb_dims=(8, 16), table_counts=(0, 3, 5, 7),
                       train_iters: int = 150, eval_iters: int = 8,
                       batch_size: int = 128, seed: int = 0,
                       min_rows: int = 500) -> list[DesignPoint]:
    """Train the full grid and return every design point.

    ``num_tt_tables == 0`` rows are the uncompressed baselines (one per
    embedding dimension; rank is irrelevant there and fixed to 0).
    """
    points: list[DesignPoint] = []
    for emb_dim in emb_dims:
        points.append(_train_point(
            spec, emb_dim, 0, 0, train_iters=train_iters, eval_iters=eval_iters,
            batch_size=batch_size, seed=seed, min_rows=min_rows,
        ))
        for num_tt in table_counts:
            if num_tt == 0:
                continue
            for rank in ranks:
                points.append(_train_point(
                    spec, emb_dim, rank, num_tt, train_iters=train_iters,
                    eval_iters=eval_iters, batch_size=batch_size, seed=seed,
                    min_rows=min_rows,
                ))
    return points


def frontier(points: list[DesignPoint]) -> list[DesignPoint]:
    """Pareto-optimal subset: minimal memory, maximal accuracy (Fig. 1)."""
    return pareto_frontier(points, cost=lambda p: p.memory_bytes,
                           value=lambda p: p.accuracy)
