"""Communication cost model for the paper's §5 parallelism claim.

The paper argues: *"the uncompressed baseline has to run on CPUs or
multiple GPUs via model parallelism (which requires extra all-to-all
communication overheads) while TT-Rec enables recommendation training on
GPUs with data parallelism."* This module quantifies that with an
analytic alpha-beta communication model:

- **Model parallelism (dense DLRM):** embedding tables are sharded across
  devices because no device fits them. Every iteration moves each
  device's pooled embedding outputs to every other device (forward
  all-to-all) and the corresponding gradients back (backward all-to-all),
  plus an allreduce of the (replicated) MLP gradients.
- **Data parallelism (TT-Rec):** the whole model fits on every device;
  the only communication is one gradient allreduce over TT cores + MLPs.

The model is deliberately simple (bandwidth/latency per link, ring
collectives) — the same level of abstraction the paper's claim operates
at. It answers "does the model fit?" with real per-device memory
arithmetic and compares bytes-on-the-wire per iteration.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.memory import tt_shape_for_table
from repro.data.specs import DatasetSpec

__all__ = ["ClusterSpec", "IterationCost", "model_parallel_cost",
           "data_parallel_cost", "compare_parallelism"]


@dataclass(frozen=True)
class ClusterSpec:
    """A homogeneous accelerator cluster with an alpha-beta interconnect."""

    num_devices: int
    device_memory_gb: float = 32.0
    link_bandwidth_gbps: float = 100.0  # per-direction, e.g. NVLink-ish
    link_latency_us: float = 5.0

    def __post_init__(self):
        if self.num_devices < 1:
            raise ValueError(f"num_devices must be >= 1, got {self.num_devices}")
        if self.device_memory_gb <= 0 or self.link_bandwidth_gbps <= 0:
            raise ValueError("memory and bandwidth must be positive")

    def transfer_us(self, num_bytes: float) -> float:
        """alpha-beta time for one point-to-point message."""
        return self.link_latency_us + num_bytes * 8 / (self.link_bandwidth_gbps * 1e3)


@dataclass(frozen=True)
class IterationCost:
    """Per-iteration communication of one parallelization strategy."""

    strategy: str
    fits_per_device: bool
    per_device_model_bytes: int
    comm_bytes: int
    comm_time_us: float

    def summary(self) -> str:
        fit = "fits" if self.fits_per_device else "DOES NOT FIT"
        return (
            f"{self.strategy}: {self.per_device_model_bytes / 1e9:.2f} GB/device "
            f"({fit}), {self.comm_bytes / 1e6:.2f} MB/iter on the wire, "
            f"~{self.comm_time_us / 1e3:.2f} ms/iter comm"
        )


def _mlp_params(emb_dim: int, num_tables: int, num_dense: int = 13,
                bottom=(512, 256, 64), top=(512, 256)) -> int:
    sizes_b = [num_dense, *bottom, emb_dim]
    f = num_tables + 1
    inter = emb_dim + f * (f - 1) // 2
    sizes_t = [inter, *top, 1]
    total = 0
    for sizes in (sizes_b, sizes_t):
        for a, b in zip(sizes, sizes[1:]):
            total += a * b + b
    return total


def model_parallel_cost(spec: DatasetSpec, cluster: ClusterSpec, *,
                        batch_size: int, dtype_bytes: int = 4) -> IterationCost:
    """Dense DLRM with tables sharded round-robin across devices.

    All-to-all volume per direction: every sample's pooled vector for every
    table crosses the wire unless the table lives on the consuming device —
    ``(1 - 1/N)`` of ``B * T * D`` vectors; doubled for forward + backward.
    The MLP allreduce moves ``2 * (N-1)/N * mlp_params`` per device (ring).
    """
    n = cluster.num_devices
    emb_bytes = spec.total_rows() * spec.emb_dim * dtype_bytes
    mlp_bytes = _mlp_params(spec.emb_dim, spec.num_tables) * dtype_bytes
    per_device = emb_bytes / n + mlp_bytes  # sharded tables + replicated MLPs

    pooled_bytes = batch_size * spec.num_tables * spec.emb_dim * dtype_bytes
    a2a = 2 * pooled_bytes * (n - 1) / n if n > 1 else 0  # fwd + bwd
    allreduce = 2 * mlp_bytes * (n - 1) / n if n > 1 else 0
    comm_bytes = int(a2a + allreduce)
    # Ring schedule: a2a takes (n-1) steps of (volume/n) plus the ring
    # allreduce's 2(n-1) steps.
    steps = (3 * (n - 1)) if n > 1 else 0
    per_step = comm_bytes / max(steps, 1)
    comm_time = sum(cluster.transfer_us(per_step) for _ in range(steps))
    return IterationCost(
        strategy=f"model-parallel dense (N={n})",
        fits_per_device=per_device <= cluster.device_memory_gb * 1e9,
        per_device_model_bytes=int(per_device),
        comm_bytes=comm_bytes,
        comm_time_us=comm_time,
    )


def data_parallel_cost(spec: DatasetSpec, cluster: ClusterSpec, *,
                       num_tt_tables: int, rank: int,
                       dtype_bytes: int = 4) -> IterationCost:
    """TT-Rec replicated on every device; one ring allreduce per iteration.

    Only *touched* dense-table rows produce gradients, but the worst case
    (allreduce of all replicated parameters) is charged — TT-Rec's story
    survives even the pessimistic accounting.
    """
    n = cluster.num_devices
    compressed = set(spec.largest(num_tt_tables))
    params = _mlp_params(spec.emb_dim, spec.num_tables)
    for i, size in enumerate(spec.table_sizes):
        if i in compressed:
            params += tt_shape_for_table(size, spec.emb_dim, rank).num_params()
        else:
            params += size * spec.emb_dim
    model_bytes = params * dtype_bytes
    allreduce = 2 * model_bytes * (n - 1) / n if n > 1 else 0
    comm_bytes = int(allreduce)
    steps = 2 * (n - 1) if n > 1 else 0
    per_step = comm_bytes / max(steps, 1)
    comm_time = sum(cluster.transfer_us(per_step) for _ in range(steps))
    return IterationCost(
        strategy=f"data-parallel TT-Rec (N={n}, {num_tt_tables} tables, R={rank})",
        fits_per_device=model_bytes <= cluster.device_memory_gb * 1e9,
        per_device_model_bytes=model_bytes,
        comm_bytes=comm_bytes,
        comm_time_us=comm_time,
    )


def compare_parallelism(spec: DatasetSpec, cluster: ClusterSpec, *,
                        batch_size: int = 2048, num_tt_tables: int = 7,
                        rank: int = 32) -> tuple[IterationCost, IterationCost]:
    """(model-parallel dense, data-parallel TT-Rec) costs side by side."""
    return (
        model_parallel_cost(spec, cluster, batch_size=batch_size),
        data_parallel_cost(spec, cluster, num_tt_tables=num_tt_tables, rank=rank),
    )
