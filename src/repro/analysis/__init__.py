"""Analyses behind the paper's tables and figures.

- :mod:`~repro.analysis.memory` — compression arithmetic (Table 2, Fig. 5,
  the 117x/112x headline numbers). Exact, no training needed.
- :mod:`~repro.analysis.distributions` — product-of-RV PDFs and KL
  divergences (Fig. 3, Table 1 analytics).
- :mod:`~repro.analysis.locality` — frequently-accessed-row stability
  traces (Fig. 9).
- :mod:`~repro.analysis.design_space` / :mod:`~repro.analysis.pareto` —
  accuracy-vs-memory sweeps and Pareto frontiers (Fig. 1).
"""

from repro.analysis.autotune import CompressionPlan, plan_compression
from repro.analysis.memory import (
    model_size_summary,
    table2_rows,
    tt_shape_for_table,
)
from repro.analysis.pareto import pareto_frontier

__all__ = [
    "tt_shape_for_table",
    "table2_rows",
    "model_size_summary",
    "pareto_frontier",
    "plan_compression",
    "CompressionPlan",
]
