"""Frequent-row set stability over a training run (Fig. 9).

The paper counts cumulative row-access frequencies every 3% of training
progress, takes the top-10k set at each checkpoint, and plots the fraction
of the set that changed between consecutive checkpoints. A rapidly
shrinking difference means the hot set stabilises early — the property
that lets the semi-dynamic cache skip periodic re-warming.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["StabilityTrace", "top_set_stability"]


@dataclass(frozen=True)
class StabilityTrace:
    """Per-checkpoint change fractions of the top-k set."""

    checkpoints: np.ndarray  # fraction of the stream consumed, (C,)
    change_fraction: np.ndarray  # |top_k(t) \ top_k(t-1)| / k, (C-1,)
    k: int

    def stabilization_point(self, threshold: float = 0.01) -> float:
        """Earliest stream fraction after which changes stay below
        ``threshold`` — the "stabilises at ~5% / ~50%" numbers of Fig. 9."""
        below = self.change_fraction <= threshold
        for i in range(below.size):
            if below[i:].all():
                return float(self.checkpoints[i + 1])
        return 1.0


def top_set_stability(stream: np.ndarray, *, k: int = 10_000,
                      checkpoint_fraction: float = 0.03) -> StabilityTrace:
    """Measure top-k set churn over an access stream (Fig. 9 methodology).

    Parameters
    ----------
    stream:
        1-D array of row ids in access order (one table's training trace).
    k:
        Hot-set size (the paper uses 10k rows).
    checkpoint_fraction:
        Evaluate the cumulative top-k every this fraction of the stream.
    """
    stream = np.asarray(stream, dtype=np.int64).reshape(-1)
    if stream.size == 0:
        raise ValueError("empty access stream")
    if not (0.0 < checkpoint_fraction <= 1.0):
        raise ValueError(f"checkpoint_fraction must be in (0, 1], got {checkpoint_fraction}")
    n_rows = int(stream.max()) + 1
    k = min(k, n_rows)
    counts = np.zeros(n_rows, dtype=np.int64)
    step = max(1, int(round(stream.size * checkpoint_fraction)))
    boundaries = list(range(step, stream.size + 1, step))
    if boundaries[-1] != stream.size:
        boundaries.append(stream.size)

    checkpoints = []
    sets: list[np.ndarray] = []
    prev = 0
    for b in boundaries:
        chunk = stream[prev:b]
        counts += np.bincount(chunk, minlength=n_rows)
        prev = b
        # top-k by cumulative count, ties broken by id for determinism
        top = np.argsort(-counts, kind="stable")[:k]
        sets.append(np.sort(top))
        checkpoints.append(b / stream.size)

    changes = []
    for prev_set, cur_set in zip(sets[:-1], sets[1:]):
        new = np.setdiff1d(cur_set, prev_set, assume_unique=True)
        changes.append(new.size / k)
    return StabilityTrace(
        checkpoints=np.asarray(checkpoints),
        change_fraction=np.asarray(changes),
        k=k,
    )
