"""Pareto-frontier extraction for the design-space study (Fig. 1)."""

from __future__ import annotations

from collections.abc import Callable, Sequence
from typing import TypeVar

__all__ = ["pareto_frontier"]

T = TypeVar("T")


def pareto_frontier(points: Sequence[T], *, cost: Callable[[T], float],
                    value: Callable[[T], float]) -> list[T]:
    """Points not dominated under (minimise ``cost``, maximise ``value``).

    A point dominates another if it costs no more *and* is worth at least
    as much, strictly better in one of the two. Returned in ascending cost
    order — the black curve of Fig. 1.
    """
    ordered = sorted(points, key=lambda p: (cost(p), -value(p)))
    frontier: list[T] = []
    best = float("-inf")
    for p in ordered:
        v = value(p)
        if v > best:
            frontier.append(p)
            best = v
    return frontier
