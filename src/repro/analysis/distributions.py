"""Distribution studies behind Fig. 3 and Table 1.

Fig. 3 (left): the product of d i.i.d. Uniform or Gaussian variables piles
up near zero — a poor match for the uniform initialization DLRM wants.
Fig. 3 (right): entries of a table materialised from sampled-Gaussian
cores (Algorithm 3) track the optimal ``N(0, 1/3n)`` instead.

Table 1: accuracy of the uncompressed DLRM under different init
distributions is ordered by ``KL(uniform || candidate)``; the KL column is
analytic (:func:`repro.tt.initialization.kl_uniform_gaussian`) and the
accuracy column is measured by the Table 1 bench.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.tt.initialization import (
    CORE_INIT_STRATEGIES,
    kl_uniform_gaussian,
    optimal_gaussian_for_uniform,
)
from repro.tt.shapes import TTShape
from repro.utils.seeding import as_rng

__all__ = [
    "product_of_iid_samples",
    "pdf_histogram",
    "materialized_entry_samples",
    "Table1Row",
    "table1_kl_rows",
]


def product_of_iid_samples(dist: str, d: int, n_samples: int, *,
                           rng: int | None | np.random.Generator = None) -> np.ndarray:
    """Monte-Carlo samples of the product of ``d`` i.i.d. variables.

    ``dist`` is ``"uniform01"`` (Uniform(0,1), Fig. 3 left), ``"gaussian"``
    (N(0,1), Fig. 3 left) or ``"uniform"`` (Uniform(-1,1)).
    """
    rng = as_rng(rng)
    if d < 1:
        raise ValueError(f"d must be >= 1, got {d}")
    if dist == "uniform01":
        draws = rng.uniform(0.0, 1.0, size=(d, n_samples))
    elif dist == "uniform":
        draws = rng.uniform(-1.0, 1.0, size=(d, n_samples))
    elif dist == "gaussian":
        draws = rng.normal(0.0, 1.0, size=(d, n_samples))
    else:
        raise ValueError(f"unknown dist {dist!r}")
    return np.prod(draws, axis=0)


def pdf_histogram(samples: np.ndarray, *, bins: int = 101,
                  value_range: tuple[float, float] | None = None
                  ) -> tuple[np.ndarray, np.ndarray]:
    """Normalised density histogram ``(bin_centers, density)``."""
    samples = np.asarray(samples, dtype=np.float64).reshape(-1)
    if samples.size == 0:
        raise ValueError("no samples")
    hist, edges = np.histogram(samples, bins=bins, range=value_range, density=True)
    centers = 0.5 * (edges[:-1] + edges[1:])
    return centers, hist


def materialized_entry_samples(shape: TTShape, strategy: str, *,
                               rng: int | None | np.random.Generator = None,
                               max_entries: int = 200_000) -> np.ndarray:
    """Entries of a table materialised from cores under an init strategy.

    This is the quantity Fig. 3 (right) plots for ``sampled_gaussian``; its
    empirical variance should approximate ``1/(3 * num_rows)``.
    """
    from repro.tt.decomposition import tt_reconstruct

    init = CORE_INIT_STRATEGIES[strategy]
    cores = init(shape, rng=rng)
    table = tt_reconstruct(cores, shape)
    entries = table.reshape(-1)
    if entries.size > max_entries:
        entries = as_rng(rng).choice(entries, size=max_entries, replace=False)
    return entries


@dataclass(frozen=True)
class Table1Row:
    """Analytic portion of one Table 1 line."""

    label: str
    kind: str  # "uniform" | "gaussian"
    sigma2: float | None  # None for the uniform row
    kl: float


def table1_kl_rows(n: int) -> list[Table1Row]:
    """The six initialization distributions of Table 1 with analytic KL.

    ``n`` is the embedding-table row count parameterising the DLRM default
    ``Uniform(-1/sqrt(n), 1/sqrt(n))``.
    """
    a, b = -1.0 / np.sqrt(n), 1.0 / np.sqrt(n)
    mu_star, sigma2_star = optimal_gaussian_for_uniform(a, b)
    assert mu_star == 0.0
    candidates: list[tuple[str, float | None]] = [
        ("uniform(-1/sqrt(n), 1/sqrt(n))", None),
        ("N(0, 1)", 1.0),
        ("N(0, 1/2)", 0.5),
        ("N(0, 1/8)", 0.125),
        ("N(0, 1/3n)", sigma2_star),
        ("N(0, 1/9n^2)", 1.0 / (9.0 * n * n)),
    ]
    rows = []
    for label, sigma2 in candidates:
        if sigma2 is None:
            rows.append(Table1Row(label=label, kind="uniform", sigma2=None, kl=0.0))
        else:
            rows.append(Table1Row(
                label=label, kind="gaussian", sigma2=sigma2,
                kl=kl_uniform_gaussian(a, b, 0.0, sigma2),
            ))
    return rows
