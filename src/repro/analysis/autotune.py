"""Automatic TT-rank selection under a memory budget (the Fig. 1 frontier,
solved instead of swept).

Given a set of embedding tables and a total parameter budget, choose which
tables to compress and at what ranks. The heuristic mirrors how the
paper's authors navigate the design space by hand:

1. Compression priority is by table size — the largest tables buy the most
   memory per accuracy point (they are also the most over-parameterised).
2. Within a table, rank is the knob: higher rank = better approximation,
   more parameters. We maximise the *minimum* rank across compressed
   tables subject to the budget, since accuracy is gated by the
   worst-approximated table (paper §6.2's rank-sweep behaviour).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.memory import tt_shape_for_table
from repro.tt.shapes import TTShape

__all__ = ["TablePlan", "CompressionPlan", "plan_compression"]


@dataclass(frozen=True)
class TablePlan:
    """Decision for one table."""

    table_index: int
    num_rows: int
    compress: bool
    rank: int | None
    params: int

    @property
    def dense_params_equivalent(self) -> int:
        return self.params if not self.compress else self.params


@dataclass(frozen=True)
class CompressionPlan:
    """Full-model compression decision."""

    tables: tuple[TablePlan, ...]
    emb_dim: int

    def total_params(self) -> int:
        return sum(t.params for t in self.tables)

    def baseline_params(self) -> int:
        return sum(t.num_rows * self.emb_dim for t in self.tables)

    def compression_ratio(self) -> float:
        return self.baseline_params() / self.total_params()

    def compressed_indices(self) -> list[int]:
        return [t.table_index for t in self.tables if t.compress]

    def rank_for(self, table_index: int) -> int | None:
        for t in self.tables:
            if t.table_index == table_index:
                return t.rank
        raise KeyError(f"no table {table_index} in plan")


def _tt_params(num_rows: int, emb_dim: int, rank: int) -> int:
    return tt_shape_for_table(num_rows, emb_dim, rank).num_params()


def plan_compression(table_sizes: tuple[int, ...], emb_dim: int, *,
                     budget_params: int, min_rows: int = 10_000,
                     candidate_ranks: tuple[int, ...] = (2, 4, 8, 16, 32, 64, 128)
                     ) -> CompressionPlan:
    """Choose tables and ranks to fit ``budget_params`` total parameters.

    Strategy: tables below ``min_rows`` stay dense (compressing them costs
    parameters). Among compressible tables, compress from the largest down
    until the budget is satisfiable, then binary-search the largest
    *uniform* candidate rank that fits. Raises if even rank
    ``candidate_ranks[0]`` on every compressible table cannot meet the
    budget.
    """
    if budget_params < 1:
        raise ValueError(f"budget_params must be >= 1, got {budget_params}")
    if not candidate_ranks or list(candidate_ranks) != sorted(candidate_ranks):
        raise ValueError("candidate_ranks must be a non-empty ascending tuple")

    order = sorted(range(len(table_sizes)), key=lambda i: -table_sizes[i])
    compressible = [i for i in order if table_sizes[i] >= min_rows]
    dense_always = [i for i in range(len(table_sizes)) if i not in compressible]
    dense_floor = sum(table_sizes[i] * emb_dim for i in dense_always)

    def plan_cost(compressed: set[int], rank: int) -> int:
        total = dense_floor
        for i in compressible:
            if i in compressed:
                total += _tt_params(table_sizes[i], emb_dim, rank)
            else:
                total += table_sizes[i] * emb_dim
        return total

    # Grow the compressed set largest-first until the budget is reachable
    # at the *highest* rank possible; prefer fewer compressed tables.
    chosen: set[int] = set()
    best: tuple[set[int], int] | None = None
    for i in compressible:
        chosen = chosen | {i}
        # largest candidate rank that fits with this set
        fitting = [r for r in candidate_ranks if plan_cost(chosen, r) <= budget_params]
        if fitting:
            best = (set(chosen), fitting[-1])
            break
    else:
        if not compressible or best is None:
            raise ValueError(
                f"budget of {budget_params} parameters is unreachable: even "
                f"compressing every table >= {min_rows} rows at rank "
                f"{candidate_ranks[0]} needs "
                f"{plan_cost(set(compressible), candidate_ranks[0])} parameters"
            )

    compressed_set, rank = best
    # With the set fixed, push the rank as high as the budget allows while
    # also trying to *extend* the set if a larger rank becomes affordable
    # by compressing more tables (more tables -> more savings -> more rank).
    for extra in compressible:
        if extra in compressed_set:
            continue
        trial = compressed_set | {extra}
        fitting = [r for r in candidate_ranks if plan_cost(trial, r) <= budget_params]
        if fitting and fitting[-1] > rank:
            compressed_set, rank = trial, fitting[-1]

    tables = []
    for i, size in enumerate(table_sizes):
        if i in compressed_set:
            tables.append(TablePlan(i, size, True, rank,
                                    _tt_params(size, emb_dim, rank)))
        else:
            tables.append(TablePlan(i, size, False, None, size * emb_dim))
    return CompressionPlan(tables=tuple(tables), emb_dim=emb_dim)
