"""Model-size accounting: Table 2, Fig. 5 and the headline compression.

All quantities here are exact arithmetic over the real Criteo
cardinalities — no training involved — so this module reproduces the
paper's memory numbers precisely:

- Table 2's TT parameter counts and per-table memory reductions,
- Fig. 5's model sizes for TT-Emb of 3/5/7 at rank 32,
- the 117x (Kaggle) / 112x (Terabyte) overall reductions of §6.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.specs import PAPER_KAGGLE_TT_SHAPES, DatasetSpec
from repro.tt.shapes import TTShape

__all__ = [
    "tt_shape_for_table",
    "Table2Row",
    "table2_rows",
    "ModelSizeSummary",
    "model_size_summary",
]


def tt_shape_for_table(num_rows: int, emb_dim: int, rank: int, *,
                       d: int = 3, prefer_paper: bool = True) -> TTShape:
    """TT shape for a table, using the paper's published factorizations
    (Table 2) when available, else the automatic balanced factorization."""
    if prefer_paper and emb_dim == 16:
        entry = PAPER_KAGGLE_TT_SHAPES.get(num_rows)
        if entry is not None:
            row_factors, col_factors = entry
            return TTShape.with_uniform_rank(num_rows, emb_dim, row_factors,
                                             col_factors, rank)
    return TTShape.suggested(num_rows, emb_dim, d=d, rank=rank)


@dataclass(frozen=True)
class Table2Row:
    """One line of paper Table 2 for one (table, rank) pair."""

    num_rows: int
    emb_dim: int
    core_shapes: tuple[tuple[int, int, int, int], ...]
    rank: int
    tt_params: int
    memory_reduction: float


def table2_rows(spec: DatasetSpec, *, num_tables: int = 7,
                ranks: tuple[int, ...] = (16, 32, 64)) -> list[Table2Row]:
    """Regenerate paper Table 2: TT decompositions of the largest tables."""
    rows: list[Table2Row] = []
    for idx in spec.largest(num_tables):
        size = spec.table_sizes[idx]
        for rank in ranks:
            shape = tt_shape_for_table(size, spec.emb_dim, rank)
            rows.append(Table2Row(
                num_rows=size,
                emb_dim=spec.emb_dim,
                core_shapes=tuple(shape.paper_core_shape(k) for k in range(shape.d)),
                rank=rank,
                tt_params=shape.num_params(),
                memory_reduction=shape.compression_ratio(),
            ))
    return rows


@dataclass(frozen=True)
class ModelSizeSummary:
    """Embedding-layer memory before/after compressing the N largest tables."""

    spec_name: str
    num_tt_tables: int
    rank: int
    baseline_bytes: int
    compressed_bytes: int

    @property
    def reduction(self) -> float:
        return self.baseline_bytes / self.compressed_bytes

    @property
    def baseline_gb(self) -> float:
        return self.baseline_bytes / 1024 ** 3

    @property
    def compressed_mb(self) -> float:
        return self.compressed_bytes / 1024 ** 2


def model_size_summary(spec: DatasetSpec, *, num_tt_tables: int, rank: int,
                       dtype_bytes: int = 4, mlp_params: int = 0) -> ModelSizeSummary:
    """Total model size with the ``num_tt_tables`` largest tables in TT form.

    ``mlp_params`` optionally folds the (tiny) MLP towers into both sides;
    the paper's Fig. 5 bars are embedding-dominated so the default omits
    them.
    """
    compressed = set(spec.largest(num_tt_tables))
    baseline = spec.total_rows() * spec.emb_dim + mlp_params
    after = mlp_params
    for i, size in enumerate(spec.table_sizes):
        if i in compressed:
            after += tt_shape_for_table(size, spec.emb_dim, rank).num_params()
        else:
            after += size * spec.emb_dim
    return ModelSizeSummary(
        spec_name=spec.name,
        num_tt_tables=num_tt_tables,
        rank=rank,
        baseline_bytes=baseline * dtype_bytes,
        compressed_bytes=after * dtype_bytes,
    )
