"""The global health plane: heartbeat tracking across all shards.

One :class:`HealthPlane` instance watches every
:class:`~repro.sharding.worker.ShardWorker` through periodic heartbeat
probes on the router's deterministic clock. A shard that misses
``miss_threshold`` consecutive probes is **marked down** — so the
detection window is bounded by ``miss_threshold × heartbeat_interval_ms``
of simulated time, an invariant the chaos tests assert. The router also
*fail-fast* marks a shard whose worker refuses a dispatch outright
(crash), and marks one down on transient dispatch faults only once the
per-shard breaker opens, which is why measured failover latency is
usually far below the heartbeat window: the health plane is the
backstop for silent deaths (``shard.hang`` with no traffic), not the
primary detector.

The plane only tracks and reports; the routing decisions (replica
failover, prior-row degradation, restart scheduling) belong to
:class:`~repro.sharding.router.ShardRouter`. Under its metric ``prefix``
it exports ``<prefix>.heartbeat_rounds`` (probe rounds run), per-shard
``<prefix>.heartbeat_misses`` counters and an ``<prefix>.up`` gauge
(currently-up member count).
"""

from __future__ import annotations

from repro.telemetry import get_registry, traced_event

__all__ = ["HealthPlane"]


class HealthPlane:
    """Heartbeat bookkeeping and up/down verdicts for the shard fleet.

    Parameters
    ----------
    num_shards:
        Fleet size.
    heartbeat_interval_ms:
        Simulated milliseconds between probe rounds.
    miss_threshold:
        Consecutive missed probes before a shard is marked down.
    prefix:
        Namespace of the plane's metrics and events. The default
        (``"shard"``) keeps the serving tier's names; the elastic
        training supervisor passes ``"dist.worker"`` so the same plane
        reports ``dist.worker.heartbeat_*`` / ``dist.worker.marked_down``
        without colliding with the serving fleet.
    """

    def __init__(self, num_shards: int, *,
                 heartbeat_interval_ms: float = 50.0,
                 miss_threshold: int = 3, prefix: str = "shard"):
        if num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {num_shards}")
        if miss_threshold < 1:
            raise ValueError(
                f"miss_threshold must be >= 1, got {miss_threshold}"
            )
        if heartbeat_interval_ms <= 0:
            raise ValueError("heartbeat_interval_ms must be > 0")
        self.num_shards = num_shards
        self.heartbeat_interval_ms = heartbeat_interval_ms
        self.miss_threshold = miss_threshold
        self.prefix = prefix
        # Label key for per-unit metrics/events: "shard" for the serving
        # fleet, the prefix's last component otherwise ("dist.worker" ->
        # "worker").
        self._label = "shard" if prefix == "shard" else prefix.rsplit(".", 1)[-1]
        self.verdict = ["up"] * num_shards        # up | down | rewarming
        self.misses = [0] * num_shards            # consecutive misses
        self.last_seen = [0.0] * num_shards       # last heartbeat reply (ms)
        self.marked_down_at = [None] * num_shards
        self._next_probe_ms = 0.0
        reg = get_registry()
        self._probe_rounds = reg.counter(f"{prefix}.heartbeat_rounds")
        self._miss_counters = [
            reg.counter(f"{prefix}.heartbeat_misses",
                        **{self._label: str(s)})
            for s in range(num_shards)
        ]
        self._up_gauge = reg.gauge(f"{prefix}.up")
        self._up_gauge.set(num_shards)

    # ------------------------------------------------------------------ #
    # Detection window
    # ------------------------------------------------------------------ #

    @property
    def detection_window_ms(self) -> float:
        """Worst-case simulated time from silent death to marked-down."""
        return self.miss_threshold * self.heartbeat_interval_ms

    def due(self, now: float) -> bool:
        return now >= self._next_probe_ms

    def tick(self, now: float, workers) -> list[int]:
        """Run one probe round if due; returns shards newly marked down."""
        if not self.due(now):
            return []
        self._next_probe_ms = now + self.heartbeat_interval_ms
        self._probe_rounds.inc()
        newly_down = []
        for s, worker in enumerate(workers):
            reply = worker.heartbeat(now)
            if reply is not None:
                self.misses[s] = 0
                self.last_seen[s] = now
                state = reply["state"]
                if state == "rewarming":
                    self.verdict[s] = "rewarming"
                elif self.verdict[s] != "up" and state == "up":
                    # A heartbeat alone never readmits: the router drives
                    # readmission through the re-warm protocol. Leave
                    # non-up verdicts for mark_up().
                    pass
                continue
            self.misses[s] += 1
            self._miss_counters[s].inc()
            if self.misses[s] >= self.miss_threshold \
                    and self.verdict[s] == "up":
                self._mark_down(s, now, reason="heartbeat")
                newly_down.append(s)
        return newly_down

    # ------------------------------------------------------------------ #
    # Verdicts
    # ------------------------------------------------------------------ #

    def _mark_down(self, shard: int, now: float, *, reason: str) -> None:
        self.verdict[shard] = "down"
        self.marked_down_at[shard] = now
        self._up_gauge.set(sum(v == "up" for v in self.verdict))
        traced_event(f"{self.prefix}.marked_down", reason=reason,
                     at_ms=now, misses=self.misses[shard],
                     **{self._label: shard})

    def mark_down(self, shard: int, now: float, *,
                  reason: str = "dispatch") -> bool:
        """Fail-fast marking (router observed a dispatch failure).

        Returns True when this call changed the verdict.
        """
        if self.verdict[shard] != "up":
            return False
        self._mark_down(shard, now, reason=reason)
        return True

    def mark_rewarming(self, shard: int) -> None:
        self.verdict[shard] = "rewarming"

    def mark_up(self, shard: int, now: float) -> None:
        """Readmit a shard (router completed the re-warm protocol)."""
        self.verdict[shard] = "up"
        self.misses[shard] = 0
        self.last_seen[shard] = now
        self.marked_down_at[shard] = None
        self._up_gauge.set(sum(v == "up" for v in self.verdict))
        traced_event(f"{self.prefix}.readmitted", at_ms=now,
                     **{self._label: shard})

    def is_up(self, shard: int) -> bool:
        return self.verdict[shard] == "up"

    @property
    def up_count(self) -> int:
        return sum(v == "up" for v in self.verdict)

    # ------------------------------------------------------------------ #

    def snapshot(self) -> dict:
        """The ``shards`` section of the global ``healthz`` document."""
        return {
            "up": self.up_count,
            "total": self.num_shards,
            "detection_window_ms": self.detection_window_ms,
            "verdicts": {
                str(s): {
                    "verdict": self.verdict[s],
                    "misses": self.misses[s],
                    "last_seen_ms": self.last_seen[s],
                    "marked_down_at_ms": self.marked_down_at[s],
                }
                for s in range(self.num_shards)
            },
        }
