"""Closed-loop load + chaos driver for the sharded tier (``serve-bench``).

Extends :mod:`repro.serving.loadgen` to a :class:`ShardRouter` fleet: the
same burst-arrival/serve/advance loop on a :class:`ManualClock`, plus the
control plane the sharded tier needs — ``router.tick()`` every iteration
(fault probes, heartbeats, supervised recovery), scheduled shard kills
parsed from ``--kill-shard`` specs, and periodic hot-row replica
refresh/consistency audits.

``reconcile_sharded`` balances the chaos ledgers: every ``shard.*``
injector firing must surface in the matching defensive counter, mirrors
must audit clean, and **no accepted request may vanish** — everything
queued is either served or counted as a deadline shed. The drill CI runs
(``serve-bench --shards 4 --kill-shard 1@2s``) fails the build when any
ledger is out of balance or failover p99 exceeds its threshold.
"""

from __future__ import annotations

import re

from repro.serving.loadgen import _make_request
from repro.serving.queue import ManualClock
from repro.sharding.router import ShardRouter
from repro.telemetry import get_registry
from repro.utils.seeding import as_rng

__all__ = ["KillSpec", "parse_kill_spec", "run_sharded_load",
           "reconcile_sharded"]

_KILL_RE = re.compile(r"^(\d+)@(\d+(?:\.\d+)?)(ms|s)?$")


class KillSpec:
    """One scheduled shard kill: ``<shard>@<time>[ms|s]`` (ms default)."""

    __slots__ = ("shard", "at_ms", "done")

    def __init__(self, shard: int, at_ms: float):
        if shard < 0:
            raise ValueError(f"shard must be >= 0, got {shard}")
        if at_ms < 0:
            raise ValueError(f"kill time must be >= 0, got {at_ms}")
        self.shard = shard
        self.at_ms = at_ms
        self.done = False

    def __repr__(self):  # pragma: no cover - debugging aid
        return f"KillSpec(shard={self.shard}, at_ms={self.at_ms})"


def parse_kill_spec(spec: str) -> KillSpec:
    """Parse ``"1@2s"`` / ``"1@2000ms"`` / ``"1@2000"`` into a KillSpec."""
    m = _KILL_RE.match(spec.strip())
    if m is None:
        raise ValueError(
            f"bad --kill-shard spec {spec!r}: expected <shard>@<time>[ms|s]"
        )
    shard = int(m.group(1))
    at = float(m.group(2))
    if m.group(3) == "s":
        at *= 1000.0
    return KillSpec(shard, at)


def reconcile_sharded(router: ShardRouter, outcomes: dict,
                      served: int) -> dict:
    """Balance the sharded tier's ledgers against its fault injector.

    Beyond the PR-3 ``serving.*`` checks (which still apply and are run
    by the caller through :func:`repro.serving.loadgen.reconcile`-style
    logic), the shard sites must balance exactly, and the tier must not
    lose accepted requests: ``queued == served + deadline sheds``.
    """
    stats = router.stats()
    injector = router.injector
    checks: dict[str, dict] = {}

    def counter_sum(name: str) -> int:
        return sum(w[name] for w in stats["workers"])

    if injector is not None:
        site_to_counter = {
            "shard.crash": "crashes",
            "shard.hang": "hangs",
            "shard.slow": "slows",
            "shard.net_drop": "net_drops",
        }
        for site, counter in site_to_counter.items():
            checks[site] = {
                "fired": injector.fired.get(site, 0),
                "counted": counter_sum(counter),
            }
        checks["serving.backend"] = {
            "fired": injector.fired.get("serving.backend", 0),
            "counted": sum(w["ladders"][k]["backend_failures"]
                           for w in stats["workers"]
                           for k in w["ladders"]),
        }
        checks["serving.queue"] = {
            "fired": injector.fired.get("serving.queue", 0),
            "counted": stats["shed"]["fault"],
        }
        checks["serving.request"] = {
            "fired": injector.fired.get("serving.request", 0),
            "counted": stats["admission"]["rejected"].get(
                "dense_non_finite", 0),
        }
    checks["no_lost_requests"] = {
        "fired": outcomes.get("queued", 0),
        "counted": served + stats["shed"]["deadline"],
    }
    checks["replica_mirrors_clean"] = {
        "fired": 0,
        "counted": sum(r["violations"] for r in stats["replicas"]),
    }
    if router.shard_config.restart_after_ms is not None:
        # With supervised restarts enabled, every shard the chaos took
        # out must have walked restart -> re-warm -> readmission by the
        # end of the (quiesced) run: the fleet ends at full capacity.
        checks["fleet_readmitted"] = {
            "fired": router.shard_config.num_shards,
            "counted": stats["health"]["up"],
        }
    for check in checks.values():
        check["passed"] = check["fired"] == check["counted"]
    return {
        "checked": injector is not None,
        "passed": all(c["passed"] for c in checks.values()),
        "checks": checks,
    }


def run_sharded_load(router: ShardRouter, *, num_requests: int = 1000,
                     mean_interarrival_ms: float = 1.0,
                     deadline_ms: float | None = None,
                     malformed: float = 0.0, seed: int = 0,
                     clock: ManualClock | None = None,
                     kill_specs: list[KillSpec] | None = None,
                     refresh_every_ms: float = 500.0, slo=None) -> dict:
    """Drive the sharded tier; returns a JSON-ready per-shard report.

    The loop is the PR-3 closed loop plus the control plane: after every
    time advance the router ticks (probes shard faults, runs due
    heartbeats, drives restart/re-warm), pending ``--kill-shard`` specs
    fire when simulated time passes them, and replicas are re-warmed to
    the observed hot head every ``refresh_every_ms``.

    Latency/service/failover bookkeeping reads the shared telemetry
    histograms (``serving.latency_ms``, ``shard.service_ms{shard=}``,
    ``shard.failover_ms``), reset at run start so the report is
    run-local; ``reconcile_sharded`` keeps its exact-ledger semantics.
    Pass an :class:`~repro.telemetry.slo.SLOEngine` as ``slo`` to stream
    served/shed/staleness outcomes into objective evaluation.
    """
    if clock is None:
        clock = router.clock if isinstance(router.clock, ManualClock) \
            else ManualClock()
    if not (0.0 <= malformed <= 1.0):
        raise ValueError(f"malformed must be in [0, 1], got {malformed}")
    kill_specs = list(kill_specs or [])
    for ks in kill_specs:
        if ks.shard >= router.shard_config.num_shards:
            raise ValueError(
                f"--kill-shard targets shard {ks.shard} but the tier has "
                f"{router.shard_config.num_shards} shards"
            )
    rng = as_rng(seed)
    cfg = router.predictor.config
    reg = get_registry()
    latency_hist = reg.histogram("serving.latency_ms")
    for prefix in ("serving.latency_ms", "shard.service_ms",
                   "shard.failover_ms"):
        reg.reset(prefix)
    outcomes = {"queued": 0, "rejected": 0, "shed": 0}
    served = 0
    degraded_responses = 0
    backpressured = 0
    last_deadline_shed = router.queue.shed_counts()["deadline"]
    next_refresh = refresh_every_ms
    sent = 0

    def on_response(resp: dict) -> None:
        nonlocal served, degraded_responses
        served += 1
        degraded_responses += resp["degraded"]
        if slo is not None:
            slo.observe("served", now=clock.now(),
                        latency_ms=resp["latency_ms"],
                        degraded=bool(resp["degraded"]),
                        trace_id=resp.get("trace_id"),
                        request_id=resp["request_id"])

    def flush_deadline_sheds() -> None:
        nonlocal last_deadline_shed
        cur = router.queue.shed_counts()["deadline"]
        if slo is not None and cur > last_deadline_shed:
            slo.observe("shed", now=clock.now(),
                        count=cur - last_deadline_shed)
        last_deadline_shed = cur

    def control_plane() -> None:
        nonlocal next_refresh
        now = clock.now()
        for ks in kill_specs:
            if not ks.done and now >= ks.at_ms:
                router.kill_shard(ks.shard, now)
                ks.done = True
        router.tick(now)
        if now >= next_refresh:
            router.refresh_replicas()
            stale = router.check_replica_consistency()
            if slo is not None:
                slo.observe("replica_check", now=now)
                if stale:
                    slo.observe("staleness", now=now, count=stale)
            next_refresh = now + refresh_every_ms

    while sent < num_requests:
        burst = int(rng.integers(1, max(2, router.config.max_batch)))
        for _ in range(min(burst, num_requests - sent)):
            gap = float(rng.exponential(mean_interarrival_ms))
            if router.queue.should_backpressure():
                backpressured += 1
                gap *= 2.0
            clock.advance(gap)
            control_plane()
            absolute = (clock.now() + deadline_ms
                        if deadline_ms is not None else None)
            req = _make_request(rng, cfg, sent, absolute,
                                malformed=bool(rng.random() < malformed))
            status = router.submit(req)
            outcomes[status["status"]] += 1
            if slo is not None and status["status"] in ("shed", "rejected"):
                slo.observe(status["status"], now=clock.now(),
                            trace_id=status.get("trace_id"),
                            request_id=status["request_id"])
            sent += 1
        for resp in router.step():
            on_response(resp)
        flush_deadline_sheds()
        clock.advance(router.queue.expected_service_ms)
        control_plane()
    # Drain with the control plane still running, so in-flight recovery
    # (restart → re-warm → readmit) completes against the tail.
    while router.queue.depth:
        for resp in router.step():
            on_response(resp)
        flush_deadline_sheds()
        clock.advance(max(router.queue.expected_service_ms, 1.0))
        control_plane()
    # A scheduled kill beyond the traffic window still fires: keep the
    # clock moving (control plane running) until every spec has fired,
    # then through the heartbeat detection window, so the silent death
    # is caught by the backstop and the quiesce phase below drives
    # readmission — all in simulated time.
    if any(not ks.done for ks in kill_specs):
        while any(not ks.done for ks in kill_specs):
            clock.advance(router.shard_config.heartbeat_interval_ms)
            control_plane()
        horizon = clock.now() + router.health.detection_window_ms \
            + router.shard_config.heartbeat_interval_ms
        while clock.now() < horizon:
            clock.advance(router.shard_config.heartbeat_interval_ms)
            control_plane()
    # Quiesce: stop injecting new chaos and keep heartbeats + recovery
    # running until every shard is readmitted (bounded), so the final
    # health in the report reflects the recovery protocol rather than
    # whatever mid-flight state the last request happened to leave.
    sc = router.shard_config
    if sc.restart_after_ms is not None:
        budget = 2.0 * (router.health.detection_window_ms
                        + sc.restart_after_ms + sc.rewarm_ms
                        + sc.hang_ms) + 500.0
        settle_deadline = clock.now() + budget
        while not router.readyz()["full_capacity"] \
                and clock.now() < settle_deadline:
            clock.advance(sc.heartbeat_interval_ms)
            router.tick(clock.now(), probe_faults=False)

    stats = router.stats()
    reconciliation = reconcile_sharded(router, outcomes, served)
    per_shard = []
    for w in stats["workers"]:
        service = reg.histogram("shard.service_ms", shard=str(w["shard"]))
        per_shard.append({
            "shard": w["shard"],
            "state": w["state"],
            "dispatches": w["dispatches"],
            "p50_ms": service.quantile(0.50),
            "p99_ms": service.quantile(0.99),
            "heartbeats": w["heartbeats"],
            "crashes": w["crashes"],
            "hangs": w["hangs"],
            "slows": w["slows"],
            "net_drops": w["net_drops"],
            "rewarmed_rows": w["rewarmed_rows"],
        })
    failover = stats["failover_ms"]
    failover_hist = reg.histogram("shard.failover_ms")
    report = {
        "requests": num_requests,
        "served": served,
        "outcomes": outcomes,
        "latency_ms": {
            "p50": latency_hist.quantile(0.50),
            "p99": latency_hist.quantile(0.99),
            "max": latency_hist.max if latency_hist.count else 0.0,
        },
        "shed": stats["shed"],
        "shed_rate": (outcomes["shed"] + stats["shed"]["deadline"])
        / num_requests,
        "degraded_responses": degraded_responses,
        "backpressure_signals": backpressured,
        "non_finite_outputs": stats["final_guard"],
        "failovers": stats["failovers"],
        "replica_hits": stats["replica_hits"],
        "prior_fills": stats["prior_fills"],
        "failover_ms": {
            "count": failover["count"],
            "mean": failover["mean"],
            "p99": failover_hist.quantile(0.99),
            "max": failover["max"] if failover["count"] else 0.0,
        },
        "per_shard": per_shard,
        "health": router.healthz(),
        "ready": router.readyz(),
        "stats": stats,
        "reconciliation": reconciliation,
    }
    if slo is not None:
        report["slo"] = slo.report(clock.now())
    if router.injector is not None:
        report["injector"] = router.injector.counters()
    return report
