"""One serving shard: owned slices, per-table ladders, a failure model.

A :class:`ShardWorker` plays the role of one process in the sharded
tier. Like the collective simulator
(:class:`repro.distributed.collectives.Communicator`), the process
boundary is *modelled*, not spawned: workers communicate with the
router only through explicit dispatch/heartbeat messages on a shared
deterministic clock, never through shared mutable serving state, so
every distributed failure mode is reproducible under a seeded
:class:`~repro.reliability.fault_injection.FaultInjector` and the chaos
ledger reconciles exactly (docs/SERVING.md, sharding).

The failure model, driven through the ``shard.*`` injector sites or the
scheduled ``kill()`` used by ``serve-bench --kill-shard``:

========= ===============================================================
state     behaviour
========= ===============================================================
up        dispatches and heartbeats answered
hung      no replies (dispatch raises :class:`ShardTimeout`, heartbeats
          miss) until ``hang_ms`` of simulated time passes
down      dead until ``restart()``; dispatches raise :class:`ShardDown`
rewarming restarted but not readmitted: heartbeats answer (reporting the
          state) while the hot-row set is replayed; dispatches refuse
========= ===============================================================

``shard.slow`` is transient rather than a state: the next dispatch
carries a simulated latency penalty, and the router treats a dispatch
whose penalty exceeds the per-shard deadline exactly like a timeout.

Serving is *canonical by construction*: the primary rung materialises
rows through the operator's ``lookup`` and pools them with
:func:`pool_rows` — the same reduction the replica path uses — which is
what makes replica failover bit-identical for mirrored rows.
"""

from __future__ import annotations

import numpy as np

from repro.serving.breaker import CircuitBreaker
from repro.serving.server import Rung, TableLadder
from repro.telemetry import annotate_span, get_registry, traced_event, traced_span

__all__ = ["ShardWorker", "ShardDown", "ShardTimeout", "NetDrop",
           "pool_rows"]


class ShardDown(RuntimeError):
    """Dispatch refused: the shard is dead (or not yet readmitted)."""


class ShardTimeout(RuntimeError):
    """Dispatch produced no reply within the per-shard deadline."""


class NetDrop(RuntimeError):
    """The router<->shard message was lost in transit."""


def pool_rows(rows: np.ndarray, bag_of: np.ndarray, num_bags: int,
              dim: int) -> np.ndarray:
    """Sum-pool materialised rows into bags, in row order.

    The one reduction both the primary rung and the replica path share:
    a sequential ``np.add.at`` over identical row vectors produces
    identical bits, so a failover between them is invisible.
    """
    pooled = np.zeros((num_bags, dim), dtype=np.float64)
    if rows.size:
        np.add.at(pooled, bag_of, rows)
    return pooled


class ShardWorker:
    """One shard: a state machine over its slices' serving ladders.

    Parameters
    ----------
    shard_id:
        Topology id of this worker.
    slices:
        The :class:`~repro.sharding.topology.TableSlice` list this shard
        owns as primary.
    embeddings:
        The model's full embedding operator list (indexed by table).
    default_rows:
        Per-table frequency-prior rows (shared with the router, which
        uses them for whole-shard failover).
    emb_dim / breaker / injector / service params:
        See :class:`~repro.sharding.router.ShardConfig`.
    """

    def __init__(self, shard_id: int, slices: list, embeddings: list,
                 default_rows: list[np.ndarray], *, emb_dim: int,
                 breaker: CircuitBreaker, injector=None,
                 service_ms: float = 1.0, slow_penalty_ms: float = 50.0,
                 hang_ms: float = 200.0, rewarm_ms: float = 100.0):
        self.shard_id = shard_id
        self.slices = list(slices)
        self.embeddings = embeddings
        self.default_rows = default_rows
        self.emb_dim = emb_dim
        self.breaker = breaker
        self.injector = injector
        self.service_ms = service_ms
        self.slow_penalty_ms = slow_penalty_ms
        self.hang_ms = hang_ms
        self.rewarm_ms = rewarm_ms
        self.state = "up"
        self.hang_until = -1.0
        self.rewarm_until = -1.0
        self.impaired_since = None  # when the current outage began (sim ms)
        self._pending_penalty_ms = 0.0
        sid = str(shard_id)
        reg = get_registry()
        self._heartbeats = reg.counter("shard.heartbeats", shard=sid)
        self._dispatches = reg.counter("shard.dispatches", shard=sid)
        self._crashes = reg.counter("shard.crashes", shard=sid)
        self._hangs = reg.counter("shard.hangs", shard=sid)
        self._slows = reg.counter("shard.slows", shard=sid)
        self._net_drops = reg.counter("shard.net_drops", shard=sid)
        self._rewarmed = reg.counter("shard.rewarmed_rows", shard=sid)
        self._service_hist = reg.histogram(
            "shard.service_ms", shard=sid,
            bounds=(0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0),
        )
        self.ladders = {
            (sl.table, sl.row_lo): self._build_ladder(sl)
            for sl in self.slices
        }

    # ------------------------------------------------------------------ #
    # Ladder construction (per slice)
    # ------------------------------------------------------------------ #

    def _build_ladder(self, sl) -> TableLadder:
        emb = self.embeddings[sl.table]
        dim = self.emb_dim

        lookup = getattr(emb, "lookup", None)
        if lookup is not None:
            def rows_compute(indices, offsets, _lookup=lookup, _dim=dim):
                rows = np.asarray(_lookup(indices))
                bag_of = np.repeat(np.arange(offsets.size - 1),
                                   np.diff(offsets))
                return pool_rows(rows, bag_of, offsets.size - 1, _dim)
            primary = rows_compute
        else:  # pragma: no cover - every repo operator exposes lookup
            primary = emb.forward

        def breaker_for(rung: str) -> CircuitBreaker:
            return CircuitBreaker(
                f"s{self.shard_id}.t{sl.table}r{sl.row_lo}.{rung}",
                failure_threshold=3, window=20, cooldown=10,
                half_open_successes=2,
            )

        rungs = [Rung("rows", primary, breaker_for("rows"))]
        tt = getattr(emb, "tt", None)
        if tt is not None and getattr(emb, "mode", "sum") == "sum":
            rungs.append(Rung("tt_direct", tt.forward,
                              breaker_for("tt_direct")))
        # Worker ladders always pool *sum* partials; the router converts
        # to the table's real mode after combining slices.
        return TableLadder(sl.table, rungs, self.default_rows[sl.table],
                           "sum", scrub=getattr(emb, "scrub", None),
                           injector=self.injector)

    # ------------------------------------------------------------------ #
    # Failure model
    # ------------------------------------------------------------------ #

    def probe_faults(self, now: float) -> None:
        """One fault-probe round (router tick): crash and hang sites."""
        if self.injector is None or self.state in ("down", "rewarming"):
            return
        if self.injector.fires("shard.crash"):
            self.kill(now, cause="fault")
            return
        if self.injector.fires("shard.hang"):
            self._hangs.inc()
            self.hang_until = now + self.hang_ms
            self.state = "hung"
            if self.impaired_since is None:
                self.impaired_since = now
            traced_event("shard.hang", shard=self.shard_id,
                         until_ms=self.hang_until)

    def kill(self, now: float, *, cause: str = "scheduled") -> None:
        """Crash the shard (fault-injected or ``--kill-shard`` scheduled).

        Operator-scheduled kills are counted separately from injector
        crashes, under ``shard.kills_scheduled{shard=}``.
        """
        if self.state == "down":
            return
        if cause == "fault":
            self._crashes.inc()
        else:
            get_registry().counter("shard.kills_scheduled",
                                   shard=str(self.shard_id)).inc()
        self.state = "down"
        if self.impaired_since is None:
            self.impaired_since = now
        traced_event("shard.crash", shard=self.shard_id, cause=cause,
                     at_ms=now)

    def restart(self, now: float) -> None:
        """Supervised restart: enter the re-warm phase (not yet serving)."""
        if self.state != "down":
            return
        self.state = "rewarming"
        self.rewarm_until = now + self.rewarm_ms
        traced_event("shard.restart", shard=self.shard_id, at_ms=now,
                     ready_ms=self.rewarm_until)

    def begin_rewarm(self, now: float) -> None:
        """Force the re-warm phase from whatever state the worker is in.

        The supervisor calls this when the health plane's verdict is
        "down" regardless of what put it there: a crashed worker is
        restarted, a worker still hung past the restart deadline is
        watchdog-killed first (a wedged process is not waited out), and
        a worker that self-healed (hang expired, or it never left "up"
        — slow dispatches, dropped heartbeats) keeps its process but
        still rejoins only through re-warm → consistency check →
        readmission.
        """
        self._tick_state(now)
        if self.state == "rewarming":
            return
        if self.state == "hung":
            self.kill(now, cause="watchdog")
        if self.state == "down":
            self.restart(now)
            return
        self.state = "rewarming"
        self.rewarm_until = now + self.rewarm_ms
        traced_event("shard.rewarm_forced", shard=self.shard_id, at_ms=now,
                     ready_ms=self.rewarm_until)

    def complete_rewarm(self, hot_ids_by_slice: dict) -> int:
        """Replay the hot-row set; returns rows re-warmed. State -> up.

        Touching the hot head through the operator's own ``forward``
        re-populates any hybrid cache (and re-materialises poisoned rows
        via its read validation) before the shard takes traffic again.
        """
        total = 0
        for sl in self.slices:
            ids = np.asarray(
                hot_ids_by_slice.get((sl.table, sl.row_lo),
                                     np.empty(0, dtype=np.int64)),
                dtype=np.int64,
            )
            ids = ids[sl.covers(ids)]
            if ids.size == 0:
                continue
            emb = self.embeddings[sl.table]
            offsets = np.arange(ids.size + 1, dtype=np.int64)
            emb.forward(ids, offsets)
            total += int(ids.size)
        self._rewarmed.inc(total)
        self.state = "up"
        self.rewarm_until = -1.0
        self.impaired_since = None
        traced_event("shard.rewarmed", shard=self.shard_id, rows=total)
        return total

    def _tick_state(self, now: float) -> None:
        if self.state == "hung" and now >= self.hang_until:
            self.state = "up"
            self.hang_until = -1.0
            self.impaired_since = None

    # ------------------------------------------------------------------ #
    # Messages
    # ------------------------------------------------------------------ #

    def heartbeat(self, now: float) -> dict | None:
        """Answer a health-plane probe; ``None`` models a lost/absent reply."""
        self._tick_state(now)
        if self.state == "down":
            return None
        if self.state == "hung":
            return None
        if self.injector is not None and self.injector.fires("shard.net_drop"):
            self._net_drops.inc()
            return None
        self._heartbeats.inc()
        return {"shard": self.shard_id, "state": self.state, "at_ms": now}

    def dispatch(self, requests: list, now: float,
                 deadline_ms: float) -> tuple[dict, float]:
        """Serve one batch of slice sub-requests.

        ``requests`` is a list of ``(slice, indices, offsets)`` with
        indices sorted by bag; returns ``({(table, row_lo): (pooled,
        rung)}, sim_service_ms)``. Raises :class:`ShardDown`,
        :class:`ShardTimeout` or :class:`NetDrop` per the failure model.
        """
        self._tick_state(now)
        if self.state in ("down", "rewarming"):
            raise ShardDown(f"shard {self.shard_id} is {self.state}")
        if self.injector is not None and self.injector.fires("shard.net_drop"):
            self._net_drops.inc()
            raise NetDrop(f"message to shard {self.shard_id} lost")
        if self.state == "hung":
            raise ShardTimeout(
                f"shard {self.shard_id} hung until {self.hang_until:.0f} ms"
            )
        sim_ms = self.service_ms
        if self.injector is not None and self.injector.fires("shard.slow"):
            self._slows.inc()
            self._pending_penalty_ms = self.slow_penalty_ms
            traced_event("shard.slow", shard=self.shard_id,
                         penalty_ms=self.slow_penalty_ms)
        if self._pending_penalty_ms:
            sim_ms += self._pending_penalty_ms
            self._pending_penalty_ms = 0.0
        if sim_ms > deadline_ms:
            raise ShardTimeout(
                f"shard {self.shard_id} needed {sim_ms:.1f} ms > "
                f"deadline {deadline_ms:.1f} ms"
            )
        out = {}
        for sl, indices, offsets in requests:
            ladder = self.ladders[(sl.table, sl.row_lo)]
            with traced_span("shard.slice", shard=str(self.shard_id),
                             slice=sl.describe()):
                pooled, rung = ladder.serve(indices, offsets)
                annotate_span(rung=rung, indices=int(indices.size))
            out[(sl.table, sl.row_lo)] = (pooled, rung)
        self._dispatches.inc()
        self._service_hist.observe(sim_ms)
        return out, sim_ms

    # ------------------------------------------------------------------ #

    def breakers(self) -> list[CircuitBreaker]:
        return [self.breaker] + [
            b for lad in self.ladders.values() for b in lad.breakers()
        ]

    def stats(self) -> dict:
        return {
            "shard": self.shard_id,
            "state": self.state,
            "heartbeats": self._heartbeats.value,
            "dispatches": self._dispatches.value,
            "crashes": self._crashes.value,
            "hangs": self._hangs.value,
            "slows": self._slows.value,
            "net_drops": self._net_drops.value,
            "rewarmed_rows": self._rewarmed.value,
            "service_ms": self._service_hist.summary(),
            "breaker": self.breaker.snapshot(),
            "ladders": {
                f"t{t}r{lo}": {
                    "fallbacks": lad.fallback_counts(),
                    "backend_failures": lad.backend_failures,
                }
                for (t, lo), lad in sorted(self.ladders.items())
            },
        }
