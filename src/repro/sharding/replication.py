"""Hot-row replication: the Zipf head of every slice, mirrored off-shard.

Under production recommendation traffic a small head of rows absorbs
most lookups (the paper's Fig. 9 stability argument, and the reason
TT-Rec's cache works at all). The sharded tier exploits the same skew
for availability: each :class:`~repro.sharding.topology.TableSlice`
mirrors its top-k hottest rows — *materialised embedding vectors*, not
TT cores — onto its replica shard. When the primary shard is down, any
bag whose ids all fall inside the mirrored head is served from the
replica **bit-identically** to the primary path: both sides materialise
rows through the operator's ``lookup`` and pool with the same
:func:`~repro.sharding.worker.pool_rows` reduction, so failover is
invisible to the towers (asserted in ``tests/test_sharding.py``; TT
tables want a pinned ``plan_policy`` for cross-batch bit-stability).

Replicas are *checked*, not trusted: ``consistency_check`` re-derives
every mirrored row from the primary operator and counts mismatches
(``shard.replica.violations``), and the re-warm protocol refreshes the
mirror before a restarted shard is readmitted.
"""

from __future__ import annotations

import numpy as np

from repro.telemetry import get_registry, traced_event

__all__ = ["ReplicaStore"]


class _SliceMirror:
    """Mirrored hot rows of one slice: ids, id->slot map, row matrix."""

    __slots__ = ("ids", "slots", "rows")

    def __init__(self, ids: np.ndarray, rows: np.ndarray):
        self.ids = ids
        self.rows = rows
        self.slots = {int(i): k for k, i in enumerate(ids)}


class ReplicaStore:
    """Hot-row mirrors hosted by one shard (or by the router for tests).

    Parameters
    ----------
    hot_rows:
        Mirror size per slice (the top-k of the slice's frequency
        tracker, or the first ``k`` rows before traffic is observed).
    """

    def __init__(self, *, hot_rows: int = 64):
        if hot_rows < 1:
            raise ValueError(f"hot_rows must be >= 1, got {hot_rows}")
        self.hot_rows = hot_rows
        self._mirrors: dict[tuple[int, int], _SliceMirror] = {}
        reg = get_registry()
        self._warmed = reg.counter("shard.replica.warmed_rows")
        self._checks = reg.counter("shard.replica.consistency_checks")
        self._violations = reg.counter("shard.replica.violations")

    # ------------------------------------------------------------------ #

    @staticmethod
    def _key(table: int, row_lo: int) -> tuple[int, int]:
        return (table, row_lo)

    def warm(self, sl, ids: np.ndarray, lookup) -> int:
        """(Re)mirror a slice's hot rows; returns the row count mirrored.

        ``ids`` are absolute row ids; only those inside the slice are
        kept, capped at ``hot_rows``. ``lookup`` materialises rows from
        the primary operator (``emb.lookup``).
        """
        ids = np.asarray(ids, dtype=np.int64).reshape(-1)
        ids = ids[sl.covers(ids)][: self.hot_rows]
        if ids.size == 0:
            self._mirrors.pop(self._key(sl.table, sl.row_lo), None)
            return 0
        rows = np.asarray(lookup(ids))
        self._mirrors[self._key(sl.table, sl.row_lo)] = _SliceMirror(ids, rows)
        self._warmed.inc(int(ids.size))
        return int(ids.size)

    def mirrored_ids(self, sl) -> np.ndarray:
        m = self._mirrors.get(self._key(sl.table, sl.row_lo))
        return m.ids.copy() if m is not None else np.empty(0, dtype=np.int64)

    # ------------------------------------------------------------------ #

    def coverage(self, sl, indices: np.ndarray) -> np.ndarray:
        """Mask of the indices the mirror can serve for this slice."""
        m = self._mirrors.get(self._key(sl.table, sl.row_lo))
        if m is None:
            return np.zeros(indices.size, dtype=bool)
        return np.isin(indices, m.ids)

    def gather(self, sl, indices: np.ndarray) -> np.ndarray:
        """Mirrored rows for the given (fully covered) indices."""
        m = self._mirrors.get(self._key(sl.table, sl.row_lo))
        if m is None:
            raise KeyError(f"no mirror for slice {sl.describe()}")
        slots = np.fromiter((m.slots[int(i)] for i in indices),
                            dtype=np.int64, count=indices.size)
        return m.rows[slots]

    # ------------------------------------------------------------------ #

    def consistency_check(self, sl, lookup) -> int:
        """Re-derive every mirrored row from the primary; count mismatches.

        Mismatching rows are repaired in place from the primary (the
        primary is the source of truth; the mirror is a serving copy).
        Returns the number of rows that disagreed.
        """
        m = self._mirrors.get(self._key(sl.table, sl.row_lo))
        if m is None:
            return 0
        self._checks.inc()
        fresh = np.asarray(lookup(m.ids))
        # Exact comparison: replica serving promises bit-identity, so a
        # single flipped bit is a violation, not noise.
        bad = ~np.all(
            (fresh == m.rows) | (np.isnan(fresh) & np.isnan(m.rows)), axis=1
        )
        n_bad = int(bad.sum())
        if n_bad:
            self._violations.inc(n_bad)
            traced_event("shard.replica_violation", table=sl.table,
                         row_lo=sl.row_lo, rows=n_bad)
            m.rows[bad] = fresh[bad]
        return n_bad

    def stats(self) -> dict:
        return {
            "mirrors": len(self._mirrors),
            "warmed_rows": self._warmed.value,
            "consistency_checks": self._checks.value,
            "violations": self._violations.value,
        }
