"""Sharded serving tier: multi-worker fan-out with failure recovery.

The ISSUE-6 layer on top of the hardened single-process runtime
(:mod:`repro.serving`): the 26 embedding tables are partitioned across
shard workers — whole tables by LPT assignment, giant tables split into
row ranges — requests fan out with per-shard deadlines, and failures
walk a ladder *across* shards (primary → hot-row replica → frequency
prior) under a heartbeat health plane with supervised restart and
hot-row re-warm. See docs/SERVING.md (sharding section).

- :mod:`repro.sharding.topology` — :class:`TableSlice`/:class:`ShardPlan`
  construction (``build_shard_plan``);
- :mod:`repro.sharding.replication` — hot-row mirrors with bitwise
  consistency auditing;
- :mod:`repro.sharding.worker` — one shard's state machine and per-slice
  degradation ladders;
- :mod:`repro.sharding.health` — heartbeat tracking and up/down verdicts;
- :mod:`repro.sharding.router` — fan-out/gather, failover, global
  ``healthz``/``readyz``;
- :mod:`repro.sharding.loadgen` — the chaos drill behind
  ``repro serve-bench --shards``.
"""

from repro.sharding.health import HealthPlane
from repro.sharding.loadgen import (
    KillSpec,
    parse_kill_spec,
    reconcile_sharded,
    run_sharded_load,
)
from repro.sharding.replication import ReplicaStore
from repro.sharding.router import ShardConfig, ShardRouter
from repro.sharding.topology import ShardPlan, TableSlice, build_shard_plan
from repro.sharding.worker import (
    NetDrop,
    ShardDown,
    ShardTimeout,
    ShardWorker,
    pool_rows,
)

__all__ = [
    "TableSlice",
    "ShardPlan",
    "build_shard_plan",
    "ReplicaStore",
    "ShardWorker",
    "ShardDown",
    "ShardTimeout",
    "NetDrop",
    "pool_rows",
    "HealthPlane",
    "ShardConfig",
    "ShardRouter",
    "KillSpec",
    "parse_kill_spec",
    "run_sharded_load",
    "reconcile_sharded",
]
