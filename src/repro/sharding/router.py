"""The shard router: fan-out, gather, failover, and the global health view.

:class:`ShardRouter` is the sharded counterpart of
:class:`~repro.serving.server.InferenceServer`: the same admission
sanitizer and deadline-aware micro-batch queue in front, but the
embedding pooling fanned out across :class:`ShardWorker` processes per
the :class:`~repro.sharding.topology.ShardPlan`. Per-table indices are
partitioned by slice (bag association preserved — every sub-request
carries full-length offsets, so empty bags contribute exact-zero
partials), dispatched shard by shard under a per-shard deadline, and the
sum partials are combined and converted to the table's real pooling
mode at the router.

The headline is the failure path, a ladder *across* shards layered on
the PR-3 ladder *within* one:

1. **primary shard** — the owning worker's per-slice ladder
   (rows → tt_direct → default row);
2. **hot-row replica** — when the primary is down and every id of the
   slice falls in the mirrored Zipf head, served **bit-identically**
   (same ``lookup`` + :func:`~repro.sharding.worker.pool_rows`);
3. **frequency-prior row** — the PR-3 bottom rung, applied to whatever
   ids the mirror does not cover. Cannot fail.

Detection is layered: a dispatch the worker itself refuses
(:class:`~repro.sharding.worker.ShardDown`) marks the shard down
fail-fast; transient dispatch faults (timeout, repeated net-drop) fail
over and feed the per-shard breaker, which marks the shard down only
when it opens; the :class:`~repro.sharding.health.HealthPlane`
heartbeat window is the backstop for silent deaths. Recovery is keyed
on the health *verdict*, whatever put it there: supervised restart
(watchdog-killing a still-hung process, keeping a self-healed one) →
hot-row re-warm → consistency check → readmission with a clean
breaker. Every decision is counted (``shard.failovers``,
``shard.replica_hits``, ``shard.failover_ms``) and surfaced through the
``shards`` section of ``healthz``/``readyz`` so one probe answers for
the whole fleet.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cache.lfu import LFUTracker
from repro.data.batching import make_offsets
from repro.inference.predictor import Predictor, _sigmoid
from repro.serving.admission import Rejection, Request, RequestSanitizer
from repro.serving.breaker import CircuitBreaker
from repro.serving.queue import MicroBatchQueue, monotonic_ms
from repro.serving.server import ServerConfig, frequency_prior_row
from repro.sharding.health import HealthPlane
from repro.sharding.replication import ReplicaStore
from repro.sharding.topology import ShardPlan, build_shard_plan
from repro.sharding.worker import (
    NetDrop,
    ShardDown,
    ShardTimeout,
    ShardWorker,
    pool_rows,
)
from repro.telemetry import (
    annotate_span,
    finish_request,
    get_registry,
    get_request_tracer,
    traced_event,
    traced_span,
)

__all__ = ["ShardConfig", "ShardRouter"]


@dataclass(frozen=True)
class ShardConfig:
    """Knobs of the sharded tier (on top of :class:`ServerConfig`)."""

    num_shards: int = 4
    split_threshold: float = 1.0      # giant-table row-split trigger
    hot_rows: int = 64                # mirrored rows per slice
    heartbeat_interval_ms: float = 50.0
    miss_threshold: int = 3
    shard_deadline_ms: float = 40.0   # per-dispatch budget
    service_ms: float = 1.0           # simulated healthy dispatch cost
    slow_penalty_ms: float = 100.0    # shard.slow added latency
    hang_ms: float = 250.0            # shard.hang duration
    restart_after_ms: float | None = 200.0  # supervised restart delay
    rewarm_ms: float = 100.0          # re-warm phase duration

    def __post_init__(self):
        if self.num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {self.num_shards}")
        if self.shard_deadline_ms <= 0:
            raise ValueError("shard_deadline_ms must be > 0")


class ShardRouter:
    """Sharded serving tier: admission → queue → fan-out → gather → towers.

    Parameters
    ----------
    predictor:
        The frozen model; its embedding operators are the shard backends
        (shards are simulated processes sharing the operator objects —
        the process boundary is the message protocol, not the memory).
    config / shard_config:
        Queue-tier and shard-tier knobs.
    injector:
        Optional chaos source; ``shard.{crash,hang,slow,net_drop}`` plus
        the PR-3 ``serving.*`` sites are probed.
    clock:
        Monotonic-ms callable; tests and serve-bench pass a
        :class:`~repro.serving.queue.ManualClock`.
    """

    def __init__(self, predictor: Predictor, *,
                 config: ServerConfig = ServerConfig(),
                 shard_config: ShardConfig = ShardConfig(),
                 injector=None, clock=None):
        self.predictor = predictor
        self.config = config
        self.shard_config = shard_config
        self.injector = injector
        self.clock = clock if clock is not None else monotonic_ms
        cfg = predictor.config
        sc = shard_config
        self.sanitizer = RequestSanitizer(cfg, oov_policy=config.oov_policy)
        self.queue = MicroBatchQueue(
            max_depth=config.max_depth, max_batch=config.max_batch,
            default_deadline_ms=config.default_deadline_ms,
            high_watermark=config.high_watermark,
            clock=self.clock, injector=injector,
        )
        self.plan: ShardPlan = build_shard_plan(
            tuple(cfg.table_sizes), sc.num_shards,
            split_threshold=sc.split_threshold,
        )
        self.default_rows = [
            frequency_prior_row(emb, cfg.emb_dim)
            for emb in predictor.embeddings
        ]
        self.modes = [getattr(emb, "mode", "sum")
                      for emb in predictor.embeddings]
        self.workers = [
            ShardWorker(
                s, self.plan.slices_of(s), predictor.embeddings,
                self.default_rows, emb_dim=cfg.emb_dim,
                breaker=CircuitBreaker(
                    f"shard{s}",
                    failure_threshold=config.failure_threshold,
                    window=config.breaker_window, cooldown=config.cooldown,
                    half_open_successes=config.half_open_successes,
                ),
                injector=injector, service_ms=sc.service_ms,
                slow_penalty_ms=sc.slow_penalty_ms, hang_ms=sc.hang_ms,
                rewarm_ms=sc.rewarm_ms,
            )
            for s in range(sc.num_shards)
        ]
        self.health = HealthPlane(
            sc.num_shards, heartbeat_interval_ms=sc.heartbeat_interval_ms,
            miss_threshold=sc.miss_threshold,
        )
        # One mirror store per hosting shard: slice sl's hot rows live on
        # shard sl.replica, so losing that shard loses the mirror too.
        self.replicas = [ReplicaStore(hot_rows=sc.hot_rows)
                         for _ in range(sc.num_shards)]
        self.trackers = [LFUTracker() for _ in range(cfg.num_tables)]
        self._warm_replicas_initial()
        reg = get_registry()
        self._requests = reg.counter("serving.requests")
        self._served = reg.counter("serving.served")
        self._batches = reg.counter("serving.batches")
        self._final_guard = reg.counter("serving.final_guard")
        self._failovers = reg.counter("shard.failovers")
        self._replica_hits = reg.counter("shard.replica_hits")
        self._prior_fills = reg.counter("shard.prior_fills")
        self._net_drop_retries = reg.counter("shard.net_drop_retries")
        self._failover_ms = reg.histogram(
            "shard.failover_ms",
            bounds=(1.0, 5.0, 10.0, 25.0, 50.0, 100.0, 200.0, 500.0),
        )
        self._latency = reg.histogram(
            "serving.latency_ms",
            bounds=(0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0,
                    500.0, 1000.0),
        )
        self._ready = all(np.isfinite(row).all() for row in self.default_rows)

    # ------------------------------------------------------------------ #
    # Replication upkeep
    # ------------------------------------------------------------------ #

    def _hot_ids(self, sl) -> np.ndarray:
        """Hot ids of a slice: observed head first, cold-start prefix else."""
        hot = np.asarray(self.trackers[sl.table].top_k(
            self.shard_config.hot_rows * 2), dtype=np.int64)
        hot = hot[sl.covers(hot)]
        if hot.size >= self.shard_config.hot_rows:
            return hot[: self.shard_config.hot_rows]
        cold = np.arange(
            sl.row_lo, min(sl.row_hi,
                           sl.row_lo + self.shard_config.hot_rows),
            dtype=np.int64,
        )
        merged = np.concatenate([hot, cold[~np.isin(cold, hot)]])
        return merged[: self.shard_config.hot_rows]

    def _lookup_fn(self, table: int):
        emb = self.predictor.embeddings[table]
        lookup = getattr(emb, "lookup", None)
        if lookup is not None:
            return lookup
        return lambda ids: emb.forward(  # pragma: no cover - all ops have it
            ids, np.arange(ids.size + 1, dtype=np.int64))

    def _warm_replicas_initial(self) -> None:
        for sl in self.plan.slices:
            if sl.replica == sl.shard:  # degenerate single-shard topology
                continue
            self.replicas[sl.replica].warm(
                sl, self._hot_ids(sl), self._lookup_fn(sl.table))

    def refresh_replicas(self) -> int:
        """Re-mirror every slice's hot head from observed traffic.

        Returns rows warmed. Called periodically by the load generator
        (and by the re-warm path for a readmitted shard's slices).
        """
        warmed = 0
        for sl in self.plan.slices:
            if sl.replica == sl.shard:
                continue
            warmed += self.replicas[sl.replica].warm(
                sl, self._hot_ids(sl), self._lookup_fn(sl.table))
        return warmed

    def check_replica_consistency(self) -> int:
        """Audit every mirror against its primary; returns violations."""
        bad = 0
        for sl in self.plan.slices:
            if sl.replica == sl.shard:
                continue
            bad += self.replicas[sl.replica].consistency_check(
                sl, self._lookup_fn(sl.table))
        return bad

    # ------------------------------------------------------------------ #
    # Fleet lifecycle (driven by the load generator / bench loop)
    # ------------------------------------------------------------------ #

    def tick(self, now: float | None = None, *,
             probe_faults: bool = True) -> None:
        """One control-plane round: fault probes, heartbeats, recovery.

        ``probe_faults=False`` runs heartbeats and recovery without
        drawing new chaos — the load generator's quiesce phase, letting
        in-flight recovery finish after traffic stops.
        """
        now = self.clock() if now is None else now
        if probe_faults:
            for worker in self.workers:  # shard-id order => determinism
                worker.probe_faults(now)
        for s in self.health.tick(now, self.workers):
            # Silent death caught by the heartbeat backstop: the failover
            # clock runs from when the outage actually began.
            self._observe_failover(s, now)
        self._drive_recovery(now)

    def _observe_failover(self, shard: int, now: float) -> None:
        """Sample failover latency from when the outage actually began."""
        since = self.workers[shard].impaired_since
        sample = max(0.0, now - since) if since is not None else 0.0
        self._failover_ms.observe(sample)

    def _drive_recovery(self, now: float) -> None:
        """Walk every unhealthy shard toward readmission.

        Keyed on the health *verdict*, never the worker's internal
        state: a shard can be marked down for a crash (worker down), a
        hang (worker self-heals after ``hang_ms``), or slow dispatches /
        dropped heartbeats (worker never left "up"). Whatever the
        cause, ``restart_after_ms`` after the mark the supervisor forces
        it through the same re-warm pipeline, and readmission only ever
        happens via :meth:`HealthPlane.mark_up` at the end of it.
        """
        sc = self.shard_config
        if sc.restart_after_ms is None:
            return
        for s, worker in enumerate(self.workers):
            verdict = self.health.verdict[s]
            if verdict == "down":
                down_at = self.health.marked_down_at[s]
                if down_at is not None \
                        and now >= down_at + sc.restart_after_ms:
                    worker.begin_rewarm(now)
                    self.health.mark_rewarming(s)
            elif verdict == "rewarming" \
                    and worker.state == "rewarming" \
                    and now >= worker.rewarm_until:
                hot = {
                    (sl.table, sl.row_lo): self._hot_ids(sl)
                    for sl in worker.slices
                }
                worker.complete_rewarm(hot)
                # Refresh + audit the readmitted shard's mirrors before
                # it takes traffic again.
                for sl in worker.slices:
                    if sl.replica == sl.shard:
                        continue
                    store = self.replicas[sl.replica]
                    store.warm(sl, self._hot_ids(sl),
                               self._lookup_fn(sl.table))
                    store.consistency_check(sl, self._lookup_fn(sl.table))
                # A readmitted shard starts with a clean breaker — the
                # failures that opened it belong to its previous life.
                worker.breaker.reset()
                self.health.mark_up(s, now)

    def kill_shard(self, shard: int, now: float | None = None) -> None:
        """Scheduled kill (``serve-bench --kill-shard``)."""
        now = self.clock() if now is None else now
        self.workers[shard].kill(now, cause="scheduled")

    # ------------------------------------------------------------------ #
    # Request path
    # ------------------------------------------------------------------ #

    def submit(self, request: Request) -> dict:
        """Admit one request (same contract as ``InferenceServer.submit``)."""
        self._requests.inc()
        if self.injector is not None:
            spec = self.injector.draw("serving.request")
            if spec is not None:
                dense = np.array(request.dense, dtype=np.float64, copy=True)
                self.injector.apply(spec, dense)
                request = Request(dense=dense, sparse=request.sparse,
                                  deadline_ms=request.deadline_ms,
                                  request_id=request.request_id)
        rt = get_request_tracer()
        ctx = rt.maybe_start(request.request_id, now=self.clock())
        with rt.scope([ctx]):
            with traced_span("serving.admission"):
                admitted = self.sanitizer.sanitize(request)
        if isinstance(admitted, Rejection):
            rt.finish(ctx, "rejected", now=self.clock(),
                      reason=admitted.reason)
            return {"status": "rejected", "reason": admitted.reason,
                    "detail": admitted.detail,
                    "request_id": admitted.request_id,
                    **({"trace_id": ctx.trace_id} if ctx else {})}
        outcome = self.queue.submit(admitted)
        if outcome != "queued":
            rt.finish(ctx, "shed", now=self.clock(),
                      reason=outcome.removeprefix("shed_"))
            return {"status": "shed", "reason": outcome.removeprefix("shed_"),
                    "request_id": admitted.request_id,
                    **({"trace_id": ctx.trace_id} if ctx else {})}
        if ctx is not None:
            admitted.trace_ctx = ctx
        return {"status": "queued", "request_id": admitted.request_id,
                "repairs": list(admitted.repairs),
                "backpressure": self.queue.should_backpressure()}

    def _slice_subrequest(self, sl, indices: np.ndarray,
                          bag_of: np.ndarray, num_bags: int):
        """This slice's share of a table batch, with full-length offsets."""
        mask = sl.covers(indices)
        sub_idx = indices[mask]
        # bag_of is non-decreasing (requests concatenated in order), so
        # the masked sub-array is already grouped by bag.
        sub_counts = np.bincount(bag_of[mask], minlength=num_bags)
        return sub_idx, make_offsets(sub_counts)

    def _failover_pooled(self, sl, sub_idx: np.ndarray,
                         sub_offsets: np.ndarray, now: float) -> tuple:
        """Serve one slice without its primary: replica head + prior fill."""
        num_bags = sub_offsets.size - 1
        dim = self.predictor.config.emb_dim
        counts = np.diff(sub_offsets)
        store = self.replicas[sl.replica]
        replica_live = (sl.replica != sl.shard
                        and self.workers[sl.replica].state == "up")
        covered = (store.coverage(sl, sub_idx) if replica_live
                   else np.zeros(sub_idx.size, dtype=bool))
        bag_of = np.repeat(np.arange(num_bags), counts)
        pooled = np.zeros((num_bags, dim), dtype=np.float64)
        if covered.any():
            rows = store.gather(sl, sub_idx[covered])
            pooled += pool_rows(rows, bag_of[covered], num_bags, dim)
        missing = np.bincount(bag_of[~covered], minlength=num_bags)
        if missing.any():
            pooled += self.default_rows[sl.table] * missing[:, None]
            self._prior_fills.inc(int(missing.sum()))
        if covered.all() and sub_idx.size:
            self._replica_hits.inc()
            path = "replica"
        elif covered.any():
            path = "replica_partial"
        else:
            path = "prior_row"
        return pooled, path

    def _dispatch_shard(self, shard: int, requests: list, now: float):
        """One fan-out leg; returns ``(results, sim_ms)`` or raises."""
        worker = self.workers[shard]
        if not self.health.is_up(shard) or not worker.breaker.allow():
            raise ShardDown(f"shard {shard} routed around "
                            f"({self.health.verdict[shard]})")
        try:
            try:
                return worker.dispatch(requests, now,
                                       self.shard_config.shard_deadline_ms)
            except NetDrop:
                # One retry: a single lost message is not a dead shard.
                self._net_drop_retries.inc()
                return worker.dispatch(requests, now,
                                       self.shard_config.shard_deadline_ms)
        except ShardDown:
            # The worker itself refused: it is dead (or not readmitted).
            # That is a fact, not a symptom — mark down immediately.
            if self.health.mark_down(shard, now, reason="dispatch"):
                self._observe_failover(shard, now)
            worker.breaker.record_failure()
            raise
        except (ShardTimeout, NetDrop):
            # Transient by default: fail over this dispatch and let the
            # per-shard breaker decide availability — only when it opens
            # (failure_threshold strikes in the window) is the shard
            # marked down; the heartbeat plane backstops real hangs.
            worker.breaker.record_failure()
            if worker.breaker.state == "open" \
                    and self.health.mark_down(shard, now, reason="breaker"):
                self._observe_failover(shard, now)
            raise

    def step(self) -> list[dict]:
        """Serve one micro-batch: fan out, gather, run the towers."""
        batch = self.queue.next_batch()
        if not batch:
            return []
        now = self.clock()
        formed_at = now
        num_bags = len(batch)
        cfg = self.predictor.config
        rt = get_request_tracer()
        ctxs = [c for r in batch
                if (c := getattr(r, "trace_ctx", None)) is not None]
        with rt.scope(ctxs):
            for req in batch:
                ctx = getattr(req, "trace_ctx", None)
                if ctx is not None:
                    ctx.record_span("queue.wait", req.arrival_ms, formed_at)
            with traced_span("serving.batch"):
                annotate_span(batch_size=num_bags)
                dense = np.stack([r.dense for r in batch])
                # Partition every table batch into per-slice sub-requests.
                per_shard: dict[int, list] = {
                    s: [] for s in range(self.shard_config.num_shards)
                }
                for t in range(cfg.num_tables):
                    counts = np.array([r.values[t].size for r in batch],
                                      dtype=np.int64)
                    indices = (np.concatenate([r.values[t] for r in batch])
                               if counts.sum()
                               else np.empty(0, dtype=np.int64))
                    self.trackers[t].record(indices)
                    bag_of = np.repeat(np.arange(num_bags), counts)
                    for sl in self.plan.slices_of_table(t):
                        sub_idx, sub_off = self._slice_subrequest(
                            sl, indices, bag_of, num_bags)
                        per_shard[sl.shard].append((sl, sub_idx, sub_off))
                # Fan out in shard-id order (deterministic injector draws).
                gathered = {}
                degraded_slices = {}
                max_sim_ms = 0.0
                for s in sorted(per_shard):
                    reqs = per_shard[s]
                    if not reqs:
                        continue
                    try:
                        with traced_span("shard.dispatch", shard=str(s)):
                            annotate_span(
                                slices=[sl.describe() for sl, _, _ in reqs],
                                breaker=self.workers[s].breaker.state,
                            )
                            results, sim_ms = self._dispatch_shard(
                                s, reqs, now)
                            annotate_span(sim_ms=sim_ms)
                    except (ShardDown, ShardTimeout, NetDrop) as exc:
                        self._failovers.inc()
                        traced_event(
                            "shard.failover", shard=s, at_ms=now,
                            slices=[sl.describe() for sl, _, _ in reqs])
                        with traced_span("shard.failover", shard=str(s)):
                            annotate_span(cause=type(exc).__name__)
                            paths = {}
                            for sl, sub_idx, sub_off in reqs:
                                pooled, path = self._failover_pooled(
                                    sl, sub_idx, sub_off, now)
                                gathered[(sl.table, sl.row_lo)] = pooled
                                degraded_slices[sl.describe()] = path
                                paths[sl.describe()] = path
                            annotate_span(paths=paths)
                        continue
                    self.workers[s].breaker.record_success()
                    for key, (pooled, rung) in results.items():
                        gathered[key] = pooled
                        if rung != "rows":
                            t, lo = key
                            degraded_slices[f"t{t}[{lo}:]@s{s}"] = rung
                    max_sim_ms = max(max_sim_ms, sim_ms)
                # Gather: sum slice partials per table, apply the mode.
                pooled_tables = []
                for t in range(cfg.num_tables):
                    total = np.zeros((num_bags, cfg.emb_dim),
                                     dtype=np.float64)
                    for sl in self.plan.slices_of_table(t):
                        total += gathered[(sl.table, sl.row_lo)]
                    if self.modes[t] == "mean":
                        counts = np.array(
                            [r.values[t].size for r in batch],
                            dtype=np.float64)
                        total /= np.maximum(counts, 1.0)[:, None]
                    pooled_tables.append(total)
                with traced_span("serving.towers"):
                    probs = _sigmoid(
                        self.predictor.logits_from_pooled(
                            dense, pooled_tables)
                    )
            bad = ~np.isfinite(probs)
            if bad.any():  # unreachable by design; belt and braces
                self._final_guard.inc(int(bad.sum()))
                traced_event("serving.final_guard", count=int(bad.sum()))
                probs = np.where(bad, 0.5, probs)
        # Feed the queue's pacing EWMA *simulated* service time (the
        # slowest shard leg), matching the fully simulated per-request
        # latency model. Measuring wall clock here would leak real time
        # into the ManualClock advances and break byte-identical
        # same-seed trace files.
        self.queue.observe_service(max(max_sim_ms, 1.0))
        self._batches.inc()
        self._served.inc(len(batch))
        responses = []
        for req, prob in zip(batch, probs):
            latency = (formed_at - req.arrival_ms) + max_sim_ms
            self._latency.observe(latency)
            resp = {
                "request_id": req.request_id,
                "prob": float(prob),
                "latency_ms": latency,
                "degraded": bool(degraded_slices),
                "served_by": dict(degraded_slices),
                "repairs": list(req.repairs),
            }
            ctx = getattr(req, "trace_ctx", None)
            if ctx is not None:
                resp["trace_id"] = ctx.trace_id
            finish_request(req, "served", now=formed_at + max_sim_ms,
                           latency_ms=latency, degraded=bool(degraded_slices))
            responses.append(resp)
        return responses

    def drain(self) -> list[dict]:
        """Serve micro-batches until the queue is empty."""
        responses = []
        while self.queue.depth:
            responses.extend(self.step())
        return responses

    # ------------------------------------------------------------------ #
    # Probes & stats
    # ------------------------------------------------------------------ #

    def healthz(self) -> dict:
        """Global health roll-up: queue tier + every shard's condition."""
        open_breakers = [
            b.name for w in self.workers for b in w.breakers()
            if b.state != "closed"
        ]
        degraded = bool(open_breakers) \
            or self.health.up_count < self.shard_config.num_shards
        return {
            "status": "degraded" if degraded else "ok",
            "open_breakers": open_breakers,
            "queue_depth": self.queue.depth,
            "expected_service_ms": self.queue.expected_service_ms,
            "shed": self.queue.shed_counts(),
            "shards": self.health.snapshot(),
        }

    def readyz(self) -> dict:
        """Ready as long as every row range has *some* serving path.

        The prior row exists for every table, so the tier keeps
        answering with all shards down; ``full_capacity`` tells probes
        whether any failover rung is currently in play.
        """
        return {
            "ready": bool(self._ready and self.plan.slices),
            "full_capacity":
                self.health.up_count == self.shard_config.num_shards,
            "shards_up": self.health.up_count,
        }

    def fallbacks_by_table(self) -> dict[str, dict[str, int]]:
        """Ladder fallback counters rolled up across shards, per table."""
        rollup: dict[str, dict[str, int]] = {}
        for w in self.workers:
            for (t, _lo), lad in w.ladders.items():
                agg = rollup.setdefault(str(t), {})
                for rung, n in lad.fallback_counts().items():
                    agg[rung] = agg.get(rung, 0) + n
        return rollup

    def stats(self) -> dict:
        """Reconciliation-ready counters for the whole tier."""
        return {
            "requests": self._requests.value,
            "served": self._served.value,
            "batches": self._batches.value,
            "admission": self.sanitizer.stats(),
            "shed": self.queue.shed_counts(),
            "failovers": self._failovers.value,
            "replica_hits": self._replica_hits.value,
            "prior_fills": self._prior_fills.value,
            "net_drop_retries": self._net_drop_retries.value,
            "failover_ms": self._failover_ms.summary(),
            "final_guard": self._final_guard.value,
            "fallbacks": self.fallbacks_by_table(),
            "latency_ms": self._latency.summary(),
            "health": self.health.snapshot(),
            "replicas": [store.stats() for store in self.replicas],
            "workers": [w.stats() for w in self.workers],
            "topology": {
                "num_shards": self.shard_config.num_shards,
                "slices": [sl.describe() for sl in self.plan.slices],
                "spread": self.plan.spread(),
            },
        }
