"""Shard topology: which shard owns which (table, row-range) slice.

The sharded serving tier partitions the model's embedding tables across
``num_shards`` workers. Whole tables are placed by the same
longest-processing-time assignment :class:`ShardedEmbeddingDLRM` uses
(:func:`repro.distributed.model_parallel.assign_tables`), with one
extension the serving tier needs: *giant* tables — larger than the ideal
per-shard byte share — are first split into contiguous **row ranges**, so
a single multi-hundred-million-row table does not pin an entire shard on
its own. Each resulting :class:`TableSlice` is the unit of ownership,
dispatch, failover and replication.

Every slice also names a **replica shard**: a sibling that mirrors the
slice's hot-row head (:mod:`repro.sharding.replication`) and serves it
when the primary is down. Replicas are placed on the least-loaded shard
that is not the primary, deterministically, so a topology is a pure
function of ``(table_sizes, num_shards)``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.distributed.model_parallel import assign_tables

__all__ = ["TableSlice", "ShardPlan", "build_shard_plan"]


@dataclass(frozen=True)
class TableSlice:
    """One contiguous row range of one table, owned by one shard."""

    table: int
    row_lo: int
    row_hi: int          # exclusive
    shard: int
    replica: int         # sibling shard mirroring this slice's hot rows

    @property
    def num_rows(self) -> int:
        return self.row_hi - self.row_lo

    def covers(self, indices: np.ndarray) -> np.ndarray:
        """Boolean mask of the indices that fall inside this slice."""
        return (indices >= self.row_lo) & (indices < self.row_hi)

    def describe(self) -> str:
        return (f"t{self.table}[{self.row_lo}:{self.row_hi}]"
                f"@s{self.shard}(r{self.replica})")


class ShardPlan:
    """The full topology: slices, per-shard ownership, replica placement."""

    def __init__(self, table_sizes: tuple[int, ...], num_shards: int,
                 slices: list[TableSlice]):
        self.table_sizes = tuple(table_sizes)
        self.num_shards = num_shards
        self.slices = list(slices)
        self._by_shard: dict[int, list[TableSlice]] = {
            s: [] for s in range(num_shards)
        }
        self._by_table: dict[int, list[TableSlice]] = {
            t: [] for t in range(len(table_sizes))
        }
        for sl in self.slices:
            self._by_shard[sl.shard].append(sl)
            self._by_table[sl.table].append(sl)
        for t, parts in self._by_table.items():
            parts.sort(key=lambda sl: sl.row_lo)
            if not parts or parts[0].row_lo != 0 \
                    or parts[-1].row_hi != table_sizes[t] \
                    or any(a.row_hi != b.row_lo
                           for a, b in zip(parts, parts[1:])):
                raise ValueError(
                    f"slices of table {t} do not tile [0, {table_sizes[t]})"
                )

    # ------------------------------------------------------------------ #

    def slices_of(self, shard: int) -> list[TableSlice]:
        """Slices the given shard owns as primary."""
        return list(self._by_shard[shard])

    def replicated_to(self, shard: int) -> list[TableSlice]:
        """Slices whose hot-row replica the given shard hosts."""
        return [sl for sl in self.slices if sl.replica == shard]

    def slices_of_table(self, table: int) -> list[TableSlice]:
        return list(self._by_table[table])

    def shard_rows(self, shard: int) -> int:
        return sum(sl.num_rows for sl in self._by_shard[shard])

    def spread(self) -> tuple[int, int]:
        """``(max, min)`` rows held by any shard (the balance metric)."""
        rows = [self.shard_rows(s) for s in range(self.num_shards)]
        return max(rows), min(rows)

    def describe(self) -> str:
        lines = []
        for s in range(self.num_shards):
            own = " ".join(sl.describe() for sl in self._by_shard[s])
            lines.append(f"shard {s}: {self.shard_rows(s):,} rows  {own}")
        return "\n".join(lines)


def build_shard_plan(table_sizes: tuple[int, ...], num_shards: int, *,
                     split_threshold: float = 1.0) -> ShardPlan:
    """Partition tables (and row ranges of giant tables) across shards.

    Parameters
    ----------
    table_sizes:
        Rows per table (``DLRMConfig.table_sizes``).
    num_shards:
        Worker count; must be >= 1.
    split_threshold:
        A table is *giant* — and split into row ranges — when its row
        count exceeds ``split_threshold * total_rows / num_shards``.
        ``1.0`` splits anything above the ideal per-shard share; large
        values disable splitting.
    """
    if num_shards < 1:
        raise ValueError(f"num_shards must be >= 1, got {num_shards}")
    if not table_sizes:
        raise ValueError("table_sizes must be non-empty")
    if split_threshold <= 0:
        raise ValueError(
            f"split_threshold must be > 0, got {split_threshold}"
        )
    total = sum(table_sizes)
    share = total / num_shards
    # Pieces: (table, row_lo, row_hi); giant tables become several
    # contiguous ranges of at most the ideal share each.
    pieces: list[tuple[int, int, int]] = []
    for t, size in enumerate(table_sizes):
        if num_shards > 1 and size > split_threshold * share:
            parts = int(np.ceil(size / max(1.0, share)))
            parts = min(parts, num_shards)
            bounds = np.linspace(0, size, parts + 1).astype(np.int64)
            for lo, hi in zip(bounds[:-1], bounds[1:]):
                if hi > lo:
                    pieces.append((t, int(lo), int(hi)))
        else:
            pieces.append((t, 0, size))
    owner = assign_tables(tuple(hi - lo for _, lo, hi in pieces), num_shards)

    # Replica placement: least-loaded shard other than the primary,
    # loads counted as primary rows + already-placed replica rows.
    load = [0] * num_shards
    for (t, lo, hi), w in zip(pieces, owner):
        load[w] += hi - lo
    replica_load = [0] * num_shards
    slices = []
    order = sorted(range(len(pieces)),
                   key=lambda i: (-(pieces[i][2] - pieces[i][1]), i))
    chosen = [0] * len(pieces)
    for i in order:
        w = owner[i]
        if num_shards == 1:
            chosen[i] = w  # degenerate: replica == primary (no sibling)
            continue
        candidates = [s for s in range(num_shards) if s != w]
        r = min(candidates, key=lambda s: (load[s] + replica_load[s], s))
        replica_load[r] += pieces[i][2] - pieces[i][1]
        chosen[i] = r
    for (t, lo, hi), w, r in zip(pieces, owner, chosen):
        slices.append(TableSlice(table=t, row_lo=lo, row_hi=hi,
                                 shard=w, replica=r))
    return ShardPlan(table_sizes, num_shards, slices)
