"""Command-line interface: regenerate analyses and run demo training.

Subcommands (also available via ``python -m repro <cmd>``):

- ``table2``   — paper Table 2 (exact TT decompositions of Kaggle tables);
- ``sizes``    — Fig. 5 / §6 whole-model compression for both datasets;
- ``plan``     — auto-tune TT ranks for a memory budget (MB);
- ``plan-budget`` — pick a compressor per table from the full zoo under
  one global byte budget, emitting ``repro.budget_plan/v1`` JSON
  (docs/COMPRESSION.md); ``serve-bench --budget-plan`` serves the result;
- ``locality`` — Fig. 9-style hot-set stability for a synthetic stream;
- ``train``    — small demo training run (baseline vs TT-Rec), with
  optional periodic checkpointing and ``--resume``;
- ``chaos``    — fault-injection drill: a guarded TT-Rec run under
  seeded gradient/cache faults, compared against the fault-free run;
- ``profile``  — telemetry drill-down: a short TT-Rec + cache training
  workload plus a simulated allreduce leg, printed as a nested span tree,
  a per-stage iteration breakdown and a shared-registry metrics table;
- ``serve-bench`` — closed-loop load test of the hardened serving runtime
  (docs/SERVING.md): p50/p99 latency, shed rate, degradation-ladder and
  circuit-breaker activity, optionally under ``serving.*`` fault
  injection with fault-ledger reconciliation.

``train``/``chaos``/``profile``/``serve-bench`` accept ``--emit-json
PATH`` to write a machine-readable telemetry snapshot (schema
``repro.telemetry/v1``; see docs/OBSERVABILITY.md), and
``chaos``/``profile``/``serve-bench`` accept ``--events-jsonl PATH`` to
stream fault/guard/cache/breaker events as JSONL.

Analyses that need no training are exact and instantaneous; ``train``,
``chaos`` and ``profile`` use the scaled synthetic dataset and take a few
seconds.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

__all__ = ["main", "build_parser"]


def _cmd_table2(args) -> int:
    from repro.analysis.memory import table2_rows
    from repro.bench.reporting import format_table
    from repro.data import KAGGLE

    rows = [
        [r.num_rows, " x ".join(map(str, r.core_shapes)), r.rank, r.tt_params,
         f"{r.memory_reduction:.0f}x"]
        for r in table2_rows(KAGGLE, ranks=tuple(args.ranks))
    ]
    print(format_table(["# rows", "TT cores", "rank", "params", "reduction"],
                       rows, title="Paper Table 2 (exact)"))
    return 0


def _cmd_sizes(args) -> int:
    from repro.analysis.memory import model_size_summary
    from repro.bench.reporting import format_table
    from repro.data import KAGGLE, TERABYTE

    rows = []
    for spec in (KAGGLE, TERABYTE):
        for n in args.tables:
            s = model_size_summary(spec, num_tt_tables=n, rank=args.rank)
            rows.append([spec.name, n, f"{s.baseline_gb:.2f} GB",
                         f"{s.compressed_mb:.1f} MB", f"{s.reduction:.1f}x"])
    print(format_table(["dataset", "TT tables", "baseline", "compressed",
                        "reduction"], rows,
                       title=f"Model size at rank {args.rank} (Fig. 5 / §6)"))
    return 0


def _cmd_plan_kernel(args) -> int:
    """Kernel-planner report: chosen schedule, predicted vs measured FLOPs."""
    from time import perf_counter_ns

    from repro.bench.reporting import format_table
    from repro.bench.workloads import pooling_workload, uniform_workload
    from repro.telemetry import get_registry
    from repro.tt.embedding_bag import TTEmbeddingBag
    from repro.tt.planner import candidate_schedules

    dedup = not args.no_dedup
    emb = TTEmbeddingBag(args.rows, args.dim, rank=args.rank, d=args.d,
                         dedup=dedup, plan_policy=args.policy, rng=0)
    shape = emb.shape
    n_lookups = args.batch * args.pooling
    chosen = emb.planner.schedule_for(n_lookups, need_lefts=False)
    print(f"shape: {shape.describe()}")
    print(f"policy: {args.policy}  dedup: {'on' if dedup else 'off'}  "
          f"batch: {args.batch} x pooling {args.pooling}")
    rows = [
        [s.label, s.gemms, f"{s.flops_per_row:,}", f"{s.bytes_per_row:,}",
         f"{n_lookups * s.flops_per_row:,}",
         "chosen" if s.label == chosen.label else ""]
        for s in candidate_schedules(shape, emb.dtype.itemsize)
    ]
    print(format_table(
        ["schedule", "GEMMs", "FLOPs/row", "bytes/row",
         f"FLOPs @ n={n_lookups}", ""],
        rows, title="Candidate contraction schedules (lookup path)",
    ))

    if args.zipf is not None:
        indices, _ = pooling_workload(args.rows, args.batch, args.pooling,
                                      zipf_s=args.zipf, rng=args.seed)
    else:
        indices, _ = uniform_workload(args.rows, args.batch,
                                      pooling_factor=args.pooling,
                                      rng=args.seed)
    indices = np.minimum(indices, args.rows - 1)

    reg = get_registry()
    planned_c = reg.counter("tt.plan.flops_planned")
    executed_c = reg.counter("tt.plan.flops_executed")
    saved_c = reg.counter("tt.plan.flops_saved")
    removed_c = reg.counter("tt.plan.dedup_removed")
    for _ in range(3):  # warm the plan memo and buffer pool
        emb.lookup(indices)
    base = (planned_c.value, executed_c.value, saved_c.value, removed_c.value)
    t0 = perf_counter_ns()
    for _ in range(args.iters):
        emb.lookup(indices)
    elapsed_ms = (perf_counter_ns() - t0) / 1e6
    planned = (planned_c.value - base[0]) / args.iters
    executed = (executed_c.value - base[1]) / args.iters
    saved = (saved_c.value - base[2]) / args.iters
    removed = (removed_c.value - base[3]) / args.iters
    ms = elapsed_ms / args.iters
    baseline = n_lookups * emb.planner.candidates[0].flops_per_row
    print(f"\nmeasured over {args.iters} iters:")
    print(f"  ms/iter:          {ms:.3f}")
    print(f"  predicted FLOPs:  {planned:,.0f} / iter")
    print(f"  measured FLOPs:   {executed:,.0f} / iter "
          f"({executed / (ms * 1e6):.2f} GFLOP/s)")
    print(f"  fixed-l2r FLOPs:  {baseline:,.0f} / iter "
          f"(saved {saved:,.0f}, {100.0 * saved / baseline:.1f}%)")
    print(f"  dedup removed:    {removed:,.0f} of {n_lookups} lookups / iter")
    return 0


def _cmd_plan(args) -> int:
    # `report` re-enters with a synthetic Namespace that predates --kernel.
    if getattr(args, "kernel", False):
        return _cmd_plan_kernel(args)
    from repro.analysis.autotune import plan_compression
    from repro.bench.reporting import format_table
    from repro.data import KAGGLE, TERABYTE

    spec = {"kaggle": KAGGLE, "terabyte": TERABYTE}[args.dataset]
    budget_params = int(args.budget_mb * 1e6 / 4)
    plan = plan_compression(spec.table_sizes, spec.emb_dim,
                            budget_params=budget_params)
    rows = [
        [t.table_index, f"{t.num_rows:,}",
         "TT" if t.compress else "dense",
         t.rank if t.compress else "-", f"{t.params:,}"]
        for t in sorted(plan.tables, key=lambda t: -t.num_rows)[:args.top]
    ]
    print(format_table(
        ["table", "rows", "format", "rank", "params"], rows,
        title=(f"Plan for {args.dataset} under {args.budget_mb} MB "
               f"({budget_params:,} params)"),
    ))
    print(f"\ntotal: {plan.total_params():,} params "
          f"({plan.total_params() * 4 / 1e6:.1f} MB), "
          f"compression {plan.compression_ratio():.1f}x")
    return 0


def _cmd_plan_budget(args) -> int:
    """Pick a compressor per table under a global byte budget."""
    import json

    from repro.bench.reporting import format_table
    from repro.compress import BudgetPlanner, TableStats

    if args.tables_file:
        with open(args.tables_file, encoding="utf-8") as fh:
            doc = json.load(fh)
        docs = doc["tables"] if isinstance(doc, dict) else doc
        tables = [TableStats.from_doc(d) for d in docs]
        source = args.tables_file
    else:
        from repro.data import KAGGLE, TERABYTE

        spec = {"kaggle": KAGGLE, "terabyte": TERABYTE}[args.dataset]
        if args.scale is not None:
            spec = spec.scaled(args.scale)
        tables = [TableStats(num_rows=size, dim=spec.emb_dim, zipf_s=args.zipf,
                             name=f"emb{i}")
                  for i, size in enumerate(spec.table_sizes)]
        source = args.dataset

    planner = BudgetPlanner(
        tables, mode=args.mode, seed=args.seed,
        include_inference_only=args.include_inference_only,
        min_compress_rows=args.min_compress_rows,
    )
    budget_bytes = int(args.budget_mb * 1e6)
    try:
        plan = planner.plan(budget_bytes)
    except ValueError as exc:
        print(f"error: {exc}")
        return 1

    shown = sorted(plan.tables, key=lambda t: -t.predicted_bytes)[:args.top]
    rows = [
        [t.index, t.spec.name or "-", f"{t.spec.num_rows:,}", t.spec.label(),
         f"{t.predicted_bytes:,}", f"{t.quality:.3f}", f"{t.weight:.3f}"]
        for t in shown
    ]
    print(format_table(
        ["table", "name", "rows", "compressor", "bytes", "quality", "weight"],
        rows,
        title=(f"Budget plan for {source} under {args.budget_mb:g} MB "
               f"({len(plan.tables)} tables)"),
    ))
    print(f"\ntotal: {plan.total_bytes():,} B of {plan.budget_bytes:,} B "
          f"budget ({plan.total_bytes() / plan.budget_bytes:.0%} used), "
          f"compression {plan.compression_ratio():.1f}x vs dense")
    if args.emit_json:
        plan.to_json(args.emit_json)
        print(f"wrote repro.budget_plan/v1 plan to {args.emit_json}")
    return 0


def _cmd_locality(args) -> int:
    from repro.analysis.locality import top_set_stability
    from repro.bench.reporting import format_series
    from repro.data.zipf import ZipfSampler

    sampler = ZipfSampler(args.rows, args.zipf, rng=args.seed)
    stream = sampler.sample(args.accesses)
    trace = top_set_stability(stream, k=args.k, checkpoint_fraction=0.03)
    print(format_series(
        f"top-{args.k} set churn (Zipf s={args.zipf}, {args.rows:,} rows)",
        [f"{c:.0%}" for c in trace.checkpoints[1:]],
        [f"{f:.4f}" for f in trace.change_fraction],
        x_label="progress", y_label="change",
    ))
    print(f"\nstabilises (<=2% change) at "
          f"{trace.stabilization_point(0.02):.0%} of the stream")
    return 0


def _cmd_report(args) -> int:
    """Write every no-training analysis to one markdown report."""
    import contextlib
    import io

    sections = []
    for title, fn, ns in (
        ("Paper Table 2 (exact)", _cmd_table2,
         argparse.Namespace(ranks=[16, 32, 64])),
        ("Model sizes (Fig. 5 / §6)", _cmd_sizes,
         argparse.Namespace(rank=32, tables=[3, 5, 7])),
        ("Auto-tuned plan, 19 MB Kaggle budget", _cmd_plan,
         argparse.Namespace(dataset="kaggle", budget_mb=19.0, top=10)),
        ("Hot-set stability (Fig. 9 style)", _cmd_locality,
         argparse.Namespace(rows=50_000, zipf=1.05, accesses=150_000,
                            k=500, seed=0)),
    ):
        buf = io.StringIO()
        with contextlib.redirect_stdout(buf):
            fn(ns)
        sections.append(f"## {title}\n\n```\n{buf.getvalue().strip()}\n```\n")
    body = "# TT-Rec analysis report\n\n" + "\n".join(sections)
    with open(args.out, "w") as fh:
        fh.write(body)
    print(f"wrote {args.out} ({len(body)} bytes, {len(sections)} sections)")
    return 0


def _cmd_train_elastic(args) -> int:
    """``train --elastic``: the fault-tolerant distributed-training drill.

    Runs K simulated data-parallel workers under scheduled kills
    (``--kill-worker``) and/or ``dist.*`` fault rates, then gates on the
    elastic contract: ledgers reconcile (no lost batches), the fleet ends
    readmitted, live replicas are bit-identical, and (optionally) the
    worst recovery stays under ``--recovery-ms-max`` simulated ms — the
    contract the ``training-chaos`` CI job relies on.
    """
    import os

    from repro.data import KAGGLE, SyntheticCTRDataset
    from repro.distributed import ElasticTrainer, parse_worker_kill_spec
    from repro.models import DLRMConfig, TTConfig, build_ttrec
    from repro.reliability import FaultInjector
    from repro.serving import ManualClock

    spec = KAGGLE.scaled(args.scale)
    cfg = DLRMConfig(table_sizes=spec.table_sizes, emb_dim=8,
                     bottom_mlp=(16,), top_mlp=(16,))
    replicas = [
        build_ttrec(cfg, num_tt_tables=7, tt=TTConfig(rank=args.rank),
                    min_rows=60, rng=args.seed)
        for _ in range(args.workers)
    ]
    rates = {"dist.crash": args.dist_crash, "dist.hang": args.dist_hang,
             "dist.slow": args.dist_slow, "dist.net_drop": args.dist_net_drop}
    injector = None
    if any(r > 0 for r in rates.values()):
        injector = FaultInjector(seed=args.fault_seed)
        for site, rate in rates.items():
            if rate > 0:
                injector.register(site, rate)
    kill_specs = [parse_worker_kill_spec(s) for s in (args.kill_worker or [])]

    clock = ManualClock()
    recorder = None
    if args.flight_dir:
        from repro.telemetry import FlightRecorder, install_flight_recorder

        recorder = install_flight_recorder(
            FlightRecorder(args.flight_dir, clock=clock.now))
    manager = None
    if args.checkpoint_dir:
        from repro.reliability import CheckpointManager

        manager = CheckpointManager(
            os.path.join(args.checkpoint_dir, "elastic"))
    try:
        trainer = ElasticTrainer(
            replicas, lr=0.1, optimizer="adagrad", injector=injector,
            clock=clock, checkpoint=manager,
            checkpoint_every=args.checkpoint_every, kill_specs=kill_specs,
        )
        ds = SyntheticCTRDataset(spec, seed=args.seed, noise=0.7)
        report = trainer.train(ds.batches(args.batch_size, args.iters))
    finally:
        if recorder is not None:
            from repro.telemetry import uninstall_flight_recorder

            uninstall_flight_recorder()

    kills = ", ".join(f"w{k.worker}@{k.at_step}" for k in kill_specs) or "none"
    print(f"train --elastic: {args.iters} batches of {args.batch_size} over "
          f"{args.workers} workers, kills: {kills}")
    print(f"ledger    : fed {report['batches_fed']}  applied "
          f"{report['steps_applied']}  attempts {report['step_attempts']} "
          f"(retried {report['retried_steps']}, degraded "
          f"{report['degraded_steps']}, dispatch retries "
          f"{report['dispatch_retries']})")
    for s in report["workers"]:
        print(f"  worker {s['worker']}: {s['state']:9s} "
              f"dispatches {s['dispatches']:<5d} hb {s['heartbeats']:<4d} "
              f"crash {s['crashes']} hang {s['hangs']} slow {s['slows']} "
              f"drop {s['net_drops']}")
    rec = report["recovery"]
    print(f"recovery  : {rec['readmissions']} readmissions  shard restores "
          f"{rec['restores']}  replayed rows {rec['replayed_rows']}  audits "
          f"{rec['audits']} ({rec['audit_failures']} failed)  max "
          f"{rec['max_ms']:g} ms")
    print(f"health    : {report['health']['up']}/{report['world_size']} "
          f"workers up  membership epochs {report['membership_epochs']}  "
          f"resyncs {report['resyncs']}")

    recon = report["reconciliation"]
    ok = report["in_sync"]
    print("reconcile :")
    for name, check in recon["checks"].items():
        print(f"  {name:28s} fired={check['fired']:<6d} "
              f"counted={check['counted']:<6d} "
              f"{'ok' if check['passed'] else 'MISMATCH'}")
    ok = ok and recon["passed"]
    if args.recovery_ms_max is not None and rec["readmissions"]:
        within = rec["max_ms"] <= args.recovery_ms_max
        ok = ok and within
        print(f"threshold : recovery max {rec['max_ms']:g} ms "
              f"{'<=' if within else '>'} {args.recovery_ms_max:g} ms "
              f"{'ok' if within else 'FAIL'}")
    if recorder is not None:
        summ = recorder.summary()
        if summ["dumps"]:
            print(f"flightrec : {len(summ['dumps'])} dump(s) in "
                  f"{args.flight_dir}: " + ", ".join(sorted(summ["dumps"])))
        else:
            print(f"flightrec : armed ({summ['events_seen']} events), "
                  f"no trigger fired")
    print(f"final loss: {report['final_loss']:.4f}  "
          f"(sim {report['sim_ms']:g} ms)")
    print(f"{'PASS' if ok else 'FAIL'}: "
          + ("ledgers reconcile, fleet readmitted, replicas in sync"
             if ok else "see mismatches above"))
    if args.emit_json:
        from repro.telemetry import write_snapshot

        write_snapshot(args.emit_json, command="train-elastic",
                       result={"report": report, "passed": ok})
        print(f"wrote telemetry snapshot to {args.emit_json}")
    return 0 if ok else 1


def _cmd_train(args) -> int:
    import os

    from repro.data import KAGGLE, SyntheticCTRDataset
    from repro.models import DLRMConfig, TTConfig, build_dlrm, build_ttrec
    from repro.training import Trainer

    if args.elastic:
        return _cmd_train_elastic(args)
    if args.kill_worker:
        print("error: --kill-worker requires --elastic")
        return 2

    spec = KAGGLE.scaled(args.scale)
    cfg = DLRMConfig(table_sizes=spec.table_sizes, emb_dim=8,
                     bottom_mlp=(32, 16), top_mlp=(32,))
    summaries = {}
    for name, model in (
        ("baseline", build_dlrm(cfg, rng=args.seed)),
        (f"tt-rec r{args.rank}",
         build_ttrec(cfg, num_tt_tables=7, tt=TTConfig(rank=args.rank),
                     min_rows=60, rng=args.seed)),
    ):
        ds = SyntheticCTRDataset(spec, seed=args.seed, noise=0.7)
        trainer = Trainer(model, lr=0.1)
        ckpt_kwargs = {}
        if args.checkpoint_dir:
            from repro.reliability import CheckpointManager

            slug = name.split()[0].replace("-", "_")
            manager = CheckpointManager(
                os.path.join(args.checkpoint_dir, slug))
            resume = manager if (args.resume
                                 and manager.latest_step() is not None) else None
            ckpt_kwargs = dict(checkpoint_dir=manager.directory,
                               checkpoint_every=args.checkpoint_every,
                               resume_from=resume)
        res = trainer.train(ds.batches(96, args.iters), **ckpt_kwargs)
        ev = trainer.evaluate(ds.batches(512, 6))
        resumed = (f" (resumed at {res.start_iteration})"
                   if res.start_iteration else "")
        print(f"{name:14s} emb_params={model.embedding_parameters():>9,} "
              f"{res.ms_per_iter:6.2f} ms/iter  {ev}{resumed}")
        summaries[name] = {
            "emb_params": int(model.embedding_parameters()),
            "iterations": res.iterations,
            "ms_per_iter": res.ms_per_iter,
            "ms_per_iter_steady": res.ms_per_iter_steady,
            "stage_ms_per_iter": res.timing_breakdown(),
            "final_loss": res.final_loss,
            "accuracy": ev.accuracy, "bce": ev.bce, "auc": ev.auc,
            "ne": ev.ne,
        }
    if args.emit_json:
        from repro.telemetry import write_snapshot

        write_snapshot(args.emit_json, command="train",
                       result={"models": summaries})
        print(f"wrote telemetry snapshot to {args.emit_json}")
    return 0


def _cmd_profile(args) -> int:
    """Telemetry drill-down over one short instrumented workload."""
    from repro import telemetry
    from repro.bench.reporting import format_table
    from repro.data import KAGGLE, SyntheticCTRDataset
    from repro.distributed.collectives import Communicator
    from repro.models import DLRMConfig, TTConfig, build_ttrec
    from repro.training import Trainer

    tracer = telemetry.get_tracer()
    tracer.reset()
    telemetry.enable_tracing()
    if args.events_jsonl:
        telemetry.install_sink(args.events_jsonl)
    try:
        spec = KAGGLE.scaled(args.scale)
        cfg = DLRMConfig(table_sizes=spec.table_sizes, emb_dim=8,
                         bottom_mlp=(32, 16), top_mlp=(32,))
        tt = TTConfig(rank=args.rank, use_cache=True, warmup_steps=5,
                      refresh_interval=40, cache_fraction=0.05)
        model = build_ttrec(cfg, num_tt_tables=7, tt=tt, min_rows=60,
                            rng=args.seed)
        ds = SyntheticCTRDataset(spec, seed=args.seed, noise=0.7)
        trainer = Trainer(model, lr=0.1)
        with telemetry.trace("profile.train"):
            res = trainer.train(ds.batches(args.batch_size, args.iters))
        # Collective leg: allreduce every dense gradient across a simulated
        # ring so the same registry carries byte counters, too.
        comm = Communicator(args.world_size)
        with telemetry.trace("profile.collectives"):
            for p in model.parameters():
                if p.grad is not None and p.grad.size:
                    comm.allreduce_mean([p.grad] * args.world_size)
    finally:
        telemetry.disable_tracing()
        if args.events_jsonl:
            telemetry.uninstall_sink()

    print(f"profile workload: {args.iters} iters, batch {args.batch_size}, "
          f"TT rank {args.rank}, world size {args.world_size}")
    print("\n== span tree " + "=" * 50)
    print(tracer.format_tree())

    print("\n== per-iteration breakdown " + "=" * 36)
    breakdown = res.timing_breakdown()
    print(format_table(
        ["stage", "ms/iter", "share"],
        [[stage, f"{ms:.3f}",
          f"{ms / res.ms_per_iter:.1%}" if res.ms_per_iter else "-"]
         for stage, ms in breakdown.items()],
    ))
    print(f"overall: {res.ms_per_iter:.2f} ms/iter "
          f"(steady-state {res.ms_per_iter_steady:.2f})")

    print("\n== shared metrics registry " + "=" * 36)
    counters = telemetry.get_registry().snapshot()["counters"]
    rows = [[key, value] for key, value in counters.items() if value]
    print(format_table(["counter", "value"], rows))

    cached = [emb for emb in model.embeddings if hasattr(emb, "stats")]
    if cached:
        print("\n== cache stats " + "=" * 48)
        print(format_table(
            ["module", "lookups", "hits", "misses", "hit rate", "repairs"],
            [[emb.metrics_label, s["lookups"], s["hits"], s["misses"],
              f"{s['hit_rate']:.1%}", s["repairs"]]
             for emb in cached for s in [emb.stats()]],
        ))

    if args.emit_json:
        telemetry.write_snapshot(
            args.emit_json, command="profile",
            result={
                "iterations": res.iterations,
                "ms_per_iter": res.ms_per_iter,
                "ms_per_iter_steady": res.ms_per_iter_steady,
                "stage_ms_per_iter": breakdown,
                "cache": {emb.metrics_label: emb.stats() for emb in cached},
                "collective_bytes": comm.total_bytes,
            },
        )
        print(f"\nwrote telemetry snapshot to {args.emit_json}")
    return 0


def _cmd_chaos(args) -> int:
    """Fault-injection drill: guarded faulty run vs the fault-free run."""
    from repro.data import KAGGLE, SyntheticCTRDataset
    from repro.models import DLRMConfig, TTConfig, build_ttrec
    from repro.ops.optim import Adagrad
    from repro.reliability import DivergenceGuard, FaultInjector, GuardPolicy
    from repro.training import Trainer

    spec = KAGGLE.scaled(args.scale)
    cfg = DLRMConfig(table_sizes=spec.table_sizes, emb_dim=8,
                     bottom_mlp=(16,), top_mlp=(16,))
    tt = TTConfig(rank=args.rank, use_cache=True, warmup_steps=5,
                  refresh_interval=40, cache_fraction=0.05)

    def run(injector):
        model = build_ttrec(cfg, num_tt_tables=7, tt=tt, min_rows=50,
                            rng=args.seed)
        if injector is not None:
            for emb in model.embeddings:
                if hasattr(emb, "validate_reads"):
                    emb.injector = injector
                    emb.validate_reads = True
        guard = DivergenceGuard(GuardPolicy())
        trainer = Trainer(model, optimizer=Adagrad(model.parameters(), lr=0.05),
                          guard=guard, injector=injector)
        ds = SyntheticCTRDataset(spec, seed=args.seed, noise=0.6)
        res = trainer.train(ds.batches(64, args.iters))
        return res.smoothed_loss(50), guard

    if args.events_jsonl:
        from repro.telemetry import install_sink

        install_sink(args.events_jsonl)
    try:
        clean, _ = run(None)
        inj = FaultInjector(seed=args.fault_seed)
        if "grad" in args.sites:
            inj.register("trainer.grad", args.prob, kind="nan", max_elements=4)
        if "cache" in args.sites:
            inj.register("cache.row", args.prob, kind="nan", max_elements=2)
        faulted, guard = run(inj)
    finally:
        if args.events_jsonl:
            from repro.telemetry import uninstall_sink

            uninstall_sink()
    rel = abs(faulted - clean) / clean

    print(f"fault-free smoothed loss : {clean:.5f}")
    print(f"faulted    smoothed loss : {faulted:.5f}  (rel diff {rel:.2%})")
    print(f"injector: {inj.counters()}")
    print(f"guard   : {guard.events}")
    ok = rel <= args.tolerance
    print(f"{'PASS' if ok else 'FAIL'}: faulted run "
          f"{'within' if ok else 'exceeds'} {args.tolerance * 100:g}% "
          "of fault-free")
    if args.emit_json:
        from repro.telemetry import write_snapshot

        write_snapshot(args.emit_json, command="chaos", result={
            "clean_smoothed_loss": clean,
            "faulted_smoothed_loss": faulted,
            "rel_diff": rel,
            "tolerance": args.tolerance,
            "passed": ok,
            "injector": inj.counters(),
            "guard_events": guard.events,
        })
        print(f"wrote telemetry snapshot to {args.emit_json}")
    return 0 if ok else 1


def _setup_observability(args, clock):
    """serve-bench: arm request tracing, flight recorder, SLO engine.

    Returns ``(slo_engine, flight_recorder)`` (either may be ``None``);
    the caller owns teardown via :func:`_teardown_observability`.
    """
    slo = None
    recorder = None
    if args.slo:
        from repro.telemetry import SLOEngine, load_policy

        slo = SLOEngine(load_policy(args.slo))
    if args.trace_sample > 0:
        from repro.telemetry import get_request_tracer

        get_request_tracer().configure(
            sample_every=args.trace_sample, path=args.trace_jsonl,
            clock=clock.now, seed=args.seed,
        )
    if args.flight_dir:
        from repro.telemetry import FlightRecorder, install_flight_recorder

        recorder = install_flight_recorder(
            FlightRecorder(args.flight_dir, clock=clock.now)
        )
    return slo, recorder


def _teardown_observability() -> None:
    from repro.telemetry import get_request_tracer, uninstall_flight_recorder

    get_request_tracer().shutdown()
    uninstall_flight_recorder()


def _print_observability(args, report, recorder) -> bool:
    """Print the traces/flightrec/SLO sections; returns the SLO gate."""
    from repro.telemetry import format_report, get_request_tracer

    if args.trace_sample > 0:
        rt = get_request_tracer()
        print(f"traces    : {rt.finished} sampled (every "
              f"{args.trace_sample}th request id) -> {args.trace_jsonl}")
    if recorder is not None:
        summ = recorder.summary()
        if summ["dumps"]:
            print(f"flightrec : {len(summ['dumps'])} dump(s) in "
                  f"{args.flight_dir}: " + ", ".join(sorted(summ["dumps"])))
        else:
            print(f"flightrec : armed ({summ['events_seen']} events), "
                  f"no trigger fired")
    if "slo" in report:
        print(format_report(report["slo"]))
        return bool(report["slo"]["gate_passed"])
    return True


def _cmd_serve_bench(args) -> int:
    """Closed-loop load test of the hardened serving runtime."""
    import json

    from repro.data import KAGGLE
    from repro.inference import Predictor
    from repro.models import DLRMConfig, TTConfig, build_ttrec
    from repro.reliability import FaultInjector
    from repro.serving import InferenceServer, ManualClock, ServerConfig, run_load

    if args.budget_plan:
        from repro.compress import load_budget_plan
        from repro.models.ttrec import build_from_plan

        plan = load_budget_plan(args.budget_plan)
        model = build_from_plan(plan, rng=args.seed)
        print(f"serving a budget plan: {args.budget_plan} "
              f"({plan.total_bytes():,} B, kinds {sorted(set(plan.kinds()))})")
    else:
        spec = KAGGLE.scaled(args.scale)
        cfg = DLRMConfig(table_sizes=spec.table_sizes, emb_dim=8,
                         bottom_mlp=(16,), top_mlp=(16,))
        tt = TTConfig(rank=args.rank, use_cache=True, warmup_steps=0,
                      refresh_interval=None, cache_fraction=0.05)
        model = build_ttrec(cfg, num_tt_tables=7, tt=tt, min_rows=60,
                            rng=args.seed)

    injector = None
    if args.fault_rate > 0 or args.shard_fault_rate > 0:
        injector = FaultInjector(seed=args.fault_seed)
    if args.fault_rate > 0:
        injector.register("serving.request", args.fault_rate, kind="nan")
        injector.register("serving.queue", args.fault_rate)
        injector.register("serving.backend", args.fault_rate, kind="nan",
                          max_elements=4)
    if args.shard_fault_rate > 0:
        if args.shards < 1:
            print("error: --shard-fault-rate requires --shards N")
            return 2
        injector.register("shard.crash", args.shard_fault_rate / 4)
        injector.register("shard.hang", args.shard_fault_rate / 4)
        injector.register("shard.slow", args.shard_fault_rate)
        injector.register("shard.net_drop", args.shard_fault_rate)
    if args.kill_shard and args.shards < 1:
        print("error: --kill-shard requires --shards N")
        return 2

    if args.shards > 0:
        return _run_sharded_bench(args, model, injector)

    if args.events_jsonl:
        from repro.telemetry import install_sink

        install_sink(args.events_jsonl)
    clock = ManualClock()
    slo, recorder = _setup_observability(args, clock)
    try:
        server = InferenceServer(
            Predictor(model),
            config=ServerConfig(
                oov_policy=args.policy, max_depth=args.max_depth,
                max_batch=args.max_batch,
                default_deadline_ms=args.deadline_ms, cooldown=10,
            ),
            injector=injector, clock=clock,
        )
        report = run_load(
            server, num_requests=args.requests,
            mean_interarrival_ms=args.interarrival_ms,
            deadline_ms=args.deadline_ms, malformed=args.malformed,
            seed=args.seed, clock=clock, slo=slo,
        )
    finally:
        _teardown_observability()
        if args.events_jsonl:
            from repro.telemetry import uninstall_sink

            uninstall_sink()

    lat = report["latency_ms"]
    out = report["outcomes"]
    print(f"serve-bench: {args.requests} requests, batch<= "
          f"{args.max_batch}, deadline {args.deadline_ms:g} ms, "
          f"fault rate {args.fault_rate:g}, malformed {args.malformed:g}")
    print(f"latency   : p50 {lat['p50']:.2f} ms  p99 {lat['p99']:.2f} ms  "
          f"max {lat['max']:.2f} ms")
    print(f"outcomes  : served {report['served']}  queued {out['queued']}  "
          f"rejected {out['rejected']}  shed {out['shed']} "
          f"(+{report['shed']['deadline']} at deadline)  "
          f"shed rate {report['shed_rate']:.1%}")
    print(f"degraded  : {report['degraded_responses']} responses via "
          f"fallback rungs; backend failures "
          f"{report['stats']['backend_failures']}; scrubbed rows "
          f"{report['stats']['scrubbed_rows']}")
    transitions = report["breaker_transitions"]
    shown = ", ".join(f"{t['breaker']}:{t['from']}->{t['to']}"
                      for t in transitions[:6])
    print(f"breakers  : {len(transitions)} transitions"
          + (f" ({shown}{', ...' if len(transitions) > 6 else ''})"
             if transitions else ""))
    print(f"health    : {report['health']['status']}  "
          f"non-finite outputs {report['non_finite_outputs']}")

    ok = report["non_finite_outputs"] == 0
    recon = report["reconciliation"]
    reconciled = recon["checked"] and args.malformed == 0
    if reconciled:
        ok = ok and recon["passed"]
        print("reconcile :")
        for name, check in recon["checks"].items():
            print(f"  {name:28s} fired={check['fired']:<4d} "
                  f"counted={check['counted']:<4d} "
                  f"{'ok' if check['passed'] else 'MISMATCH'}")
    elif recon["checked"]:
        print("reconcile : skipped (malformed traffic mixes with injected "
              "faults)")
    ok = _print_observability(args, report, recorder) and ok
    print(f"{'PASS' if ok else 'FAIL'}: "
          + ("zero non-finite outputs"
             + (", ledgers reconcile" if reconciled else "")
             if ok else "see mismatches above"))
    if args.emit_json:
        from repro.telemetry import write_snapshot

        write_snapshot(args.emit_json, command="serve-bench",
                       result={"report": report, "passed": ok})
        print(f"wrote telemetry snapshot to {args.emit_json}")
    return 0 if ok else 1


def _run_sharded_bench(args, model, injector) -> int:
    """``serve-bench --shards N``: the sharded-tier chaos drill.

    Exit is non-zero on any non-finite output, an out-of-balance chaos
    ledger (clean traffic only), or failover p99 above
    ``--failover-p99-ms`` — the contract the ``serving-chaos`` CI job
    relies on.
    """
    import json

    from repro.inference import Predictor
    from repro.serving import ManualClock, ServerConfig
    from repro.sharding import (
        ShardConfig,
        ShardRouter,
        parse_kill_spec,
        run_sharded_load,
    )

    kill_specs = [parse_kill_spec(s) for s in (args.kill_shard or [])]
    if args.events_jsonl:
        from repro.telemetry import install_sink

        install_sink(args.events_jsonl)
    clock = ManualClock()
    slo, recorder = _setup_observability(args, clock)
    try:
        router = ShardRouter(
            Predictor(model),
            config=ServerConfig(
                oov_policy=args.policy, max_depth=args.max_depth,
                max_batch=args.max_batch,
                default_deadline_ms=args.deadline_ms, cooldown=10,
            ),
            shard_config=ShardConfig(num_shards=args.shards),
            injector=injector, clock=clock,
        )
        report = run_sharded_load(
            router, num_requests=args.requests,
            mean_interarrival_ms=args.interarrival_ms,
            deadline_ms=args.deadline_ms, malformed=args.malformed,
            seed=args.seed, clock=clock, kill_specs=kill_specs, slo=slo,
        )
    finally:
        _teardown_observability()
        if args.events_jsonl:
            from repro.telemetry import uninstall_sink

            uninstall_sink()

    lat = report["latency_ms"]
    out = report["outcomes"]
    kills = ", ".join(f"s{k.shard}@{k.at_ms:g}ms" for k in kill_specs) \
        or "none"
    print(f"serve-bench: {args.requests} requests across {args.shards} "
          f"shards, deadline {args.deadline_ms:g} ms, kills: {kills}")
    print(f"topology  : spread {report['stats']['topology']['spread']}, "
          f"{len(report['stats']['topology']['slices'])} slices")
    print(f"latency   : p50 {lat['p50']:.2f} ms  p99 {lat['p99']:.2f} ms  "
          f"max {lat['max']:.2f} ms")
    print(f"outcomes  : served {report['served']}  queued {out['queued']}  "
          f"rejected {out['rejected']}  shed {out['shed']} "
          f"(+{report['shed']['deadline']} at deadline)  "
          f"shed rate {report['shed_rate']:.1%}")
    fo = report["failover_ms"]
    print(f"failover  : {report['failovers']} failovers  "
          f"replica hits {report['replica_hits']}  prior fills "
          f"{report['prior_fills']}  latency mean {fo['mean']:.2f} ms  "
          f"p99 {fo['p99']:.2f} ms")
    for s in report["per_shard"]:
        print(f"  shard {s['shard']}: {s['state']:9s} "
              f"dispatches {s['dispatches']:<5d} "
              f"p99 {s['p99_ms']:6.2f} ms  hb {s['heartbeats']:<4d} "
              f"crash {s['crashes']} hang {s['hangs']} slow {s['slows']} "
              f"drop {s['net_drops']} rewarmed {s['rewarmed_rows']}")
    print(f"health    : {report['health']['status']}  shards up "
          f"{report['health']['shards']['up']}/"
          f"{report['health']['shards']['total']}  non-finite outputs "
          f"{report['non_finite_outputs']}")

    ok = report["non_finite_outputs"] == 0
    recon = report["reconciliation"]
    reconciled = recon["checked"] and args.malformed == 0
    if reconciled:
        ok = ok and recon["passed"]
        print("reconcile :")
        for name, check in recon["checks"].items():
            print(f"  {name:28s} fired={check['fired']:<4d} "
                  f"counted={check['counted']:<4d} "
                  f"{'ok' if check['passed'] else 'MISMATCH'}")
    elif recon["checked"]:
        print("reconcile : skipped (malformed traffic mixes with injected "
              "faults)")
    if args.failover_p99_ms is not None:
        within = fo["p99"] <= args.failover_p99_ms
        ok = ok and within
        print(f"threshold : failover p99 {fo['p99']:.2f} ms "
              f"{'<=' if within else '>'} {args.failover_p99_ms:g} ms "
              f"{'ok' if within else 'FAIL'}")
    if kill_specs or args.shard_fault_rate > 0:
        readmitted = report["ready"]["full_capacity"]
        ok = ok and readmitted
        print(f"recovery  : {report['ready']['shards_up']}/{args.shards} "
              f"shards up after quiesce "
              f"{'ok' if readmitted else 'FAIL (not readmitted)'}")
    ok = _print_observability(args, report, recorder) and ok
    print(f"{'PASS' if ok else 'FAIL'}: "
          + ("zero non-finite outputs"
             + (", ledgers reconcile" if reconciled else "")
             if ok else "see mismatches above"))
    if args.per_shard_json:
        with open(args.per_shard_json, "w") as fh:
            json.dump({
                "per_shard": report["per_shard"],
                "failover_ms": report["failover_ms"],
                "failovers": report["failovers"],
                "replica_hits": report["replica_hits"],
                "prior_fills": report["prior_fills"],
                "reconciliation": recon,
                "topology": report["stats"]["topology"],
                "passed": ok,
            }, fh, indent=2)
        print(f"wrote per-shard report to {args.per_shard_json}")
    if args.emit_json:
        from repro.telemetry import write_snapshot

        write_snapshot(args.emit_json, command="serve-bench",
                       result={"report": report, "passed": ok})
        print(f"wrote telemetry snapshot to {args.emit_json}")
    return 0 if ok else 1


def _cmd_trace(args) -> int:
    """Inspect a ``repro.trace/v1`` JSONL: span trees + critical paths."""
    import json

    from repro.telemetry import (
        critical_path,
        format_trace_tree,
        read_trace,
        slowest_traces,
    )

    try:
        traces = read_trace(args.jsonl)
    except FileNotFoundError:
        print(f"repro trace: no such file: {args.jsonl}", file=sys.stderr)
        return 2
    except (ValueError, json.JSONDecodeError) as exc:
        print(f"repro trace: invalid trace file: {exc}", file=sys.stderr)
        return 2
    if not traces:
        print("repro trace: file holds no traces", file=sys.stderr)
        return 1
    if args.trace_id:
        if args.trace_id not in traces:
            print(f"repro trace: trace {args.trace_id} not found "
                  f"({len(traces)} trace(s) in file)", file=sys.stderr)
            return 2
        selected = [(args.trace_id, traces[args.trace_id])]
    else:
        selected = slowest_traces(traces, args.slowest)
        print(f"{len(traces)} trace(s); showing the {len(selected)} slowest")
    for tid, spans in selected:
        print(format_trace_tree(tid, spans))
        if args.critical_path:
            chain = " -> ".join(
                f"{rec['name']} ({rec['end_ms'] - rec['start_ms']:.2f} ms)"
                for rec in critical_path(spans)
            )
            print(f"  critical path: {chain}")
    return 0


def _cmd_slo_report(args) -> int:
    """Re-render a stored SLO report; exit code follows the gate."""
    import json

    from repro.telemetry import REPORT_SCHEMA, format_report

    try:
        with open(args.json) as fh:
            doc = json.load(fh)
    except FileNotFoundError:
        print(f"repro slo-report: no such file: {args.json}",
              file=sys.stderr)
        return 2
    except json.JSONDecodeError as exc:
        print(f"repro slo-report: invalid JSON: {exc}", file=sys.stderr)
        return 2
    if doc.get("schema") == REPORT_SCHEMA:
        rep = doc
    else:
        # Accept a serve-bench --emit-json snapshot with a nested report.
        rep = (doc.get("result", {}).get("report", {}) or {}).get("slo")
        if not isinstance(rep, dict) or rep.get("schema") != REPORT_SCHEMA:
            print(f"repro slo-report: {args.json} holds no "
                  f"{REPORT_SCHEMA} document", file=sys.stderr)
            return 2
    print(format_report(rep))
    return 0 if rep["gate_passed"] else 1


def _explain_rule(rule_id: str) -> int:
    """Print a rule's documentation (id, summary, rationale, examples)."""
    import inspect

    from repro.analysis.static.contracts import all_passes
    from repro.analysis.static.core import all_rules

    entries = {**all_rules(), **all_passes()}
    cls = entries.get(rule_id.upper())
    if cls is None:
        print(f"repro lint: unknown rule id '{rule_id}'; available: "
              + ", ".join(sorted(entries)), file=sys.stderr)
        return 2
    print(f"{cls.id}: {cls.summary}")
    doc = inspect.getdoc(cls)
    if doc:
        print()
        print(doc)
    return 0


def _cmd_lint(args) -> int:
    from repro.analysis.static.runner import (
        format_json,
        format_text,
        lint_paths,
        load_config,
        write_baseline,
    )
    from repro.analysis.static.sarif import format_sarif

    if args.explain:
        return _explain_rule(args.explain)

    config = load_config(args.config)
    if args.select:
        config.select = [r.upper() for r in args.select]
    if args.ignore:
        config.ignore = [r.upper() for r in args.ignore]
    changed = None
    if args.diff_base:
        from repro.analysis.static.diff import changed_lines

        try:
            changed = changed_lines(args.diff_base)
        except ValueError as exc:
            print(f"repro lint: {exc}", file=sys.stderr)
            return 2
    try:
        report = lint_paths(args.paths, config=config,
                            baseline=args.baseline, changed=changed)
    except (FileNotFoundError, ValueError) as exc:
        print(f"repro lint: {exc}", file=sys.stderr)
        return 2
    if args.write_baseline:
        write_baseline(report, args.write_baseline)
        print(f"wrote baseline with {len(report.findings)} key(s) to "
              f"{args.write_baseline}")
        return 0
    if args.format in ("json", "sarif"):
        text = format_json(report) if args.format == "json" \
            else format_sarif(report)
        if args.output:
            from pathlib import Path

            Path(args.output).write_text(text + "\n", encoding="utf-8")
            print(f"wrote lint report to {args.output} "
                  f"({len(report.findings)} finding(s))")
        else:
            print(text)
    else:
        print(format_text(report))
    return 0 if report.ok else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="TT-Rec reproduction toolkit"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("table2", help="regenerate paper Table 2 (exact)")
    p.add_argument("--ranks", type=int, nargs="+", default=[16, 32, 64])
    p.set_defaults(fn=_cmd_table2)

    p = sub.add_parser("sizes", help="whole-model compression (Fig. 5 / §6)")
    p.add_argument("--rank", type=int, default=32)
    p.add_argument("--tables", type=int, nargs="+", default=[3, 5, 7])
    p.set_defaults(fn=_cmd_sizes)

    p = sub.add_parser(
        "plan",
        help="auto-tune ranks for a memory budget, or (--kernel) report "
             "the batch execution planner's schedule choice",
    )
    p.add_argument("--dataset", choices=["kaggle", "terabyte"], default="kaggle")
    p.add_argument("--budget-mb", type=float, default=20.0)
    p.add_argument("--top", type=int, default=10, help="tables to display")
    p.add_argument("--kernel", action="store_true",
                   help="kernel-planner mode: chosen contraction schedule "
                        "and predicted vs measured FLOPs (docs/KERNELS.md)")
    p.add_argument("--rows", type=int, default=100_000,
                   help="[--kernel] logical table rows")
    p.add_argument("--dim", type=int, default=16, help="[--kernel] embedding dim")
    p.add_argument("--rank", type=int, default=16, help="[--kernel] TT rank")
    p.add_argument("--d", type=int, default=3, help="[--kernel] TT cores")
    p.add_argument("--batch", type=int, default=4096, help="[--kernel] batch size")
    p.add_argument("--pooling", type=int, default=1,
                   help="[--kernel] lookups per bag")
    p.add_argument("--zipf", type=float, default=None,
                   help="[--kernel] Zipf exponent (default: uniform traffic)")
    p.add_argument("--policy", default="auto",
                   help="[--kernel] auto | fixed | l2r | r2l | split:<k>")
    p.add_argument("--no-dedup", action="store_true",
                   help="[--kernel] disable batch deduplication")
    p.add_argument("--iters", type=int, default=20,
                   help="[--kernel] timed iterations")
    p.add_argument("--seed", type=int, default=0, help="[--kernel] workload seed")
    p.set_defaults(fn=_cmd_plan)

    p = sub.add_parser(
        "plan-budget",
        help="pick a compressor per table (full zoo) under one global "
             "byte budget (docs/COMPRESSION.md)",
    )
    p.add_argument("--budget-mb", type=float, required=True,
                   help="global embedding byte budget, in MB")
    p.add_argument("--tables-file", default=None, metavar="PATH",
                   help="JSON table stats: {\"tables\": [{num_rows, dim, "
                        "zipf_s, traffic, name}, ...]} (overrides --dataset)")
    p.add_argument("--dataset", choices=["kaggle", "terabyte"],
                   default="kaggle")
    p.add_argument("--scale", type=float, default=None,
                   help="scale the dataset spec's table sizes first")
    p.add_argument("--zipf", type=float, default=1.05,
                   help="access skew assumed for --dataset tables")
    p.add_argument("--mode", choices=["sum", "mean"], default="sum")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--min-compress-rows", type=int, default=0,
                   help="tables below this stay dense")
    p.add_argument("--include-inference-only", action="store_true",
                   help="let the planner pick inference-only compressors "
                        "(post-training quantization)")
    p.add_argument("--top", type=int, default=10, help="tables to display")
    p.add_argument("--emit-json", default=None, metavar="PATH",
                   help="write the repro.budget_plan/v1 JSON here")
    p.set_defaults(fn=_cmd_plan_budget)

    p = sub.add_parser("locality", help="hot-set stability trace (Fig. 9 style)")
    p.add_argument("--rows", type=int, default=100_000)
    p.add_argument("--zipf", type=float, default=1.05)
    p.add_argument("--accesses", type=int, default=200_000)
    p.add_argument("--k", type=int, default=1000)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(fn=_cmd_locality)

    p = sub.add_parser("report", help="write all no-training analyses to markdown")
    p.add_argument("--out", default="REPORT.md")
    p.set_defaults(fn=_cmd_report)

    p = sub.add_parser("train", help="demo training: baseline vs TT-Rec")
    p.add_argument("--iters", type=int, default=200)
    p.add_argument("--rank", type=int, default=16)
    p.add_argument("--scale", type=float, default=0.0005)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--checkpoint-dir", default=None,
                   help="directory for periodic checkpoints (per model)")
    p.add_argument("--checkpoint-every", type=int, default=50,
                   help="iterations between checkpoints")
    p.add_argument("--resume", action="store_true",
                   help="resume each model from its latest checkpoint")
    p.add_argument("--emit-json", default=None, metavar="PATH",
                   help="write a repro.telemetry/v1 snapshot JSON")
    p.add_argument("--elastic", action="store_true",
                   help="run the elastic fault-tolerant distributed drill "
                        "instead of the single-worker comparison")
    p.add_argument("--workers", type=int, default=4,
                   help="data-parallel workers for --elastic")
    p.add_argument("--batch-size", type=int, default=96,
                   help="global batch size for --elastic")
    p.add_argument("--kill-worker", action="append", default=None,
                   metavar="W@STEP",
                   help="kill worker W when batch STEP is fed (repeatable; "
                        "requires --elastic)")
    p.add_argument("--dist-crash", type=float, default=0.0,
                   help="per-probe dist.crash rate (--elastic)")
    p.add_argument("--dist-hang", type=float, default=0.0,
                   help="per-probe dist.hang rate (--elastic)")
    p.add_argument("--dist-slow", type=float, default=0.0,
                   help="per-dispatch dist.slow rate (--elastic)")
    p.add_argument("--dist-net-drop", type=float, default=0.0,
                   help="per-message dist.net_drop rate (--elastic)")
    p.add_argument("--fault-seed", type=int, default=123)
    p.add_argument("--recovery-ms-max", type=float, default=None,
                   help="fail if the worst recovery exceeds this many "
                        "simulated ms (--elastic)")
    p.add_argument("--flight-dir", default=None, metavar="DIR",
                   help="arm the flight recorder; trigger dumps land "
                        "here as flightrec-<event>.json (--elastic)")
    p.set_defaults(fn=_cmd_train)

    p = sub.add_parser("profile",
                       help="span tree + metrics registry for a short "
                            "instrumented workload")
    p.add_argument("--iters", type=int, default=60)
    p.add_argument("--rank", type=int, default=16)
    p.add_argument("--scale", type=float, default=0.0005)
    p.add_argument("--batch-size", type=int, default=96)
    p.add_argument("--world-size", type=int, default=4,
                   help="simulated workers for the collective leg")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--emit-json", default=None, metavar="PATH",
                   help="write a repro.telemetry/v1 snapshot JSON")
    p.add_argument("--events-jsonl", default=None, metavar="PATH",
                   help="stream telemetry events to a JSONL file")
    p.set_defaults(fn=_cmd_profile)

    p = sub.add_parser("chaos",
                       help="fault-injection drill: guarded run vs fault-free")
    p.add_argument("--iters", type=int, default=300)
    p.add_argument("--rank", type=int, default=8)
    p.add_argument("--scale", type=float, default=0.0003)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--fault-seed", type=int, default=123)
    p.add_argument("--sites", nargs="+", choices=["grad", "cache"],
                   default=["grad", "cache"])
    p.add_argument("--prob", type=float, default=0.02,
                   help="per-site fault probability")
    p.add_argument("--tolerance", type=float, default=0.01,
                   help="allowed relative smoothed-loss gap vs fault-free")
    p.add_argument("--emit-json", default=None, metavar="PATH",
                   help="write a repro.telemetry/v1 snapshot JSON")
    p.add_argument("--events-jsonl", default=None, metavar="PATH",
                   help="stream telemetry events to a JSONL file")
    p.set_defaults(fn=_cmd_chaos)

    p = sub.add_parser("serve-bench",
                       help="closed-loop load test of the hardened serving "
                            "runtime (docs/SERVING.md)")
    p.add_argument("--requests", type=int, default=1000)
    p.add_argument("--rank", type=int, default=4)
    p.add_argument("--scale", type=float, default=0.0005)
    p.add_argument("--budget-plan", default=None, metavar="PATH",
                   help="serve the embedding stack from a "
                        "repro.budget_plan/v1 JSON (plan-budget --emit-json) "
                        "instead of the default TT model")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--policy", choices=["clamp", "hash", "reject"],
                   default="clamp", help="out-of-vocabulary id policy")
    p.add_argument("--max-depth", type=int, default=64,
                   help="queue depth bound (arrivals beyond it are shed)")
    p.add_argument("--max-batch", type=int, default=32)
    p.add_argument("--deadline-ms", type=float, default=100.0)
    p.add_argument("--interarrival-ms", type=float, default=1.0,
                   help="mean simulated gap between arrivals")
    p.add_argument("--malformed", type=float, default=0.0,
                   help="fraction of deliberately malformed requests")
    p.add_argument("--fault-rate", type=float, default=0.0,
                   help="per-probe probability at every serving.* site")
    p.add_argument("--fault-seed", type=int, default=123)
    p.add_argument("--shards", type=int, default=0,
                   help="run the sharded tier with N shard workers "
                        "(0 = single-process server)")
    p.add_argument("--kill-shard", action="append", default=None,
                   metavar="SPEC",
                   help="scheduled shard kill <shard>@<time>[ms|s], e.g. "
                        "1@2s; repeatable (sharded mode)")
    p.add_argument("--shard-fault-rate", type=float, default=0.0,
                   help="per-probe probability at the shard.* chaos sites "
                        "(sharded mode)")
    p.add_argument("--failover-p99-ms", type=float, default=None,
                   help="fail when failover p99 exceeds this many "
                        "simulated ms (sharded mode)")
    p.add_argument("--per-shard-json", default=None, metavar="PATH",
                   help="write the per-shard JSON report (sharded mode)")
    p.add_argument("--slo", default=None, metavar="POLICY",
                   help="SLO policy JSON (repro.slo/v1): evaluate "
                        "burn-rate objectives and gate the exit code")
    p.add_argument("--trace-sample", type=int, default=0, metavar="N",
                   help="trace every Nth request id as repro.trace/v1 "
                        "JSONL (0 = tracing off)")
    p.add_argument("--trace-jsonl", default="serve_trace.jsonl",
                   metavar="PATH",
                   help="where --trace-sample writes span records")
    p.add_argument("--flight-dir", default=None, metavar="DIR",
                   help="arm the flight recorder; trigger dumps land "
                        "here as flightrec-<event>.json")
    p.add_argument("--emit-json", default=None, metavar="PATH",
                   help="write a repro.telemetry/v1 snapshot JSON")
    p.add_argument("--events-jsonl", default=None, metavar="PATH",
                   help="stream telemetry events to a JSONL file")
    p.set_defaults(fn=_cmd_serve_bench)

    p = sub.add_parser("trace",
                       help="inspect a repro.trace/v1 JSONL written by "
                            "serve-bench --trace-sample")
    p.add_argument("jsonl", help="trace JSONL file")
    p.add_argument("--trace-id", default=None,
                   help="show one trace by id (default: the slowest N)")
    p.add_argument("--slowest", type=int, default=3, metavar="N",
                   help="how many slowest traces to show")
    p.add_argument("--critical-path", action="store_true",
                   help="append the longest root-to-leaf chain per trace")
    p.set_defaults(fn=_cmd_trace)

    p = sub.add_parser("slo-report",
                       help="render a stored SLO burn-rate report; exit 1 "
                            "when a gated objective was violated")
    p.add_argument("json", help="repro.slo-report/v1 JSON, or a "
                                "serve-bench --emit-json snapshot")
    p.set_defaults(fn=_cmd_slo_report)

    p = sub.add_parser("lint",
                       help="project-specific static analysis "
                            "(docs/STATIC_ANALYSIS.md); exit 1 on findings")
    p.add_argument("paths", nargs="*", default=["src"],
                   help="files or directories to lint (default: src)")
    p.add_argument("--format", choices=["text", "json", "sarif"],
                   default="text")
    p.add_argument("--select", nargs="+", metavar="RULE", default=None,
                   help="run only these rule ids")
    p.add_argument("--ignore", nargs="+", metavar="RULE", default=None,
                   help="skip these rule ids")
    p.add_argument("--diff-base", default=None, metavar="REF",
                   help="report only findings on lines changed since this "
                        "git ref (e.g. origin/main)")
    p.add_argument("--explain", default=None, metavar="RULE",
                   help="print a rule's documentation and exit")
    p.add_argument("--baseline", default=None, metavar="PATH",
                   help="JSON baseline of grandfathered finding keys")
    p.add_argument("--write-baseline", default=None, metavar="PATH",
                   help="write current findings as a baseline and exit 0")
    p.add_argument("--config", default=None, metavar="PYPROJECT",
                   help="pyproject.toml to read [tool.repro.lint] from "
                        "(default: nearest to cwd)")
    p.add_argument("--output", default=None, metavar="PATH",
                   help="with --format json, write the report here")
    p.set_defaults(fn=_cmd_lint)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
