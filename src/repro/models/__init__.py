"""DLRM model assembly (paper Fig. 2) and the TT-Rec variant."""

from repro.models.config import DLRMConfig, TTConfig
from repro.models.dlrm import DLRM
from repro.models.serialization import (
    load_model,
    load_state_dict,
    parameter_keys,
    save_model,
    state_dict,
)
from repro.models.ttrec import build_dlrm, build_ttrec, largest_tables

__all__ = [
    "DLRMConfig",
    "TTConfig",
    "DLRM",
    "build_dlrm",
    "build_ttrec",
    "largest_tables",
    "save_model",
    "load_model",
    "state_dict",
    "load_state_dict",
    "parameter_keys",
]
