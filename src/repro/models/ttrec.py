"""Factories assembling baseline DLRM and TT-Rec models from a config.

The paper's "TT-Emb. of N" settings compress the N *largest* embedding
tables (which dominate model size — 99% for Kaggle) and leave the small
tables dense; :func:`build_ttrec` encodes that convention.
"""

from __future__ import annotations

import numpy as np

from repro.cache.cached_embedding import CachedTTEmbeddingBag
from repro.models.config import DLRMConfig, TTConfig
from repro.models.dlrm import DLRM
from repro.ops.embedding import EmbeddingBag
from repro.tt.embedding_bag import TTEmbeddingBag
from repro.utils.seeding import as_rng

__all__ = ["largest_tables", "build_dlrm", "build_ttrec", "build_from_plan"]

# Tables smaller than this are never worth compressing: the TT cores would
# outweigh the dense rows. Matches the paper's practice of compressing only
# the multi-hundred-thousand-row tables.
MIN_COMPRESSIBLE_ROWS = 10_000


def largest_tables(table_sizes: tuple[int, ...], n: int) -> list[int]:
    """Indices of the ``n`` largest tables (ties broken by index)."""
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    order = sorted(range(len(table_sizes)), key=lambda i: (-table_sizes[i], i))
    return sorted(order[:n])


def _make_embedding(num_rows: int, dim: int, tt: TTConfig | None,
                    rng: np.random.Generator, name: str):
    if tt is None:
        return EmbeddingBag(num_rows, dim, rng=rng, name=name)
    if tt.use_cache:
        return CachedTTEmbeddingBag(
            num_rows, dim, rank=tt.rank, d=tt.d, initializer=tt.initializer,
            cache_size=tt.cache_size, cache_fraction=tt.cache_fraction,
            warmup_steps=tt.warmup_steps, refresh_interval=tt.refresh_interval,
            policy=tt.policy, eviction=tt.eviction, dedup=tt.dedup,
            plan_policy=tt.plan_policy, rng=rng, name=name,
        )
    return TTEmbeddingBag(
        num_rows, dim, rank=tt.rank, d=tt.d, initializer=tt.initializer,
        store_intermediates=tt.store_intermediates, dedup=tt.dedup,
        plan_policy=tt.plan_policy, rng=rng, name=name,
    )


def build_dlrm(config: DLRMConfig,
               rng: int | None | np.random.Generator = None) -> DLRM:
    """Build a DLRM honouring ``config.tt_tables`` (empty map = baseline)."""
    rng = as_rng(rng if rng is not None else config.seed)
    embeddings = [
        _make_embedding(size, config.emb_dim, config.tt_tables.get(i), rng, f"emb{i}")
        for i, size in enumerate(config.table_sizes)
    ]
    return DLRM(config, embeddings, rng=rng)


def build_ttrec(config: DLRMConfig, *, num_tt_tables: int,
                tt: TTConfig | None = None,
                min_rows: int = MIN_COMPRESSIBLE_ROWS,
                rng: int | None | np.random.Generator = None) -> DLRM:
    """Build TT-Rec: compress the ``num_tt_tables`` largest tables.

    Tables below ``min_rows`` rows are skipped even if they fall in the
    top-N (compressing a tiny table costs parameters). Lower ``min_rows``
    when training on a :meth:`~repro.data.specs.DatasetSpec.scaled` spec.
    """
    tt = tt or TTConfig()
    chosen = [
        i for i in largest_tables(config.table_sizes, num_tt_tables)
        if config.table_sizes[i] >= min_rows
    ]
    cfg = config.with_(tt_tables={i: tt for i in chosen})
    return build_dlrm(cfg, rng=rng)


def build_from_plan(plan, *, config: DLRMConfig | None = None,
                    rng: int | None | np.random.Generator = None) -> DLRM:
    """Build a DLRM whose embedding stack follows a ``BudgetPlan``.

    ``plan`` is a :class:`repro.compress.planner.BudgetPlan` (e.g. from
    ``repro plan-budget --emit-json`` via
    :func:`repro.compress.planner.load_budget_plan`). Each table is built
    through the compression-zoo factory, so any registered compressor —
    not just dense/TT — can appear per table. When ``config`` is given,
    its table sizes and embedding dim must match the plan; otherwise a
    default config is derived from the plan.
    """
    from repro.compress import make_embedding  # deferred: avoids cycles

    if not plan.tables:
        raise ValueError("plan has no tables")
    dims = {t.spec.dim for t in plan.tables}
    if len(dims) != 1:
        raise ValueError(f"plan mixes embedding dims {sorted(dims)}; "
                         "DLRM needs one emb_dim across tables")
    sizes = tuple(t.spec.num_rows for t in plan.tables)
    if config is None:
        config = DLRMConfig(table_sizes=sizes, emb_dim=dims.pop(),
                            seed=plan.seed)
    else:
        if tuple(config.table_sizes) != sizes or config.emb_dim != dims.pop():
            raise ValueError("config table_sizes/emb_dim do not match the plan")
    rng = as_rng(rng if rng is not None else config.seed)
    embeddings = [make_embedding(t.spec)
                  for t in sorted(plan.tables, key=lambda t: t.index)]
    return DLRM(config, embeddings, rng=rng)
