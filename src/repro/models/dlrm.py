"""The DLRM model (paper Fig. 2): bottom MLP + embeddings + interaction + top MLP.

The embedding layer of each categorical feature is pluggable — dense
:class:`~repro.ops.embedding.EmbeddingBag` (baseline),
:class:`~repro.tt.embedding_bag.TTEmbeddingBag` (TT-Rec), or
:class:`~repro.cache.cached_embedding.CachedTTEmbeddingBag` (TT-Rec with
cache) — which is exactly the swap the yellow box in Fig. 2 depicts.
"""

from __future__ import annotations

import numpy as np

from repro.models.config import DLRMConfig
from repro.ops.interaction import CatInteraction, DotInteraction
from repro.ops.mlp import MLP
from repro.ops.module import Module
from repro.utils.seeding import as_rng

__all__ = ["DLRM"]


class DLRM(Module):
    """Deep Learning Recommendation Model with pluggable embedding operators.

    Parameters
    ----------
    config:
        Architecture description (table sizes, tower widths, interaction).
    embeddings:
        One embedding operator per categorical feature; each must expose
        ``forward(indices, offsets, per_sample_weights) -> (B, emb_dim)``,
        ``backward(grad)`` and behave as a :class:`~repro.ops.module.Module`.
    """

    def __init__(self, config: DLRMConfig, embeddings: list,
                 rng: int | None | np.random.Generator = None):
        if len(embeddings) != config.num_tables:
            raise ValueError(
                f"expected {config.num_tables} embedding operators, got {len(embeddings)}"
            )
        rng = as_rng(rng)
        self.config = config
        self.bottom_mlp = MLP(config.bottom_sizes(), rng=rng, name="bottom")
        self.embeddings = list(embeddings)
        if config.interaction == "dot":
            self.interaction = DotInteraction()
        else:
            self.interaction = CatInteraction()
        self.top_mlp = MLP(config.top_sizes(), rng=rng, name="top")

    # ------------------------------------------------------------------ #

    def forward(self, dense: np.ndarray, sparse: list[tuple[np.ndarray, np.ndarray]],
                per_sample_weights: list[np.ndarray] | None = None) -> np.ndarray:
        """Compute logits for a batch.

        Parameters
        ----------
        dense:
            ``(B, num_dense)`` continuous features.
        sparse:
            One ``(indices, offsets)`` CSR pair per table, each describing
            ``B`` bags.
        per_sample_weights:
            Optional per-table weight arrays aligned with each ``indices``.

        Returns
        -------
        ``(B,)`` raw logits (apply sigmoid or feed to BCE-with-logits).
        """
        dense = np.asarray(dense, dtype=np.float64)
        if len(sparse) != len(self.embeddings):
            raise ValueError(
                f"expected {len(self.embeddings)} sparse inputs, got {len(sparse)}"
            )
        x = self.bottom_mlp.forward(dense)
        pooled = []
        for t, (indices, offsets) in enumerate(sparse):
            w = per_sample_weights[t] if per_sample_weights is not None else None
            v = self.embeddings[t].forward(indices, offsets, w)
            if v.shape != x.shape:
                raise ValueError(
                    f"table {t} produced shape {v.shape}, expected {x.shape}; "
                    "bag count must equal the dense batch size"
                )
            pooled.append(v)
        z = self.interaction.forward(x, pooled)
        logits = self.top_mlp.forward(z)
        return logits.reshape(-1)

    def backward(self, grad_logits: np.ndarray) -> None:
        """Backprop a ``(B,)`` logit gradient through the whole model."""
        grad = np.asarray(grad_logits, dtype=np.float64).reshape(-1, 1)
        grad_z = self.top_mlp.backward(grad)
        grad_x, grad_sparse = self.interaction.backward(grad_z)
        self.bottom_mlp.backward(grad_x)
        for emb, g in zip(self.embeddings, grad_sparse):
            emb.backward(g)

    __call__ = forward

    # ------------------------------------------------------------------ #

    def embedding_parameters(self) -> int:
        """Scalar parameters held by the embedding operators."""
        return sum(e.num_parameters() for e in self.embeddings)

    def mlp_parameters(self) -> int:
        """Scalar parameters held by the two towers."""
        return self.bottom_mlp.num_parameters() + self.top_mlp.num_parameters()

    def predict_proba(self, dense: np.ndarray,
                      sparse: list[tuple[np.ndarray, np.ndarray]]) -> np.ndarray:
        """Click probabilities (sigmoid of logits), no backward cache kept."""
        logits = self.forward(dense, sparse)
        out = np.empty_like(logits)
        pos = logits >= 0
        out[pos] = 1.0 / (1.0 + np.exp(-logits[pos]))
        ex = np.exp(logits[~pos])
        out[~pos] = ex / (1.0 + ex)
        return out
