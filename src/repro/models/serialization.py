"""Model checkpointing: save/load any Module's parameters as ``.npz``.

Parameters are addressed by their ``name`` attribute (every layer in this
package names its parameters uniquely), so a checkpoint written from one
process loads into a freshly-constructed model of the same configuration.
"""

from __future__ import annotations

import os

import numpy as np

from repro.ops.module import Module

__all__ = ["save_model", "load_model", "state_dict", "load_state_dict",
           "named_modules", "parameter_keys"]


def _npz_path(path: str | os.PathLike, *, for_load: bool = False) -> str:
    """Normalize a checkpoint path to carry the ``.npz`` suffix.

    ``np.savez_compressed`` appends ``.npz`` when the suffix is missing,
    so both directions must agree on the on-disk name or
    ``save_model(m, "ckpt")`` + ``load_model(m, "ckpt")`` would look for
    two different files. When loading, an exactly-matching existing file
    wins (checkpoints written by other tools keep working).
    """
    p = os.fspath(path)
    if p.endswith(".npz"):
        return p
    if for_load and os.path.exists(p):
        return p
    return p + ".npz"


def _keys(model: Module) -> list[str]:
    """Stable checkpoint keys: ``<position>:<name>``.

    ``Module.parameters()`` walks the attribute graph deterministically, so
    the positional prefix makes keys unique even when two layers share a
    default parameter name (e.g. several ``emb.weight`` tables), while the
    name suffix keeps checkpoints human-readable.
    """
    return [f"{i:04d}:{p.name}" for i, p in enumerate(model.parameters())]


def parameter_keys(model: Module) -> list[str]:
    """Checkpoint key of every parameter, in ``Module.parameters()`` order.

    The public face of the key scheme for code that addresses *subsets*
    of a model's parameters (the shard-delta checkpoints of
    :class:`repro.reliability.checkpoint.CheckpointManager` save/restore
    by parameter index, and need the index -> key mapping to stay in one
    place).
    """
    return _keys(model)


def state_dict(model: Module) -> dict[str, np.ndarray]:
    """Key -> value map of every parameter (copies, detached from grads)."""
    return {
        key: p.data.copy()
        for key, p in zip(_keys(model), model.parameters())
    }


def load_state_dict(model: Module, state: dict[str, np.ndarray], *,
                    strict: bool = True) -> list[str]:
    """Copy values into the model's parameters by checkpoint key.

    Returns the list of parameter keys that were *not* found in ``state``
    (empty under ``strict=True``, which raises instead).
    """
    params = dict(zip(_keys(model), model.parameters()))
    missing = [key for key in params if key not in state]
    unexpected = [key for key in state if key not in params]
    if strict and (missing or unexpected):
        raise KeyError(
            f"state dict mismatch: missing={missing[:5]} unexpected={unexpected[:5]}"
        )
    for key, value in state.items():
        p = params.get(key)
        if p is None:
            continue
        if p.data.shape != value.shape:
            raise ValueError(
                f"shape mismatch for {key!r}: model {p.data.shape}, "
                f"checkpoint {value.shape}"
            )
        p.data[...] = value
    return missing


def save_model(model: Module, path: str | os.PathLike) -> None:
    """Write all parameters to a compressed ``.npz`` checkpoint."""
    np.savez_compressed(_npz_path(path), **state_dict(model))


def load_model(model: Module, path: str | os.PathLike, *, strict: bool = True) -> None:
    """Load a checkpoint written by :func:`save_model` into ``model``."""
    with np.load(_npz_path(path, for_load=True)) as archive:
        state = {name: archive[name] for name in archive.files}
    load_state_dict(model, state, strict=strict)


def named_modules(model: Module) -> list[tuple[str, Module]]:
    """Depth-first ``(path, module)`` pairs; the root has path ``""``.

    Paths mirror the attribute graph :meth:`Module.parameters` walks
    (``"embeddings.3"``, ``"bottom_mlp"``), giving stateful modules a
    stable address for checkpointing non-parameter state (see
    :class:`repro.reliability.checkpoint.CheckpointManager`).
    """
    out: list[tuple[str, Module]] = []
    seen: set[int] = set()

    def walk(mod: Module, path: str) -> None:
        if id(mod) in seen:
            return
        seen.add(id(mod))
        out.append((path, mod))
        for attr, value in vars(mod).items():
            prefix = f"{path}.{attr}" if path else attr
            if isinstance(value, Module):
                walk(value, prefix)
            elif isinstance(value, (list, tuple)):
                for j, item in enumerate(value):
                    if isinstance(item, Module):
                        walk(item, f"{prefix}.{j}")

    walk(model, "")
    return out
