"""Configuration dataclasses for DLRM and TT-Rec.

Defaults follow the MLPerf-DLRM reference implementation the paper trains
(``dlrm_s_pytorch.py`` with the Kaggle benchmark flags): 13 dense features,
26 categorical features, embedding dimension 16, bottom MLP 13-512-256-64-16,
top MLP 512-256-1, SGD at lr 0.1, batch size 128.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

__all__ = ["DLRMConfig", "TTConfig"]


@dataclass(frozen=True)
class TTConfig:
    """How one embedding table is TT-compressed (and optionally cached)."""

    rank: int = 32
    d: int = 3
    initializer: str = "sampled_gaussian"
    # Cache options (None cache_size and cache_fraction -> no cache).
    use_cache: bool = False
    cache_fraction: float | None = 1e-4
    cache_size: int | None = None
    warmup_steps: int = 100
    refresh_interval: int | None = 1000
    policy: str = "lfu"
    eviction: str = "discard"
    store_intermediates: bool = True
    dedup: bool = False
    # Contraction-schedule policy for the batch execution planner
    # (repro.tt.planner): "auto", "fixed"/"l2r", "r2l" or "split:k".
    plan_policy: str = "auto"

    def __post_init__(self):
        if self.rank < 1:
            raise ValueError(f"rank must be >= 1, got {self.rank}")
        if self.d < 2:
            raise ValueError(f"d must be >= 2, got {self.d}")

    def with_(self, **kwargs) -> TTConfig:
        """Return a copy with fields replaced (sweep helper)."""
        return replace(self, **kwargs)


@dataclass(frozen=True)
class DLRMConfig:
    """Full DLRM architecture + training hyperparameters.

    ``tt_tables`` maps a table index to a :class:`TTConfig`; tables absent
    from the map stay uncompressed. :func:`repro.models.ttrec.build_ttrec`
    fills this map with the N *largest* tables, which is how the paper's
    "TT-Emb. of 3/5/7" settings are expressed.
    """

    table_sizes: tuple[int, ...]
    num_dense: int = 13
    emb_dim: int = 16
    bottom_mlp: tuple[int, ...] = (512, 256, 64)
    top_mlp: tuple[int, ...] = (512, 256)
    interaction: str = "dot"
    tt_tables: dict[int, TTConfig] = field(default_factory=dict)
    # Training hyperparameters (MLPerf-DLRM Kaggle defaults).
    learning_rate: float = 0.1
    batch_size: int = 128
    seed: int = 0

    def __post_init__(self):
        if not self.table_sizes:
            raise ValueError("table_sizes must be non-empty")
        if any(s < 1 for s in self.table_sizes):
            raise ValueError(f"table sizes must be >= 1, got {self.table_sizes}")
        if self.emb_dim < 1:
            raise ValueError(f"emb_dim must be >= 1, got {self.emb_dim}")
        if self.interaction not in ("dot", "cat"):
            raise ValueError(f"interaction must be 'dot' or 'cat', got {self.interaction}")
        for idx in self.tt_tables:
            if not (0 <= idx < len(self.table_sizes)):
                raise ValueError(
                    f"tt_tables index {idx} out of range for "
                    f"{len(self.table_sizes)} tables"
                )

    @property
    def num_tables(self) -> int:
        return len(self.table_sizes)

    def bottom_sizes(self) -> list[int]:
        """Bottom-tower layer sizes: dense features down to ``emb_dim``."""
        return [self.num_dense, *self.bottom_mlp, self.emb_dim]

    def interaction_dim(self) -> int:
        f = self.num_tables + 1
        if self.interaction == "dot":
            return self.emb_dim + f * (f - 1) // 2
        return self.emb_dim * f

    def top_sizes(self) -> list[int]:
        """Top-tower layer sizes: interaction output down to one logit."""
        return [self.interaction_dim(), *self.top_mlp, 1]

    def with_(self, **kwargs) -> DLRMConfig:
        """Return a copy with fields replaced (sweep helper)."""
        return replace(self, **kwargs)
