"""Adaptive low-precision training (ALPT, Li et al. 2023 style).

The table is stored as ``bits``-wide signed integer codes with one
*learned* scale per row: ``W[i] = (codes[i] / qmax) * scales[i]``, i.e.
the scale is the row's full range and codes are a fraction of it — the
normalization keeps the scale's gradient (``sum_j g_j c_j / qmax``, with
``|c/qmax| <= 1``) at the same magnitude as an ordinary weight-row
gradient, so one global learning rate trains both. Unlike
post-training quantization the scales receive real gradients (they are a
Parameter, updated by whatever optimizer drives training), and the codes
themselves are refreshed in-place by an internal stochastically-rounded
SGD step on the touched rows — so the quantization grid adapts to the
weight distribution *during* training instead of being fit once at the
end.

Memory is one integer per weight plus one float per row; at 8 bits and
float64 policy that is an ~7.5x ratio, independent of table size.
"""

from __future__ import annotations

import numpy as np

from repro.compress.base import (
    CompressedEmbedding,
    EmbeddingSpec,
    _check_known_params,
    register_compressor,
)
from repro.ops.embedding import segment_sum
from repro.ops.module import Parameter
from repro.tt.kernels import scatter_add_rows
from repro.utils.dtypes import default_dtype, result_dtype
from repro.utils.seeding import as_rng
from repro.utils.validation import check_csr

__all__ = ["ALPTEmbeddingBag"]


@register_compressor
class ALPTEmbeddingBag(CompressedEmbedding):
    """Integer-code table with learned per-row scales.

    Knobs: ``bits`` (2..16, default 8) and ``weight_lr`` — the step size
    of the internal stochastic-rounding update that moves the codes
    (0 freezes codes, training only the scales).
    """

    kind = "alpt"

    def __init__(self, spec: EmbeddingSpec):
        _check_known_params(spec, {"bits", "weight_lr"})
        super().__init__(spec)
        self.bits = int(spec.get("bits", 8))
        if not (2 <= self.bits <= 16):
            raise ValueError(f"bits must be in [2, 16], got {self.bits}")
        self.weight_lr = float(spec.get("weight_lr", 0.05))
        self.qmax = (1 << (self.bits - 1)) - 1
        rng = as_rng(spec.seed)
        name = spec.name or "alpt_emb"
        # Start from the DLRM dense default Uniform(±1/sqrt(M)), then
        # snap onto the per-row grid.
        bound = 1.0 / np.sqrt(self.num_rows)
        dense = rng.uniform(-bound, bound, size=(self.num_rows, self.dim))
        row_max = np.abs(dense).max(axis=1, keepdims=True)
        scales = np.where(row_max > 0, row_max, bound)
        code_dtype = np.int8 if self.bits <= 8 else np.int16
        self.codes = np.clip(np.rint(dense / scales * self.qmax),
                             -self.qmax, self.qmax).astype(code_dtype)
        self.scales = Parameter(scales, name=f"{name}.scales", sparse=True)
        # Deterministic stream for the stochastic rounding of code updates,
        # separate from the init stream so replays line up.
        self._round_rng = as_rng(spec.seed + 1)
        self._cache: dict | None = None

    # ------------------------------------------------------------------ #

    def lookup(self, indices: np.ndarray) -> np.ndarray:
        indices = np.asarray(indices, dtype=np.int64)
        dt = result_dtype(self.scales.data)
        frac = self.codes[indices].astype(dt) * (1.0 / self.qmax)
        return frac * self.scales.data[indices]

    def _forward_impl(self, indices, offsets, per_sample_weights) -> np.ndarray:
        indices = np.asarray(indices, dtype=np.int64)
        if offsets is None:
            offsets = np.arange(indices.size + 1, dtype=np.int64)
        indices, offsets = check_csr(indices, offsets, self.num_rows)
        alpha = None
        if per_sample_weights is not None:
            alpha = np.asarray(per_sample_weights,
                               dtype=result_dtype(self.scales.data)).reshape(-1)
            if alpha.shape[0] != indices.shape[0]:
                raise ValueError("per_sample_weights must match indices in length")
        rows = self.lookup(indices)
        weighted = rows if alpha is None else rows * alpha[:, None]
        out = segment_sum(weighted, offsets)
        counts = np.diff(offsets)
        if self.mode == "mean":
            scale = np.asarray(np.where(counts > 0, counts, 1), dtype=out.dtype)
            out = out / scale[:, None]
        self._cache = {"indices": indices, "offsets": offsets,
                       "alpha": alpha, "counts": counts}
        return out

    def _backward_impl(self, grad_out) -> None:
        c = self._cache
        grad_out = np.asarray(grad_out, dtype=self.dtype)
        counts = c["counts"]
        if self.mode == "mean":
            scale = np.asarray(np.where(counts > 0, counts, 1),
                               dtype=grad_out.dtype)
            grad_out = grad_out / scale[:, None]
        bag_ids = np.repeat(np.arange(len(counts)), counts)
        grad_rows = grad_out[bag_ids]  # (n, dim)
        if c["alpha"] is not None:
            grad_rows = grad_rows * c["alpha"][:, None]
        indices = c["indices"]
        # (n, dim) code fractions in [-1, 1]
        frac_rows = self.codes[indices].astype(grad_rows.dtype) * (1.0 / self.qmax)
        # dL/dscale_i = sum_j dL/dW_ij * c_ij/qmax  (W = c/qmax * scale).
        grad_scale = (grad_rows * frac_rows).sum(axis=1, keepdims=True)
        scatter_add_rows(self.scales.grad, indices, grad_scale)
        self.scales.record_touched(indices)
        if self.weight_lr > 0.0:
            self._update_codes(indices, grad_rows)
        self._cache = None

    def _update_codes(self, indices: np.ndarray, grad_rows: np.ndarray) -> None:
        """Stochastically-rounded SGD step on the touched code rows."""
        uniq, inv = np.unique(indices, return_inverse=True)
        grad_w = np.zeros((uniq.size, self.dim), dtype=grad_rows.dtype)
        scatter_add_rows(grad_w, inv, grad_rows)
        scales = self.scales.data[uniq]  # (u, 1)
        # Step in weight space, then express the result on the row grid
        # (one grid step = scale/qmax in weight units).
        safe = np.where(np.abs(scales) > 1e-12, scales, 1e-12)
        target = (self.codes[uniq].astype(grad_w.dtype)
                  - self.weight_lr * grad_w * self.qmax / safe)
        lo = np.floor(target)
        frac = target - lo
        rounded = lo + (self._round_rng.random(size=target.shape) < frac)
        self.codes[uniq] = np.clip(rounded, -self.qmax, self.qmax
                                   ).astype(self.codes.dtype)

    # ------------------------------------------------------------------ #

    def _extra_arrays(self) -> list[np.ndarray]:
        return [self.codes]

    def _extra_state(self) -> dict[str, np.ndarray]:
        return {"codes": self.codes}

    def _load_extra_state(self, state: dict[str, np.ndarray]) -> None:
        self.codes = np.asarray(state["codes"], dtype=self.codes.dtype
                                ).reshape(self.num_rows, self.dim)

    def materialize(self) -> np.ndarray:
        """Dense ``num_rows x dim`` table (analysis only)."""
        dt = result_dtype(self.scales.data)
        return self.codes.astype(dt) * (1.0 / self.qmax) * self.scales.data

    def num_parameters(self) -> int:
        return self.scales.size

    @classmethod
    def predict_memory_bytes(cls, spec: EmbeddingSpec) -> int:
        bits = int(spec.get("bits", 8))
        code_itemsize = 1 if bits <= 8 else 2
        codes = spec.num_rows * spec.dim * code_itemsize
        scales = spec.num_rows * default_dtype().itemsize
        return codes + scales
