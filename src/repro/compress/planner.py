"""Byte-budget planner: pick a compressor per table under a global cap.

Given per-table row/dim/traffic stats and one byte budget for the whole
embedding stack, :class:`BudgetPlanner` chooses a compressor (and its
rank / codebook / bucket knobs) for every table:

1. build a candidate ladder per table — every registered compressor at a
   few knob settings, costed with ``predict_memory_bytes`` (exact, no
   build) and scored with a quality proxy that rises monotonically with
   bytes kept (``fidelity * (bytes / dense_bytes) ** 0.25``; dense is
   exactly 1.0);
2. binary-search the highest quality floor ``t`` such that picking the
   cheapest candidate of quality >= ``t`` for every table fits the
   budget (the same search-over-a-monotone-knob shape as the TT rank
   search in the literature);
3. spend the leftover bytes greedily, upgrading whichever table buys the
   most ``quality * weight`` per byte — where ``weight = traffic * (1 -
   Zipf top-mass)`` from :mod:`repro.data.zipf`, so tables whose traffic
   a hot-row cache would absorb anyway are compressed first and
   flat-access tables keep their bytes.

Measured accuracy from the Fig. 1 design-space sweep
(:func:`repro.analysis.design_space.sweep_design_space`) can replace the
TT fidelity prior via ``measured=`` for an accuracy-per-byte tie-break.

The result serializes as a ``repro.budget_plan/v1`` document consumed by
``repro.models.ttrec.build_from_plan`` and the serving tier.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

import numpy as np

from repro.compress.base import EmbeddingSpec, predict_memory_bytes
from repro.data.zipf import ZipfSampler
from repro.utils.dtypes import default_dtype

__all__ = [
    "BUDGET_PLAN_SCHEMA",
    "TableStats",
    "PlannedTable",
    "BudgetPlan",
    "BudgetPlanner",
    "load_budget_plan",
]

BUDGET_PLAN_SCHEMA = "repro.budget_plan/v1"

#: Accuracy prior per family at equal bytes (dense pinned to 1.0).
#: TT leads per the paper's Fig. 1; hashing collides hardest.
_FIDELITY = {
    "dense": 1.0, "tt": 1.0, "cached_tt": 1.0, "tr": 0.97, "alpt": 0.95,
    "dpq": 0.92, "lowrank": 0.90, "quant": 0.90, "hash": 0.85,
}

#: Hot-row fraction used for the skew weight — the paper's cache default.
_CACHE_FRACTION = 1e-4


@dataclass(frozen=True)
class TableStats:
    """What the planner needs to know about one table."""

    num_rows: int
    dim: int
    zipf_s: float = 1.05       # access skew (data/zipf.py convention)
    traffic: float = 1.0       # relative lookup share of this table
    name: str | None = None

    def __post_init__(self):
        if self.num_rows <= 0 or self.dim <= 0:
            raise ValueError(
                f"num_rows and dim must be positive, got {self.num_rows}, {self.dim}"
            )
        if self.traffic < 0:
            raise ValueError(f"traffic must be >= 0, got {self.traffic}")

    def dense_bytes(self) -> int:
        return self.num_rows * self.dim * default_dtype().itemsize

    def to_doc(self) -> dict:
        return {"num_rows": int(self.num_rows), "dim": int(self.dim),
                "zipf_s": float(self.zipf_s), "traffic": float(self.traffic),
                "name": self.name}

    @classmethod
    def from_doc(cls, doc: dict) -> "TableStats":
        return cls(num_rows=int(doc["num_rows"]), dim=int(doc["dim"]),
                   zipf_s=float(doc.get("zipf_s", 1.05)),
                   traffic=float(doc.get("traffic", 1.0)),
                   name=doc.get("name"))


@dataclass(frozen=True)
class PlannedTable:
    """One table's final choice."""

    index: int
    spec: EmbeddingSpec
    predicted_bytes: int
    quality: float
    weight: float

    def to_doc(self) -> dict:
        return {"index": int(self.index), "spec": self.spec.to_doc(),
                "predicted_bytes": int(self.predicted_bytes),
                "quality": float(self.quality), "weight": float(self.weight)}

    @classmethod
    def from_doc(cls, doc: dict) -> "PlannedTable":
        return cls(index=int(doc["index"]),
                   spec=EmbeddingSpec.from_doc(doc["spec"]),
                   predicted_bytes=int(doc["predicted_bytes"]),
                   quality=float(doc["quality"]),
                   weight=float(doc["weight"]))


@dataclass
class BudgetPlan:
    """A planner run: budget, per-table choices, bookkeeping."""

    budget_bytes: int
    tables: list[PlannedTable] = field(default_factory=list)
    mode: str = "sum"
    seed: int = 0

    def total_bytes(self) -> int:
        return sum(t.predicted_bytes for t in self.tables)

    def dense_total_bytes(self) -> int:
        itemsize = default_dtype().itemsize
        return sum(t.spec.num_rows * t.spec.dim * itemsize
                   for t in self.tables)

    def compression_ratio(self) -> float:
        return self.dense_total_bytes() / max(1, self.total_bytes())

    def kinds(self) -> list[str]:
        return [t.spec.kind for t in self.tables]

    def to_doc(self) -> dict:
        return {
            "schema": BUDGET_PLAN_SCHEMA,
            "budget_bytes": int(self.budget_bytes),
            "total_bytes": int(self.total_bytes()),
            "dense_total_bytes": int(self.dense_total_bytes()),
            "mode": self.mode,
            "seed": int(self.seed),
            "tables": [t.to_doc() for t in self.tables],
        }

    def to_json(self, path) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_doc(), fh, indent=2, sort_keys=True)
            fh.write("\n")

    @classmethod
    def from_doc(cls, doc: dict) -> "BudgetPlan":
        plan = cls(budget_bytes=int(doc["budget_bytes"]),
                   tables=[PlannedTable.from_doc(t) for t in doc["tables"]],
                   mode=doc.get("mode", "sum"), seed=int(doc.get("seed", 0)))
        if plan.total_bytes() > plan.budget_bytes:
            raise ValueError(
                f"plan is over budget: {plan.total_bytes()} > {plan.budget_bytes}"
            )
        return plan


def load_budget_plan(path) -> BudgetPlan:
    """Read and validate a ``repro.budget_plan/v1`` document."""
    with open(path, encoding="utf-8") as fh:
        doc = json.load(fh)
    if doc.get("schema") != BUDGET_PLAN_SCHEMA:
        raise ValueError(
            f"{path}: expected schema {BUDGET_PLAN_SCHEMA!r}, "
            f"got {doc.get('schema')!r}"
        )
    return BudgetPlan.from_doc(doc)


# ---------------------------------------------------------------------- #


@dataclass(frozen=True)
class _Candidate:
    spec: EmbeddingSpec
    bytes: int
    quality: float


class BudgetPlanner:
    """Choose compressor + knobs per table under a global byte budget."""

    #: knob ladders swept per family
    TT_RANKS = (2, 4, 8, 16, 32)
    TR_RANKS = (2, 4, 8)
    LOWRANK_RANKS = (1, 2, 4, 8, 16)
    HASH_DIVISORS = (64, 16, 4)
    DPQ_SUBSPACES = (2, 4, 8)
    ALPT_BITS = (8, 16)
    QUANT_BITS = (4, 8)

    def __init__(self, tables: list[TableStats], *, mode: str = "sum",
                 seed: int = 0, include_inference_only: bool = False,
                 min_compress_rows: int = 0, measured=None):
        if not tables:
            raise ValueError("planner needs at least one table")
        self.tables = list(tables)
        self.mode = mode
        self.seed = seed
        self.include_inference_only = include_inference_only
        self.min_compress_rows = min_compress_rows
        # Measured Fig. 1 design points (rank -> validation accuracy)
        # replace the TT fidelity prior when provided.
        self._tt_accuracy: dict[int, float] = {}
        if measured:
            best = max(p.accuracy for p in measured)
            if best > 0:
                for p in measured:
                    acc = p.accuracy / best
                    cur = self._tt_accuracy.get(p.rank)
                    self._tt_accuracy[p.rank] = acc if cur is None else max(cur, acc)

    # ------------------------------------------------------------------ #
    # Candidate ladders
    # ------------------------------------------------------------------ #

    def _quality(self, kind: str, nbytes: int, dense_bytes: int,
                 rank: int | None = None) -> float:
        if nbytes >= dense_bytes:
            return _FIDELITY[kind]
        fidelity = _FIDELITY[kind]
        if kind in ("tt", "cached_tt") and rank is not None:
            fidelity *= self._tt_accuracy.get(rank, 1.0)
        return fidelity * (nbytes / dense_bytes) ** 0.25

    def _candidates(self, i: int, stats: TableStats) -> list[_Candidate]:
        dense_bytes = stats.dense_bytes()
        name = stats.name or f"table{i}"
        out: list[_Candidate] = []

        def add(kind: str, params: dict, rank: int | None = None) -> None:
            spec = EmbeddingSpec(kind=kind, num_rows=stats.num_rows,
                                 dim=stats.dim, mode=self.mode,
                                 seed=self.seed + i, name=name, params=params)
            nbytes = predict_memory_bytes(spec)
            if kind != "dense" and nbytes >= dense_bytes:
                return  # pointless: costs at least as much as dense
            out.append(_Candidate(spec, nbytes,
                                  self._quality(kind, nbytes, dense_bytes,
                                                rank)))

        add("dense", {})
        if stats.num_rows < self.min_compress_rows:
            return out
        for rank in self.TT_RANKS:
            add("tt", {"rank": rank}, rank)
            add("cached_tt", {"rank": rank}, rank)
        for rank in self.TR_RANKS:
            add("tr", {"rank": rank})
        for rank in self.LOWRANK_RANKS:
            if rank <= stats.dim:
                add("lowrank", {"rank": rank})
        for div in self.HASH_DIVISORS:
            buckets = max(1, stats.num_rows // div)
            if buckets < stats.num_rows:
                add("hash", {"num_buckets": buckets})
        for sub in self.DPQ_SUBSPACES:
            if sub <= stats.dim and stats.dim % sub == 0:
                add("dpq", {"num_subspaces": sub, "codebook_size": 256})
        for bits in self.ALPT_BITS:
            add("alpt", {"bits": bits})
        if self.include_inference_only:
            for bits in self.QUANT_BITS:
                add("quant", {"bits": bits})
        return out

    def _weight(self, stats: TableStats) -> float:
        """Upgrade priority: traffic a hot-row cache could *not* absorb."""
        sampler = ZipfSampler(stats.num_rows, stats.zipf_s, permute=False,
                              rng=0)
        k = max(1, int(round(stats.num_rows * _CACHE_FRACTION)))
        return stats.traffic * (1.0 - sampler.top_k_mass(k))

    # ------------------------------------------------------------------ #
    # Planning
    # ------------------------------------------------------------------ #

    def plan(self, budget_bytes: int) -> BudgetPlan:
        """Pick one candidate per table with total predicted bytes <= budget."""
        if budget_bytes <= 0:
            raise ValueError(f"budget_bytes must be positive, got {budget_bytes}")
        ladders = [self._candidates(i, t) for i, t in enumerate(self.tables)]
        weights = [self._weight(t) for t in self.tables]

        floor_cost = sum(min(c.bytes for c in ladder) for ladder in ladders)
        if floor_cost > budget_bytes:
            raise ValueError(
                f"budget {budget_bytes} B is below the cheapest possible plan "
                f"({floor_cost} B across {len(ladders)} tables)"
            )

        def pick(threshold: float) -> list[_Candidate]:
            chosen = []
            for ladder in ladders:
                ok = [c for c in ladder if c.quality >= threshold]
                pool = ok if ok else ladder
                chosen.append(min(pool, key=lambda c: (c.bytes, -c.quality)))
            return chosen

        # Binary search the highest uniform quality floor that still fits.
        lo, hi = 0.0, 1.0
        for _ in range(40):
            mid = 0.5 * (lo + hi)
            if sum(c.bytes for c in pick(mid)) <= budget_bytes:
                lo = mid
            else:
                hi = mid
        chosen = pick(lo)
        total = sum(c.bytes for c in chosen)
        if total > budget_bytes:  # numerical edge: fall back to the floor
            chosen = pick(0.0)
            total = sum(c.bytes for c in chosen)

        # Greedy: spend leftover bytes where quality-per-byte, scaled by
        # the table's skew weight, is highest.
        while True:
            best = None
            for i, ladder in enumerate(ladders):
                cur = chosen[i]
                for cand in ladder:
                    extra = cand.bytes - cur.bytes
                    gain = cand.quality - cur.quality
                    if gain <= 0 or total + extra > budget_bytes:
                        continue
                    score = gain * max(weights[i], 1e-9) / max(extra, 1)
                    if best is None or score > best[0]:
                        best = (score, i, cand)
            if best is None:
                break
            _, i, cand = best
            total += cand.bytes - chosen[i].bytes
            chosen[i] = cand

        planned = [
            PlannedTable(index=i, spec=c.spec, predicted_bytes=c.bytes,
                         quality=c.quality, weight=weights[i])
            for i, c in enumerate(chosen)
        ]
        return BudgetPlan(budget_bytes=int(budget_bytes), tables=planned,
                          mode=self.mode, seed=self.seed)
