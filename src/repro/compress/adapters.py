"""Adapters registering the existing embedding operators behind the zoo.

Each adapter wraps one pre-existing module — dense
:class:`~repro.ops.embedding.EmbeddingBag`,
:class:`~repro.tt.embedding_bag.TTEmbeddingBag`,
:class:`~repro.cache.cached_embedding.CachedTTEmbeddingBag`,
:class:`~repro.baselines.tensor_ring.TREmbeddingBag`,
:class:`~repro.baselines.hashing.HashedEmbeddingBag`,
:class:`~repro.baselines.lowrank.LowRankEmbeddingBag` and
:class:`~repro.baselines.quantization.QuantizedEmbeddingBag` — behind the
:class:`~repro.compress.base.CompressedEmbedding` contract, adding the
uniform double-backward guard and byte-level memory accounting on top.

Unknown attributes delegate to the wrapped module, so telemetry hooks
(``stats()``, ``metrics_label``), ``materialize()`` and the rest of each
operator's native surface stay reachable through the adapter.
"""

from __future__ import annotations

import numpy as np

from repro.compress.base import (
    CompressedEmbedding,
    EmbeddingSpec,
    _check_known_params,
    register_compressor,
)
from repro.utils.dtypes import default_dtype
from repro.utils.seeding import as_rng

__all__ = [
    "DenseEmbedding",
    "TTEmbedding",
    "CachedTTEmbedding",
    "TREmbedding",
    "HashedEmbedding",
    "LowRankEmbedding",
    "QuantizedEmbedding",
]


class _WrappedEmbedding(CompressedEmbedding):
    """Shared plumbing: delegate compute + attribute access to ``inner``."""

    def __init__(self, spec: EmbeddingSpec, inner):
        super().__init__(spec)
        self.inner = inner

    def _forward_impl(self, indices, offsets, per_sample_weights):
        return self.inner.forward(indices, offsets, per_sample_weights)

    def _backward_impl(self, grad_out):
        self.inner.backward(grad_out)

    def lookup(self, indices: np.ndarray) -> np.ndarray:
        return self.inner.lookup(indices)

    def num_parameters(self) -> int:
        # Preserve each operator's own accounting (e.g. the fractional
        # fp32-equivalent count of the quantized bag).
        return self.inner.num_parameters()

    def __getattr__(self, name: str):
        # Only called when normal lookup fails; surface the wrapped
        # operator's native API (stats, materialize, metrics_label, ...).
        if name.startswith("_") or name == "inner":
            raise AttributeError(name)
        inner = self.__dict__.get("inner")
        if inner is None:
            raise AttributeError(name)
        return getattr(inner, name)


@register_compressor
class DenseEmbedding(_WrappedEmbedding):
    """Uncompressed table — the zoo's reference point (ratio 1.0)."""

    kind = "dense"

    def __init__(self, spec: EmbeddingSpec):
        from repro.ops.embedding import EmbeddingBag

        _check_known_params(spec, set())
        super().__init__(spec, EmbeddingBag(
            spec.num_rows, spec.dim, mode=spec.mode, rng=as_rng(spec.seed),
            name=spec.name or "dense_emb",
        ))

    @classmethod
    def predict_memory_bytes(cls, spec: EmbeddingSpec) -> int:
        return spec.num_rows * spec.dim * default_dtype().itemsize


@register_compressor
class TTEmbedding(_WrappedEmbedding):
    """Tensor-Train table (the paper's operator). Knobs: ``rank``, ``d``."""

    kind = "tt"

    def __init__(self, spec: EmbeddingSpec):
        from repro.tt.embedding_bag import TTEmbeddingBag

        _check_known_params(spec, {"rank", "d", "initializer", "dedup",
                                   "plan_policy"})
        super().__init__(spec, TTEmbeddingBag(
            spec.num_rows, spec.dim, rank=int(spec.get("rank", 8)),
            d=int(spec.get("d", 3)),
            initializer=spec.get("initializer", "sampled_gaussian"),
            dedup=bool(spec.get("dedup", False)),
            plan_policy=spec.get("plan_policy", "auto"),
            mode=spec.mode, rng=as_rng(spec.seed),
            name=spec.name or "tt_emb",
        ))

    @classmethod
    def predict_memory_bytes(cls, spec: EmbeddingSpec) -> int:
        from repro.tt.shapes import TTShape

        shape = TTShape.suggested(spec.num_rows, spec.dim,
                                  d=int(spec.get("d", 3)),
                                  rank=int(spec.get("rank", 8)))
        return shape.num_params() * default_dtype().itemsize


@register_compressor
class CachedTTEmbedding(_WrappedEmbedding):
    """TT table with the LFU hot-row cache. Knobs: ``rank``, ``d``,
    ``cache_size`` (explicit, so planner predictions stay exact)."""

    kind = "cached_tt"

    def __init__(self, spec: EmbeddingSpec):
        from repro.cache.cached_embedding import CachedTTEmbeddingBag

        _check_known_params(spec, {"rank", "d", "initializer", "cache_size",
                                   "warmup_steps", "refresh_interval",
                                   "policy", "eviction", "dedup",
                                   "plan_policy"})
        super().__init__(spec, CachedTTEmbeddingBag(
            spec.num_rows, spec.dim, rank=int(spec.get("rank", 8)),
            d=int(spec.get("d", 3)),
            initializer=spec.get("initializer", "sampled_gaussian"),
            cache_size=self._cache_size(spec),
            warmup_steps=int(spec.get("warmup_steps", 100)),
            refresh_interval=spec.get("refresh_interval", 1000),
            policy=spec.get("policy", "lfu"),
            eviction=spec.get("eviction", "discard"),
            dedup=bool(spec.get("dedup", True)),
            plan_policy=spec.get("plan_policy", "auto"),
            mode=spec.mode, rng=as_rng(spec.seed),
            name=spec.name or "cached_tt_emb",
        ))

    @staticmethod
    def _cache_size(spec: EmbeddingSpec) -> int:
        # The paper's 0.01% default, resolved here (not inside the bag)
        # so predict_memory_bytes sees the same number the instance gets.
        size = spec.get("cache_size")
        if size is None:
            size = max(1, int(round(spec.num_rows * 1e-4)))
        return min(int(size), spec.num_rows)

    def _extra_state(self) -> dict[str, np.ndarray]:
        return {key: np.asarray(value)
                for key, value in self.inner.extra_state().items()}

    def _load_extra_state(self, state: dict[str, np.ndarray]) -> None:
        self.inner.load_extra_state(state)

    @classmethod
    def predict_memory_bytes(cls, spec: EmbeddingSpec) -> int:
        from repro.tt.shapes import TTShape

        shape = TTShape.suggested(spec.num_rows, spec.dim,
                                  d=int(spec.get("d", 3)),
                                  rank=int(spec.get("rank", 8)))
        cache = cls._cache_size(spec) * spec.dim
        return (shape.num_params() + cache) * default_dtype().itemsize


@register_compressor
class TREmbedding(_WrappedEmbedding):
    """Tensor-Ring table. Knobs: ``rank``, ``d``."""

    kind = "tr"

    def __init__(self, spec: EmbeddingSpec):
        from repro.baselines.tensor_ring import TREmbeddingBag

        _check_known_params(spec, {"rank", "d"})
        super().__init__(spec, TREmbeddingBag(
            spec.num_rows, spec.dim, rank=int(spec.get("rank", 4)),
            d=int(spec.get("d", 3)), mode=spec.mode, rng=as_rng(spec.seed),
            name=spec.name or "tr_emb",
        ))

    @classmethod
    def predict_memory_bytes(cls, spec: EmbeddingSpec) -> int:
        from repro.baselines.tensor_ring import TRShape

        shape = TRShape.suggested(spec.num_rows, spec.dim,
                                  d=int(spec.get("d", 3)),
                                  rank=int(spec.get("rank", 4)))
        return shape.num_params() * default_dtype().itemsize


@register_compressor
class HashedEmbedding(_WrappedEmbedding):
    """Feature-hashing table. Knobs: ``num_buckets``, ``signed``, ``salt``."""

    kind = "hash"

    def __init__(self, spec: EmbeddingSpec):
        from repro.baselines.hashing import HashedEmbeddingBag

        _check_known_params(spec, {"num_buckets", "signed", "salt"})
        buckets = int(spec.get("num_buckets", max(1, spec.num_rows // 16)))
        super().__init__(spec, HashedEmbeddingBag(
            spec.num_rows, spec.dim, num_buckets=buckets,
            signed=bool(spec.get("signed", False)),
            salt=int(spec.get("salt", 0)), mode=spec.mode,
            rng=as_rng(spec.seed), name=spec.name or "hashed_emb",
        ))

    @classmethod
    def predict_memory_bytes(cls, spec: EmbeddingSpec) -> int:
        buckets = int(spec.get("num_buckets", max(1, spec.num_rows // 16)))
        return buckets * spec.dim * default_dtype().itemsize


@register_compressor
class LowRankEmbedding(_WrappedEmbedding):
    """Two-factor low-rank table. Knob: ``rank``."""

    kind = "lowrank"

    def __init__(self, spec: EmbeddingSpec):
        from repro.baselines.lowrank import LowRankEmbeddingBag

        _check_known_params(spec, {"rank"})
        super().__init__(spec, LowRankEmbeddingBag(
            spec.num_rows, spec.dim, rank=int(spec.get("rank", 2)),
            mode=spec.mode, rng=as_rng(spec.seed),
            name=spec.name or "lowrank_emb",
        ))

    @classmethod
    def predict_memory_bytes(cls, spec: EmbeddingSpec) -> int:
        rank = int(spec.get("rank", 2))
        params = spec.num_rows * rank + rank * spec.dim
        return params * default_dtype().itemsize


@register_compressor
class QuantizedEmbedding(_WrappedEmbedding):
    """Post-training row-wise quantization — inference-only.

    Knobs: ``bits``; pass the trained dense table via
    :meth:`from_table` (the factory path initializes a fresh dense table
    and quantizes it, which is only meaningful for memory/latency
    benchmarking, never for accuracy).
    """

    kind = "quant"
    supports_gradient = False

    def __init__(self, spec: EmbeddingSpec, table: np.ndarray | None = None):
        from repro.baselines.quantization import QuantizedEmbeddingBag
        from repro.ops.embedding import EmbeddingBag

        _check_known_params(spec, {"bits"})
        if table is None:
            table = EmbeddingBag(spec.num_rows, spec.dim,
                                 rng=as_rng(spec.seed)).weight.data
        table = np.asarray(table)
        if table.shape != (spec.num_rows, spec.dim):
            raise ValueError(
                f"table shape {table.shape} != ({spec.num_rows}, {spec.dim})"
            )
        super().__init__(spec, QuantizedEmbeddingBag.from_dense(
            table, bits=int(spec.get("bits", 4)), mode=spec.mode,
        ))

    @classmethod
    def from_table(cls, table: np.ndarray, *, bits: int = 4,
                   mode: str = "sum", name: str | None = None
                   ) -> "QuantizedEmbedding":
        """Wrap a *trained* dense table (the real post-training workflow)."""
        table = np.asarray(table)
        spec = EmbeddingSpec(kind=cls.kind, num_rows=table.shape[0],
                             dim=table.shape[1], mode=mode, name=name,
                             params={"bits": int(bits)})
        return cls(spec, table=table)

    @property
    def dtype(self) -> np.dtype:
        return self.inner.scales.dtype

    def _extra_arrays(self) -> list[np.ndarray]:
        return [self.inner.codes, self.inner.scales, self.inner.zero_points]

    def _extra_state(self) -> dict[str, np.ndarray]:
        return {"codes": self.inner.codes, "scales": self.inner.scales,
                "zero_points": self.inner.zero_points}

    def _load_extra_state(self, state: dict[str, np.ndarray]) -> None:
        self.inner.codes = np.asarray(state["codes"],
                                      dtype=self.inner.codes.dtype)
        self.inner.scales = np.asarray(state["scales"],
                                       dtype=self.inner.scales.dtype)
        self.inner.zero_points = np.asarray(state["zero_points"],
                                            dtype=self.inner.zero_points.dtype)

    @classmethod
    def predict_memory_bytes(cls, spec: EmbeddingSpec) -> int:
        bits = int(spec.get("bits", 4))
        code_itemsize = 1 if bits <= 8 else 2
        codes = spec.num_rows * spec.dim * code_itemsize
        side = 2 * spec.num_rows * default_dtype().itemsize
        return codes + side
