"""Differentiable product quantization (DPQ, Chen et al. 2020 style).

Each ``dim``-wide row is split into ``num_subspaces`` contiguous chunks;
every chunk stores only an integer code into a per-subspace codebook of
``codebook_size`` centroids. Memory is ``S*K*(dim/S)`` floats of codebook
plus one small integer per (row, subspace) — for large tables the code
matrix dominates and the ratio approaches ``dim * itemsize / S`` bytes
saved per row.

Training uses the straight-through estimator: the forward pass reads the
(discrete) codebook rows, and the backward pass routes the pooled
gradient straight into the selected codebook entries, skipping the
non-differentiable argmax that picked them. Codes themselves move only
via :meth:`assign_codes` (a Lloyd refresh against a dense target), which
mirrors how the cited scheme re-assigns after codebook drift.
"""

from __future__ import annotations

import numpy as np

from repro.compress.base import (
    CompressedEmbedding,
    EmbeddingSpec,
    _check_known_params,
    register_compressor,
)
from repro.ops.embedding import segment_sum
from repro.ops.module import Parameter
from repro.tt.kernels import scatter_add_rows
from repro.utils.dtypes import default_dtype, result_dtype
from repro.utils.seeding import as_rng
from repro.utils.validation import check_csr

__all__ = ["DPQEmbeddingBag"]


def _code_dtype(codebook_size: int) -> np.dtype:
    return np.dtype(np.uint8 if codebook_size <= 256 else np.uint16)


@register_compressor
class DPQEmbeddingBag(CompressedEmbedding):
    """Product-quantization embedding with straight-through gradients.

    Knobs: ``num_subspaces`` (must divide ``dim``), ``codebook_size``.
    """

    kind = "dpq"

    def __init__(self, spec: EmbeddingSpec):
        _check_known_params(spec, {"num_subspaces", "codebook_size"})
        super().__init__(spec)
        self.num_subspaces = int(spec.get("num_subspaces", 4))
        self.codebook_size = int(spec.get("codebook_size", 256))
        if self.num_subspaces < 1 or self.dim % self.num_subspaces != 0:
            raise ValueError(
                f"num_subspaces ({self.num_subspaces}) must divide dim ({self.dim})"
            )
        if not (2 <= self.codebook_size <= 65536):
            raise ValueError(
                f"codebook_size must be in [2, 65536], got {self.codebook_size}"
            )
        self.sub_dim = self.dim // self.num_subspaces
        rng = as_rng(spec.seed)
        name = spec.name or "dpq_emb"
        # One flat codebook of S*K centroids; subspace s owns the slice
        # [s*K, (s+1)*K), so a (row, s) pair addresses entry
        # codes[row, s] + s*K. Variance matches the DLRM dense default
        # Uniform(±1/sqrt(M)): Var = 1/(3M).
        entry_std = (1.0 / (3.0 * self.num_rows)) ** 0.5
        self.codebooks = Parameter(
            rng.normal(0.0, entry_std,
                       size=(self.num_subspaces * self.codebook_size,
                             self.sub_dim)),
            name=f"{name}.codebooks", sparse=True,
        )
        self.codes = rng.integers(
            0, self.codebook_size, size=(self.num_rows, self.num_subspaces),
            dtype=_code_dtype(self.codebook_size),
        )
        # Per-subspace base offsets into the flat codebook.
        self._base = (np.arange(self.num_subspaces, dtype=np.int64)
                      * self.codebook_size)
        self._cache: dict | None = None

    # ------------------------------------------------------------------ #

    def _global_codes(self, indices: np.ndarray) -> np.ndarray:
        """Flat codebook row ids for each (index, subspace): (n, S) int64."""
        return self.codes[indices].astype(np.int64) + self._base[None, :]

    def lookup(self, indices: np.ndarray) -> np.ndarray:
        indices = np.asarray(indices, dtype=np.int64)
        flat = self._global_codes(indices).reshape(-1)  # (n*S,)
        rows = self.codebooks.data[flat]                # (n*S, sub_dim)
        return rows.reshape(indices.shape[0], self.dim)

    def _forward_impl(self, indices, offsets, per_sample_weights) -> np.ndarray:
        indices = np.asarray(indices, dtype=np.int64)
        if offsets is None:
            offsets = np.arange(indices.size + 1, dtype=np.int64)
        indices, offsets = check_csr(indices, offsets, self.num_rows)
        alpha = None
        if per_sample_weights is not None:
            alpha = np.asarray(per_sample_weights,
                               dtype=result_dtype(self.codebooks.data)
                               ).reshape(-1)
            if alpha.shape[0] != indices.shape[0]:
                raise ValueError("per_sample_weights must match indices in length")
        rows = self.lookup(indices)
        weighted = rows if alpha is None else rows * alpha[:, None]
        out = segment_sum(weighted, offsets)
        counts = np.diff(offsets)
        if self.mode == "mean":
            scale = np.asarray(np.where(counts > 0, counts, 1),
                               dtype=out.dtype)
            out = out / scale[:, None]
        self._cache = {"indices": indices, "offsets": offsets,
                       "alpha": alpha, "counts": counts}
        return out

    def _backward_impl(self, grad_out) -> None:
        c = self._cache
        grad_out = np.asarray(grad_out, dtype=self.dtype)
        counts = c["counts"]
        if self.mode == "mean":
            scale = np.asarray(np.where(counts > 0, counts, 1),
                               dtype=grad_out.dtype)
            grad_out = grad_out / scale[:, None]
        bag_ids = np.repeat(np.arange(len(counts)), counts)
        grad_rows = grad_out[bag_ids]  # (n, dim)
        if c["alpha"] is not None:
            grad_rows = grad_rows * c["alpha"][:, None]
        # Straight-through: the pooled gradient lands on the codebook
        # entries the forward actually read.
        flat = self._global_codes(c["indices"]).reshape(-1)  # (n*S,)
        vals = grad_rows.reshape(-1, self.sub_dim)           # (n*S, sub_dim)
        scatter_add_rows(self.codebooks.grad, flat, vals)
        self.codebooks.record_touched(flat)
        self._cache = None

    # ------------------------------------------------------------------ #
    # Code (re-)assignment
    # ------------------------------------------------------------------ #

    def assign_codes(self, table: np.ndarray, *, iters: int = 0,
                     rng: int | None | np.random.Generator = None) -> float:
        """Re-assign codes (and optionally refresh codebooks) to fit ``table``.

        With ``iters == 0`` only the nearest-centroid assignment runs;
        ``iters > 0`` adds Lloyd refinement steps per subspace. Returns the
        mean squared reconstruction error after assignment.
        """
        table = np.asarray(table, dtype=self.dtype)
        if table.shape != (self.num_rows, self.dim):
            raise ValueError(
                f"table shape {table.shape} != ({self.num_rows}, {self.dim})"
            )
        rng = as_rng(rng)
        K = self.codebook_size
        sse = 0.0
        for s in range(self.num_subspaces):
            chunk = table[:, s * self.sub_dim:(s + 1) * self.sub_dim]
            book = self.codebooks.data[s * K:(s + 1) * K]
            for _ in range(iters):
                codes = self._nearest(chunk, book)
                for k in range(K):
                    members = chunk[codes == k]
                    if members.shape[0]:
                        book[k] = members.mean(axis=0)
                    else:  # dead centroid: respawn on a random row
                        book[k] = chunk[rng.integers(0, chunk.shape[0])]
            codes = self._nearest(chunk, book)
            self.codes[:, s] = codes  # same-kind downcast on assignment
            sse += float(((book[codes] - chunk) ** 2).sum())
        return sse / table.size

    @staticmethod
    def _nearest(chunk: np.ndarray, book: np.ndarray) -> np.ndarray:
        # ||x - c||^2 = ||x||^2 - 2 x.c + ||c||^2; drop the x term (argmin).
        scores = chunk @ book.T - 0.5 * (book * book).sum(axis=1)[None, :]
        return scores.argmax(axis=1)

    @classmethod
    def from_dense(cls, table: np.ndarray, *, num_subspaces: int = 4,
                   codebook_size: int = 256, iters: int = 5,
                   mode: str = "sum", seed: int = 0,
                   name: str | None = None) -> "DPQEmbeddingBag":
        """Fit codes + codebooks to a trained dense table (PQ workflow)."""
        table = np.asarray(table)
        spec = EmbeddingSpec(
            kind=cls.kind, num_rows=table.shape[0], dim=table.shape[1],
            mode=mode, seed=seed, name=name,
            params={"num_subspaces": int(num_subspaces),
                    "codebook_size": int(codebook_size)},
        )
        emb = cls(spec)
        emb.assign_codes(table, iters=iters, rng=seed)
        return emb

    # ------------------------------------------------------------------ #

    def _extra_arrays(self) -> list[np.ndarray]:
        return [self.codes]

    def _extra_state(self) -> dict[str, np.ndarray]:
        return {"codes": self.codes}

    def _load_extra_state(self, state: dict[str, np.ndarray]) -> None:
        self.codes = np.asarray(state["codes"], dtype=self.codes.dtype
                                ).reshape(self.num_rows, self.num_subspaces)

    def num_parameters(self) -> int:
        return self.codebooks.size

    @classmethod
    def predict_memory_bytes(cls, spec: EmbeddingSpec) -> int:
        S = int(spec.get("num_subspaces", 4))
        K = int(spec.get("codebook_size", 256))
        if S < 1 or spec.dim % S != 0:
            raise ValueError(f"num_subspaces ({S}) must divide dim ({spec.dim})")
        book = S * K * (spec.dim // S) * default_dtype().itemsize
        codes = spec.num_rows * S * _code_dtype(K).itemsize
        return book + codes
