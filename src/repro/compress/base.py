"""The ``CompressedEmbedding`` contract and the compressor registry.

Every member of the compression zoo — dense, TT, cached TT, tensor-ring,
hashing, low-rank, post-training quantization, DPQ and ALPT — sits behind
one interface so models, benches and the serving tier can swap
compressors per table without caring which family they got:

- ``forward(indices, offsets, per_sample_weights)`` / ``backward(grad)``
  with the *shared* re-entrancy contract: ``backward`` before ``forward``
  raises, and a second ``backward`` for the same forward raises instead
  of silently double-accumulating gradients (PR-5 convention, now
  enforced here for every implementation);
- ``lookup(indices)`` — non-pooled row gather (serving path);
- ``memory_bytes()`` — actual bytes of the stored representation
  (parameters plus any non-parameter code/scale arrays), the quantity
  the :class:`~repro.compress.planner.BudgetPlanner` budgets against;
- ``compression_ratio()`` and ``state_dict()``/``load_state_dict()``.

Implementations are :class:`~repro.ops.module.Module` subclasses, so
parameter discovery, :class:`~repro.analysis.static.sanitizer.
NumericSanitizer` wrapping and telemetry labels all work unchanged.

``make_embedding(spec)`` is the one factory: give it an
:class:`EmbeddingSpec` (or a plain dict) and it builds the registered
compressor. ``predict_memory_bytes(spec)`` answers the same question
*without* building — each compressor class predicts exactly what its
instance will report, which is what lets the planner binary-search over
candidate specs cheaply.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.ops.module import Module
from repro.utils.dtypes import default_dtype

__all__ = [
    "EmbeddingSpec",
    "CompressedEmbedding",
    "register_compressor",
    "registered_kinds",
    "compressor_class",
    "make_embedding",
    "predict_memory_bytes",
]


@dataclass(frozen=True)
class EmbeddingSpec:
    """One table's compressor choice: kind + shape + kind-specific knobs.

    ``params`` holds the per-kind knobs (``rank``, ``num_buckets``,
    ``bits``, ``codebook_size`` ...); unknown keys are rejected by the
    compressor constructor so a typo'd knob fails loudly.
    """

    kind: str
    num_rows: int
    dim: int
    mode: str = "sum"
    seed: int = 0
    name: str | None = None
    params: dict = field(default_factory=dict)

    def __post_init__(self):
        if self.num_rows <= 0 or self.dim <= 0:
            raise ValueError(
                f"num_rows and dim must be positive, got {self.num_rows}, {self.dim}"
            )

    def get(self, key: str, default=None):
        return self.params.get(key, default)

    def label(self) -> str:
        """Short human-readable identifier, e.g. ``tt(rank=8)``."""
        knobs = ", ".join(f"{k}={v}" for k, v in sorted(self.params.items())
                          if not isinstance(v, np.ndarray))
        return f"{self.kind}({knobs})" if knobs else self.kind

    def to_doc(self) -> dict:
        """JSON-safe dict (ndarray knobs are refused — pass those in code)."""
        for k, v in self.params.items():
            if isinstance(v, np.ndarray):
                raise ValueError(
                    f"spec param {k!r} is an ndarray and cannot be serialized"
                )
        return {
            "kind": self.kind, "num_rows": int(self.num_rows),
            "dim": int(self.dim), "mode": self.mode, "seed": int(self.seed),
            "name": self.name, "params": dict(self.params),
        }

    @classmethod
    def from_doc(cls, doc: dict) -> "EmbeddingSpec":
        return cls(
            kind=doc["kind"], num_rows=int(doc["num_rows"]),
            dim=int(doc["dim"]), mode=doc.get("mode", "sum"),
            seed=int(doc.get("seed", 0)), name=doc.get("name"),
            params=dict(doc.get("params", {})),
        )


def as_spec(spec) -> EmbeddingSpec:
    """Coerce a dict (``from_doc`` layout) to an :class:`EmbeddingSpec`."""
    if isinstance(spec, EmbeddingSpec):
        return spec
    if isinstance(spec, dict):
        return EmbeddingSpec.from_doc(spec)
    raise TypeError(f"expected EmbeddingSpec or dict, got {type(spec).__name__}")


class CompressedEmbedding(Module):
    """Abstract base of the compression zoo (see module docstring).

    Subclasses implement ``_forward_impl``/``_backward_impl``/``lookup``
    and inherit the uniform re-entrancy guard: the base ``backward``
    raises ``RuntimeError`` both before any forward and on a second call
    for the same forward, for *every* zoo member — including adapters
    whose wrapped module historically guarded only one of the two.
    """

    #: registry key; subclasses set it (e.g. ``"tt"``).
    kind: str = ""
    #: False for inference-only members (post-training quantization).
    supports_gradient: bool = True

    def __init__(self, spec: EmbeddingSpec):
        if spec.mode not in ("sum", "mean"):
            raise ValueError(f"mode must be 'sum' or 'mean', got {spec.mode!r}")
        self.spec = spec
        self.num_rows = spec.num_rows
        self.dim = spec.dim
        self.mode = spec.mode
        self._ready = False
        self._spent = False

    # ------------------------------------------------------------------ #
    # Forward / backward with the shared re-entrancy contract
    # ------------------------------------------------------------------ #

    def forward(self, indices: np.ndarray, offsets: np.ndarray | None = None,
                per_sample_weights: np.ndarray | None = None) -> np.ndarray:
        out = self._forward_impl(indices, offsets, per_sample_weights)
        self._ready = True
        self._spent = False
        return out

    __call__ = forward

    def backward(self, grad_out: np.ndarray) -> None:
        if not self.supports_gradient:
            raise NotImplementedError(
                f"{type(self).__name__} ({self.kind!r}) is inference-only; "
                "train an uncompressed table and convert it post-training"
            )
        if self._spent:
            raise RuntimeError(
                "backward called twice for one forward; gradients would "
                "double-accumulate — run forward again first"
            )
        if not self._ready:
            raise RuntimeError("backward called before forward")
        self._backward_impl(grad_out)
        self._ready = False
        self._spent = True

    def _forward_impl(self, indices, offsets, per_sample_weights) -> np.ndarray:
        raise NotImplementedError

    def _backward_impl(self, grad_out) -> None:
        raise NotImplementedError

    def lookup(self, indices: np.ndarray) -> np.ndarray:
        """Non-pooled row gather (reference semantics for ``forward``)."""
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # Memory accounting
    # ------------------------------------------------------------------ #

    @property
    def dtype(self) -> np.dtype:
        """Floating dtype of the stored representation."""
        params = self.parameters()
        if params:
            return params[0].data.dtype
        return default_dtype()

    def _extra_arrays(self) -> list[np.ndarray]:
        """Non-parameter arrays that count toward ``memory_bytes``."""
        return []

    def memory_bytes(self) -> int:
        """Actual bytes stored: parameters + code/scale side arrays."""
        total = sum(p.data.nbytes for p in self.parameters())
        total += sum(a.nbytes for a in self._extra_arrays())
        return int(total)

    def dense_bytes(self) -> int:
        """Bytes an uncompressed table would take at this dtype."""
        return int(self.num_rows) * int(self.dim) * self.dtype.itemsize

    def compression_ratio(self) -> float:
        return self.dense_bytes() / self.memory_bytes()

    @classmethod
    def predict_memory_bytes(cls, spec: EmbeddingSpec) -> int:
        """Exact ``memory_bytes()`` of ``make_embedding(spec)``, unbuilt."""
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # Serialization
    # ------------------------------------------------------------------ #

    def _extra_state(self) -> dict[str, np.ndarray]:
        """Non-parameter arrays that must round-trip via ``state_dict``."""
        return {}

    def _load_extra_state(self, state: dict[str, np.ndarray]) -> None:
        for key, value in state.items():
            raise KeyError(f"unexpected extra state {key!r}")

    def state_dict(self) -> dict[str, np.ndarray]:
        """Bit-exact snapshot: parameters by positional key + extra arrays.

        Keys follow the checkpoint convention of
        :mod:`repro.models.serialization` (``"NNNN:param.name"``) with
        ``"extra:<key>"`` entries for non-parameter arrays.
        """
        out: dict[str, np.ndarray] = {}
        for i, p in enumerate(self.parameters()):
            out[f"{i:04d}:{p.name}"] = p.data.copy()
        for key, value in self._extra_state().items():
            out[f"extra:{key}"] = np.asarray(value).copy()
        return out

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        params = {f"{i:04d}:{p.name}": p for i, p in enumerate(self.parameters())}
        extra: dict[str, np.ndarray] = {}
        seen: set[str] = set()
        for key, value in state.items():
            if key.startswith("extra:"):
                extra[key[len("extra:"):]] = value
                continue
            if key not in params:
                raise KeyError(f"unexpected parameter key {key!r}")
            p = params[key]
            value = np.asarray(value)
            if value.shape != p.data.shape:
                raise ValueError(
                    f"shape mismatch for {key!r}: {value.shape} != {p.data.shape}"
                )
            p.data[...] = value
            seen.add(key)
        missing = sorted(set(params) - seen)
        if missing:
            raise KeyError(f"missing parameter keys: {missing}")
        if extra:
            self._load_extra_state(extra)

    # ------------------------------------------------------------------ #

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"{type(self).__name__}({self.num_rows}x{self.dim}, "
                f"{self.spec.label()}, {self.memory_bytes():,} B)")


# ---------------------------------------------------------------------- #
# Registry + factory
# ---------------------------------------------------------------------- #

_REGISTRY: dict[str, type[CompressedEmbedding]] = {}


def register_compressor(cls: type[CompressedEmbedding]):
    """Class decorator: register ``cls`` under its ``kind`` key."""
    if not cls.kind:
        raise ValueError(f"{cls.__name__} must set a non-empty 'kind'")
    if cls.kind in _REGISTRY:
        raise ValueError(f"compressor kind {cls.kind!r} already registered")
    _REGISTRY[cls.kind] = cls
    return cls


def registered_kinds() -> list[str]:
    return sorted(_REGISTRY)


def compressor_class(kind: str) -> type[CompressedEmbedding]:
    try:
        return _REGISTRY[kind]
    except KeyError:
        raise ValueError(
            f"unknown compressor kind {kind!r}; registered: {registered_kinds()}"
        ) from None


def make_embedding(spec: EmbeddingSpec | dict) -> CompressedEmbedding:
    """Build the registered compressor for ``spec`` — the zoo's one door."""
    spec = as_spec(spec)
    return compressor_class(spec.kind)(spec)


def predict_memory_bytes(spec: EmbeddingSpec | dict) -> int:
    """``memory_bytes()`` the built compressor would report, without building."""
    spec = as_spec(spec)
    return compressor_class(spec.kind).predict_memory_bytes(spec)


def _check_known_params(spec: EmbeddingSpec, allowed: set[str]) -> None:
    """Reject unknown spec knobs so typos fail at build time."""
    unknown = sorted(set(spec.params) - allowed)
    if unknown:
        raise ValueError(
            f"unknown params {unknown} for kind {spec.kind!r}; "
            f"allowed: {sorted(allowed)}"
        )
