"""Compression zoo: one interface over every embedding compressor.

Importing this package registers all built-in compressors, so
``make_embedding(spec)`` can build any of them:

=============  ==========================================================
kind           operator
=============  ==========================================================
``dense``      :class:`~repro.ops.embedding.EmbeddingBag`
``tt``         :class:`~repro.tt.embedding_bag.TTEmbeddingBag`
``cached_tt``  :class:`~repro.cache.cached_embedding.CachedTTEmbeddingBag`
``tr``         :class:`~repro.baselines.tensor_ring.TREmbeddingBag`
``hash``       :class:`~repro.baselines.hashing.HashedEmbeddingBag`
``lowrank``    :class:`~repro.baselines.lowrank.LowRankEmbeddingBag`
``quant``      :class:`~repro.baselines.quantization.QuantizedEmbeddingBag`
``dpq``        :class:`~repro.compress.dpq.DPQEmbeddingBag`
``alpt``       :class:`~repro.compress.alpt.ALPTEmbeddingBag`
=============  ==========================================================

See ``docs/COMPRESSION.md`` for the full zoo table and
:class:`~repro.compress.planner.BudgetPlanner` for picking a compressor
per table under a global byte budget.
"""

from repro.compress.base import (
    CompressedEmbedding,
    EmbeddingSpec,
    as_spec,
    compressor_class,
    make_embedding,
    predict_memory_bytes,
    register_compressor,
    registered_kinds,
)
from repro.compress import adapters as _adapters  # noqa: F401  (registers kinds)
from repro.compress.adapters import (
    CachedTTEmbedding,
    DenseEmbedding,
    HashedEmbedding,
    LowRankEmbedding,
    QuantizedEmbedding,
    TREmbedding,
    TTEmbedding,
)
from repro.compress.alpt import ALPTEmbeddingBag
from repro.compress.dpq import DPQEmbeddingBag
from repro.compress.planner import (
    BUDGET_PLAN_SCHEMA,
    BudgetPlan,
    BudgetPlanner,
    PlannedTable,
    TableStats,
    load_budget_plan,
)

__all__ = [
    "CompressedEmbedding",
    "EmbeddingSpec",
    "as_spec",
    "compressor_class",
    "make_embedding",
    "predict_memory_bytes",
    "register_compressor",
    "registered_kinds",
    "DenseEmbedding",
    "TTEmbedding",
    "CachedTTEmbedding",
    "TREmbedding",
    "HashedEmbedding",
    "LowRankEmbedding",
    "QuantizedEmbedding",
    "DPQEmbeddingBag",
    "ALPTEmbeddingBag",
    "BUDGET_PLAN_SCHEMA",
    "BudgetPlan",
    "BudgetPlanner",
    "PlannedTable",
    "TableStats",
    "load_budget_plan",
]
