"""LFU caching for TT-Rec (paper §4.2, Fig. 4).

- :class:`~repro.cache.hashtable.OpenAddressingHashTable` — the frequency
  tracker the paper specifies ("an open addressing hash table is used to
  track the frequencies of all the existing indices").
- :class:`~repro.cache.lfu.LFUTracker` — top-k-by-frequency selection with
  LFU/LRU/static policies (policy ablation).
- :class:`~repro.cache.cached_embedding.CachedTTEmbeddingBag` — the hybrid
  operator: hot rows served from an uncompressed cache and updated densely,
  cold rows served from TT cores (multi-stage training of Fig. 4).
"""

from repro.cache.cached_embedding import CachedTTEmbeddingBag
from repro.cache.hashtable import OpenAddressingHashTable
from repro.cache.lfu import LFUTracker

__all__ = ["OpenAddressingHashTable", "LFUTracker", "CachedTTEmbeddingBag"]
