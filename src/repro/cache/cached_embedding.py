"""CachedTTEmbeddingBag: TT cores + uncompressed LFU cache (paper §4.2).

The hybrid operator behind TT-Rec's training-time story (Fig. 4):

1. **Warm-up stage** — all lookups go through the TT cores while the LFU
   tracker accumulates row frequencies.
2. **Population** — after ``warmup_steps`` batches (and then every
   ``refresh_interval`` batches: the "semi-dynamic" cache), the top
   ``cache_size`` rows are copied *uncompressed* into the cache, their
   values materialised from the current TT cores. Rows evicted on refresh
   simply drop their dense updates (the paper argues decomposing them back
   into the cores online is an open streaming-TT problem and empirically
   unnecessary).
3. **Hybrid stage** — each batch's indices are partitioned into
   ``cached_indices`` (served and updated densely: ``W' = W + dL/dW``) and
   ``tt_indices`` (TT chain + Algorithm 2 gradients). The two weight sets
   are learned separately from that point on.
"""

from __future__ import annotations

import numpy as np

from repro.cache.lfu import LFUTracker
from repro.ops.embedding import segment_sum
from repro.ops.module import Module, Parameter
from repro.telemetry import emit_event, get_registry, trace
from repro.tt.embedding_bag import TTEmbeddingBag
from repro.tt.kernels import scatter_add_rows
from repro.tt.shapes import TTShape
from repro.utils.seeding import as_rng
from repro.utils.validation import check_csr

__all__ = ["CachedTTEmbeddingBag"]

# Distinguishes same-named instances in the shared metrics registry
# (``build_ttrec`` names embeddings per table, but tests construct many
# modules with the default name in one process).
_INSTANCE_SEQ = 0


class CachedTTEmbeddingBag(Module):
    """TT-compressed embedding bag with an uncompressed hot-row cache.

    Parameters
    ----------
    num_rows, dim, shape, rank, d, mode, initializer, rng:
        Forwarded to the underlying :class:`TTEmbeddingBag`.
    cache_size:
        Number of uncompressed rows held. May also be given as
        ``cache_fraction`` (fraction of ``num_rows``; the paper finds
        0.01% sufficient — §6.5).
    warmup_steps:
        Batches observed before the first cache population. 0 populates on
        the first ``maybe_refresh``/``end_warmup`` call.
    refresh_interval:
        Re-populate every this many batches after warm-up ("every 100s to
        1000s of iterations" in the paper). ``None`` disables refresh
        (populate once).
    policy:
        Victim-selection policy for the tracker (``lfu``/``lru``/``static``).
    eviction:
        What happens to an evicted row's dense updates: ``"discard"`` (the
        paper's choice — §4.2 argues absorbing them is a hard streaming-TT
        problem) or ``"absorb"`` (write the learned values back into the
        TT cores with a few damped least-squares steps;
        :func:`repro.tt.writeback.absorb_rows`).
    injector:
        Optional :class:`~repro.reliability.fault_injection.FaultInjector`
        probed at the ``cache.row`` site each forward: a firing fault
        corrupts one resident cache row (chaos testing; :meth:`scrub`
        repairs such rows from the TT cores).
    dedup:
        Deduplicate the *miss* indices before contracting the TT chain
        (one shared :class:`~repro.tt.planner.BatchPlan` for forward and
        backward). On by default: under Zipf traffic the misses that slip
        past the cache are still duplicate-heavy, and duplicate gradients
        are combined before Algorithm 2 either way, so results match the
        raw path to float round-off.
    plan_policy:
        Contraction-schedule policy forwarded to the underlying
        :class:`TTEmbeddingBag`'s planner (``auto``/``fixed``/``l2r``/
        ``r2l``/``split:k``).
    """

    def __init__(self, num_rows: int, dim: int, *, shape: TTShape | None = None,
                 rank: int = 32, d: int = 3, mode: str = "sum",
                 initializer="sampled_gaussian",
                 rng: int | None | np.random.Generator = None,
                 cache_size: int | None = None, cache_fraction: float | None = None,
                 warmup_steps: int = 100, refresh_interval: int | None = 1000,
                 policy: str = "lfu", eviction: str = "discard",
                 injector=None, dedup: bool = True, plan_policy: str = "auto",
                 name: str = "cached_tt_emb"):
        rng = as_rng(rng)
        self.tt = TTEmbeddingBag(
            num_rows, dim, shape=shape, rank=rank, d=d, mode=mode,
            initializer=initializer, rng=rng, plan_policy=plan_policy,
            name=f"{name}.tt",
        )
        self.dedup = bool(dedup)
        self.num_rows = num_rows
        self.dim = dim
        self.mode = mode
        if cache_size is None:
            if cache_fraction is None:
                cache_fraction = 1e-4  # the paper's 0.01%
            if not (0.0 < cache_fraction <= 1.0):
                raise ValueError(f"cache_fraction must be in (0, 1], got {cache_fraction}")
            cache_size = max(1, int(round(num_rows * cache_fraction)))
        if cache_size < 1:
            raise ValueError(f"cache_size must be >= 1, got {cache_size}")
        self.cache_size = min(cache_size, num_rows)
        if warmup_steps < 0:
            raise ValueError(f"warmup_steps must be >= 0, got {warmup_steps}")
        if refresh_interval is not None and refresh_interval < 1:
            raise ValueError(f"refresh_interval must be >= 1, got {refresh_interval}")
        if eviction not in ("discard", "absorb"):
            raise ValueError(f"eviction must be 'discard' or 'absorb', got {eviction!r}")
        self.eviction = eviction
        self.warmup_steps = warmup_steps
        self.refresh_interval = refresh_interval
        self.tracker = LFUTracker(policy=policy)
        self.cache_rows = Parameter(
            np.zeros((self.cache_size, dim), dtype=self.tt.dtype),
            name=f"{name}.cache", sparse=True
        )
        # Sorted row-id array for O(log k) vectorized membership tests;
        # _cache_slot[i] is the cache row holding table row _cached_ids[i].
        self._cached_ids = np.empty(0, dtype=np.int64)
        self._cache_slot = np.empty(0, dtype=np.int64)
        self._steps = 0
        self._populated = False
        self._cache: dict | None = None
        self._did_backward = False
        self.injector = injector
        # Read validation (ECC / row-checksum stand-in): verify served
        # cache rows are finite and refill poisoned ones from the TT
        # cores. On by default whenever faults can occur (injector set).
        self.validate_reads = injector is not None
        # Cumulative hit/miss/evict/repair statistics (Fig. 10 / Fig. 12
        # instrumentation), held in the shared metrics registry under a
        # per-instance ``module`` label; ``lookups``/``hits``/
        # ``repaired_rows`` stay readable as attribute shims.
        global _INSTANCE_SEQ
        self.metrics_label = f"{name}#{_INSTANCE_SEQ}"
        _INSTANCE_SEQ += 1
        reg = get_registry()
        self._metrics = {
            key: reg.counter(f"cache.{key}", module=self.metrics_label)
            for key in ("lookups", "hits", "misses", "repairs",
                        "insertions", "evictions", "refreshes")
        }

    # ------------------------------------------------------------------ #
    # Cache management
    # ------------------------------------------------------------------ #

    @property
    def is_warm(self) -> bool:
        return self._populated

    # -- statistics (registry-backed; attribute shims kept for callers) -- #

    @property
    def lookups(self) -> int:
        return self._metrics["lookups"].value

    @lookups.setter
    def lookups(self, value: int) -> None:
        self._metrics["lookups"].set(value)

    @property
    def hits(self) -> int:
        return self._metrics["hits"].value

    @hits.setter
    def hits(self, value: int) -> None:
        self._metrics["hits"].set(value)

    @property
    def repaired_rows(self) -> int:
        return self._metrics["repairs"].value

    @repaired_rows.setter
    def repaired_rows(self, value: int) -> None:
        self._metrics["repairs"].set(value)

    def hit_rate(self) -> float:
        """Cumulative cache hit rate since construction (shim over
        :meth:`stats`, kept for the Fig. 10/12 benchmarks)."""
        lookups = self._metrics["lookups"].value
        return self._metrics["hits"].value / lookups if lookups else 0.0

    def stats(self) -> dict:
        """Structured cumulative statistics (one registry read per field)."""
        m = self._metrics
        lookups = m["lookups"].value
        hits = m["hits"].value
        return {
            "lookups": lookups,
            "hits": hits,
            "misses": m["misses"].value,
            "hit_rate": hits / lookups if lookups else 0.0,
            "repairs": m["repairs"].value,
            "insertions": m["insertions"].value,
            "evictions": m["evictions"].value,
            "refreshes": m["refreshes"].value,
            "resident_rows": int(self._cached_ids.size),
            "cache_size": int(self.cache_size),
            "populated": bool(self._populated),
        }

    def reset_stats(self) -> None:
        """Zero the cumulative counters (resident rows are untouched)."""
        for counter in self._metrics.values():
            counter.reset()

    def _membership(self, indices: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(is_cached_mask, cache_slots)`` for each index."""
        if self._cached_ids.size == 0:
            return np.zeros(indices.shape, dtype=bool), np.empty(0, dtype=np.int64)
        pos = np.searchsorted(self._cached_ids, indices)
        pos = np.minimum(pos, self._cached_ids.size - 1)
        mask = self._cached_ids[pos] == indices
        return mask, self._cache_slot[pos[mask]]

    def populate(self) -> dict:
        """(Re)build the cache from the tracker's current top-k rows.

        New rows are materialised from the TT cores; rows surviving a
        refresh keep their dense weights; evicted rows' dense updates are
        discarded (paper §4.2) or absorbed into the cores, per the
        ``eviction`` setting. Returns population stats.
        """
        hot = np.sort(self.tracker.top_k(self.cache_size))
        if hot.size == 0:
            return {"inserted": 0, "kept": 0, "evicted": 0}
        old_ids = self._cached_ids
        kept_mask = np.isin(hot, old_ids, assume_unique=True)
        kept = hot[kept_mask]
        new = hot[~kept_mask]
        evicted_ids = np.setdiff1d(old_ids, kept, assume_unique=True)
        evicted = int(evicted_ids.size)
        if self.eviction == "absorb" and evicted_ids.size:
            from repro.tt.writeback import absorb_rows

            _, old_slots = self._membership(evicted_ids)
            absorb_rows(self.tt, evicted_ids,
                        self.cache_rows.data[old_slots], steps=10, lr=0.5)

        values = np.zeros((hot.size, self.dim), dtype=self.cache_rows.data.dtype)
        if kept.size:
            old_mask, old_slots = self._membership(kept)
            assert old_mask.all()
            values[kept_mask] = self.cache_rows.data[old_slots]
        if new.size:
            values[~kept_mask] = self.tt.lookup(new)
        self.cache_rows.data[: hot.size] = values
        self._cached_ids = hot
        self._cache_slot = np.arange(hot.size, dtype=np.int64)
        self._populated = True
        if self.tracker.policy == "static":
            self.tracker.freeze()
        self._metrics["refreshes"].inc()
        self._metrics["insertions"].inc(int(new.size))
        self._metrics["evictions"].inc(evicted)
        emit_event("cache.populate", module=self.metrics_label,
                   inserted=int(new.size), kept=int(kept.size),
                   evicted=evicted, step=int(self._steps))
        return {"inserted": int(new.size), "kept": int(kept.size), "evicted": evicted}

    def maybe_refresh(self) -> dict | None:
        """Apply the Fig. 4 schedule; called automatically by ``forward``."""
        if not self._populated:
            if self._steps >= self.warmup_steps:
                return self.populate()
            return None
        if self.refresh_interval is not None and self._steps % self.refresh_interval == 0:
            return self.populate()
        return None

    # ------------------------------------------------------------------ #
    # Forward / backward
    # ------------------------------------------------------------------ #

    def forward(self, indices: np.ndarray, offsets: np.ndarray | None = None,
                per_sample_weights: np.ndarray | None = None) -> np.ndarray:
        indices = np.asarray(indices, dtype=np.int64)
        if offsets is None:
            offsets = np.arange(indices.size + 1, dtype=np.int64)
        indices, offsets = check_csr(indices, offsets, self.num_rows)
        alpha = None
        if per_sample_weights is not None:
            alpha = np.asarray(per_sample_weights,
                               dtype=self.cache_rows.data.dtype).reshape(-1)
            if alpha.shape[0] != indices.shape[0]:
                raise ValueError("per_sample_weights must match indices in length")

        self._steps += 1
        self.tracker.record(indices)
        self.maybe_refresh()

        if self.injector is not None and self._cached_ids.size:
            spec = self.injector.draw("cache.row")
            if spec is not None:
                slot = self.injector.choose(int(self._cached_ids.size))
                self.injector.apply(spec, self.cache_rows.data[slot])

        with trace("cache.membership"):
            mask, slots = self._membership(indices)
        hits = int(mask.sum())
        self._metrics["lookups"].inc(indices.size)
        self._metrics["hits"].inc(hits)
        self._metrics["misses"].inc(indices.size - hits)

        rows = np.empty((indices.size, self.dim), dtype=self.cache_rows.data.dtype)
        if mask.any():
            # Single gather: validate and serve from the same buffer. A
            # poisoned row served into the towers is masked by ReLU (NaN
            # clips to 0) and silently degrades the model instead of
            # crashing it, so corruption must be caught at the read, not
            # at the loss.
            served = self.cache_rows.data[slots]
            if ((self.validate_reads or self.injector is not None)
                    and not np.isfinite(served).all()):
                self.repaired_rows += self.scrub()
                served = self.cache_rows.data[slots]  # re-gather repaired rows
            rows[mask] = served
        tt_idx = indices[~mask]
        if tt_idx.size:
            # Shared batch plan for the miss path: dedup once, contract
            # through the planner's pooled buffers, expand via `inverse`.
            # Backward reuses the same decoded/inverse arrays.
            plan = self.tt.planner.plan_batch(
                tt_idx, dedup=self.dedup,
                need_lefts=self.tt.store_intermediates,
            )
            tt_rows, lefts = self.tt.planner.execute(
                plan.schedule, plan.decoded, self.tt._core_data(),
                keep_lefts=self.tt.store_intermediates, pooled=True,
            )
            decoded, inverse = plan.decoded, plan.inverse
            rows[~mask] = tt_rows[inverse] if inverse is not None else tt_rows
        else:
            decoded, lefts, inverse = None, None, None

        weighted = rows if alpha is None else rows * alpha[:, None]
        out = segment_sum(weighted, offsets)
        counts = np.diff(offsets)
        if self.mode == "mean":
            scale = np.asarray(np.where(counts > 0, counts, 1), dtype=out.dtype)
            out = out / scale[:, None]
        self._cache = {
            "mask": mask, "slots": slots, "decoded": decoded,
            "inverse": inverse,
            "lefts": lefts if self.tt.store_intermediates else None,
            "alpha": alpha, "counts": counts,
        }
        self._did_backward = False
        return out

    __call__ = forward

    def backward(self, grad_out: np.ndarray) -> None:
        if self._cache is None:
            if self._did_backward:
                raise RuntimeError(
                    "backward called twice for one forward; cache-row and "
                    "core gradients would double-accumulate — run forward "
                    "again first"
                )
            raise RuntimeError("backward called before forward")
        c = self._cache
        grad_out = np.asarray(grad_out, dtype=self.cache_rows.data.dtype)
        counts = c["counts"]
        if self.mode == "mean":
            scale = np.asarray(np.where(counts > 0, counts, 1),
                               dtype=grad_out.dtype)
            grad_out = grad_out / scale[:, None]
        bag_ids = np.repeat(np.arange(len(counts)), counts)
        grad_rows = grad_out[bag_ids]
        if c["alpha"] is not None:
            grad_rows = grad_rows * c["alpha"][:, None]

        mask = c["mask"]
        if mask.any():
            # Duplicate-combining segmented scatter (same kernel as the TT
            # core grads) — np.add.at is an O(n) scalar loop in NumPy.
            scatter_add_rows(self.cache_rows.grad, c["slots"], grad_rows[mask])
            self.cache_rows.record_touched(c["slots"])
        if c["decoded"] is not None:
            tt_grad = grad_rows[~mask]
            if c["inverse"] is not None:
                # Combine gradient contributions of deduplicated misses.
                combined = np.zeros((c["decoded"].shape[1], self.dim),
                                    dtype=tt_grad.dtype)
                scatter_add_rows(combined, c["inverse"], tt_grad)
                tt_grad = combined
            lefts = c["lefts"]
            if lefts is None:
                _, lefts = self.tt._row_chain(c["decoded"])
            self.tt._accumulate_core_grads(c["decoded"], tt_grad, lefts)
        self._cache = None
        self._did_backward = True

    # ------------------------------------------------------------------ #

    def lookup(self, indices: np.ndarray) -> np.ndarray:
        """Row materialisation honouring the cache (no stats, no backward)."""
        indices = np.asarray(indices, dtype=np.int64)
        mask, slots = self._membership(indices)
        rows = np.empty((indices.size, self.dim), dtype=self.cache_rows.data.dtype)
        if mask.any():
            rows[mask] = self.cache_rows.data[slots]
        if (~mask).any():
            rows[~mask] = self.tt.lookup(indices[~mask])
        return rows

    def scrub(self) -> int:
        """Re-materialise any non-finite resident cache rows from the TT
        cores; returns the number of rows repaired.

        The recovery hook for poisoned-cache faults: a corrupted
        uncompressed row is replaced by the row the TT chain currently
        encodes (losing only that row's dense updates, exactly as a cache
        refresh would). Called by
        :func:`repro.reliability.guard.scrub_non_finite`.
        """
        if self._cached_ids.size == 0:
            return 0
        resident = self.cache_rows.data[self._cache_slot]
        bad = ~np.isfinite(resident).all(axis=1)
        if not bad.any():
            return 0
        self.cache_rows.data[self._cache_slot[bad]] = self.tt.lookup(
            self._cached_ids[bad]
        )
        emit_event("cache.repair", module=self.metrics_label,
                   rows=int(bad.sum()), step=int(self._steps))
        return int(bad.sum())

    # ------------------------------------------------------------------ #
    # Checkpointable non-parameter state (see repro.reliability.checkpoint)
    # ------------------------------------------------------------------ #

    def extra_state(self) -> dict:
        """Cache bookkeeping a checkpoint must carry beyond parameters.

        Every registry counter is persisted: dropping any of them breaks
        the ``lookups == hits + misses`` invariant after resume.
        """
        state = {
            "cached_ids": self._cached_ids.copy(),
            "cache_slot": self._cache_slot.copy(),
            "steps": int(self._steps),
            "populated": bool(self._populated),
        }
        for key, counter in self._metrics.items():
            state[key] = int(counter.value)
        for key, value in self.tracker.state_dict().items():
            state[f"tracker.{key}"] = value
        return state

    def load_extra_state(self, state: dict) -> None:
        self._cached_ids = np.asarray(state["cached_ids"], dtype=np.int64)
        self._cache_slot = np.asarray(state["cache_slot"], dtype=np.int64)
        self._steps = int(state["steps"])
        self._populated = bool(state["populated"])
        for key, counter in self._metrics.items():
            # .get: checkpoints written before all counters were persisted
            # restore the ones they have and zero the rest.
            counter.set(int(state.get(key, 0)))
        self.tracker.load_state_dict({
            key.split(".", 1)[1]: value
            for key, value in state.items() if key.startswith("tracker.")
        })
        self._cache = None
        self._did_backward = False

    def num_parameters(self) -> int:
        """TT params + cache rows (the cache counts toward the budget)."""
        return self.tt.num_parameters() + self.cache_rows.size

    def compression_ratio(self) -> float:
        return (self.num_rows * self.dim) / self.num_parameters()
