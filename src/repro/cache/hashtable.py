"""Open-addressing hash table for access-frequency tracking (paper §4.2).

The paper tracks "the frequencies of all the existing indices" with an
open-addressing hash table. This NumPy implementation uses linear probing
with a splitmix64 hash and supports *batched* upserts: each probe round is
fully vectorized, and within-batch duplicate keys are pre-combined so a key
occupies exactly one slot. The table grows (rehash, 2x) past a load-factor
threshold.
"""

from __future__ import annotations

import numpy as np

from repro.utils.dtypes import COUNT_DTYPE

__all__ = ["OpenAddressingHashTable", "splitmix64"]

_EMPTY = np.int64(-1)


def splitmix64(keys: np.ndarray) -> np.ndarray:
    """Vectorized splitmix64 finalizer — a fast, well-mixed 64-bit hash."""
    z = keys.astype(np.uint64, copy=True)
    with np.errstate(over="ignore"):
        z += np.uint64(0x9E3779B97F4A7C15)
        z = (z ^ (z >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
        z = (z ^ (z >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
        z ^= z >> np.uint64(31)
    return z


class OpenAddressingHashTable:
    """int64 -> float64 accumulator map with linear probing.

    Keys must be non-negative (``-1`` marks empty slots). Typical use here:
    ``add(row_indices)`` once per training batch, then ``top_k`` when the
    cache repopulates.
    """

    def __init__(self, capacity: int = 1024, *, load_factor: float = 0.7):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if not (0.1 <= load_factor <= 0.95):
            raise ValueError(f"load_factor must be in [0.1, 0.95], got {load_factor}")
        self._capacity = 1 << int(np.ceil(np.log2(max(capacity, 8))))
        self._load_factor = load_factor
        self._keys = np.full(self._capacity, _EMPTY, dtype=np.int64)
        self._values = np.zeros(self._capacity, dtype=COUNT_DTYPE)
        self._size = 0

    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return self._size

    @property
    def capacity(self) -> int:
        return self._capacity

    def _slots_for(self, keys: np.ndarray) -> np.ndarray:
        return (splitmix64(keys) & np.uint64(self._capacity - 1)).astype(np.int64)

    def _maybe_grow(self, incoming: int) -> None:
        while self._size + incoming > self._load_factor * self._capacity:
            old_keys, old_values = self.items()
            self._capacity *= 2
            self._keys = np.full(self._capacity, _EMPTY, dtype=np.int64)
            self._values = np.zeros(self._capacity, dtype=COUNT_DTYPE)
            self._size = 0
            if old_keys.size:
                self._insert(old_keys, old_values)

    # ------------------------------------------------------------------ #

    def add(self, keys: np.ndarray, amounts: np.ndarray | float = 1.0) -> None:
        """``table[k] += amount`` for every key (duplicates combined first)."""
        keys = np.asarray(keys, dtype=np.int64).reshape(-1)
        if keys.size == 0:
            return
        if keys.min() < 0:
            raise ValueError("keys must be non-negative")
        if np.isscalar(amounts) or np.asarray(amounts).ndim == 0:
            uniq, counts = np.unique(keys, return_counts=True)
            vals = counts.astype(COUNT_DTYPE) * float(amounts)
        else:
            amounts = np.asarray(amounts, dtype=COUNT_DTYPE).reshape(-1)
            if amounts.shape != keys.shape:
                raise ValueError("amounts must match keys in length")
            order = np.argsort(keys, kind="stable")
            sk, sv = keys[order], amounts[order]
            uniq, starts = np.unique(sk, return_index=True)
            vals = np.add.reduceat(sv, starts)
        self._maybe_grow(uniq.size)
        self._insert(uniq, vals)

    def _insert(self, keys: np.ndarray, vals: np.ndarray) -> None:
        """Vectorized linear-probe upsert of *unique* keys."""
        slots = self._slots_for(keys)
        pending = np.arange(keys.size)
        while pending.size:
            s = slots[pending]
            occupant = self._keys[s]
            match = occupant == keys[pending]
            if match.any():
                hit = pending[match]
                np.add.at(self._values, slots[hit], vals[hit])
            free = occupant == _EMPTY
            claim = pending[free & ~match]
            if claim.size:
                # Distinct keys may race for one empty slot; last write wins,
                # losers are detected by read-back and retry next round.
                self._keys[slots[claim]] = keys[claim]
                won = self._keys[slots[claim]] == keys[claim]
                winners = claim[won]
                self._values[slots[winners]] += vals[winners]
                self._size += winners.size
                lost = claim[~won]
            else:
                lost = np.empty(0, dtype=np.int64)
            unresolved = pending[~match & ~free]
            pending = np.concatenate([unresolved, lost])
            slots[pending] = (slots[pending] + 1) & (self._capacity - 1)

    def get(self, keys: np.ndarray, default: float = 0.0) -> np.ndarray:
        """Look up accumulated values; missing keys yield ``default``."""
        keys = np.asarray(keys, dtype=np.int64).reshape(-1)
        out = np.full(keys.shape, default, dtype=COUNT_DTYPE)
        if keys.size == 0:
            return out
        slots = self._slots_for(keys)
        pending = np.arange(keys.size)
        for _ in range(self._capacity):
            if pending.size == 0:
                break
            s = slots[pending]
            occupant = self._keys[s]
            match = occupant == keys[pending]
            out[pending[match]] = self._values[s[match]]
            # empty slot -> key absent, stop probing it
            alive = pending[~match & (occupant != _EMPTY)]
            pending = alive
            slots[pending] = (slots[pending] + 1) & (self._capacity - 1)
        return out

    def items(self) -> tuple[np.ndarray, np.ndarray]:
        """All (key, value) pairs in unspecified order."""
        mask = self._keys != _EMPTY
        return self._keys[mask].copy(), self._values[mask].copy()

    def top_k(self, k: int) -> tuple[np.ndarray, np.ndarray]:
        """The ``k`` keys with the largest accumulated values.

        Ties are broken by key for determinism. Returns ``(keys, values)``
        sorted by descending value.
        """
        keys, values = self.items()
        if k <= 0 or keys.size == 0:
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=COUNT_DTYPE)
        k = min(k, keys.size)
        # lexsort: primary descending value, secondary ascending key
        order = np.lexsort((keys, -values))[:k]
        return keys[order], values[order]

    def clear(self) -> None:
        self._keys.fill(_EMPTY)
        self._values.fill(0.0)
        self._size = 0
