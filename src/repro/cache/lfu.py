"""Frequency tracking and cache-set selection policies.

``LFUTracker`` wraps the open-addressing hash table with the selection
logic TT-Rec's semi-dynamic cache needs: record every batch's accesses,
and on demand emit the current top-k most-frequently-used rows. Two
alternative policies are provided for the cache-policy ablation bench:

- ``"lfu"`` — cumulative access counts (the paper's choice);
- ``"lru"`` — most-recently-used wins (recency timestamps, not counts);
- ``"static"`` — frequencies are frozen after the first ``populate`` call,
  modelling a cache warmed once and never refreshed.
"""

from __future__ import annotations

import numpy as np

from repro.cache.hashtable import OpenAddressingHashTable
from repro.utils.dtypes import COUNT_DTYPE

__all__ = ["LFUTracker"]

_POLICIES = ("lfu", "lru", "static")


class LFUTracker:
    """Access-frequency tracker with pluggable victim-selection policy."""

    def __init__(self, *, policy: str = "lfu", initial_capacity: int = 4096,
                 decay: float = 1.0):
        if policy not in _POLICIES:
            raise ValueError(f"policy must be one of {_POLICIES}, got {policy!r}")
        if not (0.0 < decay <= 1.0):
            raise ValueError(f"decay must be in (0, 1], got {decay}")
        self.policy = policy
        self.decay = decay
        self._table = OpenAddressingHashTable(initial_capacity)
        self._clock = 0
        self._frozen = False
        self.total_accesses = 0

    def record(self, indices: np.ndarray) -> None:
        """Record one batch of row accesses."""
        indices = np.asarray(indices, dtype=np.int64).reshape(-1)
        if indices.size == 0:
            return
        self._clock += 1
        self.total_accesses += indices.size
        if self._frozen:
            return
        if self.policy == "lru":
            # Recency: overwrite score with the current clock. Implemented
            # as add(delta) so the hash table stays an accumulator: read the
            # old score and add the difference.
            uniq = np.unique(indices)
            old = self._table.get(uniq)
            self._table.add(uniq, self._clock - old)
        else:
            self._table.add(indices, 1.0)

    def top_k(self, k: int) -> np.ndarray:
        """Current best ``k`` rows under the policy (descending score)."""
        keys, _ = self._table.top_k(k)
        return keys

    def count(self, indices: np.ndarray) -> np.ndarray:
        """Raw accumulated scores for specific rows."""
        return self._table.get(indices)

    def freeze(self) -> None:
        """Stop updating scores (used by the ``static`` policy after warm-up)."""
        self._frozen = True

    def apply_decay(self) -> None:
        """Multiplicatively decay all scores (optional aging for LFU).

        Classic LFU never forgets; a decay < 1 lets the tracker adapt when
        the hot set drifts. The paper observes the hot set is stable
        (Fig. 9) so decay defaults to 1.0 (off) in TT-Rec.
        """
        if self.decay < 1.0:
            keys, values = self._table.items()
            self._table.clear()
            if keys.size:
                self._table.add(keys, values * self.decay)

    def state_dict(self) -> dict:
        """Checkpointable snapshot of the tracker (see ``repro.reliability``).

        The table is saved as its ``(keys, values)`` pairs plus capacity;
        :meth:`load_state_dict` rebuilds an equivalent table. Selection via
        :meth:`top_k` is layout-independent (ties break by key), so a
        restored tracker makes bit-identical cache decisions. Pairs are
        emitted sorted by key — a canonical form, so snapshots of
        logically-equal trackers compare equal regardless of the probe
        order that built their tables.
        """
        keys, values = self._table.items()
        order = np.argsort(keys, kind="stable")
        keys, values = keys[order], values[order]
        return {
            "keys": keys,
            "values": values,
            "capacity": int(self._table.capacity),
            "clock": int(self._clock),
            "frozen": bool(self._frozen),
            "total_accesses": int(self.total_accesses),
        }

    def load_state_dict(self, state: dict) -> None:
        self._table = OpenAddressingHashTable(int(state["capacity"]))
        keys = np.asarray(state["keys"], dtype=np.int64)
        if keys.size:
            self._table.add(keys, np.asarray(state["values"], dtype=COUNT_DTYPE))
        self._clock = int(state["clock"])
        self._frozen = bool(state["frozen"])
        self.total_accesses = int(state["total_accesses"])

    def __len__(self) -> int:
        return len(self._table)
