"""Post-training row-wise uniform quantization (Guan et al. 2019).

Compresses a *trained* dense table to ``bits``-wide integer codes with a
per-row scale and zero-point — the 4-bit scheme the paper's Related Work
cites as the quantization approach for recommendation inference. Like the
original, this operator is inference-only: ``backward`` raises, because
training through a quantizer needs STE machinery the cited work does not
use for embeddings.
"""

from __future__ import annotations

import numpy as np

from repro.ops.embedding import segment_sum
from repro.ops.module import Module
from repro.utils.dtypes import result_dtype
from repro.utils.validation import check_csr

__all__ = ["quantize_rows", "dequantize_rows", "QuantizedEmbeddingBag"]


def quantize_rows(table: np.ndarray, bits: int = 4
                  ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Row-wise affine quantization: ``codes, scales, zero_points``.

    Each row is mapped to ``round((x - min) / scale)`` with
    ``scale = (max - min) / (2^bits - 1)``; constant rows get scale 0 and
    decode exactly.
    """
    if not (1 <= bits <= 16):
        raise ValueError(f"bits must be in [1, 16], got {bits}")
    table = np.asarray(table)
    # Preserve the table's floating dtype; fall back to the policy dtype
    # for integer input (repro.utils.dtypes).
    table = np.asarray(table, dtype=result_dtype(table))
    if table.ndim != 2:
        raise ValueError(f"table must be 2-D, got shape {table.shape}")
    levels = (1 << bits) - 1
    mins = table.min(axis=1)
    maxs = table.max(axis=1)
    scales = (maxs - mins) / levels
    safe = np.where(scales > 0, scales, 1.0)
    codes = np.rint((table - mins[:, None]) / safe[:, None])
    codes = np.clip(codes, 0, levels)
    dtype = np.uint8 if bits <= 8 else np.uint16
    return codes.astype(dtype), scales, mins


def dequantize_rows(codes: np.ndarray, scales: np.ndarray,
                    zero_points: np.ndarray) -> np.ndarray:
    """Inverse of :func:`quantize_rows` (up to quantization error)."""
    dt = result_dtype(scales, zero_points)
    return codes.astype(dt) * scales[:, None] + zero_points[:, None]


class QuantizedEmbeddingBag(Module):
    """Inference-only EmbeddingBag over a quantized table.

    Construct from a trained dense table (``from_dense``) — matching the
    post-training workflow of the cited scheme.
    """

    def __init__(self, codes: np.ndarray, scales: np.ndarray,
                 zero_points: np.ndarray, bits: int, *, mode: str = "sum"):
        if mode not in ("sum", "mean"):
            raise ValueError(f"mode must be 'sum' or 'mean', got {mode!r}")
        if codes.ndim != 2:
            raise ValueError(f"codes must be 2-D, got {codes.shape}")
        if scales.shape != (codes.shape[0],) or zero_points.shape != (codes.shape[0],):
            raise ValueError("scales/zero_points must be per-row vectors")
        dt = result_dtype(np.asarray(scales), np.asarray(zero_points))
        self.codes = codes
        self.scales = np.asarray(scales, dtype=dt)
        self.zero_points = np.asarray(zero_points, dtype=dt)
        self.bits = bits
        self.mode = mode
        self.num_rows, self.dim = codes.shape

    @classmethod
    def from_dense(cls, table: np.ndarray, *, bits: int = 4,
                   mode: str = "sum") -> "QuantizedEmbeddingBag":
        codes, scales, zero_points = quantize_rows(table, bits)
        return cls(codes, scales, zero_points, bits, mode=mode)

    def lookup(self, indices: np.ndarray) -> np.ndarray:
        indices = np.asarray(indices, dtype=np.int64)
        return dequantize_rows(
            self.codes[indices], self.scales[indices], self.zero_points[indices]
        )

    def forward(self, indices: np.ndarray, offsets: np.ndarray | None = None,
                per_sample_weights: np.ndarray | None = None) -> np.ndarray:
        indices = np.asarray(indices, dtype=np.int64)
        if offsets is None:
            offsets = np.arange(indices.size + 1, dtype=np.int64)
        indices, offsets = check_csr(indices, offsets, self.num_rows)
        rows = self.lookup(indices)
        if per_sample_weights is not None:
            alpha = np.asarray(per_sample_weights, dtype=rows.dtype).reshape(-1)
            if alpha.shape[0] != indices.shape[0]:
                raise ValueError("per_sample_weights must match indices in length")
            rows = rows * alpha[:, None]
        out = segment_sum(rows, offsets)
        if self.mode == "mean":
            counts = np.diff(offsets)
            scale = np.asarray(np.where(counts > 0, counts, 1), dtype=out.dtype)
            out = out / scale[:, None]
        return out

    __call__ = forward

    def backward(self, grad_out: np.ndarray) -> None:
        raise NotImplementedError(
            "QuantizedEmbeddingBag is inference-only (post-training "
            "quantization, Guan et al. 2019); train a dense or TT table and "
            "quantize it with from_dense()"
        )

    def num_parameters(self) -> int:
        """Effective fp32-equivalent parameter count (for fair comparison).

        Codes cost ``bits/32`` of a float each; scales and zero-points cost
        one float per row apiece.
        """
        code_floats = self.codes.size * self.bits / 32.0
        return int(np.ceil(code_floats + 2 * self.num_rows))

    def compression_ratio(self) -> float:
        return (self.num_rows * self.dim) / self.num_parameters()

    def reconstruction_error(self, table: np.ndarray) -> float:
        """Max |dequantized - original| against the source dense table."""
        table = np.asarray(table, dtype=self.scales.dtype)
        approx = dequantize_rows(self.codes, self.scales, self.zero_points)
        return float(np.abs(approx - table).max())
