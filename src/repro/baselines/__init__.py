"""Embedding-compression baselines from the paper's Related Work (§7).

The paper positions TT-Rec against three families of embedding-table
compression, each implemented here with the same EmbeddingBag interface so
they slot into the DLRM unchanged:

- :class:`~repro.baselines.hashing.HashedEmbeddingBag` — the feature
  hashing ("hashing trick") of Weinberger et al. 2009; collisions trade
  memory for accuracy.
- :class:`~repro.baselines.lowrank.LowRankEmbeddingBag` — two-factor
  low-rank embeddings (W = A B), the approach of Ghaemmaghami et al. 2020.
- :class:`~repro.baselines.quantization.QuantizedEmbeddingBag` — uniform
  post-training row-wise quantization (Guan et al. 2019's 4-bit scheme,
  generalised to any bit width); inference-only, like the original.
- :class:`~repro.baselines.tensor_ring.TREmbeddingBag` — Tensor-Ring
  decomposition (Wang et al. 2018), the closest tensorization alternative
  to TT; the paper notes TR preserves weights at moderately lower
  compression ratios.
"""

from repro.baselines.hashing import HashedEmbeddingBag
from repro.baselines.lowrank import LowRankEmbeddingBag
from repro.baselines.quantization import QuantizedEmbeddingBag, quantize_rows
from repro.baselines.tensor_ring import TREmbeddingBag, TRShape

__all__ = [
    "HashedEmbeddingBag",
    "LowRankEmbeddingBag",
    "QuantizedEmbeddingBag",
    "quantize_rows",
    "TREmbeddingBag",
    "TRShape",
]
