"""Feature-hashing embedding (Weinberger et al. 2009) — collision baseline.

Maps each of ``num_rows`` logical rows onto ``num_buckets << num_rows``
physical rows via a mixing hash; optionally applies a sign hash so
colliding rows partially cancel rather than add (the classic hashing-trick
variance reduction). The paper's Related Work cites this as the seminal
embedding-compression approach whose collisions cost accuracy at high
compression — the behaviour the baseline bench quantifies.
"""

from __future__ import annotations

import numpy as np

from repro.cache.hashtable import splitmix64
from repro.ops.embedding import EmbeddingBag
from repro.ops.module import Module
from repro.utils.dtypes import result_dtype
from repro.utils.seeding import as_rng
from repro.utils.validation import check_csr

__all__ = ["HashedEmbeddingBag"]


class HashedEmbeddingBag(Module):
    """EmbeddingBag over a hashed, smaller physical table.

    Parameters
    ----------
    num_rows:
        Logical vocabulary size (what callers index with).
    num_buckets:
        Physical rows actually stored; compression ratio is
        ``num_rows / num_buckets``.
    signed:
        Apply a ±1 sign hash per logical row (feature-hashing style) so
        collisions cancel in expectation.
    """

    def __init__(self, num_rows: int, dim: int, num_buckets: int, *,
                 mode: str = "sum", signed: bool = False, salt: int = 0,
                 rng: int | None | np.random.Generator = None,
                 name: str = "hashed_emb"):
        if num_buckets < 1:
            raise ValueError(f"num_buckets must be >= 1, got {num_buckets}")
        if num_buckets > num_rows:
            raise ValueError(
                f"num_buckets ({num_buckets}) exceeding num_rows ({num_rows}) "
                "defeats the purpose of hashing"
            )
        self.num_rows = num_rows
        self.dim = dim
        self.num_buckets = num_buckets
        self.signed = signed
        self.salt = salt
        self.table = EmbeddingBag(num_buckets, dim, mode=mode, rng=as_rng(rng),
                                  name=f"{name}.table")
        self.mode = mode

    # ------------------------------------------------------------------ #

    @property
    def dtype(self) -> np.dtype:
        """Floating dtype of the physical table (follows the policy)."""
        return self.table.weight.data.dtype

    def _hash(self, indices: np.ndarray) -> tuple[np.ndarray, np.ndarray | None]:
        mixed = splitmix64(indices + np.int64(self.salt * 0x9E3779B9))
        buckets = (mixed % np.uint64(self.num_buckets)).astype(np.int64)
        signs = None
        if self.signed:
            signs = np.where((mixed >> np.uint64(63)) & np.uint64(1), -1.0, 1.0
                             ).astype(self.dtype)
        return buckets, signs

    def forward(self, indices: np.ndarray, offsets: np.ndarray | None = None,
                per_sample_weights: np.ndarray | None = None) -> np.ndarray:
        indices = np.asarray(indices, dtype=np.int64)
        if offsets is None:
            offsets = np.arange(indices.size + 1, dtype=np.int64)
        indices, offsets = check_csr(indices, offsets, self.num_rows)
        buckets, signs = self._hash(indices)
        weights = per_sample_weights
        if signs is not None:
            dt = result_dtype(self.table.weight.data)
            w = (np.ones(indices.size, dtype=dt) if weights is None
                 else np.asarray(weights, dtype=dt).reshape(-1))
            weights = w * signs
        return self.table.forward(buckets, offsets, weights)

    __call__ = forward

    def backward(self, grad_out: np.ndarray) -> None:
        """Delegate to the physical table (it owns the re-entrancy guard)."""
        self.table.backward(grad_out)

    def lookup(self, indices: np.ndarray) -> np.ndarray:
        indices = np.asarray(indices, dtype=np.int64)
        buckets, signs = self._hash(indices)
        rows = self.table.weight.data[buckets]
        if signs is not None:
            rows = rows * signs[:, None]
        return rows

    def num_parameters(self) -> int:
        return self.num_buckets * self.dim

    def compression_ratio(self) -> float:
        return self.num_rows / self.num_buckets

    def collision_rate(self, sample: int = 100_000,
                       rng: int | None | np.random.Generator = None) -> float:
        """Fraction of a uniform row sample whose bucket is shared.

        Monte-Carlo estimate of ``P(two random rows collide | same bucket
        occupancy)``; for a well-mixed hash this approaches the birthday
        bound ``1 - num_buckets/num_rows``-ish occupancy collision rate.
        """
        rng = as_rng(rng)
        n = min(sample, self.num_rows)
        rows = rng.choice(self.num_rows, size=n, replace=False)
        buckets, _ = self._hash(rows)
        _, counts = np.unique(buckets, return_counts=True)
        colliding = counts[counts > 1].sum()
        return float(colliding / n)
