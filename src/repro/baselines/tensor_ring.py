"""Tensor-Ring embedding (Wang et al. 2018) — the tensorization alternative.

Tensor-Ring (TR) decomposition generalises TT by closing the chain into a
ring: boundary ranks equal a shared ring rank ``R0 >= 1`` instead of 1,
and a table entry is the *trace* of the matrix-product chain:

    W(i, j) = Tr( G_1(i_1, j_1) G_2(i_2, j_2) ... G_d(i_d, j_d) )

With ``R0 == 1`` TR degenerates exactly to TT. The paper's Related Work
notes TR "can preserve the weights with moderately lower compression
ratios than that of TT" — the baseline bench quantifies that trade-off on
the same tables.

Kernels mirror the TT implementation (mode-first core layout, batched
GEMM chains, left/right partial products in backward) with the ring index
carried through as an extra batch-like dimension.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.ops.embedding import segment_sum
from repro.ops.module import Module, Parameter
from repro.tt.kernels import scatter_add_rows
from repro.utils.dtypes import result_dtype
from repro.utils.factorization import factorize_into, suggested_tt_shapes
from repro.utils.seeding import as_rng
from repro.utils.validation import check_csr

__all__ = ["TRShape", "TREmbeddingBag"]


@dataclass(frozen=True)
class TRShape:
    """Shape/rank bookkeeping for one TR-compressed table.

    ``ranks`` has length ``d + 1`` with ``ranks[0] == ranks[-1]`` — the
    ring rank. Core ``k`` is stored mode-first: ``(m_k, R_k, n_k, R_{k+1})``.
    """

    num_rows: int
    dim: int
    row_factors: tuple[int, ...]
    col_factors: tuple[int, ...]
    ranks: tuple[int, ...]

    def __post_init__(self):
        d = len(self.row_factors)
        if d < 2:
            raise ValueError(f"TR needs at least 2 cores, got {self.row_factors}")
        if len(self.col_factors) != d:
            raise ValueError("row_factors and col_factors must have equal length")
        if len(self.ranks) != d + 1:
            raise ValueError(f"ranks must have length d+1={d + 1}, got {len(self.ranks)}")
        if self.ranks[0] != self.ranks[-1]:
            raise ValueError(
                f"ring boundary ranks must match, got {self.ranks[0]} != {self.ranks[-1]}"
            )
        if any(r < 1 for r in self.ranks):
            raise ValueError(f"ranks must be >= 1, got {self.ranks}")
        if math.prod(self.row_factors) < self.num_rows:
            raise ValueError("prod(row_factors) must cover num_rows")
        if math.prod(self.col_factors) != self.dim:
            raise ValueError("prod(col_factors) must equal dim")

    @classmethod
    def suggested(cls, num_rows: int, dim: int, *, d: int = 3, rank: int = 8) -> TRShape:
        """Balanced factorization with a uniform rank on every boundary."""
        row_factors = tuple(suggested_tt_shapes(num_rows, d))
        col_factors = tuple(sorted(factorize_into(dim, d)))
        return cls(num_rows, dim, row_factors, col_factors, tuple([rank] * (d + 1)))

    @property
    def d(self) -> int:
        return len(self.row_factors)

    @property
    def ring_rank(self) -> int:
        return self.ranks[0]

    @property
    def padded_rows(self) -> int:
        return math.prod(self.row_factors)

    def core_shape(self, k: int) -> tuple[int, int, int, int]:
        return (self.row_factors[k], self.ranks[k], self.col_factors[k],
                self.ranks[k + 1])

    def num_params(self) -> int:
        return sum(math.prod(self.core_shape(k)) for k in range(self.d))

    def compression_ratio(self) -> float:
        return (self.num_rows * self.dim) / self.num_params()

    def decode_indices(self, indices: np.ndarray) -> np.ndarray:
        indices = np.asarray(indices, dtype=np.int64)
        if indices.size and (indices.min() < 0 or indices.max() >= self.padded_rows):
            raise IndexError(
                f"row index out of range [0, {self.padded_rows}): "
                f"min={indices.min()}, max={indices.max()}"
            )
        out = np.empty((self.d, indices.size), dtype=np.int64)
        rem = indices
        rest = self.padded_rows
        for k, m in enumerate(self.row_factors):
            rest //= m
            out[k] = rem // rest
            rem = rem % rest
        return out


class TREmbeddingBag(Module):
    """Bag-pooled embedding lookup backed by Tensor-Ring cores."""

    def __init__(self, num_rows: int, dim: int, *, shape: TRShape | None = None,
                 rank: int = 8, d: int = 3, mode: str = "sum",
                 rng: int | None | np.random.Generator = None,
                 name: str = "tr_emb"):
        if mode not in ("sum", "mean"):
            raise ValueError(f"mode must be 'sum' or 'mean', got {mode!r}")
        if shape is None:
            shape = TRShape.suggested(num_rows, dim, d=d, rank=rank)
        if shape.num_rows != num_rows or shape.dim != dim:
            raise ValueError(
                f"shape describes a {shape.num_rows}x{shape.dim} table, "
                f"expected {num_rows}x{dim}"
            )
        rng = as_rng(rng)
        self.num_rows = num_rows
        self.dim = dim
        self.shape = shape
        self.mode = mode
        # Variance-matched init: each entry is a sum over R0 * prod(R_k)
        # ring paths of d-fold products; match N(0, 1/3n) like TT (§3.2).
        paths = float(np.prod(shape.ranks[:-1]))  # R0 * R1 * ... * R_{d-1}
        target = 1.0 / (3.0 * num_rows)
        entry_std = (target / paths) ** (1.0 / (2 * shape.d))
        self.cores: list[Parameter] = [
            Parameter(rng.normal(0.0, entry_std, size=shape.core_shape(k)),
                      name=f"{name}.core{k}", sparse=True)
            for k in range(shape.d)
        ]
        self._cache: dict | None = None
        self._did_backward = False

    # ------------------------------------------------------------------ #

    @property
    def dtype(self) -> np.dtype:
        """Floating dtype of the cores (follows the policy at build time)."""
        return self.cores[0].data.dtype

    def _row_chain(self, decoded: np.ndarray) -> tuple[np.ndarray, list[np.ndarray]]:
        """Ring chain; returns ``(rows, lefts)``.

        ``lefts[k]`` has shape ``(B, R0, P_k, R_{k+1})`` — the TT left
        partial with the open ring index ``R0`` carried in front.
        """
        n = decoded.shape[1]
        r0 = self.shape.ring_rank
        first = self.cores[0].data[decoded[0]]  # (B, R0, n1, R1)
        res = first.reshape(n, r0, self.shape.col_factors[0], self.shape.ranks[1])
        lefts = [res]
        for k in range(1, self.shape.d):
            core = self.cores[k].data[decoded[k]]  # (B, R_k, n_k, R_{k+1})
            r_prev = self.shape.ranks[k]
            r_next = self.shape.ranks[k + 1]
            nk = self.shape.col_factors[k]
            # Broadcast the per-sample core across the ring dimension.
            res = np.matmul(res, core.reshape(n, 1, r_prev, nk * r_next))
            res = res.reshape(n, r0, -1, r_next)
            lefts.append(res)
        # Close the ring: out[b, p] = sum_a res[b, a, p, a]
        rows = np.einsum("bapa->bp", res)
        return rows, lefts

    def lookup(self, indices: np.ndarray) -> np.ndarray:
        indices = np.asarray(indices, dtype=np.int64)
        if indices.size == 0:
            return np.zeros((0, self.dim), dtype=self.dtype)
        rows, _ = self._row_chain(self.shape.decode_indices(indices))
        return rows

    def materialize(self) -> np.ndarray:
        """Dense table from the ring cores (analysis/tests only)."""
        return self.lookup(np.arange(self.num_rows, dtype=np.int64))

    def forward(self, indices: np.ndarray, offsets: np.ndarray | None = None,
                per_sample_weights: np.ndarray | None = None) -> np.ndarray:
        indices = np.asarray(indices, dtype=np.int64)
        if offsets is None:
            offsets = np.arange(indices.size + 1, dtype=np.int64)
        indices, offsets = check_csr(indices, offsets, self.num_rows)
        alpha = None
        if per_sample_weights is not None:
            alpha = np.asarray(per_sample_weights,
                               dtype=result_dtype(self.cores[0].data)).reshape(-1)
            if alpha.shape[0] != indices.shape[0]:
                raise ValueError("per_sample_weights must match indices in length")
        if indices.size == 0:
            self._cache = {
                "decoded": np.empty((self.shape.d, 0), dtype=np.int64),
                "lefts": [], "alpha": alpha, "counts": np.diff(offsets),
            }
            self._did_backward = False
            return np.zeros((offsets.size - 1, self.dim), dtype=self.dtype)
        decoded = self.shape.decode_indices(indices)
        rows, lefts = self._row_chain(decoded)
        weighted = rows if alpha is None else rows * alpha[:, None]
        out = segment_sum(weighted, offsets)
        counts = np.diff(offsets)
        if self.mode == "mean":
            scale = np.asarray(np.where(counts > 0, counts, 1), dtype=out.dtype)
            out = out / scale[:, None]
        self._cache = {"decoded": decoded, "lefts": lefts, "alpha": alpha,
                       "counts": counts}
        self._did_backward = False
        return out

    __call__ = forward

    def backward(self, grad_out: np.ndarray) -> None:
        """Accumulate core gradients; consumes the forward cache.

        A second ``backward`` for the same forward raises instead of
        silently double-accumulating (shared zoo contract).
        """
        if self._cache is None:
            if self._did_backward:
                raise RuntimeError(
                    "backward called twice for one forward; core gradients "
                    "would double-accumulate — run forward again first"
                )
            raise RuntimeError("backward called before forward")
        c = self._cache
        grad_out = np.asarray(grad_out, dtype=self.dtype)
        counts = c["counts"]
        if self.mode == "mean":
            scale = np.asarray(np.where(counts > 0, counts, 1),
                               dtype=grad_out.dtype)
            grad_out = grad_out / scale[:, None]
        bag_ids = np.repeat(np.arange(len(counts)), counts)
        grad_rows = grad_out[bag_ids]
        if c["alpha"] is not None:
            grad_rows = grad_rows * c["alpha"][:, None]
        self._accumulate_core_grads(c["decoded"], grad_rows, c["lefts"])
        self._cache = None
        self._did_backward = True

    def _accumulate_core_grads(self, decoded: np.ndarray, grad_rows: np.ndarray,
                               lefts: list[np.ndarray]) -> None:
        n = decoded.shape[1]
        if n == 0:
            return
        d = self.shape.d
        r0 = self.shape.ring_rank
        eye = np.broadcast_to(np.eye(r0, dtype=self.dtype)[None, :, None, :],
                              (n, r0, 1, r0))
        # right[k] has shape (B, R_{k+1}, Q_k, R0): product of cores k+1..d-1
        # with the ring closed on the right.
        right = eye  # k = d-1: identity, Q = 1
        q = 1
        for k in range(d - 1, -1, -1):
            r_prev = self.shape.ranks[k]
            r_next = self.shape.ranks[k + 1]
            nk = self.shape.col_factors[k]
            left = lefts[k - 1] if k > 0 else eye  # (B, R0, P, R_k)
            p = left.shape[2]
            d_out = grad_rows.reshape(n, p, nk, q)
            # U[b,p,a,s,z] = sum_q dO[b,p,a,q] * right[b,s,q,z]
            u = np.einsum("bpaq,bsqz->bpasz", d_out, right)
            # g[b,r,a,s] = sum_{z,p} left[b,z,p,r] * U[b,p,a,s,z]
            g = np.einsum("bzpr,bpasz->bras", left, u)
            scatter_add_rows(self.cores[k].grad, decoded[k], g)
            self.cores[k].record_touched(decoded[k])
            if k > 0:
                core = self.cores[k].data[decoded[k]]  # (B, R_k, n_k, R_{k+1})
                flat = np.matmul(
                    core.reshape(n, r_prev * nk, r_next),
                    right.reshape(n, r_next, q * r0),
                )
                right = flat.reshape(n, r_prev, nk * q, r0)
                q *= nk

    # ------------------------------------------------------------------ #

    def num_parameters(self) -> int:
        return self.shape.num_params()

    def compression_ratio(self) -> float:
        return self.shape.compression_ratio()
